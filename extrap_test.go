package extrap

import (
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

// TestFacadePipeline exercises the public API end to end.
func TestFacadePipeline(t *testing.T) {
	const threads = 4
	p := Program{
		Name:    "facade-test",
		Threads: threads,
		Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			c := pcxx.PerThread[float64](rt, "c", 32)
			return func(th *pcxx.Thread) {
				*c.Local(th, th.ID()) = float64(th.ID())
				th.Barrier()
				th.Compute(100 * vtime.Microsecond)
				_ = c.Read(th, (th.ID()+1)%threads)
				th.Barrier()
			}
		},
	}
	env, err := Environment("generic-dm")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(p, MeasureOptions{}, env.Config)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalTime <= 0 {
		t.Fatal("no predicted time")
	}
	if out.Result.TotalTime < out.Parallel.Duration() {
		t.Fatalf("prediction %v below ideal %v", out.Result.TotalTime, out.Parallel.Duration())
	}
}

func TestFacadeInventory(t *testing.T) {
	envs := Environments()
	if len(envs) != 4 {
		t.Fatalf("Environments() = %d entries", len(envs))
	}
	// Exact counts would be brittle: any linked package may register
	// workloads (internal/compose's presets self-register), and which
	// ones are linked depends on the test binary's import graph. The
	// facade contract is that the paper's kernels are always there.
	names := BenchmarkNames()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"cyclic", "embar", "grid", "matmul", "mgrid", "poisson", "sort", "sparse"} {
		if !have[want] {
			t.Errorf("BenchmarkNames() missing %q: %v", want, names)
		}
	}
	if _, err := Environment("bogus"); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestFacadeSpeedup(t *testing.T) {
	sp := Speedup([]Point{{Procs: 1, Time: 100}, {Procs: 2, Time: 50}})
	if sp[1] != 2 {
		t.Fatalf("speedup = %v", sp)
	}
}
