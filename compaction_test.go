package extrap

// Trace-compaction guarantees, asserted at the top of the stack: the
// XTRP2 codec shrinks real measurement traces by at least the headline
// factor, and switching wire formats never changes a prediction — the
// loop-detected encoding is a storage optimization, not a modeling
// change.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// measureDefaultSize produces the 16-thread default-size measurement
// trace of a named benchmark — full-scale traces, since the compression
// target is about what real workloads store.
func measureDefaultSize(t *testing.T, name string) *trace.Trace {
	t.Helper()
	b, err := benchmarks.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Measure(b.Factory(b.DefaultSize())(16), core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// encodeBoth returns the XTRP1 and XTRP2 encodings of one trace.
func encodeBoth(t *testing.T, tr *trace.Trace) (enc1, enc2 []byte) {
	t.Helper()
	var b1, b2 bytes.Buffer
	if err := trace.WriteBinary(&b1, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary2(&b2, tr); err != nil {
		t.Fatal(err)
	}
	return b1.Bytes(), b2.Bytes()
}

// TestXTRP2CompressionOnBenchmarks pins the headline compression target
// on real measurement traces: the iterative kernels encode at least 5×
// smaller under XTRP2 than under flat XTRP1 (in practice 9–15×, but the
// floor asserted here is what the docs promise). The decoded events
// must also match exactly — compression that loses information would
// pass a pure size check.
func TestXTRP2CompressionOnBenchmarks(t *testing.T) {
	for _, name := range []string{"mgrid", "embar", "grid"} {
		tr := measureDefaultSize(t, name)
		enc1, enc2 := encodeBoth(t, tr)
		ratio := float64(len(enc1)) / float64(len(enc2))
		t.Logf("%s: %d events, xtrp1=%d B, xtrp2=%d B, ratio=%.2f",
			name, len(tr.Events), len(enc1), len(enc2), ratio)
		if ratio < 5 {
			t.Errorf("%s: compression ratio %.2f, want ≥ 5", name, ratio)
		}
		got, err := trace.ReadBinaryAny(bytes.NewReader(enc2))
		if err != nil {
			t.Fatalf("%s: decoding XTRP2: %v", name, err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Errorf("%s: XTRP2 round trip altered the events", name)
		}
	}
}

// TestPredictionsByteIdenticalAcrossFormats asserts the compaction
// contract end to end: for every combination of kernel, machine model,
// and barrier algorithm tried, the streaming prediction from XTRP2
// bytes equals — field for field — the prediction from XTRP1 bytes and
// the in-memory pipeline's, and so does the batched path.
func TestPredictionsByteIdenticalAcrossFormats(t *testing.T) {
	machines := []sim.Config{
		machine.GenericDM().Config,
		machine.CM5().Config,
	}
	barriers := []sim.BarrierAlgorithm{sim.LinearBarrier, sim.TreeBarrier, sim.HardwareBarrier}
	ctx := context.Background()
	for _, name := range []string{"mgrid", "embar", "cyclic"} {
		tr := measureDefaultSize(t, name)
		enc1, enc2 := encodeBoth(t, tr)
		var cfgs []sim.Config
		for _, m := range machines {
			for _, alg := range barriers {
				cfg := m
				cfg.Barrier.Algorithm = alg
				cfgs = append(cfgs, cfg)
			}
		}
		for i, cfg := range cfgs {
			p1, err := core.ExtrapolateEncoded(ctx, enc1, cfg)
			if err != nil {
				t.Fatalf("%s cfg %d: xtrp1 stream: %v", name, i, err)
			}
			p2, err := core.ExtrapolateEncoded(ctx, enc2, cfg)
			if err != nil {
				t.Fatalf("%s cfg %d: xtrp2 stream: %v", name, i, err)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Errorf("%s cfg %d: XTRP1 and XTRP2 streaming predictions differ:\n%+v\nvs\n%+v", name, i, p1, p2)
			}
			oc, err := core.Extrapolate(tr, cfg)
			if err != nil {
				t.Fatalf("%s cfg %d: in-memory: %v", name, i, err)
			}
			if p2.Result.TotalTime != oc.Result.TotalTime ||
				p2.Measured1P != tr.Duration() ||
				p2.Ideal != oc.Parallel.Duration() {
				t.Errorf("%s cfg %d: XTRP2 streaming prediction differs from the in-memory pipeline", name, i)
			}
		}
		// Batched lanes over the once-decoded XTRP2 bytes match too.
		b1, err := core.ExtrapolateEncodedBatch(ctx, enc1, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := core.ExtrapolateEncodedBatch(ctx, enc2, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Errorf("%s: batched predictions differ between formats", name)
		}
	}
}
