// Package extrap is the public face of the performance-extrapolation
// library — a reproduction of Shanmugam, Malony, and Mohr, "Performance
// Extrapolation of Parallel Programs" (ICPP 1995).
//
// Performance extrapolation predicts the performance of an n-thread
// data-parallel program on an n-processor target machine from a single
// measurement of the program run with n threads on one processor:
//
//	program ──Measure──▶ trace ──(Translate+Simulate)──▶ prediction
//
// The three stages are:
//
//  1. Measure: run the program under the instrumented non-preemptive
//     runtime (package internal/pcxx); record barrier and remote-access
//     events with virtual timestamps.
//  2. Translate: adjust timestamps to an idealized parallel execution
//     (package internal/translate).
//  3. Simulate: replay the translated traces against models of the
//     target's processors, network, and barriers (package internal/sim).
//
// This package re-exports the pipeline for library users; the richer
// knobs live in the internal packages, and the cmd/extrap CLI exposes the
// full experiment suite.
package extrap

import (
	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// Program is an instrumentable data-parallel program.
type Program = core.Program

// MeasureOptions configures the 1-processor measurement run.
type MeasureOptions = core.MeasureOptions

// Outcome bundles the artifacts of one extrapolation: the measurement
// trace, the translated parallel trace, and the simulation result.
type Outcome = core.Outcome

// Trace is a measurement or extrapolated event trace.
type Trace = trace.Trace

// Env is a named target execution environment.
type Env = machine.Env

// Result is a simulation result (predicted performance information).
type Result = sim.Result

// Config is a target-environment model configuration.
type Config = sim.Config

// Point is one (processors, time) sample of a scaling study.
type Point = metrics.Point

// Measure runs the program under the instrumented 1-processor runtime
// and returns the measurement trace.
func Measure(p Program, opts MeasureOptions) (*Trace, error) {
	return core.Measure(p, opts)
}

// Extrapolate translates a measurement trace and simulates it in the
// target environment.
func Extrapolate(tr *Trace, cfg Config) (*Outcome, error) {
	return core.Extrapolate(tr, cfg)
}

// Run measures and extrapolates in one call.
func Run(p Program, opts MeasureOptions, cfg Config) (*Outcome, error) {
	return core.Run(p, opts, cfg)
}

// Environments returns the built-in target environment presets
// (generic-dm, shared-mem, cm5, ideal).
func Environments() []Env { return machine.Presets() }

// Environment looks up a preset by name.
func Environment(name string) (Env, error) { return machine.ByName(name) }

// BenchmarkNames lists the bundled pC++ benchmark suite (Table 2 plus the
// Matmul validation program).
func BenchmarkNames() []string {
	var out []string
	for _, b := range benchmarks.All() {
		out = append(out, b.Name())
	}
	return out
}

// Speedup computes per-point speedup relative to the smallest processor
// count in the series.
func Speedup(points []Point) []float64 { return metrics.Speedup(points) }
