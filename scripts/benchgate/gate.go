package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
)

// Result is one benchmark's snapshot entry, as emitted by
// scripts/bench.sh.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the gate's verdict: Failures trip the build, Notes don't.
type Report struct {
	Failures []string
	Notes    []string
}

// gomaxprocsSuffix is the "-<GOMAXPROCS>" tail go test appends to
// benchmark names on multi-core machines (BenchmarkSimulation-4).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// lowIterThreshold marks small-sample ns/op estimates. A benchmark that
// completed only a handful of iterations inside the benchtime budget
// (BenchmarkStreamPipelineMemory runs 2 at 1s) reports a mean over too
// few samples for the standard band to be meaningful: one scheduler
// hiccup moves the estimate tens of percent. When either side of a
// comparison ran fewer than this many iterations, the ns/op band is
// doubled for that benchmark — allocs/op stays a hard ceiling, since
// it is deterministic at any iteration count.
const lowIterThreshold = 10

// nsBand returns the ns/op tolerance for one baseline/current pair,
// widened for low-iteration benchmarks.
func nsBand(tolerance float64, b, c Result) float64 {
	if b.Iters > 0 && b.Iters < lowIterThreshold || c.Iters > 0 && c.Iters < lowIterThreshold {
		return 2 * tolerance
	}
	return tolerance
}

// loadResults reads a bench.sh JSON snapshot. Benchmark names are
// normalized by stripping any GOMAXPROCS suffix, so a snapshot taken on
// a multi-core machine compares against a baseline from a 1-core one
// (bench.sh strips the suffix too; this is a second line of defense for
// snapshots produced by other means).
func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no benchmarks", path)
	}
	for i := range out {
		out[i].Name = gomaxprocsSuffix.ReplaceAllString(out[i].Name, "")
	}
	return out, nil
}

// Compare checks every baseline benchmark against the current snapshot;
// missing benchmarks always fail. The two metrics gate independently
// because they have different trust models:
//
//   - gateNs: ns/op slowdowns beyond the tolerance band fail. Only
//     enable when baseline and current were measured on the same
//     machine; otherwise absolute ns/op carries no signal and drift is
//     reported as notes.
//   - gateAllocs: allocs/op above the baseline ceiling fails. allocs/op
//     is deterministic, so this is meaningful against the committed
//     BENCH_baseline.json from any machine — and deliberate increases
//     are accepted by re-snapshotting that file, so disable it when the
//     baseline is a same-run base-ref measurement (which a PR cannot
//     amend).
//
// Speedups beyond the band and benchmarks new in current are notes in
// every mode.
func Compare(baseline, current []Result, tolerance float64, gateNs, gateAllocs bool) Report {
	var rep Report
	cur := make(map[string]Result, len(current))
	for _, c := range current {
		cur[c.Name] = c
	}
	seen := make(map[string]bool, len(baseline))
	for _, b := range baseline {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: present in baseline but not measured (bench pattern drift?)", b.Name))
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			tol := nsBand(tolerance, b, c)
			wide := ""
			if tol != tolerance {
				wide = fmt.Sprintf("; band doubled: < %d iterations", lowIterThreshold)
			}
			switch {
			case ratio > 1+tol && gateNs:
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx > allowed %.2fx%s)",
						b.Name, c.NsPerOp, b.NsPerOp, ratio, 1+tol, wide))
			case ratio > 1+tol:
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx; informational — baseline is from different hardware)",
						b.Name, c.NsPerOp, b.NsPerOp, ratio))
			case ratio < 1-tol:
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx) — consider `make bench-baseline`",
						b.Name, c.NsPerOp, b.NsPerOp, ratio))
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			if gateAllocs {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: allocs/op %.0f exceeds the baseline ceiling %.0f",
						b.Name, c.AllocsPerOp, b.AllocsPerOp))
			} else {
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f (informational — the committed BENCH_baseline.json is the allocs gate)",
						b.Name, c.AllocsPerOp, b.AllocsPerOp))
			}
		}
	}
	for _, c := range current {
		if !seen[c.Name] {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("%s: new benchmark, not in baseline — run `make bench-baseline` to track it", c.Name))
		}
	}
	return rep
}
