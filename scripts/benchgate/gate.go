package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one benchmark's snapshot entry, as emitted by
// scripts/bench.sh.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the gate's verdict: Failures trip the build, Notes don't.
type Report struct {
	Failures []string
	Notes    []string
}

// loadResults reads a bench.sh JSON snapshot.
func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no benchmarks", path)
	}
	return out, nil
}

// Compare checks every baseline benchmark against the current snapshot:
// missing benchmarks and ns/op slowdowns beyond the tolerance band fail,
// as does any allocs/op above the baseline ceiling. Speedups beyond the
// band and benchmarks new in current are notes only.
func Compare(baseline, current []Result, tolerance float64) Report {
	var rep Report
	cur := make(map[string]Result, len(current))
	for _, c := range current {
		cur[c.Name] = c
	}
	seen := make(map[string]bool, len(baseline))
	for _, b := range baseline {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: present in baseline but not measured (bench pattern drift?)", b.Name))
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			switch {
			case ratio > 1+tolerance:
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx > allowed %.2fx)",
						b.Name, c.NsPerOp, b.NsPerOp, ratio, 1+tolerance))
			case ratio < 1-tolerance:
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx) — consider `make bench-baseline`",
						b.Name, c.NsPerOp, b.NsPerOp, ratio))
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: allocs/op %.0f exceeds the baseline ceiling %.0f",
					b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	for _, c := range current {
		if !seen[c.Name] {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("%s: new benchmark, not in baseline — run `make bench-baseline` to track it", c.Name))
		}
	}
	return rep
}
