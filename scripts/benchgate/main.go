// Command benchgate is the benchmark regression gate: it compares a
// fresh scripts/bench.sh snapshot against the committed baseline
// (BENCH_baseline.json) and exits non-zero when a hot path regressed.
//
// Two rules, matching how the two metrics behave:
//
//   - ns/op is noisy (shared CI runners) and machine-specific, so it
//     gets a relative tolerance band (default ±25%) that is only
//     meaningful when baseline and current were measured on the same
//     machine — scripts/ci_bench_gate.sh arranges exactly that by
//     benchmarking the base ref in the same run. Only slowdowns past the
//     band fail; speedups past it are reported as a hint to re-baseline.
//     With -allocs-only the ns/op band demotes to notes, the right mode
//     when the baseline comes from different hardware.
//   - allocs/op is deterministic for this codebase, so it is a hard
//     ceiling on any hardware: any increase over baseline fails. The
//     committed BENCH_baseline.json is the authoritative ceiling — a PR
//     that deliberately adds allocations re-snapshots it with `make
//     bench-baseline`. With -ns-only the ceiling demotes to notes, the
//     right mode when the baseline is a same-run base-ref measurement
//     (which a PR cannot amend, so it must not be the allocs authority).
//
// Benchmark names are normalized (the -<GOMAXPROCS> suffix go test
// appends on multi-core machines is stripped), so snapshots compare
// across machines with different core counts.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline BENCH_baseline.json -current current.json [-tolerance 0.25] [-allocs-only|-ns-only]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
	current := flag.String("current", "", "fresh bench.sh output to check")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/op tolerance (0.25 = ±25%)")
	allocsOnly := flag.Bool("allocs-only", false, "gate allocs/op only; report ns/op drift as notes (use when the baseline is from different hardware)")
	nsOnly := flag.Bool("ns-only", false, "gate ns/op only; report allocs/op drift as notes (use when the baseline is a same-run base-ref measurement)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	if *allocsOnly && *nsOnly {
		fmt.Fprintln(os.Stderr, "benchgate: -allocs-only and -ns-only are mutually exclusive")
		os.Exit(2)
	}
	base, err := loadResults(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := loadResults(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report := Compare(base, cur, *tolerance, !*allocsOnly, !*nsOnly)
	for _, line := range report.Notes {
		fmt.Println("note:", line)
	}
	for _, line := range report.Failures {
		fmt.Println("FAIL:", line)
	}
	if len(report.Failures) > 0 {
		fmt.Printf("benchgate: %d regression(s) against %s\n", len(report.Failures), *baseline)
		os.Exit(1)
	}
	switch {
	case *allocsOnly:
		fmt.Printf("benchgate: %d benchmark(s) at/below the allocs ceiling (ns/op informational)\n", len(cur))
	case *nsOnly:
		fmt.Printf("benchgate: %d benchmark(s) within ±%.0f%% ns/op (allocs informational)\n",
			len(cur), *tolerance*100)
	default:
		fmt.Printf("benchgate: %d benchmark(s) within ±%.0f%% ns/op and at/below the allocs ceiling\n",
			len(cur), *tolerance*100)
	}
}
