// Command benchgate is the benchmark regression gate: it compares a
// fresh scripts/bench.sh snapshot against the committed baseline
// (BENCH_baseline.json) and exits non-zero when a hot path regressed.
//
// Two rules, matching how the two metrics behave:
//
//   - ns/op is noisy (shared CI runners), so it gets a relative
//     tolerance band (default ±25%). Only slowdowns past the band fail;
//     speedups past it are reported as a hint to re-baseline.
//   - allocs/op is deterministic for this codebase, so it is a hard
//     ceiling: any increase over baseline fails.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline BENCH_baseline.json -current current.json [-tolerance 0.25]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
	current := flag.String("current", "", "fresh bench.sh output to check")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/op tolerance (0.25 = ±25%)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := loadResults(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := loadResults(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report := Compare(base, cur, *tolerance)
	for _, line := range report.Notes {
		fmt.Println("note:", line)
	}
	for _, line := range report.Failures {
		fmt.Println("FAIL:", line)
	}
	if len(report.Failures) > 0 {
		fmt.Printf("benchgate: %d regression(s) against %s\n", len(report.Failures), *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within ±%.0f%% ns/op and at/below the allocs ceiling\n",
		len(cur), *tolerance*100)
}
