package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func res(name string, ns, allocs float64) Result {
	return Result{Name: name, Iters: 100, NsPerOp: ns, BytesPerOp: 1024, AllocsPerOp: allocs}
}

func TestCompareWithinBandPasses(t *testing.T) {
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 1200, 77)} // +20% < 25%
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none", rep.Failures)
	}
	if len(rep.Notes) != 0 {
		t.Fatalf("notes = %v, want none", rep.Notes)
	}
}

func TestCompareSlowdownFails(t *testing.T) {
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 2000, 77)} // 2x slowdown
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one ns/op failure", rep.Failures)
	}
}

func TestCompareSpeedupIsNoteOnly(t *testing.T) {
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 400, 77)} // 2.5x speedup
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none", rep.Failures)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "bench-baseline") {
		t.Fatalf("notes = %v, want one re-baseline hint", rep.Notes)
	}
}

// Low-iteration benchmarks (BenchmarkStreamPipelineMemory completes 2
// iterations per benchtime) get a doubled ns/op band: their mean is a
// small-sample estimate, and the standard band would flake on scheduler
// noise alone.
func TestCompareLowIterWidensNsBand(t *testing.T) {
	base := []Result{{Name: "BenchmarkStreamPipelineMemory", Iters: 2, NsPerOp: 1000, AllocsPerOp: 50}}

	cur := []Result{{Name: "BenchmarkStreamPipelineMemory", Iters: 2, NsPerOp: 1400, AllocsPerOp: 50}}
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none (+40%% within the doubled 50%% band)", rep.Failures)
	}

	cur = []Result{{Name: "BenchmarkStreamPipelineMemory", Iters: 2, NsPerOp: 1600, AllocsPerOp: 50}}
	rep = Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "band doubled") {
		t.Fatalf("failures = %v, want one annotated ns/op failure past the doubled band", rep.Failures)
	}

	// The widening keys off either side: a baseline from a healthy run
	// still tolerates a current snapshot that barely iterated.
	base = []Result{res("BenchmarkStreamPipelineMemory", 1000, 50)}
	cur = []Result{{Name: "BenchmarkStreamPipelineMemory", Iters: 3, NsPerOp: 1400, AllocsPerOp: 50}}
	if rep := Compare(base, cur, 0.25, true, true); len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none when the current run is low-iteration", rep.Failures)
	}

	// allocs/op stays a hard ceiling regardless of iteration count.
	cur = []Result{{Name: "BenchmarkStreamPipelineMemory", Iters: 2, NsPerOp: 1000, AllocsPerOp: 51}}
	if rep := Compare(base, cur, 0.25, true, true); len(rep.Failures) != 1 {
		t.Fatalf("failures = %v, want the alloc ceiling to hold at low iterations", rep.Failures)
	}
}

func TestCompareAllocCeilingIsHard(t *testing.T) {
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 1000, 78)} // +1 alloc
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op failure", rep.Failures)
	}
}

func TestCompareMissingAndNewBenchmarks(t *testing.T) {
	base := []Result{res("BenchmarkGone", 1000, 10)}
	cur := []Result{res("BenchmarkNew", 1000, 10)}
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "BenchmarkGone") {
		t.Fatalf("failures = %v, want missing-benchmark failure", rep.Failures)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "BenchmarkNew") {
		t.Fatalf("notes = %v, want new-benchmark note", rep.Notes)
	}
}

func TestLoadResults(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`[{"name":"BenchmarkX","iters":5,"ns_per_op":123,"bytes_per_op":10,"allocs_per_op":2}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadResults(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkX" || got[0].NsPerOp != 123 {
		t.Fatalf("got %+v", got)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadResults(empty); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := loadResults(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompareAllocsOnlyDemotesNsFailures(t *testing.T) {
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 2000, 77)} // 2x slowdown
	rep := Compare(base, cur, 0.25, false, true)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none in allocs-only mode", rep.Failures)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "informational") {
		t.Fatalf("notes = %v, want one informational ns/op note", rep.Notes)
	}
	// The allocs ceiling still gates.
	cur = []Result{res("BenchmarkSimulation", 2000, 78)}
	rep = Compare(base, cur, 0.25, false, true)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op failure", rep.Failures)
	}
}

func TestCompareNsOnlyDemotesAllocFailures(t *testing.T) {
	// ns-only is the mode for gating against a same-run base-ref
	// snapshot: allocs drift vs that snapshot is informational (the
	// committed baseline is the allocs authority), ns/op still gates.
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	cur := []Result{res("BenchmarkSimulation", 1000, 78)} // +1 alloc
	rep := Compare(base, cur, 0.25, true, false)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none in ns-only mode", rep.Failures)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "BENCH_baseline.json") {
		t.Fatalf("notes = %v, want one informational allocs note", rep.Notes)
	}
	// The ns/op band still gates.
	cur = []Result{res("BenchmarkSimulation", 2000, 78)}
	rep = Compare(base, cur, 0.25, true, false)
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one ns/op failure", rep.Failures)
	}
}

func TestLoadResultsStripsGOMAXPROCSSuffix(t *testing.T) {
	// A snapshot captured on a 4-core machine carries "-4" suffixes; it
	// must compare cleanly against a bare-named baseline.
	dir := t.TempDir()
	suffixed := filepath.Join(dir, "multicore.json")
	if err := os.WriteFile(suffixed, []byte(
		`[{"name":"BenchmarkSimulation-4","iters":5,"ns_per_op":1000,"bytes_per_op":10,"allocs_per_op":77}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur, err := loadResults(suffixed)
	if err != nil {
		t.Fatal(err)
	}
	if cur[0].Name != "BenchmarkSimulation" {
		t.Fatalf("name = %q, want suffix stripped", cur[0].Name)
	}
	base := []Result{res("BenchmarkSimulation", 1000, 77)}
	rep := Compare(base, cur, 0.25, true, true)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none — suffixed names must match bare baseline", rep.Failures)
	}
}
