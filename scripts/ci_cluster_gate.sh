#!/bin/sh
# Multi-replica determinism gate for the distributed sweep tier.
#
# Topology: one solo server (the reference), one coordinator, two
# worker replicas. The gate passes only if:
#
#   1. a multi-curve sweep through the coordinator answers
#      byte-for-byte what the solo server answers,
#   2. the coordinator actually dispatched shards (did not quietly run
#      everything locally),
#   3. with one worker SIGKILLed mid-shard, the coordinator re-dispatches
#      to the surviving peer and the merged output is STILL byte-identical
#      to solo.
#
# Requires: curl, jq. Usage: ci_cluster_gate.sh [base-port]
# Set CLUSTER_GATE_DIAG to a directory to keep logs/responses for
# artifact upload on failure.
set -e

P0="${1:-8391}" # solo
P1=$((P0 + 1))  # worker 1 (the one that dies)
P2=$((P0 + 2))  # worker 2
P3=$((P0 + 3))  # coordinator

if [ -n "${CLUSTER_GATE_DIAG:-}" ]; then
	workdir="$CLUSTER_GATE_DIAG"
	mkdir -p "$workdir"
	keep_workdir=yes
else
	workdir=$(mktemp -d)
	keep_workdir=""
fi
pids=""
cleanup() {
	for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
	[ -n "$keep_workdir" ] || rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/extrap" ./cmd/extrap

# start_server <name> <port> [extra flags...] — wait for readiness and
# record the pid in <name>_pid.
start_server() {
	name=$1
	port=$2
	shift 2
	"$workdir/extrap" serve -addr "127.0.0.1:$port" -timeout 300s "$@" \
		>> "$workdir/$name.log" 2>&1 &
	pid=$!
	pids="$pids $pid"
	eval "${name}_pid=$pid"
	for _ in $(seq 1 100); do
		if curl -sf "http://127.0.0.1:$port/v1/healthz" > /dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "cluster-gate: $name did not come up; log:" >&2
	cat "$workdir/$name.log" >&2
	exit 1
}

coord_stat() {
	curl -sf "http://127.0.0.1:$P3/debug/vars" | jq -r ".extrap_serve.cluster.$1"
}

echo "cluster-gate: starting solo reference, 2 workers, coordinator..."
start_server solo "$P0" -workers 4
start_server worker1 "$P1" -role worker -workers 1
start_server worker2 "$P2" -role worker -workers 1
start_server coord "$P3" -role coordinator -workers 4 \
	-peers "http://127.0.0.1:$P1,http://127.0.0.1:$P2"

# Phase 1: multi-curve sweep, healthy cluster. Raw response bodies must
# be byte-for-byte identical — no jq normalization allowed.
QUICK='{"benchmark":"grid","size":16,"iters":8,"machines":["cm5","generic-dm","shared-mem"],"procs":[1,2,4,8,16]}'
curl -sf -X POST -H 'Content-Type: application/json' -d "$QUICK" \
	"http://127.0.0.1:$P0/v1/sweep" -o "$workdir/solo_quick.json"
curl -sf -X POST -H 'Content-Type: application/json' -d "$QUICK" \
	"http://127.0.0.1:$P3/v1/sweep" -o "$workdir/dist_quick.json"
if ! diff -u "$workdir/solo_quick.json" "$workdir/dist_quick.json"; then
	echo "cluster-gate: distributed sweep differs from solo on a healthy cluster" >&2
	exit 1
fi
dispatched=$(coord_stat shards_dispatched)
if [ "$dispatched" -lt 1 ]; then
	echo "cluster-gate: coordinator dispatched no shards (dispatched=$dispatched) — sweeps ran locally" >&2
	exit 1
fi
echo "cluster-gate: healthy-cluster sweep byte-identical ($dispatched shards dispatched)"

# Phase 1b: fitted-mode determinism. The same dense-ladder fitted sweep
# must answer byte-for-byte identically from the solo server (-workers
# 4), a worker replica's public route (-workers 1), and the coordinator
# (sparse anchors sharded across both workers) — and the response must
# honor the fitted contract: at most 25% of cells simulated, every
# point labeled with its provenance and carrying an interval.
FITTED="{\"benchmark\":\"grid\",\"size\":64,\"iters\":8,\"machines\":[\"cm5\",\"generic-dm\"],\"procs\":[$(seq -s, 1 40)],\"mode\":\"fitted\"}"
for target in "solo $P0" "worker1 $P1" "coord $P3"; do
	name=${target% *}
	port=${target#* }
	curl -sf -X POST -H 'Content-Type: application/json' -d "$FITTED" \
		"http://127.0.0.1:$port/v1/sweep" -o "$workdir/${name}_fitted.json"
done
for name in worker1 coord; do
	if ! diff -u "$workdir/solo_fitted.json" "$workdir/${name}_fitted.json"; then
		echo "cluster-gate: fitted sweep on $name differs from solo" >&2
		exit 1
	fi
done
anchors=$(jq '[.curves[0].points[] | select(.source == "simulated")] | length' "$workdir/solo_fitted.json")
total=$(jq '.curves[0].points | length' "$workdir/solo_fitted.json")
if [ "$anchors" -lt 1 ] || [ $((anchors * 4)) -gt "$total" ]; then
	echo "cluster-gate: fitted sweep simulated $anchors of $total cells — violates the 25% anchor budget" >&2
	exit 1
fi
unlabeled=$(jq '[.curves[].points[] | select(.source == null or .interval_ms == null)] | length' "$workdir/solo_fitted.json")
if [ "$unlabeled" -ne 0 ]; then
	echo "cluster-gate: $unlabeled fitted points missing provenance or interval" >&2
	exit 1
fi
echo "cluster-gate: fitted sweep byte-identical across solo/worker/coordinator ($anchors/$total cells simulated)"

# Phase 2: heavy sweep; SIGKILL worker 1 mid-shard. Heavy enough that
# shards take seconds on a -workers 1 replica, so the kill lands while
# worker 1 holds accepted-but-unfinished shards.
HEAVY='{"benchmark":"grid","size":512,"iters":128,"machines":["cm5","generic-dm"],"procs":[1,2,4,8,16,32,64,128,256]}'
echo "cluster-gate: computing solo reference for the heavy sweep..."
curl -sf -X POST -H 'Content-Type: application/json' -d "$HEAVY" \
	"http://127.0.0.1:$P0/v1/sweep" -o "$workdir/solo_heavy.json"

echo "cluster-gate: launching distributed heavy sweep, then killing worker 1..."
d0=$(coord_stat shards_dispatched)
curl -sf -X POST -H 'Content-Type: application/json' -d "$HEAVY" \
	"http://127.0.0.1:$P3/v1/sweep" -o "$workdir/dist_heavy.json" &
curl_pid=$!

# Wait until worker 1 has accepted at least one of this sweep's shards,
# then kill it — that shard is now lost mid-flight.
accepted=0
for _ in $(seq 1 200); do
	now=$(coord_stat shards_dispatched)
	accepted=$(curl -sf "http://127.0.0.1:$P1/debug/vars" | jq -r '.extrap_serve.cluster.shards_accepted' || echo 0)
	if [ "$now" -gt "$d0" ] && [ "$accepted" -ge 1 ]; then break; fi
	sleep 0.05
done
if [ "$accepted" -lt 1 ]; then
	echo "cluster-gate: worker 1 never accepted a shard; affinity routing exercised nothing — adjust the ladder" >&2
	exit 1
fi
kill -9 "$worker1_pid"
wait "$worker1_pid" 2>/dev/null || true
echo "cluster-gate: worker 1 SIGKILLed with $accepted shards accepted"

wait "$curl_pid" || {
	echo "cluster-gate: distributed heavy sweep failed after worker death; coordinator log:" >&2
	tail -50 "$workdir/coord.log" >&2
	exit 1
}
if ! diff -u "$workdir/solo_heavy.json" "$workdir/dist_heavy.json"; then
	echo "cluster-gate: post-failover sweep differs from solo" >&2
	exit 1
fi
retried=$(coord_stat shards_retried)
local_runs=$(coord_stat shards_local)
if [ "$((retried + local_runs))" -lt 1 ]; then
	echo "cluster-gate: no shard was retried or run locally after the kill (retried=$retried local=$local_runs) — the failure path never engaged" >&2
	exit 1
fi
echo "cluster-gate: OK — byte-identical after worker death (retried=$retried local=$local_runs)"
