#!/bin/sh
# Crash/restart durability gate for the artifact store + async jobs.
#
# Scenario: start `extrap serve` with a durable store, submit a slow
# sweep job, kill the server with SIGKILL once some — but not all —
# grid cells have landed, then restart it on the same -store-dir. The
# gate passes only if:
#
#   1. the restarted server resumes the job and completes it,
#   2. the cells finished before the kill are loaded from the store
#      (cells_loaded > 0), not re-simulated,
#   3. the job's result is byte-identical to what the synchronous
#      POST /v1/sweep endpoint computes for the same request.
#
# Requires: curl, jq. Usage: ci_restart_gate.sh [port]
set -e

PORT="${1:-8291}"
BASE="http://127.0.0.1:$PORT"
# Heavy enough that a sequential (-workers 1) run of the ladder takes
# seconds — the kill must land mid-job, and the script fails loudly if
# the job outruns it.
BODY='{"benchmark":"grid","size":512,"iters":128,"machine":"cm5","procs":[1,2,4,8,16,32,64,128,256]}'

workdir=$(mktemp -d)
storedir="$workdir/store"
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/extrap" ./cmd/extrap

start_server() {
	"$workdir/extrap" serve -addr "127.0.0.1:$PORT" -store-dir "$storedir" \
		-workers 1 -timeout 300s >> "$workdir/serve.log" 2>&1 &
	serve_pid=$!
	for _ in $(seq 1 100); do
		if curl -sf "$BASE/v1/healthz" > /dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "restart-gate: server did not come up; log:" >&2
	cat "$workdir/serve.log" >&2
	exit 1
}

echo "restart-gate: starting server, submitting job..."
start_server
job=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")
id=$(echo "$job" | jq -r .id)
[ -n "$id" ] && [ "$id" != "null" ] || { echo "restart-gate: bad submit response: $job" >&2; exit 1; }

# Kill the moment at least one cell has landed while the job is still
# running. SIGKILL: no graceful shutdown, no index flush — the restart
# must recover from the objects on disk alone.
killed=""
for _ in $(seq 1 1200); do
	snap=$(curl -sf "$BASE/v1/jobs/$id")
	status=$(echo "$snap" | jq -r .status)
	done_cells=$(echo "$snap" | jq -r .done_cells)
	total_cells=$(echo "$snap" | jq -r .total_cells)
	if [ "$status" = "running" ] && [ "$done_cells" -ge 1 ] && [ "$done_cells" -lt "$total_cells" ]; then
		kill -9 "$serve_pid"
		wait "$serve_pid" 2>/dev/null || true
		killed=yes
		echo "restart-gate: killed server at $done_cells/$total_cells cells"
		break
	fi
	case "$status" in
		done|failed|cancelled)
			echo "restart-gate: job reached '$status' before the kill — workload too fast for this machine; grow BODY" >&2
			exit 1 ;;
	esac
	sleep 0.05
done
[ -n "$killed" ] || { echo "restart-gate: job never started within the poll window" >&2; exit 1; }
cells_at_kill="$done_cells"

echo "restart-gate: restarting on the same store..."
start_server

for _ in $(seq 1 2400); do
	snap=$(curl -sf "$BASE/v1/jobs/$id")
	status=$(echo "$snap" | jq -r .status)
	case "$status" in
		done) break ;;
		failed|cancelled)
			echo "restart-gate: resumed job ended '$status': $snap" >&2
			exit 1 ;;
	esac
	sleep 0.05
done
[ "$status" = "done" ] || { echo "restart-gate: resumed job did not finish" >&2; exit 1; }
echo "$snap" | jq -c 'del(.result)'

loaded=$(curl -sf "$BASE/debug/vars" | jq -r .extrap_serve.jobs.cells_loaded)
if [ "$loaded" -lt "$cells_at_kill" ]; then
	echo "restart-gate: only $loaded cells loaded from the store, expected ≥ $cells_at_kill — completed cells were re-simulated" >&2
	exit 1
fi
echo "restart-gate: $loaded cells restored from the store, not re-simulated"

echo "$snap" | jq -cS .result > "$workdir/job-result.json"
curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/sweep" | jq -cS . > "$workdir/sync-result.json"
if ! diff -u "$workdir/sync-result.json" "$workdir/job-result.json"; then
	echo "restart-gate: resumed job result differs from synchronous sweep" >&2
	exit 1
fi
echo "restart-gate: OK — job survived SIGKILL and completed byte-identically"
