#!/bin/sh
# Benchmark regression gate.
#
# Usage: ci_bench_gate.sh [base-ref]
#
# The two metrics gate against different baselines because they have
# different trust models:
#
#   - ns/op is machine-specific, so with a usable base ref the script
#     benchmarks that ref in a temporary worktree and applies the
#     tolerance band (BENCH_TOLERANCE, default ±25%) against a snapshot
#     from the same machine in the same run. Comparing against a
#     committed baseline recorded on other hardware would false-fail or
#     false-pass on runner speed alone.
#   - allocs/op is deterministic, so it always gates hard against the
#     committed BENCH_baseline.json — a ceiling a PR can deliberately
#     raise with `make bench-baseline`, which the immutable base-ref
#     measurement could never allow.
#
# Without a base ref — or when the ref is missing or predates
# scripts/bench.sh (first push, forced push, shallow clone) — only the
# allocs gate runs; ns/op drift against the committed baseline is
# reported as a note, not a failure.
#
# Set BENCH_DIAG_DIR to a directory to keep the measured snapshots
# (current.json, baseline.json) for artifact upload when the gate fails.
set -e

base_ref="$1"
tolerance="${BENCH_TOLERANCE:-0.25}"

tmpdir=$(mktemp -d)
cleanup() {
	git worktree remove --force "$tmpdir/base" 2>/dev/null || true
	rm -rf "$tmpdir"
}
trap cleanup EXIT

# snapshot <file> — mirror a measurement into the diagnostics dir the
# moment it exists, so a later failure still has it.
snapshot() {
	[ -n "${BENCH_DIAG_DIR:-}" ] || return 0
	mkdir -p "$BENCH_DIAG_DIR"
	cp "$1" "$BENCH_DIAG_DIR/"
}

echo "bench-gate: benchmarking working tree..."
./scripts/bench.sh > "$tmpdir/current.json"
snapshot "$tmpdir/current.json"

if [ -n "$base_ref" ] &&
	git rev-parse --verify --quiet "$base_ref^{commit}" >/dev/null &&
	git cat-file -e "$base_ref:scripts/bench.sh" 2>/dev/null; then
	echo "bench-gate: benchmarking base $(git rev-parse --short "$base_ref") on this machine..."
	git worktree add --detach "$tmpdir/base" "$base_ref" >/dev/null 2>&1
	(cd "$tmpdir/base" && ./scripts/bench.sh) > "$tmpdir/baseline.json"
	snapshot "$tmpdir/baseline.json"
	echo "bench-gate: ns/op vs same-machine base snapshot"
	go run ./scripts/benchgate \
		-baseline "$tmpdir/baseline.json" -current "$tmpdir/current.json" \
		-tolerance "$tolerance" -ns-only
else
	echo "bench-gate: no usable base ref; ns/op gate skipped (committed baseline is from different hardware)"
fi

echo "bench-gate: allocs/op vs committed BENCH_baseline.json"
go run ./scripts/benchgate \
	-baseline BENCH_baseline.json -current "$tmpdir/current.json" \
	-tolerance "$tolerance" -allocs-only
