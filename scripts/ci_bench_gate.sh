#!/bin/sh
# Benchmark regression gate.
#
# Usage: ci_bench_gate.sh [base-ref]
#
# The two metrics gate against different baselines because they have
# different trust models:
#
#   - ns/op is machine-specific, so with a usable base ref the script
#     benchmarks that ref in a temporary worktree and applies the
#     tolerance band (BENCH_TOLERANCE, default ±25%) against a snapshot
#     from the same machine in the same run. Comparing against a
#     committed baseline recorded on other hardware would false-fail or
#     false-pass on runner speed alone.
#   - allocs/op is deterministic, so it always gates hard against the
#     committed BENCH_baseline.json — a ceiling a PR can deliberately
#     raise with `make bench-baseline`, which the immutable base-ref
#     measurement could never allow.
#
# Without a base ref — or when the ref is missing or predates
# scripts/bench.sh (first push, forced push, shallow clone) — only the
# allocs gate runs; ns/op drift against the committed baseline is
# reported as a note, not a failure.
#
# Set BENCH_DIAG_DIR to a directory to keep the measured snapshots
# (current.json, baseline.json), hand-rolled benchstat-style comparison
# tables (benchstat_*.txt), and CPU/heap profiles of the working-tree
# run (profiles/) for artifact upload when the gate fails.
set -e

base_ref="$1"
tolerance="${BENCH_TOLERANCE:-0.25}"

# Profile the working-tree benchmark run into the diagnostics dir so a
# failing gate uploads pprof data alongside the numbers. An explicit
# PROFILE_DIR from the caller wins.
if [ -n "${BENCH_DIAG_DIR:-}" ] && [ -z "${PROFILE_DIR:-}" ]; then
	PROFILE_DIR="$BENCH_DIAG_DIR/profiles"
fi

tmpdir=$(mktemp -d)
cleanup() {
	git worktree remove --force "$tmpdir/base" 2>/dev/null || true
	rm -rf "$tmpdir"
}
trap cleanup EXIT

# snapshot <file> — mirror a measurement into the diagnostics dir the
# moment it exists, so a later failure still has it.
snapshot() {
	[ -n "${BENCH_DIAG_DIR:-}" ] || return 0
	mkdir -p "$BENCH_DIAG_DIR"
	cp "$1" "$BENCH_DIAG_DIR/"
}

# tee_diag <file> — pass stdin through to stdout, also keeping a copy in
# the diagnostics dir when one is configured.
tee_diag() {
	if [ -n "${BENCH_DIAG_DIR:-}" ]; then
		mkdir -p "$BENCH_DIAG_DIR"
		tee "$BENCH_DIAG_DIR/$1"
	else
		cat
	fi
}

# benchstat_table <old.json> <new.json> — hand-rolled benchstat-style
# old-vs-new table (benchstat itself cannot be installed in CI, and the
# snapshots are single-sample JSON, not `go test -bench` text anyway).
# One row per benchmark in either snapshot, baseline order first.
benchstat_table() {
	awk '
		function val(line, key,    r) {
			r = line
			if (!sub(".*\"" key "\":", "", r)) return ""
			sub(/[,}].*/, "", r)
			return r
		}
		function fmtdelta(o, n) {
			if (o == "" || n == "" || o == "null" || n == "null" || o + 0 <= 0) return "~"
			return sprintf("%+.1f%%", (n - o) / o * 100)
		}
		function orval(v) { return (v == "" || v == "null") ? "-" : v }
		/"name":/ {
			n = val($0, "name"); gsub(/"/, "", n)
			if (NR == FNR) {
				if (!(n in ons)) order[++cnt] = n
				ons[n] = val($0, "ns_per_op"); oal[n] = val($0, "allocs_per_op")
			} else {
				if (!(n in ons) && !(n in nns)) order[++cnt] = n
				nns[n] = val($0, "ns_per_op"); nal[n] = val($0, "allocs_per_op")
			}
		}
		END {
			printf "%-48s %14s %14s %8s | %11s %11s %8s\n", \
				"name", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
			for (i = 1; i <= cnt; i++) {
				n = order[i]
				printf "%-48s %14s %14s %8s | %11s %11s %8s\n", n, \
					orval(ons[n]), orval(nns[n]), fmtdelta(ons[n], nns[n]), \
					orval(oal[n]), orval(nal[n]), fmtdelta(oal[n], nal[n])
			}
		}
	' "$1" "$2"
}

echo "bench-gate: benchmarking working tree..."
PROFILE_DIR="${PROFILE_DIR:-}" ./scripts/bench.sh > "$tmpdir/current.json"
snapshot "$tmpdir/current.json"

if [ -n "$base_ref" ] &&
	git rev-parse --verify --quiet "$base_ref^{commit}" >/dev/null &&
	git cat-file -e "$base_ref:scripts/bench.sh" 2>/dev/null; then
	echo "bench-gate: benchmarking base $(git rev-parse --short "$base_ref") on this machine..."
	git worktree add --detach "$tmpdir/base" "$base_ref" >/dev/null 2>&1
	(cd "$tmpdir/base" && PROFILE_DIR= ./scripts/bench.sh) > "$tmpdir/baseline.json"
	snapshot "$tmpdir/baseline.json"
	echo "bench-gate: old-vs-new, base ref vs working tree (same machine)"
	benchstat_table "$tmpdir/baseline.json" "$tmpdir/current.json" | tee_diag benchstat_base.txt
	echo "bench-gate: ns/op vs same-machine base snapshot"
	go run ./scripts/benchgate \
		-baseline "$tmpdir/baseline.json" -current "$tmpdir/current.json" \
		-tolerance "$tolerance" -ns-only
else
	echo "bench-gate: no usable base ref; ns/op gate skipped (committed baseline is from different hardware)"
fi

echo "bench-gate: old-vs-new, committed BENCH_baseline.json vs working tree"
benchstat_table BENCH_baseline.json "$tmpdir/current.json" | tee_diag benchstat_committed.txt
echo "bench-gate: allocs/op vs committed BENCH_baseline.json"
go run ./scripts/benchgate \
	-baseline BENCH_baseline.json -current "$tmpdir/current.json" \
	-tolerance "$tolerance" -allocs-only
