#!/bin/sh
# Run the hot-path benchmarks and emit one JSON object per benchmark on
# stdout (a JSON array). BENCH_PATTERN / BENCHTIME override the set and
# the per-benchmark budget.
#
# With the default pattern, every benchmark named in BENCH_baseline.json
# must produce an output line; a renamed or deleted benchmark otherwise
# silently drops out of the gate and regressions in it go unwatched.
#
# Set PROFILE_DIR to a directory to also capture CPU and heap profiles
# of each benchmark binary run (main.cpu.pprof/main.mem.pprof for the
# main set, stream.*.pprof for the pinned streaming run) — the bench
# gate points this at its diagnostics dir so a failing gate uploads the
# profiles alongside the snapshots.
set -e

PATTERN="${BENCH_PATTERN:-BenchmarkSimulation\$|BenchmarkSimulationArena\$|BenchmarkSweepBatch\$|BenchmarkSweepFitted\$|BenchmarkFullPipeline\$|BenchmarkTraceCodec|BenchmarkFig7MgridStartup\$|BenchmarkStoreRoundTrip\$|BenchmarkPatternReplay}"
TIME="${BENCHTIME:-1s}"
# The streaming-pipeline benchmark takes hundreds of ms per iteration,
# so a time budget yields low single-digit iteration counts and noisy
# ns/op. Pin an explicit iteration count (STREAM_BENCHTIME overrides)
# so snapshots are comparable run to run. Skipped when BENCH_PATTERN
# narrows the set explicitly.
STREAM_TIME="${STREAM_BENCHTIME:-10x}"

# profile_flags <tag> — emit -cpuprofile/-memprofile flags when
# PROFILE_DIR is set (profiles land as <tag>.cpu.pprof/<tag>.mem.pprof).
profile_flags() {
  [ -n "${PROFILE_DIR:-}" ] || return 0
  mkdir -p "$PROFILE_DIR"
  printf -- '-cpuprofile %s/%s.cpu.pprof -memprofile %s/%s.mem.pprof' \
    "$PROFILE_DIR" "$1" "$PROFILE_DIR" "$1"
}

out=$(mktemp)
raw=$(mktemp)
trap 'rm -f "$out" "$raw"' EXIT

# Collect the raw `go test` output before parsing it, rather than
# piping: on the left side of a pipe `set -e` cannot see a build or
# benchmark failure, and the run would emit a syntactically valid but
# partial JSON snapshot.
{
  # shellcheck disable=SC2046
  go test -run '^$' -bench "$PATTERN" -benchtime "$TIME" -benchmem $(profile_flags main) .
  if [ -z "${BENCH_PATTERN:-}" ]; then
    # shellcheck disable=SC2046
    go test -run '^$' -bench 'BenchmarkStreamPipelineMemory$' -benchtime "$STREAM_TIME" -benchmem $(profile_flags stream) .
  fi
} > "$raw"
awk '
  # Columns vary (MB/s and custom metrics appear between ns/op and
  # B/op), so locate each value by the unit that follows it.
  /^Benchmark/ {
    # go test appends a -<GOMAXPROCS> suffix on multi-core machines
    # (BenchmarkSimulation-4); strip it so snapshots compare across
    # machines with different core counts.
    sub(/-[0-9]+$/, "", $1)
    ns = b = a = "null"
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i-1)
      if ($i == "B/op") b = $(i-1)
      if ($i == "allocs/op") a = $(i-1)
    }
    printf "%s  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, $1, $2, ns, b, a
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' < "$raw" > "$out"
cat "$out"

# Cross-check against the committed baseline: with the default pattern,
# a baseline benchmark that produced no line means the run is
# incomplete (renamed/deleted benchmark, build skew) and must fail
# loudly rather than let the gate silently stop watching it.
if [ -z "${BENCH_PATTERN:-}" ] && [ -f BENCH_baseline.json ]; then
  missing=""
  for name in $(grep -o '"name":"[^"]*"' BENCH_baseline.json | cut -d'"' -f4); do
    grep -q "\"name\":\"$name\"" "$out" || missing="$missing $name"
  done
  if [ -n "$missing" ]; then
    echo "bench.sh: baseline benchmarks produced no output line:$missing" >&2
    exit 1
  fi
fi
