GO ?= go

.PHONY: all build test race vet bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Snapshot the hot-path benchmarks into BENCH_baseline.json. Compare a
# working tree against the committed snapshot by re-running and diffing.
bench:
	./scripts/bench.sh > BENCH_baseline.json
	@cat BENCH_baseline.json
