GO ?= go
BENCH_TOLERANCE ?= 0.25
# Base ref for the same-machine bench gate. HEAD gates the working tree
# against the last commit; CI passes the PR base / previous push sha.
BASE ?= HEAD

.PHONY: all build test race vet lint check bench bench-baseline bench-gate

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt has no "check" mode, so fail on any file it would rewrite.
# staticcheck is optional locally; CI installs it.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

check: lint build race

# Print the hot-path benchmark snapshot without touching the committed
# baseline. Use bench-baseline to (deliberately) re-snapshot it.
bench:
	./scripts/bench.sh

bench-baseline:
	./scripts/bench.sh > BENCH_baseline.json
	@cat BENCH_baseline.json

# Benchmark $(BASE) in a worktree on this machine, then gate the working
# tree against it: ns/op may drift ±$(BENCH_TOLERANCE), allocs/op may not
# grow. Without a usable base ref the script falls back to the committed
# BENCH_baseline.json in allocs-only mode (ns/op from other hardware
# carries no signal).
bench-gate:
	BENCH_TOLERANCE=$(BENCH_TOLERANCE) ./scripts/ci_bench_gate.sh $(BASE)
