GO ?= go
BENCH_TOLERANCE ?= 0.25

.PHONY: all build test race vet lint check bench bench-baseline bench-gate

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt has no "check" mode, so fail on any file it would rewrite.
# staticcheck is optional locally; CI installs it.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

check: lint build race

# Print the hot-path benchmark snapshot without touching the committed
# baseline. Use bench-baseline to (deliberately) re-snapshot it.
bench:
	./scripts/bench.sh

bench-baseline:
	./scripts/bench.sh > BENCH_baseline.json
	@cat BENCH_baseline.json

# Re-run the benchmarks and gate the result against the committed
# baseline: ns/op may drift ±$(BENCH_TOLERANCE), allocs/op may not grow.
bench-gate:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	./scripts/bench.sh > "$$tmp"; \
	$(GO) run ./scripts/benchgate -baseline BENCH_baseline.json -current "$$tmp" -tolerance $(BENCH_TOLERANCE)
