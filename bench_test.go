package extrap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at full scale. Run all of them with
//
//	go test -bench=. -benchmem
//
// and print the regenerated rows/series with -v (each benchmark logs its
// rendered output once). Reported custom metrics summarize the headline
// result of each experiment so regressions in *shape* — not just speed —
// are visible in benchmark diffs.

import (
	"bytes"
	"context"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/profile"
	"extrap/internal/sim"
	"extrap/internal/store"
	"extrap/internal/timeline"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// benchExperiment runs one full-scale experiment per iteration and logs
// its rendered tables and figures once.
func benchExperiment(b *testing.B, id string) *experiments.Output {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *experiments.Output
	for i := 0; i < b.N; i++ {
		out, err = e.Run(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	out.Render(&buf)
	b.Log("\n" + buf.String())
	return out
}

// seriesValue digs a named series' value at an x position out of a figure.
func seriesValue(out *experiments.Output, figure int, series string, xIdx int) float64 {
	f := out.Figures[figure]
	for _, s := range f.Series {
		if s.Name == series && xIdx < len(s.Values) {
			return s.Values[xIdx]
		}
	}
	return 0
}

// BenchmarkFig4SpeedupCurves regenerates Figure 4: speedup curves for the
// whole benchmark suite under the distributed-memory parameter set.
func BenchmarkFig4SpeedupCurves(b *testing.B) {
	out := benchExperiment(b, "fig4")
	b.ReportMetric(seriesValue(out, 0, "embar", 5), "embar-speedup-32p")
	b.ReportMetric(seriesValue(out, 0, "grid", 5), "grid-speedup-32p")
}

// BenchmarkFig5GridExtrapolations regenerates Figure 5: Grid under the
// five environments of the transfer-size investigation.
func BenchmarkFig5GridExtrapolations(b *testing.B) {
	out := benchExperiment(b, "fig5")
	b.ReportMetric(seriesValue(out, 1, "dm-20MB/s (estimate)", 5), "estimate-speedup-32p")
	b.ReportMetric(seriesValue(out, 1, "dm-20MB/s (actual size)", 5), "actual-speedup-32p")
	b.ReportMetric(seriesValue(out, 1, "ideal", 5), "ideal-speedup-32p")
}

// BenchmarkFig6MipsRatio regenerates Figure 6: processor-speed
// extrapolation across four benchmarks.
func BenchmarkFig6MipsRatio(b *testing.B) {
	out := benchExperiment(b, "fig6")
	// Embar times scale ~2× with MipsRatio 2.0 vs 1.0 at every point.
	slow := seriesValue(out, 0, "MipsRatio=2.0", 5)
	base := seriesValue(out, 0, "MipsRatio=1.0", 5)
	if base > 0 {
		b.ReportMetric(slow/base, "embar-time-ratio-2.0-vs-1.0")
	}
}

// BenchmarkFig7MgridStartup regenerates Figure 7: MipsRatio ×
// CommStartupTime on Mgrid, tracking the minimum-time processor count.
func BenchmarkFig7MgridStartup(b *testing.B) {
	out := benchExperiment(b, "fig7")
	for _, row := range out.Tables[0].Rows {
		if len(row) >= 3 {
			if v, err := strconv.Atoi(row[2]); err == nil && row[0] == "1.00" && strings.HasPrefix(row[1], "5.000") {
				b.ReportMetric(float64(v), "best-procs-ratio1-startup5us")
			}
		}
	}
}

// BenchmarkFig8ServicePolicies regenerates Figure 8: remote request
// service policies on Cyclic and Grid.
func BenchmarkFig8ServicePolicies(b *testing.B) {
	out := benchExperiment(b, "fig8")
	ni := seriesValue(out, 1, "no-interrupt/poll", 3)
	in := seriesValue(out, 1, "interrupt", 3)
	if in > 0 {
		b.ReportMetric(ni/in, "grid-nointerrupt-vs-interrupt-8p")
	}
}

// BenchmarkFig9MatmulValidation regenerates Figure 9: Matmul predicted
// (ExtraP with Table 3 parameters) vs actual (direct CM-5 model), with
// the ranking-agreement analysis.
func BenchmarkFig9MatmulValidation(b *testing.B) {
	out := benchExperiment(b, "fig9")
	agree := 0.0
	for _, tab := range out.Tables {
		if strings.Contains(tab.Title, "Ranking") {
			for _, row := range tab.Rows {
				if row[3] == "yes" || row[3] == "tie" {
					agree++
				}
			}
		}
	}
	b.ReportMetric(agree, "best-choice-agreements")
}

// BenchmarkTable1BarrierParams regenerates Table 1 and its sensitivity
// sweep.
func BenchmarkTable1BarrierParams(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkTable2Suite regenerates Table 2: the benchmark inventory with
// verification.
func BenchmarkTable2Suite(b *testing.B) {
	out := benchExperiment(b, "table2")
	verified := 0.0
	for _, row := range out.Tables[0].Rows {
		if row[len(row)-1] == "yes" {
			verified++
		}
	}
	b.ReportMetric(verified, "verified-benchmarks")
}

// BenchmarkTable3CM5Params regenerates Table 3: the CM-5 parameter
// derivation (MFLOPS microbenchmark and parameter set).
func BenchmarkTable3CM5Params(b *testing.B) {
	benchExperiment(b, "table3")
}

// BenchmarkAblationBarrierAlgorithms compares the paper's linear barrier
// against tree and hardware alternatives.
func BenchmarkAblationBarrierAlgorithms(b *testing.B) {
	benchExperiment(b, "ablation-barrier")
}

// BenchmarkAblationContention toggles the analytical contention model.
func BenchmarkAblationContention(b *testing.B) {
	benchExperiment(b, "ablation-contention")
}

// BenchmarkAblationMultithread exercises the n-threads-on-m-processors
// extension.
func BenchmarkAblationMultithread(b *testing.B) {
	benchExperiment(b, "ablation-multithread")
}

// --- component micro-benchmarks ---------------------------------------------

// measureGrid produces a mid-size Grid trace for the pipeline micro-
// benchmarks.
func measureGrid(b *testing.B, threads int) *Trace {
	b.Helper()
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.Measure(g.Factory(benchmarks.Size{N: 32, Iters: 60})(threads), core.MeasureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkMeasurement times the instrumented 1-processor run itself.
func BenchmarkMeasurement(b *testing.B) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	f := g.Factory(benchmarks.Size{N: 32, Iters: 60})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Measure(f(16), core.MeasureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslation times trace translation on a Grid trace.
func BenchmarkTranslation(b *testing.B) {
	tr := measureGrid(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events))/1000, "kevents")
}

// BenchmarkSimulation times the trace-driven simulation on a Grid trace.
func BenchmarkSimulation(b *testing.B) {
	tr := measureGrid(b, 16)
	pt, err := translate.Translate(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.GenericDM().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(pt, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.Events())/1000, "kevents")
}

// BenchmarkSimulationArena is BenchmarkSimulation with the dense
// simulator state reused through a sim.Arena across runs — the shape
// sequential in-memory grid cells now take via the runner's arena pool.
// The B/op delta against BenchmarkSimulation is the pooled-slice
// saving (~486 KB and ~70 allocs per cell without the arena).
func BenchmarkSimulationArena(b *testing.B) {
	tr := measureGrid(b, 16)
	pt, err := translate.Translate(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.GenericDM().Config
	arena := sim.NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateArena(arena, pt, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.Events())/1000, "kevents")
}

// sweepBatchGrid builds the machine-parameter what-if grid for
// BenchmarkSweepBatch: 24 GenericDM variants on one processor with the
// model barrier, varying MIPS ratio × barrier cost. Every cell shares
// the single 16-thread Grid measurement — exactly the workload batched
// replay amortizes, since the per-cell streaming path must decode and
// translate that shared trace once per cell.
func sweepBatchGrid(b *testing.B) []experiments.SweepJob {
	b.Helper()
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	sz := benchmarks.Size{N: 32, Iters: 60}
	base := machine.GenericDM().Config
	base.Procs = 1
	base.Barrier.Algorithm = sim.LinearBarrier
	base.Barrier.ByMsgs = false
	var jobs []experiments.SweepJob
	for _, mips := range []float64{0.5, 1, 2, 4} {
		for _, bt := range []vtime.Time{5, 10, 25, 50, 100, 200} {
			cfg := base
			cfg.MipsRatio = mips
			cfg.Barrier.ModelTime = bt * vtime.Microsecond
			jobs = append(jobs, experiments.SweepJob{
				Name:    g.Name(),
				Size:    sz,
				Factory: g.Factory(sz),
				Mode:    pcxx.ActualSize,
				Cfg:     cfg,
				Procs:   []int{16},
			})
		}
	}
	return jobs
}

// BenchmarkSweepBatch measures sweep throughput over the 24-cell
// machine-parameter grid on the streaming service, per-cell versus
// batched. One worker in both arms, so the ratio isolates the kernel:
// the sequential arm replays decode→translate→simulate per cell, the
// batched arm decodes and translates the shared trace once and
// advances 8 machine models per pass. Results are byte-identical at
// any batch size (covered by the determinism tests); the committed
// baseline pins batch8 at ≥ 3× sequential cells/sec with fewer
// allocs per cell.
func BenchmarkSweepBatch(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{{"sequential", 1}, {"batch8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			svc := experiments.NewStreamingService(1, 64, 0)
			svc.SetBatchSize(bc.batch)
			jobs := sweepBatchGrid(b)
			ctx := context.Background()
			if _, err := svc.SweepGrid(ctx, jobs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.SweepGrid(ctx, jobs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(len(jobs))*float64(b.N)/secs, "cells/s")
			}
		})
	}
}

// sweepFittedJob is the dense-ladder workload for BenchmarkSweepFitted:
// one Grid curve over every processor count 1..32. The exact arm
// simulates all 32 cells; the fitted arm simulates only the model
// package's anchor set (8 cells at the default 25% budget) and answers
// the rest from the least-squares fit.
func sweepFittedJob(b *testing.B) experiments.SweepJob {
	b.Helper()
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	sz := benchmarks.Size{N: 32, Iters: 60}
	procs := make([]int, 32)
	for i := range procs {
		procs[i] = i + 1
	}
	return experiments.SweepJob{
		Name:    g.Name(),
		Size:    sz,
		Factory: g.Factory(sz),
		Mode:    pcxx.ActualSize,
		Cfg:     machine.GenericDM().Config,
		Procs:   procs,
	}
}

// BenchmarkSweepFitted measures dense-ladder sweep throughput, exact
// versus fitted, on the streaming service with warm measurement caches
// — so the arms isolate per-cell simulation against sparse-anchor
// simulation plus the fit's arithmetic. cells/s counts ladder cells
// answered, whatever their provenance; the fitted arm's advantage is
// the 4× fewer simulations behind those answers.
func BenchmarkSweepFitted(b *testing.B) {
	for _, bc := range []struct {
		name   string
		fitted bool
	}{{"exact", false}, {"fitted", true}} {
		b.Run(bc.name, func(b *testing.B) {
			svc := experiments.NewStreamingService(1, 64, 0)
			jobs := []experiments.SweepJob{sweepFittedJob(b)}
			ctx := context.Background()
			run := func() ([][]metrics.Point, error) {
				if bc.fitted {
					return svc.SweepGridFitted(ctx, jobs)
				}
				return svc.SweepGrid(ctx, jobs)
			}
			// Warm every measurement either arm can touch so the timed
			// region is simulation + fit, not benchmark measurement.
			if _, err := svc.SweepGrid(ctx, jobs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(len(jobs[0].Procs))*float64(b.N)/secs, "cells/s")
			}
		})
	}
}

// BenchmarkFullPipeline times measure→translate→simulate end to end.
func BenchmarkFullPipeline(b *testing.B) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	f := g.Factory(benchmarks.Size{N: 32, Iters: 60})
	cfg := machine.GenericDM().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(f(16), core.MeasureOptions{SizeMode: pcxx.ActualSize}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileAnalyze times the performance-debugging analyzer on an
// extrapolated Grid trace.
func BenchmarkProfileAnalyze(b *testing.B) {
	tr := measureGrid(b, 16)
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Analyze(out.Result.Trace); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out.Result.Trace.Events))/1000, "kevents")
}

// BenchmarkTimelineBuild times timeline construction on the same trace.
func BenchmarkTimelineBuild(b *testing.B) {
	tr := measureGrid(b, 16)
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeline.Build(out.Result.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// --- streaming-pipeline memory benchmarks ------------------------------------

// syntheticBigMeasurement builds a merged 1-processor measurement of at
// least minEvents events: threads iterating batches of remote reads
// between barriers. The measurement itself is cheap (virtual time), but
// the trace is large — the shape the streaming pipeline exists for.
// Communication dominates (many events per barrier) so the trace's
// length and its barrier count scale independently, keeping per-barrier
// bookkeeping out of the per-event memory picture.
func syntheticBigMeasurement(b *testing.B, threads, iters, minEvents int) *Trace {
	b.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(threads))
	c := pcxx.PerThread[float64](rt, "x", int64(threads))
	tr, err := rt.Run(func(th *pcxx.Thread) {
		for i := 0; i < iters; i++ {
			for j := 0; j < 16; j++ {
				th.Compute(vtime.Time(j%4+1) * 10 * vtime.Microsecond)
				_ = c.Read(th, (th.ID()+j+1)%threads)
			}
			th.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(tr.Events) < minEvents {
		b.Fatalf("synthetic trace has %d events, want ≥ %d", len(tr.Events), minEvents)
	}
	return tr
}

// sampleHeapPeak runs fn while sampling runtime.ReadMemStats and returns
// fn's duration-peak of live heap bytes above the pre-fn floor. The
// floor is taken after a GC so resident setup state (e.g. the encoded
// source bytes) is excluded — the result is what fn itself keeps live.
// GC is tightened while fn runs: HeapAlloc counts not-yet-collected
// garbage too, and at the default GOGC the collector lets the heap
// double before running, which would drown the live footprint in
// headroom proportional to the resident baseline.
func sampleHeapPeak(b *testing.B, fn func()) uint64 {
	b.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	peak := make(chan uint64)
	go func() {
		var p uint64
		var ms runtime.MemStats
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > p {
					p = ms.HeapAlloc
				}
				peak <- p
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > p {
					p = ms.HeapAlloc
				}
			}
		}
	}()
	fn()
	close(stop)
	p := <-peak
	if p <= base.HeapAlloc {
		return 0
	}
	return p - base.HeapAlloc
}

// bigTraceEncoded materializes the ≥1M-event synthetic measurement once,
// encodes it in the compiled XTRP2 format (so the streaming pipeline's
// pattern-native replay path is the one measured), and returns the
// compact bytes plus the in-memory pipeline's prediction as the
// equivalence reference. The live trace is dropped before returning so
// benchmarks start from the bytes alone.
func bigTraceEncoded(b *testing.B, cfg sim.Config) (enc []byte, nEvents int, want vtime.Time) {
	b.Helper()
	tr := syntheticBigMeasurement(b, 16, 4000, 1_000_000)
	nEvents = len(tr.Events)
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		b.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Simulate(pt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), nEvents, res.TotalTime
}

// BenchmarkStreamPipelineMemory extrapolates a ≥1M-event trace through
// the bounded-memory streaming pipeline (incremental decode → streaming
// translate → streaming simulate) and reports the peak live heap the
// pipeline keeps beyond the encoded source. The peak tracks the
// translation buffer (one barrier epoch across threads), not the event
// count — compare live-bytes/event against the in-memory benchmark
// below, whose peak is the materialized trace (≥ 37 B/event) plus the
// translation. Every iteration also asserts the prediction equals the
// in-memory pipeline's.
func BenchmarkStreamPipelineMemory(b *testing.B) {
	cfg := machine.GenericDM().Config
	enc, nEvents, want := bigTraceEncoded(b, cfg)
	var maxLive uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live := sampleHeapPeak(b, func() {
			pred, err := core.ExtrapolateEncoded(context.Background(), enc, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if pred.Result.TotalTime != want {
				b.Fatalf("streaming prediction %v != in-memory %v", pred.Result.TotalTime, want)
			}
		})
		if live > maxLive {
			maxLive = live
		}
	}
	b.ReportMetric(float64(nEvents)/1e6, "Mevents")
	b.ReportMetric(float64(maxLive), "peak-live-B")
	b.ReportMetric(float64(maxLive)/float64(nEvents), "live-B/event")
}

// BenchmarkInMemoryPipelineMemory is the materializing counterpart:
// decode the whole trace, translate, simulate. Its peak live heap grows
// linearly with the event count — the baseline the streaming pipeline
// is measured against.
func BenchmarkInMemoryPipelineMemory(b *testing.B) {
	cfg := machine.GenericDM().Config
	enc, nEvents, want := bigTraceEncoded(b, cfg)
	var maxLive uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live := sampleHeapPeak(b, func() {
			tr, err := trace.ReadBinaryAny(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			oc, err := core.Extrapolate(tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if oc.Result.TotalTime != want {
				b.Fatalf("prediction %v != reference %v", oc.Result.TotalTime, want)
			}
		})
		if live > maxLive {
			maxLive = live
		}
	}
	b.ReportMetric(float64(nEvents)/1e6, "Mevents")
	b.ReportMetric(float64(maxLive), "peak-live-B")
	b.ReportMetric(float64(maxLive)/float64(nEvents), "live-B/event")
}

// BenchmarkStoreRoundTrip times one durable-store artifact round trip:
// Put an encoded mid-size Grid trace under a fresh key, then Get it
// back. Covers the content-address hash, the payload checksum, the
// atomic temp-file+rename write, and the full read-side verification.
func BenchmarkStoreRoundTrip(b *testing.B) {
	tr := measureGrid(b, 16)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	st, err := store.Open(b.TempDir(), 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "bench/store-roundtrip|" + strconv.Itoa(i)
		if err := st.Put(key, enc); err != nil {
			b.Fatal(err)
		}
		if got, ok := st.Get(key); !ok || len(got) != len(enc) {
			b.Fatal("store round trip lost the artifact")
		}
	}
}

// BenchmarkTraceCodec times the binary codec round trip.
func BenchmarkTraceCodec(b *testing.B) {
	tr := measureGrid(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(37 * len(tr.Events)))
}

// BenchmarkTraceCodecXTRP2 times the loop-compacted codec round trip on
// the same trace as BenchmarkTraceCodec — pattern mining on encode,
// compiled pattern replay on decode. SetBytes uses the same raw-record
// figure as the XTRP1 benchmark so MB/s compares event throughput, not
// wire bytes; the compression ratio is reported as its own metric.
func BenchmarkTraceCodecXTRP2(b *testing.B) {
	tr := measureGrid(b, 16)
	var flat bytes.Buffer
	if err := trace.WriteBinary(&flat, tr); err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteBinary2(&buf, tr); err != nil {
			b.Fatal(err)
		}
		ratio = float64(flat.Len()) / float64(buf.Len())
		if _, err := trace.ReadBinaryAny(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(37 * len(tr.Events)))
	b.ReportMetric(ratio, "x-smaller")
}

// BenchmarkPatternReplay compares event-by-event replay against
// pattern-native replay with steady-state fast-forward on compiled
// (XTRP2) traces of the paper kernels. Loop-heavy kernels (mgrid, grid)
// spend most of their trace inside mined repeat bodies, so the
// fast-forward skips the bulk of the simulation; embar is embarrassingly
// parallel with a tiny loop-free trace, included as the honest lower
// bound (~1×, nothing to skip). Every pattern-mode iteration asserts the
// prediction is byte-identical to the event-mode reference, and the
// fast-forward hit counters are reported per operation.
func BenchmarkPatternReplay(b *testing.B) {
	kernels := []struct {
		name string
		size benchmarks.Size
	}{
		{"mgrid", benchmarks.Size{N: 16, Iters: 240}},
		{"grid", benchmarks.Size{N: 64, Iters: 324}},
		{"embar", benchmarks.Size{N: 17}},
	}
	cfg := machine.GenericDM().Config
	for _, k := range kernels {
		g, err := benchmarks.ByName(k.name)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := core.Measure(g.Factory(k.size)(8), core.MeasureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteBinary2(&buf, tr); err != nil {
			b.Fatal(err)
		}
		enc := buf.Bytes()
		nEvents := len(tr.Events)
		ecfg := cfg
		ecfg.Replay = sim.ReplayEvent
		ref, err := core.ExtrapolateEncoded(context.Background(), enc, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		want := ref.Result.TotalTime
		for _, mode := range []sim.ReplayMode{sim.ReplayEvent, sim.ReplayPattern} {
			mcfg := cfg
			mcfg.Replay = mode
			b.Run(k.name+"/"+mode.String(), func(b *testing.B) {
				before := sim.ReadReplayCounters()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pred, err := core.ExtrapolateEncoded(context.Background(), enc, mcfg)
					if err != nil {
						b.Fatal(err)
					}
					if pred.Result.TotalTime != want {
						b.Fatalf("%s/%s prediction %v != event-replay reference %v",
							k.name, mode, pred.Result.TotalTime, want)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(nEvents)/1e3, "kevents")
				if mode == sim.ReplayPattern {
					after := sim.ReadReplayCounters()
					n := float64(b.N)
					b.ReportMetric(float64(after.FastForwards-before.FastForwards)/n, "ffwd/op")
					b.ReportMetric(float64(after.IterationsSkipped-before.IterationsSkipped)/n, "iters-skipped/op")
					b.ReportMetric(float64(after.Fallbacks-before.Fallbacks)/n, "fallbacks/op")
				}
			})
		}
	}
}
