package extrap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at full scale. Run all of them with
//
//	go test -bench=. -benchmem
//
// and print the regenerated rows/series with -v (each benchmark logs its
// rendered output once). Reported custom metrics summarize the headline
// result of each experiment so regressions in *shape* — not just speed —
// are visible in benchmark diffs.

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/profile"
	"extrap/internal/sim"
	"extrap/internal/timeline"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// benchExperiment runs one full-scale experiment per iteration and logs
// its rendered tables and figures once.
func benchExperiment(b *testing.B, id string) *experiments.Output {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *experiments.Output
	for i := 0; i < b.N; i++ {
		out, err = e.Run(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	out.Render(&buf)
	b.Log("\n" + buf.String())
	return out
}

// seriesValue digs a named series' value at an x position out of a figure.
func seriesValue(out *experiments.Output, figure int, series string, xIdx int) float64 {
	f := out.Figures[figure]
	for _, s := range f.Series {
		if s.Name == series && xIdx < len(s.Values) {
			return s.Values[xIdx]
		}
	}
	return 0
}

// BenchmarkFig4SpeedupCurves regenerates Figure 4: speedup curves for the
// whole benchmark suite under the distributed-memory parameter set.
func BenchmarkFig4SpeedupCurves(b *testing.B) {
	out := benchExperiment(b, "fig4")
	b.ReportMetric(seriesValue(out, 0, "embar", 5), "embar-speedup-32p")
	b.ReportMetric(seriesValue(out, 0, "grid", 5), "grid-speedup-32p")
}

// BenchmarkFig5GridExtrapolations regenerates Figure 5: Grid under the
// five environments of the transfer-size investigation.
func BenchmarkFig5GridExtrapolations(b *testing.B) {
	out := benchExperiment(b, "fig5")
	b.ReportMetric(seriesValue(out, 1, "dm-20MB/s (estimate)", 5), "estimate-speedup-32p")
	b.ReportMetric(seriesValue(out, 1, "dm-20MB/s (actual size)", 5), "actual-speedup-32p")
	b.ReportMetric(seriesValue(out, 1, "ideal", 5), "ideal-speedup-32p")
}

// BenchmarkFig6MipsRatio regenerates Figure 6: processor-speed
// extrapolation across four benchmarks.
func BenchmarkFig6MipsRatio(b *testing.B) {
	out := benchExperiment(b, "fig6")
	// Embar times scale ~2× with MipsRatio 2.0 vs 1.0 at every point.
	slow := seriesValue(out, 0, "MipsRatio=2.0", 5)
	base := seriesValue(out, 0, "MipsRatio=1.0", 5)
	if base > 0 {
		b.ReportMetric(slow/base, "embar-time-ratio-2.0-vs-1.0")
	}
}

// BenchmarkFig7MgridStartup regenerates Figure 7: MipsRatio ×
// CommStartupTime on Mgrid, tracking the minimum-time processor count.
func BenchmarkFig7MgridStartup(b *testing.B) {
	out := benchExperiment(b, "fig7")
	for _, row := range out.Tables[0].Rows {
		if len(row) >= 3 {
			if v, err := strconv.Atoi(row[2]); err == nil && row[0] == "1.00" && strings.HasPrefix(row[1], "5.000") {
				b.ReportMetric(float64(v), "best-procs-ratio1-startup5us")
			}
		}
	}
}

// BenchmarkFig8ServicePolicies regenerates Figure 8: remote request
// service policies on Cyclic and Grid.
func BenchmarkFig8ServicePolicies(b *testing.B) {
	out := benchExperiment(b, "fig8")
	ni := seriesValue(out, 1, "no-interrupt/poll", 3)
	in := seriesValue(out, 1, "interrupt", 3)
	if in > 0 {
		b.ReportMetric(ni/in, "grid-nointerrupt-vs-interrupt-8p")
	}
}

// BenchmarkFig9MatmulValidation regenerates Figure 9: Matmul predicted
// (ExtraP with Table 3 parameters) vs actual (direct CM-5 model), with
// the ranking-agreement analysis.
func BenchmarkFig9MatmulValidation(b *testing.B) {
	out := benchExperiment(b, "fig9")
	agree := 0.0
	for _, tab := range out.Tables {
		if strings.Contains(tab.Title, "Ranking") {
			for _, row := range tab.Rows {
				if row[3] == "yes" || row[3] == "tie" {
					agree++
				}
			}
		}
	}
	b.ReportMetric(agree, "best-choice-agreements")
}

// BenchmarkTable1BarrierParams regenerates Table 1 and its sensitivity
// sweep.
func BenchmarkTable1BarrierParams(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkTable2Suite regenerates Table 2: the benchmark inventory with
// verification.
func BenchmarkTable2Suite(b *testing.B) {
	out := benchExperiment(b, "table2")
	verified := 0.0
	for _, row := range out.Tables[0].Rows {
		if row[len(row)-1] == "yes" {
			verified++
		}
	}
	b.ReportMetric(verified, "verified-benchmarks")
}

// BenchmarkTable3CM5Params regenerates Table 3: the CM-5 parameter
// derivation (MFLOPS microbenchmark and parameter set).
func BenchmarkTable3CM5Params(b *testing.B) {
	benchExperiment(b, "table3")
}

// BenchmarkAblationBarrierAlgorithms compares the paper's linear barrier
// against tree and hardware alternatives.
func BenchmarkAblationBarrierAlgorithms(b *testing.B) {
	benchExperiment(b, "ablation-barrier")
}

// BenchmarkAblationContention toggles the analytical contention model.
func BenchmarkAblationContention(b *testing.B) {
	benchExperiment(b, "ablation-contention")
}

// BenchmarkAblationMultithread exercises the n-threads-on-m-processors
// extension.
func BenchmarkAblationMultithread(b *testing.B) {
	benchExperiment(b, "ablation-multithread")
}

// --- component micro-benchmarks ---------------------------------------------

// measureGrid produces a mid-size Grid trace for the pipeline micro-
// benchmarks.
func measureGrid(b *testing.B, threads int) *Trace {
	b.Helper()
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.Measure(g.Factory(benchmarks.Size{N: 32, Iters: 60})(threads), core.MeasureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkMeasurement times the instrumented 1-processor run itself.
func BenchmarkMeasurement(b *testing.B) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	f := g.Factory(benchmarks.Size{N: 32, Iters: 60})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Measure(f(16), core.MeasureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslation times trace translation on a Grid trace.
func BenchmarkTranslation(b *testing.B) {
	tr := measureGrid(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events))/1000, "kevents")
}

// BenchmarkSimulation times the trace-driven simulation on a Grid trace.
func BenchmarkSimulation(b *testing.B) {
	tr := measureGrid(b, 16)
	pt, err := translate.Translate(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.GenericDM().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(pt, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.Events())/1000, "kevents")
}

// BenchmarkFullPipeline times measure→translate→simulate end to end.
func BenchmarkFullPipeline(b *testing.B) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		b.Fatal(err)
	}
	f := g.Factory(benchmarks.Size{N: 32, Iters: 60})
	cfg := machine.GenericDM().Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(f(16), core.MeasureOptions{SizeMode: pcxx.ActualSize}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileAnalyze times the performance-debugging analyzer on an
// extrapolated Grid trace.
func BenchmarkProfileAnalyze(b *testing.B) {
	tr := measureGrid(b, 16)
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Analyze(out.Result.Trace); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out.Result.Trace.Events))/1000, "kevents")
}

// BenchmarkTimelineBuild times timeline construction on the same trace.
func BenchmarkTimelineBuild(b *testing.B) {
	tr := measureGrid(b, 16)
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeline.Build(out.Result.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec times the binary codec round trip.
func BenchmarkTraceCodec(b *testing.B) {
	tr := measureGrid(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(37 * len(tr.Events)))
}
