// Package profile analyzes extrapolated event traces for performance
// debugging — the activity the extrapolation exists to support (the paper:
// "performance extrapolation … can support both diagnosis and tuning in a
// performance debugging system"). It derives:
//
//   - a phase profile: predicted time per named program phase, per thread
//     and aggregated, from PhaseBegin/PhaseEnd annotations;
//   - a barrier profile: per-barrier arrival spread and wait cost, which
//     identifies load imbalance and the most expensive synchronization
//     points;
//   - a communication profile: message counts/bytes per thread pair.
//
// All inputs are ordinary traces (measurement or extrapolated), so the
// same analysis runs on predicted executions for machines that do not
// exist.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// PhaseStat aggregates one named phase.
type PhaseStat struct {
	Name string
	// Count is the number of (thread × occurrence) executions.
	Count int64
	// Total is the summed duration across threads and occurrences.
	Total vtime.Time
	// Max is the longest single execution.
	Max vtime.Time
	// PerThread sums durations by thread.
	PerThread map[int32]vtime.Time
}

// Mean returns the average phase duration.
func (p *PhaseStat) Mean() vtime.Time {
	if p.Count == 0 {
		return 0
	}
	return p.Total / vtime.Time(p.Count)
}

// Imbalance returns max(per-thread total) / mean(per-thread total) — 1.0
// means perfectly balanced.
func (p *PhaseStat) Imbalance() float64 {
	if len(p.PerThread) == 0 {
		return 1
	}
	var sum, max vtime.Time
	for _, v := range p.PerThread {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := float64(sum) / float64(len(p.PerThread))
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// BarrierStat describes one global barrier.
type BarrierStat struct {
	ID int64
	// FirstEntry and LastEntry give the arrival window; their difference
	// is the load imbalance at this barrier.
	FirstEntry, LastEntry vtime.Time
	// Release is the latest exit timestamp.
	Release vtime.Time
	// TotalWait sums (exit − entry) across threads.
	TotalWait vtime.Time
}

// Spread is the arrival window: how long the fastest thread would have
// waited even with a free barrier.
func (b *BarrierStat) Spread() vtime.Time { return b.LastEntry - b.FirstEntry }

// SyncCost estimates pure synchronization overhead: release − last entry.
func (b *BarrierStat) SyncCost() vtime.Time { return b.Release - b.LastEntry }

// Profile is the full analysis of one trace.
type Profile struct {
	Threads  int
	Duration vtime.Time
	Phases   []PhaseStat
	Barriers []BarrierStat
	// CommMatrix[src][dst] counts messages between thread pairs
	// (extrapolated traces) or remote accesses (measurement traces).
	CommMatrix map[int32]map[int32]int64
	CommBytes  int64
}

// Analyze builds a Profile from a trace. Phase events may nest; each
// thread's phases form a stack.
func Analyze(tr *trace.Trace) (*Profile, error) {
	p := &Profile{
		Threads:    tr.NumThreads,
		Duration:   tr.Duration(),
		CommMatrix: make(map[int32]map[int32]int64),
	}
	type open struct {
		id    int64
		start vtime.Time
	}
	stacks := make(map[int32][]open)
	phases := make(map[int64]*PhaseStat)
	type barKey = int64
	bars := make(map[barKey]*BarrierStat)
	entries := make(map[int64]map[int32]vtime.Time) // barrier → thread → entry time

	for i, e := range tr.Events {
		switch e.Kind {
		case trace.KindPhaseBegin:
			stacks[e.Thread] = append(stacks[e.Thread], open{id: e.Arg0, start: e.Time})
		case trace.KindPhaseEnd:
			st := stacks[e.Thread]
			if len(st) == 0 || st[len(st)-1].id != e.Arg0 {
				return nil, fmt.Errorf("profile: event %d: phase-end %q without matching begin on thread %d",
					i, tr.PhaseName(e.Arg0), e.Thread)
			}
			o := st[len(st)-1]
			stacks[e.Thread] = st[:len(st)-1]
			ps := phases[o.id]
			if ps == nil {
				ps = &PhaseStat{Name: tr.PhaseName(o.id), PerThread: make(map[int32]vtime.Time)}
				phases[o.id] = ps
			}
			d := e.Time - o.start
			ps.Count++
			ps.Total += d
			if d > ps.Max {
				ps.Max = d
			}
			ps.PerThread[e.Thread] += d
		case trace.KindBarrierEntry:
			b := bars[e.Arg0]
			if b == nil {
				b = &BarrierStat{ID: e.Arg0, FirstEntry: e.Time}
				bars[e.Arg0] = b
				entries[e.Arg0] = make(map[int32]vtime.Time)
			}
			if e.Time < b.FirstEntry {
				b.FirstEntry = e.Time
			}
			if e.Time > b.LastEntry {
				b.LastEntry = e.Time
			}
			entries[e.Arg0][e.Thread] = e.Time
		case trace.KindBarrierExit:
			b := bars[e.Arg0]
			if b == nil {
				return nil, fmt.Errorf("profile: event %d: exit of unseen barrier %d", i, e.Arg0)
			}
			if e.Time > b.Release {
				b.Release = e.Time
			}
			if at, ok := entries[e.Arg0][e.Thread]; ok {
				b.TotalWait += e.Time - at
			}
		case trace.KindMsgSend:
			row := p.CommMatrix[e.Thread]
			if row == nil {
				row = make(map[int32]int64)
				p.CommMatrix[e.Thread] = row
			}
			row[int32(e.Arg0)]++
			p.CommBytes += e.Arg1
		case trace.KindRemoteRead, trace.KindRemoteWrite:
			// Measurement traces have no message events; count accesses.
			if _, hasMsgs := p.CommMatrix[-1]; !hasMsgs {
				row := p.CommMatrix[e.Thread]
				if row == nil {
					row = make(map[int32]int64)
					p.CommMatrix[e.Thread] = row
				}
				row[int32(e.Arg0)]++
				p.CommBytes += e.Arg1
			}
		}
	}
	for th, st := range stacks {
		if len(st) != 0 {
			return nil, fmt.Errorf("profile: thread %d ends with %d unclosed phases", th, len(st))
		}
	}

	for _, ps := range phases {
		p.Phases = append(p.Phases, *ps)
	}
	sort.Slice(p.Phases, func(i, j int) bool { return p.Phases[i].Total > p.Phases[j].Total })
	for _, b := range bars {
		p.Barriers = append(p.Barriers, *b)
	}
	sort.Slice(p.Barriers, func(i, j int) bool { return p.Barriers[i].ID < p.Barriers[j].ID })
	return p, nil
}

// TopBarriers returns the k barriers with the largest total wait,
// costliest first.
func (p *Profile) TopBarriers(k int) []BarrierStat {
	out := append([]BarrierStat(nil), p.Barriers...)
	sort.Slice(out, func(i, j int) bool { return out[i].TotalWait > out[j].TotalWait })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TotalBarrierWait sums wait over all barriers.
func (p *Profile) TotalBarrierWait() vtime.Time {
	var t vtime.Time
	for _, b := range p.Barriers {
		t += b.TotalWait
	}
	return t
}

// HottestPair returns the thread pair exchanging the most messages.
func (p *Profile) HottestPair() (src, dst int32, count int64) {
	for s, row := range p.CommMatrix {
		for d, c := range row {
			if c > count {
				src, dst, count = s, d, c
			}
		}
	}
	return src, dst, count
}

// Render writes a human-readable report.
func (p *Profile) Render(w *strings.Builder) {
	fmt.Fprintf(w, "threads=%d duration=%v barriers=%d barrier-wait=%v comm-bytes=%d\n",
		p.Threads, p.Duration, len(p.Barriers), p.TotalBarrierWait(), p.CommBytes)
	if len(p.Phases) > 0 {
		fmt.Fprintf(w, "\nphases (by total time):\n")
		for _, ph := range p.Phases {
			fmt.Fprintf(w, "  %-20s total=%-12v mean=%-12v max=%-12v imbalance=%.2f\n",
				ph.Name, ph.Total, ph.Mean(), ph.Max, ph.Imbalance())
		}
	}
	if top := p.TopBarriers(5); len(top) > 0 {
		fmt.Fprintf(w, "\ncostliest barriers:\n")
		for _, b := range top {
			fmt.Fprintf(w, "  barrier %-5d wait=%-12v spread=%-12v sync=%v\n",
				b.ID, b.TotalWait, b.Spread(), b.SyncCost())
		}
	}
	if s, d, c := p.HottestPair(); c > 0 {
		fmt.Fprintf(w, "\nhottest communication pair: t%d → t%d (%d messages)\n", s, d, c)
	}
}
