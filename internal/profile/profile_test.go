package profile

import (
	"strings"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

func TestPhaseProfile(t *testing.T) {
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(2))
	tr, err := rt.Run(func(th *pcxx.Thread) {
		th.Phase("work", func() {
			th.Compute(vtime.Time(th.ID()+1) * 100 * vtime.Microsecond)
		})
		th.Phase("idle", func() {
			th.Compute(10 * vtime.Microsecond)
		})
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	// Sorted by total time: "work" (300µs) before "idle" (20µs).
	if p.Phases[0].Name != "work" {
		t.Fatalf("hottest phase = %q", p.Phases[0].Name)
	}
	work := p.Phases[0]
	if work.Count != 2 {
		t.Errorf("work count = %d", work.Count)
	}
	if work.Total != 300*vtime.Microsecond {
		t.Errorf("work total = %v", work.Total)
	}
	if work.Max != 200*vtime.Microsecond {
		t.Errorf("work max = %v", work.Max)
	}
	// Thread 1 did 200µs of 150µs mean → imbalance 200/150.
	if got := work.Imbalance(); got < 1.32 || got > 1.34 {
		t.Errorf("work imbalance = %.3f, want ≈1.333", got)
	}
}

func TestNestedPhases(t *testing.T) {
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(1))
	tr, err := rt.Run(func(th *pcxx.Thread) {
		th.Phase("outer", func() {
			th.Compute(10 * vtime.Microsecond)
			th.Phase("inner", func() {
				th.Compute(5 * vtime.Microsecond)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PhaseStat{}
	for _, ph := range p.Phases {
		byName[ph.Name] = ph
	}
	if byName["outer"].Total != 15*vtime.Microsecond {
		t.Errorf("outer total = %v", byName["outer"].Total)
	}
	if byName["inner"].Total != 5*vtime.Microsecond {
		t.Errorf("inner total = %v", byName["inner"].Total)
	}
}

func TestMalformedPhases(t *testing.T) {
	tr := trace.New(1)
	id := tr.PhaseID("p")
	tr.Append(trace.Event{Time: 0, Kind: trace.KindPhaseEnd, Thread: 0, Arg0: id})
	if _, err := Analyze(tr); err == nil {
		t.Error("orphan phase-end accepted")
	}
	tr2 := trace.New(1)
	tr2.Append(trace.Event{Time: 0, Kind: trace.KindPhaseBegin, Thread: 0, Arg0: tr2.PhaseID("p")})
	if _, err := Analyze(tr2); err == nil {
		t.Error("unclosed phase accepted")
	}
	tr3 := trace.New(1)
	tr3.Append(trace.Event{Time: 0, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 7})
	if _, err := Analyze(tr3); err == nil {
		t.Error("exit of unseen barrier accepted")
	}
}

func TestBarrierProfile(t *testing.T) {
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(3))
	tr, err := rt.Run(func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()) * 50 * vtime.Microsecond)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Barriers) != 1 {
		t.Fatalf("barriers = %d", len(p.Barriers))
	}
	b := p.Barriers[0]
	// On the serial measurement host: entries at 0, 50, 150 (serialized).
	if b.FirstEntry != 0 {
		t.Errorf("first entry = %v", b.FirstEntry)
	}
	if b.Spread() <= 0 {
		t.Errorf("spread = %v", b.Spread())
	}
	if b.TotalWait <= 0 {
		t.Errorf("total wait = %v", b.TotalWait)
	}
}

func TestProfileOnExtrapolatedTrace(t *testing.T) {
	// The intended use: profile a *predicted* execution.
	g, err := benchmarks.ByName("grid")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Measure(g.Factory(benchmarks.Size{N: 16, Iters: 10})(4), core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(out.Result.Trace)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ph := range p.Phases {
		names[ph.Name] = true
	}
	if !names["exchange"] || !names["update"] {
		t.Fatalf("expected grid phases, got %v", names)
	}
	if len(p.Barriers) == 0 {
		t.Fatal("no barriers in extrapolated profile")
	}
	if _, _, c := p.HottestPair(); c == 0 {
		t.Error("no communication pairs found")
	}
	var sb strings.Builder
	p.Render(&sb)
	if !strings.Contains(sb.String(), "phases (by total time):") {
		t.Errorf("render missing phases section:\n%s", sb.String())
	}
}

func TestTopBarriers(t *testing.T) {
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(2))
	tr, err := rt.Run(func(th *pcxx.Thread) {
		// Barrier 0: balanced; barrier 1: imbalanced (more wait).
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
		th.Compute(vtime.Time(th.ID()) * 500 * vtime.Microsecond)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Raw measurement traces record barrier exits at scheduler-resume
	// time; translation restores release semantics, which is what the
	// profiler should see.
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(pt.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopBarriers(1)
	if len(top) != 1 || top[0].ID != 1 {
		t.Fatalf("TopBarriers = %+v, want barrier 1 first", top)
	}
}
