package network

import (
	"fmt"

	"extrap/internal/vtime"
)

// Config holds the remote-data-access model parameters of Section 3.3.2:
// communication start-up overhead, bandwidth, message construction cost,
// per-hop latency, receiver overhead, topology, and contention settings.
type Config struct {
	// StartupTime (CommStartupTime in the paper) is the sender-side
	// software overhead paid per message injection.
	StartupTime vtime.Time
	// ByteTransferTime is the per-byte transfer cost — the inverse
	// bandwidth (0.2 µs/byte = 5 MB/s; 0.118 µs/byte ≈ 8.5 MB/s CM-5).
	ByteTransferTime vtime.Time
	// MsgConstructTime is the cost of building a message (marshalling a
	// remote element request or reply) before injection.
	MsgConstructTime vtime.Time
	// HopTime is the per-hop switching latency in the interconnect.
	HopTime vtime.Time
	// RecvOverhead is the receiver-side software cost per message.
	RecvOverhead vtime.Time
	// RecvOccupancy is how long a message occupies the receiving network
	// interface's queue front; concurrent arrivals at one processor
	// serialize behind it (the directly simulated receive-queue
	// contention of the paper).
	RecvOccupancy vtime.Time
	// Topology is the interconnect shape; nil means Bus.
	Topology Topology
	// ContentionFactor controls the analytical contention model: transit
	// is inflated by (1 + ContentionFactor · inFlight/links). Zero
	// disables contention.
	ContentionFactor float64
	// RequestBytes is the size of a remote element *request* message
	// (address + header); replies carry the element data.
	RequestBytes int64
}

// Validate rejects configurations that would corrupt the simulation.
func (c *Config) Validate() error {
	if c.StartupTime < 0 || c.ByteTransferTime < 0 || c.MsgConstructTime < 0 ||
		c.HopTime < 0 || c.RecvOverhead < 0 || c.RecvOccupancy < 0 {
		return fmt.Errorf("network: negative time parameter in %+v", *c)
	}
	if c.ContentionFactor < 0 {
		return fmt.Errorf("network: negative contention factor %g", c.ContentionFactor)
	}
	if c.RequestBytes < 0 {
		return fmt.Errorf("network: negative request size %d", c.RequestBytes)
	}
	return nil
}

func (c *Config) topology() Topology {
	if c.Topology == nil {
		return Bus{}
	}
	return c.Topology
}

// BandwidthMBps reports the configured bandwidth in megabytes per second,
// for display.
func (c *Config) BandwidthMBps() float64 {
	if c.ByteTransferTime <= 0 {
		return 0
	}
	return 1e3 / float64(c.ByteTransferTime) // (1e9 ns/s)/(ns/B) → B/s; /1e6 → MB/s
}

// Network is the dynamic communication state of one simulation: it tracks
// messages in flight (feeding the contention model) and the
// receive-queue free time of each processor's network interface.
type Network struct {
	cfg      Config
	procs    int
	inFlight int
	// recvFreeAt[p] is when processor p's NI queue front frees up.
	recvFreeAt []vtime.Time

	// Stats.
	Messages      int64
	Bytes         int64
	TotalTransit  vtime.Time
	ContentionAdd vtime.Time // transit time added by the contention model
	QueueingAdd   vtime.Time // arrival delay added by NI serialization
	MaxInFlight   int
}

// New creates the network state for procs processors.
func New(cfg Config, procs int) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if procs <= 0 {
		return nil, fmt.Errorf("network: invalid processor count %d", procs)
	}
	return &Network{
		cfg:        cfg,
		procs:      procs,
		recvFreeAt: make([]vtime.Time, procs),
	}, nil
}

// Config returns the network's parameters.
func (n *Network) Config() Config { return n.cfg }

// SendOverhead returns the sender CPU time consumed injecting a message of
// the given size: construction plus start-up.
func (n *Network) SendOverhead(bytes int64) vtime.Time {
	return n.cfg.MsgConstructTime + n.cfg.StartupTime
}

// Transit computes the in-network time of a message of size bytes from
// src to dst injected now, applying the analytical contention inflation
// based on the current in-flight population. The caller must pair this
// with Inject/Deliver so the in-flight count stays balanced.
func (n *Network) Transit(src, dst int, bytes int64) vtime.Time {
	topo := n.cfg.topology()
	base := vtime.Time(bytes)*n.cfg.ByteTransferTime +
		vtime.Time(topo.Hops(src, dst, n.procs))*n.cfg.HopTime
	if n.cfg.ContentionFactor > 0 && n.inFlight > 0 {
		links := topo.Links(n.procs)
		inflate := n.cfg.ContentionFactor * float64(n.inFlight) / float64(links)
		extra := base.Scale(inflate)
		n.ContentionAdd += extra
		base += extra
	}
	return base
}

// Inject registers a message entering the network at time t, returning
// the raw arrival time at dst (before NI queueing): t + transit.
func (n *Network) Inject(t vtime.Time, src, dst int, bytes int64) vtime.Time {
	transit := n.Transit(src, dst, bytes)
	n.inFlight++
	if n.inFlight > n.MaxInFlight {
		n.MaxInFlight = n.inFlight
	}
	n.Messages++
	n.Bytes += bytes
	n.TotalTransit += transit
	return t + transit
}

// Deliver finalizes a message's arrival at processor dst whose raw
// in-network arrival is rawArrival: the message leaves the in-flight
// population and serializes through dst's NI receive queue. It returns the
// time at which the message is actually available to software at dst.
func (n *Network) Deliver(rawArrival vtime.Time, dst int) vtime.Time {
	if n.inFlight <= 0 {
		panic("network: Deliver without matching Inject")
	}
	n.inFlight--
	at := rawArrival
	if free := n.recvFreeAt[dst]; free > at {
		n.QueueingAdd += free - at
		at = free
	}
	n.recvFreeAt[dst] = at + n.cfg.RecvOccupancy
	return at
}

// InFlight reports the current in-network message population.
func (n *Network) InFlight() int { return n.inFlight }

// RecvFree exposes the per-processor NI receive-queue free times for
// the simulator's steady-state fast-forward, which fingerprints them
// and shifts the still-live ones when skipping iterations. The slice is
// the live state, not a copy.
func (n *Network) RecvFree() []vtime.Time { return n.recvFreeAt }
