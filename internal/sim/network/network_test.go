package network

import (
	"testing"
	"testing/quick"

	"extrap/internal/vtime"
)

func TestTopologyHopsSymmetricAndZeroSelf(t *testing.T) {
	topos := []Topology{Bus{}, Ring{}, Mesh2D{}, Hypercube{}, FatTree{}, Dragonfly{}}
	for _, topo := range topos {
		for _, procs := range []int{1, 2, 4, 8, 16, 32} {
			for s := 0; s < procs; s++ {
				if h := topo.Hops(s, s, procs); h != 0 {
					t.Errorf("%s: Hops(%d,%d,%d) = %d, want 0", topo.Name(), s, s, procs, h)
				}
				for d := 0; d < procs; d++ {
					a, b := topo.Hops(s, d, procs), topo.Hops(d, s, procs)
					if a != b {
						t.Errorf("%s: asymmetric hops %d↔%d: %d vs %d", topo.Name(), s, d, a, b)
					}
					if d != s && a < 1 {
						t.Errorf("%s: Hops(%d,%d,%d) = %d, want ≥1", topo.Name(), s, d, procs, a)
					}
				}
			}
			if topo.Links(procs) < 1 {
				t.Errorf("%s: Links(%d) < 1", topo.Name(), procs)
			}
		}
	}
}

func TestRingDistance(t *testing.T) {
	r := Ring{}
	if h := r.Hops(0, 7, 8); h != 1 {
		t.Errorf("ring 0→7 of 8 = %d, want 1 (wrap)", h)
	}
	if h := r.Hops(0, 4, 8); h != 4 {
		t.Errorf("ring 0→4 of 8 = %d, want 4", h)
	}
}

func TestHypercubeDistance(t *testing.T) {
	h := Hypercube{}
	if d := h.Hops(0, 7, 8); d != 3 {
		t.Errorf("hypercube 0→7 = %d, want 3", d)
	}
	if d := h.Hops(5, 6, 8); d != 2 {
		t.Errorf("hypercube 5→6 = %d, want 2", d)
	}
}

func TestFatTreeDistance(t *testing.T) {
	f := FatTree{}
	// Same quad of a 4-ary tree: one level up and down.
	if d := f.Hops(0, 3, 16); d != 2 {
		t.Errorf("fattree 0→3 = %d, want 2", d)
	}
	// Different quads: two levels.
	if d := f.Hops(0, 5, 16); d != 4 {
		t.Errorf("fattree 0→5 = %d, want 4", d)
	}
}

func TestDragonflyDistance(t *testing.T) {
	d := Dragonfly{} // 4 routers/group × 2 procs/router → groups of 8
	if h := d.Hops(0, 1, 32); h != 1 {
		t.Errorf("dragonfly 0→1 = %d, want 1 (same router)", h)
	}
	if h := d.Hops(0, 2, 32); h != 2 {
		t.Errorf("dragonfly 0→2 = %d, want 2 (same group)", h)
	}
	if h := d.Hops(0, 8, 32); h != 4 {
		t.Errorf("dragonfly 0→8 = %d, want 4 (cross group)", h)
	}
	// Custom shape: 2 routers/group × 1 proc/router → groups of 2.
	c := Dragonfly{RoutersPerGroup: 2, ProcsPerRouter: 1}
	if h := c.Hops(0, 1, 8); h != 2 {
		t.Errorf("dragonfly2x1 0→1 = %d, want 2", h)
	}
	if h := c.Hops(0, 2, 8); h != 4 {
		t.Errorf("dragonfly2x1 0→2 = %d, want 4", h)
	}
	// Links: 8 procs → 4 routers → 1 group: 8 terminal + 6 local + 0 global.
	if l := (Dragonfly{}).Links(8); l != 14 {
		t.Errorf("dragonfly Links(8) = %d, want 14", l)
	}
	// 16 procs → 8 routers → 2 groups: 16 + 2·6 + 1 = 29.
	if l := (Dragonfly{}).Links(16); l != 29 {
		t.Errorf("dragonfly Links(16) = %d, want 29", l)
	}
}

func TestMesh2DManhattan(t *testing.T) {
	m := Mesh2D{}
	// 16 procs → 4×4 mesh; 0=(0,0), 15=(3,3).
	if d := m.Hops(0, 15, 16); d != 6 {
		t.Errorf("mesh 0→15 of 16 = %d, want 6", d)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"bus", "ring", "mesh2d", "hypercube", "fattree", "dragonfly"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("torus9d"); err == nil {
		t.Error("ByName accepted unknown topology")
	}
}

func testConfig() Config {
	return Config{
		StartupTime:      10 * vtime.Microsecond,
		ByteTransferTime: 100 * vtime.Nanosecond,
		MsgConstructTime: 2 * vtime.Microsecond,
		HopTime:          500 * vtime.Nanosecond,
		RecvOverhead:     5 * vtime.Microsecond,
		RecvOccupancy:    1 * vtime.Microsecond,
		Topology:         Bus{},
		RequestBytes:     16,
	}
}

func TestTransitBase(t *testing.T) {
	n, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 100 bytes over the bus: 100·0.1µs + 1 hop · 0.5µs = 10.5µs.
	if got := n.Transit(0, 1, 100); got != vtime.FromMicros(10.5) {
		t.Errorf("Transit = %v, want 10.5µs", got)
	}
	// Self transit has no hop cost.
	if got := n.Transit(2, 2, 100); got != vtime.FromMicros(10.0) {
		t.Errorf("self Transit = %v, want 10µs", got)
	}
}

func TestSendOverhead(t *testing.T) {
	n, _ := New(testConfig(), 2)
	want := 12 * vtime.Microsecond // construct 2 + startup 10
	if got := n.SendOverhead(64); got != want {
		t.Errorf("SendOverhead = %v, want %v", got, want)
	}
}

func TestContentionInflation(t *testing.T) {
	cfg := testConfig()
	cfg.ContentionFactor = 1.0
	n, _ := New(cfg, 2)
	base := n.Transit(0, 1, 1000)
	// Put one message in flight; the next transit inflates by
	// factor·1/links = 1.0 on the single bus link.
	n.Inject(0, 0, 1, 1000)
	loaded := n.Transit(0, 1, 1000)
	if loaded <= base {
		t.Fatalf("contended transit %v not above base %v", loaded, base)
	}
	if loaded < base*19/10 || loaded > base*21/10 {
		t.Errorf("contended transit %v, want ≈2×%v", loaded, base)
	}
	if n.ContentionAdd == 0 {
		t.Error("ContentionAdd not accumulated")
	}
}

func TestContentionDisabled(t *testing.T) {
	n, _ := New(testConfig(), 2) // factor 0
	n.Inject(0, 0, 1, 1000)
	n.Inject(0, 0, 1, 1000)
	a := n.Transit(0, 1, 1000)
	if n.ContentionAdd != 0 {
		t.Error("contention accumulated with factor 0")
	}
	b := n.Transit(0, 1, 1000)
	if a != b {
		t.Error("transit varies with factor 0")
	}
}

func TestDeliverSerializesReceiveQueue(t *testing.T) {
	n, _ := New(testConfig(), 2)
	n.Inject(0, 0, 1, 10)
	n.Inject(0, 0, 1, 10)
	n.Inject(0, 0, 1, 10)
	// Three messages arrive at the same raw time; each occupies the NI
	// for 1µs, so availability staggers by the occupancy.
	t0 := n.Deliver(100*vtime.Microsecond, 1)
	t1 := n.Deliver(100*vtime.Microsecond, 1)
	t2 := n.Deliver(100*vtime.Microsecond, 1)
	if t0 != 100*vtime.Microsecond {
		t.Errorf("first delivery at %v", t0)
	}
	if t1 != 101*vtime.Microsecond || t2 != 102*vtime.Microsecond {
		t.Errorf("deliveries at %v, %v; want 101µs, 102µs", t1, t2)
	}
	if n.QueueingAdd != 3*vtime.Microsecond {
		t.Errorf("QueueingAdd = %v, want 3µs", n.QueueingAdd)
	}
	if n.InFlight() != 0 {
		t.Errorf("InFlight = %d after all delivered", n.InFlight())
	}
}

func TestDeliverWithoutInjectPanics(t *testing.T) {
	n, _ := New(testConfig(), 2)
	defer func() {
		if recover() == nil {
			t.Error("Deliver without Inject did not panic")
		}
	}()
	n.Deliver(0, 0)
}

func TestInjectAccounting(t *testing.T) {
	n, _ := New(testConfig(), 4)
	n.Inject(0, 0, 1, 100)
	n.Inject(0, 1, 2, 200)
	if n.Messages != 2 || n.Bytes != 300 {
		t.Errorf("messages=%d bytes=%d, want 2/300", n.Messages, n.Bytes)
	}
	if n.MaxInFlight != 2 {
		t.Errorf("MaxInFlight = %d, want 2", n.MaxInFlight)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{StartupTime: -1},
		{ContentionFactor: -0.5},
		{RequestBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(good, 0); err == nil {
		t.Error("New accepted 0 processors")
	}
}

func TestBandwidthMBps(t *testing.T) {
	c := Config{ByteTransferTime: 50 * vtime.Nanosecond}
	if got := c.BandwidthMBps(); got != 20 {
		t.Errorf("BandwidthMBps = %g, want 20", got)
	}
	c.ByteTransferTime = vtime.FromMicros(0.2)
	if got := c.BandwidthMBps(); got != 5 {
		t.Errorf("BandwidthMBps = %g, want 5", got)
	}
}

func TestTransitMonotoneInSize(t *testing.T) {
	n, _ := New(testConfig(), 8)
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return n.Transit(0, 1, x) <= n.Transit(0, 1, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopologyNames(t *testing.T) {
	names := map[string]Topology{
		"bus": Bus{}, "ring": Ring{}, "mesh2d": Mesh2D{},
		"hypercube": Hypercube{}, "fattree4": FatTree{},
		"fattree2": FatTree{Arity: 2}, "dragonfly4x2": Dragonfly{},
		"dragonfly8x4": Dragonfly{RoutersPerGroup: 8, ProcsPerRouter: 4},
	}
	for want, topo := range names {
		if topo.Name() != want {
			t.Errorf("Name() = %q, want %q", topo.Name(), want)
		}
	}
	// Custom-arity fat tree distances.
	f2 := FatTree{Arity: 2}
	if d := f2.Hops(0, 1, 8); d != 2 {
		t.Errorf("binary fattree 0→1 = %d, want 2", d)
	}
}

func TestLinksEdgeCases(t *testing.T) {
	if (Ring{}).Links(0) != 1 {
		t.Error("Ring.Links(0) should clamp to 1")
	}
	if (Hypercube{}).Links(1) != 1 {
		t.Error("Hypercube.Links(1) should clamp to 1")
	}
	if (Mesh2D{}).Links(1) != 1 {
		t.Error("Mesh2D.Links(1) should clamp to 1")
	}
	if (FatTree{}).Links(0) != 1 {
		t.Error("FatTree.Links(0) should clamp to 1")
	}
	if (Mesh2D{}).Hops(0, 0, 0) != 0 {
		t.Error("degenerate mesh self-hop")
	}
}

func TestNilTopologyDefaultsToBus(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = nil
	n, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bus: 1 hop between distinct processors.
	want := vtime.Time(100)*cfg.ByteTransferTime + cfg.HopTime
	if got := n.Transit(0, 1, 100); got != want {
		t.Errorf("nil-topology transit = %v, want %v (bus)", got, want)
	}
	if n.Config().StartupTime != cfg.StartupTime {
		t.Error("Config() lost parameters")
	}
}

func TestBandwidthZero(t *testing.T) {
	c := Config{}
	if c.BandwidthMBps() != 0 {
		t.Error("zero ByteTransferTime should report 0 bandwidth")
	}
}
