// Package network models the communication substrate of the target
// machine for the trace-driven simulation: per-message software overheads,
// bandwidth, interconnect topology, an analytical contention model driven
// by simulation state, and network-interface receive-queue serialization.
//
// The model follows Section 3.3.2 of the paper: remote accesses are
// represented generically as messages; the performance estimates are
// mostly analytical (startup + size/bandwidth + distance), while
// contention is an analytical delay expression over factors sampled from
// the simulation state (messages in flight vs. link capacity), plus
// directly simulated receive-queue serialization.
package network

import (
	"fmt"
	"math"
)

// Topology abstracts the interconnection network shape: it supplies the
// hop distance between processors and the total link count used to
// normalize the contention factor.
type Topology interface {
	// Name identifies the topology.
	Name() string
	// Hops returns the number of network hops between processors src and
	// dst when the machine has procs processors. Hops(p, p, n) is 0.
	Hops(src, dst, procs int) int
	// Links returns the number of independent links available with procs
	// processors, the capacity denominator of the contention model.
	Links(procs int) int
}

// Bus is a single shared medium: every distinct pair is one hop apart and
// there is exactly one link, making it maximally contention-sensitive.
type Bus struct{}

func (Bus) Name() string { return "bus" }

// Hops returns 0 for self, 1 otherwise.
func (Bus) Hops(src, dst, _ int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Links returns 1: the whole bus is one shared link.
func (Bus) Links(_ int) int { return 1 }

// Ring is a bidirectional ring; distance is the shorter way around.
type Ring struct{}

func (Ring) Name() string { return "ring" }

// Hops returns the shorter distance around the ring.
func (Ring) Hops(src, dst, procs int) int {
	if procs <= 1 {
		return 0
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if alt := procs - d; alt < d {
		d = alt
	}
	return d
}

// Links returns procs: one link per node (bidirectional counted once).
func (Ring) Links(procs int) int {
	if procs < 1 {
		return 1
	}
	return procs
}

// Mesh2D is a 2-D mesh of shape ceil(sqrt(p)) × ceil(p/side); distance is
// Manhattan.
type Mesh2D struct{}

func (Mesh2D) Name() string { return "mesh2d" }

func meshSide(procs int) int {
	if procs < 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(procs))))
}

// Hops returns the Manhattan distance on the mesh.
func (Mesh2D) Hops(src, dst, procs int) int {
	side := meshSide(procs)
	sr, sc := src/side, src%side
	dr, dc := dst/side, dst%side
	h := sr - dr
	if h < 0 {
		h = -h
	}
	v := sc - dc
	if v < 0 {
		v = -v
	}
	return h + v
}

// Links approximates the bidirectional mesh link count 2·s·(s−1) for an
// s×s mesh.
func (Mesh2D) Links(procs int) int {
	s := meshSide(procs)
	l := 2 * s * (s - 1)
	if l < 1 {
		l = 1
	}
	return l
}

// Hypercube connects processors whose ids differ in one bit; distance is
// the Hamming distance.
type Hypercube struct{}

func (Hypercube) Name() string { return "hypercube" }

// Hops returns the Hamming distance between the ids.
func (Hypercube) Hops(src, dst, _ int) int {
	x := uint(src ^ dst)
	h := 0
	for x != 0 {
		h += int(x & 1)
		x >>= 1
	}
	return h
}

// Links returns p·log2(p)/2, the hypercube link count.
func (Hypercube) Links(procs int) int {
	if procs <= 1 {
		return 1
	}
	d := 0
	for 1<<d < procs {
		d++
	}
	l := procs * d / 2
	if l < 1 {
		l = 1
	}
	return l
}

// FatTree models the CM-5 data network: a 4-ary fat tree. The distance
// between two nodes is twice the height of their lowest common ancestor
// (up and back down); link capacity grows toward the root, which the
// Links count reflects by crediting each level.
type FatTree struct {
	// Arity is the tree fan-out; the CM-5 used 4. Zero means 4.
	Arity int
}

func (f FatTree) arity() int {
	if f.Arity <= 1 {
		return 4
	}
	return f.Arity
}

func (f FatTree) Name() string { return fmt.Sprintf("fattree%d", f.arity()) }

// Hops returns 2·h where h is the level of the lowest common ancestor of
// src and dst (leaves at level 0).
func (f FatTree) Hops(src, dst, _ int) int {
	if src == dst {
		return 0
	}
	a := f.arity()
	h := 0
	for src != dst {
		src /= a
		dst /= a
		h++
	}
	return 2 * h
}

// Links returns the aggregate leaf-level link count (procs), a reasonable
// capacity figure for a fat tree since bandwidth is preserved toward the
// root.
func (f FatTree) Links(procs int) int {
	if procs < 1 {
		return 1
	}
	return procs
}

// Dragonfly models a two-level hierarchical direct network: processors
// attach to routers, the routers of one group are fully connected by
// local links, and every group pair is joined by a global link. The hop
// count is the canonical minimal route — one terminal hop plus the
// router-level links traversed: 1 within a router, 2 within a group
// (one local link), and 4 across groups (local + global + local).
type Dragonfly struct {
	// RoutersPerGroup is the group size a (routers fully connected by
	// local links). Zero means 4.
	RoutersPerGroup int
	// ProcsPerRouter is the terminal count p per router. Zero means 2.
	ProcsPerRouter int
}

func (d Dragonfly) shape() (a, p int) {
	a, p = d.RoutersPerGroup, d.ProcsPerRouter
	if a <= 1 {
		a = 4
	}
	if p < 1 {
		p = 2
	}
	return a, p
}

func (d Dragonfly) Name() string {
	a, p := d.shape()
	return fmt.Sprintf("dragonfly%dx%d", a, p)
}

// Hops returns 0 for self, 1 for processors on the same router, 2 within
// a group, and 4 across groups (the minimal local-global-local route).
func (d Dragonfly) Hops(src, dst, _ int) int {
	if src == dst {
		return 0
	}
	a, p := d.shape()
	sr, dr := src/p, dst/p
	if sr == dr {
		return 1
	}
	if sr/a == dr/a {
		return 2
	}
	return 4
}

// Links counts terminal links (one per processor), the a·(a−1)/2 local
// links of each group, and the g·(g−1)/2 global links between groups.
func (d Dragonfly) Links(procs int) int {
	if procs < 1 {
		return 1
	}
	a, p := d.shape()
	routers := (procs + p - 1) / p
	groups := (routers + a - 1) / a
	l := procs + groups*a*(a-1)/2 + groups*(groups-1)/2
	if l < 1 {
		l = 1
	}
	return l
}

// ByName returns the topology with the given name (as produced by Name,
// modulo the fat-tree arity and dragonfly shape suffixes).
func ByName(name string) (Topology, error) {
	switch name {
	case "bus":
		return Bus{}, nil
	case "ring":
		return Ring{}, nil
	case "mesh2d":
		return Mesh2D{}, nil
	case "hypercube":
		return Hypercube{}, nil
	case "fattree", "fattree4":
		return FatTree{}, nil
	case "dragonfly", "dragonfly4x2":
		return Dragonfly{}, nil
	}
	return nil, fmt.Errorf("network: unknown topology %q", name)
}
