package sim

import (
	"context"
	"errors"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

func TestSimulateContextMatchesSimulate(t *testing.T) {
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(vtime.Time(th.ID()*13+i*7+5) * vtime.Microsecond)
			th.Barrier()
		}
	})
	want, err := Simulate(pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateContext(context.Background(), pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTime != want.TotalTime {
		t.Errorf("SimulateContext time %v != Simulate time %v", got.TotalTime, want.TotalTime)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	pt := measureAndTranslate(t, 2, func(th *pcxx.Thread) {
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, pt, zeroConfig())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}
