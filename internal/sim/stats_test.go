package sim

import (
	"strings"
	"testing"

	"extrap/internal/vtime"
)

func TestResultAccessors(t *testing.T) {
	r := &Result{
		TotalTime: 100 * vtime.Microsecond,
		Procs:     4,
		Barriers:  3,
		Threads: []ThreadStats{
			{Compute: 60, CommWait: 20, BarrierWait: 10, Service: 5},
			{Compute: 40, CommWait: 20, BarrierWait: 30, Service: 15},
		},
		Net: NetStats{Messages: 10, Bytes: 1000, TotalTransit: 50 * vtime.Microsecond},
	}
	if r.TotalCompute() != 100 {
		t.Errorf("TotalCompute = %v", r.TotalCompute())
	}
	if r.TotalCommWait() != 40 {
		t.Errorf("TotalCommWait = %v", r.TotalCommWait())
	}
	if r.TotalBarrierWait() != 40 {
		t.Errorf("TotalBarrierWait = %v", r.TotalBarrierWait())
	}
	if r.TotalService() != 20 {
		t.Errorf("TotalService = %v", r.TotalService())
	}
	if got := r.CompCommRatio(); got != 2.5 {
		t.Errorf("CompCommRatio = %v", got)
	}
	if FormatRatio(2.5) != "2.50" {
		t.Errorf("FormatRatio = %q", FormatRatio(2.5))
	}
	if FormatRatio(-1) != "∞" {
		t.Errorf("FormatRatio(-1) = %q", FormatRatio(-1))
	}
	// No communication → sentinel.
	empty := &Result{Threads: []ThreadStats{{Compute: 10}}}
	if empty.CompCommRatio() >= 0 {
		t.Error("zero-comm ratio should be the ∞ sentinel")
	}
	s := r.String()
	for _, want := range []string{"procs=4", "barriers=3", "comm-wait="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestNetStatsAvgTransit(t *testing.T) {
	n := NetStats{Messages: 4, TotalTransit: 100 * vtime.Microsecond}
	if n.AvgTransit() != 25*vtime.Microsecond {
		t.Errorf("AvgTransit = %v", n.AvgTransit())
	}
	if (NetStats{}).AvgTransit() != 0 {
		t.Error("empty AvgTransit should be 0")
	}
}

func TestEnumStrings(t *testing.T) {
	if NoInterrupt.String() != "no-interrupt" || Interrupt.String() != "interrupt" ||
		Poll.String() != "poll" || !strings.Contains(PolicyKind(9).String(), "9") {
		t.Error("PolicyKind names wrong")
	}
	if LinearBarrier.String() != "linear" || TreeBarrier.String() != "tree" ||
		HardwareBarrier.String() != "hardware" || !strings.Contains(BarrierAlgorithm(9).String(), "9") {
		t.Error("BarrierAlgorithm names wrong")
	}
}
