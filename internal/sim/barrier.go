package sim

import (
	"fmt"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// barSt tracks one global barrier through the simulation.
type barSt struct {
	id      int64
	entries int
	// maxArrive is the latest entry-completion time (analytic variants
	// and the hardware barrier).
	maxArrive vtime.Time
	// Linear master-slave state.
	masterEntered bool
	masterFreeAt  vtime.Time
	arrivedMsgs   int
	lastArrProc   vtime.Time
	released      bool
	// Tree barrier per-node state.
	childGot    []int
	nodeEntered []bool
	nodeFreeAt  []vtime.Time
	releaseSent []bool
}

func (e *engine) bar(id int64) *barSt {
	b := e.bars[id]
	if b == nil {
		b = &barSt{id: id}
		if e.cfg.Barrier.Algorithm == TreeBarrier {
			b.childGot = make([]int, e.n)
			b.nodeEntered = make([]bool, e.n)
			b.nodeFreeAt = make([]vtime.Time, e.n)
			b.releaseSent = make([]bool, e.n)
		}
		e.bars[id] = b
	}
	return b
}

// numChildren returns the child count of node i in the binary combining
// tree over n threads.
func numChildren(i, n int) int {
	c := 0
	if 2*i+1 < n {
		c++
	}
	if 2*i+2 < n {
		c++
	}
	return c
}

// barrierEnter simulates thread t reaching global barrier id at e.now.
func (e *engine) barrierEnter(t *thr, id int64) {
	b := e.bar(id)
	b.entries++
	bc := &e.cfg.Barrier
	e.emit(e.now, trace.KindBarrierEntry, t.id, id, 0, 0)
	entryDone := e.now + bc.EntryTime

	switch bc.Algorithm {
	case HardwareBarrier:
		e.block(t, tsWaitBarrier, entryDone)
		if entryDone > b.maxArrive {
			b.maxArrive = entryDone
		}
		if b.entries == e.n {
			release := b.maxArrive + bc.HardwareTime
			for _, th := range e.threads {
				e.fel.schedule(release+bc.ExitTime, evResume, th.id, th.gen, nil)
			}
		}

	case LinearBarrier:
		if !bc.ByMsgs {
			e.block(t, tsWaitBarrier, entryDone)
			if entryDone > b.maxArrive {
				b.maxArrive = entryDone
			}
			if t.id == 0 {
				b.masterEntered = true
				b.masterFreeAt = entryDone
			}
			if b.entries == e.n {
				release := vtime.Max(b.maxArrive, b.masterFreeAt) + bc.CheckTime + bc.ModelTime
				for _, th := range e.threads {
					exit := release + bc.ExitTime
					if th.id != 0 {
						exit += bc.ExitCheckTime
					}
					e.fel.schedule(exit, evResume, th.id, th.gen, nil)
				}
			}
			return
		}
		if t.id == 0 {
			e.block(t, tsWaitBarrier, entryDone)
			b.masterEntered = true
			b.masterFreeAt = entryDone
			e.checkLinearComplete(b)
		} else {
			net := e.netFor(t.proc, e.threads[0].proc)
			sendOv := net.SendOverhead(bc.MsgSize)
			injectAt := entryDone + sendOv
			m := &message{kind: mBarArrive, src: t.id, dst: 0, bytes: bc.MsgSize, barrier: id}
			raw := net.Inject(injectAt, t.proc, e.threads[0].proc, bc.MsgSize)
			e.fel.schedule(raw, evMsgArrive, 0, 0, m)
			e.emit(injectAt, trace.KindMsgSend, t.id, 0, bc.MsgSize, int64(mBarArrive))
			e.block(t, tsWaitBarrier, injectAt)
		}

	case TreeBarrier:
		if !bc.ByMsgs {
			e.block(t, tsWaitBarrier, entryDone)
			if entryDone > b.maxArrive {
				b.maxArrive = entryDone
			}
			if b.entries == e.n {
				depth := vtime.Time(log2ceil(e.n))
				release := b.maxArrive + depth*bc.CheckTime + bc.ModelTime
				for _, th := range e.threads {
					exit := release + depth*bc.ExitCheckTime + bc.ExitTime
					e.fel.schedule(exit, evResume, th.id, th.gen, nil)
				}
			}
			return
		}
		e.block(t, tsWaitBarrier, entryDone)
		b.nodeEntered[t.id] = true
		if entryDone > b.nodeFreeAt[t.id] {
			b.nodeFreeAt[t.id] = entryDone
		}
		e.checkTreeNode(b, t.id)

	default:
		panic(fmt.Sprintf("sim: unknown barrier algorithm %v", bc.Algorithm))
	}
}

// checkLinearComplete fires the master's release sequence once the master
// has entered and every slave's arrival message has been processed.
func (e *engine) checkLinearComplete(b *barSt) {
	if b.released || !b.masterEntered || b.arrivedMsgs != e.n-1 {
		return
	}
	b.released = true
	bc := &e.cfg.Barrier
	start := vtime.Max(b.lastArrProc, b.masterFreeAt) + bc.ModelTime
	masterProc := e.threads[0].proc
	at := start
	// The master releases slaves one after another — the linear cost of
	// the algorithm.
	for s := 1; s < e.n; s++ {
		net := e.netFor(masterProc, e.threads[s].proc)
		at += net.SendOverhead(bc.MsgSize)
		m := &message{kind: mBarRelease, src: 0, dst: s, bytes: bc.MsgSize, barrier: b.id}
		raw := net.Inject(at, masterProc, e.threads[s].proc, bc.MsgSize)
		e.fel.schedule(raw, evMsgArrive, 0, 0, m)
		e.emit(at, trace.KindMsgSend, 0, int64(s), bc.MsgSize, int64(mBarRelease))
	}
	master := e.threads[0]
	e.fel.schedule(at+bc.ExitTime, evResume, 0, master.gen, nil)
}

// barrierArriveServiced is called when a barrier arrival message has been
// processed (its CheckTime paid) at time doneAt.
func (e *engine) barrierArriveServiced(m *message, doneAt vtime.Time) {
	b := e.bar(m.barrier)
	switch e.cfg.Barrier.Algorithm {
	case LinearBarrier:
		b.arrivedMsgs++
		if doneAt > b.lastArrProc {
			b.lastArrProc = doneAt
		}
		e.checkLinearComplete(b)
	case TreeBarrier:
		node := m.dst
		b.childGot[node]++
		if doneAt > b.nodeFreeAt[node] {
			b.nodeFreeAt[node] = doneAt
		}
		e.checkTreeNode(b, node)
	default:
		panic("sim: barrier arrival under non-message barrier")
	}
}

// checkTreeNode advances the combining tree: when node has entered and
// heard from all children, it reports to its parent (or starts the release
// if it is the root).
func (e *engine) checkTreeNode(b *barSt, node int) {
	if !b.nodeEntered[node] || b.childGot[node] != numChildren(node, e.n) {
		return
	}
	bc := &e.cfg.Barrier
	if node == 0 {
		if b.released {
			return
		}
		b.released = true
		e.treeRelease(b, 0, b.nodeFreeAt[0]+bc.ModelTime)
		return
	}
	parent := (node - 1) / 2
	nodeProc := e.threads[node].proc
	parentProc := e.threads[parent].proc
	net := e.netFor(nodeProc, parentProc)
	injectAt := b.nodeFreeAt[node] + net.SendOverhead(bc.MsgSize)
	m := &message{kind: mBarArrive, src: node, dst: parent, bytes: bc.MsgSize, barrier: b.id}
	raw := net.Inject(injectAt, nodeProc, parentProc, bc.MsgSize)
	e.fel.schedule(raw, evMsgArrive, 0, 0, m)
	e.emit(injectAt, trace.KindMsgSend, node, int64(parent), bc.MsgSize, int64(mBarArrive))
}

// treeRelease sends release messages from node to its children starting at
// time at and schedules node's own exit.
func (e *engine) treeRelease(b *barSt, node int, at vtime.Time) {
	bc := &e.cfg.Barrier
	if b.releaseSent[node] {
		return
	}
	b.releaseSent[node] = true
	nodeProc := e.threads[node].proc
	for _, c := range []int{2*node + 1, 2*node + 2} {
		if c >= e.n {
			continue
		}
		net := e.netFor(nodeProc, e.threads[c].proc)
		at += net.SendOverhead(bc.MsgSize)
		m := &message{kind: mBarRelease, src: node, dst: c, bytes: bc.MsgSize, barrier: b.id}
		raw := net.Inject(at, nodeProc, e.threads[c].proc, bc.MsgSize)
		e.fel.schedule(raw, evMsgArrive, 0, 0, m)
		e.emit(at, trace.KindMsgSend, node, int64(c), bc.MsgSize, int64(mBarRelease))
	}
	t := e.threads[node]
	e.fel.schedule(at+bc.ExitTime, evResume, node, t.gen, nil)
}

// barrierReleaseArrive handles a release message reaching a waiting
// thread: it notices the release, (tree) forwards it to its children, and
// exits.
func (e *engine) barrierReleaseArrive(m *message) {
	t := e.threads[m.dst]
	if t.state != tsWaitBarrier {
		panic(fmt.Sprintf("sim: release for thread %d in state %d", t.id, t.state))
	}
	bc := &e.cfg.Barrier
	p := e.procs[t.proc]
	noticed := vtime.Max(e.now+bc.ExitCheckTime, p.svcBusyUntil)
	if e.cfg.Barrier.Algorithm == TreeBarrier {
		b := e.bar(m.barrier)
		e.treeRelease(b, t.id, noticed)
		// treeRelease scheduled the exit (after forwarding to children).
		return
	}
	e.fel.schedule(noticed+bc.ExitTime, evResume, t.id, t.gen, nil)
}

// resumeFromBarrier completes t's barrier: the pending barrier-exit trace
// event is consumed at e.now and the thread continues.
func (e *engine) resumeFromBarrier(t *thr) {
	if t.state != tsWaitBarrier {
		panic(fmt.Sprintf("sim: barrier resume for thread %d in state %d", t.id, t.state))
	}
	ev := t.evs[t.pos]
	if ev.Kind != trace.KindBarrierExit {
		panic(fmt.Sprintf("sim: thread %d resumed from barrier onto %v event", t.id, ev.Kind))
	}
	e.emit(e.now, trace.KindBarrierExit, t.id, ev.Arg0, 0, 0)
	t.stats.BarrierWait += e.now - t.blockAt
	t.stats.Barriers++
	e.consume(t, ev)
	e.continueThread(t, e.now)
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}
