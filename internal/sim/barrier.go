package sim

import (
	"fmt"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// barSt tracks one global barrier through the simulation.
type barSt struct {
	used    bool // barrier id encountered (dense-slice occupancy marker)
	id      int64
	entries int
	// maxArrive is the latest entry-completion time (analytic variants
	// and the hardware barrier).
	maxArrive vtime.Time
	// Linear master-slave state.
	masterEntered bool
	masterFreeAt  vtime.Time
	arrivedMsgs   int
	lastArrProc   vtime.Time
	released      bool
	// Tree barrier per-node state.
	childGot    []int
	nodeEntered []bool
	nodeFreeAt  []vtime.Time
	releaseSent []bool
}

// bar returns the state record for barrier id from the dense slice,
// initializing it on first touch. Barrier ids are dense and increasing
// (trace validation enforces this), so the slice is normally sized once
// from ParallelTrace.Barriers; growth only happens for hand-built traces.
// Callers never hold a *barSt across another bar call (nested calls reach
// only already-created ids), so append-driven reallocation is safe.
func (e *engine) bar(id int64) *barSt {
	for int64(len(e.bars)) <= id {
		e.bars = append(e.bars, barSt{})
	}
	b := &e.bars[id]
	if !b.used {
		b.used = true
		b.id = id
		e.nbars++
		if e.cfg.Barrier.Algorithm == TreeBarrier {
			b.childGot = make([]int, e.n)
			b.nodeEntered = make([]bool, e.n)
			b.nodeFreeAt = make([]vtime.Time, e.n)
			b.releaseSent = make([]bool, e.n)
		}
	}
	return b
}

// numChildren returns the child count of node i in the binary combining
// tree over n threads.
func numChildren(i, n int) int {
	c := 0
	if 2*i+1 < n {
		c++
	}
	if 2*i+2 < n {
		c++
	}
	return c
}

// barrierEnter simulates thread t reaching global barrier id at e.now.
func (e *engine) barrierEnter(t *thr, id int64) {
	b := e.bar(id)
	b.entries++
	bc := &e.cfg.Barrier
	e.emit(e.now, trace.KindBarrierEntry, t.id, id, 0, 0)
	entryDone := e.now + bc.EntryTime

	switch bc.Algorithm {
	case HardwareBarrier:
		e.block(t, tsWaitBarrier, entryDone)
		if entryDone > b.maxArrive {
			b.maxArrive = entryDone
		}
		if b.entries == e.n {
			release := b.maxArrive + bc.HardwareTime
			for i := range e.threads {
				th := &e.threads[i]
				e.fel.schedule(release+bc.ExitTime, evResume, int32(th.id), th.gen, noMsg)
			}
		}

	case LinearBarrier:
		if !bc.ByMsgs {
			e.block(t, tsWaitBarrier, entryDone)
			if entryDone > b.maxArrive {
				b.maxArrive = entryDone
			}
			if t.id == 0 {
				b.masterEntered = true
				b.masterFreeAt = entryDone
			}
			if b.entries == e.n {
				release := vtime.Max(b.maxArrive, b.masterFreeAt) + bc.CheckTime + bc.ModelTime
				for i := range e.threads {
					th := &e.threads[i]
					exit := release + bc.ExitTime
					if th.id != 0 {
						exit += bc.ExitCheckTime
					}
					e.fel.schedule(exit, evResume, int32(th.id), th.gen, noMsg)
				}
			}
			return
		}
		if t.id == 0 {
			e.block(t, tsWaitBarrier, entryDone)
			b.masterEntered = true
			b.masterFreeAt = entryDone
			e.checkLinearComplete(b)
		} else {
			net := e.netFor(t.proc, e.threads[0].proc)
			sendOv := net.SendOverhead(bc.MsgSize)
			injectAt := entryDone + sendOv
			m := e.msgs.new(mBarArrive, t.id, 0, bc.MsgSize, id)
			raw := net.Inject(injectAt, t.proc, e.threads[0].proc, bc.MsgSize)
			e.fel.schedule(raw, evMsgArrive, 0, 0, m)
			e.emit(injectAt, trace.KindMsgSend, t.id, 0, bc.MsgSize, int64(mBarArrive))
			e.block(t, tsWaitBarrier, injectAt)
		}

	case TreeBarrier:
		if !bc.ByMsgs {
			e.block(t, tsWaitBarrier, entryDone)
			if entryDone > b.maxArrive {
				b.maxArrive = entryDone
			}
			if b.entries == e.n {
				depth := vtime.Time(log2ceil(e.n))
				release := b.maxArrive + depth*bc.CheckTime + bc.ModelTime
				for i := range e.threads {
					th := &e.threads[i]
					exit := release + depth*bc.ExitCheckTime + bc.ExitTime
					e.fel.schedule(exit, evResume, int32(th.id), th.gen, noMsg)
				}
			}
			return
		}
		e.block(t, tsWaitBarrier, entryDone)
		b.nodeEntered[t.id] = true
		if entryDone > b.nodeFreeAt[t.id] {
			b.nodeFreeAt[t.id] = entryDone
		}
		e.checkTreeNode(b, t.id)

	default:
		panic(fmt.Sprintf("sim: unknown barrier algorithm %v", bc.Algorithm))
	}
}

// checkLinearComplete fires the master's release sequence once the master
// has entered and every slave's arrival message has been processed.
func (e *engine) checkLinearComplete(b *barSt) {
	if b.released || !b.masterEntered || b.arrivedMsgs != e.n-1 {
		return
	}
	b.released = true
	bc := &e.cfg.Barrier
	start := vtime.Max(b.lastArrProc, b.masterFreeAt) + bc.ModelTime
	masterProc := e.threads[0].proc
	at := start
	// The master releases slaves one after another — the linear cost of
	// the algorithm.
	for s := 1; s < e.n; s++ {
		net := e.netFor(masterProc, e.threads[s].proc)
		at += net.SendOverhead(bc.MsgSize)
		m := e.msgs.new(mBarRelease, 0, s, bc.MsgSize, b.id)
		raw := net.Inject(at, masterProc, e.threads[s].proc, bc.MsgSize)
		e.fel.schedule(raw, evMsgArrive, 0, 0, m)
		e.emit(at, trace.KindMsgSend, 0, int64(s), bc.MsgSize, int64(mBarRelease))
	}
	master := &e.threads[0]
	e.fel.schedule(at+bc.ExitTime, evResume, 0, master.gen, noMsg)
}

// barrierArriveServiced is called when a barrier arrival message has been
// processed (its CheckTime paid) at time doneAt.
func (e *engine) barrierArriveServiced(m *message, doneAt vtime.Time) {
	b := e.bar(m.barrier)
	switch e.cfg.Barrier.Algorithm {
	case LinearBarrier:
		b.arrivedMsgs++
		if doneAt > b.lastArrProc {
			b.lastArrProc = doneAt
		}
		e.checkLinearComplete(b)
	case TreeBarrier:
		node := m.dst
		b.childGot[node]++
		if doneAt > b.nodeFreeAt[node] {
			b.nodeFreeAt[node] = doneAt
		}
		e.checkTreeNode(b, node)
	default:
		panic("sim: barrier arrival under non-message barrier")
	}
}

// checkTreeNode advances the combining tree: when node has entered and
// heard from all children, it reports to its parent (or starts the release
// if it is the root).
func (e *engine) checkTreeNode(b *barSt, node int) {
	if !b.nodeEntered[node] || b.childGot[node] != numChildren(node, e.n) {
		return
	}
	bc := &e.cfg.Barrier
	if node == 0 {
		if b.released {
			return
		}
		b.released = true
		e.treeRelease(b, 0, b.nodeFreeAt[0]+bc.ModelTime)
		return
	}
	parent := (node - 1) / 2
	nodeProc := e.threads[node].proc
	parentProc := e.threads[parent].proc
	net := e.netFor(nodeProc, parentProc)
	injectAt := b.nodeFreeAt[node] + net.SendOverhead(bc.MsgSize)
	m := e.msgs.new(mBarArrive, node, parent, bc.MsgSize, b.id)
	raw := net.Inject(injectAt, nodeProc, parentProc, bc.MsgSize)
	e.fel.schedule(raw, evMsgArrive, 0, 0, m)
	e.emit(injectAt, trace.KindMsgSend, node, int64(parent), bc.MsgSize, int64(mBarArrive))
}

// treeRelease sends release messages from node to its children starting at
// time at and schedules node's own exit.
func (e *engine) treeRelease(b *barSt, node int, at vtime.Time) {
	bc := &e.cfg.Barrier
	if b.releaseSent[node] {
		return
	}
	b.releaseSent[node] = true
	nodeProc := e.threads[node].proc
	for _, c := range []int{2*node + 1, 2*node + 2} {
		if c >= e.n {
			continue
		}
		net := e.netFor(nodeProc, e.threads[c].proc)
		at += net.SendOverhead(bc.MsgSize)
		m := e.msgs.new(mBarRelease, node, c, bc.MsgSize, b.id)
		raw := net.Inject(at, nodeProc, e.threads[c].proc, bc.MsgSize)
		e.fel.schedule(raw, evMsgArrive, 0, 0, m)
		e.emit(at, trace.KindMsgSend, node, int64(c), bc.MsgSize, int64(mBarRelease))
	}
	t := &e.threads[node]
	e.fel.schedule(at+bc.ExitTime, evResume, int32(node), t.gen, noMsg)
}

// barrierReleaseArrive handles a release message reaching a waiting
// thread: it notices the release, (tree) forwards it to its children, and
// exits.
func (e *engine) barrierReleaseArrive(m *message) {
	t := &e.threads[m.dst]
	if t.state != tsWaitBarrier {
		panic(fmt.Sprintf("sim: release for thread %d in state %d", t.id, t.state))
	}
	bc := &e.cfg.Barrier
	p := &e.procs[t.proc]
	noticed := vtime.Max(e.now+bc.ExitCheckTime, p.svcBusyUntil)
	if e.cfg.Barrier.Algorithm == TreeBarrier {
		b := e.bar(m.barrier)
		e.treeRelease(b, t.id, noticed)
		// treeRelease scheduled the exit (after forwarding to children).
		return
	}
	e.fel.schedule(noticed+bc.ExitTime, evResume, int32(t.id), t.gen, noMsg)
}

// resumeFromBarrier completes t's barrier: the pending barrier-exit trace
// event is consumed at e.now and the thread continues.
func (e *engine) resumeFromBarrier(t *thr) {
	if t.state != tsWaitBarrier {
		panic(fmt.Sprintf("sim: barrier resume for thread %d in state %d", t.id, t.state))
	}
	ev := t.peek()
	if ev.Kind != trace.KindBarrierExit {
		panic(fmt.Sprintf("sim: thread %d resumed from barrier onto %v event", t.id, ev.Kind))
	}
	e.emit(e.now, trace.KindBarrierExit, t.id, ev.Arg0, 0, 0)
	t.stats.BarrierWait += e.now - t.blockAt
	t.stats.Barriers++
	e.consume(t, ev)
	e.continueThread(t, e.now)
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}
