// Package sim implements the trace-driven simulation at the heart of the
// extrapolation technique (Section 3.3): it replays the translated
// per-thread traces against a high-level model of the target machine —
// a processor model (speed scaling and remote-request service policy), a
// remote data access model (package network), and a barrier model — and
// produces predicted execution times, per-thread breakdowns, and an
// extrapolated event trace.
package sim

import (
	"fmt"

	"extrap/internal/sim/network"
	"extrap/internal/vtime"
)

// PolicyKind selects how a processor services incoming remote element
// requests (Section 3.3.1).
type PolicyKind uint8

const (
	// NoInterrupt services requests only while the local thread waits
	// for a barrier release or a remote access reply.
	NoInterrupt PolicyKind = iota
	// Interrupt services a request the moment it arrives, interrupting
	// the local computation (active-message style, as on the CM-5).
	Interrupt
	// Poll splits computation into chunks of PollInterval and services
	// queued requests at each chunk boundary.
	Poll
)

func (p PolicyKind) String() string {
	switch p {
	case NoInterrupt:
		return "no-interrupt"
	case Interrupt:
		return "interrupt"
	case Poll:
		return "poll"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Policy parameterizes the remote-request service policy.
type Policy struct {
	Kind PolicyKind
	// PollInterval is the computation chunk length under Poll.
	PollInterval vtime.Time
	// PollOverhead is the cost of one poll check (paid at every chunk
	// boundary, even when the queue is empty).
	PollOverhead vtime.Time
	// InterruptOverhead is the cost of taking an interrupt under
	// Interrupt.
	InterruptOverhead vtime.Time
	// ServiceTime is the owner-side cost of servicing one remote element
	// request (lookup + reply construction), paid under every policy.
	ServiceTime vtime.Time
}

// Validate rejects nonsensical policies.
func (p *Policy) Validate() error {
	if p.PollOverhead < 0 || p.InterruptOverhead < 0 || p.ServiceTime < 0 {
		return fmt.Errorf("sim: negative policy cost in %+v", *p)
	}
	if p.Kind == Poll && p.PollInterval <= 0 {
		return fmt.Errorf("sim: Poll policy requires positive PollInterval, got %v", p.PollInterval)
	}
	return nil
}

// BarrierAlgorithm selects the barrier model.
type BarrierAlgorithm uint8

const (
	// LinearBarrier is the paper's master-slave algorithm: slaves message
	// the master, the master releases them one by one (O(n) release).
	LinearBarrier BarrierAlgorithm = iota
	// TreeBarrier is the logarithmic alternative the paper mentions:
	// combining tree up, broadcast tree down (O(log n)).
	TreeBarrier
	// HardwareBarrier models a dedicated synchronization network (such as
	// the CM-5 control network): release a fixed latency after the last
	// arrival.
	HardwareBarrier
)

func (b BarrierAlgorithm) String() string {
	switch b {
	case LinearBarrier:
		return "linear"
	case TreeBarrier:
		return "tree"
	case HardwareBarrier:
		return "hardware"
	}
	return fmt.Sprintf("barrier(%d)", uint8(b))
}

// BarrierConfig holds the barrier model parameters of Table 1.
type BarrierConfig struct {
	Algorithm BarrierAlgorithm
	// EntryTime is charged to each thread entering a barrier.
	EntryTime vtime.Time
	// ExitTime is charged to each thread leaving a lowered barrier.
	ExitTime vtime.Time
	// CheckTime is the master's cost to process one slave arrival (or,
	// for the shared-memory variant, one check of the arrival flags).
	CheckTime vtime.Time
	// ExitCheckTime is a slave's cost to notice the release.
	ExitCheckTime vtime.Time
	// ModelTime is the master's cost to start lowering the barrier after
	// the last arrival (BarrierModelTime in Table 3).
	ModelTime vtime.Time
	// ByMsgs selects whether synchronization travels as real messages
	// through the network model (1 in Table 1) or as shared-memory flag
	// operations with purely analytical costs (0).
	ByMsgs bool
	// MsgSize is the barrier message size when ByMsgs is set.
	MsgSize int64
	// HardwareTime is the arrival-to-release latency of HardwareBarrier.
	HardwareTime vtime.Time
}

// Validate rejects invalid barrier parameters.
func (b *BarrierConfig) Validate() error {
	if b.EntryTime < 0 || b.ExitTime < 0 || b.CheckTime < 0 ||
		b.ExitCheckTime < 0 || b.ModelTime < 0 || b.HardwareTime < 0 {
		return fmt.Errorf("sim: negative barrier parameter in %+v", *b)
	}
	if b.ByMsgs && b.MsgSize <= 0 {
		return fmt.Errorf("sim: ByMsgs barrier requires positive MsgSize, got %d", b.MsgSize)
	}
	return nil
}

// DefaultBarrier returns the Table 1 example parameter set.
func DefaultBarrier() BarrierConfig {
	return BarrierConfig{
		Algorithm:     LinearBarrier,
		EntryTime:     5 * vtime.Microsecond,
		ExitTime:      5 * vtime.Microsecond,
		CheckTime:     2 * vtime.Microsecond,
		ExitCheckTime: 2 * vtime.Microsecond,
		ModelTime:     10 * vtime.Microsecond,
		ByMsgs:        true,
		MsgSize:       128,
	}
}

// Placement selects how threads map onto processors — one of the
// execution-environment parameters the paper lists as extrapolatable
// ("processor mappings"). It matters when threads are multiplexed
// (Procs < n) or clustered: block placement keeps neighboring threads
// local, cyclic placement spreads them.
type Placement uint8

const (
	// BlockPlacement assigns contiguous thread ranges to processors.
	BlockPlacement Placement = iota
	// CyclicPlacement deals threads round-robin across processors.
	CyclicPlacement
)

func (p Placement) String() string {
	if p == CyclicPlacement {
		return "cyclic"
	}
	return "block"
}

// Config assembles the full target-environment model: processor count and
// speed, service policy, communication model, barrier model, and the
// multithreading/clustering extensions.
type Config struct {
	// Procs is the number of target processors. Zero means one processor
	// per thread (the paper's n-thread → n-processor extrapolation).
	Procs int
	// MipsRatio scales measured computation times to the target
	// processor: measured-host speed / target speed (0.41 for Sun 4 →
	// CM-5; 2.0 simulates a 2× slower target, 0.5 a 2× faster one).
	MipsRatio float64
	// Policy is the remote-request service policy.
	Policy Policy
	// Comm is the remote data access model.
	Comm network.Config
	// Barrier is the barrier model.
	Barrier BarrierConfig
	// Placement maps threads onto processors (block or cyclic).
	Placement Placement
	// ContextSwitchTime is charged when a multithreaded processor
	// switches between its threads.
	ContextSwitchTime vtime.Time
	// ClusterSize groups processors into shared-memory clusters of this
	// size; messages within a cluster use IntraComm. Zero or one
	// disables clustering.
	ClusterSize int
	// IntraComm is the communication model inside a cluster (ignored
	// unless ClusterSize > 1).
	IntraComm network.Config
	// EmitTrace, when set, makes the simulator produce the extrapolated
	// event trace alongside the aggregate results.
	EmitTrace bool
	// Replay selects how compiled (XTRP2) traces are replayed: the
	// default pattern mode keeps the loop structure live and lets the
	// kernel fast-forward provably steady iterations; event mode forces
	// event-by-event replay. Predictions are byte-identical either way —
	// the knob exists for cross-checking and diagnosis, so it is not
	// part of any cache key.
	Replay ReplayMode
}

// ReplayMode selects the trace replay strategy. The zero value is
// pattern-native replay so every existing call site gets the fast path.
type ReplayMode uint8

const (
	// ReplayPattern replays compiled traces through the pattern IR with
	// steady-state fast-forward (the default).
	ReplayPattern ReplayMode = iota
	// ReplayEvent forces event-by-event replay with no fast-forward.
	ReplayEvent
)

func (m ReplayMode) String() string {
	if m == ReplayEvent {
		return "event"
	}
	return "pattern"
}

// ParseReplayMode parses "pattern" or "event".
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "pattern":
		return ReplayPattern, nil
	case "event":
		return ReplayEvent, nil
	}
	return 0, fmt.Errorf("sim: unknown replay mode %q (want pattern or event)", s)
}

// Validate checks the full configuration.
func (c *Config) Validate() error {
	if c.Procs < 0 {
		return fmt.Errorf("sim: negative processor count %d", c.Procs)
	}
	if c.MipsRatio < 0 {
		return fmt.Errorf("sim: negative MipsRatio %g", c.MipsRatio)
	}
	if c.ContextSwitchTime < 0 {
		return fmt.Errorf("sim: negative context switch time %v", c.ContextSwitchTime)
	}
	if c.ClusterSize < 0 {
		return fmt.Errorf("sim: negative cluster size %d", c.ClusterSize)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if err := c.Comm.Validate(); err != nil {
		return err
	}
	if c.ClusterSize > 1 {
		if err := c.IntraComm.Validate(); err != nil {
			return err
		}
	}
	return c.Barrier.Validate()
}

// DefaultConfig returns a distributed-memory target close to the paper's
// Figure 4 parameter set: modest 20 MB/s links, relatively high
// communication start-up and synchronization costs, no speed scaling.
func DefaultConfig() Config {
	return Config{
		MipsRatio: 1.0,
		Policy: Policy{
			Kind:              Interrupt,
			InterruptOverhead: 10 * vtime.Microsecond,
			ServiceTime:       15 * vtime.Microsecond,
		},
		Comm: network.Config{
			StartupTime:      50 * vtime.Microsecond,
			ByteTransferTime: 50 * vtime.Nanosecond, // 20 MB/s
			MsgConstructTime: 10 * vtime.Microsecond,
			HopTime:          500 * vtime.Nanosecond,
			RecvOverhead:     10 * vtime.Microsecond,
			RecvOccupancy:    2 * vtime.Microsecond,
			Topology:         network.Mesh2D{},
			ContentionFactor: 0.05,
			RequestBytes:     16,
		},
		Barrier: DefaultBarrier(),
	}
}
