package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// randomWorkload builds a measured-and-translated trace with rng-chosen
// imbalance, remote traffic, and barrier count, so batch-equivalence is
// exercised over many workload shapes rather than one.
func randomWorkload(t *testing.T, rng *rand.Rand, n int) *translate.ParallelTrace {
	t.Helper()
	iters := 1 + rng.Intn(4)
	readEvery := 1 + rng.Intn(3)
	writeEvery := 1 + rng.Intn(4)
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	c := pcxx.PerThread[float64](rt, "x", 64)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		*c.Local(th, th.ID()) = float64(th.ID())
		th.Barrier()
		for it := 0; it < iters; it++ {
			th.Compute(vtime.Time(th.ID()%4+1) * 15 * vtime.Microsecond)
			if it%readEvery == 0 {
				_ = c.Read(th, (th.ID()+1+it)%n)
			}
			if it%writeEvery == 0 {
				c.Write(th, (th.ID()+n-1)%n, float64(it))
			}
			th.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// randomConfig draws one machine model spanning the engine's feature
// matrix: every barrier algorithm (model-based and message-based),
// several topologies, all service policies, multithreaded placements,
// and clustering.
func randomConfig(rng *rand.Rand, n int) Config {
	cfg := policyConfig(Interrupt, 0)
	switch rng.Intn(3) {
	case 0:
		cfg.Policy = Policy{Kind: Interrupt, InterruptOverhead: 5 * vtime.Microsecond, ServiceTime: 10 * vtime.Microsecond}
	case 1:
		cfg.Policy = Policy{Kind: NoInterrupt, ServiceTime: 10 * vtime.Microsecond}
	case 2:
		cfg.Policy = Policy{Kind: Poll, PollInterval: vtime.Time(20+10*rng.Intn(4)) * vtime.Microsecond, PollOverhead: 2 * vtime.Microsecond, ServiceTime: 10 * vtime.Microsecond}
	}
	cfg.MipsRatio = []float64{0.41, 0.5, 1.0, 2.0}[rng.Intn(4)]
	cfg.Comm.StartupTime = vtime.Time(rng.Intn(100)) * vtime.Microsecond
	cfg.Comm.ByteTransferTime = vtime.Time(rng.Intn(200)) * vtime.Nanosecond
	cfg.Comm.Topology = []network.Topology{network.Bus{}, network.Ring{}, network.Mesh2D{}, network.Hypercube{}}[rng.Intn(4)]
	cfg.Barrier.Algorithm = []BarrierAlgorithm{LinearBarrier, TreeBarrier, HardwareBarrier}[rng.Intn(3)]
	if cfg.Barrier.Algorithm != HardwareBarrier {
		cfg.Barrier.ByMsgs = rng.Intn(2) == 0
	}
	// Procs must divide n; pick a random divisor (1 ⇒ fully
	// multithreaded, n ⇒ one thread per processor).
	divs := []int{1, n}
	for d := 2; d < n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	cfg.Procs = divs[rng.Intn(len(divs))]
	if cfg.Procs < n {
		cfg.ContextSwitchTime = vtime.Time(rng.Intn(5)) * vtime.Microsecond
		if rng.Intn(2) == 0 {
			cfg.Placement = CyclicPlacement
		}
	}
	cfg.EmitTrace = true
	return cfg
}

// assertSameResult compares two simulation results event-for-event
// (emitted traces byte-compared) and field-for-field.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if (want.Trace == nil) != (got.Trace == nil) {
		t.Fatalf("%s: trace presence differs: want %v, got %v", label, want.Trace != nil, got.Trace != nil)
	}
	if want.Trace != nil {
		wantEvs, gotEvs := want.Trace.Events, got.Trace.Events
		if len(wantEvs) != len(gotEvs) {
			t.Fatalf("%s: emitted %d events, want %d", label, len(gotEvs), len(wantEvs))
		}
		for i := range wantEvs {
			if wantEvs[i] != gotEvs[i] {
				t.Fatalf("%s: event %d differs:\nwant %+v\ngot  %+v", label, i, wantEvs[i], gotEvs[i])
			}
		}
		var wantBuf, gotBuf bytes.Buffer
		if err := trace.WriteBinary(&wantBuf, want.Trace); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(&gotBuf, got.Trace); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
			t.Fatalf("%s: encoded emitted traces differ", label)
		}
	}
	wantRes, gotRes := *want, *got
	wantRes.Trace, gotRes.Trace = nil, nil
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("%s: results differ:\nwant %+v\ngot  %+v", label, wantRes, gotRes)
	}
}

// TestSimulateBatchMatchesPerCell is the batch-equivalence property:
// for randomized workloads and mixed-model batches (different barrier
// algorithms, topologies, policies, and placements in ONE batch),
// SimulateBatch must equal per-cell Simulate event-for-event.
func TestSimulateBatchMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := []int{2, 4, 8}[rng.Intn(3)]
		pt := randomWorkload(t, rng, n)
		k := 2 + rng.Intn(4)
		cfgs := make([]Config, k)
		for i := range cfgs {
			cfgs[i] = randomConfig(rng, n)
		}
		batch, err := SimulateBatch(pt, cfgs)
		if err != nil {
			t.Fatalf("trial %d: batch: %v", trial, err)
		}
		if len(batch) != k {
			t.Fatalf("trial %d: %d results for %d configs", trial, len(batch), k)
		}
		for i, cfg := range cfgs {
			want, err := Simulate(pt, cfg)
			if err != nil {
				t.Fatalf("trial %d lane %d: per-cell: %v", trial, i, err)
			}
			assertSameResult(t, labelFor(trial, i, n, cfg), want, batch[i])
		}
	}
}

func labelFor(trial, lane, n int, cfg Config) string {
	return "trial " + itoa(trial) + " lane " + itoa(lane) +
		" (n=" + itoa(n) + " procs=" + itoa(cfg.Procs) +
		" bar=" + itoa(int(cfg.Barrier.Algorithm)) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestSimulateBatchStreamMatchesPerCell runs the streaming batch entry
// point (binary decode → streaming translate → batch) against per-cell
// streaming simulation over the same bytes.
func TestSimulateBatchStreamMatchesPerCell(t *testing.T) {
	const n = 8
	tr := richMeasurement(t, n)
	var enc bytes.Buffer
	if err := trace.WriteBinary(&enc, tr); err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for _, cfg := range streamEquivConfigs(n) {
		cfg.EmitTrace = true
		cfgs = append(cfgs, cfg)
	}

	d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := translate.NewStream(d.Header(), d, translate.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SimulateBatchStream(s, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := translate.NewStream(d.Header(), d, translate.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SimulateStream(s, cfg)
		if err != nil {
			t.Fatalf("lane %d: stream per-cell: %v", i, err)
		}
		assertSameResult(t, "stream lane "+itoa(i), want, batch[i])
	}
}

// TestArenaReuseAcrossHeterogeneousRuns reuses ONE arena across
// different workloads and models interleaved — the runner's sequential
// reuse pattern — and demands bit-identical results to fresh
// allocation every time.
func TestArenaReuseAcrossHeterogeneousRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type cell struct {
		pt  *translate.ParallelTrace
		cfg Config
	}
	var cells []cell
	for _, n := range []int{4, 2, 8, 4} {
		pt := randomWorkload(t, rng, n)
		for k := 0; k < 3; k++ {
			cells = append(cells, cell{pt, randomConfig(rng, n)})
		}
	}
	a := NewArena()
	for i, c := range cells {
		want, err := Simulate(c.pt, c.cfg)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		got, err := SimulateArena(a, c.pt, c.cfg)
		if err != nil {
			t.Fatalf("cell %d (arena): %v", i, err)
		}
		assertSameResult(t, "cell "+itoa(i), want, got)
	}
}

// TestSimulateBatchLaneError: an invalid lane aborts the batch with the
// lane index in the error; valid earlier lanes do not mask it.
func TestSimulateBatchLaneError(t *testing.T) {
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) {
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
	})
	bad := zeroConfig()
	bad.Procs = 3 // 4 threads not divisible by 3
	_, err := SimulateBatch(pt, []Config{zeroConfig(), bad})
	if err == nil {
		t.Fatal("expected lane error")
	}
	if !strings.Contains(err.Error(), "lane 1") {
		t.Errorf("error %q does not name lane 1", err)
	}
}

// TestSimulateBatchEmpty: zero configs is a no-op, not an error.
func TestSimulateBatchEmpty(t *testing.T) {
	pt := measureAndTranslate(t, 2, func(th *pcxx.Thread) {
		th.Barrier()
	})
	res, err := SimulateBatch(pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("got %d results for empty batch", len(res))
	}
}
