package sim

import (
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/sim/network"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// neighborTrace builds a program where each thread reads its ring
// neighbor — the communication pattern whose cost depends on placement.
func neighborTrace(t *testing.T, n int) *translate.ParallelTrace {
	t.Helper()
	return measureWithSetup(t, n, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "c", 1024)
		return func(th *pcxx.Thread) {
			*c.Local(th, th.ID()) = 1
			th.Barrier()
			for i := 0; i < 4; i++ {
				_ = c.Read(th, (th.ID()+1)%n)
				th.Barrier()
			}
		}
	})
}

func TestPlacementString(t *testing.T) {
	if BlockPlacement.String() != "block" || CyclicPlacement.String() != "cyclic" {
		t.Error("placement names wrong")
	}
}

func TestPlacementAffectsClusterLocality(t *testing.T) {
	// 8 threads on 8 processors in two clusters of 4. Under block
	// placement, ring neighbors mostly share a cluster (6 of 8 reads are
	// intra-cluster); under cyclic placement neighbors alternate
	// clusters, making every read inter-cluster... with 8 procs and
	// cluster size 4, cyclic places thread i on proc i%8 = i — identical
	// to block. Use 4 processors (2 threads each) instead: block puts
	// threads {0,1}, {2,3}, ... together; cyclic puts {0,4}, {1,5}, ...
	pt := neighborTrace(t, 8)
	cfg := zeroConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.Comm = network.Config{
		StartupTime:      100 * vtime.Microsecond,
		ByteTransferTime: 100 * vtime.Nanosecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	cfg.IntraComm = network.Config{
		StartupTime:      1 * vtime.Microsecond,
		ByteTransferTime: 5 * vtime.Nanosecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	cfg.Policy = Policy{Kind: Interrupt, ServiceTime: 5 * vtime.Microsecond}

	run := func(p Placement) vtime.Time {
		c := cfg
		c.Placement = p
		res, err := Simulate(pt, c)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	block, cyclic := run(BlockPlacement), run(CyclicPlacement)
	// Block placement keeps ring neighbors on the same processor or
	// cluster more often, so it must be at least as fast here.
	if block >= cyclic {
		t.Errorf("block placement (%v) not faster than cyclic (%v) for ring traffic", block, cyclic)
	}
}

func TestPlacementCoversAllProcs(t *testing.T) {
	for _, p := range []Placement{BlockPlacement, CyclicPlacement} {
		seen := map[int]int{}
		for i := 0; i < 16; i++ {
			seen[placeThread(p, i, 16, 4, 4)]++
		}
		if len(seen) != 4 {
			t.Errorf("%v: threads landed on %d processors, want 4", p, len(seen))
		}
		for proc, count := range seen {
			if count != 4 {
				t.Errorf("%v: proc %d has %d threads, want 4", p, proc, count)
			}
		}
	}
}
