package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// richMeasurement produces a merged 1-processor trace with compute
// imbalance, remote reads and writes, phases, and several barriers — a
// workload that touches every engine path.
func richMeasurement(t *testing.T, n int) *trace.Trace {
	t.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	c := pcxx.PerThread[float64](rt, "x", 128)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		*c.Local(th, th.ID()) = float64(th.ID())
		th.Barrier()
		for it := 0; it < 4; it++ {
			th.Phase("iter", func() {
				th.Compute(vtime.Time(th.ID()%3+1) * 20 * vtime.Microsecond)
				_ = c.Read(th, (th.ID()+1)%n)
				if it%2 == 0 {
					c.Write(th, (th.ID()+n-1)%n, 1.0)
				}
			})
			th.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// streamEquivConfigs enumerates environments spanning the engine's
// feature matrix.
func streamEquivConfigs(n int) map[string]Config {
	cfgs := map[string]Config{
		"zero-cost":    zeroConfig(),
		"interrupt":    policyConfig(Interrupt, 0),
		"no-interrupt": policyConfig(NoInterrupt, 0),
		"poll":         policyConfig(Poll, 50*vtime.Microsecond),
	}
	msgbar := policyConfig(Interrupt, 0)
	msgbar.Barrier.ByMsgs = true
	cfgs["linear-msg-barrier"] = msgbar

	tree := policyConfig(Interrupt, 0)
	tree.Barrier.Algorithm = TreeBarrier
	tree.Barrier.ByMsgs = true
	cfgs["tree-msg-barrier"] = tree

	hw := policyConfig(Interrupt, 0)
	hw.Barrier.Algorithm = HardwareBarrier
	cfgs["hardware-barrier"] = hw

	multi := policyConfig(Poll, 30*vtime.Microsecond)
	multi.Procs = n / 2
	multi.ContextSwitchTime = 3 * vtime.Microsecond
	cfgs["multithread-block"] = multi

	cyc := multi
	cyc.Placement = CyclicPlacement
	cfgs["multithread-cyclic"] = cyc
	return cfgs
}

// TestStreamMatchesSlice: for every environment, the streaming pipeline
// (decode-free source → translate.Stream → SimulateStream) must produce
// results and emitted traces byte-identical to the in-memory path.
func TestStreamMatchesSlice(t *testing.T) {
	const n = 8
	tr := richMeasurement(t, n)
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range streamEquivConfigs(n) {
		cfg.EmitTrace = true
		want, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatalf("%s: slice path: %v", name, err)
		}
		s, err := translate.NewStream(tr.Header(), tr.Reader(), translate.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateStream(s, cfg)
		if err != nil {
			t.Fatalf("%s: stream path: %v", name, err)
		}

		var wantBuf, gotBuf bytes.Buffer
		if err := trace.WriteBinary(&wantBuf, want.Trace); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(&gotBuf, got.Trace); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
			t.Errorf("%s: emitted traces differ between stream and slice paths", name)
		}
		wantRes, gotRes := *want, *got
		wantRes.Trace, gotRes.Trace = nil, nil
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Errorf("%s: results differ:\nslice:  %+v\nstream: %+v", name, wantRes, gotRes)
		}
	}
}

// TestStreamOverBinaryDecoder runs the complete bounded-memory chain —
// binary decode → streaming translate → streaming simulate — and checks
// the prediction against the in-memory chain.
func TestStreamOverBinaryDecoder(t *testing.T) {
	const n = 4
	tr := richMeasurement(t, n)
	var enc bytes.Buffer
	if err := trace.WriteBinary(&enc, tr); err != nil {
		t.Fatal(err)
	}
	d, err := trace.NewDecoder(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := translate.NewStream(d.Header(), d, translate.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := policyConfig(Interrupt, 0)
	got, err := SimulateStream(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("results differ:\nslice:  %+v\nstream: %+v", want, got)
	}
}

// TestStreamSourceErrorAborts: a malformed source surfaces its
// validation error through the simulation instead of panicking or
// silently truncating.
func TestStreamSourceErrorAborts(t *testing.T) {
	// Thread 0 exits a barrier thread 1 never enters: inline validation
	// must fail mid-stream.
	evs := []trace.Event{
		{Time: 1, Kind: trace.KindThreadStart, Thread: 0, Arg0: 2},
		{Time: 1, Kind: trace.KindThreadStart, Thread: 1, Arg0: 2},
		{Time: 2, Kind: trace.KindBarrierEntry, Thread: 0},
		{Time: 3, Kind: trace.KindBarrierExit, Thread: 0},
		{Time: 4, Kind: trace.KindThreadEnd, Thread: 0},
		{Time: 5, Kind: trace.KindThreadEnd, Thread: 1},
	}
	s, err := translate.NewStream(trace.Header{NumThreads: 2}, trace.NewSliceReader(evs), translate.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = SimulateStream(s, zeroConfig())
	if err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("SimulateStream = %v, want barrier validation error", err)
	}
}
