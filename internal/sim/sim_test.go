package sim

import (
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// measureAndTranslate runs a pcxx program and translates its trace.
func measureAndTranslate(t *testing.T, n int, body func(*pcxx.Thread)) *translate.ParallelTrace {
	t.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// measureWithSetup is measureAndTranslate with a collection-setup hook.
func measureWithSetup(t *testing.T, n int, setup func(*pcxx.Runtime) func(*pcxx.Thread)) *translate.ParallelTrace {
	t.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	body := setup(rt)
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// zeroConfig is an environment with free communication and
// synchronization: the simulated time must equal the translated ideal
// parallel time exactly.
func zeroConfig() Config {
	return Config{
		MipsRatio: 1.0,
		Policy:    Policy{Kind: Interrupt},
		Comm: network.Config{
			Topology: network.Bus{},
		},
		Barrier: BarrierConfig{Algorithm: LinearBarrier, ByMsgs: false},
	}
}

func TestZeroCostMatchesIdealTime(t *testing.T) {
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(vtime.Time(th.ID()*17+i*31+10) * vtime.Microsecond)
			th.Barrier()
		}
	})
	res, err := Simulate(pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != pt.Duration() {
		t.Fatalf("zero-cost sim time %v != ideal %v", res.TotalTime, pt.Duration())
	}
	if res.Barriers != 3 {
		t.Errorf("Barriers = %d, want 3", res.Barriers)
	}
}

func TestZeroCostWithRemoteReads(t *testing.T) {
	pt := measureWithSetup(t, 4, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 8)
		return func(th *pcxx.Thread) {
			*c.Local(th, th.ID()) = 1
			th.Barrier()
			th.Compute(10 * vtime.Microsecond)
			_ = c.Read(th, (th.ID()+1)%4)
			th.Compute(10 * vtime.Microsecond)
			th.Barrier()
		}
	})
	res, err := Simulate(pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != pt.Duration() {
		t.Fatalf("zero-cost sim time %v != ideal %v", res.TotalTime, pt.Duration())
	}
	var reads int64
	for _, s := range res.Threads {
		reads += s.RemoteReads
	}
	if reads != 4 {
		t.Errorf("RemoteReads = %d, want 4", reads)
	}
}

func TestMipsRatioScalesCompute(t *testing.T) {
	pt := measureAndTranslate(t, 2, func(th *pcxx.Thread) {
		th.Compute(100 * vtime.Microsecond)
		th.Barrier()
	})
	for _, ratio := range []float64{0.5, 1.0, 2.0} {
		cfg := zeroConfig()
		cfg.MipsRatio = ratio
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := (100 * vtime.Microsecond).Scale(ratio)
		if res.TotalTime != want {
			t.Errorf("ratio %g: time %v, want %v", ratio, res.TotalTime, want)
		}
	}
}

func TestRemoteReadLatencyHandComputed(t *testing.T) {
	// Two threads; thread 1 reads thread 0's element once. With the
	// Interrupt policy and owner idle (waiting at a barrier), the total
	// remote latency is:
	//   send overhead (construct+startup) + request transit
	//   + service + reply send overhead + reply transit + recv overhead.
	pt := measureWithSetup(t, 2, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 1000) // 1000-byte elements
		return func(th *pcxx.Thread) {
			th.Barrier()
			if th.ID() == 1 {
				th.Compute(10 * vtime.Microsecond)
				_ = c.Read(th, 0)
			}
			th.Barrier()
		}
	})
	cfg := zeroConfig()
	cfg.Comm = network.Config{
		StartupTime:      10 * vtime.Microsecond,
		ByteTransferTime: 100 * vtime.Nanosecond, // 0.1 µs/B
		MsgConstructTime: 2 * vtime.Microsecond,
		HopTime:          0,
		RecvOverhead:     5 * vtime.Microsecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	cfg.Policy = Policy{Kind: Interrupt, ServiceTime: 3 * vtime.Microsecond}
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request: 12 (send ovh) + 1.6 (16B transit) = 13.6; owner waits at
	// barrier 1 so service starts on arrival: 3 (service) + 12 (reply
	// send ovh); reply transit 100µs (1000B·0.1); recv 5.
	wantLatency := vtime.FromMicros(12 + 1.6 + 3 + 12 + 100 + 5)
	// Thread 1: barrier exits at 0 (zero-cost barrier), computes 10µs,
	// then the read; total = 10µs + latency.
	want := 10*vtime.Microsecond + wantLatency
	if res.Threads[1].CommWait != wantLatency {
		t.Errorf("CommWait = %v, want %v", res.Threads[1].CommWait, wantLatency)
	}
	if res.TotalTime != want {
		t.Errorf("TotalTime = %v, want %v", res.TotalTime, want)
	}
}

func TestLinearBarrierAnalyticCost(t *testing.T) {
	// Shared-memory linear barrier with Table-1-style parameters and
	// perfectly balanced threads: release = entry + EntryTime + CheckTime
	// + ModelTime; slaves exit at release + ExitCheckTime + ExitTime.
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) {
		th.Compute(100 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := zeroConfig()
	cfg.Barrier = BarrierConfig{
		Algorithm:     LinearBarrier,
		EntryTime:     5 * vtime.Microsecond,
		ExitTime:      5 * vtime.Microsecond,
		CheckTime:     2 * vtime.Microsecond,
		ExitCheckTime: 2 * vtime.Microsecond,
		ModelTime:     10 * vtime.Microsecond,
		ByMsgs:        false,
	}
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100 (compute) + 5 (entry) + 2 (check) + 10 (model) + 2 (exit
	// check) + 5 (exit) = 124 µs for slaves; ThreadEnd immediately after.
	want := vtime.FromMicros(124)
	if res.TotalTime != want {
		t.Fatalf("TotalTime = %v, want %v", res.TotalTime, want)
	}
}

func TestLinearMessageBarrierScalesLinearly(t *testing.T) {
	// With message-based release, barrier cost grows ~linearly in n
	// because the master sends releases one at a time.
	cost := func(n int) vtime.Time {
		pt := measureAndTranslate(t, n, func(th *pcxx.Thread) {
			th.Compute(10 * vtime.Microsecond)
			th.Barrier()
		})
		cfg := zeroConfig()
		cfg.Barrier = DefaultBarrier()
		cfg.Comm = network.Config{
			StartupTime:      10 * vtime.Microsecond,
			ByteTransferTime: 50 * vtime.Nanosecond,
			Topology:         network.Bus{},
			RequestBytes:     16,
		}
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	c8, c16, c32 := cost(8), cost(16), cost(32)
	if c16 <= c8 || c32 <= c16 {
		t.Fatalf("barrier cost not increasing: %v, %v, %v", c8, c16, c32)
	}
	// Doubling n should roughly double the release chain tail.
	growth := float64(c32-c16) / float64(c16-c8)
	if growth < 1.5 || growth > 2.6 {
		t.Errorf("linear barrier growth factor = %.2f, want ≈2", growth)
	}
}

func TestTreeBarrierBeatsLinearAtScale(t *testing.T) {
	run := func(alg BarrierAlgorithm) vtime.Time {
		pt := measureAndTranslate(t, 32, func(th *pcxx.Thread) {
			th.Compute(10 * vtime.Microsecond)
			th.Barrier()
		})
		cfg := zeroConfig()
		cfg.Barrier = DefaultBarrier()
		cfg.Barrier.Algorithm = alg
		cfg.Comm = network.Config{
			StartupTime:      10 * vtime.Microsecond,
			ByteTransferTime: 50 * vtime.Nanosecond,
			Topology:         network.Bus{},
			RequestBytes:     16,
		}
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	linear, tree := run(LinearBarrier), run(TreeBarrier)
	if tree >= linear {
		t.Fatalf("tree barrier (%v) not faster than linear (%v) at n=32", tree, linear)
	}
}

func TestHardwareBarrierConstant(t *testing.T) {
	cost := func(n int) vtime.Time {
		pt := measureAndTranslate(t, n, func(th *pcxx.Thread) {
			th.Compute(10 * vtime.Microsecond)
			th.Barrier()
		})
		cfg := zeroConfig()
		cfg.Barrier = BarrierConfig{
			Algorithm:    HardwareBarrier,
			HardwareTime: 3 * vtime.Microsecond,
		}
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	if c4, c32 := cost(4), cost(32); c4 != c32 {
		t.Errorf("hardware barrier cost varies with n: %v vs %v", c4, c32)
	}
}

// policyScenario: thread 0 computes a long block while threads 1..n-1
// each read one of thread 0's elements early — the service policy decides
// how long they wait.
func policyScenario(t *testing.T, n int) *translate.ParallelTrace {
	return measureWithSetup(t, n, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 256)
		return func(th *pcxx.Thread) {
			*c.Local(th, th.ID()) = 1
			th.Barrier()
			if th.ID() == 0 {
				th.Compute(5 * vtime.Millisecond)
			} else {
				th.Compute(10 * vtime.Microsecond)
				_ = c.Read(th, 0)
			}
			th.Barrier()
		}
	})
}

func policyConfig(kind PolicyKind, interval vtime.Time) Config {
	cfg := zeroConfig()
	cfg.Comm = network.Config{
		StartupTime:      10 * vtime.Microsecond,
		ByteTransferTime: 100 * vtime.Nanosecond,
		MsgConstructTime: 2 * vtime.Microsecond,
		RecvOverhead:     5 * vtime.Microsecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	cfg.Policy = Policy{
		Kind:              kind,
		PollInterval:      interval,
		PollOverhead:      1 * vtime.Microsecond,
		InterruptOverhead: 10 * vtime.Microsecond,
		ServiceTime:       5 * vtime.Microsecond,
	}
	cfg.Barrier = DefaultBarrier()
	cfg.Barrier.ByMsgs = false
	return cfg
}

func TestPolicyOrdering(t *testing.T) {
	pt := policyScenario(t, 4)
	interrupt, err := Simulate(pt, policyConfig(Interrupt, 0))
	if err != nil {
		t.Fatal(err)
	}
	poll, err := Simulate(pt, policyConfig(Poll, 100*vtime.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	noInt, err := Simulate(pt, policyConfig(NoInterrupt, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Readers' comm wait: interrupt ≤ poll ≤ no-interrupt in this
	// scenario (owner computes 5ms; no-interrupt readers wait for the
	// owner's barrier).
	iw, pw, nw := interrupt.Threads[1].CommWait, poll.Threads[1].CommWait, noInt.Threads[1].CommWait
	if !(iw < pw && pw < nw) {
		t.Fatalf("comm waits: interrupt %v, poll %v, no-interrupt %v — want strictly increasing", iw, pw, nw)
	}
	// Under no-interrupt, readers wait ~until the owner's 5ms compute
	// ends.
	if nw < 4*vtime.Millisecond {
		t.Errorf("no-interrupt comm wait %v, want ≈5ms", nw)
	}
	// Poll readers wait no more than ~one poll interval plus overheads.
	if pw > 300*vtime.Microsecond {
		t.Errorf("poll comm wait %v, want ≲ poll interval", pw)
	}
}

func TestPollIntervalTradeoff(t *testing.T) {
	// Finer polling answers requests sooner but charges the owner more
	// overhead; the reader wait must be monotone in the interval.
	pt := policyScenario(t, 2)
	w100, err := Simulate(pt, policyConfig(Poll, 100*vtime.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	w1000, err := Simulate(pt, policyConfig(Poll, 1000*vtime.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if w100.Threads[1].CommWait >= w1000.Threads[1].CommWait {
		t.Errorf("poll 100µs wait %v not below poll 1000µs wait %v",
			w100.Threads[1].CommWait, w1000.Threads[1].CommWait)
	}
	// But the owner pays more poll overhead at 100µs.
	if w100.Threads[0].Service <= w1000.Threads[0].Service {
		t.Errorf("poll 100µs owner service %v not above poll 1000µs %v",
			w100.Threads[0].Service, w1000.Threads[0].Service)
	}
}

func TestDeterminism(t *testing.T) {
	pt := policyScenario(t, 8)
	cfg := policyConfig(Interrupt, 0)
	cfg.Comm.ContentionFactor = 0.1
	a, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.Net != b.Net {
		t.Fatalf("simulation not deterministic: %v vs %v", a.TotalTime, b.TotalTime)
	}
	for i := range a.Threads {
		if a.Threads[i] != b.Threads[i] {
			t.Fatalf("thread %d stats differ between runs", i)
		}
	}
}

func TestMultithreadedProcessors(t *testing.T) {
	// 8 threads of pure balanced compute on 8, 4, 2, 1 processors: time
	// scales by the multiplexing factor.
	pt := measureAndTranslate(t, 8, func(th *pcxx.Thread) {
		th.Compute(100 * vtime.Microsecond)
		th.Barrier()
	})
	base := vtime.Time(0)
	for _, procs := range []int{8, 4, 2, 1} {
		cfg := zeroConfig()
		cfg.Procs = procs
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		want := vtime.Time(8/procs) * 100 * vtime.Microsecond
		if res.TotalTime != want {
			t.Errorf("procs=%d: time %v, want %v", procs, res.TotalTime, want)
		}
		if procs == 8 {
			base = res.TotalTime
		} else if res.TotalTime <= base {
			t.Errorf("procs=%d not slower than 8-proc run", procs)
		}
	}
}

func TestMultithreadContextSwitchCost(t *testing.T) {
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) {
		th.Compute(50 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := zeroConfig()
	cfg.Procs = 2
	cfg.ContextSwitchTime = 7 * vtime.Microsecond
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two threads per proc: 50 + switch + 50 = 107µs to the last barrier
	// entry; after the (free) release each thread needs the CPU again to
	// reach its thread-end event, costing two more switches: 121µs.
	if res.TotalTime != 121*vtime.Microsecond {
		t.Errorf("TotalTime = %v, want 121µs", res.TotalTime)
	}
	var cpuWait vtime.Time
	for _, s := range res.Threads {
		cpuWait += s.CPUWait
	}
	if cpuWait == 0 {
		t.Error("no CPU wait recorded on multithreaded processors")
	}
}

func TestInvalidConfigs(t *testing.T) {
	pt := measureAndTranslate(t, 4, func(th *pcxx.Thread) { th.Barrier() })
	bad := []func(*Config){
		func(c *Config) { c.MipsRatio = -1 },
		func(c *Config) { c.Procs = 3 },  // 4 % 3 != 0
		func(c *Config) { c.Procs = 8 },  // more procs than threads
		func(c *Config) { c.Procs = -1 }, // negative
		func(c *Config) { c.Policy.Kind = Poll; c.Policy.PollInterval = 0 },
		func(c *Config) { c.Barrier.ByMsgs = true; c.Barrier.MsgSize = 0 },
		func(c *Config) { c.Comm.StartupTime = -1 },
		func(c *Config) { c.ContextSwitchTime = -1 },
	}
	for i, mutate := range bad {
		cfg := zeroConfig()
		mutate(&cfg)
		if _, err := Simulate(pt, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEmitTrace(t *testing.T) {
	pt := measureWithSetup(t, 2, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 64)
		return func(th *pcxx.Thread) {
			th.Barrier()
			if th.ID() == 1 {
				_ = c.Read(th, 0)
			}
			th.Barrier()
		}
	})
	cfg := policyConfig(Interrupt, 0)
	cfg.Barrier = DefaultBarrier() // message barrier → MsgSend events
	cfg.EmitTrace = true
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("EmitTrace produced no trace")
	}
	s := trace.ComputeStats(res.Trace)
	if s.PerKind[trace.KindBarrierEntry] != 4 || s.PerKind[trace.KindBarrierExit] != 4 {
		t.Errorf("barrier events = %d/%d, want 4/4",
			s.PerKind[trace.KindBarrierEntry], s.PerKind[trace.KindBarrierExit])
	}
	if s.MsgSends == 0 {
		t.Error("no message events in extrapolated trace")
	}
	// Trace must be time-sorted.
	var last vtime.Time
	for i, e := range res.Trace.Events {
		if e.Time < last {
			t.Fatalf("extrapolated trace unsorted at %d", i)
		}
		last = e.Time
	}
}

func TestContentionSlowsCommunication(t *testing.T) {
	// All threads read from thread 0 simultaneously over a bus.
	pt := measureWithSetup(t, 8, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 4096)
		return func(th *pcxx.Thread) {
			*c.Local(th, th.ID()) = 1
			th.Barrier()
			if th.ID() != 0 {
				_ = c.Read(th, 0)
			}
			th.Barrier()
		}
	})
	run := func(factor float64) vtime.Time {
		cfg := policyConfig(Interrupt, 0)
		cfg.Comm.ContentionFactor = factor
		res, err := Simulate(pt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	free, contended := run(0), run(0.5)
	if contended <= free {
		t.Errorf("contention did not slow the run: %v vs %v", contended, free)
	}
}

func TestClusteredCommunication(t *testing.T) {
	// Threads 0-3 on procs 0-3 (cluster 0), 4-7 on 4-7 (cluster 1):
	// intra-cluster reads must be much cheaper than inter-cluster ones
	// when the intra network is shared-memory-like.
	mk := func(readFrom func(id int) int) *translate.ParallelTrace {
		return measureWithSetup(t, 8, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			c := pcxx.PerThread[float64](rt, "p", 1024)
			return func(th *pcxx.Thread) {
				*c.Local(th, th.ID()) = 1
				th.Barrier()
				if th.ID() == 1 {
					_ = c.Read(th, readFrom(th.ID()))
				}
				th.Barrier()
			}
		})
	}
	cfg := policyConfig(Interrupt, 0)
	cfg.ClusterSize = 4
	cfg.IntraComm = network.Config{
		StartupTime:      500 * vtime.Nanosecond,
		ByteTransferTime: 5 * vtime.Nanosecond, // 200 MB/s
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	intra, err := Simulate(mk(func(int) int { return 0 }), cfg) // 1 reads 0: same cluster
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Simulate(mk(func(int) int { return 7 }), cfg) // 1 reads 7: cross cluster
	if err != nil {
		t.Fatal(err)
	}
	if intra.Threads[1].CommWait >= inter.Threads[1].CommWait {
		t.Errorf("intra-cluster read (%v) not cheaper than inter-cluster (%v)",
			intra.Threads[1].CommWait, inter.Threads[1].CommWait)
	}
}

func TestRemoteWriteFireAndForget(t *testing.T) {
	pt := measureWithSetup(t, 2, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 64)
		return func(th *pcxx.Thread) {
			th.Barrier()
			if th.ID() == 0 {
				c.Write(th, 1, 42)
				th.Compute(10 * vtime.Microsecond)
			}
			th.Barrier()
		}
	})
	cfg := policyConfig(Interrupt, 0)
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].RemoteWrites != 1 {
		t.Errorf("RemoteWrites = %d, want 1", res.Threads[0].RemoteWrites)
	}
	// The writer pays only the send overhead, not a round trip.
	sendOv := cfg.Comm.MsgConstructTime + cfg.Comm.StartupTime
	if res.Threads[0].CommWait != sendOv {
		t.Errorf("writer CommWait = %v, want %v (send overhead only)", res.Threads[0].CommWait, sendOv)
	}
}

func TestStatsAccounting(t *testing.T) {
	pt := policyScenario(t, 4)
	res, err := Simulate(pt, policyConfig(Interrupt, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Threads {
		if s.Finish <= 0 || s.Finish > res.TotalTime {
			t.Errorf("thread %d finish %v outside (0, %v]", i, s.Finish, res.TotalTime)
		}
		if s.Compute < 0 || s.CommWait < 0 || s.BarrierWait < 0 || s.Service < 0 {
			t.Errorf("thread %d has negative stat: %+v", i, s)
		}
		if s.Barriers != 2 {
			t.Errorf("thread %d barriers = %d, want 2", i, s.Barriers)
		}
	}
	if res.TotalCompute() == 0 {
		t.Error("no compute recorded")
	}
	if res.Net.Messages == 0 {
		t.Error("no messages recorded")
	}
	if res.CompCommRatio() < 0 {
		t.Error("comp/comm ratio should be finite when communication happened")
	}
}

func TestSpeedupShape(t *testing.T) {
	// A balanced compute-heavy program must show near-linear scaling
	// under the default config (the Embar expectation of Fig 4): the
	// n-thread program does n× the 1-thread program's work, so its
	// simulated parallel time should stay close to the 1-thread time.
	simT := func(n int) vtime.Time {
		pt := measureAndTranslate(t, n, func(th *pcxx.Thread) {
			for i := 0; i < 4; i++ {
				th.Compute(10 * vtime.Millisecond)
				th.Barrier()
			}
		})
		res, err := Simulate(pt, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	t1, t8 := simT(1), simT(8)
	if t8 > t1*12/10 {
		t.Errorf("compute-bound program scaled poorly: t1=%v t8=%v", t1, t8)
	}
}

func TestTraceWithoutThreadEndEvents(t *testing.T) {
	// A hand-built parallel trace whose threads stop after their last
	// barrier exit (no thread-end records): the simulator must treat the
	// cursor running out as completion rather than deadlocking.
	pt := &translate.ParallelTrace{
		NumThreads: 2,
		Threads: [][]trace.Event{
			{
				{Time: 0, Kind: trace.KindThreadStart, Thread: 0, Arg0: 2},
				{Time: 10 * vtime.Microsecond, Kind: trace.KindBarrierEntry, Thread: 0, Arg0: 0},
				{Time: 20 * vtime.Microsecond, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 0},
			},
			{
				{Time: 0, Kind: trace.KindThreadStart, Thread: 1, Arg0: 2},
				{Time: 20 * vtime.Microsecond, Kind: trace.KindBarrierEntry, Thread: 1, Arg0: 0},
				{Time: 20 * vtime.Microsecond, Kind: trace.KindBarrierExit, Thread: 1, Arg0: 0},
			},
		},
		Barriers: 1,
	}
	res, err := Simulate(pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != 20*vtime.Microsecond {
		t.Fatalf("TotalTime = %v, want 20µs", res.TotalTime)
	}
}

func TestEmptyParallelTraceRejected(t *testing.T) {
	if _, err := Simulate(&translate.ParallelTrace{}, zeroConfig()); err == nil {
		t.Error("empty parallel trace accepted")
	}
}

func TestThreadsWithNoEventsFinishImmediately(t *testing.T) {
	pt := &translate.ParallelTrace{
		NumThreads: 2,
		Threads: [][]trace.Event{
			{
				{Time: 0, Kind: trace.KindThreadStart, Thread: 0, Arg0: 2},
				{Time: 5 * vtime.Microsecond, Kind: trace.KindThreadEnd, Thread: 0},
			},
			{}, // thread 1 recorded nothing
		},
	}
	res, err := Simulate(pt, zeroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != 5*vtime.Microsecond {
		t.Fatalf("TotalTime = %v", res.TotalTime)
	}
}

func TestPollWithMultithreading(t *testing.T) {
	// The poll policy's chunked compute must compose with CPU
	// multiplexing: 4 threads on 2 processors, long computes, remote
	// reads answered at poll boundaries.
	pt := measureWithSetup(t, 4, func(rt *pcxx.Runtime) func(*pcxx.Thread) {
		c := pcxx.PerThread[float64](rt, "p", 64)
		return func(th *pcxx.Thread) {
			*c.Local(th, th.ID()) = 1
			th.Barrier()
			if th.ID() == 0 {
				th.Compute(2 * vtime.Millisecond)
			} else {
				th.Compute(10 * vtime.Microsecond)
				_ = c.Read(th, 0)
			}
			th.Barrier()
		}
	})
	cfg := policyConfig(Poll, 200*vtime.Microsecond)
	cfg.Procs = 2
	cfg.ContextSwitchTime = 5 * vtime.Microsecond
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 2*vtime.Millisecond {
		t.Fatalf("TotalTime = %v, want > thread 0's compute", res.TotalTime)
	}
	var cpuWait vtime.Time
	for _, s := range res.Threads {
		cpuWait += s.CPUWait
	}
	if cpuWait == 0 {
		t.Error("no CPU wait under multiplexing")
	}
}
