package sim

import (
	"context"
	"fmt"
	"io"

	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// msgKind discriminates simulated messages.
type msgKind uint8

const (
	mReqRead msgKind = iota
	mReqWrite
	mReply
	mBarArrive
	mBarRelease
)

// message is one simulated network message.
type message struct {
	kind      msgKind
	src, dst  int // thread ids
	bytes     int64
	barrier   int64
	delivered bool // NI queueing applied
}

// msgSlab hands out messages carved from block allocations, replacing
// one heap allocation per simulated message with one per msgSlabSize
// messages. Messages are addressed by dense index — the future event
// list stores the index, not a pointer, keeping heap events free of GC
// write barriers. A message's slot is recycled once its handling
// completes (the engine releases it at each end-of-life point), so the
// slab's footprint tracks the in-flight message population, not the
// total message count of the run; blocks already allocated are retained
// across resets for arena reuse. Slot reuse cannot perturb results:
// indices are bookkeeping only — event ordering is by (at, seq), which
// never reads them.
const msgSlabSize = 256

type msgSlab struct {
	blocks [][]message
	used   int     // high-water slots handed out this run
	free   []int32 // released slots awaiting reuse
}

func (s *msgSlab) new(kind msgKind, src, dst int, bytes, barrier int64) int32 {
	var idx int
	if n := len(s.free); n > 0 {
		idx = int(s.free[n-1])
		s.free = s.free[:n-1]
	} else {
		if s.used == len(s.blocks)*msgSlabSize {
			s.blocks = append(s.blocks, make([]message, msgSlabSize))
		}
		idx = s.used
		s.used++
	}
	m := &s.blocks[idx/msgSlabSize][idx%msgSlabSize]
	// Full overwrite: slots are reused within and across runs, so every
	// field — delivered included — must be set, not assumed zero.
	*m = message{kind: kind, src: src, dst: dst, bytes: bytes, barrier: barrier}
	return int32(idx)
}

// release returns a slot to the free list. The caller owns the proof
// that nothing — no future-event-list entry, no service queue — still
// holds index i.
func (s *msgSlab) release(i int32) { s.free = append(s.free, i) }

// at resolves a slab index. Taking a new pointer per use is safe: blocks
// never move once allocated (growing appends a block, it does not copy
// messages).
func (s *msgSlab) at(i int32) *message {
	return &s.blocks[int(i)/msgSlabSize][int(i)%msgSlabSize]
}

// reset forgets all handed-out messages, keeping the blocks for reuse.
func (s *msgSlab) reset() {
	s.used = 0
	s.free = s.free[:0]
}

// tstate is a simulated thread's execution state.
type tstate uint8

const (
	tsComputing tstate = iota
	tsWaitCPU
	tsWaitReply
	tsWaitBarrier
	tsDone
)

// thr is the per-thread simulation state: a cursor over the translated
// trace plus execution bookkeeping. The cursor has two modes sharing one
// peek/advance API: a slice fast path over a materialized ParallelTrace
// (evs/pos), and a streaming path (src/cur/curOK) that pulls events on
// demand so the full trace never needs to be resident.
type thr struct {
	id, proc int
	evs      []trace.Event
	pos      int
	src      trace.Reader // non-nil in streaming mode
	cur      trace.Event  // current event (streaming mode)
	curOK    bool
	prevT    vtime.Time // translated-trace time of the last consumed event
	state    tstate
	gen      uint32     // invalidates superseded compute-done/poll events
	segEnd   vtime.Time // absolute end of the current compute run
	pureLeft vtime.Time // pure compute remaining beyond the current run (Poll)
	blockAt  vtime.Time // when the thread last blocked (stats)
	readyAt  vtime.Time // when the thread became runnable (CPU wait stats)
	stats    ThreadStats
}

// hasCur reports whether the thread's cursor is positioned on an event.
func (t *thr) hasCur() bool {
	if t.src == nil {
		return t.pos < len(t.evs)
	}
	return t.curOK
}

// peek returns the current event; valid only when hasCur. The pointer
// is into the event slice (slice mode) or the cursor register (streaming
// mode) — in streaming mode it is invalidated by advance/consume, so
// callers copy any field they need past a consume.
func (t *thr) peek() *trace.Event {
	if t.src == nil {
		return &t.evs[t.pos]
	}
	return &t.cur
}

// advance moves t's cursor past the current event. In streaming mode a
// mid-stream source error is recorded on the engine (the event loop
// aborts with it) and the cursor reads as exhausted.
func (e *engine) advance(t *thr) {
	if t.src == nil {
		t.pos++
		return
	}
	ev, err := t.src.Next()
	if err != nil {
		t.curOK = false
		if err != io.EOF && e.fail == nil {
			e.fail = err
		}
		return
	}
	t.cur, t.curOK = ev, true
}

// prc is a simulated processor: the threads mapped to it, its run state,
// its pending-request queue, and its service serialization point.
type prc struct {
	id       int
	threads  []int
	current  int // thread id computing now, -1 if none
	last     int // last thread that computed (context switch detection)
	runq     []int
	svcQueue []int32 // msgSlab indices
	// svcBusyUntil serializes message handling on this processor.
	svcBusyUntil vtime.Time
}

// engine drives one trace-driven simulation. Threads, processors, and
// barrier states live in dense slices (not maps or per-item heap
// allocations) so the event loop touches contiguous memory.
type engine struct {
	cfg     Config
	n       int
	nprocs  int
	threads []thr
	procs   []prc
	inter   *network.Network
	intra   *network.Network // non-nil when clustering is enabled
	fel     fel
	bars    []barSt // dense by barrier id
	nbars   int     // barriers actually encountered
	msgs    msgSlab
	out     *trace.Trace
	now     vtime.Time
	done    int
	fail    error // sticky mid-stream source error (streaming mode)
	// cont is the continuation register: the one event runSegment just
	// produced, held out of the heap. The event loop dispatches it
	// directly when it precedes everything queued (the overwhelmingly
	// common compute-segment ping-pong), skipping the insert/pop round
	// trip; otherwise it is inserted with its already-reserved seq, so
	// ordering is identical to scheduling eagerly.
	cont   event
	contOK bool
}

// Arena holds the dense simulator state — thread and processor records,
// the future event list, barrier slots, and the message slab — so
// repeated simulations (batch lanes, sequential sweep cells) reuse the
// same allocations instead of rebuilding ~0.5 MB of state per run.
// Every record is fully reinitialized when acquired, so results are
// bit-identical to a fresh engine. An Arena is not safe for concurrent
// use; share one per goroutine.
type Arena struct {
	threads []thr
	procs   []prc
	bars    []barSt
	felq    []event
	msgs    msgSlab
}

// NewArena returns an empty arena; state is allocated on first use and
// grown as needed.
func NewArena() *Arena { return &Arena{} }

// acquire attaches the arena's recycled state to e, reinitializing
// everything a fresh engine would have zero. Inner slices owned by
// retained records (per-processor queues, tree-barrier tables) are kept
// and re-zeroed where they are re-armed (see prc setup and bar()).
func (a *Arena) acquire(e *engine, n, nprocs, barriersHint int) {
	if cap(a.threads) < n {
		a.threads = make([]thr, n)
	}
	e.threads = a.threads[:n]
	for i := range e.threads {
		e.threads[i] = thr{}
	}
	if cap(a.procs) < nprocs {
		a.procs = make([]prc, nprocs)
	}
	e.procs = a.procs[:nprocs]
	for i := range e.procs {
		p := &e.procs[i]
		*p = prc{
			threads:  p.threads[:0],
			runq:     p.runq[:0],
			svcQueue: p.svcQueue[:0],
		}
	}
	// Barrier slots keep their tree tables (reset lazily in bar()) but
	// drop all per-run scalar state, including the used marker.
	if cap(a.bars) < barriersHint {
		grown := make([]barSt, barriersHint)
		copy(grown, a.bars)
		a.bars = grown
	}
	e.bars = a.bars[:cap(a.bars)]
	for i := range e.bars {
		b := &e.bars[i]
		*b = barSt{
			childGot:    b.childGot,
			nodeEntered: b.nodeEntered,
			nodeFreeAt:  b.nodeFreeAt,
			releaseSent: b.releaseSent,
		}
	}
	e.fel.q = a.felq[:0]
	e.fel.topOK = false
	e.fel.nextSq = 0
	a.msgs.reset()
	e.msgs = a.msgs
}

// release returns e's (possibly grown) state to the arena.
func (a *Arena) release(e *engine) {
	a.threads = e.threads[:cap(e.threads)]
	a.procs = e.procs[:cap(e.procs)]
	a.bars = e.bars[:cap(e.bars)]
	a.felq = e.fel.q[:0]
	a.msgs = e.msgs
}

// Reset drops per-run state so the arena can be reused; allocations are
// retained. Calling Reset is optional — acquire reinitializes
// everything — but makes the lifecycle explicit for long-held arenas.
func (a *Arena) Reset() {
	a.msgs.reset()
}

// Simulate replays the translated parallel trace against the target
// environment described by cfg and returns the predicted performance
// information and metrics. The input trace is read-only: neither the
// event slices nor the ParallelTrace header are modified, so one
// translation may be simulated under many configurations (and from many
// goroutines) concurrently.
func Simulate(pt *translate.ParallelTrace, cfg Config) (*Result, error) {
	return SimulateContext(context.Background(), pt, cfg)
}

// ctxCheckMask paces the event loop's cancellation polls: the context is
// consulted once every (mask+1) events, keeping the check off the
// per-event hot path while still bounding how long a cancelled
// simulation keeps running.
const ctxCheckMask = 1<<13 - 1

// SimulateContext is Simulate with a cancellation point: the event loop
// polls ctx periodically and abandons the simulation with ctx's error
// (wrapped, so errors.Is sees context.Canceled / DeadlineExceeded) when
// the caller's deadline passes. Serving layers use this to bound
// per-request simulation time.
func SimulateContext(ctx context.Context, pt *translate.ParallelTrace, cfg Config) (*Result, error) {
	return simulate(ctx, cfg, pt.NumThreads, pt.Phases, pt.Barriers, pt.Events(),
		func(t *thr, i int) { t.evs = pt.Threads[i] }, nil, nil)
}

// SimulateArena is Simulate drawing its dense state from a — reusing the
// thread/processor/barrier tables, event list, and message slab across
// runs so repeated simulations of sweep cells allocate almost nothing.
// Results are bit-identical to Simulate.
func SimulateArena(a *Arena, pt *translate.ParallelTrace, cfg Config) (*Result, error) {
	return SimulateArenaContext(context.Background(), a, pt, cfg)
}

// SimulateArenaContext is SimulateArena with a cancellation point.
func SimulateArenaContext(ctx context.Context, a *Arena, pt *translate.ParallelTrace, cfg Config) (*Result, error) {
	return simulate(ctx, cfg, pt.NumThreads, pt.Phases, pt.Barriers, pt.Events(),
		func(t *thr, i int) { t.evs = pt.Threads[i] }, a, nil)
}

// SimulateBatch replays one translated trace under K machine
// configurations in a single call: the per-thread event slices are
// shared read-only across all K lanes while each lane advances its own
// future-event-list and dense thread/processor/barrier state, recycled
// through one arena so allocations stay flat in K. Lane i's Result is
// bit-identical to Simulate(pt, cfgs[i]); a lane configuration error
// aborts the batch with that lane's error.
func SimulateBatch(pt *translate.ParallelTrace, cfgs []Config) ([]*Result, error) {
	return SimulateBatchContext(context.Background(), pt, cfgs)
}

// SimulateBatchContext is SimulateBatch with a cancellation point,
// polled within each lane.
func SimulateBatchContext(ctx context.Context, pt *translate.ParallelTrace, cfgs []Config) ([]*Result, error) {
	out := make([]*Result, len(cfgs))
	a := NewArena()
	for i, cfg := range cfgs {
		res, err := SimulateArenaContext(ctx, a, pt, cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// SimulateBatchStream is SimulateBatch over streaming cursors. Per-thread
// cursors are single-shot, so the source is drained exactly once into
// materialized per-thread slices which the K lanes then share — batching
// trades the streaming path's bounded memory for one resident copy of
// the translated trace. Lane results are bit-identical to
// SimulateStream on an equivalent source.
func SimulateBatchStream(src Source, cfgs []Config) ([]*Result, error) {
	return SimulateBatchStreamContext(context.Background(), src, cfgs)
}

// SimulateBatchStreamContext is SimulateBatchStream with a cancellation
// point.
func SimulateBatchStreamContext(ctx context.Context, src Source, cfgs []Config) ([]*Result, error) {
	pt, err := materialize(src)
	if err != nil {
		return nil, err
	}
	return SimulateBatchContext(ctx, pt, cfgs)
}

// materialize drains a streaming source into a ParallelTrace usable by
// the slice fast path. Cursors are consumed round-robin, one event per
// thread per round, so a translate stream's bounded cross-thread
// buffering (consumer skew stays within one event per thread) is never
// exceeded.
func materialize(src Source) (*translate.ParallelTrace, error) {
	n := src.NumThreads()
	pt := &translate.ParallelTrace{
		NumThreads: n,
		Threads:    make([][]trace.Event, n),
		Phases:     append([]string(nil), src.Phases()...),
	}
	readers := make([]trace.Reader, n)
	for i := range readers {
		readers[i] = src.Thread(i)
	}
	maxBar := int64(-1)
	for live := n; live > 0; {
		for i := 0; i < n; i++ {
			if readers[i] == nil {
				continue
			}
			ev, err := readers[i].Next()
			if err == io.EOF {
				readers[i] = nil
				live--
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("sim: batch materialize thread %d: %w", i, err)
			}
			if ev.Kind == trace.KindBarrierEntry && ev.Arg0 > maxBar {
				maxBar = ev.Arg0
			}
			pt.Threads[i] = append(pt.Threads[i], ev)
		}
	}
	pt.Barriers = int(maxBar + 1)
	return pt, nil
}

// Source provides translated per-thread event cursors to a streaming
// simulation — the interface translate.Stream satisfies. Thread(i) must
// yield thread i's translated events in order; cursors are consumed
// interleaved, single-threaded.
type Source interface {
	NumThreads() int
	Phases() []string
	Thread(i int) trace.Reader
}

// SimulateStream runs the simulation over streaming per-thread cursors
// instead of a materialized ParallelTrace, so peak memory is bounded by
// the source's buffering rather than the trace size. Results are
// byte-identical to Simulate on the equivalent materialized trace.
func SimulateStream(src Source, cfg Config) (*Result, error) {
	return SimulateStreamContext(context.Background(), src, cfg)
}

// SimulateStreamContext is SimulateStream with a cancellation point.
// When the source is a translate stream fed by a compiled (XTRP2)
// pattern cursor and cfg.Replay is ReplayPattern, the engine
// fast-forwards provably steady pattern iterations (see ffwd.go);
// results stay byte-identical to event-by-event replay.
func SimulateStreamContext(ctx context.Context, src Source, cfg Config) (*Result, error) {
	return simulate(ctx, cfg, src.NumThreads(), src.Phases(), 0, 0,
		func(t *thr, i int) { t.src = src.Thread(i) }, nil, src)
}

// simulate is the engine core shared by the slice and streaming entry
// points: bind attaches thread i's event cursor (either mode) to its
// state record. barriersHint/eventsHint pre-size internal tables and may
// be zero when unknown (streaming). A non-nil arena supplies recycled
// dense state; nil allocates fresh. A non-nil src (streaming mode only)
// lets the engine engage pattern fast-forward when the source exposes
// its compiled-trace cursor.
func simulate(ctx context.Context, cfg Config, n int, phases []string, barriersHint, eventsHint int, bind func(t *thr, i int), arena *Arena, src Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: not started: %w", err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: empty parallel trace")
	}
	nprocs := cfg.Procs
	if nprocs == 0 {
		nprocs = n
	}
	if nprocs > n {
		return nil, fmt.Errorf("sim: %d processors for %d threads; extrapolation maps m ≤ n", nprocs, n)
	}
	if n%nprocs != 0 {
		return nil, fmt.Errorf("sim: thread count %d not divisible by processor count %d", n, nprocs)
	}

	e := &engine{
		cfg:    cfg,
		n:      n,
		nprocs: nprocs,
	}
	if arena != nil {
		arena.acquire(e, n, nprocs, barriersHint)
		defer arena.release(e)
	} else {
		e.bars = make([]barSt, 0, barriersHint)
		e.fel.q = make([]event, 0, 4*n)
		e.procs = make([]prc, nprocs)
		e.threads = make([]thr, n)
	}
	var err error
	if e.inter, err = network.New(cfg.Comm, nprocs); err != nil {
		return nil, err
	}
	if cfg.ClusterSize > 1 {
		if e.intra, err = network.New(cfg.IntraComm, nprocs); err != nil {
			return nil, err
		}
	}
	if cfg.EmitTrace {
		e.out = trace.New(n)
		e.out.Phases = append([]string(nil), phases...)
		// Emitted events ≈ input events plus a send and a receive per
		// message; 2× avoids most regrowth without overcommitting. A
		// streaming source has no count to size from (hint 0).
		e.out.Events = make([]trace.Event, 0, 2*eventsHint)
	}

	perProc := n / nprocs
	for p := range e.procs {
		e.procs[p].id = p
		e.procs[p].current = -1
		e.procs[p].last = -1
	}
	for i := 0; i < n; i++ {
		p := placeThread(cfg.Placement, i, n, nprocs, perProc)
		t := &e.threads[i]
		t.id, t.proc, t.state = i, p, tsWaitCPU
		bind(t, i)
		if t.src != nil {
			// Prime the streaming cursor onto its first event. A source
			// error here (e.g. inline trace validation) aborts up front.
			ev, err := t.src.Next()
			switch {
			case err == io.EOF:
			case err != nil:
				return nil, err
			default:
				t.cur, t.curOK = ev, true
			}
		}
		if t.hasCur() {
			t.prevT = t.peek().Time
		}
		e.procs[p].threads = append(e.procs[p].threads, i)
	}
	for p := range e.procs {
		if cap(e.procs[p].runq) < len(e.procs[p].threads) {
			e.procs[p].runq = make([]int, 0, len(e.procs[p].threads))
		}
	}

	// Launch: every thread wants the CPU at time 0 for its first (empty)
	// segment leading to its first event.
	for i := range e.threads {
		t := &e.threads[i]
		if !t.hasCur() {
			t.state = tsDone
			e.done++
			continue
		}
		e.requestCPU(t, 0)
	}

	ff := newFFState(&cfg, src)

	const maxEvents = 1 << 28 // runaway-guard far above any real workload
	steps := 0
	for {
		if ff != nil {
			var ferr error
			if steps, ferr = ff.observe(ctx, e, steps); ferr != nil {
				return nil, ferr
			}
		}
		var ev event
		if e.contOK {
			ev = e.cont
			e.contOK = false
			if !e.fel.wouldPopNext(&ev) {
				e.fel.insert(ev)
				ev = e.fel.pop()
			}
		} else if !e.fel.empty() {
			ev = e.fel.pop()
		} else {
			break
		}
		if ev.at < e.now {
			return nil, fmt.Errorf("sim: time ran backwards: %v after %v", ev.at, e.now)
		}
		e.now = ev.at
		switch ev.kind {
		case evComputeDone:
			t := &e.threads[ev.thread]
			if ev.gen != t.gen || t.state != tsComputing {
				continue // superseded
			}
			e.handleEvent(t)
		case evPollTick:
			t := &e.threads[ev.thread]
			if ev.gen != t.gen || t.state != tsComputing {
				continue
			}
			e.pollTick(t)
		case evMsgArrive:
			e.msgArrive(ev.msg)
		case evResume:
			t := &e.threads[ev.thread]
			if ev.gen != t.gen {
				continue
			}
			e.resumeFromBarrier(t)
		}
		if e.fail != nil {
			return nil, fmt.Errorf("sim: trace source failed: %w", e.fail)
		}
		if steps++; steps > maxEvents {
			return nil, fmt.Errorf("sim: event budget exceeded (livelock?)")
		}
		if steps&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: aborted after %d events: %w", steps, err)
			}
		}
	}
	if e.done != n {
		return nil, fmt.Errorf("sim: %d of %d threads did not finish (deadlocked trace?)", n-e.done, n)
	}

	res := &Result{
		Threads:  make([]ThreadStats, n),
		Barriers: e.nbars,
		Procs:    nprocs,
	}
	for i := range e.threads {
		t := &e.threads[i]
		res.Threads[i] = t.stats
		if t.stats.Finish > res.TotalTime {
			res.TotalTime = t.stats.Finish
		}
	}
	res.Net = NetStats{
		Messages:      e.inter.Messages,
		Bytes:         e.inter.Bytes,
		TotalTransit:  e.inter.TotalTransit,
		ContentionAdd: e.inter.ContentionAdd,
		QueueingAdd:   e.inter.QueueingAdd,
		MaxInFlight:   e.inter.MaxInFlight,
	}
	if e.intra != nil {
		res.Net.Messages += e.intra.Messages
		res.Net.Bytes += e.intra.Bytes
		res.Net.TotalTransit += e.intra.TotalTransit
		res.Net.ContentionAdd += e.intra.ContentionAdd
		res.Net.QueueingAdd += e.intra.QueueingAdd
	}
	if e.out != nil {
		e.out.SortByTime()
		res.Trace = e.out
	}
	return res, nil
}

// placeThread maps thread i onto a processor according to the placement
// policy: contiguous blocks (neighboring threads share processors and
// clusters) or round-robin (neighbors land on different processors).
func placeThread(p Placement, i, n, nprocs, perProc int) int {
	if p == CyclicPlacement {
		return i % nprocs
	}
	return i / perProc
}

// netFor selects the communication substrate for a src→dst processor
// pair: the intra-cluster network when both ends share a cluster.
func (e *engine) netFor(srcProc, dstProc int) *network.Network {
	if e.intra != nil && srcProc/e.cfg.ClusterSize == dstProc/e.cfg.ClusterSize {
		return e.intra
	}
	return e.inter
}

// scale converts a translated-trace compute delta to target-processor time.
func (e *engine) scale(d vtime.Time) vtime.Time {
	if d <= 0 {
		return 0
	}
	return d.Scale(e.cfg.MipsRatio)
}

// emit appends an event to the extrapolated trace if enabled.
func (e *engine) emit(t vtime.Time, kind trace.Kind, thread int, a0, a1, a2 int64) {
	if e.out == nil {
		return
	}
	e.out.Append(trace.Event{Time: t, Kind: kind, Thread: int32(thread), Arg0: a0, Arg1: a1, Arg2: a2})
}

// --- CPU scheduling -------------------------------------------------------

// requestCPU makes thread t runnable at time at; it starts computing its
// next segment when its processor grants the CPU.
func (e *engine) requestCPU(t *thr, at vtime.Time) {
	p := &e.procs[t.proc]
	t.state = tsWaitCPU
	t.readyAt = at
	if p.current == -1 {
		e.grantCPU(p, t, at)
	} else {
		p.runq = append(p.runq, t.id)
	}
}

// grantCPU starts t's next compute segment on processor p at time ≥ at.
func (e *engine) grantCPU(p *prc, t *thr, at vtime.Time) {
	start := at
	if p.last != -1 && p.last != t.id {
		start += e.cfg.ContextSwitchTime
	}
	if start < t.readyAt {
		start = t.readyAt
	}
	t.stats.CPUWait += start - t.readyAt
	p.current = t.id
	p.last = t.id
	pure := e.scale(t.peek().Time - t.prevT)
	t.stats.Compute += pure
	t.pureLeft = pure
	e.runSegment(t, start)
}

// releaseCPU is called when the current thread of p blocks or finishes;
// the next runnable thread (if any) is granted the CPU.
func (e *engine) releaseCPU(p *prc, at vtime.Time) {
	p.current = -1
	if len(p.runq) > 0 {
		next := &e.threads[p.runq[0]]
		p.runq = p.runq[1:]
		e.grantCPU(p, next, at)
	}
}

// runSegment schedules the next continuous run of t's pending pure
// compute, splitting at poll boundaries under the Poll policy.
func (e *engine) runSegment(t *thr, at vtime.Time) {
	t.state = tsComputing
	t.gen++
	pol := &e.cfg.Policy
	kind := evComputeDone
	if pol.Kind == Poll && t.pureLeft > pol.PollInterval {
		t.pureLeft -= pol.PollInterval
		t.segEnd = at + pol.PollInterval
		kind = evPollTick
	} else {
		t.segEnd = at + t.pureLeft
		t.pureLeft = 0
	}
	// Park the segment-end event in the continuation register rather than
	// the heap. Its seq is reserved now, so if another runSegment (or any
	// schedule) intervenes before the event loop consumes it, flushing it
	// into the heap reproduces the eager-scheduling order exactly.
	ev := event{at: t.segEnd, seq: e.fel.nextSq, kind: kind, thread: int32(t.id), gen: t.gen, msg: noMsg}
	e.fel.nextSq++
	if e.contOK {
		e.fel.insert(e.cont)
	}
	e.cont, e.contOK = ev, true
}

// pollTick fires at a poll boundary: pay the poll overhead, service the
// queued requests, then continue the segment.
func (e *engine) pollTick(t *thr) {
	p := &e.procs[t.proc]
	cost := e.cfg.Policy.PollOverhead
	t.stats.Service += cost
	resume := e.now + cost
	if end := e.drainQueue(p, resume); end > resume {
		resume = end
	}
	e.runSegment(t, resume)
}

// drainQueue services every queued request on p, starting no earlier than
// from, and returns when the processor is free again.
func (e *engine) drainQueue(p *prc, from vtime.Time) vtime.Time {
	if p.svcBusyUntil < from {
		p.svcBusyUntil = from
	}
	for _, mi := range p.svcQueue {
		e.serviceMessage(p, e.msgs.at(mi), p.svcBusyUntil)
		e.msgs.release(mi)
	}
	p.svcQueue = p.svcQueue[:0]
	return p.svcBusyUntil
}

// --- trace event handling --------------------------------------------------

// handleEvent processes the trace event t has just computed up to (at
// e.now). It consumes the event and either schedules the next segment or
// transitions the thread into a waiting state.
func (e *engine) handleEvent(t *thr) {
	ev := t.peek()
	switch ev.Kind {
	case trace.KindThreadStart, trace.KindPhaseBegin, trace.KindPhaseEnd:
		if ev.Kind != trace.KindThreadStart {
			e.emit(e.now, ev.Kind, t.id, ev.Arg0, ev.Arg1, ev.Arg2)
		}
		e.consume(t, ev)
		e.continueThread(t, e.now)

	case trace.KindThreadEnd:
		e.consume(t, ev)
		t.state = tsDone
		t.stats.Finish = e.now
		e.done++
		e.emit(e.now, trace.KindThreadEnd, t.id, 0, 0, 0)
		p := &e.procs[t.proc]
		// Requests queued while this thread computed (NoInterrupt/Poll)
		// must still be serviced, or their requesters would hang.
		e.drainQueue(p, e.now)
		if p.current == t.id {
			e.releaseCPU(p, e.now)
		}

	case trace.KindRemoteRead:
		e.remoteRead(t, ev)

	case trace.KindRemoteWrite:
		e.remoteWrite(t, ev)

	case trace.KindBarrierEntry:
		id := ev.Arg0 // copy: consume invalidates ev in streaming mode
		e.consume(t, ev)
		e.barrierEnter(t, id)

	case trace.KindBarrierExit:
		// Exits are consumed by the release path; reaching one here means
		// the release consumed it already and scheduling continued past
		// it, which would be an engine bug.
		panic(fmt.Sprintf("sim: thread %d computed into barrier-exit event", t.id))

	default:
		// Unknown instrumentation events are carried through untimed.
		e.consume(t, ev)
		e.continueThread(t, e.now)
	}
}

// consume advances t past ev.
func (e *engine) consume(t *thr, ev *trace.Event) {
	t.prevT = ev.Time
	e.advance(t)
}

// continueThread moves t toward its next event starting at time at.
func (e *engine) continueThread(t *thr, at vtime.Time) {
	if !t.hasCur() {
		// Trace ended without a thread-end event; treat as done.
		t.state = tsDone
		t.stats.Finish = at
		e.done++
		p := &e.procs[t.proc]
		e.drainQueue(p, at)
		if p.current == t.id {
			e.releaseCPU(p, at)
		}
		return
	}
	p := &e.procs[t.proc]
	if p.current == t.id {
		// Still on CPU: run the next segment directly.
		pure := e.scale(t.peek().Time - t.prevT)
		t.stats.Compute += pure
		t.pureLeft = pure
		e.runSegment(t, at)
		return
	}
	e.requestCPU(t, at)
}

// block transitions the on-CPU thread t into a waiting state, drains the
// processor's request backlog (NoInterrupt/Poll requests queued during the
// segment), and hands the CPU to the next thread.
func (e *engine) block(t *thr, state tstate, cpuFreeAt vtime.Time) {
	t.state = state
	t.blockAt = e.now
	p := &e.procs[t.proc]
	e.drainQueue(p, cpuFreeAt)
	e.releaseCPU(p, cpuFreeAt)
}

// --- remote data access -----------------------------------------------------

// remoteRead simulates t hitting a remote element read: construct and
// inject a request to the owner, then wait for the reply.
func (e *engine) remoteRead(t *thr, ev *trace.Event) {
	owner := int(ev.Arg0)
	ownerProc := e.threads[owner].proc
	if ownerProc == t.proc {
		// Same-processor access in a multithreaded mapping: shared local
		// memory; charge one service time as the lookup cost.
		resume := e.now + e.cfg.Policy.ServiceTime
		t.stats.CommWait += resume - e.now
		t.stats.RemoteReads++
		e.emit(e.now, trace.KindRemoteRead, t.id, ev.Arg0, ev.Arg1, ev.Arg2)
		e.consume(t, ev)
		e.continueThread(t, resume)
		return
	}
	net := e.netFor(t.proc, ownerProc)
	sendOv := net.SendOverhead(net.Config().RequestBytes)
	injectAt := e.now + sendOv
	m := e.msgs.new(mReqRead, t.id, owner, ev.Arg1, 0)
	raw := net.Inject(injectAt, t.proc, ownerProc, net.Config().RequestBytes)
	e.fel.schedule(raw, evMsgArrive, 0, 0, m)
	e.emit(injectAt, trace.KindMsgSend, t.id, int64(owner), net.Config().RequestBytes, int64(mReqRead))
	t.stats.RemoteReads++
	e.block(t, tsWaitReply, injectAt)
}

// remoteWrite simulates the fire-and-forget remote write extension: the
// writer pays the send overhead and continues; the owner services the
// write when it arrives.
func (e *engine) remoteWrite(t *thr, ev *trace.Event) {
	owner := int(ev.Arg0)
	ownerProc := e.threads[owner].proc
	t.stats.RemoteWrites++
	if ownerProc == t.proc {
		resume := e.now + e.cfg.Policy.ServiceTime
		t.stats.CommWait += resume - e.now
		e.consume(t, ev)
		e.continueThread(t, resume)
		return
	}
	net := e.netFor(t.proc, ownerProc)
	sendOv := net.SendOverhead(ev.Arg1)
	injectAt := e.now + sendOv
	m := e.msgs.new(mReqWrite, t.id, owner, ev.Arg1, 0)
	raw := net.Inject(injectAt, t.proc, ownerProc, ev.Arg1)
	e.fel.schedule(raw, evMsgArrive, 0, 0, m)
	e.emit(injectAt, trace.KindMsgSend, t.id, int64(owner), ev.Arg1, int64(mReqWrite))
	t.stats.CommWait += sendOv
	e.consume(t, ev)
	e.continueThread(t, injectAt)
}

// --- message arrival and servicing -----------------------------------------

// msgArrive handles a message reaching its destination processor. The
// first firing applies NI receive-queue serialization; the (possibly
// rescheduled) delivered firing dispatches on message kind.
func (e *engine) msgArrive(mi int32) {
	m := e.msgs.at(mi)
	dstProc := e.threads[m.dst].proc
	if !m.delivered {
		m.delivered = true
		srcProc := e.threads[m.src].proc
		avail := e.netFor(srcProc, dstProc).Deliver(e.now, dstProc)
		if avail > e.now {
			e.fel.schedule(avail, evMsgArrive, 0, 0, mi)
			return
		}
	}
	switch m.kind {
	case mReply:
		e.replyArrive(m)
		e.msgs.release(mi)
	case mBarRelease:
		e.emit(e.now, trace.KindMsgRecv, m.dst, int64(m.src), m.bytes, int64(m.kind))
		e.barrierReleaseArrive(m)
		e.msgs.release(mi)
	default:
		// CPU-handled messages: remote requests and barrier arrivals.
		// requestArrive owns the release — it may park mi on a service
		// queue instead of finishing it here.
		e.emit(e.now, trace.KindMsgRecv, m.dst, int64(m.src), m.bytes, int64(m.kind))
		e.requestArrive(mi, m)
	}
}

// requestArrive routes a CPU-handled message through the service policy of
// the destination processor.
func (e *engine) requestArrive(mi int32, m *message) {
	p := &e.procs[e.threads[m.dst].proc]
	cur := p.current
	if cur == -1 || e.threads[cur].state != tsComputing {
		// Processor idle or its thread blocked: service immediately,
		// serialized behind any ongoing service.
		at := vtime.Max(e.now, p.svcBusyUntil)
		e.serviceMessage(p, m, at)
		e.msgs.release(mi)
		return
	}
	t := &e.threads[cur]
	switch e.cfg.Policy.Kind {
	case Interrupt:
		start := vtime.Max(e.now, p.svcBusyUntil)
		cost := e.cfg.Policy.InterruptOverhead + e.serviceCost(p, m)
		e.dispatchService(p, m, start+e.cfg.Policy.InterruptOverhead)
		p.svcBusyUntil = start + cost
		t.segEnd += cost
		e.threads[m.dst].stats.Service += e.cfg.Policy.InterruptOverhead
		t.gen++
		if t.pureLeft > 0 {
			e.fel.schedule(t.segEnd, evPollTick, int32(t.id), t.gen, noMsg)
		} else {
			e.fel.schedule(t.segEnd, evComputeDone, int32(t.id), t.gen, noMsg)
		}
		e.msgs.release(mi)
	default: // NoInterrupt and Poll queue until a service opportunity.
		p.svcQueue = append(p.svcQueue, mi)
	}
}

// serviceCost returns the processor-occupancy cost of servicing m.
func (e *engine) serviceCost(p *prc, m *message) vtime.Time {
	switch m.kind {
	case mReqRead:
		replyNet := e.netFor(p.id, e.threads[m.src].proc)
		return e.cfg.Policy.ServiceTime + replyNet.SendOverhead(m.bytes)
	case mReqWrite:
		return e.cfg.Policy.ServiceTime
	case mBarArrive:
		return e.cfg.Barrier.CheckTime
	}
	panic(fmt.Sprintf("sim: serviceCost of message kind %d", m.kind))
}

// serviceMessage performs m's handling starting at time at (≥ now),
// updating the processor's service serialization point and dispatching
// the message's effect.
func (e *engine) serviceMessage(p *prc, m *message, at vtime.Time) {
	if at < p.svcBusyUntil {
		at = p.svcBusyUntil
	}
	p.svcBusyUntil = at + e.serviceCost(p, m)
	e.dispatchService(p, m, at)
}

// dispatchService applies the effect of servicing m at time at: sending
// the read reply, applying the write, or advancing the barrier protocol.
// Service time is attributed to the destination thread.
func (e *engine) dispatchService(p *prc, m *message, at vtime.Time) {
	e.threads[m.dst].stats.Service += e.serviceCost(p, m)
	switch m.kind {
	case mReqRead:
		reqProc := e.threads[m.src].proc
		net := e.netFor(p.id, reqProc)
		injectAt := at + e.cfg.Policy.ServiceTime + net.SendOverhead(m.bytes)
		reply := e.msgs.new(mReply, m.dst, m.src, m.bytes, 0)
		raw := net.Inject(injectAt, p.id, reqProc, m.bytes)
		e.fel.schedule(raw, evMsgArrive, 0, 0, reply)
		e.emit(injectAt, trace.KindMsgSend, m.dst, int64(m.src), m.bytes, int64(mReply))
	case mReqWrite:
		// Effect is instantaneous once serviced; nothing further moves.
	case mBarArrive:
		e.barrierArriveServiced(m, at+e.cfg.Barrier.CheckTime)
	}
}

// replyArrive completes a remote read: the requester consumes the reply
// and resumes computing.
func (e *engine) replyArrive(m *message) {
	t := &e.threads[m.dst]
	if t.state != tsWaitReply {
		panic(fmt.Sprintf("sim: reply for thread %d in state %d", t.id, t.state))
	}
	p := &e.procs[t.proc]
	net := e.netFor(e.threads[m.src].proc, t.proc)
	resume := e.now + net.Config().RecvOverhead
	// If the blocked thread's processor is mid-service, the thread
	// resumes only when the handler completes.
	if p.svcBusyUntil > resume {
		resume = p.svcBusyUntil
	}
	e.emit(e.now, trace.KindMsgRecv, t.id, int64(m.src), m.bytes, int64(mReply))
	ev := t.peek()
	e.emit(resume, trace.KindRemoteRead, t.id, ev.Arg0, ev.Arg1, ev.Arg2)
	t.stats.CommWait += resume - t.blockAt
	e.consume(t, ev)
	e.continueThread(t, resume)
}
