package sim

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// Steady-state fast-forward: when a compiled trace is replaying a
// pattern body over and over and the whole pipeline's state at one
// iteration boundary is a pure per-timescale time-shift of its state a
// fixed number of iterations earlier, the engine's dynamics are
// invariant under that shift — every comparison it makes is within one
// timescale, and cross-scale interactions go through differences only.
// Two matching snapshots therefore prove the next chunk of iterations
// will replay the same trajectory shifted again, and induction extends
// that to all remaining whole chunks: the kernel applies j× the learned
// deltas in O(state) instead of O(j · events) and resumes event-by-event
// replay for the tail. Any snapshot disagreement — structural change,
// non-uniform stride — means the loop is not (yet) steady and replay
// simply continues event by event, so predictions are byte-identical to
// ReplayEvent by construction.
//
// The fingerprint/shift traversals here mirror each other slot for
// slot, as do their counterparts in internal/translate and the decoder
// cursor in internal/trace. Every engine field is accounted for: either
// fingerprinted, provably dead (stale values guarded by state tags,
// pushed as zero sentinels and left unshifted), or deliberately
// excluded with a normalization argument (seq/gen are compared only
// against each other, so pending entries are fingerprinted relative to
// their moving counters and neither counter is shifted on skip —
// relative order and equality are preserved, and absolute values are
// never output).

// ffBarWindow matches translate's: barrier records below the last two
// ids are provably never read again (exiting barrier b requires all
// threads entered b, so entering b+1 pins every thread at id ≥ b), so
// only a short tail window is fingerprinted and relocated on skip.
const ffBarWindow = 4

const (
	// ffMinRepLeft is the minimum iterations still owed before
	// fast-forward is worth attempting: below it, two snapshots plus a
	// replayed tail leave almost nothing to skip.
	ffMinRepLeft = 4
	// ffMaxPeriod is the largest steady-state period (in pattern
	// iterations) probed from one base snapshot. Engine state is often
	// periodic with a small multiple of the trace period — rotating
	// communication partners permute heap layouts and slab labels with
	// the rotation's order — so the base is held and the comparison
	// spacing grows 1, 2, …, ffMaxPeriod before the base is rolled
	// forward (a mismatch at spacing m also escapes start-up transients
	// once the base moves).
	ffMaxPeriod = 8
	// ffMaxFails abandons an op instance after this many total
	// fingerprint mismatches — roughly two full period sweeps — when the
	// loop body is genuinely state-mutating, not steady, and
	// re-fingerprinting every boundary would be pure overhead.
	ffMaxFails = 18
	// ffSnapSpacing spaces snapshots at least this many body rows apart
	// so tiny bodies don't fingerprint every handful of events.
	ffSnapSpacing = 64
	// ffMaxSkipSteps caps the extrapolated step count of one skip just
	// above the engine's event budget: any skip reaching it means
	// event-by-event replay would have exhausted the budget anyway, and
	// the clamp keeps the arithmetic far from overflow.
	ffMaxSkipSteps = 1 << 30
)

// Fast-forward telemetry, process-wide (mirrors the codec's compression
// counters; surfaced on /debug/vars by the serving layer).
var (
	ffAttempts     atomic.Uint64
	ffFastForwards atomic.Uint64
	ffItersSkipped atomic.Uint64
	ffFallbacks    atomic.Uint64
)

// ReplayCounters is a snapshot of the fast-forward telemetry.
type ReplayCounters struct {
	// Attempts counts fingerprint comparisons.
	Attempts uint64
	// FastForwards counts successful O(1) skips.
	FastForwards uint64
	// IterationsSkipped totals the pattern iterations advanced by skips.
	IterationsSkipped uint64
	// Fallbacks counts fingerprint mismatches that forced event-by-event
	// replay to continue.
	Fallbacks uint64
}

// ReadReplayCounters returns the process-wide fast-forward telemetry.
func ReadReplayCounters() ReplayCounters {
	return ReplayCounters{
		Attempts:          ffAttempts.Load(),
		FastForwards:      ffFastForwards.Load(),
		IterationsSkipped: ffItersSkipped.Load(),
		Fallbacks:         ffFallbacks.Load(),
	}
}

// ffState orchestrates fast-forward for one streaming simulation.
type ffState struct {
	src *translate.Stream
	cur *trace.PatternSource

	fpA, fpB trace.ReplayFingerprint
	deltas   trace.ReplayDeltas

	lastIters uint64 // iteration count at the last observation
	haveSnap  bool
	snapIters uint64 // iteration count at fpA
	snapSteps int    // engine steps at fpA
	snapOp    int    // repeat-op instance fpA belongs to
	fails     int
	abandoned bool
}

// newFFState engages fast-forward when the source pipeline exposes its
// compiled pattern cursor; it returns nil otherwise.
func newFFState(cfg *Config, src Source) *ffState {
	if src == nil || cfg.Replay != ReplayPattern || cfg.EmitTrace {
		return nil
	}
	ts, ok := src.(*translate.Stream)
	if !ok {
		return nil
	}
	cur := ts.PatternSource()
	if cur == nil {
		return nil
	}
	return &ffState{src: ts, cur: cur, snapOp: -1}
}

// observe runs at the top of the engine event loop. When the decoder
// has crossed one or more pattern-iteration boundaries since the last
// call, it snapshots the pipeline and — once two snapshots match as a
// pure time-shift — skips all but the tail of the remaining iterations,
// returning the extrapolated step count so the budget check and the
// cancellation poll cadence stay byte-aligned with event replay. The
// context is additionally polled right after every skip, keeping
// worst-case cancellation latency at the regular poll bound even when
// skips dwarf the event count between polls.
func (ff *ffState) observe(ctx context.Context, e *engine, steps int) (int, error) {
	it := ff.cur.IterationsCompleted()
	if it == ff.lastIters {
		return steps, nil
	}
	ff.lastIters = it
	opIdx, bodyLen, repLeft, ok := ff.cur.RepeatState()
	if !ok {
		ff.haveSnap = false
		return steps, nil
	}
	if opIdx != ff.snapOp {
		ff.snapOp = opIdx
		ff.haveSnap = false
		ff.fails = 0
		ff.abandoned = false
	}
	if ff.abandoned || repLeft < ffMinRepLeft {
		return steps, nil
	}
	stride := uint64(1)
	if bodyLen < ffSnapSpacing {
		stride = uint64((ffSnapSpacing + bodyLen - 1) / bodyLen)
	}
	if !ff.haveSnap {
		ff.fpA.Reset()
		if ff.appendAll(e, &ff.fpA) {
			ff.haveSnap = true
			ff.snapIters = it
			ff.snapSteps = steps
		}
		return steps, nil
	}
	m := it - ff.snapIters
	if m < stride {
		return steps, nil
	}
	ff.fpB.Reset()
	if !ff.appendAll(e, &ff.fpB) {
		ff.haveSnap = false
		return steps, nil
	}
	ffAttempts.Add(1)
	if !trace.DiffFingerprints(&ff.fpA, &ff.fpB, &ff.deltas) {
		ffFallbacks.Add(1)
		if ff.fails++; ff.fails >= ffMaxFails {
			ff.abandoned = true
			ff.haveSnap = false
			return steps, nil
		}
		if m >= ffMaxPeriod {
			ff.rollSnapshot(it, steps)
		}
		return steps, nil
	}
	ff.fails = 0

	// How many whole m-iteration chunks can be skipped: at least one
	// iteration of the repeat must remain (SkipIterations' contract, and
	// the tail is replayed event by event through the op exit), every
	// fingerprinted time slot must stay far from overflow, and the
	// extrapolated step count must stay within clamping range.
	dSteps := steps - ff.snapSteps
	if dSteps < 1 {
		dSteps = 1
	}
	j := (repLeft - 1) / m
	if max := trace.MaxShiftChunks(&ff.fpB, &ff.deltas); j > max {
		j = max
	}
	if max := uint64(ffMaxSkipSteps / dSteps); j > max {
		j = max
	}
	if j < 1 {
		ff.rollSnapshot(it, steps)
		return steps, nil
	}
	k := j * m
	if err := ff.cur.SkipIterations(k); err != nil {
		// Unreachable given the bounds above; degrade to event replay.
		ffFallbacks.Add(1)
		ff.abandoned = true
		ff.haveSnap = false
		return steps, nil
	}
	ff.deltas.ResetAccum()
	ff.src.ApplyReplayShift(int64(j), &ff.deltas)
	e.applyReplayShift(int64(j), &ff.deltas)
	steps += int(j) * dSteps
	ffFastForwards.Add(1)
	ffItersSkipped.Add(k)
	ff.haveSnap = false
	ff.lastIters = ff.cur.IterationsCompleted()
	if err := ctx.Err(); err != nil {
		return steps, fmt.Errorf("sim: aborted after %d events: %w", steps, err)
	}
	return steps, nil
}

// rollSnapshot makes the just-taken fpB the new base snapshot.
func (ff *ffState) rollSnapshot(it uint64, steps int) {
	ff.fpA, ff.fpB = ff.fpB, ff.fpA
	ff.snapIters = it
	ff.snapSteps = steps
}

// appendAll fingerprints the whole pipeline, decoder → translate →
// engine, in the fixed traversal order the shift application mirrors.
func (ff *ffState) appendAll(e *engine, fp *trace.ReplayFingerprint) bool {
	ff.cur.AppendFingerprint(fp)
	if !ff.src.AppendReplayFingerprint(fp) {
		return false
	}
	return e.appendReplayFingerprint(fp)
}

// --- engine fingerprint -----------------------------------------------------

// appendReplayFingerprint appends the engine's live state to fp,
// reporting false when the engine is in a state fast-forward must not
// touch (sticky source error, or trace emission enabled).
//
// Two normalizations make the fingerprint insensitive to semantically
// inert state. First, the future event list is fingerprinted in
// canonical (at, seq) order, not physical heap-array order: pops
// compare only (at, seq), so the array layout — which depends on the
// whole operation history and can permute forever under rotating
// communication patterns — never influences behavior. Second, message
// slab indices are opaque handles (used only for slab addressing and
// noMsg checks, never compared or output), so they are renamed to
// canonical first-encounter order along that same walk, and the slab
// free list — which only decides what name the next allocation gets —
// is fingerprinted by length alone. Steady states that differ only by
// heap layout or slab naming are behaviorally identical, and the shift
// application is order- and name-independent, so skipping from such a
// state is exact.
func (e *engine) appendReplayFingerprint(fp *trace.ReplayFingerprint) bool {
	if e.fail != nil || e.out != nil {
		return false
	}
	now := e.now

	// Canonical FEL order and msg-handle renaming, computed up front so
	// every section (service queues included) uses the same naming.
	order := make([]int32, len(e.fel.q))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &e.fel.q[order[i]], &e.fel.q[order[j]]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
	rename := make(map[int32]int64)
	var encounter []int32
	visit := func(mi int32) {
		if mi == noMsg {
			return
		}
		if _, ok := rename[mi]; !ok {
			rename[mi] = int64(len(encounter))
			encounter = append(encounter, mi)
		}
	}
	for _, qi := range order {
		visit(e.fel.q[qi].msg)
	}
	if e.fel.topOK {
		visit(e.fel.top.msg)
	}
	if e.contOK {
		visit(e.cont.msg)
	}
	for i := range e.procs {
		for _, mi := range e.procs[i].svcQueue {
			visit(mi)
		}
	}
	rid := func(mi int32) int64 {
		if mi == noMsg {
			return -1
		}
		return rename[mi]
	}
	fp.Push(trace.FPSim, int64(now))
	fp.Push(trace.FPExact, int64(e.done))
	fp.Push(trace.FPAccum, int64(e.nbars))
	for i := range e.threads {
		t := &e.threads[i]
		fp.Push(trace.FPExact, int64(t.state))
		fp.PushBool(t.curOK)
		if t.curOK {
			fp.Push(trace.FPTrans, int64(t.cur.Time))
			fp.Push(trace.FPExact, int64(t.cur.Kind))
			fp.Push(trace.FPExact, int64(t.cur.Thread))
			if t.cur.Kind == trace.KindBarrierEntry || t.cur.Kind == trace.KindBarrierExit {
				fp.Push(trace.FPBarID, t.cur.Arg0)
			} else {
				fp.Push(trace.FPExact, t.cur.Arg0)
			}
			fp.Push(trace.FPExact, t.cur.Arg1)
			fp.Push(trace.FPExact, t.cur.Arg2)
		} else {
			for s := 0; s < 6; s++ {
				fp.Push(trace.FPExact, 0)
			}
		}
		fp.Push(trace.FPTrans, int64(t.prevT))
		// Stale-by-state fields are pushed as zero sentinels and never
		// shifted: their values are only read while the tagging state
		// holds, so dead content is behaviorally irrelevant — but the
		// state tag itself is exact, so liveness can't flip unnoticed.
		if t.state == tsComputing {
			fp.Push(trace.FPSim, int64(t.segEnd))
		} else {
			fp.Push(trace.FPExact, 0)
		}
		fp.Push(trace.FPExact, int64(t.pureLeft)) // duration: shift-invariant
		if t.state == tsWaitReply || t.state == tsWaitBarrier {
			fp.Push(trace.FPSim, int64(t.blockAt))
		} else {
			fp.Push(trace.FPExact, 0)
		}
		if t.state == tsWaitCPU {
			fp.Push(trace.FPSim, int64(t.readyAt))
		} else {
			fp.Push(trace.FPExact, 0)
		}
		st := &t.stats
		fp.Push(trace.FPAccum, int64(st.Compute))
		fp.Push(trace.FPAccum, int64(st.CommWait))
		fp.Push(trace.FPAccum, int64(st.BarrierWait))
		fp.Push(trace.FPAccum, int64(st.Service))
		fp.Push(trace.FPAccum, int64(st.CPUWait))
		fp.Push(trace.FPAccum, st.RemoteReads)
		fp.Push(trace.FPAccum, st.RemoteWrites)
		fp.Push(trace.FPAccum, st.Barriers)
		fp.Push(trace.FPAccum, int64(st.Finish))
	}
	for i := range e.procs {
		p := &e.procs[i]
		fp.Push(trace.FPExact, int64(p.current))
		fp.Push(trace.FPExact, int64(p.last))
		fp.Push(trace.FPExact, int64(len(p.runq)))
		for _, id := range p.runq {
			fp.Push(trace.FPExact, int64(id))
		}
		fp.Push(trace.FPExact, int64(len(p.svcQueue)))
		for _, mi := range p.svcQueue {
			fp.Push(trace.FPExact, rid(mi))
		}
		if p.svcBusyUntil > now {
			fp.Push(trace.FPSim, int64(p.svcBusyUntil))
		} else {
			fp.Push(trace.FPExact, 0)
		}
	}
	fp.Push(trace.FPExact, int64(len(e.fel.q)))
	for _, qi := range order {
		e.pushFelEvent(fp, &e.fel.q[qi], rid)
	}
	fp.PushBool(e.fel.topOK)
	if e.fel.topOK {
		e.pushFelEvent(fp, &e.fel.top, rid)
	} else {
		for s := 0; s < 6; s++ {
			fp.Push(trace.FPExact, 0)
		}
	}
	fp.PushBool(e.contOK)
	if e.contOK {
		e.pushFelEvent(fp, &e.cont, rid)
	} else {
		for s := 0; s < 6; s++ {
			fp.Push(trace.FPExact, 0)
		}
	}
	nb := len(e.bars)
	fp.Push(trace.FPBarID, int64(nb))
	lo := nb - ffBarWindow
	if lo < 0 {
		lo = 0
	}
	for id := lo; id < nb; id++ {
		pushBarSt(fp, &e.bars[id])
	}
	fp.Push(trace.FPExact, int64(e.msgs.used))
	fp.Push(trace.FPExact, int64(len(e.msgs.free)))
	for _, mi := range encounter {
		m := e.msgs.at(mi)
		fp.Push(trace.FPExact, int64(m.kind))
		fp.Push(trace.FPExact, int64(m.src))
		fp.Push(trace.FPExact, int64(m.dst))
		fp.Push(trace.FPExact, m.bytes)
		if m.kind == mBarArrive || m.kind == mBarRelease {
			fp.Push(trace.FPBarID, m.barrier)
		} else {
			fp.Push(trace.FPExact, m.barrier)
		}
		fp.PushBool(m.delivered)
	}
	pushNet(fp, e.inter, now)
	fp.PushBool(e.intra != nil)
	if e.intra != nil {
		pushNet(fp, e.intra, now)
	}
	return true
}

// pushFelEvent appends one scheduled event. seq and gen are compared
// only against their own counters, so they are fingerprinted relative
// to them (and the counters themselves are neither fingerprinted nor
// shifted): a skip leaves relative order and gen-validity untouched,
// which is all the engine ever reads. The msg handle is pushed under
// its canonical rename (see appendReplayFingerprint).
func (e *engine) pushFelEvent(fp *trace.ReplayFingerprint, ev *event, rid func(int32) int64) {
	fp.Push(trace.FPSim, int64(ev.at))
	fp.Push(trace.FPExact, int64(ev.seq)-int64(e.fel.nextSq))
	if ev.kind == evMsgArrive {
		fp.Push(trace.FPExact, 0) // message events carry no generation
	} else {
		fp.Push(trace.FPExact, int64(ev.gen)-int64(e.threads[ev.thread].gen))
	}
	fp.Push(trace.FPExact, int64(ev.thread))
	fp.Push(trace.FPExact, rid(ev.msg))
	fp.Push(trace.FPExact, int64(ev.kind))
}

// pushBarSt appends one barrier record of the tail window. Time fields
// are on the FPBarS stride: in a steady barrier loop the window slides
// (slot w names barrier id+Δ next time, values advance with the clock),
// in a barrier-free loop it freezes (stride 0) — both are uniform.
func pushBarSt(fp *trace.ReplayFingerprint, b *barSt) {
	fp.PushBool(b.used)
	if b.used {
		fp.Push(trace.FPBarID, b.id)
	} else {
		fp.Push(trace.FPExact, 0)
	}
	fp.Push(trace.FPExact, int64(b.entries))
	pushBarTime(fp, b.maxArrive)
	fp.PushBool(b.masterEntered)
	pushBarTime(fp, b.masterFreeAt)
	fp.Push(trace.FPExact, int64(b.arrivedMsgs))
	pushBarTime(fp, b.lastArrProc)
	fp.PushBool(b.released)
	fp.PushBool(b.childGot != nil)
	for i := range b.childGot {
		fp.Push(trace.FPExact, int64(b.childGot[i]))
		fp.PushBool(b.nodeEntered[i])
		pushBarTime(fp, b.nodeFreeAt[i])
		fp.PushBool(b.releaseSent[i])
	}
}

func pushBarTime(fp *trace.ReplayFingerprint, v vtime.Time) {
	if v == 0 {
		fp.Push(trace.FPExact, 0)
	} else {
		fp.Push(trace.FPBarS, int64(v))
	}
}

// pushNet appends one network's state: the in-flight population and any
// still-busy NI queue fronts are live; drained queue fronts (≤ now) are
// dead sentinels; the traffic totals are write-only accumulators.
func pushNet(fp *trace.ReplayFingerprint, n *network.Network, now vtime.Time) {
	fp.Push(trace.FPExact, int64(n.InFlight()))
	for _, t := range n.RecvFree() {
		if t > now {
			fp.Push(trace.FPSim, int64(t))
		} else {
			fp.Push(trace.FPExact, 0)
		}
	}
	fp.Push(trace.FPAccum, n.Messages)
	fp.Push(trace.FPAccum, n.Bytes)
	fp.Push(trace.FPAccum, int64(n.TotalTransit))
	fp.Push(trace.FPAccum, int64(n.ContentionAdd))
	fp.Push(trace.FPAccum, int64(n.QueueingAdd))
	fp.Push(trace.FPExact, int64(n.MaxInFlight))
}

// walkLiveMsgs visits every live message slot exactly once per holder:
// future-event-list array order, then the cached top, the continuation
// register, and the per-processor service queues. Dead slots (on the
// free list) are never visited. Only the shift application uses it,
// and per-message shifts are order-independent; the fingerprint walks
// messages in canonical encounter order instead.
func (e *engine) walkLiveMsgs(f func(m *message)) {
	for i := range e.fel.q {
		if mi := e.fel.q[i].msg; mi != noMsg {
			f(e.msgs.at(mi))
		}
	}
	if e.fel.topOK && e.fel.top.msg != noMsg {
		f(e.msgs.at(e.fel.top.msg))
	}
	if e.contOK && e.cont.msg != noMsg {
		f(e.msgs.at(e.cont.msg))
	}
	for i := range e.procs {
		for _, mi := range e.procs[i].svcQueue {
			f(e.msgs.at(mi))
		}
	}
}

// --- engine shift -----------------------------------------------------------

// applyReplayShift advances the engine by j chunks of the learned
// deltas, mirroring appendReplayFingerprint slot for slot (accumulator
// strides are consumed in push order).
func (e *engine) applyReplayShift(j int64, d *trace.ReplayDeltas) {
	now := e.now // pre-shift anchor for the liveness conditionals
	dSim := vtime.Time(j * d.Sim)
	dTrans := vtime.Time(j * d.Trans)
	e.now += dSim
	e.nbars += int(j * d.NextAccum())
	for i := range e.threads {
		t := &e.threads[i]
		if t.curOK {
			t.cur.Time += dTrans
			if t.cur.Kind == trace.KindBarrierEntry || t.cur.Kind == trace.KindBarrierExit {
				t.cur.Arg0 += j * d.Bar
			}
		}
		t.prevT += dTrans
		if t.state == tsComputing {
			t.segEnd += dSim
		}
		if t.state == tsWaitReply || t.state == tsWaitBarrier {
			t.blockAt += dSim
		}
		if t.state == tsWaitCPU {
			t.readyAt += dSim
		}
		st := &t.stats
		st.Compute += vtime.Time(j * d.NextAccum())
		st.CommWait += vtime.Time(j * d.NextAccum())
		st.BarrierWait += vtime.Time(j * d.NextAccum())
		st.Service += vtime.Time(j * d.NextAccum())
		st.CPUWait += vtime.Time(j * d.NextAccum())
		st.RemoteReads += j * d.NextAccum()
		st.RemoteWrites += j * d.NextAccum()
		st.Barriers += j * d.NextAccum()
		st.Finish += vtime.Time(j * d.NextAccum())
	}
	for i := range e.procs {
		p := &e.procs[i]
		if p.svcBusyUntil > now {
			p.svcBusyUntil += dSim
		}
	}
	for i := range e.fel.q {
		e.fel.q[i].at += dSim
	}
	if e.fel.topOK {
		e.fel.top.at += dSim
	}
	if e.contOK {
		e.cont.at += dSim
	}
	e.shiftBars(j, d)
	e.walkLiveMsgs(func(m *message) {
		if m.kind == mBarArrive || m.kind == mBarRelease {
			m.barrier += j * d.Bar
		}
	})
	shiftNet(e.inter, j, d, now)
	if e.intra != nil {
		shiftNet(e.intra, j, d, now)
	}
}

// shiftBars slides the barrier tail window: the dense-by-id slice grows
// by j×Δbar zeroed records and the tracked records relocate to their
// new ids (carrying their tree tables with them). Records falling below
// the window are zeroed — provably never read again (see ffBarWindow),
// so event replay's frozen values and these zeros are interchangeable.
func (e *engine) shiftBars(j int64, d *trace.ReplayDeltas) {
	grow := j * d.Bar
	nb := len(e.bars)
	w := ffBarWindow
	if nb < w {
		w = nb
	}
	if grow > 0 {
		var win [ffBarWindow]barSt
		copy(win[:w], e.bars[nb-w:])
		for id := nb - w; id < nb; id++ {
			e.bars[id] = barSt{}
		}
		for k := int64(0); k < grow; k++ {
			e.bars = append(e.bars, barSt{})
		}
		base := len(e.bars) - w
		for k := 0; k < w; k++ {
			shiftBarSt(&win[k], j, d)
			e.bars[base+k] = win[k]
		}
	} else {
		for id := nb - w; id < nb; id++ {
			shiftBarSt(&e.bars[id], j, d)
		}
	}
}

func shiftBarSt(b *barSt, j int64, d *trace.ReplayDeltas) {
	dBarS := vtime.Time(j * d.BarS)
	if b.used {
		b.id += j * d.Bar
	}
	if b.maxArrive != 0 {
		b.maxArrive += dBarS
	}
	if b.masterFreeAt != 0 {
		b.masterFreeAt += dBarS
	}
	if b.lastArrProc != 0 {
		b.lastArrProc += dBarS
	}
	for i := range b.nodeFreeAt {
		if b.nodeFreeAt[i] != 0 {
			b.nodeFreeAt[i] += dBarS
		}
	}
}

func shiftNet(n *network.Network, j int64, d *trace.ReplayDeltas, now vtime.Time) {
	dSim := vtime.Time(j * d.Sim)
	rf := n.RecvFree()
	for i := range rf {
		if rf[i] > now {
			rf[i] += dSim
		}
	}
	n.Messages += j * d.NextAccum()
	n.Bytes += j * d.NextAccum()
	n.TotalTransit += vtime.Time(j * d.NextAccum())
	n.ContentionAdd += vtime.Time(j * d.NextAccum())
	n.QueueingAdd += vtime.Time(j * d.NextAccum())
}
