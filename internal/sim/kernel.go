package sim

import (
	"extrap/internal/vtime"
)

// evKind discriminates future-event-list entries.
type evKind uint8

const (
	// evComputeDone fires when a thread's current compute segment ends.
	evComputeDone evKind = iota
	// evMsgArrive fires when a message becomes available to software at
	// its destination processor.
	evMsgArrive
	// evPollTick fires at a poll-policy chunk boundary.
	evPollTick
	// evResume fires when a blocked thread should continue (reply
	// consumed, barrier release granted, service backlog drained).
	evResume
)

// event is one scheduled simulation occurrence. seq breaks time ties
// deterministically in schedule order; gen invalidates superseded
// compute-done/poll events (e.g. after an interrupt extends a segment).
type event struct {
	at     vtime.Time
	seq    uint64
	kind   evKind
	thread int
	gen    uint64
	msg    *message
}

// fel is the future event list: a deterministic min-heap of events by
// value, ordered by (time, seq). Storing events inline rather than behind
// pointers keeps the simulation hot loop free of per-event heap
// allocations — the backing array is reused as events come and go.
type fel struct {
	q      []event
	nextSq uint64
}

// less orders the heap by (time, schedule sequence).
func (f *fel) less(i, j int) bool {
	if f.q[i].at != f.q[j].at {
		return f.q[i].at < f.q[j].at
	}
	return f.q[i].seq < f.q[j].seq
}

// up restores the heap invariant after appending at index i.
func (f *fel) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.q[i], f.q[parent] = f.q[parent], f.q[i]
		i = parent
	}
}

// down restores the heap invariant after replacing the root.
func (f *fel) down(i int) {
	n := len(f.q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && f.less(r, l) {
			least = r
		}
		if !f.less(least, i) {
			return
		}
		f.q[i], f.q[least] = f.q[least], f.q[i]
		i = least
	}
}

func (f *fel) schedule(at vtime.Time, kind evKind, thread int, gen uint64, msg *message) {
	f.q = append(f.q, event{at: at, seq: f.nextSq, kind: kind, thread: thread, gen: gen, msg: msg})
	f.nextSq++
	f.up(len(f.q) - 1)
}

func (f *fel) pop() event {
	root := f.q[0]
	n := len(f.q) - 1
	f.q[0] = f.q[n]
	f.q[n] = event{} // clear the vacated slot's msg pointer for the GC
	f.q = f.q[:n]
	if n > 0 {
		f.down(0)
	}
	return root
}

func (f *fel) empty() bool { return len(f.q) == 0 }
