package sim

import (
	"container/heap"

	"extrap/internal/vtime"
)

// evKind discriminates future-event-list entries.
type evKind uint8

const (
	// evComputeDone fires when a thread's current compute segment ends.
	evComputeDone evKind = iota
	// evMsgArrive fires when a message becomes available to software at
	// its destination processor.
	evMsgArrive
	// evPollTick fires at a poll-policy chunk boundary.
	evPollTick
	// evResume fires when a blocked thread should continue (reply
	// consumed, barrier release granted, service backlog drained).
	evResume
)

// event is one scheduled simulation occurrence. seq breaks time ties
// deterministically in schedule order; gen invalidates superseded
// compute-done/poll events (e.g. after an interrupt extends a segment).
type event struct {
	at     vtime.Time
	seq    uint64
	kind   evKind
	thread int
	gen    uint64
	msg    *message
}

// eventQueue is a deterministic min-heap ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push appends an event (heap.Interface).
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

// Pop removes the last element (heap.Interface).
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// fel is the future event list.
type fel struct {
	q      eventQueue
	nextSq uint64
}

func (f *fel) schedule(at vtime.Time, kind evKind, thread int, gen uint64, msg *message) {
	e := &event{at: at, seq: f.nextSq, kind: kind, thread: thread, gen: gen, msg: msg}
	f.nextSq++
	heap.Push(&f.q, e)
}

func (f *fel) pop() *event {
	if len(f.q) == 0 {
		return nil
	}
	return heap.Pop(&f.q).(*event)
}

func (f *fel) empty() bool { return len(f.q) == 0 }
