package sim

import (
	"extrap/internal/vtime"
)

// evKind discriminates future-event-list entries.
type evKind uint8

const (
	// evComputeDone fires when a thread's current compute segment ends.
	evComputeDone evKind = iota
	// evMsgArrive fires when a message becomes available to software at
	// its destination processor.
	evMsgArrive
	// evPollTick fires at a poll-policy chunk boundary.
	evPollTick
	// evResume fires when a blocked thread should continue (reply
	// consumed, barrier release granted, service backlog drained).
	evResume
)

// noMsg marks an event that carries no message reference.
const noMsg int32 = -1

// event is one scheduled simulation occurrence. seq breaks time ties
// deterministically in schedule order; gen invalidates superseded
// compute-done/poll events (e.g. after an interrupt extends a segment).
// The struct is deliberately pointer-free (messages are slab indices, not
// pointers) so heap sift operations move events without GC write
// barriers; profiles showed the barriers costing as much as the sifts.
// seq and gen are uint32: both are bounded by the engine's 2^28 event
// budget, far below overflow.
type event struct {
	at     vtime.Time
	seq    uint32
	gen    uint32
	thread int32
	msg    int32 // msgSlab index, or noMsg
	kind   evKind
}

// fel is the future event list: a deterministic min-heap of events by
// value, ordered by (time, seq), fronted by a one-slot min cache. The
// cache holds the global minimum whenever occupied (top ≤ every heap
// element, maintained inductively by schedule), so the common
// pop-dispatch-schedule ping-pong — a thread scheduling its next segment
// end before anything else is due — costs two comparisons instead of a
// sift-down plus sift-up. Storing events inline rather than behind
// pointers keeps the simulation hot loop free of per-event heap
// allocations — the backing array is reused as events come and go.
//
// The heap is 4-ary rather than binary: sift-down dominates (every pop
// walks from the root), and a fan-out of 4 halves the tree depth while
// keeping each level's four children in at most two cache lines of
// 40-byte events. Pop order is a pure function of the (time, seq) total
// order — seq is unique — so arity cannot change results, only the
// constant factor.
type fel struct {
	q      []event
	top    event
	topOK  bool
	nextSq uint32
}

// before orders events by (time, schedule sequence).
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// less orders the heap by (time, schedule sequence).
func (f *fel) less(i, j int) bool {
	return before(&f.q[i], &f.q[j])
}

// up restores the heap invariant after appending at index i. The moving
// event rides in a register while displaced ancestors drop into the
// hole, so each level costs one 40-byte copy instead of a swap's three.
// The comparison sequence matches the swapping formulation exactly, so
// the resulting heap shape — and therefore pop order — is unchanged.
func (f *fel) up(i int) {
	ev := f.q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !before(&ev, &f.q[parent]) {
			break
		}
		f.q[i] = f.q[parent]
		i = parent
	}
	f.q[i] = ev
}

// down restores the heap invariant after replacing the root, with the
// same hole-based single-copy-per-level scheme as up.
func (f *fel) down(i int) {
	n := len(f.q)
	ev := f.q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		least := first
		for c := first + 1; c < last; c++ {
			if f.less(c, least) {
				least = c
			}
		}
		if !before(&f.q[least], &ev) {
			break
		}
		f.q[i] = f.q[least]
		i = least
	}
	f.q[i] = ev
}

// push inserts ev into the heap proper, below the min cache.
func (f *fel) push(ev event) {
	f.q = append(f.q, ev)
	f.up(len(f.q) - 1)
}

func (f *fel) schedule(at vtime.Time, kind evKind, thread int32, gen uint32, msg int32) {
	ev := event{at: at, seq: f.nextSq, kind: kind, thread: thread, gen: gen, msg: msg}
	f.nextSq++
	f.insert(ev)
}

// insert adds an event whose seq was already assigned (by schedule or by
// the engine's continuation register), maintaining the min-cache
// invariant.
func (f *fel) insert(ev event) {
	if !f.topOK {
		// Install as the cached min only when nothing in the heap beats it;
		// otherwise the invariant top ≤ min(heap) would break.
		if len(f.q) == 0 || before(&ev, &f.q[0]) {
			f.top, f.topOK = ev, true
			return
		}
		f.push(ev)
		return
	}
	if before(&ev, &f.top) {
		// New global minimum: demote the cached top into the heap. top was
		// ≤ every heap element, and ev < top, so the invariant holds.
		f.push(f.top)
		f.top = ev
		return
	}
	f.push(ev)
}

// wouldPopNext reports whether ev precedes everything currently queued —
// i.e. pop would return ev immediately after an insert(ev). The cached
// top is ≤ every heap element, so one comparison decides.
func (f *fel) wouldPopNext(ev *event) bool {
	if f.topOK {
		return before(ev, &f.top)
	}
	return len(f.q) == 0 || before(ev, &f.q[0])
}

func (f *fel) pop() event {
	if f.topOK {
		f.topOK = false
		return f.top
	}
	root := f.q[0]
	n := len(f.q) - 1
	f.q[0] = f.q[n]
	f.q = f.q[:n]
	if n > 0 {
		f.down(0)
	}
	return root
}

func (f *fel) empty() bool { return !f.topOK && len(f.q) == 0 }

// reset prepares the list for another run, retaining the backing array.
func (f *fel) reset() {
	f.q = f.q[:0]
	f.topOK = false
	f.nextSq = 0
}
