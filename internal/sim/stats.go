package sim

import (
	"fmt"
	"strings"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// ThreadStats is the per-thread breakdown of simulated time. The four wait
// categories plus compute account for a thread's lifetime up to Finish
// (they may not sum exactly to Finish because service work overlaps wait
// states by design).
type ThreadStats struct {
	// Compute is pure (MipsRatio-scaled) computation time.
	Compute vtime.Time
	// CommWait is time from hitting a remote access to resuming after the
	// reply (including send overheads).
	CommWait vtime.Time
	// BarrierWait is time from hitting a barrier entry to completing the
	// exit.
	BarrierWait vtime.Time
	// Service is time spent servicing other threads' requests and paying
	// interrupt/poll overheads.
	Service vtime.Time
	// CPUWait is time spent runnable but waiting for a multithreaded
	// processor (zero in the one-thread-per-processor configuration).
	CPUWait vtime.Time
	// RemoteReads and RemoteWrites count the thread's remote accesses.
	RemoteReads  int64
	RemoteWrites int64
	// Barriers counts barriers completed.
	Barriers int64
	// Finish is the simulated time at which the thread ended.
	Finish vtime.Time
}

// NetStats summarizes the communication substrate's activity.
type NetStats struct {
	Messages      int64
	Bytes         int64
	TotalTransit  vtime.Time
	ContentionAdd vtime.Time
	QueueingAdd   vtime.Time
	MaxInFlight   int
}

// AvgTransit returns the mean in-network time per message.
func (n NetStats) AvgTransit() vtime.Time {
	if n.Messages == 0 {
		return 0
	}
	return n.TotalTransit / vtime.Time(n.Messages)
}

// Result is the outcome of one extrapolation: the predicted performance
// information PI₂ᵖ and the metrics derived from it.
type Result struct {
	// TotalTime is the predicted parallel execution time.
	TotalTime vtime.Time
	// Threads holds the per-thread breakdowns.
	Threads []ThreadStats
	// Net summarizes network activity.
	Net NetStats
	// Barriers is the number of global barriers simulated.
	Barriers int
	// Procs is the simulated processor count.
	Procs int
	// Trace is the extrapolated event trace (nil unless Config.EmitTrace).
	Trace *trace.Trace
}

// TotalCompute sums compute time over threads.
func (r *Result) TotalCompute() vtime.Time {
	return r.sum(func(s ThreadStats) vtime.Time { return s.Compute })
}

// TotalCommWait sums remote-access wait over threads.
func (r *Result) TotalCommWait() vtime.Time {
	return r.sum(func(s ThreadStats) vtime.Time { return s.CommWait })
}

// TotalBarrierWait sums barrier wait over threads.
func (r *Result) TotalBarrierWait() vtime.Time {
	return r.sum(func(s ThreadStats) vtime.Time { return s.BarrierWait })
}

// TotalService sums request-service time over threads.
func (r *Result) TotalService() vtime.Time {
	return r.sum(func(s ThreadStats) vtime.Time { return s.Service })
}

func (r *Result) sum(f func(ThreadStats) vtime.Time) vtime.Time {
	var t vtime.Time
	for _, s := range r.Threads {
		t += f(s)
	}
	return t
}

// CompCommRatio returns total computation divided by total communication
// wait — one of the paper's standard performance metrics. It returns +Inf
// (as math.Inf would) encoded as a large value when there is no
// communication; callers format it with FormatRatio.
func (r *Result) CompCommRatio() float64 {
	comm := r.TotalCommWait()
	if comm == 0 {
		return -1 // sentinel: no communication
	}
	return float64(r.TotalCompute()) / float64(comm)
}

// FormatRatio renders a CompCommRatio value.
func FormatRatio(v float64) string {
	if v < 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders a one-paragraph summary of the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "procs=%d time=%v barriers=%d msgs=%d bytes=%d\n",
		r.Procs, r.TotalTime, r.Barriers, r.Net.Messages, r.Net.Bytes)
	fmt.Fprintf(&b, "compute=%v comm-wait=%v barrier-wait=%v service=%v",
		r.TotalCompute(), r.TotalCommWait(), r.TotalBarrierWait(), r.TotalService())
	return b.String()
}
