package sim

import (
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func TestTreeBarrierMessagesProduceValidTrace(t *testing.T) {
	pt := measureAndTranslate(t, 7, func(th *pcxx.Thread) { // non-power-of-two
		th.Compute(vtime.Time(th.ID()+1) * 10 * vtime.Microsecond)
		th.Barrier()
		th.Compute(5 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := zeroConfig()
	cfg.Barrier = DefaultBarrier()
	cfg.Barrier.Algorithm = TreeBarrier
	cfg.Comm = network.Config{
		StartupTime:      5 * vtime.Microsecond,
		ByteTransferTime: 50 * vtime.Nanosecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}
	cfg.EmitTrace = true
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 2 {
		t.Fatalf("Barriers = %d", res.Barriers)
	}
	// Every thread completed both barriers.
	for i, s := range res.Threads {
		if s.Barriers != 2 {
			t.Errorf("thread %d barriers = %d", i, s.Barriers)
		}
	}
	// Tree messages: arrival (n−1 child→parent) + release (n−1
	// parent→child) per barrier.
	var arrive, release int64
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindMsgSend {
			switch e.Arg2 {
			case int64(mBarArrive):
				arrive++
			case int64(mBarRelease):
				release++
			}
		}
	}
	if arrive != 2*6 || release != 2*6 {
		t.Errorf("tree barrier messages: %d arrivals, %d releases; want 12 each", arrive, release)
	}
}

func TestTreeBarrierOrdering(t *testing.T) {
	// With messages, no thread's exit precedes the root's release start —
	// i.e., every exit is at or after the latest entry.
	pt := measureAndTranslate(t, 8, func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()*3+1) * 10 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := zeroConfig()
	cfg.Barrier = DefaultBarrier()
	cfg.Barrier.Algorithm = TreeBarrier
	cfg.Comm = network.Config{
		StartupTime: 5 * vtime.Microsecond,
		Topology:    network.Bus{},
	}
	cfg.EmitTrace = true
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastEntry vtime.Time
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindBarrierEntry && e.Time > lastEntry {
			lastEntry = e.Time
		}
	}
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindBarrierExit && e.Time < lastEntry {
			t.Fatalf("exit at %v before last entry %v", e.Time, lastEntry)
		}
	}
}

func TestLinearMessageBarrierReleaseOrder(t *testing.T) {
	// The master releases slaves in id order; with a serial release chain
	// slave 1's exit cannot be after slave n−1's by more than the chain's
	// span, and exits are non-decreasing in slave id for equal entries.
	pt := measureAndTranslate(t, 6, func(th *pcxx.Thread) {
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := zeroConfig()
	cfg.Barrier = DefaultBarrier()
	cfg.Comm = network.Config{
		StartupTime: 10 * vtime.Microsecond,
		Topology:    network.Bus{},
	}
	cfg.EmitTrace = true
	res, err := Simulate(pt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exits := make(map[int32]vtime.Time)
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindBarrierExit {
			exits[e.Thread] = e.Time
		}
	}
	for s := int32(2); s < 6; s++ {
		if exits[s] < exits[s-1] {
			t.Errorf("slave %d exits at %v before slave %d at %v (release chain order)",
				s, exits[s], s-1, exits[s-1])
		}
	}
}

func TestAnalyticVariantsCheaperThanMessages(t *testing.T) {
	for _, alg := range []BarrierAlgorithm{LinearBarrier, TreeBarrier} {
		cost := func(byMsgs bool) vtime.Time {
			pt := measureAndTranslate(t, 16, func(th *pcxx.Thread) {
				th.Compute(10 * vtime.Microsecond)
				th.Barrier()
			})
			cfg := zeroConfig()
			cfg.Barrier = DefaultBarrier()
			cfg.Barrier.Algorithm = alg
			cfg.Barrier.ByMsgs = byMsgs
			cfg.Comm = network.Config{
				StartupTime: 20 * vtime.Microsecond,
				Topology:    network.Bus{},
			}
			res, err := Simulate(pt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.TotalTime
		}
		if m, a := cost(true), cost(false); a >= m {
			t.Errorf("%v: analytic barrier (%v) not cheaper than message barrier (%v)", alg, a, m)
		}
	}
}

func TestNumChildren(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 1, 0}, {0, 2, 1}, {0, 3, 2}, {1, 3, 0}, {0, 7, 2}, {2, 7, 2}, {3, 7, 0}, {1, 4, 1},
	}
	for _, c := range cases {
		if got := numChildren(c.i, c.n); got != c.want {
			t.Errorf("numChildren(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
