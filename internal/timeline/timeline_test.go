package timeline

import (
	"bytes"
	"strings"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// extrapolatedGrid produces an extrapolated trace of the Grid benchmark.
func extrapolatedGrid(t *testing.T, threads int) (*trace.Trace, vtime.Time) {
	t.Helper()
	g, err := benchmarks.ByName("grid")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Measure(g.Factory(benchmarks.Size{N: 16, Iters: 6})(threads), core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.GenericDM().Config
	cfg.EmitTrace = true
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out.Result.Trace, out.Result.TotalTime
}

func TestBuildClassifiesActivity(t *testing.T) {
	etr, total := extrapolatedGrid(t, 4)
	tl, err := Build(etr)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Threads != 4 {
		t.Fatalf("threads = %d", tl.Threads)
	}
	if tl.Duration != total {
		t.Fatalf("duration %v != simulated total %v", tl.Duration, total)
	}
	totals := tl.Totals()
	if totals[Compute] <= 0 || totals[Barrier] <= 0 || totals[Comm] <= 0 {
		t.Fatalf("expected all three activity kinds, got %v", totals)
	}
	// Segments are non-overlapping and ordered per thread.
	lastEnd := map[int32]vtime.Time{}
	for _, s := range tl.Segments {
		if s.End < s.Start {
			t.Fatalf("segment with negative length: %+v", s)
		}
		if s.Start < lastEnd[s.Thread] {
			t.Fatalf("overlapping segments on thread %d: %+v after %v", s.Thread, s, lastEnd[s.Thread])
		}
		lastEnd[s.Thread] = s.End
	}
	// Every thread's coverage ends at ≤ the run duration.
	for th, end := range lastEnd {
		if end > tl.Duration {
			t.Fatalf("thread %d segments extend past the end: %v > %v", th, end, tl.Duration)
		}
	}
}

func TestSVGOutput(t *testing.T) {
	etr, _ := extrapolatedGrid(t, 4)
	tl, err := Build(etr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.SVG(&buf, "grid on generic-dm"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "barrier", "comm", "compute", "t0", "t3"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 10 {
		t.Error("suspiciously few segments rendered")
	}
}

func TestBuildRejectsMalformed(t *testing.T) {
	tr := trace.New(1)
	tr.Append(trace.Event{Time: 5, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 0})
	if _, err := Build(tr); err == nil {
		t.Error("orphan barrier exit accepted")
	}
}

func TestEmptyTimelineSVG(t *testing.T) {
	tl := &Timeline{Threads: 2, Duration: 0}
	var buf bytes.Buffer
	if err := tl.SVG(&buf, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no SVG emitted for empty timeline")
	}
}
