// Package timeline renders per-thread activity timelines (Gantt charts)
// from extrapolated event traces — the visualization a performance
// debugger of the paper's era (Upshot, ParaGraph, Pablo) would show, here
// generated for *predicted* executions of machines the user may not have.
//
// Each thread becomes one horizontal lane; time runs left to right.
// Activity is classified from the event stream:
//
//	compute      between any two events not otherwise classified
//	barrier      from a barrier-entry to the matching barrier-exit
//	comm         from a remote-read request send to the read's completion
//
// The renderer emits self-contained SVG (stdlib only).
package timeline

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// Kind classifies a timeline segment.
type Kind uint8

// Segment kinds.
const (
	Compute Kind = iota
	Barrier
	Comm
)

func (k Kind) String() string {
	switch k {
	case Barrier:
		return "barrier"
	case Comm:
		return "comm"
	}
	return "compute"
}

// color returns the fill color of a segment kind.
func (k Kind) color() string {
	switch k {
	case Barrier:
		return "#d62728" // red: synchronization
	case Comm:
		return "#ff7f0e" // orange: communication
	}
	return "#2ca02c" // green: computation
}

// Segment is one activity interval on one thread.
type Segment struct {
	Thread     int32
	Kind       Kind
	Start, End vtime.Time
}

// Timeline is the classified activity of a whole trace.
type Timeline struct {
	Threads  int
	Duration vtime.Time
	Segments []Segment
}

// Build classifies a trace into segments. The trace should be an
// extrapolated trace (or a flattened translated trace); per-thread events
// must be time-ordered.
func Build(tr *trace.Trace) (*Timeline, error) {
	tl := &Timeline{Threads: tr.NumThreads, Duration: tr.Duration()}
	per := tr.PerThread()
	for th, evs := range per {
		var segs []Segment
		cursor := vtime.Time(0) // start of the current unclassified span
		pendingComm := vtime.Time(-1)
		barrierStart := vtime.Time(-1)
		closeAs := func(end vtime.Time, k Kind, from vtime.Time) {
			if from < cursor {
				from = cursor
			}
			if from > cursor {
				segs = append(segs, Segment{Thread: int32(th), Kind: Compute, Start: cursor, End: from})
			}
			if end > from {
				segs = append(segs, Segment{Thread: int32(th), Kind: k, Start: from, End: end})
			}
			cursor = end
		}
		for _, e := range evs {
			switch e.Kind {
			case trace.KindBarrierEntry:
				barrierStart = e.Time
			case trace.KindBarrierExit:
				if barrierStart < 0 {
					return nil, fmt.Errorf("timeline: thread %d exits barrier %d without entry", th, e.Arg0)
				}
				closeAs(e.Time, Barrier, barrierStart)
				barrierStart = -1
			case trace.KindMsgSend:
				// Request sends mark possible comm-wait starts; only
				// remote-read requests block (writes are fire-and-forget,
				// barrier messages are inside barrier intervals).
				if pendingComm < 0 && barrierStart < 0 {
					pendingComm = e.Time
				}
			case trace.KindRemoteRead:
				if pendingComm >= 0 {
					closeAs(e.Time, Comm, pendingComm)
					pendingComm = -1
				}
			case trace.KindThreadEnd:
				if e.Time > cursor {
					segs = append(segs, Segment{Thread: int32(th), Kind: Compute, Start: cursor, End: e.Time})
					cursor = e.Time
				}
			}
		}
		tl.Segments = append(tl.Segments, segs...)
	}
	sort.SliceStable(tl.Segments, func(i, j int) bool {
		if tl.Segments[i].Thread != tl.Segments[j].Thread {
			return tl.Segments[i].Thread < tl.Segments[j].Thread
		}
		return tl.Segments[i].Start < tl.Segments[j].Start
	})
	return tl, nil
}

// Totals sums segment durations by kind.
func (tl *Timeline) Totals() map[Kind]vtime.Time {
	out := make(map[Kind]vtime.Time)
	for _, s := range tl.Segments {
		out[s.Kind] += s.End - s.Start
	}
	return out
}

// SVG renders the timeline.
func (tl *Timeline) SVG(w io.Writer, title string) error {
	const (
		width   = 900
		laneH   = 22
		laneGap = 6
		ml, mr  = 60, 20
		mt, mb  = 50, 40
	)
	height := mt + mb + tl.Threads*(laneH+laneGap)
	pw := width - ml - mr
	if tl.Duration <= 0 {
		tl.Duration = 1
	}
	x := func(t vtime.Time) float64 {
		return float64(ml) + float64(t)/float64(tl.Duration)*float64(pw)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		ml, escapeXML(title))
	// Legend.
	for i, k := range []Kind{Compute, Comm, Barrier} {
		lx := ml + i*110
		fmt.Fprintf(&b, `<rect x="%d" y="30" width="12" height="12" fill="%s"/>`+"\n", lx, k.color())
		fmt.Fprintf(&b, `<text x="%d" y="40" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+16, k)
	}
	for th := 0; th < tl.Threads; th++ {
		y := mt + th*(laneH+laneGap)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">t%d</text>`+"\n",
			ml-6, y+laneH-7, th)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f4f4"/>`+"\n", ml, y, pw, laneH)
	}
	for _, s := range tl.Segments {
		y := mt + int(s.Thread)*(laneH+laneGap)
		x0, x1 := x(s.Start), x(s.End)
		if x1-x0 < 0.5 {
			x1 = x0 + 0.5
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>%s %v–%v</title></rect>`+"\n",
			x0, y, x1-x0, laneH, s.Kind.color(), s.Kind, s.Start, s.End)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">0</text>`+"\n", ml, height-14)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">%v</text>`+"\n",
		ml+pw, height-14, tl.Duration)
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeXML escapes XML special characters.
func escapeXML(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;",
		`"`, "&quot;", "'", "&apos;").Replace(s)
}
