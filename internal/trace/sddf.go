package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSDDF exports the trace in an SDDF-A-style self-describing ASCII
// format (the Pablo trace format of the paper's era, which contemporary
// analysis tools consumed). Each event kind gets a record descriptor;
// records carry timestamps in seconds as SDDF tools expect.
//
// The export is one-way interop: this repository's native formats remain
// the binary and text codecs.
func WriteSDDF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "/* SDDF-A export — performance extrapolation trace */")
	fmt.Fprintf(bw, "/* threads: %d, events: %d */\n\n", t.NumThreads, len(t.Events))

	// Record descriptors, one per kind present in the trace.
	present := map[Kind]bool{}
	for _, e := range t.Events {
		present[e.Kind] = true
	}
	tag := map[Kind]int{}
	next := 1
	for k := KindThreadStart; k < kindCount; k++ {
		if !present[k] {
			continue
		}
		tag[k] = next
		fmt.Fprintf(bw, "#%d:\n", next)
		fmt.Fprintf(bw, "\"%s\" {\n", k)
		fmt.Fprintln(bw, "\tdouble\t\"timestamp\";")
		fmt.Fprintln(bw, "\tint\t\"thread\";")
		switch k {
		case KindBarrierEntry, KindBarrierExit:
			fmt.Fprintln(bw, "\tint\t\"barrier\";")
		case KindRemoteRead, KindRemoteWrite:
			fmt.Fprintln(bw, "\tint\t\"owner\";")
			fmt.Fprintln(bw, "\tint\t\"bytes\";")
			fmt.Fprintln(bw, "\tint\t\"element\";")
		case KindMsgSend, KindMsgRecv:
			fmt.Fprintln(bw, "\tint\t\"peer\";")
			fmt.Fprintln(bw, "\tint\t\"bytes\";")
			fmt.Fprintln(bw, "\tint\t\"tag\";")
		case KindPhaseBegin, KindPhaseEnd:
			fmt.Fprintln(bw, "\tint\t\"phase\";")
		}
		fmt.Fprintln(bw, "};;")
		fmt.Fprintln(bw)
		next++
	}

	// Phase-name table as comments (SDDF has no string table).
	for i, p := range t.Phases {
		fmt.Fprintf(bw, "/* phase %d: %s */\n", i, p)
	}
	if len(t.Phases) > 0 {
		fmt.Fprintln(bw)
	}

	// Data records.
	for _, e := range t.Events {
		ts := e.Time.Seconds()
		switch e.Kind {
		case KindBarrierEntry, KindBarrierExit:
			fmt.Fprintf(bw, "\"%s\" { %.9f, %d, %d };;\n", e.Kind, ts, e.Thread, e.Arg0)
		case KindRemoteRead, KindRemoteWrite:
			_, elem := UnpackRef(e.Arg2)
			fmt.Fprintf(bw, "\"%s\" { %.9f, %d, %d, %d, %d };;\n",
				e.Kind, ts, e.Thread, e.Arg0, e.Arg1, elem)
		case KindMsgSend, KindMsgRecv:
			fmt.Fprintf(bw, "\"%s\" { %.9f, %d, %d, %d, %d };;\n",
				e.Kind, ts, e.Thread, e.Arg0, e.Arg1, e.Arg2)
		case KindPhaseBegin, KindPhaseEnd:
			fmt.Fprintf(bw, "\"%s\" { %.9f, %d, %d };;\n", e.Kind, ts, e.Thread, e.Arg0)
		default:
			fmt.Fprintf(bw, "\"%s\" { %.9f, %d };;\n", e.Kind, ts, e.Thread)
		}
	}
	return bw.Flush()
}
