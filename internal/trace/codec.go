package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"extrap/internal/vtime"
)

// Binary trace format (all integers little-endian):
//
//	magic   [5]byte  "XTRP1"
//	threads uint32
//	ovh     int64    per-event instrumentation overhead (ns)
//	nphase  uint32
//	phases  nphase × (uint16 length, bytes)
//	nevents uint64
//	events  nevents × (int64 time, uint8 kind, int32 thread,
//	                   int64 arg0, int64 arg1, int64 arg2)
//
// The format is self-describing enough for the CLI tools and compact
// enough that full benchmark traces (hundreds of thousands of events)
// write in milliseconds.

var binaryMagic = [5]byte{'X', 'T', 'R', 'P', '1'}

// eventRecSize is the wire size of one event record.
const eventRecSize = 37

// codecChunk is how many event records are staged in one buffer between
// Write/ReadFull calls; batching keeps the per-event cost to pure
// encoding and lets escape analysis keep the scratch buffer off the heap
// allocation fast path (one buffer per call, not one per event).
const codecChunk = 512

// putEvent encodes e into b, which must have room for eventRecSize bytes.
func putEvent(b []byte, e *Event) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.Time))
	b[8] = byte(e.Kind)
	binary.LittleEndian.PutUint32(b[9:13], uint32(e.Thread))
	binary.LittleEndian.PutUint64(b[13:21], uint64(e.Arg0))
	binary.LittleEndian.PutUint64(b[21:29], uint64(e.Arg1))
	binary.LittleEndian.PutUint64(b[29:37], uint64(e.Arg2))
}

// getEvent decodes one event record from b.
func getEvent(b []byte) Event {
	return Event{
		Time:   intToTime(binary.LittleEndian.Uint64(b[0:8])),
		Kind:   Kind(b[8]),
		Thread: int32(binary.LittleEndian.Uint32(b[9:13])),
		Arg0:   int64(binary.LittleEndian.Uint64(b[13:21])),
		Arg1:   int64(binary.LittleEndian.Uint64(b[21:29])),
		Arg2:   int64(binary.LittleEndian.Uint64(b[29:37])),
	}
}

// errors returned by the codecs.
var (
	ErrBadMagic = errors.New("trace: bad magic (not an XTRP binary trace)")
)

// Hardening limits for the XTRP1 format. Every header field is
// attacker-controlled until proven otherwise, so nothing may allocate
// proportionally to a header count before the corresponding bytes have
// actually been read.
const (
	// MaxThreads bounds the declared thread count. Thread ids are dense
	// per-thread state everywhere downstream (translation, simulation),
	// so an absurd count is rejected at decode time.
	MaxThreads = 1 << 20
	// MaxPhases bounds the phase-name table's entry count.
	MaxPhases = 1 << 16
	// MaxPhaseBytes bounds the cumulative size of all phase names.
	MaxPhaseBytes = 1 << 22
	// MaxEvents is a sanity bound on the declared event count; the
	// decoder never allocates from the declared count, it only rejects
	// claims past this.
	MaxEvents = 1 << 40
)

// Decoder streams an XTRP1 trace from r: NewDecoder reads and validates
// the header; Next yields one event at a time from an internal
// fixed-size chunk buffer. Peak decoder memory is O(codecChunk + phase
// table), independent of the declared (untrusted) event count, and every
// record is validated as it is produced: the kind must be defined and
// the thread id must lie in [0, NumThreads).
type Decoder struct {
	br      *bufio.Reader
	hdr     Header
	declare uint64 // declared event count (untrusted until EOF confirms it)
	read    uint64
	buf     []byte
	bufPos  int
	bufLen  int
	err     error
}

// NewDecoder reads and validates the trace header from r. The event
// records are consumed by Next.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	return newDecoderAfterMagic(br)
}

// newDecoderAfterMagic parses the XTRP1 header past the magic bytes —
// the entry point NewAnyDecoder dispatches to once the magic has
// identified the format.
func newDecoderAfterMagic(br *bufio.Reader) (*Decoder, error) {
	hdr, declare, err := readCommonHeader(br)
	if err != nil {
		return nil, err
	}
	return &Decoder{br: br, hdr: hdr, declare: declare}, nil
}

// Header returns the decoded trace metadata.
func (d *Decoder) Header() Header { return d.hdr }

// Declared returns the event count the header claims. It is untrusted:
// the stream may end early (Next returns an unexpected-EOF error) and a
// hostile header cannot make the decoder allocate ahead of the data.
func (d *Decoder) Declared() uint64 { return d.declare }

// fill reads the next chunk of event records into the staging buffer.
func (d *Decoder) fill() error {
	batch := d.declare - d.read
	if batch == 0 {
		return io.EOF
	}
	if batch > codecChunk {
		batch = codecChunk
	}
	if d.buf == nil {
		d.buf = make([]byte, codecChunk*eventRecSize)
	}
	chunk := d.buf[:batch*eventRecSize]
	if _, err := io.ReadFull(d.br, chunk); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: event %d: %w", d.read, err)
	}
	d.bufPos = 0
	d.bufLen = int(batch) * eventRecSize
	return nil
}

// Next returns the next event, io.EOF after the declared count has been
// read, or a validation error. The error is sticky.
func (d *Decoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	if d.bufPos >= d.bufLen {
		if err := d.fill(); err != nil {
			d.err = err
			return Event{}, err
		}
	}
	e := getEvent(d.buf[d.bufPos:])
	d.bufPos += eventRecSize
	if !e.Kind.Valid() {
		d.err = fmt.Errorf("trace: event %d has invalid kind %d", d.read, byte(e.Kind))
		return Event{}, d.err
	}
	if e.Thread < 0 || int(e.Thread) >= d.hdr.NumThreads {
		d.err = fmt.Errorf("trace: event %d thread %d out of range [0,%d)", d.read, e.Thread, d.hdr.NumThreads)
		return Event{}, d.err
	}
	d.read++
	return e, nil
}

// appendAll drains the remaining events into dst chunk-at-a-time,
// bypassing the per-event Next call so bulk materialization runs at the
// chunked decode loop's speed. Validation is identical to Next.
func (d *Decoder) appendAll(dst []Event) ([]Event, error) {
	if d.err != nil {
		return dst, d.err
	}
	for {
		if d.bufPos >= d.bufLen {
			if err := d.fill(); err != nil {
				d.err = err
				if err == io.EOF {
					return dst, nil
				}
				return dst, err
			}
		}
		nthreads := int32(d.hdr.NumThreads)
		for d.bufPos < d.bufLen {
			e := getEvent(d.buf[d.bufPos:])
			if !e.Kind.Valid() {
				d.err = fmt.Errorf("trace: event %d has invalid kind %d", d.read, byte(e.Kind))
				return dst, d.err
			}
			if e.Thread < 0 || e.Thread >= nthreads {
				d.err = fmt.Errorf("trace: event %d thread %d out of range [0,%d)", d.read, e.Thread, d.hdr.NumThreads)
				return dst, d.err
			}
			d.bufPos += eventRecSize
			d.read++
			dst = append(dst, e)
		}
	}
}

// Encoder streams a trace to w in the binary format. The format stores
// the event count ahead of the records, so the count must be declared up
// front; Close fails if the written count disagrees — a truncated or
// overfull stream never masquerades as a valid trace.
type Encoder struct {
	bw      *bufio.Writer
	declare uint64
	written uint64
	buf     []byte
	bufLen  int
	err     error
}

// NewEncoder writes the header for hdr and nevents upcoming events to w
// and returns the event sink.
func NewEncoder(w io.Writer, hdr Header, nevents int) (*Encoder, error) {
	if hdr.NumThreads < 0 || hdr.NumThreads > MaxThreads {
		return nil, fmt.Errorf("trace: thread count %d out of range [0,%d]", hdr.NumThreads, MaxThreads)
	}
	if len(hdr.Phases) > MaxPhases {
		return nil, fmt.Errorf("trace: phase count %d exceeds %d", len(hdr.Phases), MaxPhases)
	}
	if nevents < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", nevents)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	var scratch [16]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(hdr.NumThreads))
	binary.LittleEndian.PutUint64(scratch[4:12], uint64(hdr.EventOverhead))
	binary.LittleEndian.PutUint32(scratch[12:16], uint32(len(hdr.Phases)))
	if _, err := bw.Write(scratch[:16]); err != nil {
		return nil, err
	}
	phaseBytes := 0
	for _, p := range hdr.Phases {
		if len(p) > 0xffff {
			return nil, fmt.Errorf("trace: phase name too long (%d bytes)", len(p))
		}
		if phaseBytes += len(p); phaseBytes > MaxPhaseBytes {
			return nil, fmt.Errorf("trace: phase table exceeds %d bytes", MaxPhaseBytes)
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(p)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return nil, err
		}
		if _, err := bw.WriteString(p); err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(nevents))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return nil, err
	}
	return &Encoder{bw: bw, declare: uint64(nevents)}, nil
}

// WriteEvent appends one event record.
func (e *Encoder) WriteEvent(ev Event) error {
	if e.err != nil {
		return e.err
	}
	if e.written == e.declare {
		e.err = fmt.Errorf("trace: more events written than the declared %d", e.declare)
		return e.err
	}
	if e.buf == nil {
		e.buf = make([]byte, codecChunk*eventRecSize)
	}
	putEvent(e.buf[e.bufLen:e.bufLen+eventRecSize], &ev)
	e.bufLen += eventRecSize
	e.written++
	if e.bufLen == len(e.buf) {
		if _, err := e.bw.Write(e.buf[:e.bufLen]); err != nil {
			e.err = err
			return err
		}
		e.bufLen = 0
	}
	return nil
}

// WriteEvents appends a batch of event records, staging directly into
// the chunk buffer so bulk encoding skips the per-event WriteEvent call.
func (e *Encoder) WriteEvents(evs []Event) error {
	if e.err != nil {
		return e.err
	}
	if uint64(len(evs)) > e.declare-e.written {
		e.err = fmt.Errorf("trace: more events written than the declared %d", e.declare)
		return e.err
	}
	if e.buf == nil {
		e.buf = make([]byte, codecChunk*eventRecSize)
	}
	for i := 0; i < len(evs); {
		n := (len(e.buf) - e.bufLen) / eventRecSize
		if n > len(evs)-i {
			n = len(evs) - i
		}
		for j := i; j < i+n; j++ {
			putEvent(e.buf[e.bufLen:e.bufLen+eventRecSize], &evs[j])
			e.bufLen += eventRecSize
		}
		i += n
		if e.bufLen == len(e.buf) {
			if _, err := e.bw.Write(e.buf[:e.bufLen]); err != nil {
				e.err = err
				return err
			}
			e.bufLen = 0
		}
	}
	e.written += uint64(len(evs))
	return nil
}

// Close flushes buffered records and verifies the declared event count
// was written exactly.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.written != e.declare {
		e.err = fmt.Errorf("trace: wrote %d events, declared %d", e.written, e.declare)
		return e.err
	}
	if e.bufLen > 0 {
		if _, err := e.bw.Write(e.buf[:e.bufLen]); err != nil {
			e.err = err
			return err
		}
		e.bufLen = 0
	}
	if err := e.bw.Flush(); err != nil {
		e.err = err
		return err
	}
	return nil
}

// EncodedSize returns the exact number of bytes the binary encoding of a
// trace with this header and event count occupies — the budget arithmetic
// behind size limits, cheap enough to run before encoding anything.
func EncodedSize(hdr Header, nevents int) int64 {
	n := int64(5 + 16 + 8) // magic + fixed header + event count
	for _, p := range hdr.Phases {
		n += 2 + int64(len(p))
	}
	return n + int64(nevents)*eventRecSize
}

// WriteBinary encodes the trace to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	enc, err := NewEncoder(w, t.Header(), len(t.Events))
	if err != nil {
		return err
	}
	if err := enc.WriteEvents(t.Events); err != nil {
		return err
	}
	return enc.Close()
}

// readPrealloc caps how many event slots ReadBinary reserves from the
// declared (untrusted) count before any record bytes arrive: ~640 KiB of
// slack, so a 41-byte hostile file claiming 2^40 events still costs a
// small constant while honest traces skip most append regrowth.
const readPrealloc = 16384

// ReadBinary decodes a whole trace from r into memory. Allocation grows
// with the records actually present in the input, never with the
// declared (untrusted) header counts; use NewDecoder directly to consume
// a trace without materializing it.
func ReadBinary(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		NumThreads:    d.hdr.NumThreads,
		EventOverhead: d.hdr.EventOverhead,
		Phases:        d.hdr.Phases,
	}
	prealloc := d.declare
	if prealloc > readPrealloc {
		prealloc = readPrealloc
	}
	t.Events, err = d.appendAll(make([]Event, 0, prealloc))
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Text trace format: a small header followed by one event per line,
// human-readable and diff-friendly:
//
//	#xtrp text 1
//	#threads 8
//	#overhead 250
//	#phase 0 init
//	<time-ns> <kind> t<thread> <arg0> <arg1> <arg2>

// WriteText encodes the trace to w in the line-oriented text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#xtrp text 1")
	fmt.Fprintf(bw, "#threads %d\n", t.NumThreads)
	fmt.Fprintf(bw, "#overhead %d\n", int64(t.EventOverhead))
	for i, p := range t.Phases {
		fmt.Fprintf(bw, "#phase %d %s\n", i, p)
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a text-format trace from r.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseTextHeader(t, line); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			continue
		}
		e, err := parseTextEvent(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.NumThreads == 0 {
		return nil, errors.New("trace: missing #threads header")
	}
	if t.NumThreads < 0 || t.NumThreads > MaxThreads {
		return nil, fmt.Errorf("trace: implausible thread count %d", t.NumThreads)
	}
	// The #threads header may appear anywhere, so thread ids are checked
	// once the count is known — mirroring the binary decoder's rule.
	for i, e := range t.Events {
		if e.Thread < 0 || int(e.Thread) >= t.NumThreads {
			return nil, fmt.Errorf("trace: event %d thread %d out of range [0,%d)", i, e.Thread, t.NumThreads)
		}
	}
	return t, nil
}

func parseTextHeader(t *Trace, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "#xtrp":
		return nil
	case "#threads":
		if len(fields) != 2 {
			return errors.New("malformed #threads header")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		t.NumThreads = n
	case "#overhead":
		if len(fields) != 2 {
			return errors.New("malformed #overhead header")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return err
		}
		t.EventOverhead = intToTime(uint64(v))
	case "#phase":
		if len(fields) < 3 {
			return errors.New("malformed #phase header")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		// The id sizes the phase table, so it is as untrusted as the
		// binary header counts: a single "#phase 9999999999 x" line must
		// not demand a giant allocation.
		if id < 0 || id >= MaxPhases {
			return fmt.Errorf("trace: phase id %d out of range [0,%d)", id, MaxPhases)
		}
		for len(t.Phases) <= id {
			t.Phases = append(t.Phases, "")
		}
		t.Phases[id] = strings.Join(fields[2:], " ")
	default:
		// Unknown headers are ignored for forward compatibility.
	}
	return nil
}

func parseTextEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 6 {
		return Event{}, fmt.Errorf("want 6 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad timestamp: %w", err)
	}
	kind, ok := KindFromString(fields[1])
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	if !strings.HasPrefix(fields[2], "t") {
		return Event{}, fmt.Errorf("bad thread field %q", fields[2])
	}
	th, err := strconv.Atoi(fields[2][1:])
	if err != nil {
		return Event{}, fmt.Errorf("bad thread id: %w", err)
	}
	var args [3]int64
	for i := 0; i < 3; i++ {
		args[i], err = strconv.ParseInt(fields[3+i], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad arg%d: %w", i, err)
		}
	}
	return Event{
		Time:   intToTime(uint64(ts)),
		Kind:   kind,
		Thread: int32(th),
		Arg0:   args[0],
		Arg1:   args[1],
		Arg2:   args[2],
	}, nil
}

func intToTime(v uint64) vtime.Time { return vtime.Time(v) }
