package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"extrap/internal/vtime"
)

// Binary trace format (all integers little-endian):
//
//	magic   [5]byte  "XTRP1"
//	threads uint32
//	ovh     int64    per-event instrumentation overhead (ns)
//	nphase  uint32
//	phases  nphase × (uint16 length, bytes)
//	nevents uint64
//	events  nevents × (int64 time, uint8 kind, int32 thread,
//	                   int64 arg0, int64 arg1, int64 arg2)
//
// The format is self-describing enough for the CLI tools and compact
// enough that full benchmark traces (hundreds of thousands of events)
// write in milliseconds.

var binaryMagic = [5]byte{'X', 'T', 'R', 'P', '1'}

// eventRecSize is the wire size of one event record.
const eventRecSize = 37

// codecChunk is how many event records are staged in one buffer between
// Write/ReadFull calls; batching keeps the per-event cost to pure
// encoding and lets escape analysis keep the scratch buffer off the heap
// allocation fast path (one buffer per call, not one per event).
const codecChunk = 512

// putEvent encodes e into b, which must have room for eventRecSize bytes.
func putEvent(b []byte, e *Event) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.Time))
	b[8] = byte(e.Kind)
	binary.LittleEndian.PutUint32(b[9:13], uint32(e.Thread))
	binary.LittleEndian.PutUint64(b[13:21], uint64(e.Arg0))
	binary.LittleEndian.PutUint64(b[21:29], uint64(e.Arg1))
	binary.LittleEndian.PutUint64(b[29:37], uint64(e.Arg2))
}

// getEvent decodes one event record from b.
func getEvent(b []byte) Event {
	return Event{
		Time:   intToTime(binary.LittleEndian.Uint64(b[0:8])),
		Kind:   Kind(b[8]),
		Thread: int32(binary.LittleEndian.Uint32(b[9:13])),
		Arg0:   int64(binary.LittleEndian.Uint64(b[13:21])),
		Arg1:   int64(binary.LittleEndian.Uint64(b[21:29])),
		Arg2:   int64(binary.LittleEndian.Uint64(b[29:37])),
	}
}

// errors returned by the codecs.
var (
	ErrBadMagic = errors.New("trace: bad magic (not an XTRP1 trace)")
)

// WriteBinary encodes the trace to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [29]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(t.NumThreads))
	binary.LittleEndian.PutUint64(scratch[4:12], uint64(t.EventOverhead))
	binary.LittleEndian.PutUint32(scratch[12:16], uint32(len(t.Phases)))
	if _, err := bw.Write(scratch[:16]); err != nil {
		return err
	}
	for _, p := range t.Phases {
		if len(p) > 0xffff {
			return fmt.Errorf("trace: phase name too long (%d bytes)", len(p))
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(p)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(t.Events)))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	buf := make([]byte, codecChunk*eventRecSize)
	for start := 0; start < len(t.Events); start += codecChunk {
		end := start + codecChunk
		if end > len(t.Events) {
			end = len(t.Events)
		}
		n := 0
		for i := start; i < end; i++ {
			putEvent(buf[n:n+eventRecSize], &t.Events[i])
			n += eventRecSize
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	t := &Trace{
		NumThreads:    int(binary.LittleEndian.Uint32(hdr[:4])),
		EventOverhead: intToTime(binary.LittleEndian.Uint64(hdr[4:12])),
	}
	nphase := binary.LittleEndian.Uint32(hdr[12:16])
	if nphase > 1<<20 {
		return nil, fmt.Errorf("trace: implausible phase count %d", nphase)
	}
	for i := uint32(0); i < nphase; i++ {
		var ln [2]byte
		if _, err := io.ReadFull(br, ln[:]); err != nil {
			return nil, err
		}
		buf := make([]byte, binary.LittleEndian.Uint16(ln[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		t.Phases = append(t.Phases, string(buf))
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	// Preallocate from the header count (bounded, so a corrupt header
	// cannot force a huge allocation before any record is read).
	prealloc := n
	if prealloc > 1<<22 {
		prealloc = 1 << 22
	}
	t.Events = make([]Event, 0, prealloc)
	buf := make([]byte, codecChunk*eventRecSize)
	for read := uint64(0); read < n; {
		batch := n - read
		if batch > codecChunk {
			batch = codecChunk
		}
		chunk := buf[:batch*eventRecSize]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, err
		}
		for i := uint64(0); i < batch; i++ {
			e := getEvent(chunk[i*eventRecSize:])
			if !e.Kind.Valid() {
				return nil, fmt.Errorf("trace: event %d has invalid kind %d", read+i, byte(e.Kind))
			}
			t.Events = append(t.Events, e)
		}
		read += batch
	}
	return t, nil
}

// Text trace format: a small header followed by one event per line,
// human-readable and diff-friendly:
//
//	#xtrp text 1
//	#threads 8
//	#overhead 250
//	#phase 0 init
//	<time-ns> <kind> t<thread> <arg0> <arg1> <arg2>

// WriteText encodes the trace to w in the line-oriented text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#xtrp text 1")
	fmt.Fprintf(bw, "#threads %d\n", t.NumThreads)
	fmt.Fprintf(bw, "#overhead %d\n", int64(t.EventOverhead))
	for i, p := range t.Phases {
		fmt.Fprintf(bw, "#phase %d %s\n", i, p)
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a text-format trace from r.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseTextHeader(t, line); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			continue
		}
		e, err := parseTextEvent(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.NumThreads == 0 {
		return nil, errors.New("trace: missing #threads header")
	}
	return t, nil
}

func parseTextHeader(t *Trace, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "#xtrp":
		return nil
	case "#threads":
		if len(fields) != 2 {
			return errors.New("malformed #threads header")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		t.NumThreads = n
	case "#overhead":
		if len(fields) != 2 {
			return errors.New("malformed #overhead header")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return err
		}
		t.EventOverhead = intToTime(uint64(v))
	case "#phase":
		if len(fields) < 3 {
			return errors.New("malformed #phase header")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		for len(t.Phases) <= id {
			t.Phases = append(t.Phases, "")
		}
		t.Phases[id] = strings.Join(fields[2:], " ")
	default:
		// Unknown headers are ignored for forward compatibility.
	}
	return nil
}

func parseTextEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 6 {
		return Event{}, fmt.Errorf("want 6 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad timestamp: %w", err)
	}
	kind, ok := KindFromString(fields[1])
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	if !strings.HasPrefix(fields[2], "t") {
		return Event{}, fmt.Errorf("bad thread field %q", fields[2])
	}
	th, err := strconv.Atoi(fields[2][1:])
	if err != nil {
		return Event{}, fmt.Errorf("bad thread id: %w", err)
	}
	var args [3]int64
	for i := 0; i < 3; i++ {
		args[i], err = strconv.ParseInt(fields[3+i], 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad arg%d: %w", i, err)
		}
	}
	return Event{
		Time:   intToTime(uint64(ts)),
		Kind:   kind,
		Thread: int32(th),
		Arg0:   args[0],
		Arg1:   args[1],
		Arg2:   args[2],
	}, nil
}

func intToTime(v uint64) vtime.Time { return vtime.Time(v) }
