package trace

import (
	"bytes"
	"io"
	"testing"

	"extrap/internal/vtime"
)

// drain streams every event out of a PatternSource.
func drain(t *testing.T, ps *PatternSource) []Event {
	t.Helper()
	var out []Event
	for {
		e, err := ps.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
}

// TestPatternSourceMatchesDecoder: the compiled cursor must stream
// exactly the events the materializing decoder produces, for loopy,
// unminable, and barrier-structured traces alike.
func TestPatternSourceMatchesDecoder(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"loop", makeLoopTrace(4, 30)},
		{"random", makeRandomTrace(500)},
		{"barrier", makeBarrierTrace(4, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := encode2(t, tc.tr)
			want, err := ReadBinaryAny(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			ps, err := NewPatternSource(enc)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, ps)
			if len(got) != len(want.Events) {
				t.Fatalf("cursor produced %d events, decoder %d", len(got), len(want.Events))
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("event %d: cursor %+v, decoder %+v", i, got[i], want.Events[i])
				}
			}
			if hdr := ps.Header(); hdr.NumThreads != want.NumThreads {
				t.Fatalf("header threads = %d, want %d", hdr.NumThreads, want.NumThreads)
			}
		})
	}
}

// TestPatternSourceSkipIterations: skipping k whole body iterations
// mid-repeat must land the cursor exactly where event-by-event replay
// would after producing those k × bodyLen events — every later event
// identical, counters advanced as if produced.
func TestPatternSourceSkipIterations(t *testing.T) {
	enc := encode2(t, makeLoopTrace(4, 40))
	ref, err := NewPatternSource(enc)
	if err != nil {
		t.Fatal(err)
	}
	all := drain(t, ref)

	ps, err := NewPatternSource(enc)
	if err != nil {
		t.Fatal(err)
	}
	var produced int
	const skip = 7
	for {
		if _, bodyLen, repLeft, ok := ps.RepeatState(); ok && repLeft > skip+1 {
			if err := ps.SkipIterations(skip); err != nil {
				t.Fatal(err)
			}
			produced += skip * bodyLen
			break
		}
		if _, err := ps.Next(); err != nil {
			t.Fatalf("never entered a skippable repeat (err %v)", err)
		}
		produced++
	}
	rest := drain(t, ps)
	if got, want := produced+len(rest), len(all); got != want {
		t.Fatalf("skip accounting: produced %d events, want %d", got, want)
	}
	for i, e := range rest {
		if e != all[produced+i] {
			t.Fatalf("event %d after skip: %+v, want %+v", produced+i, e, all[produced+i])
		}
	}

	// Contract: cannot skip the whole remainder, zero, or outside a
	// repeat.
	ps2, _ := NewPatternSource(enc)
	if err := ps2.SkipIterations(1); err == nil {
		t.Fatal("SkipIterations outside a repeat must fail")
	}
}

// TestMinerFindsRotatedLongPeriod reproduces the shape that masked the
// miner before first-occurrence candidates: a loop whose body contains
// a long run of near-identical micro-rows AND whose thread interleaving
// rotates across rounds, so the true period is threads × rows-per-round
// while every window inside the micro-run keeps proposing the tiny
// (unverifiable) period. The miner must still find a long-period repeat
// covering the rotation.
func TestMinerFindsRotatedLongPeriod(t *testing.T) {
	const threads, rounds, reads = 4, 24, 16
	tr := New(threads)
	clock := vtime.Time(0)
	for th := 0; th < threads; th++ {
		tr.Append(Event{Time: clock, Kind: KindThreadStart, Thread: int32(th), Arg0: threads})
	}
	for r := 0; r < rounds; r++ {
		for slot := 0; slot < threads; slot++ {
			th := (r + slot) % threads // rotated schedule
			for j := 0; j < reads; j++ {
				clock += 300
				tr.Append(Event{Time: clock, Kind: KindRemoteRead, Thread: int32(th),
					Arg0: int64((th + 1) % threads), Arg1: 512, Arg2: PackRef(1, int32(th))})
			}
			clock += 100
			tr.Append(Event{Time: clock, Kind: KindBarrierEntry, Thread: int32(th), Arg0: int64(r)})
		}
		for slot := 0; slot < threads; slot++ {
			tr.Append(Event{Time: clock, Kind: KindBarrierExit, Thread: int32((r + slot) % threads), Arg0: int64(r)})
		}
	}
	for th := 0; th < threads; th++ {
		clock += 10
		tr.Append(Event{Time: clock, Kind: KindThreadEnd, Thread: int32(th)})
	}

	// True period: the rotation cycle = threads rounds.
	rowsPerRound := threads*(reads+1) + threads
	period := threads * rowsPerRound

	enc := encode2(t, tr)
	ps, err := NewPatternSource(enc)
	if err != nil {
		t.Fatal(err)
	}
	maxBody := 0
	for {
		if _, err := ps.Next(); err != nil {
			break
		}
		if _, bodyLen, _, ok := ps.RepeatState(); ok && bodyLen > maxBody {
			maxBody = bodyLen
		}
	}
	if maxBody < period {
		t.Fatalf("longest mined body = %d rows; want ≥ the %d-row rotation period "+
			"(micro-run masking regression)", maxBody, period)
	}

	// And the round trip must stay exact.
	back, err := ReadBinaryAny(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrace(t, tr, back)
}
