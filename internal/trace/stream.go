package trace

import (
	"io"

	"extrap/internal/vtime"
)

// Header carries a trace's metadata separate from its event stream: the
// thread count, the per-event instrumentation overhead, and the
// phase-name table. It is everything a streaming consumer needs before
// the first event, and everything the binary codec writes before the
// event records.
type Header struct {
	NumThreads    int
	EventOverhead vtime.Time
	Phases        []string
}

// Reader is a forward-only cursor over an event stream. Next returns
// io.EOF after the last event. Readers are single-consumer: they are not
// safe for concurrent use.
type Reader interface {
	Next() (Event, error)
}

// Writer consumes an event stream one record at a time.
type Writer interface {
	WriteEvent(Event) error
}

// SliceReader adapts an in-memory event slice to the Reader cursor, so
// whole-trace callers and streaming callers share one consumption API.
// The slice is not copied; it must not be mutated while being read.
type SliceReader struct {
	evs []Event
	pos int
}

// NewSliceReader returns a Reader over evs.
func NewSliceReader(evs []Event) *SliceReader { return &SliceReader{evs: evs} }

// Next returns the next event or io.EOF.
func (r *SliceReader) Next() (Event, error) {
	if r.pos >= len(r.evs) {
		return Event{}, io.EOF
	}
	e := r.evs[r.pos]
	r.pos++
	return e, nil
}

// Len reports the number of events remaining.
func (r *SliceReader) Len() int { return len(r.evs) - r.pos }

// Header returns the trace's metadata. The Phases slice is shared, not
// copied.
func (t *Trace) Header() Header {
	return Header{NumThreads: t.NumThreads, EventOverhead: t.EventOverhead, Phases: t.Phases}
}

// Reader returns a cursor over the trace's events.
func (t *Trace) Reader() *SliceReader { return NewSliceReader(t.Events) }

// ReadAll drains r into a slice — the adapter from the streaming world
// back to the in-memory one.
func ReadAll(r Reader) ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// CopyEvents streams every event from r to w and reports how many were
// copied.
func CopyEvents(w Writer, r Reader) (int, error) {
	n := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.WriteEvent(e); err != nil {
			return n, err
		}
		n++
	}
}
