package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"extrap/internal/vtime"
)

// makeLoopTrace builds the shape XTRP2 exists for: threads iterations of
// an identical compute/communicate/barrier epoch, with timestamps and
// barrier ids advancing by constant strides.
func makeLoopTrace(threads, iters int) *Trace {
	t := New(threads)
	t.EventOverhead = 120
	clock := vtime.Time(0)
	for th := 0; th < threads; th++ {
		t.Append(Event{Time: clock, Kind: KindThreadStart, Thread: int32(th), Arg0: int64(threads)})
	}
	for it := 0; it < iters; it++ {
		for th := 0; th < threads; th++ {
			clock += 500
			t.Append(Event{Time: clock, Kind: KindRemoteRead, Thread: int32(th),
				Arg0: int64((th + 1) % threads), Arg1: 4096, Arg2: PackRef(2, int32(th))})
			clock += 200
			t.Append(Event{Time: clock, Kind: KindBarrierEntry, Thread: int32(th), Arg0: int64(it)})
		}
		for th := 0; th < threads; th++ {
			t.Append(Event{Time: clock, Kind: KindBarrierExit, Thread: int32(th), Arg0: int64(it)})
		}
	}
	for th := 0; th < threads; th++ {
		clock += 10
		t.Append(Event{Time: clock, Kind: KindThreadEnd, Thread: int32(th)})
	}
	return t
}

// makeRandomTrace builds an unminable trace: valid kinds and threads but
// random times and args, so everything lands in literal runs.
func makeRandomTrace(n int) *Trace {
	rng := rand.New(rand.NewSource(42))
	t := New(8)
	clock := vtime.Time(0)
	for i := 0; i < n; i++ {
		clock += vtime.Time(rng.Intn(1000))
		t.Append(Event{
			Time:   clock,
			Kind:   Kind(1 + rng.Intn(int(kindCount)-1)),
			Thread: int32(rng.Intn(8)),
			Arg0:   rng.Int63() - rng.Int63(),
			Arg1:   rng.Int63() - rng.Int63(),
			Arg2:   rng.Int63() - rng.Int63(),
		})
	}
	return t
}

func encode2(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary2(&buf, tr); err != nil {
		t.Fatalf("WriteBinary2: %v", err)
	}
	return buf.Bytes()
}

func assertSameTrace(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.NumThreads != want.NumThreads {
		t.Fatalf("NumThreads = %d, want %d", got.NumThreads, want.NumThreads)
	}
	if got.EventOverhead != want.EventOverhead {
		t.Fatalf("EventOverhead = %v, want %v", got.EventOverhead, want.EventOverhead)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("got %d phases, want %d", len(got.Phases), len(want.Phases))
	}
	for i := range want.Phases {
		if got.Phases[i] != want.Phases[i] {
			t.Fatalf("phase %d = %q, want %q", i, got.Phases[i], want.Phases[i])
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestXTRP2RoundTripIdentity(t *testing.T) {
	cases := map[string]*Trace{
		"empty":    New(4),
		"barriers": makeBarrierTrace(4, 3),
		"loop":     makeLoopTrace(8, 200),
		"random":   makeRandomTrace(3000),
	}
	cases["barriers"].PhaseID("init")
	cases["barriers"].PhaseID("solve")
	for name, tr := range cases {
		t.Run(name, func(t *testing.T) {
			enc := encode2(t, tr)
			got, err := ReadBinaryAny(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("ReadBinaryAny: %v", err)
			}
			assertSameTrace(t, tr, got)

			// Re-encoding the decoded trace is byte-stable.
			enc2 := encode2(t, got)
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(enc2))
			}
		})
	}
}

func TestXTRP2RoundTripViaStreamDecoder(t *testing.T) {
	tr := makeLoopTrace(4, 50)
	d, err := NewDecoder2(bytes.NewReader(encode2(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Declared() != uint64(len(tr.Events)) {
		t.Fatalf("Declared() = %d, want %d", d.Declared(), len(tr.Events))
	}
	for i := range tr.Events {
		e, err := d.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, tr.Events[i])
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last event: err = %v, want io.EOF", err)
	}
}

// TestXTRP2CompresssLoopTraces is the codec-level compression check: a
// loop-structured trace must shrink at least 5x against its flat XTRP1
// encoding, and the shrink must come from pattern replay, not luck.
func TestXTRP2CompressesLoopTraces(t *testing.T) {
	tr := makeLoopTrace(16, 500)
	var enc1 bytes.Buffer
	if err := WriteBinary(&enc1, tr); err != nil {
		t.Fatal(err)
	}
	enc2 := encode2(t, tr)
	if ratio := float64(enc1.Len()) / float64(len(enc2)); ratio < 5 {
		t.Fatalf("XTRP2 = %d bytes, XTRP1 = %d bytes: ratio %.1fx < 5x", len(enc2), enc1.Len(), ratio)
	}

	d, err := NewDecoder2(bytes.NewReader(enc2))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.patterns) == 0 {
		t.Fatal("no patterns mined from a loop trace")
	}
	for {
		if _, err := d.Next(); err != nil {
			break
		}
	}
	if d.replayed < d.literal {
		t.Fatalf("replayed %d events, literal %d: loop trace should be replay-dominated", d.replayed, d.literal)
	}
}

// TestXTRP2RandomStaysLiteral: an unminable trace must still round-trip
// and must not pay more than varint overhead over its information
// content (i.e. the encoder never blows up a trace it cannot compress
// beyond the flat record size).
func TestXTRP2RandomNotLarger(t *testing.T) {
	tr := makeRandomTrace(2000)
	var enc1 bytes.Buffer
	if err := WriteBinary(&enc1, tr); err != nil {
		t.Fatal(err)
	}
	enc2 := encode2(t, tr)
	// Worst-case wire rows are ~1 + 5×10 bytes vs 37 flat, but random
	// args here are small-delta-free; allow 1.5x headroom.
	if len(enc2) > enc1.Len()*3/2 {
		t.Fatalf("XTRP2 = %d bytes on random trace, XTRP1 = %d", len(enc2), enc1.Len())
	}
}

func TestNewAnyDecoderDispatchesByMagic(t *testing.T) {
	tr := makeBarrierTrace(4, 2)
	var enc1 bytes.Buffer
	if err := WriteBinary(&enc1, tr); err != nil {
		t.Fatal(err)
	}
	d1, err := NewAnyDecoder(bytes.NewReader(enc1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d1.(*Decoder); !ok {
		t.Fatalf("XTRP1 bytes dispatched to %T", d1)
	}
	d2, err := NewAnyDecoder(bytes.NewReader(encode2(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.(*Decoder2); !ok {
		t.Fatalf("XTRP2 bytes dispatched to %T", d2)
	}
	if _, err := NewAnyDecoder(bytes.NewReader([]byte("XTRP9????"))); err != ErrBadMagic {
		t.Fatalf("unknown magic: err = %v, want ErrBadMagic", err)
	}

	got1, err := ReadBinaryAny(bytes.NewReader(enc1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrace(t, tr, got1)
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"xtrp1": FormatXTRP1, "xtrp2": FormatXTRP2} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseFormat("zip"); err == nil {
		t.Fatal("ParseFormat accepted an unknown format")
	}
}

func TestWriteBinaryFormat(t *testing.T) {
	tr := makeBarrierTrace(2, 1)
	for _, f := range []Format{FormatXTRP1, FormatXTRP2} {
		var buf bytes.Buffer
		if err := WriteBinaryFormat(&buf, tr, f); err != nil {
			t.Fatalf("WriteBinaryFormat(%v): %v", f, err)
		}
		got, err := ReadBinaryAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		assertSameTrace(t, tr, got)
	}
	if err := WriteBinaryFormat(io.Discard, tr, Format(9)); err == nil {
		t.Fatal("WriteBinaryFormat accepted an unknown format")
	}
}

func TestXTRP2EncoderRejectsInvalidEvents(t *testing.T) {
	bad := New(2)
	bad.Append(Event{Time: 1, Kind: 0xee, Thread: 0})
	if err := WriteBinary2(io.Discard, bad); err == nil {
		t.Fatal("encoded an invalid kind")
	}
	bad2 := New(2)
	bad2.Append(Event{Time: 1, Kind: KindThreadStart, Thread: 7})
	if err := WriteBinary2(io.Discard, bad2); err == nil {
		t.Fatal("encoded an out-of-range thread")
	}
}

// --- hostile-input corpus -------------------------------------------------

// hostile2 builds an XTRP2 stream with every length field under the
// attacker's control: header fields, the pattern table, and a raw
// program tail.
func hostile2(threads uint32, nevents uint64, npatterns uint32, tail []byte) []byte {
	var buf bytes.Buffer
	buf.Write(binary2Magic[:])
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], threads)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], 0)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], 0) // nphase
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], nevents)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], npatterns)
	buf.Write(scratch[:4])
	buf.Write(tail)
	return buf.Bytes()
}

func uvarint(v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return b[:binary.PutUvarint(b[:], v)]
}

// wireRow encodes one delta row for hostile test bodies.
func wireRow(kind byte, deltas ...int64) []byte {
	out := []byte{kind}
	for len(deltas) < 5 {
		deltas = append(deltas, 0)
	}
	for _, d := range deltas[:5] {
		out = append(out, uvarint(zigzag(d))...)
	}
	return out
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func TestXTRP2HostileInputs(t *testing.T) {
	start := wireRow(byte(KindThreadStart))
	onePattern := concat(uvarint(1), start) // 1-row pattern table
	cases := map[string][]byte{
		"pattern count past cap": hostile2(4, 0, MaxPatterns+1, nil),
		"truncated table":        hostile2(4, 0, 1000, nil),
		"empty pattern":          hostile2(4, 0, 1, uvarint(0)),
		"pattern rows past cap":  hostile2(4, 0, 1, uvarint(MaxPatternRows+1)),
		"pattern rows truncated": hostile2(4, 0, 1, concat(uvarint(64), start)),
		"pattern invalid kind":   hostile2(4, 0, 1, concat(uvarint(1), wireRow(0xee))),
		"repeat id out of range": hostile2(4, 4, 1,
			concat(onePattern, []byte{opRepeat}, uvarint(7), uvarint(2))),
		// The self-referencing flavor of a cyclic pattern ref: the table
		// has one entry, and the program names the next (nonexistent) id.
		"repeat id cyclic": hostile2(4, 4, 1,
			concat(onePattern, []byte{opRepeat}, uvarint(1), uvarint(2))),
		"repeat count zero": hostile2(4, 4, 1,
			concat(onePattern, []byte{opRepeat}, uvarint(0), uvarint(0))),
		"repeat count overflow": hostile2(4, 4, 1,
			concat(onePattern, []byte{opRepeat}, uvarint(0), uvarint(1<<62))),
		"repeat past declared": hostile2(4, 4, 1,
			concat(onePattern, []byte{opRepeat}, uvarint(0), uvarint(5))),
		"literal count zero": hostile2(4, 4, 0,
			concat([]byte{opLiteral}, uvarint(0))),
		"literal past declared": hostile2(4, 1, 0,
			concat([]byte{opLiteral}, uvarint(2), start, start)),
		"truncated delta block": hostile2(4, 4, 0,
			concat([]byte{opLiteral}, uvarint(4), start)),
		"program truncated": hostile2(4, 4, 0, nil),
		"unknown opcode":    hostile2(4, 4, 0, []byte{0x7f}),
		"literal invalid kind": hostile2(4, 1, 0,
			concat([]byte{opLiteral}, uvarint(1), wireRow(0xee))),
		"thread delta out of range": hostile2(4, 1, 0,
			concat([]byte{opLiteral}, uvarint(1), wireRow(byte(KindThreadStart), 0, 99))),
		"thread delta negative": hostile2(4, 2, 0,
			concat([]byte{opLiteral}, uvarint(2),
				wireRow(byte(KindThreadStart), 0, 1),
				wireRow(byte(KindThreadStart), 0, -2))),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if tr, err := ReadBinaryAny(bytes.NewReader(data)); err == nil {
				t.Fatalf("accepted hostile input: %d events", len(tr.Events))
			}
		})
	}
}

// TestXTRP2HostileAllocationBounded: forged counts must not allocate
// ahead of the bytes actually supplied.
func TestXTRP2HostileAllocationBounded(t *testing.T) {
	cases := map[string][]byte{
		"forged npatterns": hostile2(4, 0, MaxPatterns, nil),
		"forged nrows":     hostile2(4, 0, 1, uvarint(MaxPatternRows)),
		"forged nevents":   hostile2(4, 1<<39, 0, concat([]byte{opLiteral}, uvarint(1<<39))),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			tr, err := ReadBinaryAny(bytes.NewReader(data))
			runtime.ReadMemStats(&after)
			if err == nil {
				t.Fatalf("decoded hostile trace: %d events", len(tr.Events))
			}
			if grown := int64(after.TotalAlloc) - int64(before.TotalAlloc); grown > 1<<20 {
				t.Fatalf("decoding a %d-byte hostile file allocated %d bytes", len(data), grown)
			}
		})
	}
}

// TestXTRP2CountersAdvance: decoding a compressed stream moves the
// process-wide compression telemetry.
func TestXTRP2CountersAdvance(t *testing.T) {
	tr := makeLoopTrace(8, 100)
	before := ReadCompressionCounters()
	enc := encode2(t, tr)
	if _, err := ReadBinaryAny(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	after := ReadCompressionCounters()
	if after.EncodedTraces <= before.EncodedTraces {
		t.Fatal("EncodedTraces did not advance")
	}
	if after.PatternEntries <= before.PatternEntries {
		t.Fatal("PatternEntries did not advance")
	}
	if got := after.ReplayEvents + after.LiteralEvents - before.ReplayEvents - before.LiteralEvents; got != uint64(len(tr.Events)) {
		t.Fatalf("decode counters advanced by %d, want %d", got, len(tr.Events))
	}
	if after.ReplayEvents == before.ReplayEvents {
		t.Fatal("ReplayEvents did not advance on a loop trace")
	}
}
