// Package trace defines the high-level event model of the extrapolation
// system, the in-memory trace container, stream codecs (binary and text),
// and summary statistics.
//
// A trace is the performance information PI of the paper: the ordered
// record of barrier and remote-access interactions of an n-thread program,
// plus the virtual time at which each occurred. The 1-processor
// measurement produces a single merged trace; trace translation produces
// one event list per thread; the simulator emits an extrapolated trace
// with the additional message-level events it models.
package trace

import (
	"fmt"

	"extrap/internal/vtime"
)

// Kind identifies the type of a trace event.
type Kind uint8

// Event kinds. The first group is recorded by the instrumented runtime;
// the second group appears only in extrapolated traces produced by the
// simulator.
const (
	// KindInvalid is the zero Kind and never appears in a valid trace.
	KindInvalid Kind = iota

	// KindThreadStart marks the beginning of a thread's execution.
	// Arg0 = total number of threads in the program.
	KindThreadStart
	// KindThreadEnd marks the end of a thread's execution.
	KindThreadEnd
	// KindBarrierEntry marks a thread arriving at global barrier Arg0.
	KindBarrierEntry
	// KindBarrierExit marks a thread leaving global barrier Arg0.
	KindBarrierExit
	// KindRemoteRead marks a read of a remote collection element.
	// Arg0 = owner thread, Arg1 = transfer size in bytes,
	// Arg2 = collection id (high 32 bits) and element index (low 32 bits).
	KindRemoteRead
	// KindRemoteWrite marks a write to a remote collection element
	// (the §5 extension of the paper). Arguments as for KindRemoteRead.
	KindRemoteWrite
	// KindPhaseBegin marks the start of a named program phase; Arg0 is an
	// index into the trace's phase-name table.
	KindPhaseBegin
	// KindPhaseEnd marks the end of a named program phase.
	KindPhaseEnd

	// KindMsgSend marks a simulated message leaving a processor.
	// Arg0 = destination thread, Arg1 = bytes, Arg2 = message tag.
	KindMsgSend
	// KindMsgRecv marks a simulated message arriving at a processor.
	// Arg0 = source thread, Arg1 = bytes, Arg2 = message tag.
	KindMsgRecv

	kindCount // number of kinds, for validation
)

var kindNames = [...]string{
	KindInvalid:      "invalid",
	KindThreadStart:  "thread-start",
	KindThreadEnd:    "thread-end",
	KindBarrierEntry: "barrier-entry",
	KindBarrierExit:  "barrier-exit",
	KindRemoteRead:   "remote-read",
	KindRemoteWrite:  "remote-write",
	KindPhaseBegin:   "phase-begin",
	KindPhaseEnd:     "phase-end",
	KindMsgSend:      "msg-send",
	KindMsgRecv:      "msg-recv",
}

// String returns the canonical lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined event kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindCount }

// KindFromString is the inverse of Kind.String; ok is false for unknown
// names.
func KindFromString(s string) (k Kind, ok bool) {
	for i, n := range kindNames {
		if n == s && Kind(i) != KindInvalid {
			return Kind(i), true
		}
	}
	return KindInvalid, false
}

// Event is one record in a trace. The meaning of the Arg fields depends on
// Kind (see the Kind constants). Events are small fixed-size values so
// traces of hundreds of thousands of events stay cheap.
type Event struct {
	Time   vtime.Time
	Kind   Kind
	Thread int32
	Arg0   int64
	Arg1   int64
	Arg2   int64
}

// PackRef packs a collection id and element index into a single int64 for
// Arg2 of remote access events.
func PackRef(collection, element int32) int64 {
	return int64(collection)<<32 | int64(uint32(element))
}

// UnpackRef is the inverse of PackRef.
func UnpackRef(ref int64) (collection, element int32) {
	return int32(ref >> 32), int32(uint32(ref))
}

// String renders the event in the text-codec line format.
func (e Event) String() string {
	return fmt.Sprintf("%d %s t%d %d %d %d",
		int64(e.Time), e.Kind, e.Thread, e.Arg0, e.Arg1, e.Arg2)
}

// IsSync reports whether the event is a barrier synchronization event.
// Trace translation treats these specially: their translated timestamps
// are derived from barrier semantics, not from inter-event deltas.
func (e Event) IsSync() bool {
	return e.Kind == KindBarrierEntry || e.Kind == KindBarrierExit
}

// IsRemote reports whether the event is a remote element access.
func (e Event) IsRemote() bool {
	return e.Kind == KindRemoteRead || e.Kind == KindRemoteWrite
}
