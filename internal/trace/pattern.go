package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Pattern-native replay: the XTRP2 pattern table and replay program as a
// first-class IR instead of a transient decoder detail.
//
// Decoder2 interprets the compiled program one event at a time and the
// structure is gone by the time translate/sim see the stream. A
// CompiledTrace keeps it: the pattern table, the per-body delta sums,
// and the op program are parsed once and survive to the simulation
// layer, where a PatternSource cursor replays them. The cursor produces
// the exact event stream Decoder2 produces (same validation, same
// telemetry), but additionally supports O(1) iteration skipping — the
// delta state machine is linear, so advancing k whole body iterations
// is k × (per-body delta sums), whatever mid-body position the cursor
// is at (a full cycle from any rotation sums the same rows).
//
// The ReplayFingerprint machinery at the bottom is the safety net the
// simulator's steady-state fast-forward is built on: every layer of the
// pipeline appends its live state as (class, value) slots, and two
// fingerprints taken m iterations apart must agree exactly on
// structural slots and advance uniformly per timescale on time-like
// slots before any skipping happens.

// CompiledTrace is an eagerly parsed XTRP2 stream: header, pattern
// table, per-pattern delta sums, and the replay program. It is
// immutable after CompileBinary and safe to share across any number of
// concurrently replaying PatternSource cursors.
type CompiledTrace struct {
	hdr      Header
	declare  uint64
	patterns [][]row
	sums     []bodySums
	prog     []compiledOp
}

// compiledOp is one program op with literal rows materialized, so
// replay never re-parses wire bytes.
type compiledOp struct {
	rows  []row // literal run (nil for a repeat op)
	id    uint32
	count uint64
}

// bodySums is the per-iteration advance a pattern body applies to the
// delta state machine: summed over the body's rows, per kind/arg for
// the arg contexts. Rotation-invariant, so it is also the advance of
// one full cycle starting mid-body.
type bodySums struct {
	dTime, dThread int64
	dArgs          [kindCount][3]int64
}

// IsXTRP2 reports whether enc begins with the XTRP2 magic.
func IsXTRP2(enc []byte) bool { return bytes.HasPrefix(enc, binary2Magic[:]) }

// CompileBinary parses a whole XTRP2 stream (magic included) into a
// CompiledTrace. Validation matches Decoder2: the same hardening caps,
// the same op bounds against the declared event count — the difference
// is only when errors surface (compile time instead of first Next).
// Trailing bytes past the program are ignored, as Decoder2 never reads
// them.
func CompileBinary(r io.Reader) (*CompiledTrace, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binary2Magic {
		return nil, ErrBadMagic
	}
	// The header and pattern table are bit-identical to the streaming
	// decoder's; reuse its parser and take ownership of the table.
	d, err := newDecoder2AfterMagic(br)
	if err != nil {
		return nil, err
	}
	ct := &CompiledTrace{hdr: d.hdr, declare: d.declare, patterns: d.patterns}
	ct.sums = make([]bodySums, len(ct.patterns))
	for i, body := range ct.patterns {
		s := &ct.sums[i]
		for j := range body {
			rw := &body[j]
			s.dTime += rw.dTime
			s.dThread += rw.dThread
			s.dArgs[rw.kind][0] += rw.dA0
			s.dArgs[rw.kind][1] += rw.dA1
			s.dArgs[rw.kind][2] += rw.dA2
		}
	}

	produced := uint64(0)
	for produced < ct.declare {
		opc, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("trace: event %d: %w", produced, err)
		}
		switch opc {
		case opLiteral:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: literal run: %w", produced, eofErr(err))
			}
			if n == 0 {
				return nil, fmt.Errorf("trace: event %d: empty literal run", produced)
			}
			if n > ct.declare-produced {
				return nil, fmt.Errorf("trace: event %d: literal run of %d exceeds declared %d events", produced, n, ct.declare)
			}
			// Rows come from bytes actually read (≥ 6 each on the wire),
			// so append regrowth — never a forged count — drives the
			// allocation, same discipline as the pattern-table parser.
			prealloc := n
			if prealloc > 256 {
				prealloc = 256
			}
			rows := make([]row, 0, prealloc)
			for j := uint64(0); j < n; j++ {
				rw, err := readWireRow(br)
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: %w", produced+j, eofErr(err))
				}
				rows = append(rows, rw)
			}
			ct.prog = append(ct.prog, compiledOp{rows: rows})
			produced += n
		case opRepeat:
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: repeat op: %w", produced, eofErr(err))
			}
			if id >= uint64(len(ct.patterns)) {
				return nil, fmt.Errorf("trace: event %d: repeat references pattern %d of %d", produced, id, len(ct.patterns))
			}
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: repeat op: %w", produced, eofErr(err))
			}
			body := ct.patterns[id]
			if count == 0 {
				return nil, fmt.Errorf("trace: event %d: repeat count 0", produced)
			}
			if count > MaxEvents || count*uint64(len(body)) > ct.declare-produced {
				return nil, fmt.Errorf("trace: event %d: repeat of %d×%d rows exceeds declared %d events", produced, count, len(body), ct.declare)
			}
			ct.prog = append(ct.prog, compiledOp{id: uint32(id), count: count})
			produced += count * uint64(len(body))
		default:
			return nil, fmt.Errorf("trace: event %d: unknown opcode %#x", produced, opc)
		}
	}
	return ct, nil
}

// Header returns the trace metadata.
func (ct *CompiledTrace) Header() Header { return ct.hdr }

// Events returns the declared event count.
func (ct *CompiledTrace) Events() uint64 { return ct.declare }

// Patterns returns the pattern-table entry count.
func (ct *CompiledTrace) Patterns() int { return len(ct.patterns) }

// Ops returns the replay-program op count.
func (ct *CompiledTrace) Ops() int { return len(ct.prog) }

// Source returns a fresh replay cursor over the compiled trace.
func (ct *CompiledTrace) Source() *PatternSource {
	return &PatternSource{ct: ct}
}

// PatternSource replays a CompiledTrace as a validated event stream. It
// implements StreamDecoder and produces byte-for-byte the events (and
// process-wide codec telemetry) Decoder2 produces from the same bytes,
// while exposing the loop structure — the active repeat op, completed
// iteration count, and O(1) SkipIterations — to the simulator's
// steady-state fast-forward.
type PatternSource struct {
	ct       *CompiledTrace
	st       deltaState
	produced uint64
	opIdx    int

	lit    []row // active literal run
	litPos int

	body    []row // active repeat body
	bodyID  uint32
	bodyPos int
	repLeft uint64 // replays still owed, including the current one

	iters    uint64 // completed body iterations across all repeat ops
	replayed uint64
	literal  uint64
	flushed  bool
	err      error
}

// NewPatternSource compiles enc (XTRP2 bytes) and returns a replay
// cursor over it.
func NewPatternSource(enc []byte) (*PatternSource, error) {
	ct, err := CompileBinary(bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	return ct.Source(), nil
}

// Header returns the decoded trace metadata.
func (c *PatternSource) Header() Header { return c.ct.hdr }

// Declared returns the event count the header claims.
func (c *PatternSource) Declared() uint64 { return c.ct.declare }

// Next returns the next event, io.EOF after the declared count, or a
// validation error. The error is sticky.
func (c *PatternSource) Next() (Event, error) {
	if c.err != nil {
		return Event{}, c.err
	}
	var r *row
	switch {
	case c.body != nil:
		r = &c.body[c.bodyPos]
		if c.bodyPos++; c.bodyPos == len(c.body) {
			c.bodyPos = 0
			c.iters++
			if c.repLeft--; c.repLeft == 0 {
				c.body = nil
				c.opIdx++
			}
		}
		c.replayed++
	case c.lit != nil:
		r = &c.lit[c.litPos]
		if c.litPos++; c.litPos == len(c.lit) {
			c.lit, c.litPos = nil, 0
			c.opIdx++
		}
		c.literal++
	default:
		if c.produced == c.ct.declare {
			c.err = io.EOF
			c.flushCounters()
			return Event{}, c.err
		}
		op := &c.ct.prog[c.opIdx]
		if op.rows != nil {
			c.lit, c.litPos = op.rows, 0
		} else {
			c.body, c.bodyID, c.bodyPos, c.repLeft = c.ct.patterns[op.id], op.id, 0, op.count
		}
		return c.Next()
	}
	e := c.st.apply(r)
	if e.Thread < 0 || int(e.Thread) >= c.ct.hdr.NumThreads {
		c.err = fmt.Errorf("trace: event %d thread %d out of range [0,%d)", c.produced, e.Thread, c.ct.hdr.NumThreads)
		return Event{}, c.err
	}
	c.produced++
	return e, nil
}

// flushCounters publishes this cursor's replay/literal split to the
// process-wide codec telemetry, exactly once (same contract as
// Decoder2, so replay-mode and event-mode runs report identical
// compression counters).
func (c *PatternSource) flushCounters() {
	if c.flushed {
		return
	}
	c.flushed = true
	compReplayEvents.Add(c.replayed)
	compLiteralEvents.Add(c.literal)
}

// IterationsCompleted counts completed repeat-body iterations across
// the whole replay — the fast-forward orchestrator's progress clock.
func (c *PatternSource) IterationsCompleted() uint64 { return c.iters }

// RepeatState reports the active repeat op: its program index, body
// length, and iterations still owed (including the current one). ok is
// false outside a repeat op.
func (c *PatternSource) RepeatState() (opIdx, bodyLen int, repLeft uint64, ok bool) {
	if c.body == nil {
		return 0, 0, 0, false
	}
	return c.opIdx, len(c.body), c.repLeft, true
}

// SkipIterations advances the replay k whole body iterations in O(1):
// the delta state machine is linear, so k iterations from any mid-body
// position add exactly k × (per-body delta sums). The skipped events
// are accounted to the replay telemetry as if produced, keeping
// compression counters identical to event-by-event replay. At least
// one iteration of the active repeat must remain after the skip.
func (c *PatternSource) SkipIterations(k uint64) error {
	if c.body == nil || k == 0 || k >= c.repLeft {
		return fmt.Errorf("trace: cannot skip %d iterations (repeat has %d left)", k, c.repLeft)
	}
	s := &c.ct.sums[c.bodyID]
	kk := int64(k)
	c.st.prevTime += kk * s.dTime
	c.st.prevThread += kk * s.dThread
	for kind := range c.st.args {
		for a := range c.st.args[kind] {
			c.st.args[kind][a] += kk * s.dArgs[kind][a]
		}
	}
	c.repLeft -= k
	n := k * uint64(len(c.body))
	c.produced += n
	c.replayed += n
	c.iters += k
	return nil
}

// AppendFingerprint pushes the decoder state's live slots: program
// position and delta-machine registers. prevTime advances on the
// measured (original) timescale; the per-kind barrier-id arg contexts
// advance on the barrier-id scale; everything else must be exactly
// periodic.
func (c *PatternSource) AppendFingerprint(fp *ReplayFingerprint) {
	fp.Push(FPExact, int64(c.opIdx))
	fp.Push(FPExact, int64(c.bodyPos))
	fp.Push(FPExact, c.st.prevThread)
	fp.Push(FPOrig, c.st.prevTime)
	for k := range c.st.args {
		barArg0 := Kind(k) == KindBarrierEntry || Kind(k) == KindBarrierExit
		for a := range c.st.args[k] {
			cls := FPExact
			if a == 0 && barArg0 {
				cls = FPBarID
			}
			fp.Push(cls, c.st.args[k][a])
		}
	}
}

// --- replay fingerprints ------------------------------------------------------

// Fingerprint slot classes. A slot's class says how its value may
// evolve between two snapshots taken a fixed number of pattern
// iterations apart while the system is in steady state:
//
//   - FPExact: structural state — must not change at all (thread ids,
//     kinds, queue shapes, slab indices, flags, dead-state sentinels).
//   - FPSim / FPTrans / FPOrig / FPBarID: time-like state on one of the
//     pipeline's four timescales (simulated clock, translated clock,
//     measured clock, dense barrier ids). All slots of one class must
//     advance by one shared non-negative stride — the uniform shift the
//     engine's dynamics are invariant under.
//   - FPBarT / FPBarS: time fields inside the sliding window of recent
//     barrier records (translated-scale in translate, simulated-scale
//     in the kernel). They get their own learned strides because the
//     window slides in a steady barrier loop (slot w names barrier
//     id+Δ at the next snapshot, so values advance with the clock) but
//     freezes in a barrier-free loop (same ids, values frozen, stride
//     0) — either is a valid steady state, a mix is not.
//   - FPAccum: write-only accumulators (statistics, counters) that
//     never feed back into behavior. Any per-slot stride is accepted
//     and extrapolated linearly on skip.
const (
	FPExact uint8 = iota
	FPSim
	FPTrans
	FPOrig
	FPBarID
	FPBarT
	FPBarS
	FPAccum

	fpClassCount
)

// ReplayFingerprint is one snapshot of the pipeline's live state as
// parallel (class, value) slots, assembled in a deterministic traversal
// order by each layer's AppendFingerprint.
type ReplayFingerprint struct {
	cls  []uint8
	vals []int64
	max  [fpClassCount]int64
}

// Reset clears the fingerprint for reuse, keeping capacity.
func (f *ReplayFingerprint) Reset() {
	f.cls = f.cls[:0]
	f.vals = f.vals[:0]
	f.max = [fpClassCount]int64{}
}

// Push appends one slot.
func (f *ReplayFingerprint) Push(cls uint8, v int64) {
	f.cls = append(f.cls, cls)
	f.vals = append(f.vals, v)
	if v > f.max[cls] {
		f.max[cls] = v
	}
}

// PushBool appends a structural flag slot.
func (f *ReplayFingerprint) PushBool(v bool) {
	b := int64(0)
	if v {
		b = 1
	}
	f.Push(FPExact, b)
}

// Len returns the slot count.
func (f *ReplayFingerprint) Len() int { return len(f.vals) }

// ReplayDeltas is the per-chunk advance learned from two matching
// fingerprints: one stride per timescale plus the per-slot strides of
// the accumulator slots, in traversal order.
type ReplayDeltas struct {
	Sim, Trans, Orig, Bar int64
	BarT, BarS            int64
	accum                 []int64
	pos                   int
}

// ResetAccum rewinds the accumulator-stride cursor; each shift
// traversal consumes strides in the same order the fingerprint
// traversal pushed them.
func (d *ReplayDeltas) ResetAccum() { d.pos = 0 }

// NextAccum pops the next accumulator stride.
func (d *ReplayDeltas) NextAccum() int64 {
	v := d.accum[d.pos]
	d.pos++
	return v
}

// DiffFingerprints compares two snapshots taken a fixed iteration
// stride apart and, when the state trajectory is a pure per-timescale
// time shift, fills d with the learned strides and reports true. Any
// structural change, class disagreement, negative or non-uniform
// timescale stride reports false — the caller must fall back to
// event-by-event replay.
func DiffFingerprints(prev, curr *ReplayFingerprint, d *ReplayDeltas) bool {
	if len(prev.vals) != len(curr.vals) {
		return false
	}
	var have [fpClassCount]bool
	d.Sim, d.Trans, d.Orig, d.Bar = 0, 0, 0, 0
	d.BarT, d.BarS = 0, 0
	d.accum = d.accum[:0]
	d.pos = 0
	for i, pv := range prev.vals {
		cls := prev.cls[i]
		if cls != curr.cls[i] {
			return false
		}
		delta := curr.vals[i] - pv
		switch cls {
		case FPExact:
			if delta != 0 {
				return false
			}
		case FPAccum:
			d.accum = append(d.accum, delta)
		default:
			if delta < 0 {
				return false
			}
			p := d.class(cls)
			if !have[cls] {
				*p, have[cls] = delta, true
			} else if *p != delta {
				return false
			}
		}
	}
	return true
}

func (d *ReplayDeltas) class(cls uint8) *int64 {
	switch cls {
	case FPSim:
		return &d.Sim
	case FPTrans:
		return &d.Trans
	case FPOrig:
		return &d.Orig
	case FPBarID:
		return &d.Bar
	case FPBarT:
		return &d.BarT
	case FPBarS:
		return &d.BarS
	}
	panic("trace: not a timescale class")
}

// MaxShiftChunks bounds how many chunks may be skipped before any
// fingerprinted time-like slot would cross 2^62 — far past any real
// virtual time, and low enough that the shift arithmetic (and every
// comparison downstream of it) can never wrap int64. curr must be the
// later of the two fingerprints d was derived from.
func MaxShiftChunks(curr *ReplayFingerprint, d *ReplayDeltas) uint64 {
	const ceiling = int64(1) << 62
	limit := uint64(MaxEvents)
	for cls, stride := range map[uint8]int64{
		FPSim: d.Sim, FPTrans: d.Trans, FPOrig: d.Orig, FPBarID: d.Bar,
		FPBarT: d.BarT, FPBarS: d.BarS,
	} {
		if stride <= 0 {
			continue
		}
		headroom := ceiling - curr.max[cls]
		if headroom <= 0 {
			return 0
		}
		if j := uint64(headroom / stride); j < limit {
			limit = j
		}
	}
	return limit
}
