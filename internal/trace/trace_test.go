package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"extrap/internal/vtime"
)

// makeBarrierTrace builds a well-formed measurement trace: n threads, b
// barriers, with per-thread compute gaps and one remote read between
// consecutive barriers.
func makeBarrierTrace(n, b int) *Trace {
	t := New(n)
	clock := vtime.Time(0)
	for th := 0; th < n; th++ {
		t.Append(Event{Time: clock, Kind: KindThreadStart, Thread: int32(th), Arg0: int64(n)})
	}
	for bar := 0; bar < b; bar++ {
		for th := 0; th < n; th++ {
			clock += vtime.Time(100 * (th + 1))
			t.Append(Event{Time: clock, Kind: KindRemoteRead, Thread: int32(th),
				Arg0: int64((th + 1) % n), Arg1: 64, Arg2: PackRef(1, int32(bar))})
			clock += 50
			t.Append(Event{Time: clock, Kind: KindBarrierEntry, Thread: int32(th), Arg0: int64(bar)})
		}
		for th := 0; th < n; th++ {
			t.Append(Event{Time: clock, Kind: KindBarrierExit, Thread: int32(th), Arg0: int64(bar)})
		}
	}
	for th := 0; th < n; th++ {
		clock += 10
		t.Append(Event{Time: clock, Kind: KindThreadEnd, Thread: int32(th)})
	}
	return t
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := makeBarrierTrace(4, 3)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate() = %v on well-formed trace", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	base := makeBarrierTrace(2, 1)
	mutations := map[string]func(*Trace){
		"time regression": func(tr *Trace) {
			tr.Events[3].Time = 0
			tr.Events[2].Time = 1e9
		},
		"thread out of range": func(tr *Trace) { tr.Events[0].Thread = 99 },
		"invalid kind":        func(tr *Trace) { tr.Events[0].Kind = Kind(200) },
		"double entry": func(tr *Trace) {
			for i := range tr.Events {
				if tr.Events[i].Kind == KindBarrierExit {
					tr.Events[i].Kind = KindBarrierEntry
					break
				}
			}
		},
		"exit without entry": func(tr *Trace) {
			for i := range tr.Events {
				if tr.Events[i].Kind == KindBarrierEntry {
					tr.Events[i].Kind = KindRemoteRead
					tr.Events[i].Arg1 = 8
					break
				}
			}
		},
		"negative transfer size": func(tr *Trace) {
			for i := range tr.Events {
				if tr.Events[i].Kind == KindRemoteRead {
					tr.Events[i].Arg1 = -5
					break
				}
			}
		},
		"owner out of range": func(tr *Trace) {
			for i := range tr.Events {
				if tr.Events[i].Kind == KindRemoteRead {
					tr.Events[i].Arg0 = 57
					break
				}
			}
		},
	}
	for name, mutate := range mutations {
		tr := base.Clone()
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted malformed trace", name)
		}
	}
}

func TestValidateRejectsUnbalancedBarriers(t *testing.T) {
	tr := New(2)
	tr.Append(Event{Time: 0, Kind: KindBarrierEntry, Thread: 0, Arg0: 0})
	tr.Append(Event{Time: 1, Kind: KindBarrierExit, Thread: 0, Arg0: 0})
	// Thread 1 never participates in barrier 0.
	if err := tr.Validate(); err == nil {
		t.Error("Validate() accepted trace where threads completed different barrier counts")
	}
}

func TestPerThread(t *testing.T) {
	tr := makeBarrierTrace(3, 2)
	per := tr.PerThread()
	if len(per) != 3 {
		t.Fatalf("PerThread() returned %d lists", len(per))
	}
	total := 0
	for th, evs := range per {
		total += len(evs)
		var last vtime.Time
		for _, e := range evs {
			if int(e.Thread) != th {
				t.Fatalf("thread %d list contains event of thread %d", th, e.Thread)
			}
			if e.Time < last {
				t.Fatalf("per-thread order broken")
			}
			last = e.Time
		}
	}
	if total != len(tr.Events) {
		t.Fatalf("PerThread dropped events: %d != %d", total, len(tr.Events))
	}
}

func TestPhaseInterning(t *testing.T) {
	tr := New(1)
	a := tr.PhaseID("init")
	b := tr.PhaseID("solve")
	a2 := tr.PhaseID("init")
	if a != a2 {
		t.Errorf("PhaseID not idempotent: %d vs %d", a, a2)
	}
	if a == b {
		t.Errorf("distinct phases share id %d", a)
	}
	if tr.PhaseName(a) != "init" || tr.PhaseName(b) != "solve" {
		t.Error("PhaseName mismatch")
	}
	if !strings.Contains(tr.PhaseName(99), "99") {
		t.Error("unknown phase name should embed id")
	}
}

func TestPackUnpackRef(t *testing.T) {
	f := func(c, e int32) bool {
		gc, ge := UnpackRef(PackRef(c, e))
		return gc == c && ge == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	tr := makeBarrierTrace(4, 5)
	s := ComputeStats(tr)
	if s.Barriers != 5 {
		t.Errorf("Barriers = %d, want 5", s.Barriers)
	}
	if s.RemoteReads != 4*5 {
		t.Errorf("RemoteReads = %d, want 20", s.RemoteReads)
	}
	if s.RemoteBytes != 4*5*64 {
		t.Errorf("RemoteBytes = %d, want %d", s.RemoteBytes, 4*5*64)
	}
	if s.Events != len(tr.Events) {
		t.Errorf("Events = %d, want %d", s.Events, len(tr.Events))
	}
	if s.Duration != tr.Duration() {
		t.Errorf("Duration = %v, want %v", s.Duration, tr.Duration())
	}
	// Remote accesses rotate owners evenly in the fixture.
	for o, c := range s.RemoteByOwner {
		if c != 5 {
			t.Errorf("RemoteByOwner[%d] = %d, want 5", o, c)
		}
	}
	if !strings.Contains(s.String(), "barriers=5") {
		t.Errorf("Stats.String() = %q missing barrier count", s.String())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := makeBarrierTrace(8, 4)
	tr.EventOverhead = 250
	tr.PhaseID("setup")
	tr.PhaseID("solve phase")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertTraceEqual(t, tr, got)
}

func TestTextRoundTrip(t *testing.T) {
	tr := makeBarrierTrace(3, 2)
	tr.EventOverhead = 100
	tr.PhaseID("multi word phase")
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v\ninput:\n%s", err, buf.String())
	}
	assertTraceEqual(t, tr, got)
}

func assertTraceEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.NumThreads != want.NumThreads {
		t.Fatalf("NumThreads = %d, want %d", got.NumThreads, want.NumThreads)
	}
	if got.EventOverhead != want.EventOverhead {
		t.Fatalf("EventOverhead = %v, want %v", got.EventOverhead, want.EventOverhead)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("Phases = %v, want %v", got.Phases, want.Phases)
	}
	for i := range want.Phases {
		if got.Phases[i] != want.Phases[i] {
			t.Fatalf("Phases[%d] = %q, want %q", i, got.Phases[i], want.Phases[i])
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("len(Events) = %d, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("Events[%d] = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("ReadBinary accepted garbage")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("ReadBinary accepted empty input")
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"#threads 2\n12 not-a-kind t0 0 0 0\n",
		"#threads 2\n12 barrier-entry x0 0 0 0\n",
		"#threads 2\nabc barrier-entry t0 0 0 0\n",
		"#threads 2\n12 barrier-entry t0 0 0\n",
		"0 barrier-entry t0 0 0 0\n", // no #threads header
	}
	for i, s := range bad {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: ReadText accepted %q", i, s)
		}
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(times []uint32, kinds []uint8, threads []uint8) bool {
		n := len(times)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(threads) < n {
			n = len(threads)
		}
		tr := New(256)
		var clock vtime.Time
		for i := 0; i < n; i++ {
			clock += vtime.Time(times[i] % 10000)
			k := Kind(kinds[i]%uint8(kindCount-1)) + 1
			tr.Append(Event{
				Time: clock, Kind: k, Thread: int32(threads[i]),
				Arg0: int64(times[i]), Arg1: int64(kinds[i]), Arg2: int64(threads[i]),
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindThreadStart; k < kindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString accepted bogus name")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestSortByTimeStable(t *testing.T) {
	tr := New(2)
	tr.Append(Event{Time: 10, Kind: KindBarrierEntry, Thread: 0})
	tr.Append(Event{Time: 5, Kind: KindRemoteRead, Thread: 1, Arg1: 1})
	tr.Append(Event{Time: 10, Kind: KindBarrierEntry, Thread: 1})
	tr.SortByTime()
	if tr.Events[0].Time != 5 {
		t.Fatal("sort did not order by time")
	}
	if tr.Events[1].Thread != 0 || tr.Events[2].Thread != 1 {
		t.Fatal("sort not stable for equal timestamps")
	}
}

func TestDurationEmpty(t *testing.T) {
	if New(1).Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestWriteSDDF(t *testing.T) {
	tr := makeBarrierTrace(3, 2)
	tr.PhaseID("solve")
	var buf bytes.Buffer
	if err := WriteSDDF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"SDDF-A", `"barrier-entry" {`, `"remote-read" {`,
		`double	"timestamp";`, "};;", "/* phase 0: solve */",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SDDF missing %q", want)
		}
	}
	// One data record per event.
	records := strings.Count(out, " };;")
	if records != len(tr.Events) {
		t.Errorf("SDDF has %d data records, want %d", records, len(tr.Events))
	}
}

func TestEventClassifiers(t *testing.T) {
	if !(Event{Kind: KindBarrierEntry}).IsSync() || !(Event{Kind: KindBarrierExit}).IsSync() {
		t.Error("barrier events must be sync")
	}
	if (Event{Kind: KindRemoteRead}).IsSync() {
		t.Error("remote read is not sync")
	}
	if !(Event{Kind: KindRemoteRead}).IsRemote() || !(Event{Kind: KindRemoteWrite}).IsRemote() {
		t.Error("remote events must be remote")
	}
	if (Event{Kind: KindMsgSend}).IsRemote() {
		t.Error("msg-send is not a remote element access")
	}
}

func TestStatsCountsWritesAndMsgs(t *testing.T) {
	tr := New(2)
	tr.Append(Event{Time: 0, Kind: KindRemoteWrite, Thread: 0, Arg0: 1, Arg1: 32})
	tr.Append(Event{Time: 1, Kind: KindMsgSend, Thread: 0, Arg0: 1, Arg1: 100})
	tr.Append(Event{Time: 2, Kind: KindMsgRecv, Thread: 1, Arg0: 0, Arg1: 100})
	s := ComputeStats(tr)
	if s.RemoteWrites != 1 || s.RemoteBytes != 32 {
		t.Errorf("writes=%d bytes=%d", s.RemoteWrites, s.RemoteBytes)
	}
	if s.MsgSends != 1 || s.MsgBytes != 100 {
		t.Errorf("msgs=%d bytes=%d", s.MsgSends, s.MsgBytes)
	}
	if !strings.Contains(s.String(), "msgs=1") {
		t.Errorf("String() = %q", s.String())
	}
}
