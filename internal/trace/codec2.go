package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"extrap/internal/vtime"
)

// XTRP2: a loop-compacted binary trace format.
//
// The measured traces of data-parallel programs are overwhelmingly
// repeated per-iteration subsequences — the same compute/communicate/
// barrier pattern, iteration after iteration, with timestamps and
// barrier ids advancing by constant strides. XTRP2 exploits that
// redundancy in two layers:
//
//  1. Delta rows. Each event is rewritten as a delta row: the kind byte
//     plus five zigzag varints — the time and thread deltas against the
//     previous event in the merged stream, and the three arg deltas
//     against the previous event OF THE SAME KIND. The per-kind arg
//     context turns "barrier id increments every iteration" and "same
//     remote-access pattern every iteration" into rows that are
//     byte-identical across iterations.
//  2. Loop detection. A rolling-hash pattern miner finds maximal runs
//     where a block of p delta rows repeats c times, hoists the block
//     into a pattern table, and replaces the run with repeat(id, c).
//
// Wire layout (integers little-endian, varints as encoding/binary):
//
//	magic     [5]byte  "XTRP2"
//	threads   uint32
//	ovh       int64    per-event instrumentation overhead (ns)
//	nphase    uint32
//	phases    nphase × (uint16 length, bytes)
//	nevents   uint64
//	npattern  uint32
//	patterns  npattern × (uvarint nrows, nrows × row)
//	program   ops until nevents rows have been produced:
//	            0x00 uvarint count, count × row   (literal run)
//	            0x01 uvarint id, uvarint count    (replay pattern id count times)
//	row       uint8 kind, 5 × zigzag-uvarint (dtime, dthread, darg0..2)
//
// The header through nevents is bit-identical to XTRP1's, so the two
// formats share one header parser and differ only past the event count.
//
// Decoding applies the same delta state machine in reverse, replaying
// pattern bodies from a pre-parsed row buffer — each replayed event
// costs a few integer adds instead of a varint re-parse. The transform
// is exactly invertible for every event stream the XTRP1 decoder
// accepts, so predictions computed from either encoding of the same
// trace are byte-identical.

var binary2Magic = [5]byte{'X', 'T', 'R', 'P', '2'}

// Hardening limits for the XTRP2 format, in the same spirit as the
// XTRP1 caps: no allocation is proportional to a declared count until
// the corresponding bytes have been read, and every cap bounds the
// memory amplification a hostile stream can achieve.
const (
	// MaxPatterns bounds the pattern-table entry count.
	MaxPatterns = 1 << 16
	// MaxPatternRows bounds the rows of a single pattern body. Real loop
	// periods can be large: a barrier loop's merged row period is
	// threads × per-thread rows, multiplied again when the scheduler
	// rotates thread order across iterations (16 threads × 17 rows × a
	// 16-round rotation ≈ 4.4k rows), so the cap leaves headroom above
	// that while still bounding a hostile stream's allocation.
	MaxPatternRows = 1 << 14
	// MaxPatternTableRows bounds the cumulative rows across all pattern
	// bodies. Rows are parsed incrementally from actual input bytes (≥ 6
	// bytes each on the wire), so reaching the cap requires a
	// proportionally large input; the cap bounds the decoded table at a
	// few tens of MiB regardless of what the header claims.
	MaxPatternTableRows = 1 << 20
)

// row is one pre-parsed delta row: the compiled form a pattern body is
// decoded into once and replayed from per iteration.
type row struct {
	kind                          Kind
	dTime, dThread, dA0, dA1, dA2 int64
}

// deltaState is the shared encoder/decoder state machine of the delta
// transform. Arg deltas are tracked per kind so structurally identical
// loop iterations produce identical rows.
type deltaState struct {
	prevTime   int64
	prevThread int64
	args       [kindCount][3]int64
}

// rowOf computes the delta row for e and advances the state.
func (s *deltaState) rowOf(e *Event) row {
	a := &s.args[e.Kind]
	r := row{
		kind:    e.Kind,
		dTime:   int64(e.Time) - s.prevTime,
		dThread: int64(e.Thread) - s.prevThread,
		dA0:     e.Arg0 - a[0],
		dA1:     e.Arg1 - a[1],
		dA2:     e.Arg2 - a[2],
	}
	s.prevTime = int64(e.Time)
	s.prevThread = int64(e.Thread)
	a[0], a[1], a[2] = e.Arg0, e.Arg1, e.Arg2
	return r
}

// apply reconstructs the event a row encodes and advances the state.
// The thread id is validated by the caller (it is delta-dependent, so
// it cannot be checked at parse time the way the kind byte is).
func (s *deltaState) apply(r *row) Event {
	a := &s.args[r.kind]
	e := Event{
		Time:   vtime.Time(s.prevTime + r.dTime),
		Kind:   r.kind,
		Thread: int32(s.prevThread + r.dThread),
		Arg0:   a[0] + r.dA0,
		Arg1:   a[1] + r.dA1,
		Arg2:   a[2] + r.dA2,
	}
	s.prevTime = int64(e.Time)
	s.prevThread = s.prevThread + r.dThread
	a[0], a[1], a[2] = e.Arg0, e.Arg1, e.Arg2
	return e
}

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Compression telemetry, accumulated across every XTRP2 encode and
// decode in the process (flushed once per decoder at stream end).
var (
	compEncodedTraces  atomic.Uint64
	compPatternEntries atomic.Uint64
	compReplayEvents   atomic.Uint64
	compLiteralEvents  atomic.Uint64
)

// CompressionCounters is a snapshot of process-wide XTRP2 codec
// telemetry: how much encoding has happened, how large the mined
// pattern tables were, and how decode work split between compiled
// pattern replay and literal row parsing.
type CompressionCounters struct {
	// EncodedTraces counts completed XTRP2 encodes.
	EncodedTraces uint64
	// PatternEntries counts pattern-table entries written by encoders.
	PatternEntries uint64
	// ReplayEvents counts events produced by compiled pattern replay.
	ReplayEvents uint64
	// LiteralEvents counts events decoded from literal runs.
	LiteralEvents uint64
}

// ReadCompressionCounters returns the current codec telemetry.
func ReadCompressionCounters() CompressionCounters {
	return CompressionCounters{
		EncodedTraces:  compEncodedTraces.Load(),
		PatternEntries: compPatternEntries.Load(),
		ReplayEvents:   compReplayEvents.Load(),
		LiteralEvents:  compLiteralEvents.Load(),
	}
}

// Format identifies a binary trace encoding.
type Format uint8

const (
	// FormatXTRP1 is the flat fixed-record format (37 bytes/event).
	FormatXTRP1 Format = 1
	// FormatXTRP2 is the loop-compacted delta format.
	FormatXTRP2 Format = 2
)

// String returns the canonical lower-case format name.
func (f Format) String() string {
	switch f {
	case FormatXTRP1:
		return "xtrp1"
	case FormatXTRP2:
		return "xtrp2"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// ParseFormat parses a format name as accepted by -trace-format flags.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "xtrp1", "XTRP1":
		return FormatXTRP1, nil
	case "xtrp2", "XTRP2":
		return FormatXTRP2, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want xtrp1 or xtrp2)", s)
}

// WriteBinaryFormat encodes the trace to w in the requested format.
func WriteBinaryFormat(w io.Writer, t *Trace, f Format) error {
	switch f {
	case FormatXTRP1:
		return WriteBinary(w, t)
	case FormatXTRP2:
		return WriteBinary2(w, t)
	}
	return fmt.Errorf("trace: unknown format %d", uint8(f))
}

// StreamDecoder is the reading side shared by the format decoders: the
// header, the (untrusted) declared event count, and a validated event
// cursor. Both *Decoder and *Decoder2 implement it.
type StreamDecoder interface {
	Header() Header
	Declared() uint64
	Reader
}

// NewAnyDecoder reads the magic from r and returns the matching format
// decoder, so consumers accept XTRP1 and XTRP2 streams transparently.
func NewAnyDecoder(r io.Reader) (StreamDecoder, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	switch magic {
	case binaryMagic:
		return newDecoderAfterMagic(br)
	case binary2Magic:
		return newDecoder2AfterMagic(br)
	}
	return nil, ErrBadMagic
}

// ReadBinaryAny decodes a whole trace of either binary format from r
// into memory, with the same allocation discipline as ReadBinary.
func ReadBinaryAny(r io.Reader) (*Trace, error) {
	d, err := NewAnyDecoder(r)
	if err != nil {
		return nil, err
	}
	hdr := d.Header()
	t := &Trace{
		NumThreads:    hdr.NumThreads,
		EventOverhead: hdr.EventOverhead,
		Phases:        hdr.Phases,
	}
	prealloc := d.Declared()
	if prealloc > readPrealloc {
		prealloc = readPrealloc
	}
	if d1, ok := d.(*Decoder); ok {
		t.Events, err = d1.appendAll(make([]Event, 0, prealloc))
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	evs := make([]Event, 0, prealloc)
	for {
		e, err := d.Next()
		if err == io.EOF {
			t.Events = evs
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		evs = append(evs, e)
	}
}

// readCommonHeader parses the header fields shared by XTRP1 and XTRP2
// (everything between the magic and the event records) with the XTRP1
// hardening rules.
func readCommonHeader(br *bufio.Reader) (Header, uint64, error) {
	var hdr Header
	var fixed [16]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return hdr, 0, err
	}
	nthreads := binary.LittleEndian.Uint32(fixed[:4])
	if nthreads > MaxThreads {
		return hdr, 0, fmt.Errorf("trace: implausible thread count %d (max %d)", nthreads, MaxThreads)
	}
	hdr.NumThreads = int(nthreads)
	hdr.EventOverhead = intToTime(binary.LittleEndian.Uint64(fixed[4:12]))
	nphase := binary.LittleEndian.Uint32(fixed[12:16])
	if nphase > MaxPhases {
		return hdr, 0, fmt.Errorf("trace: implausible phase count %d (max %d)", nphase, MaxPhases)
	}
	phaseBytes := 0
	for i := uint32(0); i < nphase; i++ {
		var ln [2]byte
		if _, err := io.ReadFull(br, ln[:]); err != nil {
			return hdr, 0, err
		}
		n := int(binary.LittleEndian.Uint16(ln[:]))
		if phaseBytes += n; phaseBytes > MaxPhaseBytes {
			return hdr, 0, fmt.Errorf("trace: phase table exceeds %d bytes", MaxPhaseBytes)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return hdr, 0, err
		}
		// Grown incrementally: each name's bytes were just read, so the
		// table can never outgrow the input actually supplied.
		hdr.Phases = append(hdr.Phases, string(buf))
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return hdr, 0, err
	}
	declare := binary.LittleEndian.Uint64(cnt[:])
	if declare > MaxEvents {
		return hdr, 0, fmt.Errorf("trace: implausible event count %d", declare)
	}
	return hdr, declare, nil
}

// Pattern mining parameters. minerWindow is the rolling-hash n-gram
// length; minRepeatSavings is the least number of rows a repeat op must
// eliminate to be worth a program op and (possibly) a table entry.
const (
	minerWindow      = 8
	minRepeatSavings = 8
)

// minerLadder is the descending savings bar of the multi-scale mining
// passes (see minePatterns): pass k commits only runs eliminating at
// least minerLadder[k] rows, and later passes re-mine the literal gaps.
var minerLadder = [...]int{1 << 14, 1 << 11, 1 << 8, 1 << 5, minRepeatSavings}

// program ops produced by the miner: either a literal half-open row
// range [start, end) or count replays of pattern id.
type progOp struct {
	literal    bool
	start, end int    // literal: row range
	id         uint32 // repeat: pattern-table index
	count      uint64 // repeat: total replays (≥ 2)
}

// minePatterns scans the delta rows for periodic runs and returns the
// pattern table plus the op program that reproduces rows exactly.
//
// Detection is a rolling hash over minerWindow-row n-grams: a window
// hash seen p positions ago suggests period p; the candidate block is
// then verified (and its repeat run counted) by direct row comparison,
// so hash collisions cost a failed verify, never a wrong encoding.
//
// Mining is multi-scale. A single greedy pass commits the first (and so
// shortest-period) run it can verify, and once rows are consumed no
// overlapping candidate is ever accepted — so a loop whose body contains
// a small internal repetition (eight threads entering the same barrier,
// say) would be shredded into per-iteration fragments and the loop
// itself, the run worth hundreds of times more, would never be found.
// The ladder fixes that scale by scale: the first pass skips (without
// consuming) any run saving fewer than minerLadder[0] rows, so only
// whole-loop periods can claim rows; each later pass re-mines the
// leftover literal gaps with a lower bar, down to the cheap
// minRepeatSavings floor that recovers exactly the small runs a single
// pass used to find. A run can still shadow a larger one within a rung's
// ~8× band, but never across bands. Long runs also matter beyond size:
// they are what the simulator's steady-state fast-forward can skip.
func minePatterns(rows []row) ([][]row, []progOp) {
	m := miner{byHash: make(map[uint64][]uint32)}
	ops := []progOp{{literal: true, start: 0, end: len(rows)}}
	for _, minSavings := range minerLadder {
		var next []progOp
		for _, op := range ops {
			if !op.literal || op.end-op.start <= minSavings {
				next = append(next, op)
				continue
			}
			next = append(next, m.scan(rows, op.start, op.end, minSavings)...)
		}
		ops = next
	}
	// Drop the empty sentinel a zero-row trace leaves behind.
	out := ops[:0]
	for _, op := range ops {
		if op.literal && op.start == op.end {
			continue
		}
		out = append(out, op)
	}
	return m.patterns, out
}

// miner carries the pattern table shared by both mining passes.
type miner struct {
	patterns  [][]row
	tableRows int
	// byHash dedups pattern bodies (values are candidate ids to
	// compare against, so collisions stay correct).
	byHash map[uint64][]uint32
}

func (m *miner) intern(body []row) (uint32, bool) {
	h := hashRows(body)
	for _, id := range m.byHash[h] {
		if rowsEqual(m.patterns[id], body) {
			return id, true
		}
	}
	if len(m.patterns) >= MaxPatterns || m.tableRows+len(body) > MaxPatternTableRows {
		return 0, false
	}
	id := uint32(len(m.patterns))
	m.patterns = append(m.patterns, body)
	m.tableRows += len(body)
	m.byHash[h] = append(m.byHash[h], id)
	return id, true
}

// scan mines rows[lo:hi) for periodic runs saving at least minSavings
// rows each, returning ops (repeats and literal gaps) covering the range
// exactly.
func (m *miner) scan(rows []row, lo, hi, minSavings int) []progOp {
	var ops []progOp
	flushLiteral := func(start, end int) {
		if start < end {
			ops = append(ops, progOp{literal: true, start: start, end: end})
		}
	}

	// seen maps a window hash to the indices just past its first and
	// most recent occurrences. The nearest occurrence proposes the
	// shortest candidate period, but inside a loop body that itself
	// contains small repetitions every window also matches at the small
	// distance, and the loop period would never be proposed at all — the
	// first occurrence breaks that masking: the first time a
	// once-per-iteration window reoccurs, its distance to the first
	// occurrence is exactly one whole loop period.
	type occ struct{ first, last int }
	seen := make(map[uint64]occ, (hi-lo)/4+1)
	lit := lo // start of the pending literal run
	var wh uint64
	wlen := 0 // rows currently in the rolling window
	const whBase = 0x100000001b3
	// whPow = whBase^(minerWindow-1), for removing the oldest row.
	whPow := uint64(1)
	for i := 1; i < minerWindow; i++ {
		whPow *= whBase
	}

	for i := lo; i < hi; i++ {
		rh := hashRow(&rows[i])
		if wlen == minerWindow {
			wh -= hashRow(&rows[i-minerWindow]) * whPow
		} else {
			wlen++
		}
		wh = wh*whBase + rh
		if wlen < minerWindow {
			continue
		}
		end := i + 1 // window covers rows[end-minerWindow : end]
		o, ok := seen[wh]
		if !ok {
			seen[wh] = occ{first: end, last: end}
			continue
		}
		seen[wh] = occ{first: o.first, last: end}
		for _, j := range [2]int{o.last, o.first} {
			if j >= end {
				continue
			}
			p := end - j
			if p > MaxPatternRows || end-p < lit {
				continue
			}
			// Candidate period p. Anchor the body at end-p and extend it
			// backward while the periodicity holds, so the first iteration
			// of a loop is captured instead of left literal.
			start := end - p
			for start > lit && rows[start-1] == rows[start-1+p] {
				start--
			}
			body := rows[start : start+p]
			count := uint64(1)
			for next := start + int(count)*p; next+p <= hi && rowsEqual(rows[next:next+p], body); next += p {
				count++
			}
			if count < 2 || int(count-1)*p < minSavings {
				continue
			}
			id, ok := m.intern(body)
			if !ok {
				// Table full: leave the run literal and keep scanning.
				continue
			}
			flushLiteral(lit, start)
			ops = append(ops, progOp{id: id, count: count})
			consumed := start + int(count)*p
			lit = consumed
			// Restart the window past the consumed run; stale map entries
			// are harmless (candidates are verified by comparison).
			if consumed > i+1 {
				i = consumed - 1
				wh, wlen = 0, 0
			}
			break
		}
	}
	flushLiteral(lit, hi)
	return ops
}

// hashRow mixes one row into a single word (FNV-style multiply/xor).
func hashRow(r *row) uint64 {
	h := uint64(r.kind) + 0x9e3779b97f4a7c15
	for _, v := range [...]int64{r.dTime, r.dThread, r.dA0, r.dA1, r.dA2} {
		h ^= uint64(v)
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}

func hashRows(rows []row) uint64 {
	h := uint64(len(rows)) + 0x9e3779b97f4a7c15
	for i := range rows {
		h = h*0x100000001b3 + hashRow(&rows[i])
	}
	return h
}

func rowsEqual(a, b []row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteBinary2 encodes the trace to w in the XTRP2 format: the events
// are rewritten as delta rows, mined for repeated blocks, and emitted
// as a pattern table plus a program of literal runs and repeats.
func WriteBinary2(w io.Writer, t *Trace) error {
	hdr := t.Header()
	if hdr.NumThreads < 0 || hdr.NumThreads > MaxThreads {
		return fmt.Errorf("trace: thread count %d out of range [0,%d]", hdr.NumThreads, MaxThreads)
	}
	if len(hdr.Phases) > MaxPhases {
		return fmt.Errorf("trace: phase count %d exceeds %d", len(hdr.Phases), MaxPhases)
	}
	for i, e := range t.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("trace: event %d has invalid kind %d", i, byte(e.Kind))
		}
		if e.Thread < 0 || int(e.Thread) >= hdr.NumThreads {
			return fmt.Errorf("trace: event %d thread %d out of range [0,%d)", i, e.Thread, hdr.NumThreads)
		}
	}

	// Pass 1: delta transform + mining (the table must precede the
	// program on the wire, so ops are staged in memory).
	rows := make([]row, len(t.Events))
	var st deltaState
	for i := range t.Events {
		rows[i] = st.rowOf(&t.Events[i])
	}
	patterns, ops := minePatterns(rows)

	// Pass 2: write.
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binary2Magic[:]); err != nil {
		return err
	}
	var scratch [16]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(hdr.NumThreads))
	binary.LittleEndian.PutUint64(scratch[4:12], uint64(hdr.EventOverhead))
	binary.LittleEndian.PutUint32(scratch[12:16], uint32(len(hdr.Phases)))
	if _, err := bw.Write(scratch[:16]); err != nil {
		return err
	}
	phaseBytes := 0
	for _, p := range hdr.Phases {
		if len(p) > 0xffff {
			return fmt.Errorf("trace: phase name too long (%d bytes)", len(p))
		}
		if phaseBytes += len(p); phaseBytes > MaxPhaseBytes {
			return fmt.Errorf("trace: phase table exceeds %d bytes", MaxPhaseBytes)
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(p)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(t.Events)))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(patterns)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	var vb [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(vb[:], v)
		_, err := bw.Write(vb[:n])
		return err
	}
	putRow := func(r *row) error {
		if err := bw.WriteByte(byte(r.kind)); err != nil {
			return err
		}
		for _, v := range [...]int64{r.dTime, r.dThread, r.dA0, r.dA1, r.dA2} {
			if err := putUvarint(zigzag(v)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, body := range patterns {
		if err := putUvarint(uint64(len(body))); err != nil {
			return err
		}
		for i := range body {
			if err := putRow(&body[i]); err != nil {
				return err
			}
		}
	}
	for _, op := range ops {
		if op.literal {
			if err := bw.WriteByte(opLiteral); err != nil {
				return err
			}
			if err := putUvarint(uint64(op.end - op.start)); err != nil {
				return err
			}
			for i := op.start; i < op.end; i++ {
				if err := putRow(&rows[i]); err != nil {
					return err
				}
			}
		} else {
			if err := bw.WriteByte(opRepeat); err != nil {
				return err
			}
			if err := putUvarint(uint64(op.id)); err != nil {
				return err
			}
			if err := putUvarint(op.count); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	compEncodedTraces.Add(1)
	compPatternEntries.Add(uint64(len(patterns)))
	return nil
}

// Program opcodes.
const (
	opLiteral = 0x00
	opRepeat  = 0x01
)

// Decoder2 streams an XTRP2 trace: the header and pattern table are
// parsed once up front (bodies compiled into pre-parsed row buffers),
// then Next reconstructs events by applying delta rows — parsed from
// the input for literal runs, replayed from the compiled table for
// repeats. Peak memory is O(pattern table), bounded by the hardening
// caps and by the input bytes actually read, never by declared counts.
type Decoder2 struct {
	br       *bufio.Reader
	hdr      Header
	declare  uint64
	produced uint64
	patterns [][]row

	st deltaState

	// Current program op: a pending literal run, or a pattern body being
	// replayed (body non-nil: bodyPos indexes it, repLeft counts replays
	// still owed including the current one).
	litLeft uint64
	body    []row
	bodyPos int
	repLeft uint64

	replayed uint64
	literal  uint64
	flushed  bool
	err      error
}

func newDecoder2AfterMagic(br *bufio.Reader) (*Decoder2, error) {
	hdr, declare, err := readCommonHeader(br)
	if err != nil {
		return nil, err
	}
	d := &Decoder2{br: br, hdr: hdr, declare: declare}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	npatterns := binary.LittleEndian.Uint32(cnt[:])
	if npatterns > MaxPatterns {
		return nil, fmt.Errorf("trace: implausible pattern count %d (max %d)", npatterns, MaxPatterns)
	}
	tableRows := uint64(0)
	for i := uint32(0); i < npatterns; i++ {
		nrows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, patternErr(i, err)
		}
		if nrows == 0 {
			return nil, fmt.Errorf("trace: pattern %d is empty", i)
		}
		if nrows > MaxPatternRows {
			return nil, fmt.Errorf("trace: pattern %d declares %d rows (max %d)", i, nrows, MaxPatternRows)
		}
		if tableRows += nrows; tableRows > MaxPatternTableRows {
			return nil, fmt.Errorf("trace: pattern table exceeds %d rows", MaxPatternTableRows)
		}
		// Rows are parsed one at a time from bytes actually in the input;
		// the prealloc is capped so a forged nrows costs append regrowth,
		// not an up-front allocation.
		prealloc := nrows
		if prealloc > 256 {
			prealloc = 256
		}
		body := make([]row, 0, prealloc)
		for j := uint64(0); j < nrows; j++ {
			r, err := d.readRow()
			if err != nil {
				return nil, patternErr(i, err)
			}
			body = append(body, r)
		}
		d.patterns = append(d.patterns, body)
	}
	return d, nil
}

func patternErr(i uint32, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: pattern %d: %w", i, err)
}

// NewDecoder2 reads and validates an XTRP2 header (magic included) from
// r; events are consumed via Next.
func NewDecoder2(r io.Reader) (*Decoder2, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binary2Magic {
		return nil, ErrBadMagic
	}
	return newDecoder2AfterMagic(br)
}

// Header returns the decoded trace metadata.
func (d *Decoder2) Header() Header { return d.hdr }

// Declared returns the event count the header claims; as with XTRP1 it
// is untrusted and never drives allocation.
func (d *Decoder2) Declared() uint64 { return d.declare }

// readRow parses one wire row, validating the kind byte.
func (d *Decoder2) readRow() (row, error) { return readWireRow(d.br) }

// readWireRow parses one wire row (kind byte + five zigzag uvarints),
// validating the kind byte. Shared by the streaming decoder and the
// eager compiler in pattern.go.
func readWireRow(br *bufio.Reader) (row, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return row{}, err
	}
	if !Kind(kind).Valid() {
		return row{}, fmt.Errorf("invalid kind %d", kind)
	}
	r := row{kind: Kind(kind)}
	for _, p := range [...]*int64{&r.dTime, &r.dThread, &r.dA0, &r.dA1, &r.dA2} {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return row{}, err
		}
		*p = unzigzag(u)
	}
	return r, nil
}

// nextOp loads the next program op into the decoder state.
func (d *Decoder2) nextOp() error {
	opc, err := d.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: event %d: %w", d.produced, err)
	}
	switch opc {
	case opLiteral:
		n, err := binary.ReadUvarint(d.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: literal run: %w", d.produced, eofErr(err))
		}
		if n == 0 {
			return fmt.Errorf("trace: event %d: empty literal run", d.produced)
		}
		if n > d.declare-d.produced {
			return fmt.Errorf("trace: event %d: literal run of %d exceeds declared %d events", d.produced, n, d.declare)
		}
		d.litLeft = n
	case opRepeat:
		id, err := binary.ReadUvarint(d.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: repeat op: %w", d.produced, eofErr(err))
		}
		if id >= uint64(len(d.patterns)) {
			return fmt.Errorf("trace: event %d: repeat references pattern %d of %d", d.produced, id, len(d.patterns))
		}
		count, err := binary.ReadUvarint(d.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: repeat op: %w", d.produced, eofErr(err))
		}
		body := d.patterns[id]
		if count == 0 {
			return fmt.Errorf("trace: event %d: repeat count 0", d.produced)
		}
		if count > MaxEvents || count*uint64(len(body)) > d.declare-d.produced {
			return fmt.Errorf("trace: event %d: repeat of %d×%d rows exceeds declared %d events", d.produced, count, len(body), d.declare)
		}
		d.body, d.bodyPos, d.repLeft = body, 0, count
	default:
		return fmt.Errorf("trace: event %d: unknown opcode %#x", d.produced, opc)
	}
	return nil
}

func eofErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next event, io.EOF after the declared count, or a
// validation error. The error is sticky.
func (d *Decoder2) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	var r row
	switch {
	case d.body != nil:
		r = d.body[d.bodyPos]
		if d.bodyPos++; d.bodyPos == len(d.body) {
			d.bodyPos = 0
			if d.repLeft--; d.repLeft == 0 {
				d.body = nil
			}
		}
		d.replayed++
	case d.litLeft > 0:
		var err error
		r, err = d.readRow()
		if err != nil {
			d.err = fmt.Errorf("trace: event %d: %w", d.produced, eofErr(err))
			return Event{}, d.err
		}
		d.litLeft--
		d.literal++
	default:
		if d.produced == d.declare {
			d.err = io.EOF
			d.flushCounters()
			return Event{}, d.err
		}
		if err := d.nextOp(); err != nil {
			d.err = err
			return Event{}, d.err
		}
		return d.Next()
	}
	e := d.st.apply(&r)
	if e.Thread < 0 || int(e.Thread) >= d.hdr.NumThreads {
		d.err = fmt.Errorf("trace: event %d thread %d out of range [0,%d)", d.produced, e.Thread, d.hdr.NumThreads)
		return Event{}, d.err
	}
	d.produced++
	return e, nil
}

// flushCounters publishes this stream's replay/literal split to the
// process-wide telemetry, exactly once per decoder.
func (d *Decoder2) flushCounters() {
	if d.flushed {
		return
	}
	d.flushed = true
	compReplayEvents.Add(d.replayed)
	compLiteralEvents.Add(d.literal)
}
