package trace

import (
	"fmt"
	"strings"

	"extrap/internal/vtime"
)

// Stats summarizes a trace: the counts the paper's "trace statistics"
// inspection step reads off (e.g. "Grid does not have enough barriers —
// only 650"), plus byte volumes and per-kind totals.
type Stats struct {
	NumThreads   int
	Events       int
	Barriers     int64 // number of global barriers completed
	RemoteReads  int64
	RemoteWrites int64
	RemoteBytes  int64
	MsgSends     int64
	MsgBytes     int64
	PerKind      map[Kind]int
	Duration     vtime.Time
	// RemoteByOwner[o] counts remote accesses whose target is thread o —
	// a quick skew indicator.
	RemoteByOwner []int64
}

// ComputeStats scans the trace and returns its summary.
func ComputeStats(t *Trace) Stats {
	s := Stats{
		NumThreads:    t.NumThreads,
		Events:        len(t.Events),
		PerKind:       make(map[Kind]int),
		Duration:      t.Duration(),
		RemoteByOwner: make([]int64, t.NumThreads),
	}
	var exits int64
	for _, e := range t.Events {
		s.PerKind[e.Kind]++
		switch e.Kind {
		case KindBarrierExit:
			exits++
		case KindRemoteRead:
			s.RemoteReads++
			s.RemoteBytes += e.Arg1
			if int(e.Arg0) < len(s.RemoteByOwner) {
				s.RemoteByOwner[e.Arg0]++
			}
		case KindRemoteWrite:
			s.RemoteWrites++
			s.RemoteBytes += e.Arg1
			if int(e.Arg0) < len(s.RemoteByOwner) {
				s.RemoteByOwner[e.Arg0]++
			}
		case KindMsgSend:
			s.MsgSends++
			s.MsgBytes += e.Arg1
		}
	}
	if t.NumThreads > 0 {
		s.Barriers = exits / int64(t.NumThreads)
	}
	return s
}

// String renders a compact multi-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "threads=%d events=%d duration=%v\n", s.NumThreads, s.Events, s.Duration)
	fmt.Fprintf(&b, "barriers=%d remote-reads=%d remote-writes=%d remote-bytes=%d",
		s.Barriers, s.RemoteReads, s.RemoteWrites, s.RemoteBytes)
	if s.MsgSends > 0 {
		fmt.Fprintf(&b, " msgs=%d msg-bytes=%d", s.MsgSends, s.MsgBytes)
	}
	return b.String()
}
