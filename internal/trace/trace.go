package trace

import (
	"fmt"
	"sort"

	"extrap/internal/vtime"
)

// Trace is an in-memory event trace together with the metadata needed to
// interpret it: the number of program threads, the per-event
// instrumentation overhead of the measurement (used by translation for
// perturbation compensation), and the phase-name table referenced by
// phase events.
type Trace struct {
	// NumThreads is the number of threads of the traced program.
	NumThreads int
	// EventOverhead is the instrumentation cost that the measurement
	// charged for recording each event; translation subtracts it from
	// inter-event deltas.
	EventOverhead vtime.Time
	// Phases maps phase ids (Arg0 of phase events) to names.
	Phases []string
	// Events holds the records in timestamp order (merged across threads
	// for a 1-processor measurement).
	Events []Event

	// phaseIdx maps phase names to their ids for O(1) interning;
	// phaseSynced is the Phases length the index reflects, so direct
	// appends to Phases (codecs and translation write it directly)
	// trigger a rebuild instead of serving stale ids.
	phaseIdx    map[string]int64
	phaseSynced int
}

// New returns an empty trace for n threads.
func New(n int) *Trace {
	return &Trace{NumThreads: n}
}

// Append adds an event to the trace.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// PhaseID interns a phase name, returning its id. Ids are assigned in
// first-seen order, and a duplicate name always resolves to its first
// id, exactly as the original linear scan did — but each intern is O(1),
// so phase-heavy measurements stay linear instead of quadratic.
func (t *Trace) PhaseID(name string) int64 {
	if t.phaseIdx == nil || t.phaseSynced != len(t.Phases) {
		// First intern, or Phases was appended to externally: (re)build
		// the index from the table, first occurrence winning.
		t.phaseIdx = make(map[string]int64, len(t.Phases)+1)
		for i, p := range t.Phases {
			if _, ok := t.phaseIdx[p]; !ok {
				t.phaseIdx[p] = int64(i)
			}
		}
		t.phaseSynced = len(t.Phases)
	}
	if id, ok := t.phaseIdx[name]; ok {
		return id
	}
	t.Phases = append(t.Phases, name)
	id := int64(len(t.Phases) - 1)
	t.phaseIdx[name] = id
	t.phaseSynced = len(t.Phases)
	return id
}

// PhaseName returns the name for a phase id, or a placeholder if unknown.
func (t *Trace) PhaseName(id int64) string {
	if id >= 0 && int(id) < len(t.Phases) {
		return t.Phases[id]
	}
	return fmt.Sprintf("phase(%d)", id)
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{
		NumThreads:    t.NumThreads,
		EventOverhead: t.EventOverhead,
		Phases:        append([]string(nil), t.Phases...),
		Events:        append([]Event(nil), t.Events...),
	}
	return c
}

// SortByTime stably sorts events by timestamp, preserving the relative
// order of equal-time events (which encodes scheduler order on the
// 1-processor run).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return t.Events[i].Time < t.Events[j].Time
	})
}

// PerThread splits the merged event list into per-thread lists, preserving
// order. The result has NumThreads entries; threads with no events get an
// empty (non-nil) slice.
func (t *Trace) PerThread() [][]Event {
	out := make([][]Event, t.NumThreads)
	for i := range out {
		out[i] = []Event{}
	}
	for _, e := range t.Events {
		if int(e.Thread) < 0 || int(e.Thread) >= t.NumThreads {
			continue
		}
		out[e.Thread] = append(out[e.Thread], e)
	}
	return out
}

// Validate checks structural invariants of a measurement trace:
// timestamps non-decreasing, thread ids in range, barrier events well
// formed (every barrier entered exactly once per thread, entries before
// exits, barrier ids dense and increasing per thread).
func (t *Trace) Validate() error {
	if t.NumThreads <= 0 {
		return fmt.Errorf("trace: NumThreads = %d, want > 0", t.NumThreads)
	}
	var last vtime.Time
	nextBarrier := make([]int64, t.NumThreads) // next expected barrier id per thread
	inBarrier := make([]bool, t.NumThreads)
	for i, e := range t.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("trace: event %d has invalid kind %d", i, e.Kind)
		}
		if e.Time < last {
			return fmt.Errorf("trace: event %d time %v precedes previous %v", i, e.Time, last)
		}
		last = e.Time
		if int(e.Thread) < 0 || int(e.Thread) >= t.NumThreads {
			return fmt.Errorf("trace: event %d thread %d out of range [0,%d)", i, e.Thread, t.NumThreads)
		}
		th := int(e.Thread)
		switch e.Kind {
		case KindBarrierEntry:
			if inBarrier[th] {
				return fmt.Errorf("trace: event %d: thread %d enters barrier %d while already in a barrier", i, th, e.Arg0)
			}
			if e.Arg0 != nextBarrier[th] {
				return fmt.Errorf("trace: event %d: thread %d enters barrier %d, want %d", i, th, e.Arg0, nextBarrier[th])
			}
			inBarrier[th] = true
		case KindBarrierExit:
			if !inBarrier[th] {
				return fmt.Errorf("trace: event %d: thread %d exits barrier %d without entering", i, th, e.Arg0)
			}
			if e.Arg0 != nextBarrier[th] {
				return fmt.Errorf("trace: event %d: thread %d exits barrier %d, want %d", i, th, e.Arg0, nextBarrier[th])
			}
			inBarrier[th] = false
			nextBarrier[th]++
		case KindRemoteRead, KindRemoteWrite:
			if e.Arg1 < 0 {
				return fmt.Errorf("trace: event %d: negative transfer size %d", i, e.Arg1)
			}
			if e.Arg0 < 0 || int(e.Arg0) >= t.NumThreads {
				return fmt.Errorf("trace: event %d: owner thread %d out of range", i, e.Arg0)
			}
		}
	}
	for th, b := range inBarrier {
		if b {
			return fmt.Errorf("trace: thread %d still inside barrier %d at end of trace", th, nextBarrier[th])
		}
	}
	// All threads must have completed the same number of barriers: the
	// data-parallel model has only global barriers.
	for th := 1; th < t.NumThreads; th++ {
		if nextBarrier[th] != nextBarrier[0] {
			return fmt.Errorf("trace: thread %d completed %d barriers, thread 0 completed %d",
				th, nextBarrier[th], nextBarrier[0])
		}
	}
	return nil
}

// Duration reports the timestamp of the last event (the 1-processor
// virtual execution time for a measurement trace).
func (t *Trace) Duration() vtime.Time {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time
}
