package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"extrap/internal/vtime"
)

// hostileHeader builds a raw XTRP1 header with arbitrary (possibly
// absurd) field values, followed by body bytes. It deliberately bypasses
// the Encoder so tests can express inputs a well-behaved writer would
// never produce.
func hostileHeader(threads uint32, ovh uint64, phases []string, nevents uint64, body []byte) []byte {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], threads)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], ovh)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(phases)))
	buf.Write(scratch[:4])
	for _, p := range phases {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(p)))
		buf.Write(scratch[:2])
		buf.WriteString(p)
	}
	binary.LittleEndian.PutUint64(scratch[:8], nevents)
	buf.Write(scratch[:8])
	buf.Write(body)
	return buf.Bytes()
}

// hostileHeaderNPhase is hostileHeader with the phase *count* field forged
// independently of the phase entries actually present.
func hostileHeaderNPhase(threads, nphase uint32, nevents uint64) []byte {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], threads)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], 0)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], nphase)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], nevents)
	buf.Write(scratch[:8])
	return buf.Bytes()
}

// encodeEvents encodes events in the raw record format for test bodies.
func encodeEvents(evs []Event) []byte {
	out := make([]byte, len(evs)*eventRecSize)
	for i := range evs {
		putEvent(out[i*eventRecSize:], &evs[i])
	}
	return out
}

// TestHostileHeaderHugeEventCount is the regression test for the
// pre-allocation bug: a 41-byte file declaring 2^39 events must fail
// fast with a small, bounded allocation instead of demanding ~18 TB.
func TestHostileHeaderHugeEventCount(t *testing.T) {
	data := hostileHeader(4, 0, nil, 1<<39, nil)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr, err := ReadBinary(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatalf("decoded hostile trace: %+v", tr)
	}
	if grown := int64(after.TotalAlloc) - int64(before.TotalAlloc); grown > 1<<20 {
		t.Fatalf("decoding a 41-byte hostile file allocated %d bytes", grown)
	}
}

// TestHostileHeaderEventCountPastCap rejects declared counts above
// MaxEvents outright, before any record is read.
func TestHostileHeaderEventCountPastCap(t *testing.T) {
	data := hostileHeader(4, 0, nil, MaxEvents+1, nil)
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil {
		t.Fatal("decoder accepted event count past MaxEvents")
	}
}

// TestHostileHeaderHugePhaseCount: a forged nphase with no phase bytes
// behind it must not allocate a giant phase table.
func TestHostileHeaderHugePhaseCount(t *testing.T) {
	for _, nphase := range []uint32{MaxPhases + 1, 1 << 31} {
		data := hostileHeaderNPhase(4, nphase, 0)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		_, err := ReadBinary(bytes.NewReader(data))
		runtime.ReadMemStats(&after)
		if err == nil {
			t.Fatalf("nphase=%d: decoder accepted forged phase count", nphase)
		}
		if grown := int64(after.TotalAlloc) - int64(before.TotalAlloc); grown > 1<<20 {
			t.Fatalf("nphase=%d: allocated %d bytes on a tiny file", nphase, grown)
		}
	}
}

// TestHostileHeaderTruncatedPhaseTable: a plausible nphase whose entries
// are missing must hit unexpected EOF, growing only by the bytes present.
func TestHostileHeaderTruncatedPhaseTable(t *testing.T) {
	data := hostileHeaderNPhase(4, 1000, 0)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("decoder accepted truncated phase table")
	}
}

// TestHostileHeaderPhaseBytesCap: many max-length names must trip the
// cumulative MaxPhaseBytes cap.
func TestHostileHeaderPhaseBytesCap(t *testing.T) {
	name := strings.Repeat("x", 0xffff)
	phases := make([]string, MaxPhaseBytes/0xffff+2)
	for i := range phases {
		phases[i] = name
	}
	data := hostileHeader(4, 0, phases, 0, nil)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("decoder accepted phase table past MaxPhaseBytes")
	}
}

// TestHostileHeaderThreadCount rejects implausible declared thread
// counts.
func TestHostileHeaderThreadCount(t *testing.T) {
	data := hostileHeader(MaxThreads+1, 0, nil, 0, nil)
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil {
		t.Fatal("decoder accepted thread count past MaxThreads")
	}
}

// TestTruncatedEvents: declared count larger than the records present
// must surface io.ErrUnexpectedEOF, not a short trace.
func TestTruncatedEvents(t *testing.T) {
	evs := []Event{
		{Time: 1, Kind: KindThreadStart, Thread: 0},
		{Time: 2, Kind: KindThreadEnd, Thread: 0},
	}
	data := hostileHeader(1, 0, nil, 100, encodeEvents(evs))
	_, err := ReadBinary(bytes.NewReader(data))
	if err == nil {
		t.Fatal("decoder accepted truncated event stream")
	}
	if !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
}

// TestDecodeRejectsThreadOutOfRange: events whose Thread is negative or
// ≥ NumThreads are rejected at decode time.
func TestDecodeRejectsThreadOutOfRange(t *testing.T) {
	for _, th := range []int32{-1, 2, 1 << 30} {
		evs := []Event{{Time: 1, Kind: KindThreadStart, Thread: th}}
		data := hostileHeader(2, 0, nil, 1, encodeEvents(evs))
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("decoder accepted event with thread %d of 2", th)
		}
	}
}

// TestDecodeRejectsInvalidKind: undefined kind bytes are rejected at
// decode time.
func TestDecodeRejectsInvalidKind(t *testing.T) {
	for _, k := range []Kind{KindInvalid, kindCount, 0xff} {
		evs := []Event{{Time: 1, Kind: k, Thread: 0}}
		data := hostileHeader(1, 0, nil, 1, encodeEvents(evs))
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("decoder accepted event with kind %d", k)
		}
	}
}

// TestTextRejectsHostileHeaders mirrors the binary hardening for the
// text format: forged phase ids and thread counts must not be honored.
func TestTextRejectsHostileHeaders(t *testing.T) {
	cases := []string{
		"#xtrp text 1\n#threads 4\n#phase 9999999999 boom\n",
		"#xtrp text 1\n#threads 4\n#phase -1 boom\n",
		fmt.Sprintf("#xtrp text 1\n#threads %d\n", MaxThreads+1),
		"#xtrp text 1\n#threads -2\n",
		// Thread id out of declared range.
		"#xtrp text 1\n#threads 2\n5 thread-start t7 0 0 0\n",
	}
	for _, in := range cases {
		if tr, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadText accepted %q: %+v", in, tr)
		}
	}
}

// TestDecoderStreamsExactly: the streaming decoder yields the same
// events ReadBinary materializes, then sticks at io.EOF.
func TestDecoderStreamsExactly(t *testing.T) {
	tr := makeBarrierTrace(4, 3)
	tr.PhaseID("init")
	tr.PhaseID("solve")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hdr := d.Header()
	if hdr.NumThreads != tr.NumThreads || len(hdr.Phases) != len(tr.Phases) {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if d.Declared() != uint64(len(tr.Events)) {
		t.Fatalf("declared %d, want %d", d.Declared(), len(tr.Events))
	}
	got, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Events) {
		t.Fatalf("streamed %d events, want %d", len(got), len(tr.Events))
	}
	for i := range got {
		if got[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], tr.Events[i])
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after end: %v, want io.EOF", err)
	}
}

// TestSliceReaderAndCopy exercises the slice adapter and the stream
// plumbing helpers.
func TestSliceReaderAndCopy(t *testing.T) {
	tr := makeBarrierTrace(2, 2)
	r := tr.Reader()
	if r.Len() != len(tr.Events) {
		t.Fatalf("Len() = %d, want %d", r.Len(), len(tr.Events))
	}
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, tr.Header(), len(tr.Events))
	if err != nil {
		t.Fatal(err)
	}
	n, err := CopyEvents(enc, r)
	if err != nil || n != len(tr.Events) {
		t.Fatalf("CopyEvents = %d, %v", n, err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("reader not drained: %d left", r.Len())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("drained reader: %v, want io.EOF", err)
	}
	var ref bytes.Buffer
	if err := WriteBinary(&ref, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
		t.Fatal("streamed encoding differs from WriteBinary")
	}
	if want := EncodedSize(tr.Header(), len(tr.Events)); int64(buf.Len()) != want {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", want, buf.Len())
	}
}

// TestEncoderCountMismatch: the encoder refuses both overfull and
// underfull streams, so a declared count is always honest on the wire.
func TestEncoderCountMismatch(t *testing.T) {
	ev := Event{Time: 1, Kind: KindThreadStart, Thread: 0}
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{NumThreads: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent(ev); err == nil {
		t.Fatal("encoder accepted event past declared count")
	}

	buf.Reset()
	enc, err = NewEncoder(&buf, Header{NumThreads: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Fatal("encoder Close accepted underfull stream")
	}
}

// TestPhaseIDManyPhases covers the map-backed intern: linear-time and
// first-seen-deterministic over a phase-heavy trace, including ids
// assigned behind PhaseID's back by direct Phases appends.
func TestPhaseIDManyPhases(t *testing.T) {
	const n = 20000
	tr := New(1)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("phase-%d", i)
		if id := tr.PhaseID(name); id != int64(i) {
			t.Fatalf("PhaseID(%q) = %d, want %d", name, id, i)
		}
	}
	// Duplicates resolve to the first-seen id.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		name := fmt.Sprintf("phase-%d", i)
		if id := tr.PhaseID(name); id != int64(i) {
			t.Fatalf("re-intern PhaseID(%q) = %d, want %d", name, id, i)
		}
	}
	if len(tr.Phases) != n {
		t.Fatalf("len(Phases) = %d, want %d", len(tr.Phases), n)
	}
	// A direct append (as the codecs do) must be observed, not shadowed.
	tr.Phases = append(tr.Phases, "external")
	if id := tr.PhaseID("external"); id != int64(n) {
		t.Fatalf("PhaseID(external) = %d, want %d", id, n)
	}
	if id := tr.PhaseID("phase-3"); id != 3 {
		t.Fatalf("after external append, PhaseID(phase-3) = %d", id)
	}
	// Duplicate names in the table: first occurrence wins, matching the
	// original linear scan.
	tr2 := &Trace{Phases: []string{"a", "b", "a"}}
	if id := tr2.PhaseID("a"); id != 0 {
		t.Fatalf("duplicate-table PhaseID(a) = %d, want 0", id)
	}
}

// TestPhaseIDMatchesLinearScan cross-checks the map intern against the
// original reference implementation on a mixed workload.
func TestPhaseIDMatchesLinearScan(t *testing.T) {
	linear := func(phases *[]string, name string) int64 {
		for i, p := range *phases {
			if p == name {
				return int64(i)
			}
		}
		*phases = append(*phases, name)
		return int64(len(*phases) - 1)
	}
	tr := New(1)
	var ref []string
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("p%d", i%37)
		want := linear(&ref, name)
		if got := tr.PhaseID(name); got != want {
			t.Fatalf("PhaseID(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestHeaderSharesMetadata pins the (cheap) contract of Trace.Header.
func TestHeaderSharesMetadata(t *testing.T) {
	tr := New(3)
	tr.EventOverhead = vtime.Time(42)
	tr.PhaseID("a")
	h := tr.Header()
	if h.NumThreads != 3 || h.EventOverhead != 42 || len(h.Phases) != 1 {
		t.Fatalf("Header() = %+v", h)
	}
}
