package trace

import (
	"bytes"
	"testing"
)

// FuzzBinaryRoundTrip feeds arbitrary bytes to the binary decoder. The
// decoder must never panic and never allocate proportionally to forged
// header fields; whenever it accepts an input, the re-encoding must be
// canonical: encode(decode(x)) is a fixed point of decode∘encode, byte
// for byte.
func FuzzBinaryRoundTrip(f *testing.F) {
	// A well-formed trace.
	good := makeBarrierTrace(4, 2)
	good.PhaseID("init")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// The hostile-header corpus from the decoder regression tests.
	f.Add(hostileHeader(4, 0, nil, 1<<39, nil))               // huge declared nevents
	f.Add(hostileHeader(4, 0, nil, MaxEvents+1, nil))         // nevents past cap
	f.Add(hostileHeaderNPhase(4, 1<<31, 0))                   // forged nphase
	f.Add(hostileHeaderNPhase(4, 1000, 0))                    // truncated phase table
	f.Add(hostileHeader(MaxThreads+1, 0, nil, 0, nil))        // absurd thread count
	f.Add(hostileHeader(1, 0, nil, 100, encodeEvents([]Event{ // truncated events
		{Time: 1, Kind: KindThreadStart, Thread: 0}})))
	f.Add(hostileHeader(2, 0, nil, 1, encodeEvents([]Event{ // thread out of range
		{Time: 1, Kind: KindThreadStart, Thread: 9}})))
	f.Add(hostileHeader(1, 0, nil, 1, encodeEvents([]Event{ // invalid kind
		{Time: 1, Kind: 0xee, Thread: 0}})))
	f.Add([]byte("XTRP1")) // magic only
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteBinary(&enc1, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteBinary(&enc2, tr2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not byte-stable")
		}
	})
}

// FuzzXTRP2RoundTrip feeds arbitrary bytes to the format-dispatching
// decoder, seeded with well-formed XTRP2 streams and the hostile
// pattern-table corpus. The decoder must never panic and never allocate
// ahead of the input; every accepted input must survive an XTRP2
// re-encode with identical events, and the XTRP2 encoding of any
// accepted trace must decode back to the same events (the byte-identity
// guarantee the prediction pipeline relies on).
func FuzzXTRP2RoundTrip(f *testing.F) {
	// Well-formed streams: a loop-structured trace (pattern table in
	// use), a barrier trace, and an empty trace.
	for _, tr := range []*Trace{makeLoopTrace(4, 30), makeBarrierTrace(4, 2), New(2)} {
		var buf bytes.Buffer
		if err := WriteBinary2(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	// The hostile pattern-table corpus: forged counts, cyclic/dangling
	// pattern refs, count overflows, truncated delta blocks.
	start := wireRow(byte(KindThreadStart))
	onePattern := concat(uvarint(1), start)
	f.Add(hostile2(4, 0, MaxPatterns+1, nil))
	f.Add(hostile2(4, 0, 1000, nil))
	f.Add(hostile2(4, 0, 1, uvarint(0)))
	f.Add(hostile2(4, 0, 1, uvarint(MaxPatternRows+1)))
	f.Add(hostile2(4, 0, 1, concat(uvarint(64), start)))
	f.Add(hostile2(4, 4, 1, concat(onePattern, []byte{opRepeat}, uvarint(1), uvarint(2))))
	f.Add(hostile2(4, 4, 1, concat(onePattern, []byte{opRepeat}, uvarint(0), uvarint(1<<62))))
	f.Add(hostile2(4, 4, 0, concat([]byte{opLiteral}, uvarint(4), start)))
	f.Add(hostile2(4, 1<<39, 0, concat([]byte{opLiteral}, uvarint(1<<39))))
	f.Add(hostile2(4, 4, 0, []byte{0x7f}))
	f.Add([]byte("XTRP2")) // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinaryAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteBinary2(&enc1, tr); err != nil {
			t.Fatalf("XTRP2 encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadBinaryAny(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip produced %d events, want %d", len(tr2.Events), len(tr.Events))
		}
		for i := range tr.Events {
			if tr2.Events[i] != tr.Events[i] {
				t.Fatalf("event %d changed in round trip: %+v vs %+v", i, tr2.Events[i], tr.Events[i])
			}
		}
		var enc2 bytes.Buffer
		if err := WriteBinary2(&enc2, tr2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not byte-stable")
		}
	})
}
