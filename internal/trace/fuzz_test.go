package trace

import (
	"bytes"
	"testing"
)

// FuzzBinaryRoundTrip feeds arbitrary bytes to the binary decoder. The
// decoder must never panic and never allocate proportionally to forged
// header fields; whenever it accepts an input, the re-encoding must be
// canonical: encode(decode(x)) is a fixed point of decode∘encode, byte
// for byte.
func FuzzBinaryRoundTrip(f *testing.F) {
	// A well-formed trace.
	good := makeBarrierTrace(4, 2)
	good.PhaseID("init")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// The hostile-header corpus from the decoder regression tests.
	f.Add(hostileHeader(4, 0, nil, 1<<39, nil))               // huge declared nevents
	f.Add(hostileHeader(4, 0, nil, MaxEvents+1, nil))         // nevents past cap
	f.Add(hostileHeaderNPhase(4, 1<<31, 0))                   // forged nphase
	f.Add(hostileHeaderNPhase(4, 1000, 0))                    // truncated phase table
	f.Add(hostileHeader(MaxThreads+1, 0, nil, 0, nil))        // absurd thread count
	f.Add(hostileHeader(1, 0, nil, 100, encodeEvents([]Event{ // truncated events
		{Time: 1, Kind: KindThreadStart, Thread: 0}})))
	f.Add(hostileHeader(2, 0, nil, 1, encodeEvents([]Event{ // thread out of range
		{Time: 1, Kind: KindThreadStart, Thread: 9}})))
	f.Add(hostileHeader(1, 0, nil, 1, encodeEvents([]Event{ // invalid kind
		{Time: 1, Kind: 0xee, Thread: 0}})))
	f.Add([]byte("XTRP1")) // magic only
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteBinary(&enc1, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteBinary(&enc2, tr2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode→decode→encode is not byte-stable")
		}
	})
}
