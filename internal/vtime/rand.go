package vtime

import "math"

// Rand is a deterministic SplitMix64 pseudo-random generator. Every source
// of randomness in the repository (benchmark inputs, NAS EP sample streams,
// perturbation in the direct-execution simulator) derives from a seeded
// Rand so that runs are exactly reproducible. math/rand would also be
// deterministic for a fixed seed, but its sequence is not guaranteed stable
// across Go releases; SplitMix64 is ours and frozen.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("vtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split returns a new independent generator derived from r's stream, so
// that components can be given private streams without coupling their
// consumption rates.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

// Normal returns a standard normal deviate via the Marsaglia polar method.
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
