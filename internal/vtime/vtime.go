// Package vtime provides the virtual-time base used by every component of
// the extrapolation system: a nanosecond-resolution Time type, clocks, and
// a deterministic pseudo-random source.
//
// All timestamps in traces, models, and simulation results are vtime.Time
// values. Integer nanoseconds (rather than float64 microseconds, which the
// original ExtraP used) make every pipeline stage exactly reproducible:
// there is no accumulation-order sensitivity, and equality comparisons in
// tests are meaningful.
package vtime

import (
	"fmt"
	"time"
)

// Time is a point in virtual time (or a duration between two such points),
// measured in integer nanoseconds since the start of the run.
type Time int64

// Common unit multipliers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel larger than any reachable simulation time.
const Forever Time = 1<<63 - 1

// Micros converts t to floating-point microseconds, the unit the original
// paper reports in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (both are int64 nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromMicros builds a Time from floating-point microseconds, rounding to
// the nearest nanosecond. Model parameters in the paper are given in µs.
func FromMicros(us float64) Time {
	if us < 0 {
		return Time(us*float64(Microsecond) - 0.5)
	}
	return Time(us*float64(Microsecond) + 0.5)
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return FromMicros(s * 1e6) }

// Scale multiplies t by the dimensionless factor f, rounding to the
// nearest nanosecond. It is the primitive behind MipsRatio scaling.
func (t Time) Scale(f float64) Time {
	v := float64(t) * f
	if v < 0 {
		return Time(v - 0.5)
	}
	return Time(v + 0.5)
}

// String renders t with an adaptive unit, e.g. "12.345ms" or "870ns".
func (t Time) String() string {
	switch {
	case t == Forever:
		return "∞"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock is a source of virtual time that can be advanced by a running
// computation. The 1-processor measurement runtime advances a single
// global VirtualClock; the direct-execution simulator advances one clock
// per thread.
type Clock interface {
	// Now reports the current virtual time.
	Now() Time
	// Advance moves the clock forward by d (d must be non-negative).
	Advance(d Time)
}

// VirtualClock is the trivial Clock implementation: a counter.
// The zero value is a clock at time 0, ready to use.
type VirtualClock struct {
	now Time
}

// NewVirtualClock returns a clock starting at the given time.
func NewVirtualClock(start Time) *VirtualClock { return &VirtualClock{now: start} }

// Now reports the current virtual time.
func (c *VirtualClock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances panic: a clock
// that moves backwards indicates a bug in a cost model, and silently
// accepting it would corrupt every downstream timestamp.
func (c *VirtualClock) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative clock advance %d", d))
	}
	c.now += d
}

// Set jumps the clock to an absolute time ≥ the current time.
func (c *VirtualClock) Set(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("vtime: clock set backwards from %v to %v", c.now, t))
	}
	c.now = t
}
