package vtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestUnitConversions(t *testing.T) {
	cases := []struct {
		in     Time
		micros float64
	}{
		{0, 0},
		{Microsecond, 1},
		{Millisecond, 1000},
		{Second, 1e6},
		{500 * Nanosecond, 0.5},
	}
	for _, c := range cases {
		if got := c.in.Micros(); got != c.micros {
			t.Errorf("%d ns: Micros() = %g, want %g", int64(c.in), got, c.micros)
		}
	}
	if Second.Seconds() != 1 {
		t.Errorf("Second.Seconds() = %g, want 1", Second.Seconds())
	}
	if Millisecond.Millis() != 1 {
		t.Errorf("Millisecond.Millis() = %g, want 1", Millisecond.Millis())
	}
}

func TestFromMicrosRoundTrip(t *testing.T) {
	f := func(us uint32) bool {
		v := float64(us) / 16 // quarter-ns-representable values round-trip
		tm := FromMicros(v)
		return math.Abs(tm.Micros()-v) < 1e-3 // within 1 ns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMicrosPaperParameters(t *testing.T) {
	// The CM-5 parameter set of Table 3 must survive the µs→ns conversion.
	if got := FromMicros(0.118); got != 118 {
		t.Errorf("FromMicros(0.118) = %d ns, want 118", int64(got))
	}
	if got := FromMicros(10.0); got != 10*Microsecond {
		t.Errorf("FromMicros(10) = %v, want 10µs", got)
	}
}

func TestScale(t *testing.T) {
	if got := Time(1000).Scale(0.41); got != 410 {
		t.Errorf("1000.Scale(0.41) = %d, want 410", int64(got))
	}
	if got := Time(1000).Scale(2.0); got != 2000 {
		t.Errorf("1000.Scale(2.0) = %d, want 2000", int64(got))
	}
	if got := Time(0).Scale(5.0); got != 0 {
		t.Errorf("0.Scale(5) = %d, want 0", int64(got))
	}
	// Rounding, not truncation.
	if got := Time(3).Scale(0.5); got != 2 {
		t.Errorf("3.Scale(0.5) = %d, want 2 (round half up)", int64(got))
	}
}

func TestScaleMonotone(t *testing.T) {
	f := func(a, b uint32, fq uint8) bool {
		factor := float64(fq)/64 + 0.01
		x, y := Time(a), Time(b)
		if x > y {
			x, y = y, x
		}
		return x.Scale(factor) <= y.Scale(factor)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(0)
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	c.Advance(5 * Microsecond)
	c.Advance(0)
	if c.Now() != 5*Microsecond {
		t.Fatalf("clock at %v, want 5µs", c.Now())
	}
	c.Set(7 * Microsecond)
	if c.Now() != 7*Microsecond {
		t.Fatalf("clock at %v after Set, want 7µs", c.Now())
	}
}

func TestVirtualClockPanics(t *testing.T) {
	mustPanic(t, "negative advance", func() {
		NewVirtualClock(0).Advance(-1)
	})
	mustPanic(t, "set backwards", func() {
		c := NewVirtualClock(10)
		c.Set(5)
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{-500, "-500ns"},
		{Forever, "∞"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
	mustPanic(t, "Intn(0)", func() { r.Intn(0) })
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(5)
	s := r.Split()
	// The split stream must not be a suffix/prefix of the parent stream.
	parent := make([]uint64, 32)
	for i := range parent {
		parent[i] = r.Uint64()
	}
	for i := 0; i < 32; i++ {
		v := s.Uint64()
		for _, p := range parent {
			if v == p {
				t.Fatalf("split stream value %d collides with parent stream", i)
			}
		}
	}
}

func TestDurationAndFromSeconds(t *testing.T) {
	if (2 * Millisecond).Duration() != 2*time.Millisecond {
		t.Error("Duration conversion wrong")
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMicros(-2) != -2*Microsecond {
		t.Errorf("FromMicros(-2) = %v", FromMicros(-2))
	}
	if Time(-1000).Scale(0.5) != -500 {
		t.Errorf("negative Scale = %v", Time(-1000).Scale(0.5))
	}
}
