package translate

import (
	"testing"
	"testing/quick"

	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// measure runs a pcxx program and returns its merged measurement trace.
func measure(t *testing.T, n int, overhead vtime.Time, body func(*pcxx.Thread)) *trace.Trace {
	t.Helper()
	cfg := pcxx.DefaultConfig(n)
	cfg.EventOverhead = overhead
	rt := pcxx.NewRuntime(cfg)
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBarrierReleaseSemantics(t *testing.T) {
	// Threads compute 100µs, 200µs, 300µs before the barrier; in the
	// ideal parallel execution, every thread exits at 300µs.
	tr := measure(t, 3, 0, func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()+1) * 100 * vtime.Microsecond)
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	release := 300 * vtime.Microsecond
	for th, evs := range pt.Threads {
		for _, e := range evs {
			switch e.Kind {
			case trace.KindBarrierEntry:
				want := vtime.Time(th+1) * 100 * vtime.Microsecond
				if e.Time != want {
					t.Errorf("thread %d entry at %v, want %v", th, e.Time, want)
				}
			case trace.KindBarrierExit:
				if e.Time != release {
					t.Errorf("thread %d exit at %v, want %v", th, e.Time, release)
				}
			}
		}
	}
	if pt.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", pt.Barriers)
	}
}

func TestIdealSpeedup(t *testing.T) {
	// A perfectly balanced program: n threads × d compute + b barriers.
	// 1-processor time = n·d·b; translated parallel time = d·b.
	const n, b = 4, 3
	d := 50 * vtime.Microsecond
	tr := measure(t, n, 0, func(th *pcxx.Thread) {
		for i := 0; i < b; i++ {
			th.Compute(d)
			th.Barrier()
		}
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pt.Duration(), vtime.Time(b)*d; got != want {
		t.Fatalf("parallel duration = %v, want %v", got, want)
	}
	if tr.Duration() != vtime.Time(n*b)*d {
		t.Fatalf("serial duration = %v, want %v", tr.Duration(), vtime.Time(n*b)*d)
	}
}

func TestDeltasPreserved(t *testing.T) {
	// For consecutive non-sync events of one thread, translated deltas
	// must equal original deltas (zero overhead case).
	tr := measure(t, 2, 0, func(th *pcxx.Thread) {
		c := 10 * vtime.Microsecond
		th.Compute(c)
		th.Barrier()
		th.Compute(2 * c)
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.PerThread()
	for th := range pt.Threads {
		if len(orig[th]) != len(pt.Threads[th]) {
			t.Fatalf("thread %d: event count changed", th)
		}
		for i := 1; i < len(orig[th]); i++ {
			if orig[th][i].Kind.Valid() && orig[th][i].Kind != trace.KindBarrierExit &&
				orig[th][i-1].Kind != trace.KindBarrierExit {
				od := orig[th][i].Time - orig[th][i-1].Time
				nd := pt.Threads[th][i].Time - pt.Threads[th][i-1].Time
				if od != nd {
					t.Errorf("thread %d event %d: delta %v → %v", th, i, od, nd)
				}
			}
		}
	}
}

func TestOverheadCompensation(t *testing.T) {
	// The same program measured with and without instrumentation overhead
	// must translate to identical parallel traces.
	prog := func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()+1) * 20 * vtime.Microsecond)
		th.Barrier()
		th.Compute(30 * vtime.Microsecond)
		th.Barrier()
	}
	clean := measure(t, 3, 0, prog)
	perturbed := measure(t, 3, 5*vtime.Microsecond, prog)
	a, err := Translate(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Translate(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration() != b.Duration() {
		t.Fatalf("durations differ: clean %v vs perturbed %v", a.Duration(), b.Duration())
	}
	for th := range a.Threads {
		if len(a.Threads[th]) != len(b.Threads[th]) {
			t.Fatalf("thread %d event counts differ", th)
		}
		for i := range a.Threads[th] {
			if a.Threads[th][i].Time != b.Threads[th][i].Time {
				t.Errorf("thread %d event %d: %v vs %v (overhead not compensated)",
					th, i, a.Threads[th][i].Time, b.Threads[th][i].Time)
			}
		}
	}
}

func TestEventsAndPhasesCarriedOver(t *testing.T) {
	tr := measure(t, 2, 0, func(th *pcxx.Thread) {
		th.Phase("work", func() { th.Compute(5 * vtime.Microsecond) })
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Events() != len(tr.Events) {
		t.Fatalf("Events() = %d, want %d", pt.Events(), len(tr.Events))
	}
	if len(pt.Phases) != 1 || pt.Phases[0] != "work" {
		t.Fatalf("Phases = %v", pt.Phases)
	}
}

func TestPerThreadMonotonicity(t *testing.T) {
	tr := measure(t, 4, 2*vtime.Microsecond, func(th *pcxx.Thread) {
		for i := 0; i < 5; i++ {
			th.Compute(vtime.Time((th.ID()*7+i*3)%11+1) * vtime.Microsecond)
			th.Barrier()
		}
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for th, evs := range pt.Threads {
		var last vtime.Time
		for i, e := range evs {
			if e.Time < last {
				t.Fatalf("thread %d event %d: time %v < previous %v", th, i, e.Time, last)
			}
			last = e.Time
		}
	}
}

func TestBarrierExitNotBeforeAnyEntry(t *testing.T) {
	tr := measure(t, 3, 0, func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()*13+7) * vtime.Microsecond)
		th.Barrier()
		th.Compute(vtime.Time((th.ID()*5)%4+2) * vtime.Microsecond)
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[int64]vtime.Time{}
	for _, evs := range pt.Threads {
		for _, e := range evs {
			if e.Kind == trace.KindBarrierEntry && e.Time > entries[e.Arg0] {
				entries[e.Arg0] = e.Time
			}
		}
	}
	for _, evs := range pt.Threads {
		for _, e := range evs {
			if e.Kind == trace.KindBarrierExit && e.Time != entries[e.Arg0] {
				t.Fatalf("barrier %d exit at %v, last entry at %v", e.Arg0, e.Time, entries[e.Arg0])
			}
		}
	}
}

func TestRejectsMalformedTrace(t *testing.T) {
	tr := trace.New(2)
	tr.Append(trace.Event{Time: 0, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 0})
	if _, err := Translate(tr); err == nil {
		t.Fatal("Translate accepted malformed trace")
	}
}

func TestThreadStartsAnchorAtZero(t *testing.T) {
	tr := measure(t, 3, 0, func(th *pcxx.Thread) {
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for th, evs := range pt.Threads {
		if len(evs) == 0 {
			t.Fatalf("thread %d has no events", th)
		}
		if evs[0].Kind != trace.KindThreadStart || evs[0].Time != 0 {
			t.Fatalf("thread %d first event %+v, want thread-start at 0", th, evs[0])
		}
	}
}

func TestTranslatePropertyBalancedPrograms(t *testing.T) {
	// Property: for any per-thread compute times, the translated duration
	// up to a single barrier equals the max compute time, and the serial
	// duration equals the sum.
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		n := len(raw)
		times := make([]vtime.Time, n)
		var sum, max vtime.Time
		for i, r := range raw {
			times[i] = vtime.Time(r) * vtime.Microsecond
			sum += times[i]
			if times[i] > max {
				max = times[i]
			}
		}
		cfg := pcxx.DefaultConfig(n)
		rt := pcxx.NewRuntime(cfg)
		tr, err := rt.Run(func(th *pcxx.Thread) {
			th.Compute(times[th.ID()])
			th.Barrier()
		})
		if err != nil {
			return false
		}
		pt, err := Translate(tr)
		if err != nil {
			return false
		}
		return pt.Duration() == max && tr.Duration() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiBarrierChaining(t *testing.T) {
	// Imbalance alternates between threads; translated duration is the
	// sum over barrier phases of the per-phase maximum.
	const n = 2
	phase := [][]vtime.Time{
		{10 * vtime.Microsecond, 40 * vtime.Microsecond},
		{30 * vtime.Microsecond, 5 * vtime.Microsecond},
		{20 * vtime.Microsecond, 20 * vtime.Microsecond},
	}
	want := (40 + 30 + 20) * vtime.Microsecond
	tr := measure(t, n, 0, func(th *pcxx.Thread) {
		for _, p := range phase {
			th.Compute(p[th.ID()])
			th.Barrier()
		}
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Duration() != want {
		t.Fatalf("Duration = %v, want %v", pt.Duration(), want)
	}
}

func TestRemoteEventsInstantaneous(t *testing.T) {
	// A remote read between two computes adds no time in the translated
	// trace (costs are the simulator's job).
	cfg := pcxx.DefaultConfig(2)
	rt := pcxx.NewRuntime(cfg)
	c := pcxx.PerThread[float64](rt, "x", 8)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		*c.Local(th, th.ID()) = 1
		th.Barrier()
		th.Compute(10 * vtime.Microsecond)
		_ = c.Read(th, (th.ID()+1)%2)
		th.Compute(10 * vtime.Microsecond)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Second barrier entry at 10+10 µs after first exit for each thread.
	for th, evs := range pt.Threads {
		var exit0, entry1 vtime.Time
		for _, e := range evs {
			if e.Kind == trace.KindBarrierExit && e.Arg0 == 0 {
				exit0 = e.Time
			}
			if e.Kind == trace.KindBarrierEntry && e.Arg0 == 1 {
				entry1 = e.Time
			}
		}
		if entry1-exit0 != 20*vtime.Microsecond {
			t.Fatalf("thread %d: compute between barriers = %v, want 20µs", th, entry1-exit0)
		}
	}
}

func TestFlattenAndThreadTrace(t *testing.T) {
	tr := measure(t, 3, 0, func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()+1) * 10 * vtime.Microsecond)
		th.Barrier()
		th.Compute(5 * vtime.Microsecond)
		th.Barrier()
	})
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	flat := pt.Flatten()
	if len(flat.Events) != pt.Events() {
		t.Fatalf("Flatten dropped events: %d vs %d", len(flat.Events), pt.Events())
	}
	var last vtime.Time
	for i, e := range flat.Events {
		if e.Time < last {
			t.Fatalf("Flatten unsorted at %d", i)
		}
		last = e.Time
	}
	if flat.Duration() != pt.Duration() {
		t.Fatalf("Flatten duration %v != %v", flat.Duration(), pt.Duration())
	}
	// Per-thread extraction matches the translated lists exactly.
	for i := 0; i < 3; i++ {
		tt := pt.ThreadTrace(i)
		if len(tt.Events) != len(pt.Threads[i]) {
			t.Fatalf("ThreadTrace(%d) has %d events, want %d", i, len(tt.Events), len(pt.Threads[i]))
		}
		for j := range tt.Events {
			if tt.Events[j] != pt.Threads[i][j] {
				t.Fatalf("ThreadTrace(%d) event %d differs", i, j)
			}
		}
	}
}
