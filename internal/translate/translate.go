// Package translate implements the trace translation algorithm of the
// extrapolation technique: it takes the merged trace of an n-thread
// program measured on one processor and produces n per-thread traces whose
// timestamps reflect an idealized n-processor execution.
//
// The algorithm (Section 3.2 of the paper):
//
//   - Non-synchronization events keep their inter-event deltas: if e1 and
//     e2 are consecutive events of one thread at t1 and t2, and e1 was
//     adjusted to t1', then e2 is adjusted to t2 − t1 + t1'.
//   - Barrier exits are adjusted to the translated timestamp of the entry
//     of the *last* thread to enter that barrier — threads exit the
//     instant the last one arrives (instant barrier).
//   - Remote accesses are instantaneous (they cost nothing here; the
//     simulator charges them later).
//   - The per-event instrumentation overhead recorded with the trace is
//     subtracted from every inter-event delta, compensating for
//     measurement perturbation.
//
// The soundness of the delta rule rests on the non-preemptive measurement
// runtime: between two events a thread was never descheduled, so the gap
// is pure computation of that thread.
package translate

import (
	"fmt"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// ParallelTrace is the result of translation: one event list per thread,
// each timestamped as if the threads ran concurrently on n processors
// with free communication and synchronization.
type ParallelTrace struct {
	// NumThreads is n.
	NumThreads int
	// Threads[i] holds thread i's translated events in time order.
	Threads [][]trace.Event
	// Barriers is the number of global barriers in the program.
	Barriers int
	// Phases carries over the phase-name table of the source trace.
	Phases []string
}

// Duration returns the idealized parallel execution time: the latest
// translated event timestamp across all threads.
func (pt *ParallelTrace) Duration() vtime.Time {
	var d vtime.Time
	for _, evs := range pt.Threads {
		if n := len(evs); n > 0 && evs[n-1].Time > d {
			d = evs[n-1].Time
		}
	}
	return d
}

// Events returns the total number of translated events.
func (pt *ParallelTrace) Events() int {
	n := 0
	for _, evs := range pt.Threads {
		n += len(evs)
	}
	return n
}

// Flatten merges the per-thread translated event lists back into a single
// time-ordered trace — the form consumed by the codecs and the profile
// analyzer. The merge is stable by thread id at equal timestamps.
func (pt *ParallelTrace) Flatten() *trace.Trace {
	out := trace.New(pt.NumThreads)
	out.Phases = append([]string(nil), pt.Phases...)
	idx := make([]int, pt.NumThreads)
	for {
		best := -1
		for t := 0; t < pt.NumThreads; t++ {
			if idx[t] >= len(pt.Threads[t]) {
				continue
			}
			if best == -1 || pt.Threads[t][idx[t]].Time < pt.Threads[best][idx[best]].Time {
				best = t
			}
		}
		if best == -1 {
			return out
		}
		out.Append(pt.Threads[best][idx[best]])
		idx[best]++
	}
}

// ThreadTrace extracts thread i's translated events as a standalone trace
// file — the paper's "n trace files each containing events from one
// thread".
func (pt *ParallelTrace) ThreadTrace(i int) *trace.Trace {
	out := trace.New(pt.NumThreads)
	out.Phases = append([]string(nil), pt.Phases...)
	out.Events = append([]trace.Event(nil), pt.Threads[i]...)
	return out
}

// Translate converts a validated 1-processor measurement trace into a
// ParallelTrace. It processes the merged events in measurement order,
// maintaining per-thread delta chains; because the measurement runtime
// only switches threads at barriers, all entries of a barrier precede all
// its exits in the merged order, so barrier release times are complete by
// the time the first exit is translated.
func Translate(tr *trace.Trace) (*ParallelTrace, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("translate: %w", err)
	}
	n := tr.NumThreads
	pt := &ParallelTrace{
		NumThreads: n,
		Threads:    make([][]trace.Event, n),
		Phases:     append([]string(nil), tr.Phases...),
	}
	for i := range pt.Threads {
		pt.Threads[i] = []trace.Event{}
	}

	lastOrig := make([]vtime.Time, n)       // original timestamp of thread's previous event
	lastTranslated := make([]vtime.Time, n) // translated timestamp of thread's previous event
	started := make([]bool, n)

	// Validation guarantees barrier ids are dense and increasing, so a
	// flat slice indexed by id replaces a map: the per-event lookup on
	// the hot path is a bounds check and an add, not a hash probe.
	barriers := make([]barrierState, 0, 64)

	for idx, e := range tr.Events {
		th := int(e.Thread)
		var tNew vtime.Time
		if !started[th] {
			// A thread's first event anchors its chain at time 0: in the
			// ideal n-processor run all threads start together.
			tNew = 0
			started[th] = true
		} else {
			delta := e.Time - lastOrig[th] - tr.EventOverhead
			if delta < 0 {
				// The overhead estimate exceeded the measured gap (e.g.
				// back-to-back events); clamp rather than run time
				// backwards.
				delta = 0
			}
			tNew = lastTranslated[th] + delta
		}

		switch e.Kind {
		case trace.KindBarrierEntry:
			for int64(len(barriers)) <= e.Arg0 {
				barriers = append(barriers, barrierState{})
			}
			b := &barriers[e.Arg0]
			b.entries++
			if tNew > b.release {
				b.release = tNew
			}
		case trace.KindBarrierExit:
			if e.Arg0 < 0 || e.Arg0 >= int64(len(barriers)) || barriers[e.Arg0].entries != n {
				got := 0
				if e.Arg0 >= 0 && e.Arg0 < int64(len(barriers)) {
					got = barriers[e.Arg0].entries
				}
				return nil, fmt.Errorf(
					"translate: event %d: exit of barrier %d before all %d threads entered (%d so far) — was the measurement preemptive?",
					idx, e.Arg0, n, got)
			}
			// Instant barrier: the thread leaves when the last thread
			// entered, regardless of when the 1-processor scheduler
			// happened to resume it.
			tNew = barriers[e.Arg0].release
		}

		lastOrig[th] = e.Time
		lastTranslated[th] = tNew
		e.Time = tNew
		pt.Threads[th] = append(pt.Threads[th], e)
	}
	pt.Barriers = len(barriers)
	return pt, nil
}

// barrierState tracks one global barrier during translation: how many
// threads have entered and the latest translated entry time (which
// becomes the release time).
type barrierState struct {
	entries int
	release vtime.Time
}
