package translate

import (
	"fmt"
	"io"

	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// StreamOptions configures a streaming translation.
type StreamOptions struct {
	// MaxPending caps how many translated events may sit buffered across
	// all per-thread cursors at once. The consumer (the simulator) drains
	// threads in simulated-time order while the source arrives in
	// measurement order, so buffering is bounded by the event skew within
	// roughly one barrier epoch; a trace that exceeds the cap aborts with
	// an error instead of ballooning memory. Zero or negative means no
	// cap.
	MaxPending int
}

// Stream is the streaming counterpart of Translate: it consumes the
// merged 1-processor measurement trace through a cursor and exposes one
// translated cursor per thread. Events are translated on demand — a
// Thread(i).Next() call pulls source events (translating and buffering
// events of other threads) until thread i's next event materializes — so
// peak memory is O(threads + pending buffer), not O(total events).
//
// Validation is inline: the structural checks of Trace.Validate run as
// events stream past, and the end-of-trace invariants (no thread stuck
// in a barrier, all threads completed equally many barriers) run when
// the source is exhausted. Any violation surfaces as a sticky error on
// every cursor.
//
// A Stream and its cursors are single-consumer and not safe for
// concurrent use — exactly like the underlying trace.Reader.
type Stream struct {
	n        int
	overhead vtime.Time
	phases   []string
	src      trace.Reader

	queues     []eventQueue
	pending    int
	maxPending int
	srcDone    bool
	err        error

	// Inline validation state (mirrors Trace.Validate).
	lastTime    vtime.Time
	nextBarrier []int64
	inBarrier   []bool

	// Translation state (mirrors Translate).
	lastOrig       []vtime.Time
	lastTranslated []vtime.Time
	started        []bool
	barriers       []barrierState // indexed by barrier id (ids are dense)
	idx            int

	srcDuration   vtime.Time // timestamp of the last source event
	maxTranslated vtime.Time // latest translated timestamp seen
}

// NewStream starts a streaming translation of the trace described by hdr
// whose merged events arrive from src.
func NewStream(hdr trace.Header, src trace.Reader, opts StreamOptions) (*Stream, error) {
	if hdr.NumThreads <= 0 {
		return nil, fmt.Errorf("translate: NumThreads = %d, want > 0", hdr.NumThreads)
	}
	n := hdr.NumThreads
	return &Stream{
		n:           n,
		overhead:    hdr.EventOverhead,
		phases:      hdr.Phases,
		src:         src,
		queues:      make([]eventQueue, n),
		maxPending:  opts.MaxPending,
		nextBarrier: make([]int64, n),
		inBarrier:   make([]bool, n),

		lastOrig:       make([]vtime.Time, n),
		lastTranslated: make([]vtime.Time, n),
		started:        make([]bool, n),
	}, nil
}

// NumThreads returns n.
func (s *Stream) NumThreads() int { return s.n }

// Phases returns the phase-name table carried over from the source.
func (s *Stream) Phases() []string { return s.phases }

// Thread returns the translated event cursor for thread i.
func (s *Stream) Thread(i int) trace.Reader { return &threadCursor{s: s, id: i} }

// Barriers reports the number of global barriers seen so far; it is the
// program's total once the stream is drained.
func (s *Stream) Barriers() int { return len(s.barriers) }

// SourceDuration reports the timestamp of the last source event pulled —
// the 1-processor virtual execution time once the stream is drained.
func (s *Stream) SourceDuration() vtime.Time { return s.srcDuration }

// Duration reports the latest translated timestamp produced so far — the
// idealized parallel execution time once the stream is drained.
func (s *Stream) Duration() vtime.Time { return s.maxTranslated }

// Err returns the sticky stream error, if any (io.EOF is not an error).
func (s *Stream) Err() error { return s.err }

// Drain consumes any source events not yet pulled, completing validation
// and the duration/barrier totals. Buffered translated events remain
// readable. It returns the sticky stream error, if any.
func (s *Stream) Drain() error {
	for s.err == nil && !s.srcDone {
		s.pull()
	}
	return s.err
}

type threadCursor struct {
	s  *Stream
	id int
}

func (c *threadCursor) Next() (trace.Event, error) { return c.s.next(c.id) }

// next returns thread id's next translated event, pulling the source as
// needed.
func (s *Stream) next(id int) (trace.Event, error) {
	if id < 0 || id >= s.n {
		return trace.Event{}, fmt.Errorf("translate: thread %d out of range [0,%d)", id, s.n)
	}
	for {
		if q := &s.queues[id]; q.size > 0 {
			s.pending--
			return q.pop(), nil
		}
		if s.err != nil {
			return trace.Event{}, s.err
		}
		if s.srcDone {
			return trace.Event{}, io.EOF
		}
		s.pull()
	}
}

// pull reads, validates, and translates one source event into its
// thread's queue; on source EOF it runs the end-of-trace checks. Errors
// become sticky.
func (s *Stream) pull() {
	e, err := s.src.Next()
	if err == io.EOF {
		s.finish()
		return
	}
	if err != nil {
		s.err = err
		return
	}

	// Inline structural validation, mirroring Trace.Validate.
	if !e.Kind.Valid() {
		s.err = fmt.Errorf("trace: event %d has invalid kind %d", s.idx, e.Kind)
		return
	}
	if e.Time < s.lastTime {
		s.err = fmt.Errorf("trace: event %d time %v precedes previous %v", s.idx, e.Time, s.lastTime)
		return
	}
	s.lastTime = e.Time
	if int(e.Thread) < 0 || int(e.Thread) >= s.n {
		s.err = fmt.Errorf("trace: event %d thread %d out of range [0,%d)", s.idx, e.Thread, s.n)
		return
	}
	th := int(e.Thread)
	switch e.Kind {
	case trace.KindBarrierEntry:
		if s.inBarrier[th] {
			s.err = fmt.Errorf("trace: event %d: thread %d enters barrier %d while already in a barrier", s.idx, th, e.Arg0)
			return
		}
		if e.Arg0 != s.nextBarrier[th] {
			s.err = fmt.Errorf("trace: event %d: thread %d enters barrier %d, want %d", s.idx, th, e.Arg0, s.nextBarrier[th])
			return
		}
		s.inBarrier[th] = true
	case trace.KindBarrierExit:
		if !s.inBarrier[th] {
			s.err = fmt.Errorf("trace: event %d: thread %d exits barrier %d without entering", s.idx, th, e.Arg0)
			return
		}
		if e.Arg0 != s.nextBarrier[th] {
			s.err = fmt.Errorf("trace: event %d: thread %d exits barrier %d, want %d", s.idx, th, e.Arg0, s.nextBarrier[th])
			return
		}
		s.inBarrier[th] = false
		s.nextBarrier[th]++
	case trace.KindRemoteRead, trace.KindRemoteWrite:
		if e.Arg1 < 0 {
			s.err = fmt.Errorf("trace: event %d: negative transfer size %d", s.idx, e.Arg1)
			return
		}
		if e.Arg0 < 0 || int(e.Arg0) >= s.n {
			s.err = fmt.Errorf("trace: event %d: owner thread %d out of range", s.idx, e.Arg0)
			return
		}
	}

	// Translation proper, mirroring Translate event for event.
	var tNew vtime.Time
	if !s.started[th] {
		tNew = 0
		s.started[th] = true
	} else {
		delta := e.Time - s.lastOrig[th] - s.overhead
		if delta < 0 {
			delta = 0
		}
		tNew = s.lastTranslated[th] + delta
	}

	switch e.Kind {
	case trace.KindBarrierEntry:
		for int64(len(s.barriers)) <= e.Arg0 {
			s.barriers = append(s.barriers, barrierState{})
		}
		b := &s.barriers[e.Arg0]
		b.entries++
		if tNew > b.release {
			b.release = tNew
		}
	case trace.KindBarrierExit:
		if e.Arg0 < 0 || e.Arg0 >= int64(len(s.barriers)) || s.barriers[e.Arg0].entries != s.n {
			got := 0
			if e.Arg0 >= 0 && e.Arg0 < int64(len(s.barriers)) {
				got = s.barriers[e.Arg0].entries
			}
			s.err = fmt.Errorf(
				"translate: event %d: exit of barrier %d before all %d threads entered (%d so far) — was the measurement preemptive?",
				s.idx, e.Arg0, s.n, got)
			return
		}
		tNew = s.barriers[e.Arg0].release
	}

	s.lastOrig[th] = e.Time
	s.lastTranslated[th] = tNew
	s.srcDuration = e.Time
	if tNew > s.maxTranslated {
		s.maxTranslated = tNew
	}
	s.idx++

	e.Time = tNew
	s.queues[th].push(e)
	s.pending++
	if s.maxPending > 0 && s.pending > s.maxPending {
		s.err = fmt.Errorf("translate: %d translated events buffered, cap %d — consumer skew exceeds the stream buffer", s.pending, s.maxPending)
	}
}

// finish runs the end-of-trace invariants once the source is exhausted.
func (s *Stream) finish() {
	for th, b := range s.inBarrier {
		if b {
			s.err = fmt.Errorf("trace: thread %d still inside barrier %d at end of trace", th, s.nextBarrier[th])
			return
		}
	}
	for th := 1; th < s.n; th++ {
		if s.nextBarrier[th] != s.nextBarrier[0] {
			s.err = fmt.Errorf("trace: thread %d completed %d barriers, thread 0 completed %d",
				th, s.nextBarrier[th], s.nextBarrier[0])
			return
		}
	}
	s.srcDone = true
}

// eventQueue is a growable ring-buffer FIFO of events. Capacity grows to
// the high-water mark of one thread's buffered skew and is then reused,
// so steady-state translation does not allocate per event.
type eventQueue struct {
	buf  []trace.Event
	head int
	size int
}

func (q *eventQueue) push(e trace.Event) {
	if q.size == len(q.buf) {
		grown := make([]trace.Event, max(16, 2*len(q.buf)))
		for i := 0; i < q.size; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.size)%len(q.buf)] = e
	q.size++
}

func (q *eventQueue) pop() trace.Event {
	e := q.buf[q.head]
	q.buf[q.head] = trace.Event{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return e
}
