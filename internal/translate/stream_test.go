package translate

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// streamTestTrace measures a mid-size program with barriers, remote
// reads, and phases — enough structure to exercise every translation
// rule.
func streamTestTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	cfg := pcxx.DefaultConfig(n)
	cfg.EventOverhead = 100 * vtime.Nanosecond
	rt := pcxx.NewRuntime(cfg)
	c := pcxx.PerThread[float64](rt, "x", 64)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		for it := 0; it < 5; it++ {
			th.Phase("iter", func() {
				th.Compute(vtime.Time(th.ID()+1) * 10 * vtime.Microsecond)
				if th.ID() > 0 {
					_ = c.Read(th, th.ID()-1)
				}
			})
			th.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// drainStream reads every thread's cursor fully, in the given order of
// thread visits (a permutation strategy), returning per-thread events.
func drainStream(t *testing.T, s *Stream, order string) [][]trace.Event {
	t.Helper()
	out := make([][]trace.Event, s.NumThreads())
	for i := range out {
		out[i] = []trace.Event{}
	}
	switch order {
	case "sequential": // thread 0 fully first — maximum buffering skew
		for i := 0; i < s.NumThreads(); i++ {
			evs, err := trace.ReadAll(s.Thread(i))
			if err != nil {
				t.Fatalf("thread %d: %v", i, err)
			}
			out[i] = append(out[i], evs...)
		}
	case "roundrobin":
		cursors := make([]trace.Reader, s.NumThreads())
		done := make([]bool, s.NumThreads())
		for i := range cursors {
			cursors[i] = s.Thread(i)
		}
		for remaining := s.NumThreads(); remaining > 0; {
			for i, c := range cursors {
				if done[i] {
					continue
				}
				e, err := c.Next()
				if err == io.EOF {
					done[i] = true
					remaining--
					continue
				}
				if err != nil {
					t.Fatalf("thread %d: %v", i, err)
				}
				out[i] = append(out[i], e)
			}
		}
	default:
		t.Fatalf("unknown order %q", order)
	}
	return out
}

// TestStreamMatchesTranslate: the streamed per-thread events must be
// identical to the batch translation regardless of consumption order.
func TestStreamMatchesTranslate(t *testing.T) {
	tr := streamTestTrace(t, 4)
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []string{"sequential", "roundrobin"} {
		s, err := NewStream(tr.Header(), tr.Reader(), StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, s, order)
		for th := range pt.Threads {
			if len(got[th]) != len(pt.Threads[th]) {
				t.Fatalf("%s: thread %d: %d events, want %d", order, th, len(got[th]), len(pt.Threads[th]))
			}
			for i := range got[th] {
				if got[th][i] != pt.Threads[th][i] {
					t.Fatalf("%s: thread %d event %d: got %+v want %+v",
						order, th, i, got[th][i], pt.Threads[th][i])
				}
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("%s: Drain: %v", order, err)
		}
		if s.Barriers() != pt.Barriers {
			t.Errorf("%s: Barriers = %d, want %d", order, s.Barriers(), pt.Barriers)
		}
		if s.Duration() != pt.Duration() {
			t.Errorf("%s: Duration = %v, want %v", order, s.Duration(), pt.Duration())
		}
		if s.SourceDuration() != tr.Duration() {
			t.Errorf("%s: SourceDuration = %v, want %v", order, s.SourceDuration(), tr.Duration())
		}
	}
}

// TestStreamOverDecoder: streaming translation composed with the
// streaming binary decoder — the full bounded-memory front end — matches
// the in-memory path.
func TestStreamOverDecoder(t *testing.T) {
	tr := streamTestTrace(t, 3)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(d.Header(), d, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, s, "roundrobin")
	pt, err := Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for th := range pt.Threads {
		if len(got[th]) != len(pt.Threads[th]) {
			t.Fatalf("thread %d: %d events, want %d", th, len(got[th]), len(pt.Threads[th]))
		}
		for i := range got[th] {
			if got[th][i] != pt.Threads[th][i] {
				t.Fatalf("thread %d event %d mismatch", th, i)
			}
		}
	}
}

// TestStreamRejectsMalformed: the inline validation must catch the same
// violations Trace.Validate catches, including the end-of-trace checks.
func TestStreamRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		evs  []trace.Event
		want string
	}{
		{
			"time travel",
			[]trace.Event{
				{Time: 10, Kind: trace.KindThreadStart, Thread: 0},
				{Time: 5, Kind: trace.KindThreadEnd, Thread: 0},
			},
			"precedes previous",
		},
		{
			"thread out of range",
			[]trace.Event{{Time: 1, Kind: trace.KindThreadStart, Thread: 7}},
			"out of range",
		},
		{
			"exit without entry",
			[]trace.Event{{Time: 1, Kind: trace.KindBarrierExit, Thread: 0}},
			"without entering",
		},
		{
			"stuck in barrier",
			[]trace.Event{{Time: 1, Kind: trace.KindBarrierEntry, Thread: 0}},
			"still inside barrier",
		},
		{
			"negative transfer",
			[]trace.Event{{Time: 1, Kind: trace.KindRemoteRead, Thread: 0, Arg0: 0, Arg1: -4}},
			"negative transfer size",
		},
	}
	for _, tc := range cases {
		s, err := NewStream(trace.Header{NumThreads: 2}, trace.NewSliceReader(tc.evs), StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		err = s.Drain()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Drain = %v, want error containing %q", tc.name, err, tc.want)
		}
		// The sticky error must surface on the cursors too, after any
		// already-buffered events are served.
		c := s.Thread(0)
		var err2 error
		for i := 0; i < len(tc.evs)+1; i++ {
			if _, err2 = c.Next(); err2 != nil {
				break
			}
		}
		if err2 == nil || err2 == io.EOF {
			t.Errorf("%s: cursor surfaced %v, want the stream error", tc.name, err2)
		}
	}
}

// TestStreamUnbalancedBarriers: a barrier exit before all threads have
// entered is rejected exactly as in the batch path.
func TestStreamUnbalancedBarriers(t *testing.T) {
	evs := []trace.Event{
		{Time: 1, Kind: trace.KindBarrierEntry, Thread: 0},
		{Time: 2, Kind: trace.KindBarrierExit, Thread: 0},
	}
	s, err := NewStream(trace.Header{NumThreads: 2}, trace.NewSliceReader(evs), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil || !strings.Contains(err.Error(), "before all") {
		t.Fatalf("Drain = %v, want barrier-exit error", err)
	}
}

// TestStreamMaxPending: the buffering guard trips when the consumer's
// skew exceeds the configured cap.
func TestStreamMaxPending(t *testing.T) {
	tr := streamTestTrace(t, 4)
	s, err := NewStream(tr.Header(), tr.Reader(), StreamOptions{MaxPending: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Draining thread 3 first forces all earlier threads' events to
	// buffer, blowing the 3-event cap immediately.
	_, err = trace.ReadAll(s.Thread(3))
	if err == nil || !strings.Contains(err.Error(), "cap 3") {
		t.Fatalf("ReadAll = %v, want MaxPending error", err)
	}
}

// TestStreamRejectsZeroThreads mirrors Validate's NumThreads check.
func TestStreamRejectsZeroThreads(t *testing.T) {
	if _, err := NewStream(trace.Header{}, trace.NewSliceReader(nil), StreamOptions{}); err == nil {
		t.Fatal("NewStream accepted 0 threads")
	}
}
