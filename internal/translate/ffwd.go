package translate

import (
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// Steady-state fast-forward support: the simulator fingerprints the
// whole pipeline — decoder, this stream, the event kernel — at pattern
// iteration boundaries, and when two snapshots differ only by uniform
// per-timescale shifts it skips the intervening work wholesale. This
// file is the translate layer's contribution: its live state as
// fingerprint slots, and the matching shift application. The two
// traversals must mirror each other exactly (same slots, same order),
// or skips would corrupt state instead of advancing it.

// ffBarWindow is how many of the most recent barrier records are
// fingerprinted and relocated on skip. Exits are only valid for a
// barrier all n threads have entered, and entering barrier b means the
// thread exited b-1, which required all threads to have entered b-1 —
// so every future access lands on one of the last two records.
// Tracking four gives slack without scanning the whole history.
const ffBarWindow = 4

// PatternSource returns the compiled-trace cursor feeding this stream,
// or nil when the source is anything else. Fast-forward only engages
// when the loop structure is available.
func (s *Stream) PatternSource() *trace.PatternSource {
	ps, _ := s.src.(*trace.PatternSource)
	return ps
}

// AppendReplayFingerprint appends the stream's live state to fp. It
// reports false when the stream is in a state fast-forward must not
// touch (sticky error or exhausted source).
func (s *Stream) AppendReplayFingerprint(fp *trace.ReplayFingerprint) bool {
	if s.err != nil || s.srcDone {
		return false
	}
	fp.Push(trace.FPOrig, int64(s.lastTime))
	fp.Push(trace.FPOrig, int64(s.srcDuration))
	fp.Push(trace.FPTrans, int64(s.maxTranslated))
	fp.Push(trace.FPAccum, int64(s.idx))
	fp.Push(trace.FPExact, int64(s.pending))
	for i := 0; i < s.n; i++ {
		fp.Push(trace.FPBarID, s.nextBarrier[i])
		fp.PushBool(s.inBarrier[i])
		fp.Push(trace.FPOrig, int64(s.lastOrig[i]))
		fp.Push(trace.FPTrans, int64(s.lastTranslated[i]))
		fp.PushBool(s.started[i])
		q := &s.queues[i]
		fp.Push(trace.FPExact, int64(q.size))
		for k := 0; k < q.size; k++ {
			e := &q.buf[(q.head+k)%len(q.buf)]
			fp.Push(trace.FPTrans, int64(e.Time))
			fp.Push(trace.FPExact, int64(e.Kind))
			fp.Push(trace.FPExact, int64(e.Thread))
			if e.Kind == trace.KindBarrierEntry || e.Kind == trace.KindBarrierExit {
				fp.Push(trace.FPBarID, e.Arg0)
			} else {
				fp.Push(trace.FPExact, e.Arg0)
			}
			fp.Push(trace.FPExact, e.Arg1)
			fp.Push(trace.FPExact, e.Arg2)
		}
	}
	nb := len(s.barriers)
	fp.Push(trace.FPBarID, int64(nb))
	lo := nb - ffBarWindow
	if lo < 0 {
		lo = 0
	}
	for id := lo; id < nb; id++ {
		b := &s.barriers[id]
		fp.Push(trace.FPExact, int64(b.entries))
		if b.release == 0 {
			fp.Push(trace.FPExact, 0)
		} else {
			fp.Push(trace.FPBarT, int64(b.release))
		}
	}
	return true
}

// ApplyReplayShift advances the stream's state by j chunks of the
// learned per-chunk deltas, exactly as replaying j more chunks event by
// event would have left it. The traversal mirrors
// AppendReplayFingerprint slot for slot.
func (s *Stream) ApplyReplayShift(j int64, d *trace.ReplayDeltas) {
	s.lastTime += vtime.Time(j * d.Orig)
	s.srcDuration += vtime.Time(j * d.Orig)
	s.maxTranslated += vtime.Time(j * d.Trans)
	s.idx += int(j * d.NextAccum())
	for i := 0; i < s.n; i++ {
		s.nextBarrier[i] += j * d.Bar
		s.lastOrig[i] += vtime.Time(j * d.Orig)
		s.lastTranslated[i] += vtime.Time(j * d.Trans)
		q := &s.queues[i]
		for k := 0; k < q.size; k++ {
			e := &q.buf[(q.head+k)%len(q.buf)]
			e.Time += vtime.Time(j * d.Trans)
			if e.Kind == trace.KindBarrierEntry || e.Kind == trace.KindBarrierExit {
				e.Arg0 += j * d.Bar
			}
		}
	}
	// Slide the barrier window: the dense-by-id slice grows by j×Δbar
	// zeroed records and the tracked top records relocate to their new
	// ids. Records falling below the window are zeroed — they are
	// provably never read again (see ffBarWindow), so event replay's
	// frozen values and these zeros are indistinguishable.
	grow := j * d.Bar
	nb := len(s.barriers)
	w := ffBarWindow
	if nb < w {
		w = nb
	}
	if grow > 0 {
		var win [ffBarWindow]barrierState
		copy(win[:w], s.barriers[nb-w:])
		for id := nb - w; id < nb; id++ {
			s.barriers[id] = barrierState{}
		}
		for k := int64(0); k < grow; k++ {
			s.barriers = append(s.barriers, barrierState{})
		}
		for k := 0; k < w; k++ {
			b := win[k]
			if b.release != 0 {
				b.release += vtime.Time(j * d.BarT)
			}
			s.barriers[len(s.barriers)-w+k] = b
		}
	} else {
		for id := nb - w; id < nb; id++ {
			if b := &s.barriers[id]; b.release != 0 {
				b.release += vtime.Time(j * d.BarT)
			}
		}
	}
}
