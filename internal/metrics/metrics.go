// Package metrics derives performance metrics (Section 2 of the paper)
// from performance information: execution times, speedup and efficiency
// series, time breakdowns, and communication statistics, computed from
// simulation results or extrapolated traces.
package metrics

import (
	"fmt"
	"strings"

	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// Point is one (processor count, predicted time) sample of a scaling
// experiment.
type Point struct {
	Procs int
	Time  vtime.Time
}

// Series is a labelled sequence of scaling samples.
type Series struct {
	Label  string
	Points []Point
}

// Speedup returns the speedup of each point relative to the 1-processor
// point (the paper's definition). If no 1-processor sample exists, the
// smallest processor count is the baseline, scaled accordingly.
func Speedup(points []Point) []float64 {
	if len(points) == 0 {
		return nil
	}
	base := points[0]
	for _, p := range points {
		if p.Procs < base.Procs {
			base = p
		}
	}
	out := make([]float64, len(points))
	for i, p := range points {
		if p.Time <= 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(base.Time) / float64(p.Time) * float64(base.Procs)
	}
	return out
}

// Efficiency returns speedup divided by processor count for each point.
func Efficiency(points []Point) []float64 {
	sp := Speedup(points)
	out := make([]float64, len(points))
	for i, p := range points {
		if p.Procs > 0 {
			out[i] = sp[i] / float64(p.Procs)
		}
	}
	return out
}

// MinTimePoint returns the point with the lowest predicted time — the
// "number of processors delivering minimum execution time" the Figure 7
// discussion tracks.
func MinTimePoint(points []Point) Point {
	if len(points) == 0 {
		return Point{}
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Time < best.Time {
			best = p
		}
	}
	return best
}

// Breakdown is the share of total thread-time spent in each activity.
type Breakdown struct {
	Compute     float64
	CommWait    float64
	BarrierWait float64
	Service     float64
	CPUWait     float64
}

// ComputeBreakdown derives the activity shares from a simulation result.
func ComputeBreakdown(r *sim.Result) Breakdown {
	var total vtime.Time
	var b Breakdown
	for _, s := range r.Threads {
		total += s.Compute + s.CommWait + s.BarrierWait + s.Service + s.CPUWait
	}
	if total == 0 {
		return b
	}
	f := func(t vtime.Time) float64 { return float64(t) / float64(total) }
	b.Compute = f(r.TotalCompute())
	b.CommWait = f(r.TotalCommWait())
	b.BarrierWait = f(r.TotalBarrierWait())
	b.Service = f(r.TotalService())
	var cpu vtime.Time
	for _, s := range r.Threads {
		cpu += s.CPUWait
	}
	b.CPUWait = f(cpu)
	return b
}

// String renders the breakdown as percentages.
func (b Breakdown) String() string {
	return fmt.Sprintf("compute %.1f%% comm %.1f%% barrier %.1f%% service %.1f%% cpu-wait %.1f%%",
		b.Compute*100, b.CommWait*100, b.BarrierWait*100, b.Service*100, b.CPUWait*100)
}

// TraceMetrics are metrics recomputed from an extrapolated event trace —
// the paper's final pipeline stage, and a cross-check on the simulator's
// own accounting.
type TraceMetrics struct {
	TotalTime   vtime.Time
	Barriers    int64
	Messages    int64
	MsgBytes    int64
	BarrierWait vtime.Time // sum over threads of (exit − entry)
}

// FromTrace derives metrics from an extrapolated trace.
func FromTrace(tr *trace.Trace) (TraceMetrics, error) {
	var m TraceMetrics
	type key struct {
		thread int32
		bar    int64
	}
	entries := make(map[key]vtime.Time)
	var exits int64
	for _, e := range tr.Events {
		if e.Time > m.TotalTime {
			m.TotalTime = e.Time
		}
		switch e.Kind {
		case trace.KindBarrierEntry:
			entries[key{e.Thread, e.Arg0}] = e.Time
		case trace.KindBarrierExit:
			at, ok := entries[key{e.Thread, e.Arg0}]
			if !ok {
				return m, fmt.Errorf("metrics: exit of barrier %d by thread %d without entry", e.Arg0, e.Thread)
			}
			m.BarrierWait += e.Time - at
			exits++
		case trace.KindMsgSend:
			m.Messages++
			m.MsgBytes += e.Arg1
		}
	}
	if tr.NumThreads > 0 {
		m.Barriers = exits / int64(tr.NumThreads)
	}
	return m, nil
}

// FormatSeries renders a speedup/time series compactly for logs.
func FormatSeries(s Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Label)
	for _, p := range s.Points {
		fmt.Fprintf(&b, " P%d=%v", p.Procs, p.Time)
	}
	return b.String()
}
