package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func TestSpeedupBasics(t *testing.T) {
	points := []Point{
		{Procs: 1, Time: 1000},
		{Procs: 2, Time: 500},
		{Procs: 4, Time: 400},
	}
	sp := Speedup(points)
	want := []float64{1, 2, 2.5}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-9 {
			t.Errorf("Speedup[%d] = %g, want %g", i, sp[i], want[i])
		}
	}
	eff := Efficiency(points)
	wantEff := []float64{1, 1, 0.625}
	for i := range wantEff {
		if math.Abs(eff[i]-wantEff[i]) > 1e-9 {
			t.Errorf("Efficiency[%d] = %g, want %g", i, eff[i], wantEff[i])
		}
	}
}

func TestSpeedupBaselineNotFirst(t *testing.T) {
	// The baseline is the smallest processor count regardless of order.
	points := []Point{
		{Procs: 4, Time: 300},
		{Procs: 2, Time: 600},
	}
	sp := Speedup(points)
	if math.Abs(sp[0]-4) > 1e-9 { // 600/300·2
		t.Errorf("Speedup[0] = %g, want 4", sp[0])
	}
}

func TestSpeedupEdgeCases(t *testing.T) {
	if Speedup(nil) != nil {
		t.Error("nil points should give nil")
	}
	sp := Speedup([]Point{{Procs: 1, Time: 0}})
	if sp[0] != 0 {
		t.Error("zero time should give zero speedup, not a division panic")
	}
}

func TestMinTimePoint(t *testing.T) {
	points := []Point{
		{Procs: 1, Time: 1000},
		{Procs: 4, Time: 300},
		{Procs: 16, Time: 450},
	}
	if best := MinTimePoint(points); best.Procs != 4 {
		t.Errorf("MinTimePoint = %+v, want procs 4", best)
	}
	if MinTimePoint(nil) != (Point{}) {
		t.Error("empty input should give zero point")
	}
}

func TestSpeedupMonotoneProperty(t *testing.T) {
	// Lower time at higher procs ⇒ higher speedup.
	f := func(a, b uint16) bool {
		ta := vtime.Time(a) + 1
		tb := vtime.Time(b) + 1
		points := []Point{{Procs: 1, Time: 1000 * vtime.Microsecond},
			{Procs: 2, Time: ta}, {Procs: 4, Time: tb}}
		sp := Speedup(points)
		if ta <= tb {
			return sp[1] >= sp[2]*float64(ta)/float64(tb)*0 // always true; real check below
		}
		return true
	}
	_ = f
	// Direct check: speedup is inversely proportional to time.
	points := []Point{{Procs: 1, Time: 1200}, {Procs: 2, Time: 600}, {Procs: 4, Time: 300}}
	sp := Speedup(points)
	if !(sp[0] < sp[1] && sp[1] < sp[2]) {
		t.Errorf("speedup not increasing: %v", sp)
	}
	if err := quick.Check(func(x uint16) bool {
		tm := vtime.Time(x) + 1
		p := []Point{{Procs: 1, Time: 1 << 20}, {Procs: 2, Time: tm}}
		s := Speedup(p)
		return math.Abs(s[1]-float64(1<<20)/float64(tm)) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeBreakdown(t *testing.T) {
	r := &sim.Result{
		Threads: []sim.ThreadStats{
			{Compute: 600, CommWait: 200, BarrierWait: 100, Service: 50, CPUWait: 50},
			{Compute: 400, CommWait: 300, BarrierWait: 200, Service: 50, CPUWait: 50},
		},
	}
	b := ComputeBreakdown(r)
	if math.Abs(b.Compute-0.5) > 1e-9 {
		t.Errorf("Compute share = %g, want 0.5", b.Compute)
	}
	if math.Abs(b.CommWait-0.25) > 1e-9 {
		t.Errorf("CommWait share = %g, want 0.25", b.CommWait)
	}
	total := b.Compute + b.CommWait + b.BarrierWait + b.Service + b.CPUWait
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %g", total)
	}
	if !strings.Contains(b.String(), "compute 50.0%") {
		t.Errorf("String() = %q", b.String())
	}
	// Empty result: no panic, zero shares.
	if z := ComputeBreakdown(&sim.Result{}); z.Compute != 0 {
		t.Error("empty result should break down to zeros")
	}
}

func TestFromTrace(t *testing.T) {
	tr := trace.New(2)
	tr.Append(trace.Event{Time: 0, Kind: trace.KindBarrierEntry, Thread: 0, Arg0: 0})
	tr.Append(trace.Event{Time: 10, Kind: trace.KindBarrierEntry, Thread: 1, Arg0: 0})
	tr.Append(trace.Event{Time: 15, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 0})
	tr.Append(trace.Event{Time: 15, Kind: trace.KindBarrierExit, Thread: 1, Arg0: 0})
	tr.Append(trace.Event{Time: 20, Kind: trace.KindMsgSend, Thread: 0, Arg0: 1, Arg1: 128})
	m, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalTime != 20 {
		t.Errorf("TotalTime = %v", m.TotalTime)
	}
	if m.Barriers != 1 {
		t.Errorf("Barriers = %d", m.Barriers)
	}
	if m.Messages != 1 || m.MsgBytes != 128 {
		t.Errorf("Messages = %d bytes = %d", m.Messages, m.MsgBytes)
	}
	// (15−0) + (15−10) = 20 of barrier wait.
	if m.BarrierWait != 20 {
		t.Errorf("BarrierWait = %v, want 20", m.BarrierWait)
	}
}

func TestFromTraceRejectsOrphanExit(t *testing.T) {
	tr := trace.New(1)
	tr.Append(trace.Event{Time: 5, Kind: trace.KindBarrierExit, Thread: 0, Arg0: 0})
	if _, err := FromTrace(tr); err == nil {
		t.Error("orphan barrier exit accepted")
	}
}

func TestFormatSeries(t *testing.T) {
	s := Series{Label: "grid", Points: []Point{{Procs: 1, Time: vtime.Millisecond}}}
	got := FormatSeries(s)
	if !strings.Contains(got, "grid:") || !strings.Contains(got, "P1=") {
		t.Errorf("FormatSeries = %q", got)
	}
}
