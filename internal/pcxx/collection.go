package pcxx

import (
	"fmt"

	"extrap/internal/pcxx/dist"
	"extrap/internal/trace"
)

// Collection is a distributed array of elements of type E, the pC++
// collection abstraction. Elements live in a global space (the 1-processor
// runtime keeps everything in one address space, so a remote access is
// indistinguishable from a local one in timing — the paper's measurement
// trick), but ownership is defined by the distribution, and every access
// to a non-owned element records a remote access event.
type Collection[E any] struct {
	id        int32
	name      string
	rt        *Runtime
	dist      dist.Distribution
	elems     []E
	elemBytes int64
}

// NewCollection registers a collection with the runtime. elemBytes is the
// compiler-estimated transfer size of one element — what the high-level
// measurement attributes to each remote access under CompilerEstimate
// mode.
func NewCollection[E any](rt *Runtime, name string, d dist.Distribution, elemBytes int64) *Collection[E] {
	if elemBytes <= 0 {
		panic(fmt.Sprintf("pcxx: collection %q: elemBytes must be positive, got %d", name, elemBytes))
	}
	c := &Collection[E]{
		id:        rt.nextCollectionID,
		name:      name,
		rt:        rt,
		dist:      d,
		elems:     make([]E, d.Size()),
		elemBytes: elemBytes,
	}
	rt.nextCollectionID++
	return c
}

// Name returns the collection's name.
func (c *Collection[E]) Name() string { return c.name }

// Size returns the number of elements.
func (c *Collection[E]) Size() int { return len(c.elems) }

// Dist returns the collection's distribution.
func (c *Collection[E]) Dist() dist.Distribution { return c.dist }

// ElemBytes returns the compiler-estimated element transfer size.
func (c *Collection[E]) ElemBytes() int64 { return c.elemBytes }

// Owner returns the thread owning element i.
func (c *Collection[E]) Owner(i int) int { return c.dist.Owner(i) }

// IsLocal reports whether element i is owned by thread t.
func (c *Collection[E]) IsLocal(t *Thread, i int) bool { return c.dist.Owner(i) == t.id }

// Local returns a pointer to element i, which must be owned by t; it
// panics otherwise, enforcing the owner-computes discipline.
func (c *Collection[E]) Local(t *Thread, i int) *E {
	if c.dist.Owner(i) != t.id {
		panic(fmt.Sprintf("pcxx: thread %d accessed %s[%d] locally, owner is %d",
			t.id, c.name, i, c.dist.Owner(i)))
	}
	return &c.elems[i]
}

// recordAccess emits a remote access event for element i with the
// configured size attribution.
func (c *Collection[E]) recordAccess(t *Thread, kind trace.Kind, i int, actualBytes int64) {
	size := c.elemBytes
	if t.rt.cfg.SizeMode == ActualSize {
		size = actualBytes
	}
	t.rt.record(trace.Event{
		Kind:   kind,
		Thread: int32(t.id),
		Arg0:   int64(c.dist.Owner(i)),
		Arg1:   size,
		Arg2:   trace.PackRef(c.id, int32(i)),
	})
}

// Read returns a copy of element i. If t does not own i, a remote read of
// the full element is recorded.
func (c *Collection[E]) Read(t *Thread, i int) E {
	if c.dist.Owner(i) != t.id {
		c.recordAccess(t, trace.KindRemoteRead, i, c.elemBytes)
	}
	return c.elems[i]
}

// ReadPart returns a read-only view of element i when only actualBytes of
// it are needed (the compiler's partial-transfer optimization). Under
// CompilerEstimate size attribution the recorded transfer is still the
// whole element — reproducing the measurement abstraction whose cost the
// paper's Grid study uncovers.
func (c *Collection[E]) ReadPart(t *Thread, i int, actualBytes int64) *E {
	if actualBytes < 0 || actualBytes > c.elemBytes {
		panic(fmt.Sprintf("pcxx: %s[%d]: partial read of %d bytes from %d-byte element",
			c.name, i, actualBytes, c.elemBytes))
	}
	if c.dist.Owner(i) != t.id {
		c.recordAccess(t, trace.KindRemoteRead, i, actualBytes)
	}
	return &c.elems[i]
}

// Write stores v into element i. A non-owned target records a remote
// write event (the §5 extension of the paper; the benchmarks in the suite
// do not use it, but the runtime and simulator support it).
func (c *Collection[E]) Write(t *Thread, i int, v E) {
	if c.dist.Owner(i) != t.id {
		c.recordAccess(t, trace.KindRemoteWrite, i, c.elemBytes)
	}
	c.elems[i] = v
}

// ForOwned calls f for every element index owned by t, ascending.
func (c *Collection[E]) ForOwned(t *Thread, f func(i int)) {
	for i := 0; i < len(c.elems); i++ {
		if c.dist.Owner(i) == t.id {
			f(i)
		}
	}
}

// LocalCount returns the number of elements t owns.
func (c *Collection[E]) LocalCount(t *Thread) int { return c.dist.LocalCount(t.id) }

// Collection2D is a two-dimensional collection over a Dist2D: the natural
// container for grid benchmarks and matrices. Elements are addressed by
// (row, col).
type Collection2D[E any] struct {
	flat *Collection[E]
	d2   *dist.Dist2D
}

// NewCollection2D registers a rows×cols collection distributed by d2.
func NewCollection2D[E any](rt *Runtime, name string, d2 *dist.Dist2D, elemBytes int64) *Collection2D[E] {
	return &Collection2D[E]{
		flat: NewCollection[E](rt, name, d2, elemBytes),
		d2:   d2,
	}
}

// Name returns the collection's name.
func (c *Collection2D[E]) Name() string { return c.flat.name }

// Dist returns the 2-D distribution.
func (c *Collection2D[E]) Dist() *dist.Dist2D { return c.d2 }

// ElemBytes returns the compiler-estimated element transfer size.
func (c *Collection2D[E]) ElemBytes() int64 { return c.flat.elemBytes }

// index linearizes (r, c) row-major.
func (c *Collection2D[E]) index(r, col int) int { return r*c.d2.Cols() + col }

// Owner returns the thread owning element (r, col).
func (c *Collection2D[E]) Owner(r, col int) int { return c.d2.OwnerRC(r, col) }

// IsLocal reports whether (r, col) is owned by t.
func (c *Collection2D[E]) IsLocal(t *Thread, r, col int) bool {
	return c.d2.OwnerRC(r, col) == t.id
}

// Local returns a pointer to (r, col), which must be owned by t.
func (c *Collection2D[E]) Local(t *Thread, r, col int) *E {
	return c.flat.Local(t, c.index(r, col))
}

// Read returns a copy of element (r, col), recording a remote read when t
// is not the owner.
func (c *Collection2D[E]) Read(t *Thread, r, col int) E {
	return c.flat.Read(t, c.index(r, col))
}

// ReadPart returns a view of (r, col) transferring only actualBytes.
func (c *Collection2D[E]) ReadPart(t *Thread, r, col int, actualBytes int64) *E {
	return c.flat.ReadPart(t, c.index(r, col), actualBytes)
}

// Write stores v into (r, col), recording a remote write when t is not
// the owner.
func (c *Collection2D[E]) Write(t *Thread, r, col int, v E) {
	c.flat.Write(t, c.index(r, col), v)
}

// ForOwned calls f for every (r, col) owned by t, row-major.
func (c *Collection2D[E]) ForOwned(t *Thread, f func(r, col int)) {
	for r := 0; r < c.d2.Rows(); r++ {
		for col := 0; col < c.d2.Cols(); col++ {
			if c.d2.OwnerRC(r, col) == t.id {
				f(r, col)
			}
		}
	}
}
