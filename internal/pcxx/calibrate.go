package pcxx

import (
	"time"

	"extrap/internal/vtime"
)

// CalibrateHost measures the machine this code runs on with a wall-clock
// floating-point microbenchmark — the same procedure the paper used to
// rate its Sun 4 at 1.1360 MFLOPS — and returns a CostModel whose FlopTime
// matches the measured rate. It lets a user treat their real machine as
// the measurement host when charging computation costs, or derive a
// MipsRatio between their machine and any modeled target.
//
// The result is inherently non-deterministic (it measures real hardware);
// everything else in this repository stays deterministic by using the
// fixed Sun4/CM5Node models instead.
func CalibrateHost() CostModel {
	const flops = 4_000_000
	acc := 1.0
	mul := 1.0000000001
	start := time.Now()
	for i := 0; i < flops/2; i++ {
		acc = acc*mul + 1e-12 // 2 flops per iteration, loop-carried
	}
	elapsed := time.Since(start)
	sink = acc // defeat dead-code elimination
	per := float64(elapsed.Nanoseconds()) / flops
	if per < 0.01 {
		per = 0.01 // clamp absurd timer resolution artifacts
	}
	flopTime := vtime.Time(per + 0.5)
	if flopTime < 1 {
		flopTime = 1
	}
	atLeast1 := func(t vtime.Time) vtime.Time {
		if t < 1 {
			return 1
		}
		return t
	}
	return CostModel{
		FlopTime:    flopTime,
		IntOpTime:   atLeast1(flopTime / 2),
		MemByteTime: atLeast1(flopTime / 8),
		CallTime:    atLeast1(flopTime * 20),
	}
}

// sink keeps calibration arithmetic observable to the compiler.
var sink float64
