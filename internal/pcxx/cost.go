package pcxx

import "extrap/internal/vtime"

// CostModel converts abstract operation counts into virtual computation
// time on the measurement host. The original ExtraP measured real Sun-4
// wall time between events; this repository instead charges a
// deterministic per-operation cost so that runs are exactly reproducible
// while the magnitudes (µs–ms compute phases) stay realistic. Benchmarks
// perform their real arithmetic *and* charge the model, so correctness
// checks and timing coexist.
type CostModel struct {
	// FlopTime is charged per floating-point operation.
	FlopTime vtime.Time
	// IntOpTime is charged per integer/control operation.
	IntOpTime vtime.Time
	// MemByteTime is charged per byte moved through the local memory
	// system (copies, initialization).
	MemByteTime vtime.Time
	// CallTime is charged per runtime call (method invocation overhead).
	CallTime vtime.Time
}

// Sun4 returns the cost model of the paper's measurement host: a Sun 4
// rated at 1.1360 MFLOPS by the paper's floating-point microbenchmark,
// i.e. ~880 ns per flop. Integer and memory costs are scaled to typical
// SPARC-era ratios.
func Sun4() CostModel {
	return CostModel{
		FlopTime:    880 * vtime.Nanosecond,
		IntOpTime:   150 * vtime.Nanosecond,
		MemByteTime: 25 * vtime.Nanosecond,
		CallTime:    2 * vtime.Microsecond,
	}
}

// MFLOPS reports the model's floating-point rating in millions of
// floating-point operations per second, the figure the paper's processor
// microbenchmark produces (1.1360 for the Sun 4, 2.7645 for the CM-5
// node).
func (c CostModel) MFLOPS() float64 {
	if c.FlopTime <= 0 {
		return 0
	}
	return 1e3 / float64(c.FlopTime) // (1e9 ns/s) / (ns/flop) / 1e6
}

// CM5Node returns a cost model matching the CM-5 scalar rating the paper
// measured (2.7645 MFLOPS ⇒ ~362 ns per flop). It is used by the
// direct-execution comparator, not by the measurement run.
func CM5Node() CostModel {
	return CostModel{
		FlopTime:    362 * vtime.Nanosecond,
		IntOpTime:   60 * vtime.Nanosecond,
		MemByteTime: 10 * vtime.Nanosecond,
		CallTime:    800 * vtime.Nanosecond,
	}
}
