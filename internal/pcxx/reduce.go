package pcxx

import (
	"extrap/internal/pcxx/dist"
)

// This file provides the collective patterns pC++ programs build from
// remote reads and barriers: reductions and broadcasts over a per-thread
// value collection. They are written exactly as a pC++ benchmark would
// write them — owner-computes local updates, remote reads of other
// threads' partials, global barriers between rounds — so their
// communication shows up in traces like any user code.

// PerThread creates a collection with exactly one element per thread,
// element i owned by thread i. valueBytes is the element transfer size.
func PerThread[E any](rt *Runtime, name string, valueBytes int64) *Collection[E] {
	n := rt.Threads()
	return NewCollection[E](rt, name, dist.NewBlock(n, n), valueBytes)
}

// ReduceWith performs a binary-tree reduction of the per-thread partials
// in c (one float64 per thread, element i owned by thread i) with an
// arbitrary associative fold op. After the call, thread 0's element holds
// the reduced value; all threads are synchronized. Each round costs one
// barrier; active threads read their partner's partial remotely and fold
// it into their own element. All threads must pass the same op.
func ReduceWith(t *Thread, c *Collection[float64], op func(a, b float64) float64) {
	n := t.N()
	for stride := 1; stride < n; stride *= 2 {
		t.Barrier()
		partner := t.id + stride
		if t.id%(2*stride) == 0 && partner < n {
			v := c.Read(t, partner)
			p := c.Local(t, t.id)
			*p = op(*p, v)
			t.Flops(1)
		}
	}
	t.Barrier()
}

// ReduceSum is ReduceWith specialized to addition.
func ReduceSum(t *Thread, c *Collection[float64]) {
	ReduceWith(t, c, func(a, b float64) float64 { return a + b })
}

// BroadcastRead returns element src of c on every thread: threads other
// than the owner perform a remote read. A barrier before the reads makes
// sure the value is complete; a barrier after them makes sure no thread
// overwrites the source (e.g. for a following reduction) while slower
// threads are still reading.
func BroadcastRead(t *Thread, c *Collection[float64], src int) float64 {
	t.Barrier()
	v := c.Read(t, src)
	t.Barrier()
	return v
}

// AllReduceSum combines ReduceSum with a broadcast so that every thread
// returns the global sum of the per-thread partials in c.
func AllReduceSum(t *Thread, c *Collection[float64]) float64 {
	ReduceSum(t, c)
	return BroadcastRead(t, c, 0)
}

// AllReduceWith combines ReduceWith with a broadcast so that every thread
// returns the reduced value.
func AllReduceWith(t *Thread, c *Collection[float64], op func(a, b float64) float64) float64 {
	ReduceWith(t, c, op)
	return BroadcastRead(t, c, 0)
}

// AllGatherSum is the flat alternative to AllReduceSum: after one
// barrier, every thread reads every other thread's partial and sums
// locally. It produces n·(n−1) small messages instead of ~2n, which makes
// it a deliberately communication-heavy pattern for experiments.
func AllGatherSum(t *Thread, c *Collection[float64]) float64 {
	t.Barrier()
	sum := 0.0
	for i := 0; i < t.N(); i++ {
		sum += c.Read(t, i)
	}
	t.Flops(t.N())
	t.Barrier()
	return sum
}
