// Package pcxx implements the object-parallel runtime system that plays
// the role of pC++ in the extrapolation pipeline: distributed collections
// of elements, owner-computes parallel execution, global barrier
// synchronization, and remote element access — all instrumented so that a
// run of an n-thread program on one (virtual) processor produces the
// high-level event trace that trace translation and simulation consume.
//
// Programs are written SPMD-style: a body function runs once per thread
// under the non-preemptive threads package, all threads sharing one
// virtual clock (they are timesliced on a single processor, switching only
// at barriers, exactly the execution environment E1 of the paper).
package pcxx

import (
	"fmt"

	"extrap/internal/threads"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// SizeMode selects how the instrumentation attributes transfer sizes to
// remote access events — the measurement abstraction at the center of the
// paper's Grid investigation (Figure 5).
type SizeMode uint8

const (
	// CompilerEstimate records the collection's whole-element size for
	// every remote access, as the original high-level pC++ measurement
	// did (cheap: no per-access size bookkeeping, but pessimistic when
	// the compiler requests only part of an element).
	CompilerEstimate SizeMode = iota
	// ActualSize records the bytes actually requested by the access.
	ActualSize
)

func (m SizeMode) String() string {
	if m == CompilerEstimate {
		return "compiler-estimate"
	}
	return "actual-size"
}

// Config parameterizes a measurement run.
type Config struct {
	// Threads is the number of program threads n.
	Threads int
	// Cost is the computation cost model of the measurement host.
	Cost CostModel
	// EventOverhead is the instrumentation cost charged to the virtual
	// clock for each recorded event. Trace translation compensates for
	// it; tests verify the compensation is exact.
	EventOverhead vtime.Time
	// SizeMode selects transfer-size attribution for remote accesses.
	SizeMode SizeMode
	// Seed feeds the per-thread deterministic random streams.
	Seed uint64
	// Interrupt, when non-nil, is polled periodically during the run (at
	// event records and compute charges); a non-nil return aborts the
	// measurement with that error. This is how callers bound the
	// wall-clock time of an otherwise run-to-completion virtual-clock
	// execution — context.Context.Err is the intended value. Interrupt
	// never affects the virtual clock or the trace, so an uninterrupted
	// run is byte-identical with or without it.
	Interrupt func() error
}

// DefaultConfig returns a measurement configuration for n threads on the
// Sun-4 cost model with zero instrumentation overhead.
func DefaultConfig(n int) Config {
	return Config{Threads: n, Cost: Sun4(), Seed: 0x5eed}
}

// Runtime is the shared state of one measurement run: the global virtual
// clock, the trace being recorded, barrier bookkeeping, and the registered
// collections' global element space.
type Runtime struct {
	cfg   Config
	clock *vtime.VirtualClock
	tr    *trace.Trace

	arrived    int
	waiting    []*threads.Thread
	barrierSeq []int64 // per-thread next barrier id

	nextCollectionID int32
	threadCtxs       []*Thread

	interruptCtr int
}

// interruptEvery is how many recorded events / compute charges pass
// between Interrupt polls — frequent enough that a cancelled run stops
// within microseconds of real work, rare enough to stay off the
// measurement hot path.
const interruptEvery = 4096

// checkInterrupt polls cfg.Interrupt every interruptEvery calls and
// aborts the run by panicking with the returned error; the cooperative
// scheduler converts the panic into an error from Run and unwinds every
// thread, so an interrupted measurement leaks nothing.
func (rt *Runtime) checkInterrupt() {
	if rt.cfg.Interrupt == nil {
		return
	}
	if rt.interruptCtr++; rt.interruptCtr < interruptEvery {
		return
	}
	rt.interruptCtr = 0
	if err := rt.cfg.Interrupt(); err != nil {
		panic(fmt.Errorf("measurement interrupted: %w", err))
	}
}

// NewRuntime prepares a runtime; collections are registered against it
// before Run executes the program body.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Threads <= 0 {
		panic(fmt.Sprintf("pcxx: invalid thread count %d", cfg.Threads))
	}
	rt := &Runtime{
		cfg:        cfg,
		clock:      vtime.NewVirtualClock(0),
		tr:         trace.New(cfg.Threads),
		barrierSeq: make([]int64, cfg.Threads),
	}
	rt.tr.EventOverhead = cfg.EventOverhead
	return rt
}

// Threads returns n, the number of program threads.
func (rt *Runtime) Threads() int { return rt.cfg.Threads }

// Config returns the run configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Now returns the current virtual time of the measurement run.
func (rt *Runtime) Now() vtime.Time { return rt.clock.Now() }

// record appends an event at the current virtual time and charges the
// instrumentation overhead.
func (rt *Runtime) record(e trace.Event) {
	rt.checkInterrupt()
	e.Time = rt.clock.Now()
	rt.tr.Append(e)
	rt.clock.Advance(rt.cfg.EventOverhead)
}

// Run executes body once per thread under the cooperative scheduler and
// returns the merged measurement trace. The trace is validated before it
// is returned; a validation failure indicates a bug in the program (e.g.
// divergent barrier structure) and is reported as an error.
func (rt *Runtime) Run(body func(*Thread)) (*trace.Trace, error) {
	rt.threadCtxs = make([]*Thread, rt.cfg.Threads)
	rng := vtime.NewRand(rt.cfg.Seed)
	seeds := make([]uint64, rt.cfg.Threads)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	sched := threads.New(rt.cfg.Threads, func(th *threads.Thread) {
		t := &Thread{
			id:  th.ID(),
			rt:  rt,
			th:  th,
			rng: vtime.NewRand(seeds[th.ID()]),
		}
		rt.threadCtxs[th.ID()] = t
		rt.record(trace.Event{Kind: trace.KindThreadStart, Thread: int32(t.id), Arg0: int64(rt.cfg.Threads)})
		body(t)
		rt.record(trace.Event{Kind: trace.KindThreadEnd, Thread: int32(t.id)})
	})
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("pcxx: %w", err)
	}
	if err := rt.tr.Validate(); err != nil {
		return nil, fmt.Errorf("pcxx: program produced malformed trace: %w", err)
	}
	return rt.tr, nil
}

// Trace exposes the trace under construction (used by collections to
// intern phase names).
func (rt *Runtime) Trace() *trace.Trace { return rt.tr }

// Thread is the per-thread execution context handed to the program body:
// the pC++ "processor object" view. All computation-time charging, barrier
// synchronization, and collection access flow through it.
type Thread struct {
	id  int
	rt  *Runtime
	th  *threads.Thread
	rng *vtime.Rand
}

// ID returns the thread index in [0, n).
func (t *Thread) ID() int { return t.id }

// N returns the total number of program threads.
func (t *Thread) N() int { return t.rt.cfg.Threads }

// Rand returns the thread's private deterministic random stream.
func (t *Thread) Rand() *vtime.Rand { return t.rng }

// Now returns the current virtual time.
func (t *Thread) Now() vtime.Time { return t.rt.clock.Now() }

// Compute charges d of raw computation time to the virtual clock.
func (t *Thread) Compute(d vtime.Time) {
	if d < 0 {
		panic("pcxx: negative compute time")
	}
	t.rt.checkInterrupt()
	t.rt.clock.Advance(d)
}

// Flops charges the cost of n floating-point operations.
func (t *Thread) Flops(n int) {
	t.Compute(vtime.Time(n) * t.rt.cfg.Cost.FlopTime)
}

// Ops charges the cost of n integer/control operations.
func (t *Thread) Ops(n int) {
	t.Compute(vtime.Time(n) * t.rt.cfg.Cost.IntOpTime)
}

// Mem charges the cost of moving n bytes through local memory.
func (t *Thread) Mem(n int) {
	t.Compute(vtime.Time(n) * t.rt.cfg.Cost.MemByteTime)
}

// Call charges one runtime-call overhead.
func (t *Thread) Call() {
	t.Compute(t.rt.cfg.Cost.CallTime)
}

// Barrier synchronizes all n threads at a global barrier: the thread
// records its entry, parks until the last thread arrives, and records its
// exit when rescheduled. On the 1-processor measurement host this is the
// only point where the processor switches threads — the property trace
// translation depends on.
func (t *Thread) Barrier() {
	rt := t.rt
	seq := rt.barrierSeq[t.id]
	rt.barrierSeq[t.id]++
	rt.record(trace.Event{Kind: trace.KindBarrierEntry, Thread: int32(t.id), Arg0: seq})
	rt.arrived++
	if rt.arrived < rt.cfg.Threads {
		rt.waiting = append(rt.waiting, t.th)
		t.th.Park()
	} else {
		rt.arrived = 0
		ws := rt.waiting
		rt.waiting = nil
		for _, w := range ws {
			w.Unpark()
		}
	}
	rt.record(trace.Event{Kind: trace.KindBarrierExit, Thread: int32(t.id), Arg0: seq})
}

// Phase brackets a named program phase: it records a phase-begin event,
// runs f, and records phase-end. Phases are annotations for analysis; they
// do not synchronize.
func (t *Thread) Phase(name string, f func()) {
	id := t.rt.tr.PhaseID(name)
	t.rt.record(trace.Event{Kind: trace.KindPhaseBegin, Thread: int32(t.id), Arg0: id})
	f()
	t.rt.record(trace.Event{Kind: trace.KindPhaseEnd, Thread: int32(t.id), Arg0: id})
}
