package dist

import "fmt"

// Dist2D maps a rows×cols element grid onto a processor grid derived from
// per-dimension attributes, following the pC++ conventions:
//
//   - (distributed, distributed): an s×s processor grid with
//     s = floor(sqrt(N)); threads s²..N−1 own nothing (the paper's
//     perfect-square artifact).
//   - (distributed, Whole): a N×1 grid (rows spread over all threads).
//   - (Whole, distributed): a 1×N grid.
//   - (Whole, Whole): everything on thread 0.
//
// Thread ids are assigned row-major over the processor grid.
type Dist2D struct {
	rows, cols int
	n          int
	rowAttr    Attr
	colAttr    Attr
	pr, pc     int // processor grid shape
	brows      int // block size along rows (Block attr)
	bcols      int // block size along cols
}

// NewDist2D builds a 2-D distribution of a rows×cols grid over n threads
// with the given per-dimension attributes.
func NewDist2D(rows, cols, n int, rowAttr, colAttr Attr) *Dist2D {
	checkArgs(rows*cols, n)
	d := &Dist2D{rows: rows, cols: cols, n: n, rowAttr: rowAttr, colAttr: colAttr}
	rowDist := rowAttr != Whole
	colDist := colAttr != Whole
	switch {
	case rowDist && colDist:
		s := isqrt(n)
		if s < 1 {
			s = 1
		}
		d.pr, d.pc = s, s
	case rowDist:
		d.pr, d.pc = n, 1
	case colDist:
		d.pr, d.pc = 1, n
	default:
		d.pr, d.pc = 1, 1
	}
	d.brows = ceilDiv(rows, d.pr)
	d.bcols = ceilDiv(cols, d.pc)
	return d
}

// Rows returns the number of element rows.
func (d *Dist2D) Rows() int { return d.rows }

// Cols returns the number of element columns.
func (d *Dist2D) Cols() int { return d.cols }

// NumThreads returns the thread count the grid is mapped over.
func (d *Dist2D) NumThreads() int { return d.n }

// ProcGrid returns the processor grid shape (pr rows × pc cols of threads).
func (d *Dist2D) ProcGrid() (pr, pc int) { return d.pr, d.pc }

// UsedThreads returns how many threads own at least one element — pr×pc,
// which is < n when a doubly-distributed grid meets a non-square count.
func (d *Dist2D) UsedThreads() int { return d.pr * d.pc }

// coord returns the processor coordinate of index i along a dimension.
func coord(i, procs, blk int, a Attr) int {
	switch a {
	case Whole:
		return 0
	case Block:
		c := i / blk
		if c >= procs {
			c = procs - 1
		}
		return c
	case Cyclic:
		return i % procs
	}
	panic(fmt.Sprintf("dist: unknown attr %v", a))
}

// localCoord returns the local position of i along a dimension.
func localCoord(i, procs, blk int, a Attr) int {
	switch a {
	case Whole:
		return i
	case Block:
		return i - coord(i, procs, blk, Block)*blk
	case Cyclic:
		return i / procs
	}
	panic(fmt.Sprintf("dist: unknown attr %v", a))
}

// OwnerRC returns the thread owning element (r, c).
func (d *Dist2D) OwnerRC(r, c int) int {
	pr := coord(r, d.pr, d.brows, d.rowAttr)
	pc := coord(c, d.pc, d.bcols, d.colAttr)
	return pr*d.pc + pc
}

// LocalRC returns (r, c)'s position within its owner's local tile.
func (d *Dist2D) LocalRC(r, c int) (lr, lc int) {
	return localCoord(r, d.pr, d.brows, d.rowAttr),
		localCoord(c, d.pc, d.bcols, d.colAttr)
}

// Name describes the distribution, e.g. "(Block,Cyclic)".
func (d *Dist2D) Name() string {
	return fmt.Sprintf("(%s,%s)", d.rowAttr, d.colAttr)
}

// Size returns rows*cols, satisfying the linearized Distribution view.
func (d *Dist2D) Size() int { return d.rows * d.cols }

// Owner returns the owner of linearized index i (row-major).
func (d *Dist2D) Owner(i int) int { return d.OwnerRC(i/d.cols, i%d.cols) }

// LocalIndex returns a dense local index for linearized index i: the
// element's position in its owner's row-major local tile.
func (d *Dist2D) LocalIndex(i int) int {
	r, c := i/d.cols, i%d.cols
	lr, lc := d.LocalRC(r, c)
	return lr*d.localTileCols(d.OwnerRC(r, c)) + lc
}

// LocalCount returns the number of elements thread owns.
func (d *Dist2D) LocalCount(thread int) int {
	if thread >= d.pr*d.pc {
		return 0
	}
	return d.localTileRows(thread) * d.localTileCols(thread)
}

// localTileRows returns the number of element rows thread owns.
func (d *Dist2D) localTileRows(thread int) int {
	p := thread / d.pc
	return dimLocalCount(d.rows, d.pr, d.brows, d.rowAttr, p)
}

// localTileCols returns the number of element columns thread owns.
func (d *Dist2D) localTileCols(thread int) int {
	p := thread % d.pc
	return dimLocalCount(d.cols, d.pc, d.bcols, d.colAttr, p)
}

// TileShape returns the (rows, cols) shape of thread's local tile.
func (d *Dist2D) TileShape(thread int) (r, c int) {
	if thread >= d.pr*d.pc {
		return 0, 0
	}
	return d.localTileRows(thread), d.localTileCols(thread)
}

func dimLocalCount(size, procs, blk int, a Attr, p int) int {
	switch a {
	case Whole:
		if p == 0 {
			return size
		}
		return 0
	case Block:
		lo := p * blk
		if lo >= size {
			return 0
		}
		hi := lo + blk
		if p == procs-1 || hi > size {
			hi = size
		}
		// The last processor also absorbs any overflow rows beyond
		// procs*blk (cannot happen with ceil blocks, but keep the clamp).
		if p == procs-1 && size > procs*blk {
			hi = size
		}
		return hi - lo
	case Cyclic:
		c := size / procs
		if p < size%procs {
			c++
		}
		return c
	}
	panic(fmt.Sprintf("dist: unknown attr %v", a))
}
