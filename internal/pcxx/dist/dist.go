// Package dist implements the data-distribution algebra of the pC++-style
// runtime: per-dimension Block, Cyclic, and Whole attributes for one- and
// two-dimensional collections, mapped onto a set of threads.
//
// The 2-D (BLOCK,BLOCK) mapping reproduces the pC++ behaviour the paper
// calls out: a two-dimensional collection is laid out on an s×s processor
// grid with s = floor(sqrt(N)), so when N is not a perfect square the
// remaining N−s² threads own no elements and sit idle — the cause of the
// "no improvement from 4 to 8 processors" plateau in Figures 4 and 5.
package dist

import "fmt"

// Attr is a per-dimension distribution attribute.
type Attr uint8

// Distribution attributes, matching the pC++ compiler's per-dimension
// choices for collections.
const (
	// Whole leaves the dimension undistributed (mapped entirely to the
	// first processor coordinate of that dimension).
	Whole Attr = iota
	// Block splits the dimension into contiguous equal blocks.
	Block
	// Cyclic deals indices round-robin across the dimension's processors.
	Cyclic
)

func (a Attr) String() string {
	switch a {
	case Whole:
		return "Whole"
	case Block:
		return "Block"
	case Cyclic:
		return "Cyclic"
	}
	return fmt.Sprintf("Attr(%d)", uint8(a))
}

// Distribution maps global element indices of a 1-D collection to owning
// threads and local indices. Implementations must be pure functions of the
// index so that ownership is identical in the measurement run, the
// simulator, and the direct-execution comparator.
type Distribution interface {
	// Size returns the number of elements.
	Size() int
	// NumThreads returns the number of threads the collection is mapped
	// over (including threads that own nothing).
	NumThreads() int
	// Owner returns the thread owning global index i.
	Owner(i int) int
	// LocalIndex returns i's position within its owner's local sequence.
	LocalIndex(i int) int
	// LocalCount returns how many elements the given thread owns.
	LocalCount(thread int) int
	// Name returns a short human-readable description.
	Name() string
}

// Owned returns the global indices owned by thread, ascending. It is a
// convenience over any Distribution.
func Owned(d Distribution, thread int) []int {
	var out []int
	for i := 0; i < d.Size(); i++ {
		if d.Owner(i) == thread {
			out = append(out, i)
		}
	}
	return out
}

// block1D distributes size elements in contiguous blocks of ceil(size/n).
type block1D struct{ size, n, blk int }

// NewBlock returns a 1-D Block distribution of size elements over n threads.
func NewBlock(size, n int) Distribution {
	checkArgs(size, n)
	return block1D{size: size, n: n, blk: ceilDiv(size, n)}
}

func (d block1D) Size() int       { return d.size }
func (d block1D) NumThreads() int { return d.n }
func (d block1D) Owner(i int) int { return i / d.blk }
func (d block1D) LocalIndex(i int) int {
	return i % d.blk
}
func (d block1D) LocalCount(thread int) int {
	lo := thread * d.blk
	if lo >= d.size {
		return 0
	}
	hi := lo + d.blk
	if hi > d.size {
		hi = d.size
	}
	return hi - lo
}
func (d block1D) Name() string { return fmt.Sprintf("Block(%d/%d)", d.size, d.n) }

// cyclic1D deals elements round-robin.
type cyclic1D struct{ size, n int }

// NewCyclic returns a 1-D Cyclic distribution of size elements over n threads.
func NewCyclic(size, n int) Distribution {
	checkArgs(size, n)
	return cyclic1D{size: size, n: n}
}

func (d cyclic1D) Size() int            { return d.size }
func (d cyclic1D) NumThreads() int      { return d.n }
func (d cyclic1D) Owner(i int) int      { return i % d.n }
func (d cyclic1D) LocalIndex(i int) int { return i / d.n }
func (d cyclic1D) LocalCount(thread int) int {
	c := d.size / d.n
	if thread < d.size%d.n {
		c++
	}
	return c
}
func (d cyclic1D) Name() string { return fmt.Sprintf("Cyclic(%d/%d)", d.size, d.n) }

// whole1D maps everything to thread 0.
type whole1D struct{ size, n int }

// NewWhole returns a 1-D distribution placing all elements on thread 0.
func NewWhole(size, n int) Distribution {
	checkArgs(size, n)
	return whole1D{size: size, n: n}
}

func (d whole1D) Size() int            { return d.size }
func (d whole1D) NumThreads() int      { return d.n }
func (d whole1D) Owner(int) int        { return 0 }
func (d whole1D) LocalIndex(i int) int { return i }
func (d whole1D) LocalCount(thread int) int {
	if thread == 0 {
		return d.size
	}
	return 0
}
func (d whole1D) Name() string { return fmt.Sprintf("Whole(%d/%d)", d.size, d.n) }

func checkArgs(size, n int) {
	if size < 0 {
		panic(fmt.Sprintf("dist: negative size %d", size))
	}
	if n <= 0 {
		panic(fmt.Sprintf("dist: non-positive thread count %d", n))
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// isqrt returns floor(sqrt(n)) for n ≥ 0.
func isqrt(n int) int {
	if n < 0 {
		panic("dist: isqrt of negative")
	}
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
