package dist

import (
	"testing"
	"testing/quick"
)

// checkPartition verifies the fundamental distribution invariants for any
// 1-D Distribution: every index has exactly one owner in range, local
// counts sum to the size, and local indices are dense (0..count-1) and
// unique per thread.
func checkPartition(t *testing.T, d Distribution) {
	t.Helper()
	total := 0
	for th := 0; th < d.NumThreads(); th++ {
		total += d.LocalCount(th)
	}
	if total != d.Size() {
		t.Fatalf("%s: local counts sum to %d, want %d", d.Name(), total, d.Size())
	}
	seen := make(map[int]map[int]bool) // thread -> local index set
	for i := 0; i < d.Size(); i++ {
		o := d.Owner(i)
		if o < 0 || o >= d.NumThreads() {
			t.Fatalf("%s: Owner(%d) = %d out of range", d.Name(), i, o)
		}
		li := d.LocalIndex(i)
		if li < 0 || li >= d.LocalCount(o) {
			t.Fatalf("%s: LocalIndex(%d) = %d outside [0,%d) of owner %d",
				d.Name(), i, li, d.LocalCount(o), o)
		}
		if seen[o] == nil {
			seen[o] = make(map[int]bool)
		}
		if seen[o][li] {
			t.Fatalf("%s: duplicate local index %d on thread %d", d.Name(), li, o)
		}
		seen[o][li] = true
	}
}

func TestBlockPartition(t *testing.T) {
	for _, c := range []struct{ size, n int }{
		{10, 2}, {10, 3}, {1, 4}, {16, 16}, {17, 4}, {0, 3}, {100, 7},
	} {
		checkPartition(t, NewBlock(c.size, c.n))
	}
}

func TestCyclicPartition(t *testing.T) {
	for _, c := range []struct{ size, n int }{
		{10, 2}, {10, 3}, {1, 4}, {16, 16}, {17, 4}, {0, 3}, {100, 7},
	} {
		checkPartition(t, NewCyclic(c.size, c.n))
	}
}

func TestWholePartition(t *testing.T) {
	d := NewWhole(12, 4)
	checkPartition(t, d)
	for i := 0; i < 12; i++ {
		if d.Owner(i) != 0 {
			t.Fatalf("Whole: Owner(%d) = %d", i, d.Owner(i))
		}
	}
	if d.LocalCount(0) != 12 || d.LocalCount(3) != 0 {
		t.Fatal("Whole: local counts wrong")
	}
}

func TestBlockOwnership(t *testing.T) {
	d := NewBlock(10, 3) // blocks of 4: [0..3]→0, [4..7]→1, [8..9]→2
	wantOwners := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, w := range wantOwners {
		if d.Owner(i) != w {
			t.Errorf("Block(10/3).Owner(%d) = %d, want %d", i, d.Owner(i), w)
		}
	}
	if d.LocalCount(2) != 2 {
		t.Errorf("Block(10/3).LocalCount(2) = %d, want 2", d.LocalCount(2))
	}
}

func TestCyclicOwnership(t *testing.T) {
	d := NewCyclic(7, 3)
	wantOwners := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range wantOwners {
		if d.Owner(i) != w {
			t.Errorf("Cyclic(7/3).Owner(%d) = %d, want %d", i, d.Owner(i), w)
		}
	}
	if d.LocalCount(0) != 3 || d.LocalCount(1) != 2 || d.LocalCount(2) != 2 {
		t.Error("Cyclic(7/3) local counts wrong")
	}
}

func TestOwnedHelper(t *testing.T) {
	d := NewCyclic(6, 2)
	got := Owned(d, 1)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Owned = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Owned = %v, want %v", got, want)
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(size uint8, n uint8, kind uint8) bool {
		nn := int(n%32) + 1
		sz := int(size)
		var d Distribution
		switch kind % 3 {
		case 0:
			d = NewBlock(sz, nn)
		case 1:
			d = NewCyclic(sz, nn)
		default:
			d = NewWhole(sz, nn)
		}
		total := 0
		for th := 0; th < nn; th++ {
			total += d.LocalCount(th)
		}
		if total != sz {
			return false
		}
		for i := 0; i < sz; i++ {
			o := d.Owner(i)
			if o < 0 || o >= nn {
				return false
			}
			if li := d.LocalIndex(i); li < 0 || li >= d.LocalCount(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"negative size": func() { NewBlock(-1, 2) },
		"zero threads":  func() { NewCyclic(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDist2DSquareGridArtifact(t *testing.T) {
	// The paper: (BLOCK,BLOCK) on N threads uses an s×s grid with
	// s = floor(sqrt(N)); non-square N leaves threads idle.
	cases := []struct{ n, used int }{
		{1, 1}, {2, 1}, {4, 4}, {8, 4}, {16, 16}, {32, 25},
	}
	for _, c := range cases {
		d := NewDist2D(64, 64, c.n, Block, Block)
		if got := d.UsedThreads(); got != c.used {
			t.Errorf("(Block,Block) n=%d: UsedThreads = %d, want %d", c.n, got, c.used)
		}
		// Idle threads own nothing.
		for th := d.UsedThreads(); th < c.n; th++ {
			if d.LocalCount(th) != 0 {
				t.Errorf("n=%d: idle thread %d owns %d elements", c.n, th, d.LocalCount(th))
			}
		}
	}
}

func TestDist2DShapes(t *testing.T) {
	cases := []struct {
		row, col Attr
		n        int
		pr, pc   int
	}{
		{Block, Block, 16, 4, 4},
		{Block, Whole, 8, 8, 1},
		{Whole, Block, 8, 1, 8},
		{Whole, Whole, 8, 1, 1},
		{Cyclic, Cyclic, 9, 3, 3},
		{Cyclic, Whole, 5, 5, 1},
		{Block, Cyclic, 4, 2, 2},
	}
	for _, c := range cases {
		d := NewDist2D(12, 12, c.n, c.row, c.col)
		pr, pc := d.ProcGrid()
		if pr != c.pr || pc != c.pc {
			t.Errorf("(%v,%v) n=%d: grid %dx%d, want %dx%d", c.row, c.col, c.n, pr, pc, c.pr, c.pc)
		}
	}
}

func TestDist2DPartition(t *testing.T) {
	attrs := []Attr{Whole, Block, Cyclic}
	for _, ra := range attrs {
		for _, ca := range attrs {
			for _, n := range []int{1, 2, 4, 7, 8, 16} {
				d := NewDist2D(13, 9, n, ra, ca)
				checkPartition(t, d)
			}
		}
	}
}

func TestDist2DBlockBlockLayout(t *testing.T) {
	d := NewDist2D(8, 8, 4, Block, Block) // 2x2 proc grid, 4x4 tiles
	if o := d.OwnerRC(0, 0); o != 0 {
		t.Errorf("OwnerRC(0,0) = %d", o)
	}
	if o := d.OwnerRC(0, 7); o != 1 {
		t.Errorf("OwnerRC(0,7) = %d", o)
	}
	if o := d.OwnerRC(7, 0); o != 2 {
		t.Errorf("OwnerRC(7,0) = %d", o)
	}
	if o := d.OwnerRC(7, 7); o != 3 {
		t.Errorf("OwnerRC(7,7) = %d", o)
	}
	lr, lc := d.LocalRC(5, 6)
	if lr != 1 || lc != 2 {
		t.Errorf("LocalRC(5,6) = (%d,%d), want (1,2)", lr, lc)
	}
	r, c := d.TileShape(0)
	if r != 4 || c != 4 {
		t.Errorf("TileShape(0) = %dx%d, want 4x4", r, c)
	}
}

func TestDist2DTileShapes(t *testing.T) {
	// Uneven split: 10 rows over 3-proc dim → blocks of 4,4,2.
	d := NewDist2D(10, 10, 9, Block, Block)
	wantRows := []int{4, 4, 2}
	for p := 0; p < 3; p++ {
		r, _ := d.TileShape(p * 3)
		if r != wantRows[p] {
			t.Errorf("proc row %d: tile rows = %d, want %d", p, r, wantRows[p])
		}
	}
	// Idle thread beyond grid.
	if r, c := d.TileShape(100); r != 0 || c != 0 {
		t.Errorf("TileShape(out of grid) = %dx%d, want 0x0", r, c)
	}
}

func TestDist2DName(t *testing.T) {
	d := NewDist2D(4, 4, 4, Block, Cyclic)
	if d.Name() != "(Block,Cyclic)" {
		t.Errorf("Name() = %q", d.Name())
	}
	if Attr(9).String() != "Attr(9)" {
		t.Error("unknown attr should render")
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4, 24: 4, 25: 5, 32: 5, 100: 10}
	for in, want := range cases {
		if got := isqrt(in); got != want {
			t.Errorf("isqrt(%d) = %d, want %d", in, got, want)
		}
	}
}
