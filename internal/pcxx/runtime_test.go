package pcxx

import (
	"errors"
	"testing"

	"extrap/internal/pcxx/dist"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func TestBarrierTraceStructure(t *testing.T) {
	rt := NewRuntime(DefaultConfig(4))
	tr, err := rt.Run(func(th *Thread) {
		th.Compute(vtime.Time(100 * (th.ID() + 1)))
		th.Barrier()
		th.Compute(50)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", s.Barriers)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBarrierExitAfterLastEntry(t *testing.T) {
	// On the 1-processor host, no thread exits a barrier before the last
	// thread has entered it.
	rt := NewRuntime(DefaultConfig(3))
	tr, err := rt.Run(func(th *Thread) {
		th.Compute(vtime.Time(1000 * (th.ID() + 1)))
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastEntry, firstExit vtime.Time = 0, vtime.Forever
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindBarrierEntry:
			if e.Time > lastEntry {
				lastEntry = e.Time
			}
		case trace.KindBarrierExit:
			if e.Time < firstExit {
				firstExit = e.Time
			}
		}
	}
	if firstExit < lastEntry {
		t.Fatalf("barrier exit at %v before last entry at %v", firstExit, lastEntry)
	}
}

func TestVirtualTimeSerializesThreads(t *testing.T) {
	// n threads each computing d on one processor take n·d of virtual
	// time to the first barrier.
	const n = 4
	d := 100 * vtime.Microsecond
	rt := NewRuntime(DefaultConfig(n))
	tr, err := rt.Run(func(th *Thread) {
		th.Compute(d)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastEntry vtime.Time
	for _, e := range tr.Events {
		if e.Kind == trace.KindBarrierEntry {
			lastEntry = e.Time
		}
	}
	if lastEntry != vtime.Time(n)*d {
		t.Fatalf("last barrier entry at %v, want %v", lastEntry, vtime.Time(n)*d)
	}
}

func TestCostModelCharging(t *testing.T) {
	cfg := DefaultConfig(1)
	rt := NewRuntime(cfg)
	_, err := rt.Run(func(th *Thread) {
		start := th.Now()
		th.Flops(10)
		if th.Now()-start != 10*cfg.Cost.FlopTime {
			t.Errorf("Flops(10) advanced %v", th.Now()-start)
		}
		start = th.Now()
		th.Ops(7)
		if th.Now()-start != 7*cfg.Cost.IntOpTime {
			t.Errorf("Ops(7) advanced %v", th.Now()-start)
		}
		start = th.Now()
		th.Mem(64)
		if th.Now()-start != 64*cfg.Cost.MemByteTime {
			t.Errorf("Mem(64) advanced %v", th.Now()-start)
		}
		start = th.Now()
		th.Call()
		if th.Now()-start != cfg.Cost.CallTime {
			t.Errorf("Call() advanced %v", th.Now()-start)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSun4MFLOPS(t *testing.T) {
	// The Sun 4 model must reproduce the paper's 1.1360 MFLOPS within
	// rounding of the per-flop cost.
	got := Sun4().MFLOPS()
	if got < 1.10 || got > 1.17 {
		t.Errorf("Sun4 MFLOPS = %.4f, want ≈1.136", got)
	}
	cm5 := CM5Node().MFLOPS()
	if cm5 < 2.7 || cm5 > 2.85 {
		t.Errorf("CM5 MFLOPS = %.4f, want ≈2.7645", cm5)
	}
	// Their ratio is the paper's MipsRatio 0.41.
	ratio := Sun4().MFLOPS() / cm5
	if ratio < 0.40 || ratio > 0.42 {
		t.Errorf("MipsRatio = %.3f, want ≈0.41", ratio)
	}
}

func TestRemoteReadEvents(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	c := NewCollection[float64](rt, "x", dist.NewBlock(2, 2), 8)
	tr, err := rt.Run(func(th *Thread) {
		*c.Local(th, th.ID()) = float64(th.ID() + 1)
		th.Barrier()
		v := c.Read(th, (th.ID()+1)%2)
		want := float64((th.ID()+1)%2 + 1)
		if v != want {
			t.Errorf("thread %d read %v, want %v", th.ID(), v, want)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.RemoteReads != 2 {
		t.Fatalf("RemoteReads = %d, want 2", s.RemoteReads)
	}
	if s.RemoteBytes != 16 {
		t.Fatalf("RemoteBytes = %d, want 16", s.RemoteBytes)
	}
}

func TestLocalReadRecordsNothing(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	c := NewCollection[int](rt, "x", dist.NewBlock(4, 2), 8)
	tr, err := rt.Run(func(th *Thread) {
		c.ForOwned(th, func(i int) {
			_ = c.Read(th, i) // local
		})
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := trace.ComputeStats(tr); s.RemoteReads != 0 {
		t.Fatalf("local reads recorded %d remote events", s.RemoteReads)
	}
}

func TestSizeModeAttribution(t *testing.T) {
	run := func(mode SizeMode) int64 {
		cfg := DefaultConfig(2)
		cfg.SizeMode = mode
		rt := NewRuntime(cfg)
		c := NewCollection[[64]byte](rt, "big", dist.NewBlock(2, 2), 4096)
		tr, err := rt.Run(func(th *Thread) {
			th.Barrier()
			if th.ID() == 1 {
				c.ReadPart(th, 0, 128) // only 128 bytes actually needed
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.ComputeStats(tr).RemoteBytes
	}
	if got := run(CompilerEstimate); got != 4096 {
		t.Errorf("CompilerEstimate recorded %d bytes, want 4096 (whole element)", got)
	}
	if got := run(ActualSize); got != 128 {
		t.Errorf("ActualSize recorded %d bytes, want 128", got)
	}
}

func TestReadPartBoundsPanic(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	c := NewCollection[int](rt, "x", dist.NewBlock(2, 2), 8)
	_, err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("oversized ReadPart did not panic")
				}
			}()
			c.ReadPart(th, 1, 999)
		}
		th.Barrier()
	})
	_ = err // the recovered panic keeps the program well-formed
}

func TestLocalWrongOwnerPanics(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	c := NewCollection[int](rt, "x", dist.NewBlock(2, 2), 8)
	_, err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("Local of non-owned element did not panic")
				}
			}()
			c.Local(th, 1)
		}
		th.Barrier()
	})
	_ = err
}

func TestRemoteWriteEvents(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	c := NewCollection[int](rt, "x", dist.NewBlock(2, 2), 8)
	tr, err := rt.Run(func(th *Thread) {
		th.Barrier()
		if th.ID() == 0 {
			c.Write(th, 1, 42) // remote write extension
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.RemoteWrites != 1 {
		t.Fatalf("RemoteWrites = %d, want 1", s.RemoteWrites)
	}
}

func TestEventOverheadCharged(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EventOverhead = 5 * vtime.Microsecond
	rt := NewRuntime(cfg)
	tr, err := rt.Run(func(th *Thread) {
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.EventOverhead != cfg.EventOverhead {
		t.Fatalf("trace EventOverhead = %v", tr.EventOverhead)
	}
	// Each recorded event advanced the clock: trace duration is positive
	// even though no Compute was charged.
	if tr.Duration() == 0 {
		t.Fatal("instrumentation overhead did not advance the clock")
	}
}

func TestTraceDeterminism(t *testing.T) {
	run := func() *trace.Trace {
		rt := NewRuntime(DefaultConfig(4))
		c := PerThread[float64](rt, "p", 8)
		tr, err := rt.Run(func(th *Thread) {
			*c.Local(th, th.ID()) = float64(th.ID())
			th.Flops(100 * (th.ID() + 1))
			sum := AllReduceSum(th, c)
			if sum != 6 {
				t.Errorf("sum = %v, want 6", sum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("traces diverge at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestPhaseEvents(t *testing.T) {
	rt := NewRuntime(DefaultConfig(1))
	tr, err := rt.Run(func(th *Thread) {
		th.Phase("solve", func() { th.Flops(5) })
	})
	if err != nil {
		t.Fatal(err)
	}
	var begin, end int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindPhaseBegin:
			begin++
			if tr.PhaseName(e.Arg0) != "solve" {
				t.Errorf("phase name = %q", tr.PhaseName(e.Arg0))
			}
		case trace.KindPhaseEnd:
			end++
		}
	}
	if begin != 1 || end != 1 {
		t.Fatalf("phase events begin=%d end=%d", begin, end)
	}
}

func TestReduceSumCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		rt := NewRuntime(DefaultConfig(n))
		c := PerThread[float64](rt, "p", 8)
		want := 0.0
		for i := 0; i < n; i++ {
			want += float64(i + 1)
		}
		_, err := rt.Run(func(th *Thread) {
			*c.Local(th, th.ID()) = float64(th.ID() + 1)
			got := AllReduceSum(th, c)
			if got != want {
				t.Errorf("n=%d thread %d: AllReduceSum = %v, want %v", n, th.ID(), got, want)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllGatherSumCorrect(t *testing.T) {
	const n = 5
	rt := NewRuntime(DefaultConfig(n))
	c := PerThread[float64](rt, "p", 8)
	tr, err := rt.Run(func(th *Thread) {
		*c.Local(th, th.ID()) = 2.0
		if got := AllGatherSum(th, c); got != 2*n {
			t.Errorf("AllGatherSum = %v, want %v", got, 2.0*n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// n threads each read n−1 remote partials.
	if s := trace.ComputeStats(tr); s.RemoteReads != n*(n-1) {
		t.Errorf("RemoteReads = %d, want %d", s.RemoteReads, n*(n-1))
	}
}

func TestCollection2DOwnershipAndAccess(t *testing.T) {
	rt := NewRuntime(DefaultConfig(4))
	d2 := dist.NewDist2D(4, 4, 4, dist.Block, dist.Block)
	g := NewCollection2D[float64](rt, "grid", d2, 32)
	tr, err := rt.Run(func(th *Thread) {
		g.ForOwned(th, func(r, c int) {
			*g.Local(th, r, c) = float64(r*4 + c)
		})
		th.Barrier()
		// Every thread reads element (0,0), owned by thread 0.
		v := g.Read(th, 0, 0)
		if v != 0 {
			t.Errorf("thread %d read (0,0) = %v", th.ID(), v)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.RemoteReads != 3 { // threads 1..3
		t.Errorf("RemoteReads = %d, want 3", s.RemoteReads)
	}
}

func TestMalformedProgramReported(t *testing.T) {
	// A program where only some threads hit a barrier deadlocks; the
	// runtime must report it rather than hang (scheduler deadlock
	// detection) .
	rt := NewRuntime(DefaultConfig(2))
	_, err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Barrier()
		}
	})
	if err == nil {
		t.Fatal("divergent barrier structure not reported")
	}
}

func TestThreadRandStreamsDiffer(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	vals := make([]uint64, 2)
	_, err := rt.Run(func(th *Thread) {
		vals[th.ID()] = th.Rand().Uint64()
	})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == vals[1] {
		t.Error("per-thread random streams identical")
	}
}

func TestReduceWithMax(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		rt := NewRuntime(DefaultConfig(n))
		c := PerThread[float64](rt, "p", 8)
		_, err := rt.Run(func(th *Thread) {
			*c.Local(th, th.ID()) = float64((th.ID()*13 + 5) % 7)
			got := AllReduceWith(th, c, func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			})
			want := 0.0
			for i := 0; i < n; i++ {
				if v := float64((i*13 + 5) % 7); v > want {
					want = v
				}
			}
			if got != want {
				t.Errorf("n=%d: max = %v, want %v", n, got, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCalibrateHostSane(t *testing.T) {
	cm := CalibrateHost()
	if cm.FlopTime < 1 || cm.FlopTime > vtime.Millisecond {
		t.Fatalf("calibrated FlopTime %v outside sane bounds", cm.FlopTime)
	}
	if cm.MFLOPS() <= 0 {
		t.Fatal("calibrated MFLOPS not positive")
	}
	if cm.IntOpTime <= 0 || cm.MemByteTime <= 0 || cm.CallTime <= 0 {
		t.Fatalf("calibrated model has non-positive members: %+v", cm)
	}
}

func TestCollectionAccessors(t *testing.T) {
	rt := NewRuntime(DefaultConfig(2))
	d := dist.NewBlock(6, 2)
	c := NewCollection[float64](rt, "vals", d, 16)
	if c.Name() != "vals" || c.Size() != 6 || c.ElemBytes() != 16 {
		t.Errorf("accessors: %q %d %d", c.Name(), c.Size(), c.ElemBytes())
	}
	if c.Dist() != d {
		t.Error("Dist() lost the distribution")
	}
	if c.Owner(0) != 0 || c.Owner(5) != 1 {
		t.Error("Owner wrong")
	}
	if rt.Config().Threads != 2 {
		t.Error("Config() wrong")
	}
	if rt.Trace() == nil {
		t.Error("Trace() nil")
	}
	_, err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			if !c.IsLocal(th, 0) || c.IsLocal(th, 5) {
				t.Error("IsLocal wrong")
			}
			if c.LocalCount(th) != 3 {
				t.Errorf("LocalCount = %d", c.LocalCount(th))
			}
			if th.Now() != rt.Now() {
				t.Error("thread and runtime clocks differ")
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if SizeMode(0).String() != "compiler-estimate" || SizeMode(1).String() != "actual-size" {
		t.Error("SizeMode names wrong")
	}
}

func TestCollection2DAccessorsAndWrite(t *testing.T) {
	rt := NewRuntime(DefaultConfig(4))
	d2 := dist.NewDist2D(4, 4, 4, dist.Block, dist.Block)
	g := NewCollection2D[float64](rt, "g", d2, 32)
	if g.Name() != "g" || g.ElemBytes() != 32 || g.Dist() != d2 {
		t.Error("2D accessors wrong")
	}
	if g.Owner(0, 0) != 0 || g.Owner(3, 3) != 3 {
		t.Error("2D Owner wrong")
	}
	tr, err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			if !g.IsLocal(th, 0, 0) || g.IsLocal(th, 3, 3) {
				t.Error("2D IsLocal wrong")
			}
			v := g.ReadPart(th, 3, 3, 8) // remote partial read
			_ = v
		}
		th.Barrier()
		if th.ID() == 1 {
			g.Write(th, 3, 3, 7) // remote write through the 2D API
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.RemoteReads != 1 || s.RemoteWrites != 1 {
		t.Errorf("2D remote events: reads=%d writes=%d", s.RemoteReads, s.RemoteWrites)
	}
}

func TestComputeNegativePanics(t *testing.T) {
	rt := NewRuntime(DefaultConfig(1))
	_, err := rt.Run(func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("negative Compute did not panic")
			}
		}()
		th.Compute(-1)
	})
	_ = err
}

func TestMFLOPSZeroModel(t *testing.T) {
	if (CostModel{}).MFLOPS() != 0 {
		t.Error("zero cost model should rate 0 MFLOPS")
	}
}

// TestInterruptAbortsRun: a non-nil Interrupt result must abort the
// measurement with an error satisfying errors.Is against the cause —
// the mechanism callers use to bound wall-clock time of a run.
func TestInterruptAbortsRun(t *testing.T) {
	sentinel := errors.New("deadline hit")
	var polls int
	cfg := DefaultConfig(2)
	cfg.Interrupt = func() error {
		polls++
		if polls >= 3 {
			return sentinel
		}
		return nil
	}
	rt := NewRuntime(cfg)
	_, err := rt.Run(func(th *Thread) {
		// Far more compute charges than 3×interruptEvery: without the
		// interrupt this loop completes quickly, with it the run must
		// stop partway through.
		for i := 0; i < 4*interruptEvery; i++ {
			th.Compute(1)
		}
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("Run() = %v, want errors.Is(err, sentinel)", err)
	}
	if polls != 3 {
		t.Errorf("Interrupt polled %d times, want exactly 3 (abort on first failure)", polls)
	}
}

// TestInterruptDoesNotPerturbTrace: a run that completes under an
// Interrupt that never fires must be byte-identical to one without it.
func TestInterruptDoesNotPerturbTrace(t *testing.T) {
	run := func(interrupt func() error) *trace.Trace {
		cfg := DefaultConfig(3)
		cfg.Interrupt = interrupt
		rt := NewRuntime(cfg)
		tr, err := rt.Run(func(th *Thread) {
			th.Compute(vtime.Time(100 * (th.ID() + 1)))
			th.Barrier()
			th.Compute(50)
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain := run(nil)
	polled := run(func() error { return nil })
	if len(plain.Events) != len(polled.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(plain.Events), len(polled.Events))
	}
	for i := range plain.Events {
		if plain.Events[i] != polled.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, plain.Events[i], polled.Events[i])
		}
	}
}
