package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/vtime"
)

// CoordinatorConfig shapes a Coordinator.
type CoordinatorConfig struct {
	// Peers are the worker replicas' base URLs ("http://host:port").
	// Required, at least one.
	Peers []string
	// Service is the local experiment engine used as the fallback
	// executor when no peer can take a shard. Required — a coordinator
	// must be able to finish a sweep with every worker dead.
	Service *experiments.Service
	// LeaseMs is the lease requested per shard; 0 selects
	// DefaultLeaseMs. Polls renew it, so it only needs to exceed the
	// poll interval with margin.
	LeaseMs int
	// PollInterval is how often a dispatched shard is polled; ≤ 0
	// selects 50ms.
	PollInterval time.Duration
	// CallTimeout bounds one HTTP call (dispatch or poll) — NOT shard
	// execution, which is bounded by the caller's context across many
	// polls; ≤ 0 selects 10s.
	CallTimeout time.Duration
	// Client issues the HTTP calls; nil selects a default client.
	Client *http.Client
}

// peer is one worker replica's dispatch bookkeeping.
type peer struct {
	url        string
	healthy    atomic.Bool
	dispatched atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
}

// PeerHealth is one peer's state for observability surfaces.
type PeerHealth struct {
	URL        string
	Healthy    bool
	Dispatched int64
	Completed  int64
	Failed     int64
}

// CoordinatorStats is a snapshot of shard routing for /debug/vars.
type CoordinatorStats struct {
	Dispatched int64 // shards handed to a peer (incl. re-dispatches)
	Completed  int64 // shards whose results merged successfully
	Retried    int64 // re-dispatches after a peer failed mid-shard
	Local      int64 // shards executed locally (every peer down)
	Peers      []PeerHealth
}

// Coordinator partitions sweep grids into measured-trace shards and
// dispatches them across worker replicas, merging exact per-cell
// results. Safe for concurrent use; one Coordinator serves every
// request of a serve process.
type Coordinator struct {
	cfg    CoordinatorConfig
	peers  []*peer
	client *http.Client

	dispatched atomic.Int64
	completed  atomic.Int64
	retried    atomic.Int64
	local      atomic.Int64
}

// NewCoordinator validates cfg and returns a Coordinator. Peers start
// healthy and are probed by use: a failed dispatch or poll marks the
// peer down (skipped on first-choice routing until it completes a shard
// again).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one peer")
	}
	if cfg.Service == nil {
		return nil, errors.New("cluster: coordinator needs a local Service for fallback execution")
	}
	if cfg.LeaseMs == 0 {
		cfg.LeaseMs = DefaultLeaseMs
	}
	if cfg.LeaseMs < MinLeaseMs || cfg.LeaseMs > MaxLeaseMs {
		return nil, fmt.Errorf("cluster: lease %dms out of [%d, %d]", cfg.LeaseMs, MinLeaseMs, MaxLeaseMs)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, u := range cfg.Peers {
		p := &peer{url: u}
		p.healthy.Store(true)
		c.peers = append(c.peers, p)
	}
	return c, nil
}

// Stats reports shard routing counters and per-peer health.
func (c *Coordinator) Stats() CoordinatorStats {
	st := CoordinatorStats{
		Dispatched: c.dispatched.Load(),
		Completed:  c.completed.Load(),
		Retried:    c.retried.Load(),
		Local:      c.local.Load(),
	}
	for _, p := range c.peers {
		st.Peers = append(st.Peers, PeerHealth{
			URL:        p.url,
			Healthy:    p.healthy.Load(),
			Dispatched: p.dispatched.Load(),
			Completed:  p.completed.Load(),
			Failed:     p.failed.Load(),
		})
	}
	return st
}

// permanentError marks a failure that is a property of the shard spec
// or the deterministic pipeline, not of the peer that reported it —
// re-dispatching elsewhere would fail identically, so the coordinator
// must surface it instead of retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// RunPoint executes one measurement group — benchmark/size at one
// ladder point (threads), simulated under every named machine — on the
// cluster, returning one exact total time per machine in machines
// order. Routing is affinity-first (hash of the canonical measurement
// key, so repeated requests for one configuration land on one worker
// and dedup in its single-flight cache), with failover across the
// remaining peers and local execution as the last resort. The caller's
// ctx bounds the whole attempt chain.
//
// workload, when non-nil, is a composed workload's spec JSON shipped
// alongside bench (which then names the workload's derived content
// name) so the worker can synthesize the program; nil for registry
// benchmarks. Affinity still hashes the measurement key — the name —
// so a composed configuration lands on one worker like any other.
func (c *Coordinator) RunPoint(ctx context.Context, bench string, workload []byte, sz benchmarks.Size, threads int, machines []string) ([]vtime.Time, error) {
	spec := ShardSpec{
		Benchmark: bench,
		Workload:  workload,
		Size:      sz.N,
		Iters:     sz.Iters,
		Threads:   threads,
		Machines:  machines,
		LeaseMs:   c.cfg.LeaseMs,
	}
	h := fnv.New32a()
	io.WriteString(h, spec.measurementKey().Canonical())
	start := int(h.Sum32()) % len(c.peers)
	if start < 0 {
		start += len(c.peers)
	}

	// First pass: healthy peers only, affinity order. Second pass: every
	// peer — an "unhealthy" peer may have recovered, and trying it is
	// the only probe there is. A shard that was accepted but lost
	// mid-flight counts as a retry when it moves on.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(c.peers); i++ {
			p := c.peers[(start+i)%len(c.peers)]
			if pass == 0 && !p.healthy.Load() {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cells, accepted, err := c.runOnPeer(ctx, p, spec)
			if err == nil {
				c.completed.Add(1)
				return cellTimes(cells, machines)
			}
			var perm *permanentError
			if errors.As(err, &perm) {
				return nil, perm.err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if accepted {
				c.retried.Add(1)
			}
		}
	}

	// Every peer is down: execute locally so the sweep still completes.
	// Results are byte-identical by the pipeline's determinism, so WHERE
	// a shard ran never shows in the output.
	c.local.Add(1)
	b, rsz, envs, apiErr := spec.resolve()
	if apiErr != nil {
		return nil, apiErr
	}
	cells, err := ExecuteShard(ctx, c.cfg.Service, b, rsz, threads, envs)
	if err != nil {
		return nil, err
	}
	c.completed.Add(1)
	return cellTimes(cells, machines)
}

// runOnPeer dispatches one shard to one peer and polls it to
// completion. accepted reports whether the peer took the shard before
// failing — the distinction between "never started" and "died
// mid-shard" that the retry counter cares about.
func (c *Coordinator) runOnPeer(ctx context.Context, p *peer, spec ShardSpec) (cells []CellResult, accepted bool, err error) {
	acc, err := c.dispatch(ctx, p, spec)
	if err != nil {
		if !isPermanent(err) {
			p.healthy.Store(false)
			p.failed.Add(1)
		}
		return nil, false, err
	}
	c.dispatched.Add(1)
	p.dispatched.Add(1)

	// Poll until terminal. A few consecutive poll failures mean the
	// worker died (or was partitioned past usefulness): give up on it
	// and let the caller re-dispatch.
	const pollFailLimit = 3
	fails := 0
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, true, ctx.Err()
		case <-ticker.C:
		}
		st, perr := c.poll(ctx, p, acc.ID)
		if perr != nil {
			if isPermanent(perr) {
				// 404: the worker restarted or GC'd the lease — the shard
				// is gone there; re-dispatch.
				p.healthy.Store(false)
				p.failed.Add(1)
				return nil, true, fmt.Errorf("cluster: shard %s lost on %s: %w", acc.ID, p.url, perr)
			}
			fails++
			if fails >= pollFailLimit {
				p.healthy.Store(false)
				p.failed.Add(1)
				return nil, true, fmt.Errorf("cluster: peer %s unreachable polling shard %s: %w", p.url, acc.ID, perr)
			}
			continue
		}
		fails = 0
		switch st.Status {
		case ShardRunning:
			continue
		case ShardDone:
			p.completed.Add(1)
			p.healthy.Store(true)
			return st.Cells, true, nil
		case ShardFailed:
			// Deterministic pipeline failure: every replica would report
			// the same thing. Not the peer's fault — it stays healthy.
			p.healthy.Store(true)
			return nil, true, &permanentError{fmt.Errorf("cluster: shard failed on %s: %s", p.url, st.Error)}
		default:
			p.healthy.Store(false)
			p.failed.Add(1)
			return nil, true, fmt.Errorf("cluster: peer %s reported unknown shard status %q", p.url, st.Status)
		}
	}
}

// dispatch POSTs the shard spec. A 4xx is permanent (the spec itself is
// bad); connection errors and 5xx/429 are transient.
func (c *Coordinator) dispatch(ctx context.Context, p *peer, spec ShardSpec) (ShardAccepted, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return ShardAccepted{}, &permanentError{err}
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, p.url+"/v1/internal/shards", bytes.NewReader(body))
	if err != nil {
		return ShardAccepted{}, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return ShardAccepted{}, fmt.Errorf("cluster: dispatch to %s: %w", p.url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxShardBodyBytes))
	if err != nil {
		return ShardAccepted{}, fmt.Errorf("cluster: dispatch to %s: %w", p.url, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		err := fmt.Errorf("cluster: dispatch to %s: status %d: %s", p.url, resp.StatusCode, bytes.TrimSpace(raw))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return ShardAccepted{}, &permanentError{err}
		}
		return ShardAccepted{}, err
	}
	var acc ShardAccepted
	if err := json.Unmarshal(raw, &acc); err != nil || acc.ID == "" {
		return ShardAccepted{}, fmt.Errorf("cluster: dispatch to %s: bad accept body %q", p.url, raw)
	}
	return acc, nil
}

// poll GETs a shard's status, renewing its lease. A 404 is returned as
// a permanentError to signal "this shard is gone on this peer" — the
// caller translates that into a re-dispatch, not a user-visible error.
func (c *Coordinator) poll(ctx context.Context, p *peer, id string) (ShardStatus, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, p.url+"/v1/internal/shards/"+id, nil)
	if err != nil {
		return ShardStatus{}, &permanentError{err}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return ShardStatus{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ShardStatus{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return ShardStatus{}, &permanentError{fmt.Errorf("shard %s: 404", id)}
	}
	if resp.StatusCode != http.StatusOK {
		return ShardStatus{}, fmt.Errorf("poll %s: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var st ShardStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return ShardStatus{}, fmt.Errorf("poll %s: bad body: %w", id, err)
	}
	return st, nil
}

// isPermanent reports whether err carries a permanentError.
func isPermanent(err error) bool {
	var perm *permanentError
	return errors.As(err, &perm)
}

// cellTimes validates a shard result against the request — the worker
// is semi-trusted, so a response naming wrong machines or the wrong
// cell count is rejected, which the caller surfaces as a failed shard —
// and extracts the exact times in machines order.
func cellTimes(cells []CellResult, machines []string) ([]vtime.Time, error) {
	if len(cells) != len(machines) {
		return nil, fmt.Errorf("cluster: shard returned %d cells for %d machines", len(cells), len(machines))
	}
	out := make([]vtime.Time, len(cells))
	for i, cell := range cells {
		if cell.Machine != machines[i] {
			return nil, fmt.Errorf("cluster: shard cell %d is for machine %q, want %q", i, cell.Machine, machines[i])
		}
		out[i] = vtime.Time(cell.TotalNs)
	}
	return out, nil
}

// SweepLadder runs a whole sweep grid — every named machine over every
// ladder point — on the cluster: one shard per ladder point (the
// measured-trace grouping), all points in flight concurrently, merged
// into one series per machine in machines order. The returned points
// are exact, so rendering them through the solo path's response builder
// yields byte-identical output.
func (c *Coordinator) SweepLadder(ctx context.Context, bench string, workload []byte, sz benchmarks.Size, machines []string, ladder []int) ([][]metrics.Point, error) {
	points := make([][]metrics.Point, len(machines))
	for mi := range points {
		points[mi] = make([]metrics.Point, len(ladder))
	}
	errs := make([]error, len(ladder))
	var wg sync.WaitGroup
	for pi, n := range ladder {
		wg.Add(1)
		go func(pi, n int) {
			defer wg.Done()
			times, err := c.RunPoint(ctx, bench, workload, sz, n, machines)
			if err != nil {
				errs[pi] = err
				return
			}
			for mi := range machines {
				points[mi][pi] = metrics.Point{Procs: n, Time: times[mi]}
			}
		}(pi, n)
	}
	wg.Wait()
	// Surface the lowest-indexed error — the one a sequential loop would
	// hit first — so error output is deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// ResolveEnvs maps machine names onto registry environments, mirroring
// the validation the serving layer already did; exported for callers
// that need the env list alongside SweepLadder results.
func ResolveEnvs(names []string) ([]machine.Env, error) {
	envs := make([]machine.Env, len(names))
	for i, name := range names {
		env, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		envs[i] = env
	}
	return envs, nil
}
