package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"time"

	"extrap/internal/core"
	"extrap/internal/trace"
)

// ArtifactSource is the slice of the artifact store the fetch endpoint
// needs: verified payload bytes by content address. *store.Store
// implements it.
type ArtifactSource interface {
	GetByHash(h [32]byte) ([]byte, bool)
}

// ArtifactHandler serves GET /v1/internal/artifacts/{keyhash}: the
// verified payload stored under the given content address, as raw
// bytes. The keyhash path element is the lowercase hex SHA-256 of the
// artifact's canonical key — exactly what store.KeyHash computes — so a
// peer that knows an artifact's canonical key can fetch its bytes
// without knowing which node measured it. The source verifies the
// artifact's checksums on read, so a corrupted artifact is quarantined
// server-side and answers 404 here: peers never receive bytes the store
// cannot vouch for. Malformed hashes answer 400.
func ArtifactHandler(src ArtifactSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw, err := hex.DecodeString(r.PathValue("keyhash"))
		if err != nil || len(raw) != 32 {
			writeError(w, errf(http.StatusBadRequest, "invalid_keyhash",
				"keyhash must be 64 hex characters (SHA-256 of the canonical key)"))
			return
		}
		var h [32]byte
		copy(h[:], raw)
		payload, ok := src.GetByHash(h)
		if !ok {
			writeError(w, errf(http.StatusNotFound, "unknown_artifact",
				"no verifiable artifact under %s", r.PathValue("keyhash")))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.Write(payload)
	}
}

// RemoteBackend is a read-through core.TraceBackend over a peer's
// artifact fetch endpoint: GetTrace fetches the encoded trace stored
// under the key's canonical content address on the peer (typically the
// coordinator, which accumulates artifacts from solo runs and local
// fallbacks), and PutTrace is a no-op — durability stays local to the
// node that measured; peers pull, they are never pushed to. Payloads
// are size-capped on read and then flow through the trace decoders'
// hardening caps like any other untrusted bytes.
type RemoteBackend struct {
	base     string // peer base URL
	client   *http.Client
	maxBytes int64
	timeout  time.Duration
}

// NewRemoteBackend returns a backend fetching from the peer at base.
// maxBytes caps one fetched payload (≤ 0 selects 256 MiB); client nil
// selects a default client with a 10s per-call timeout.
func NewRemoteBackend(base string, maxBytes int64, client *http.Client) *RemoteBackend {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if client == nil {
		client = &http.Client{}
	}
	return &RemoteBackend{base: base, client: client, maxBytes: maxBytes, timeout: 10 * time.Second}
}

// GetTrace fetches the encoded trace under key's canonical address for
// format. Any failure — network, status, size — is a miss: the caller
// re-measures, which is always correct, just slower.
func (rb *RemoteBackend) GetTrace(key core.CacheKey, format trace.Format) ([]byte, bool) {
	h := sha256.Sum256([]byte(key.CanonicalFormat(format)))
	url := rb.base + "/v1/internal/artifacts/" + hex.EncodeToString(h[:])
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), rb.timeout)
	defer cancel()
	resp, err := rb.client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, rb.maxBytes+1))
	if err != nil || int64(len(payload)) > rb.maxBytes {
		return nil, false
	}
	return payload, true
}

// PutTrace is a no-op: see the type comment.
func (rb *RemoteBackend) PutTrace(core.CacheKey, trace.Format, []byte) {}

// ChainBackend layers a local durable tier in front of a remote one:
// Get consults local first (disk beats network), then remote — writing
// a remote hit through to local so the next restart serves it from
// disk. Put goes to local only.
type ChainBackend struct {
	Local  core.TraceBackend
	Remote core.TraceBackend
}

// GetTrace consults Local, then Remote (writing hits through to Local).
func (cb *ChainBackend) GetTrace(key core.CacheKey, format trace.Format) ([]byte, bool) {
	if enc, ok := cb.Local.GetTrace(key, format); ok {
		return enc, true
	}
	if enc, ok := cb.Remote.GetTrace(key, format); ok {
		cb.Local.PutTrace(key, format, enc)
		return enc, true
	}
	return nil, false
}

// PutTrace persists locally.
func (cb *ChainBackend) PutTrace(key core.CacheKey, format trace.Format, enc []byte) {
	cb.Local.PutTrace(key, format, enc)
}
