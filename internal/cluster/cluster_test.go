package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/trace"
)

// newWorkerServer mounts a Worker's endpoints the way serve does and
// returns both, with cleanup registered.
func newWorkerServer(t *testing.T, gc time.Duration) (*Worker, *httptest.Server) {
	t.Helper()
	svc := experiments.NewStreamingService(2, 64, 256<<20)
	w := NewWorker(svc, gc)
	t.Cleanup(w.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/internal/shards", w.HandleDispatch)
	mux.HandleFunc("GET /v1/internal/shards/{id}", w.HandlePoll)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return w, ts
}

func postShard(t *testing.T, base, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/internal/shards", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func getURL(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// validShard is a small spec every replica can execute.
const validShard = `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"]}`

// TestDispatchRejectsHostileSpecs: every malformed or over-budget spec
// answers a typed 4xx — never a panic, never an accept. The worker's
// counters must classify them all as rejections.
func TestDispatchRejectsHostileSpecs(t *testing.T) {
	w, ts := newWorkerServer(t, 0)
	manyMachines := `["cm5"` + strings.Repeat(`,"cm5"`, MaxShardMachines) + `]`
	cases := []struct {
		name, body, wantCode string
	}{
		{"not json", `{{{`, "invalid_json"},
		{"unknown field", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"],"sneaky":1}`, "invalid_json"},
		{"missing benchmark", `{"size":16,"iters":4,"threads":2,"machines":["cm5"]}`, "missing_benchmark"},
		{"unknown benchmark", `{"benchmark":"nope","size":16,"iters":4,"threads":2,"machines":["cm5"]}`, "unknown_benchmark"},
		{"unresolved size", `{"benchmark":"grid","size":0,"iters":4,"threads":2,"machines":["cm5"]}`, "invalid_size"},
		{"negative iters", `{"benchmark":"grid","size":16,"iters":-1,"threads":2,"machines":["cm5"]}`, "invalid_size"},
		{"zero threads", `{"benchmark":"grid","size":16,"iters":4,"threads":0,"machines":["cm5"]}`, "invalid_threads"},
		{"threads over cap", fmt.Sprintf(`{"benchmark":"grid","size":16,"iters":4,"threads":%d,"machines":["cm5"]}`, MaxShardThreads+1), "invalid_threads"},
		{"work budget", fmt.Sprintf(`{"benchmark":"grid","size":%d,"iters":%d,"threads":256,"machines":["cm5"]}`, 1<<16, 1<<16), "work_budget_exceeded"},
		{"no machines", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":[]}`, "invalid_machines"},
		{"too many machines", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":` + manyMachines + `}`, "invalid_machines"},
		{"duplicate machine", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5","cm5"]}`, "invalid_machines"},
		{"unknown machine", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["enigma"]}`, "unknown_machine"},
		{"lease under floor", `{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"],"lease_ms":5}`, "invalid_lease"},
		{"lease over ceiling", fmt.Sprintf(`{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"],"lease_ms":%d}`, MaxLeaseMs+1), "invalid_lease"},
	}
	for _, tc := range cases {
		status, body := postShard(t, ts.URL, tc.body)
		if status < 400 || status >= 500 || !strings.Contains(body, tc.wantCode) {
			t.Errorf("%s: status %d body %s, want 4xx %s", tc.name, status, body, tc.wantCode)
		}
	}
	if st := w.Stats(); st.Rejected != int64(len(cases)) || st.Accepted != 0 {
		t.Errorf("stats after hostile dispatches: %+v, want %d rejected, 0 accepted", st, len(cases))
	}
}

// TestDispatchRejectsOversizedBody: a spec past MaxShardBodyBytes is
// cut off by the body cap and answers 400, whatever its content.
func TestDispatchRejectsOversizedBody(t *testing.T) {
	_, ts := newWorkerServer(t, 0)
	huge := `{"benchmark":"` + strings.Repeat("a", MaxShardBodyBytes) + `"}`
	status, body := postShard(t, ts.URL, huge)
	if status != http.StatusBadRequest || !strings.Contains(body, "invalid_json") {
		t.Errorf("oversized spec: status %d body %.200s, want 400 invalid_json", status, body)
	}
}

// TestPollUnknownShard: polling an ID that was never dispatched — or a
// forged one — answers 404 with the typed envelope.
func TestPollUnknownShard(t *testing.T) {
	_, ts := newWorkerServer(t, 0)
	status, body := getURL(t, ts.URL+"/v1/internal/shards/s-deadbeef")
	if status != http.StatusNotFound || !strings.Contains(body, "unknown_shard") {
		t.Errorf("unknown poll: status %d body %s, want 404 unknown_shard", status, body)
	}
}

// TestPollReplayedAfterCollection: a terminal shard is collected when
// its result is delivered, so REPLAYING the poll answers 404 — a stale
// or duplicated coordinator cannot keep a worker's memory pinned.
func TestPollReplayedAfterCollection(t *testing.T) {
	_, ts := newWorkerServer(t, 0)
	status, body := postShard(t, ts.URL, validShard)
	if status != http.StatusAccepted {
		t.Fatalf("dispatch: status %d: %s", status, body)
	}
	var acc ShardAccepted
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = getURL(t, ts.URL+"/v1/internal/shards/"+acc.ID)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, body)
		}
		var st ShardStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == ShardDone {
			if len(st.Cells) != 1 || st.Cells[0].Machine != "cm5" || st.Cells[0].TotalNs <= 0 {
				t.Fatalf("done shard has bad cells: %+v", st)
			}
			break
		}
		if st.Status == ShardFailed {
			t.Fatalf("shard failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("shard did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The delivery above collected the shard; the replay must 404.
	status, body = getURL(t, ts.URL+"/v1/internal/shards/"+acc.ID)
	if status != http.StatusNotFound || !strings.Contains(body, "unknown_shard") {
		t.Errorf("replayed poll: status %d body %s, want 404 unknown_shard", status, body)
	}
}

// TestExpiredLeaseIsCollected: a shard whose coordinator stops polling
// is garbage-collected once the lease lapses, and later polls answer
// 404 — the signal that makes the (merely partitioned) coordinator
// re-dispatch rather than wait forever.
func TestExpiredLeaseIsCollected(t *testing.T) {
	w, ts := newWorkerServer(t, 5*time.Millisecond)
	status, body := postShard(t, ts.URL,
		`{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"],"lease_ms":100}`)
	if status != http.StatusAccepted {
		t.Fatalf("dispatch: status %d: %s", status, body)
	}
	var acc ShardAccepted
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Space the polls past the lease so a renewal cannot keep the
		// shard alive indefinitely.
		time.Sleep(150 * time.Millisecond)
		status, body = getURL(t, ts.URL+"/v1/internal/shards/"+acc.ID)
		if status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired; last poll: status %d body %s", status, body)
		}
	}
	if st := w.Stats(); st.Expired == 0 {
		t.Errorf("expired counter not incremented: %+v", st)
	}
}

// mapSource is an in-memory ArtifactSource.
type mapSource map[[32]byte][]byte

func (m mapSource) GetByHash(h [32]byte) ([]byte, bool) {
	p, ok := m[h]
	return p, ok
}

// TestArtifactHandlerHostile: malformed keyhashes answer 400, unknown
// (or deliberately mismatched) ones 404, and a hit streams the exact
// payload bytes.
func TestArtifactHandlerHostile(t *testing.T) {
	key := core.CacheKey{Bench: "grid", N: 16, Iters: 4, Threads: 2}
	canon := key.CanonicalFormat(trace.FormatXTRP2)
	h := sha256.Sum256([]byte(canon))
	payload := []byte("xart1-payload-bytes")
	src := mapSource{h: payload}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/artifacts/{keyhash}", ArtifactHandler(src))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	hexhash := fmt.Sprintf("%x", h)
	cases := []struct {
		name, path string
		wantStatus int
		wantBody   string
	}{
		{"not hex", "zz" + strings.Repeat("0", 62), http.StatusBadRequest, "invalid_keyhash"},
		{"too short", strings.Repeat("ab", 8), http.StatusBadRequest, "invalid_keyhash"},
		{"too long", strings.Repeat("ab", 40), http.StatusBadRequest, "invalid_keyhash"},
		{"mismatched hash", strings.Repeat("ab", 32), http.StatusNotFound, "unknown_artifact"},
		{"hit", hexhash, http.StatusOK, string(payload)},
	}
	for _, tc := range cases {
		status, body := getURL(t, ts.URL+"/v1/internal/artifacts/"+tc.path)
		if status != tc.wantStatus || !strings.Contains(body, tc.wantBody) {
			t.Errorf("%s: status %d body %.120q, want %d containing %q", tc.name, status, body, tc.wantStatus, tc.wantBody)
		}
	}
}

// memBackend is an in-memory core.TraceBackend for chain tests.
type memBackend map[string][]byte

func (m memBackend) GetTrace(key core.CacheKey, format trace.Format) ([]byte, bool) {
	enc, ok := m[key.CanonicalFormat(format)]
	return enc, ok
}
func (m memBackend) PutTrace(key core.CacheKey, format trace.Format, enc []byte) {
	m[key.CanonicalFormat(format)] = enc
}

// TestRemoteBackendAndChain: RemoteBackend addresses artifacts by the
// same canonical hash the store uses, treats every failure as a miss,
// and ChainBackend writes remote hits through to the local tier.
func TestRemoteBackendAndChain(t *testing.T) {
	key := core.CacheKey{Bench: "grid", N: 16, Iters: 4, Threads: 2}
	format := trace.FormatXTRP2
	payload := []byte("encoded-trace")
	h := sha256.Sum256([]byte(key.CanonicalFormat(format)))
	src := mapSource{h: payload}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/artifacts/{keyhash}", ArtifactHandler(src))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rb := NewRemoteBackend(ts.URL, 1<<20, nil)
	if got, ok := rb.GetTrace(key, format); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("remote get: ok=%v got=%q", ok, got)
	}
	missKey := core.CacheKey{Bench: "grid", N: 99, Iters: 4, Threads: 2}
	if _, ok := rb.GetTrace(missKey, format); ok {
		t.Error("remote get of absent artifact reported a hit")
	}
	// A payload past the cap is a miss, not a truncated hit.
	tiny := NewRemoteBackend(ts.URL, 4, nil)
	if _, ok := tiny.GetTrace(key, format); ok {
		t.Error("oversized payload should read as a miss")
	}
	// A dead peer is a miss.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()
	if _, ok := NewRemoteBackend(deadURL, 1<<20, nil).GetTrace(key, format); ok {
		t.Error("unreachable peer should read as a miss")
	}

	local := memBackend{}
	chain := &ChainBackend{Local: local, Remote: rb}
	if got, ok := chain.GetTrace(key, format); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("chain get: ok=%v got=%q", ok, got)
	}
	if enc, ok := local.GetTrace(key, format); !ok || !bytes.Equal(enc, payload) {
		t.Error("remote hit was not written through to the local tier")
	}
	// PutTrace stays local: the remote source must not grow.
	chain.PutTrace(missKey, format, []byte("local-only"))
	if len(src) != 1 {
		t.Errorf("PutTrace leaked to the remote source: %d entries", len(src))
	}
}

// TestRetryAfterSeconds: the shared back-off hint scales with backlog
// pressure, floors at 1, and caps at 30 — and tolerates degenerate
// inputs without dividing by zero.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct{ backlog, capacity, want int }{
		{0, 4, 1},
		{3, 4, 1},
		{4, 4, 2},
		{9, 4, 3},
		{100, 4, 26},
		{1000, 4, 30},
		{256, 256, 2},
		{-5, 4, 1},
		{10, 0, 11},
		{1 << 30, 1, 30},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.backlog, tc.capacity); got != tc.want {
			t.Errorf("RetryAfterSeconds(%d, %d) = %d, want %d", tc.backlog, tc.capacity, got, tc.want)
		}
	}
}

// TestRunningShardHoldsLease is the regression test for the duplicate-
// work bug: a shard still EXECUTING must not be reaped when its lease
// timestamp lapses between coordinator polls — execution in flight IS
// the lease. Only after the shard turns terminal does the (restarted)
// clock age it out.
func TestRunningShardHoldsLease(t *testing.T) {
	svc := experiments.NewStreamingService(1, 64, 0)
	w := NewWorker(svc, 5*time.Millisecond)
	t.Cleanup(w.Close)

	// A running shard whose expiry lapsed long ago — the shape the gc
	// loop sees when execution outruns the poll cadence.
	sh := &shard{
		id:     "s-heldlease",
		cancel: func() {},
		status: ShardRunning,
		lease:  50 * time.Millisecond,
		expiry: time.Now().Add(-time.Hour),
	}
	w.mu.Lock()
	w.shards[sh.id] = sh
	w.mu.Unlock()

	// Let the collector tick many times over the stale expiry.
	time.Sleep(60 * time.Millisecond)
	w.mu.Lock()
	_, alive := w.shards[sh.id]
	w.mu.Unlock()
	if !alive {
		t.Fatal("running shard with lapsed lease was reaped mid-execution")
	}
	if st := w.Stats(); st.Expired != 0 {
		t.Fatalf("expired counter moved for a running shard: %+v", st)
	}

	// Completion restarts the clock (what the executor goroutine does);
	// only from here does abandonment age the shard out.
	sh.mu.Lock()
	sh.status = ShardDone
	sh.expiry = time.Now().Add(sh.lease)
	sh.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		_, alive = w.shards[sh.id]
		w.mu.Unlock()
		if !alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal shard with lapsed lease was never collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := w.Stats(); st.Expired != 1 {
		t.Errorf("expired counter after terminal collection: %+v, want Expired=1", st)
	}
}

// TestDispatchedShardSurvivesSilentCoordinator drives the same property
// end to end: execution pinned to outlast the minimum lease several
// times over, no polls while it runs, and the first (late) poll must
// deliver the result — not 404 — with zero expirations and exactly one
// accepted+completed. Under the old reaper (which ignored status) the
// gc loop would collect the shard mid-execution and the re-dispatching
// coordinator would redo the work.
func TestDispatchedShardSurvivesSilentCoordinator(t *testing.T) {
	const lease = MinLeaseMs * time.Millisecond
	execDone := make(chan struct{})
	prev := executeShard
	executeShard = func(ctx context.Context, svc *experiments.Service, b benchmarks.Benchmark, sz benchmarks.Size, threads int, envs []machine.Env) ([]CellResult, error) {
		defer close(execDone)
		// Hold execution across several lease windows before running the
		// real pipeline.
		select {
		case <-time.After(3 * lease):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return ExecuteShard(ctx, svc, b, sz, threads, envs)
	}
	defer func() { executeShard = prev }()

	w, ts := newWorkerServer(t, 5*time.Millisecond)
	status, body := postShard(t, ts.URL,
		fmt.Sprintf(`{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5","generic-dm"],"lease_ms":%d}`, MinLeaseMs))
	if status != http.StatusAccepted {
		t.Fatalf("dispatch: status %d: %s", status, body)
	}
	var acc ShardAccepted
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	// Silent coordinator: no polls until execution has finished.
	<-execDone
	deadline := time.Now().Add(30 * time.Second)
	var st ShardStatus
	for {
		status, body = getURL(t, ts.URL+"/v1/internal/shards/"+acc.ID)
		if status != http.StatusOK {
			t.Fatalf("late poll: status %d body %s, want 200", status, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != ShardRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Status != ShardDone || len(st.Cells) != 2 {
		t.Fatalf("shard = %+v, want done with 2 cells", st)
	}
	if stats := w.Stats(); stats.Expired != 0 || stats.Accepted != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v, want 1 accepted, 1 completed, 0 expired", stats)
	}
}

// TestDispatchCapacityRejectionRetryAfter: a worker at its shard limit
// answers 429 with an integer backlog-derived Retry-After.
func TestDispatchCapacityRejectionRetryAfter(t *testing.T) {
	w, ts := newWorkerServer(t, 0)
	w.mu.Lock()
	for i := 0; i < maxActiveShards; i++ {
		id := fmt.Sprintf("s-fill%04d", i)
		w.shards[id] = &shard{id: id, cancel: func() {}, status: ShardDone, lease: time.Hour, expiry: time.Now().Add(time.Hour)}
	}
	w.mu.Unlock()

	resp, err := http.Post(ts.URL+"/v1/internal/shards", "application/json", strings.NewReader(validShard))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(buf.String(), "overloaded") {
		t.Fatalf("full worker dispatch: status %d body %s, want 429 overloaded", resp.StatusCode, buf.String())
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if want := RetryAfterSeconds(maxActiveShards, maxActiveShards); ra != want {
		t.Errorf("Retry-After = %d, want %d", ra, want)
	}
}
