// Package cluster shards extrapolation sweeps across serve replicas.
//
// The extrapolation grid is embarrassingly parallel across measured-
// trace groups: every cell of one group shares a measurement (same
// benchmark, size, and thread count — only the machine model differs),
// and cells of different groups share nothing. A Coordinator therefore
// partitions a sweep exactly the way the batch runner groups cells —
// one shard per measurement group — and dispatches each shard to a
// worker replica over HTTP. Workers execute shards through their own
// experiments.Service (the same pipeline the solo server runs), return
// per-cell results as exact virtual-nanosecond integers, and the
// coordinator merges them into the same []metrics.Point series the solo
// path produces — so distributed output is byte-identical to solo
// output by construction: the numbers are exact integers and the
// rendering path is shared.
//
// # Protocol
//
// Three internal endpoints, mounted by `extrap serve` according to role:
//
//	POST /v1/internal/shards          (worker)  accept a shard, 202 + ID
//	GET  /v1/internal/shards/{id}     (worker)  poll status; renews lease
//	GET  /v1/internal/artifacts/{keyhash}  (any node with a store)
//	                                  serve verified XART1 payload bytes
//
// A shard is leased, not owned: the worker executes it in the
// background and the coordinator's polls are the heartbeat that keeps
// the lease alive. Execution itself also holds the lease — a shard
// whose pipeline outruns the poll cadence is never reaped mid-run, so
// a slow coordinator cannot turn one shard into duplicate work on two
// replicas. A worker whose coordinator dies finishes the in-flight
// execution (bounded by the shard work budget), restarts the lease
// clock on completion, stops hearing polls, lets the lease expire, and
// garbage-collects the entry. A coordinator whose worker dies sees its poll (or
// the initial dispatch) fail, marks the peer unhealthy, and re-
// dispatches the shard to a healthy peer — or, when every peer is down,
// executes it locally. Either way the sweep completes and the output
// bytes do not depend on which node computed which shard.
//
// # Cross-node dedup
//
// Shards are routed by affinity: the coordinator hashes the shard's
// canonical measurement key (core.CacheKey.Canonical — the same string
// that content-addresses the trace in the artifact store) and picks the
// peer at hash mod len(peers). Two concurrent sweeps naming the same
// configuration therefore land on the same worker, whose in-process
// single-flight measurement dedup collapses them into one run — no two
// replicas measure the same configuration twice. Failover breaks
// affinity only for the duration of the outage, and the artifact fetch
// endpoint (plus RemoteBackend) lets the re-routed worker pull the
// already-measured trace instead of re-measuring it.
//
// # Trust model
//
// Peers are semi-trusted: they are replicas run by the same operator,
// but a worker still treats every inbound shard spec as hostile input —
// registry names are resolved (never trusted), list lengths and work
// products are capped with the same discipline as the public API, and
// malformed requests answer 4xx without panicking. Artifact payloads
// are served only after the store's checksum verification, so a
// corrupted artifact is quarantined, never shipped to a peer.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
)

// shardWorkUnits estimates one shard's measurement cost: the
// benchmark's own estimator when it has one (composed workloads know
// their event totals), else the size×iters×threads proxy the public
// API has always used.
func shardWorkUnits(b benchmarks.Benchmark, sz benchmarks.Size, threads int) int64 {
	if we, ok := b.(benchmarks.WorkEstimator); ok {
		return we.WorkUnits(sz, threads)
	}
	return int64(sz.N) * int64(sz.Iters) * int64(threads)
}

// Protocol ceilings. Shard specs arrive from peers, not end users, but
// the caps discipline is the same as the public API's: nothing is
// allocated or executed from unvalidated counts.
const (
	// MaxShardMachines bounds the machine list of one shard. It matches
	// the public sweep API's machine bound: a shard is a slice of a
	// request that already passed that bound.
	MaxShardMachines = 16
	// MaxShardThreads bounds the measured thread count, matching the
	// public API's threads ceiling.
	MaxShardThreads = 256
	// MaxShardWorkUnits bounds size × iters × threads for one shard,
	// matching the public API's per-request work budget.
	MaxShardWorkUnits = 1 << 26
	// MaxShardBodyBytes caps an inbound shard spec's encoded size.
	MaxShardBodyBytes = 1 << 16
	// MinLeaseMs / MaxLeaseMs bound the lease a coordinator may request.
	// A lease below the floor would expire between honest polls; one
	// above the ceiling would pin a dead coordinator's shard for hours.
	MinLeaseMs = 100
	MaxLeaseMs = 120_000
	// DefaultLeaseMs is used when a spec leaves the lease unset.
	DefaultLeaseMs = 10_000
)

// ShardSpec is one dispatched measurement group: a single (benchmark,
// size, iters, threads) measurement simulated under every named machine.
// Size and iters are fully resolved — defaults substituted by the
// coordinator — so the worker's cache keys and content addresses match
// the coordinator's exactly.
//
// Benchmark is ALWAYS set — for a composed workload it is the derived
// content name ("wl:<hash>"), which is what the affinity hash, cache
// keys, and store addresses speak. Workload additionally carries the
// spec JSON so the worker can synthesize the program (ad-hoc workloads
// are not resolvable from any registry); the worker re-derives the name
// from those bytes and rejects the shard if it disagrees with
// Benchmark, so a tampered relay cannot poison a content address.
type ShardSpec struct {
	Benchmark string          `json:"benchmark"`
	Workload  json.RawMessage `json:"workload,omitempty"`
	Size      int             `json:"size"`
	Iters     int             `json:"iters"`
	Threads   int             `json:"threads"`
	Machines  []string        `json:"machines"`
	// LeaseMs is how long the worker keeps the shard alive without
	// hearing a poll; 0 selects DefaultLeaseMs.
	LeaseMs int `json:"lease_ms,omitempty"`
}

// CellResult is one completed grid cell: the machine it was simulated
// for and the exact predicted total time in virtual nanoseconds. Exact
// integers are the byte-identity contract — floats are derived from
// them only at the rendering layer, which coordinator and solo paths
// share.
type CellResult struct {
	Machine string `json:"machine"`
	Procs   int    `json:"procs"`
	TotalNs int64  `json:"total_ns"`
}

// Shard lifecycle states.
const (
	ShardRunning = "running"
	ShardDone    = "done"
	ShardFailed  = "failed"
)

// ShardAccepted is the 202 body answering a shard dispatch.
type ShardAccepted struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	LeaseMs int    `json:"lease_ms"`
}

// ShardStatus is the poll response. Cells is present only once Status
// is ShardDone; Error only when ShardFailed.
type ShardStatus struct {
	ID     string       `json:"id"`
	Status string       `json:"status"`
	Error  string       `json:"error,omitempty"`
	Cells  []CellResult `json:"cells,omitempty"`
}

// apiError mirrors the serving layer's typed error envelope
// ({"error":{code,message}}) so internal endpoints speak the same error
// dialect as the public API.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, e *apiError) {
	body, _ := json.Marshal(struct {
		Error *apiError `json:"error"`
	}{e})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(e.Status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, errf(http.StatusInternalServerError, "internal", "encoding response: %v", err))
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// resolve validates a shard spec against the live registries and the
// protocol ceilings, returning the resolved benchmark, size, and
// environments. Every failure is a 4xx — a spec that fails here would
// fail identically on any replica, so the coordinator must not retry it.
func (sp *ShardSpec) resolve() (benchmarks.Benchmark, benchmarks.Size, []machine.Env, *apiError) {
	if sp.Benchmark == "" {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "missing_benchmark", "benchmark is required")
	}
	var b benchmarks.Benchmark
	if len(sp.Workload) > 0 {
		wl, err := compose.FromJSON(sp.Workload)
		if err != nil {
			return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_workload", "%v", err)
		}
		// The shard's cache keys and content addresses are derived from
		// Benchmark, so the spec bytes must actually be the workload that
		// name promises.
		if wl.Name() != sp.Benchmark {
			return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "workload_mismatch",
				"workload spec derives %s but the shard names %s", wl.Name(), sp.Benchmark)
		}
		b = wl
	} else {
		var err error
		b, err = benchmarks.ByName(sp.Benchmark)
		if err != nil {
			return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "unknown_benchmark", "%v", err)
		}
	}
	if sp.Size < 1 || sp.Iters < 1 {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_size",
			"shard size parameters must be resolved and positive, got size=%d iters=%d", sp.Size, sp.Iters)
	}
	if sp.Threads < 1 || sp.Threads > MaxShardThreads {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_threads",
			"threads must be in [1, %d], got %d", MaxShardThreads, sp.Threads)
	}
	if w := shardWorkUnits(b, benchmarks.Size{N: sp.Size, Iters: sp.Iters}, sp.Threads); w > MaxShardWorkUnits {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "work_budget_exceeded",
			"shard work %d exceeds the budget %d", w, int64(MaxShardWorkUnits))
	}
	if len(sp.Machines) == 0 {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_machines", "machines is required")
	}
	if len(sp.Machines) > MaxShardMachines {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_machines",
			"machines has %d entries, max %d", len(sp.Machines), MaxShardMachines)
	}
	if sp.LeaseMs != 0 && (sp.LeaseMs < MinLeaseMs || sp.LeaseMs > MaxLeaseMs) {
		return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_lease",
			"lease_ms must be 0 (default) or in [%d, %d], got %d", MinLeaseMs, MaxLeaseMs, sp.LeaseMs)
	}
	envs := make([]machine.Env, len(sp.Machines))
	seen := make(map[string]bool, len(sp.Machines))
	for i, name := range sp.Machines {
		env, err := machine.ByName(name)
		if err != nil {
			return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "unknown_machine", "%v", err)
		}
		if seen[env.Name] {
			return nil, benchmarks.Size{}, nil, errf(http.StatusBadRequest, "invalid_machines",
				"machine %q listed more than once", env.Name)
		}
		seen[env.Name] = true
		envs[i] = env
	}
	sz := benchmarks.Size{N: sp.Size, Iters: sp.Iters}
	return b, sz, envs, nil
}

// RetryAfterSeconds derives a Retry-After header value from backlog
// pressure: 1 second while the backlog is within one capacity's worth
// of work, one extra second per additional capacity multiple, capped at
// maxRetryAfterSeconds so a deep queue never tells clients to go away
// for minutes. Shared by every 429 path — the serve limiter and the
// worker's shard-capacity rejection — so the hint always reflects load
// instead of a hardcoded constant.
func RetryAfterSeconds(backlog, capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	s := 1 + backlog/capacity
	if s > maxRetryAfterSeconds {
		s = maxRetryAfterSeconds
	}
	return s
}

// maxRetryAfterSeconds caps the Retry-After hint. Load spikes on this
// service drain in seconds (requests are bounded by work budgets), so
// advising a longer back-off would only desynchronize honest clients.
const maxRetryAfterSeconds = 30

// measurementKey is the canonical cache key of the shard's shared
// measurement — identical to the key the solo sweep path computes, so
// affinity routing, store addresses, and single-flight dedup all speak
// one key language.
func (sp *ShardSpec) measurementKey() core.CacheKey {
	return core.CacheKey{
		Bench:   sp.Benchmark,
		N:       sp.Size,
		Iters:   sp.Iters,
		Threads: sp.Threads,
		Opts:    core.MeasureOptions{SizeMode: pcxx.ActualSize},
	}
}
