package cluster

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"extrap/internal/compose"
)

// workloadShardSpec is a nested composed spec small enough to execute
// in a test worker.
const workloadShardSpec = `{"size":8,"iters":2,"root":{"kind":"pipeline","stages":[
	{"kind":"task_farm","tasks":8,"grain":2},
	{"kind":"reduction","op":"tree"}]}}`

// TestWorkloadShardRoundTrip: a shard carrying a composed-workload spec
// alongside its derived name executes like a registry benchmark — the
// worker synthesizes the program from the spec bytes and reports cells.
func TestWorkloadShardRoundTrip(t *testing.T) {
	_, ts := newWorkerServer(t, 0)
	wl, err := compose.FromJSON([]byte(workloadShardSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(ShardSpec{
		Benchmark: wl.Name(),
		Workload:  wl.SpecJSON(),
		Size:      8,
		Iters:     2,
		Threads:   4,
		Machines:  []string{"cm5", "generic-dm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, body := postShard(t, ts.URL, string(spec))
	if status != http.StatusAccepted {
		t.Fatalf("workload dispatch: status %d: %s", status, body)
	}
	var acc ShardAccepted
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = getURL(t, ts.URL+"/v1/internal/shards/"+acc.ID)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, body)
		}
		var st ShardStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == ShardDone {
			if len(st.Cells) != 2 || st.Cells[0].TotalNs <= 0 || st.Cells[1].TotalNs <= 0 {
				t.Fatalf("done workload shard has bad cells: %+v", st)
			}
			return
		}
		if st.Status == ShardFailed {
			t.Fatalf("workload shard failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("workload shard did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkloadShardRejections: a tampered name (spec bytes deriving a
// different wl:<hash> than the shard claims) and a malformed spec both
// answer typed 4xx — the worker never executes a program whose content
// address it cannot verify.
func TestWorkloadShardRejections(t *testing.T) {
	w, ts := newWorkerServer(t, 0)
	wl, err := compose.FromJSON([]byte(workloadShardSpec))
	if err != nil {
		t.Fatal(err)
	}
	mismatch, err := json.Marshal(ShardSpec{
		Benchmark: "wl:00000000000000000000000000000000",
		Workload:  wl.SpecJSON(),
		Size:      8, Iters: 2, Threads: 2, Machines: []string{"cm5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body, wantCode string
	}{
		{"name mismatch", string(mismatch), "workload_mismatch"},
		{"malformed spec", `{"benchmark":"wl:00000000000000000000000000000000","workload":{"root":{"kind":"warp"}},"size":8,"iters":2,"threads":2,"machines":["cm5"]}`, "invalid_workload"},
	}
	for _, tc := range cases {
		status, body := postShard(t, ts.URL, tc.body)
		if status < 400 || status >= 500 || !strings.Contains(body, tc.wantCode) {
			t.Errorf("%s: status %d body %s, want 4xx %s", tc.name, status, body, tc.wantCode)
		}
	}
	if st := w.Stats(); st.Rejected != int64(len(cases)) || st.Accepted != 0 {
		t.Errorf("stats after hostile workload dispatches: %+v", st)
	}
}
