package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
)

// maxActiveShards bounds concurrently resident shards on one worker —
// running plus completed-but-not-yet-collected. A coordinator fleet
// never needs more than a few per sweep; the bound exists so a hostile
// or looping peer cannot grow worker memory without limit.
const maxActiveShards = 256

// WorkerStats is a snapshot of shard traffic for /debug/vars.
type WorkerStats struct {
	Accepted  int64 // shards accepted for execution
	Completed int64 // shards that finished successfully
	Failed    int64 // shards whose pipeline returned an error
	Expired   int64 // shards dropped because their lease lapsed
	Rejected  int64 // dispatches refused (validation or capacity)
	Active    int64 // shards currently resident
}

// shard is one leased execution on the worker.
type shard struct {
	id     string
	cancel context.CancelFunc

	mu     sync.Mutex
	status string
	errMsg string
	cells  []CellResult
	lease  time.Duration
	expiry time.Time
}

// Worker executes dispatched shards through a local experiments.Service
// — the exact pipeline the solo server runs — and answers polls until
// the coordinator collects the result or the lease expires. Safe for
// concurrent use.
type Worker struct {
	svc  *experiments.Service
	base context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu     sync.Mutex
	shards map[string]*shard

	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	expired   atomic.Int64
	rejected  atomic.Int64
}

// NewWorker returns a Worker executing shards on svc. gcInterval bounds
// how often expired leases are collected; ≤ 0 selects 250ms. Call Close
// to cancel running shards and stop the collector.
func NewWorker(svc *experiments.Service, gcInterval time.Duration) *Worker {
	if gcInterval <= 0 {
		gcInterval = 250 * time.Millisecond
	}
	base, stop := context.WithCancel(context.Background())
	w := &Worker{
		svc:    svc,
		base:   base,
		stop:   stop,
		shards: make(map[string]*shard),
	}
	w.wg.Add(1)
	go w.gcLoop(gcInterval)
	return w
}

// Close cancels every running shard and stops the lease collector.
func (w *Worker) Close() {
	w.stop()
	w.wg.Wait()
}

// Stats reports shard traffic counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	active := int64(len(w.shards))
	w.mu.Unlock()
	return WorkerStats{
		Accepted:  w.accepted.Load(),
		Completed: w.completed.Load(),
		Failed:    w.failed.Load(),
		Expired:   w.expired.Load(),
		Rejected:  w.rejected.Load(),
		Active:    active,
	}
}

// gcLoop drops shards whose lease expired without a poll: the
// coordinator is gone, so the entry is freed. A subsequent poll for the
// ID answers 404 — the coordinator (if it was merely partitioned, not
// dead) treats that as worker death and re-dispatches, which is safe
// because results are deterministic and content-addressed.
//
// A shard still EXECUTING holds its lease implicitly: execution in
// flight is the work the lease exists to protect, and reaping it on a
// slow coordinator poll would discard real computation only to have the
// re-dispatch redo it elsewhere (duplicate work, same bytes). The
// executor restarts the lease clock when it finishes, so a shard whose
// coordinator truly died still ages out one lease after completing —
// worker memory stays bounded by maxActiveShards either way, and
// abandoned-work exposure is bounded by the shard work budget.
func (w *Worker) gcLoop(interval time.Duration) {
	defer w.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.base.Done():
			return
		case now := <-ticker.C:
			w.mu.Lock()
			for id, sh := range w.shards {
				sh.mu.Lock()
				dead := sh.status != ShardRunning && now.After(sh.expiry)
				sh.mu.Unlock()
				if dead {
					sh.cancel()
					delete(w.shards, id)
					w.expired.Add(1)
				}
			}
			w.mu.Unlock()
		}
	}
}

// HandleDispatch serves POST /v1/internal/shards: validate the spec
// against registries and ceilings, start executing it in the
// background, and answer 202 with the shard ID to poll.
func (w *Worker) HandleDispatch(rw http.ResponseWriter, r *http.Request) {
	var spec ShardSpec
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, MaxShardBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		w.rejected.Add(1)
		writeError(rw, errf(http.StatusBadRequest, "invalid_json", "decoding shard spec: %v", err))
		return
	}
	b, sz, envs, apiErr := spec.resolve()
	if apiErr != nil {
		w.rejected.Add(1)
		writeError(rw, apiErr)
		return
	}
	lease := time.Duration(spec.LeaseMs) * time.Millisecond
	if spec.LeaseMs == 0 {
		lease = DefaultLeaseMs * time.Millisecond
	}

	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		writeError(rw, errf(http.StatusInternalServerError, "internal", "shard id: %v", err))
		return
	}
	id := "s-" + hex.EncodeToString(raw[:])
	ctx, cancel := context.WithCancel(w.base)
	sh := &shard{
		id:     id,
		cancel: cancel,
		status: ShardRunning,
		lease:  lease,
		expiry: time.Now().Add(lease),
	}

	w.mu.Lock()
	if resident := len(w.shards); resident >= maxActiveShards {
		w.mu.Unlock()
		cancel()
		w.rejected.Add(1)
		rw.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(resident, maxActiveShards)))
		writeError(rw, errf(http.StatusTooManyRequests, "overloaded",
			"worker at its shard limit (%d resident); retry shortly", maxActiveShards))
		return
	}
	w.shards[id] = sh
	w.mu.Unlock()
	w.accepted.Add(1)

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer cancel()
		cells, err := executeShard(ctx, w.svc, b, sz, spec.Threads, envs)
		sh.mu.Lock()
		if err != nil {
			sh.status = ShardFailed
			sh.errMsg = err.Error()
			w.failed.Add(1)
		} else {
			sh.status = ShardDone
			sh.cells = cells
			w.completed.Add(1)
		}
		// Execution held the lease (gcLoop skips running shards); restart
		// the clock now so the coordinator gets one full lease to collect
		// the result before an abandoned entry is garbage-collected.
		sh.expiry = time.Now().Add(sh.lease)
		sh.mu.Unlock()
	}()

	writeJSON(rw, http.StatusAccepted, ShardAccepted{ID: id, Status: ShardRunning, LeaseMs: int(lease / time.Millisecond)})
}

// HandlePoll serves GET /v1/internal/shards/{id}: report the shard's
// state and renew its lease (the poll IS the heartbeat). A finished
// shard is collected — removed from the registry — when its result is
// delivered, so worker memory is bounded by in-flight work, not sweep
// history. An unknown or expired ID answers 404; the coordinator
// re-dispatches.
func (w *Worker) HandlePoll(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	sh, ok := w.shards[id]
	w.mu.Unlock()
	if !ok {
		writeError(rw, errf(http.StatusNotFound, "unknown_shard",
			"no shard %q (never dispatched here, collected, or lease expired)", id))
		return
	}
	sh.mu.Lock()
	sh.expiry = time.Now().Add(sh.lease)
	st := ShardStatus{ID: id, Status: sh.status, Error: sh.errMsg}
	if sh.status == ShardDone {
		st.Cells = sh.cells
	}
	terminal := sh.status != ShardRunning
	sh.mu.Unlock()
	if terminal {
		w.mu.Lock()
		delete(w.shards, id)
		w.mu.Unlock()
		sh.cancel()
	}
	writeJSON(rw, http.StatusOK, st)
}

// executeShard is the dispatch goroutine's executor, indirect so tests
// can pin execution duration against the lease clock.
var executeShard = ExecuteShard

// ExecuteShard runs one measurement group's cells through svc: the
// shared measurement is taken (or found in cache/store) once, then
// every machine's model is simulated over it — through the batch kernel
// in BatchSize chunks when the service has batching enabled, per-cell
// otherwise. Both paths are byte-identical to the solo sweep's cells
// for the same parameters: they call the same Predict/PredictBatch the
// solo grid runner and jobs queue use, and the returned TotalNs values
// are exact integers. Exported because the coordinator runs exactly
// this as its local-fallback path — one executor, two call sites.
func ExecuteShard(ctx context.Context, svc *experiments.Service, b benchmarks.Benchmark, sz benchmarks.Size, threads int, envs []machine.Env) ([]CellResult, error) {
	cells := make([]CellResult, len(envs))
	batch := svc.BatchSize()
	if batch < 1 {
		batch = 1
	}
	if batch == 1 || len(envs) == 1 {
		for i, env := range envs {
			pred, err := svc.Predict(ctx, b, sz, threads, pcxx.ActualSize, env.Config)
			if err != nil {
				return nil, err
			}
			cells[i] = CellResult{Machine: env.Name, Procs: threads, TotalNs: int64(pred.Result.TotalTime)}
		}
		return cells, nil
	}
	for lo := 0; lo < len(envs); lo += batch {
		hi := lo + batch
		if hi > len(envs) {
			hi = len(envs)
		}
		cfgs := make([]sim.Config, hi-lo)
		for i, env := range envs[lo:hi] {
			cfgs[i] = env.Config
		}
		preds, err := svc.PredictBatch(ctx, b, sz, threads, pcxx.ActualSize, cfgs)
		if err != nil {
			return nil, err
		}
		for i, env := range envs[lo:hi] {
			cells[lo+i] = CellResult{Machine: env.Name, Procs: threads, TotalNs: int64(preds[i].Result.TotalTime)}
		}
	}
	return cells, nil
}
