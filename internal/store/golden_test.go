package store

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// goldenKeys is the representative sample of content addresses locked
// by testdata/keys.golden. Every input field that participates in the
// canonical encoding appears non-zero in at least one sample, so a
// refactor that drops, reorders, or reformats a field cannot pass.
func goldenKeys() []struct {
	name      string
	canonical string
} {
	zeroKey := core.CacheKey{}
	basicKey := core.CacheKey{Bench: "embar", N: 1 << 12, Iters: 10, Threads: 16}
	fullKey := core.CacheKey{
		Bench:   "matmul/block-cyclic",
		N:       192,
		Iters:   3,
		Verify:  true,
		Threads: 64,
		Opts: core.MeasureOptions{
			Cost: pcxx.CostModel{
				FlopTime:    300 * vtime.Nanosecond,
				IntOpTime:   100 * vtime.Nanosecond,
				MemByteTime: 15 * vtime.Nanosecond,
				CallTime:    1 * vtime.Microsecond,
			},
			EventOverhead: 2 * vtime.Microsecond,
			SizeMode:      pcxx.SizeMode(1),
			Seed:          0xDEADBEEF,
		},
	}
	defCfg := sim.DefaultConfig()
	fullCfg := sim.Config{
		Procs:     32,
		MipsRatio: 0.41,
		Policy: sim.Policy{
			Kind:              sim.Poll,
			PollInterval:      100 * vtime.Microsecond,
			PollOverhead:      5 * vtime.Microsecond,
			InterruptOverhead: 10 * vtime.Microsecond,
			ServiceTime:       15 * vtime.Microsecond,
		},
		Comm: network.Config{
			StartupTime:      86 * vtime.Microsecond,
			ByteTransferTime: 120 * vtime.Nanosecond,
			MsgConstructTime: 10 * vtime.Microsecond,
			HopTime:          500 * vtime.Nanosecond,
			RecvOverhead:     10 * vtime.Microsecond,
			RecvOccupancy:    2 * vtime.Microsecond,
			Topology:         network.Mesh2D{},
			ContentionFactor: 0.05,
			RequestBytes:     16,
		},
		Barrier:           sim.DefaultBarrier(),
		Placement:         sim.CyclicPlacement,
		ContextSwitchTime: 25 * vtime.Microsecond,
		ClusterSize:       4,
		IntraComm: network.Config{
			StartupTime:      2 * vtime.Microsecond,
			ByteTransferTime: 10 * vtime.Nanosecond,
		},
		EmitTrace: true,
	}
	// Composed workloads: the wl/v1 canonical encoding, and a trace key
	// whose Bench field is the derived workload name — locking both the
	// spec encoding and the name derivation (core.WorkloadName) that
	// every composed trace/prediction address builds on.
	wlBasic := mustWorkload(`{"root":{"kind":"bsp"}}`)
	wlNested := mustWorkload(`{"size":8,"iters":2,"root":{"kind":"seq","children":[
		{"kind":"pipeline","message_bytes":64,"imbalance":0.25,"stages":[
			{"kind":"task_farm","tasks":24,"grain":4,"imbalance":0.5},
			{"kind":"stencil","width":16,"height":4,"sweeps":2,"grain":2,"message_bytes":128}]},
		{"kind":"par","children":[
			{"kind":"reduction","op":"flat","grain":3},
			{"kind":"bsp","supersteps":2,"grain":5,"message_bytes":256}]},
		{"kind":"stencil","width":32,"sweeps":1}]}}`)
	wlTraceKey := core.CacheKey{Bench: wlNested.Name(), N: 8, Iters: 2, Threads: 16}
	return []struct {
		name      string
		canonical string
	}{
		{"trace-zero", zeroKey.Canonical()},
		{"trace-basic", basicKey.Canonical()},
		{"trace-full", fullKey.Canonical()},
		{"trace-v2-basic", basicKey.CanonicalFormat(trace.FormatXTRP2)},
		{"trace-v2-full", fullKey.CanonicalFormat(trace.FormatXTRP2)},
		{"trace-v1-via-format", basicKey.CanonicalFormat(trace.FormatXTRP1)},
		{"cfg-zero", core.CanonicalConfig(sim.Config{})},
		{"cfg-default", core.CanonicalConfig(defCfg)},
		{"cfg-full", core.CanonicalConfig(fullCfg)},
		{"pred-basic-default", core.CanonicalPrediction(basicKey, defCfg)},
		{"pred-full-full", core.CanonicalPrediction(fullKey, fullCfg)},
		{"wl-basic", wlBasic.Canonical()},
		{"wl-nested", wlNested.Canonical()},
		{"wl-trace-nested", wlTraceKey.Canonical()},
		{"wl-pred-nested", core.CanonicalPrediction(wlTraceKey, defCfg)},
	}
}

// mustWorkload parses a golden workload spec; fixture specs are
// constants, so a parse failure is a bug in the test itself.
func mustWorkload(spec string) *compose.Workload {
	w, err := compose.FromJSON([]byte(spec))
	if err != nil {
		panic(err)
	}
	return w
}

const goldenPath = "testdata/keys.golden"

// TestGoldenCacheKeys locks the content-address format. A failure here
// means the canonical encoding changed — which orphans every artifact
// in every existing store directory. If the change is deliberate, bump
// the version component in internal/core/canonical.go AND regenerate
// the fixture with STORE_GOLDEN_UPDATE=1; never regenerate to silence
// an accidental drift.
func TestGoldenCacheKeys(t *testing.T) {
	keys := goldenKeys()
	if os.Getenv("STORE_GOLDEN_UPDATE") != "" {
		var b strings.Builder
		for _, k := range keys {
			h := KeyHash(k.canonical)
			fmt.Fprintf(&b, "%s\t%s\t%s\n", k.name, hex.EncodeToString(h[:]), k.canonical)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skip("golden fixture regenerated")
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with STORE_GOLDEN_UPDATE=1): %v", err)
	}
	defer f.Close()
	want := map[string][2]string{} // name → {hash, canonical}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed golden line: %q", sc.Text())
		}
		want[parts[0]] = [2]string{parts[1], parts[2]}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(keys) {
		t.Fatalf("fixture has %d entries, test generates %d", len(want), len(keys))
	}
	for _, k := range keys {
		exp, ok := want[k.name]
		if !ok {
			t.Errorf("%s: not in fixture", k.name)
			continue
		}
		if k.canonical != exp[1] {
			t.Errorf("%s: canonical string drifted\n got: %s\nwant: %s", k.name, k.canonical, exp[1])
		}
		h := KeyHash(k.canonical)
		if got := hex.EncodeToString(h[:]); got != exp[0] {
			t.Errorf("%s: content address drifted: got %s, want %s", k.name, got, exp[0])
		}
	}
}
