// Package store implements a content-addressed, checksummed, on-disk
// artifact store for the expensive products of the extrapolation
// pipeline: encoded XTRP1 measurement traces and serialized prediction
// results. It is the durable tier behind core.TraceCache — memory in
// front, disk behind, one measurement pipeline — so a restarted server
// (or a repeated CLI run pointed at the same directory) replays work it
// has already done at disk speed instead of re-simulating it.
//
// # Key scheme
//
// Artifacts are addressed by content of their INPUTS, not of their
// bytes: the address is the SHA-256 of a canonical string spelling out
// every input that determines the artifact. The canonical encodings are
// version-locked in internal/core:
//
//   - "trace/v1|bench=…|n=…|iters=…|verify=…|threads=…|flop=…|…|seed=…"
//     (core.CacheKey.Canonical) addresses one deterministic measurement
//     run — program identity, size parameters, thread count, and the
//     full measurement options.
//   - "cfg/v1|procs=…|mips=…|policy=…|comm=…|barrier=…|…"
//     (core.CanonicalConfig) encodes one simulation configuration.
//   - "pred/v1|<trace/v1…>|<cfg/v1…>" (core.CanonicalPrediction)
//     addresses one prediction: a pure function of (measurement,
//     configuration).
//
// Because measurement and simulation are seeded and deterministic,
// equal canonical strings imply byte-identical artifacts; the store
// never has to compare payloads to decide freshness. The flip side is
// that the canonical encoding is a compatibility contract: changing it
// orphans every artifact ever written. A golden test in this package
// locks the format against committed fixtures; bump the embedded
// version component ("/v1") to migrate deliberately.
//
// # On-disk layout
//
//	<dir>/objects/<hh>/<hash>.art   one artifact (hh = first hex byte)
//	<dir>/quarantine/<hash>.art     artifacts that failed verification
//	<dir>/index                     advisory recency index (see index.go)
//
// Each .art file carries a header binding it to its key and payload:
// magic "XART1", the 32-byte key hash, the payload length, and the
// payload's own SHA-256. Get re-verifies all of it on every read; any
// mismatch (truncation, flipped byte, wrong key) moves the file to
// quarantine/ and reports a miss, so a corrupt artifact is recomputed
// and never served. Writes go to a temp file in the same directory and
// are renamed into place, so a crash can leave stray temp files but
// never a half-written artifact under a final name.
//
// The index is advisory: it persists LRU recency and sizes so eviction
// order survives restarts, but the directory scan on Open is the source
// of truth for which artifacts exist. A missing or corrupt index is
// rebuilt, never trusted.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"extrap/internal/core"
	"extrap/internal/trace"
)

var artifactMagic = [5]byte{'X', 'A', 'R', 'T', '1'}

const (
	// artifactHeaderSize is the fixed prefix of every .art file:
	// magic[5] + keyhash[32] + paylen uint64 + paysum[32].
	artifactHeaderSize = 5 + 32 + 8 + 32

	// maxArtifactBytes caps how large an artifact file the store will
	// read back. Files are written by this process, but the directory
	// is still treated as semi-trusted input after a restart: a file
	// grown by corruption or tampering is quarantined, not slurped.
	maxArtifactBytes = 1 << 32

	// flushInterval is how often the background goroutine persists a
	// dirty index. Close always flushes, so the interval only bounds
	// how much recency information a crash can lose — and the index is
	// advisory anyway.
	flushInterval = 2 * time.Second
)

// object is one resident artifact's bookkeeping: its content address,
// its on-disk size, and its recency stamp (persisted in the index so
// eviction order survives restarts).
type object struct {
	hash [32]byte
	size int64
	seq  uint64
}

// Stats is a point-in-time snapshot of store traffic and occupancy.
type Stats struct {
	Hits        int64 // Get served a verified artifact
	Misses      int64 // Get found nothing (or nothing servable)
	Evictions   int64 // artifacts removed by the byte-budget LRU
	Corruptions int64 // artifacts that failed verification and were quarantined
	Puts        int64 // artifacts written
	PutErrors   int64 // writes that failed (durability lost, correctness kept)
	Objects     int64 // artifacts currently resident
	Bytes       int64 // total on-disk bytes of resident artifacts
}

// Store is a content-addressed artifact store with an LRU byte budget.
// It is safe for concurrent use and implements core.TraceBackend, so it
// plugs directly behind a TraceCache via SetBackend.
type Store struct {
	dir      string
	maxBytes int64 // 0 = unlimited

	mu      sync.Mutex
	objects map[[32]byte]*list.Element
	order   *list.List // front = most recently used; values are *object
	bytes   int64
	seq     uint64
	dirty   bool
	closed  bool

	evictCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	corruptions atomic.Int64
	puts        atomic.Int64
	putErrors   atomic.Int64
}

// Open opens (creating if needed) the artifact store rooted at dir,
// keeping at most maxBytes of artifacts on disk (0 = unlimited). It
// loads the advisory index, scans the object directory to reconcile it
// with reality, and starts the background eviction/flush goroutine.
// Call Close to stop the goroutine and persist the index.
func Open(dir string, maxBytes int64) (*Store, error) {
	for _, sub := range []string{objectsDirName, quarantineDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		objects:  make(map[[32]byte]*list.Element),
		order:    list.New(),
		evictCh:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	if err := s.warmStart(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.loop()
	// A budget smaller than what survived the restart trims eagerly.
	s.signalEvict()
	return s, nil
}

const (
	objectsDirName    = "objects"
	quarantineDirName = "quarantine"
	indexFileName     = "index"
)

// warmStart rebuilds the resident set: the directory scan decides WHICH
// artifacts exist and how big they are; the advisory index only
// contributes recency stamps for hashes it knows. Unknown artifacts
// (index lost or stale) enter as least recently used.
func (s *Store) warmStart() error {
	// Reclaim index temp files left by a crash mid-flush.
	if strays, err := filepath.Glob(filepath.Join(s.dir, "index-*.tmp")); err == nil {
		for _, p := range strays {
			os.Remove(p)
		}
	}
	recency := map[[32]byte]uint64{}
	if raw, err := os.ReadFile(filepath.Join(s.dir, indexFileName)); err == nil {
		if idx, derr := decodeIndex(raw); derr == nil {
			for h, meta := range idx {
				recency[h] = meta.seq
			}
		}
		// A corrupt index is rebuilt from the scan — by design, not an
		// error: the index is a hint, the directory is the truth.
	}

	type scanned struct {
		obj  object
		path string
	}
	var found []scanned
	root := filepath.Join(s.dir, objectsDirName)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if filepath.Ext(name) != ".art" {
			// Stray temp file from a crashed write; reclaim it.
			os.Remove(path)
			return nil
		}
		var h [32]byte
		raw, derr := hex.DecodeString(name[:len(name)-len(".art")])
		if derr != nil || len(raw) != 32 {
			os.Remove(path)
			return nil
		}
		copy(h[:], raw)
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		found = append(found, scanned{object{hash: h, size: info.Size(), seq: recency[h]}, path})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scan objects: %w", err)
	}

	// Insert oldest-first so the recency list ends up back-to-front.
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].obj.seq < found[j-1].obj.seq; j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	for _, f := range found {
		o := f.obj
		s.objects[o.hash] = s.order.PushFront(&object{hash: o.hash, size: o.size, seq: o.seq})
		s.bytes += o.size
		if o.seq > s.seq {
			s.seq = o.seq
		}
	}
	return nil
}

// KeyHash returns the store's content address for a canonical key
// string: its SHA-256.
func KeyHash(key string) [32]byte { return sha256.Sum256([]byte(key)) }

func (s *Store) objectPath(h [32]byte) string {
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.dir, objectsDirName, name[:2], name+".art")
}

func (s *Store) quarantinePath(h [32]byte) string {
	return filepath.Join(s.dir, quarantineDirName, hex.EncodeToString(h[:])+".art")
}

// Get returns the verified payload stored under key, or (nil, false).
// Corruption of any kind — truncation, checksum mismatch, a file bound
// to a different key — quarantines the artifact and reports a miss, so
// callers recompute instead of consuming bad bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetByHash(KeyHash(key))
}

// GetByHash is Get addressed by the key's hash directly — the shape the
// cluster artifact-fetch endpoint needs, since peers exchange content
// addresses, not canonical keys. Verification is identical to Get's: a
// payload is returned only when every checksum holds.
func (s *Store) GetByHash(h [32]byte) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.objects[h]
	if ok {
		s.touchLocked(el)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}

	payload, err := readArtifact(s.objectPath(h), h)
	if err != nil {
		s.drop(h)
		if errors.Is(err, fs.ErrNotExist) {
			// Lost a race with eviction (or the file vanished); nothing
			// to quarantine.
			s.misses.Add(1)
			return nil, false
		}
		s.corruptions.Add(1)
		s.misses.Add(1)
		os.Rename(s.objectPath(h), s.quarantinePath(h))
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put stores payload under key, atomically (temp file + rename). A key
// already resident is a no-op: artifacts are deterministic functions of
// their key, so the resident bytes are already correct. Put failures
// lose durability, never correctness — the error is returned for
// logging and counted in Stats, and the caller's in-memory result is
// unaffected.
func (s *Store) Put(key string, payload []byte) error {
	h := KeyHash(key)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if el, ok := s.objects[h]; ok {
		s.touchLocked(el)
		s.dirty = true
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	size, err := writeArtifact(s.objectPath(h), h, payload)
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}

	s.mu.Lock()
	if _, ok := s.objects[h]; !ok {
		s.seq++
		s.objects[h] = s.order.PushFront(&object{hash: h, size: size, seq: s.seq})
		s.bytes += size
		s.dirty = true
	}
	over := s.maxBytes > 0 && s.bytes > s.maxBytes
	s.mu.Unlock()

	s.puts.Add(1)
	if over {
		s.signalEvict()
	}
	return nil
}

// GetTrace and PutTrace adapt the store to core.TraceBackend, so a
// *Store plugs directly behind a TraceCache. Each trace format is
// addressed under its own key prefix (trace/v1 vs trace/v2), so both
// encodings of one measurement coexist in a single store directory and
// a format migration never orphans prior artifacts.
func (s *Store) GetTrace(key core.CacheKey, format trace.Format) ([]byte, bool) {
	return s.Get(key.CanonicalFormat(format))
}

// PutTrace implements core.TraceBackend; see Put for semantics.
func (s *Store) PutTrace(key core.CacheKey, format trace.Format, enc []byte) {
	s.Put(key.CanonicalFormat(format), enc)
}

// Size reports the encoded payload size of a resident artifact (its
// on-disk size minus the fixed artifact header), or false if no such
// artifact is resident. It reads only the in-memory index — no disk I/O
// and no recency update — so serving layers can report per-artifact
// storage costs cheaply.
func (s *Store) Size(key string) (int64, bool) {
	h := KeyHash(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.objects[h]
	if !ok {
		return 0, false
	}
	sz := el.Value.(*object).size - artifactHeaderSize
	if sz < 0 {
		sz = 0
	}
	return sz, true
}

// touchLocked refreshes an object's recency; the caller holds s.mu.
func (s *Store) touchLocked(el *list.Element) {
	s.seq++
	el.Value.(*object).seq = s.seq
	s.order.MoveToFront(el)
	s.dirty = true
}

// drop removes an object from the resident set (not the disk).
func (s *Store) drop(h [32]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.objects[h]; ok {
		s.bytes -= el.Value.(*object).size
		s.order.Remove(el)
		delete(s.objects, h)
		s.dirty = true
	}
}

func (s *Store) signalEvict() {
	select {
	case s.evictCh <- struct{}{}:
	default:
	}
}

// loop is the background goroutine: it trims past-budget artifacts and
// periodically persists a dirty index.
func (s *Store) loop() {
	defer s.wg.Done()
	t := time.NewTicker(flushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.evictCh:
			s.evictToBudget()
		case <-t.C:
			s.flushIfDirty()
		}
	}
}

// evictToBudget removes least-recently-used artifacts until the byte
// budget is met. File removal happens outside the lock; a concurrent
// Get that already looked the object up simply misses on read.
func (s *Store) evictToBudget() {
	for {
		s.mu.Lock()
		if s.maxBytes <= 0 || s.bytes <= s.maxBytes || s.order.Len() == 0 {
			s.mu.Unlock()
			return
		}
		el := s.order.Back()
		o := el.Value.(*object)
		s.bytes -= o.size
		s.order.Remove(el)
		delete(s.objects, o.hash)
		s.dirty = true
		s.mu.Unlock()

		os.Remove(s.objectPath(o.hash))
		s.evictions.Add(1)
	}
}

func (s *Store) flushIfDirty() {
	s.mu.Lock()
	if !s.dirty {
		s.mu.Unlock()
		return
	}
	idx := s.snapshotIndexLocked()
	s.dirty = false
	s.mu.Unlock()

	if err := writeIndex(filepath.Join(s.dir, indexFileName), idx); err != nil {
		// The index is advisory; a failed flush costs recency after a
		// crash, nothing else. Retry on the next tick.
		s.mu.Lock()
		s.dirty = true
		s.mu.Unlock()
	}
}

// snapshotIndexLocked captures the resident set oldest-first; the
// caller holds s.mu.
func (s *Store) snapshotIndexLocked() []object {
	out := make([]object, 0, s.order.Len())
	for el := s.order.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*object))
	}
	return out
}

// Stats returns a snapshot of traffic counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	objects := int64(s.order.Len())
	resident := s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Corruptions: s.corruptions.Load(),
		Puts:        s.puts.Load(),
		PutErrors:   s.putErrors.Load(),
		Objects:     objects,
		Bytes:       resident,
	}
}

// Close stops the background goroutine and persists the index. The
// store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.evictToBudget()
	s.mu.Lock()
	idx := s.snapshotIndexLocked()
	s.dirty = false
	s.mu.Unlock()
	if err := writeIndex(filepath.Join(s.dir, indexFileName), idx); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// readArtifact reads and fully verifies one artifact file: magic, key
// binding, declared length, and payload checksum.
func readArtifact(path string, want [32]byte) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() < artifactHeaderSize || info.Size() > maxArtifactBytes {
		return nil, fmt.Errorf("store: artifact size %d out of range", info.Size())
	}
	var hdr [artifactHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: artifact header: %w", err)
	}
	if !bytes.Equal(hdr[:5], artifactMagic[:]) {
		return nil, errors.New("store: bad artifact magic")
	}
	if !bytes.Equal(hdr[5:37], want[:]) {
		return nil, errors.New("store: artifact bound to a different key")
	}
	plen := binary.LittleEndian.Uint64(hdr[37:45])
	if int64(plen) != info.Size()-artifactHeaderSize {
		return nil, fmt.Errorf("store: declared payload %d bytes, file holds %d",
			plen, info.Size()-artifactHeaderSize)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("store: artifact payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(hdr[45:77], sum[:]) {
		return nil, errors.New("store: payload checksum mismatch")
	}
	return payload, nil
}

// writeArtifact writes an artifact atomically: a temp file in the final
// directory, then a rename. Returns the file size for accounting.
func writeArtifact(path string, h [32]byte, payload []byte) (int64, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	f, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	var hdr [artifactHeaderSize]byte
	copy(hdr[:5], artifactMagic[:])
	copy(hdr[5:37], h[:])
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[45:77], sum[:])
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(payload)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(artifactHeaderSize + len(payload)), nil
}
