package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extrap/internal/core"
	"extrap/internal/trace"
)

func openTemp(t *testing.T, maxBytes int64) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := openTemp(t, 0)
	key := "trace/v1|bench=\"rt\"|n=8"
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 500)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("just-put artifact missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round-tripped payload differs")
	}
	if _, ok := s.Get("some other key"); ok {
		t.Fatal("unknown key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Objects != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put, 1 object", st)
	}
	if st.Bytes != int64(artifactHeaderSize+len(payload)) {
		t.Errorf("Bytes = %d, want %d", st.Bytes, artifactHeaderSize+len(payload))
	}
	// Re-putting a resident key is a no-op, not a rewrite.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Puts != 1 || st.Objects != 1 {
		t.Errorf("after duplicate put: stats = %+v, want still 1 put, 1 object", st)
	}
}

// TestCorruptionQuarantinedNeverServed: every corruption mode — flipped
// payload byte, truncation, wrong key binding, bad magic — must yield a
// miss, move the artifact to quarantine, and let a re-put recompute it.
func TestCorruptionQuarantinedNeverServed(t *testing.T) {
	corruptions := map[string]func(raw []byte) []byte{
		"flipped payload byte": func(raw []byte) []byte {
			raw[artifactHeaderSize+3] ^= 0x01
			return raw
		},
		"flipped checksum byte": func(raw []byte) []byte {
			raw[45] ^= 0x80
			return raw
		},
		"wrong key binding": func(raw []byte) []byte {
			raw[5] ^= 0xFF
			return raw
		},
		"bad magic": func(raw []byte) []byte {
			raw[0] = 'Z'
			return raw
		},
		"truncated": func(raw []byte) []byte {
			return raw[:len(raw)-7]
		},
		"grown": func(raw []byte) []byte {
			return append(raw, 0xEE)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, dir := openTemp(t, 0)
			key := "trace/v1|bench=\"corrupt\""
			payload := bytes.Repeat([]byte{7}, 256)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := s.objectPath(KeyHash(key))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt artifact SERVED: %d bytes", len(got))
			}
			if st := s.Stats(); st.Corruptions != 1 {
				t.Errorf("Corruptions = %d, want 1", st.Corruptions)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt artifact still under its object path")
			}
			if _, err := os.Stat(s.quarantinePath(KeyHash(key))); err != nil {
				t.Errorf("corrupt artifact not in quarantine: %v", err)
			}
			// Recompute path: a fresh Put succeeds and serves again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-put after quarantine does not serve the good payload")
			}
			// Quarantine keeps the bad bytes for postmortems.
			if _, err := os.Stat(filepath.Join(dir, quarantineDirName)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEvictionHonorsByteBudget: past-budget artifacts are trimmed in
// LRU order by the background goroutine.
func TestEvictionHonorsByteBudget(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 1000)
	perObject := int64(artifactHeaderSize + len(payload))
	s, _ := openTemp(t, 3*perObject)
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	for _, k := range keys {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Bytes <= 3*perObject && st.Evictions >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eviction never brought store under budget: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Oldest two are gone, newest three remain.
	for _, k := range keys[:2] {
		if _, ok := s.Get(k); ok {
			t.Errorf("evicted key %q still served", k)
		}
	}
	for _, k := range keys[2:] {
		if _, ok := s.Get(k); !ok {
			t.Errorf("resident key %q missed", k)
		}
	}
}

// TestWarmStartRestoresArtifactsAndRecency: a reopened store serves
// everything the closed store held, and its persisted recency drives
// eviction order — the artifact touched last survives a tightened
// budget even though it was written first.
func TestWarmStartRestoresArtifactsAndRecency(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 1000)
	perObject := int64(artifactHeaderSize + len(payload))
	for _, k := range []string{"first", "second", "third"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("first"); !ok { // refresh: "first" becomes MRU
		t.Fatal("miss before close")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with room for just one object: only the most recently
	// used ("first") should survive the eager trim.
	s2, err := Open(dir, perObject)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s2.Stats(); st.Bytes <= perObject {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reopened store never trimmed to budget: %+v", s2.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := s2.Get("first"); !ok {
		t.Error("most recently used artifact did not survive the restart trim")
	}
	for _, k := range []string{"second", "third"} {
		if _, ok := s2.Get(k); ok {
			t.Errorf("least recently used %q survived over the MRU", k)
		}
	}
}

// TestWarmStartSurvivesCorruptIndex: the index is advisory — a reopened
// store with a trashed index still serves every artifact.
func TestWarmStartSurvivesCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives")
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("artifact lost behind a corrupt index")
	}
}

// TestTraceBackendAdapter: Store satisfies core.TraceBackend and round
// trips through the CacheKey canonical encoding, with each trace format
// addressed under its own key.
func TestTraceBackendAdapter(t *testing.T) {
	s, _ := openTemp(t, 0)
	var backend core.TraceBackend = s
	key := core.CacheKey{Bench: "adapter", N: 4, Iters: 2, Threads: 8}
	enc := []byte("pretend-xtrp1-bytes")
	backend.PutTrace(key, trace.FormatXTRP1, enc)
	got, ok := backend.GetTrace(key, trace.FormatXTRP1)
	if !ok || !bytes.Equal(got, enc) {
		t.Fatal("TraceBackend adapter did not round trip")
	}
	if _, ok := backend.GetTrace(core.CacheKey{Bench: "adapter", N: 5, Iters: 2, Threads: 8}, trace.FormatXTRP1); ok {
		t.Fatal("distinct key hit the same artifact")
	}
	if _, ok := backend.GetTrace(key, trace.FormatXTRP2); ok {
		t.Fatal("XTRP2 key hit the XTRP1 artifact")
	}
	enc2 := []byte("pretend-xtrp2-bytes")
	backend.PutTrace(key, trace.FormatXTRP2, enc2)
	got2, ok := backend.GetTrace(key, trace.FormatXTRP2)
	if !ok || !bytes.Equal(got2, enc2) {
		t.Fatal("XTRP2 artifact did not round trip beside the XTRP1 one")
	}

	// Size reads the index without touching disk or recency, and reports
	// payload bytes (header excluded).
	if sz, ok := s.Size(key.CanonicalFormat(trace.FormatXTRP2)); !ok || sz != int64(len(enc2)) {
		t.Fatalf("Size = %d, %v; want %d, true", sz, ok, len(enc2))
	}
	if _, ok := s.Size("no-such-key"); ok {
		t.Fatal("Size reported a nonexistent artifact")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	objs := []object{
		{hash: KeyHash("a"), size: 100, seq: 1},
		{hash: KeyHash("b"), size: 200, seq: 2},
		{hash: KeyHash("c"), size: 300, seq: 9},
	}
	got, err := decodeIndex(encodeIndex(objs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(objs))
	}
	for _, o := range objs {
		m, ok := got[o.hash]
		if !ok || m.size != o.size || m.seq != o.seq {
			t.Errorf("entry %x: got %+v, want size %d seq %d", o.hash[:4], m, o.size, o.seq)
		}
	}
}

func TestIndexDecodeRejectsHostileInputs(t *testing.T) {
	valid := encodeIndex([]object{{hash: KeyHash("x"), size: 10, seq: 1}})
	cases := map[string][]byte{
		"empty":          {},
		"short":          valid[:8],
		"bad magic":      append([]byte("ZIDX1"), valid[5:]...),
		"truncated body": valid[:len(valid)-1],
		"trailing junk":  append(append([]byte{}, valid...), 0),
		"huge count": func() []byte {
			b := append([]byte{}, valid...)
			b[5], b[6], b[7], b[8] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}(),
		"oversize artifact": func() []byte {
			b := append([]byte{}, valid...)
			for i := 41; i < 49; i++ {
				b[i] = 0xFF
			}
			return b
		}(),
		"duplicate hash": func() []byte {
			o := object{hash: KeyHash("x"), size: 10, seq: 1}
			return encodeIndex([]object{o, o})
		}(),
	}
	for name, raw := range cases {
		if _, err := decodeIndex(raw); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
