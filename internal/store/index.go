package store

// The advisory recency index (all integers little-endian):
//
//	magic   [5]byte  "XIDX1"
//	count   uint32   number of entries, ≤ maxIndexEntries
//	entries count × (hash [32]byte, size uint64, seq uint64)
//
// The index exists only so LRU eviction order survives a restart; the
// object-directory scan on Open decides which artifacts actually exist
// and how big they are. The decoder therefore treats the file as
// untrusted input — the same discipline as the trace codec: nothing is
// allocated from the header-declared count beyond a fixed cap, entries
// are read incrementally, and any structural violation (bad magic,
// count past the cap, truncation, trailing garbage, duplicate hashes)
// is an error. A failed decode costs recency information, never
// correctness.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

var indexMagic = [5]byte{'X', 'I', 'D', 'X', '1'}

const (
	// indexEntrySize is the wire size of one entry: hash + size + seq.
	indexEntrySize = 32 + 8 + 8

	// maxIndexEntries caps how many entries a decoder will accept; far
	// above any realistic resident set, far below anything that could
	// make a hostile count expensive.
	maxIndexEntries = 1 << 20

	// indexPrealloc caps how many entry slots the decoder reserves up
	// front from the untrusted count; beyond this the map grows only as
	// entries actually arrive.
	indexPrealloc = 4096
)

// indexMeta is what the index contributes per artifact: its recency
// stamp. Size is carried for forward compatibility but the scan's stat
// wins.
type indexMeta struct {
	size int64
	seq  uint64
}

// decodeIndex parses an index file. It never trusts the declared count:
// allocation is capped and entries are consumed one record at a time,
// so a hostile count of 2^32 costs a bounds check, not gigabytes.
func decodeIndex(raw []byte) (map[[32]byte]indexMeta, error) {
	if len(raw) < 5+4 {
		return nil, errors.New("store: index too short")
	}
	if !bytes.Equal(raw[:5], indexMagic[:]) {
		return nil, errors.New("store: bad index magic")
	}
	count := binary.LittleEndian.Uint32(raw[5:9])
	if count > maxIndexEntries {
		return nil, fmt.Errorf("store: index declares %d entries, cap %d", count, maxIndexEntries)
	}
	body := raw[9:]
	if len(body) != int(count)*indexEntrySize {
		return nil, fmt.Errorf("store: index body is %d bytes, want %d for %d entries",
			len(body), int(count)*indexEntrySize, count)
	}
	prealloc := int(count)
	if prealloc > indexPrealloc {
		prealloc = indexPrealloc
	}
	out := make(map[[32]byte]indexMeta, prealloc)
	for i := 0; i < int(count); i++ {
		rec := body[i*indexEntrySize:]
		var h [32]byte
		copy(h[:], rec[:32])
		if _, dup := out[h]; dup {
			return nil, errors.New("store: duplicate hash in index")
		}
		size := binary.LittleEndian.Uint64(rec[32:40])
		if size > maxArtifactBytes {
			return nil, fmt.Errorf("store: index entry declares %d-byte artifact", size)
		}
		out[h] = indexMeta{size: int64(size), seq: binary.LittleEndian.Uint64(rec[40:48])}
	}
	return out, nil
}

// encodeIndex serializes entries (any order; seq carries recency).
func encodeIndex(objs []object) []byte {
	buf := make([]byte, 9+len(objs)*indexEntrySize)
	copy(buf[:5], indexMagic[:])
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(objs)))
	for i, o := range objs {
		rec := buf[9+i*indexEntrySize:]
		copy(rec[:32], o.hash[:])
		binary.LittleEndian.PutUint64(rec[32:40], uint64(o.size))
		binary.LittleEndian.PutUint64(rec[40:48], o.seq)
	}
	return buf
}

// writeIndex persists the index atomically (temp file + rename), the
// same crash discipline as artifacts.
func writeIndex(path string, objs []object) error {
	if len(objs) > maxIndexEntries {
		// Persist the most recent cap's worth; the rest re-enter as
		// least recently used after a restart.
		objs = objs[len(objs)-maxIndexEntries:]
	}
	f, err := os.CreateTemp(filepath.Dir(path), "index-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(encodeIndex(objs))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
