package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzIndexDecode hammers the advisory-index decoder with arbitrary
// bytes. The properties under test are the untrusted-input discipline:
// the decoder must never panic, never accept more than maxIndexEntries,
// and a successful decode must re-encode to an equivalent index (the
// format has one canonical meaning). Seeds cover the hostile shapes the
// unit tests check — huge declared counts, truncation, trailing bytes —
// so the fuzzer starts at the interesting boundaries.
func FuzzIndexDecode(f *testing.F) {
	valid := encodeIndex([]object{
		{hash: KeyHash("seed-a"), size: 128, seq: 1},
		{hash: KeyHash("seed-b"), size: 1 << 20, seq: 7},
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("XIDX1"))
	f.Add(valid[:len(valid)-5])
	f.Add(append(append([]byte{}, valid...), 0xFF))
	huge := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(huge[5:9], 0xFFFFFFFF)
	f.Add(huge)
	overCap := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(overCap[5:9], maxIndexEntries+1)
	f.Add(overCap)

	f.Fuzz(func(t *testing.T, raw []byte) {
		idx, err := decodeIndex(raw)
		if err != nil {
			return
		}
		if len(idx) > maxIndexEntries {
			t.Fatalf("decoder accepted %d entries past the cap", len(idx))
		}
		objs := make([]object, 0, len(idx))
		for h, m := range idx {
			objs = append(objs, object{hash: h, size: m.size, seq: m.seq})
		}
		re, err := decodeIndex(encodeIndex(objs))
		if err != nil {
			t.Fatalf("re-encoded index does not decode: %v", err)
		}
		if len(re) != len(idx) {
			t.Fatalf("round trip changed entry count: %d → %d", len(idx), len(re))
		}
		for h, m := range idx {
			if got, ok := re[h]; !ok || got != m {
				t.Fatalf("round trip changed entry %x: %+v → %+v", h[:4], m, got)
			}
		}
		// And the fixed point: decoding canonical bytes of a decoded
		// index must reproduce the same canonical bytes.
		if raw2 := canonicalBytes(re); !bytes.Equal(canonicalBytes(idx), raw2) {
			t.Fatal("canonical re-encoding is not a fixed point")
		}
	})
}

// canonicalBytes re-encodes an index map in sorted-hash order so two
// equivalent maps compare byte-equal.
func canonicalBytes(idx map[[32]byte]indexMeta) []byte {
	objs := make([]object, 0, len(idx))
	for h, m := range idx {
		objs = append(objs, object{hash: h, size: m.size, seq: m.seq})
	}
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && bytes.Compare(objs[j].hash[:], objs[j-1].hash[:]) < 0; j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
	return encodeIndex(objs)
}
