// Package jobs is a durable asynchronous job queue for extrapolation
// sweeps: submit a sweep, get a job ID back immediately, and let a
// worker pool execute the grid cells through the shared experiment
// engine while per-cell results are persisted to the artifact store as
// they land. Because every cell's prediction is content-addressed
// (core.CanonicalPrediction) and the measurement pipeline is
// deterministic, a restarted manager resumes incomplete jobs from their
// persisted partials: cells that finished before the crash are loaded
// from the store instead of re-simulated, and the completed job's
// results are byte-identical to a synchronous in-memory sweep.
//
// Durability model: job specs and statuses live as one JSON file per
// job under the manager's directory (written atomically, temp file +
// rename); cell results live in the artifact store. A job interrupted
// by a crash — or by Close, which is deliberately crash-shaped — stays
// persisted as "running" and re-enters the queue on the next Open. Only
// an explicit Cancel persists the "cancelled" state.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/model"
	"extrap/internal/pcxx"
	"extrap/internal/pool"
	"extrap/internal/sim"
	"extrap/internal/store"
	"extrap/internal/vtime"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job modes. The zero value and ModeExact both select the exact grid —
// every cell simulated. ModeFitted simulates only the sparse anchor set
// the model package's refinement selects and persists those anchors as
// ordinary cells; the dense fitted curve is re-derived at render time
// (model.Replay), so fitted jobs resume after a crash exactly like
// exact ones — completed anchors load from the store, the deterministic
// refinement re-requests the same set, and the rendered bytes match.
const (
	ModeExact  = "exact"
	ModeFitted = "fitted"
)

// Spec is the resolved description of one sweep job: concrete size
// parameters (defaults already substituted) and registry names. Specs
// are persisted verbatim, so their resolution must be stable across
// restarts — Submit resolves and validates before writing anything.
type Spec struct {
	Benchmark string `json:"benchmark"`
	// Workload, when set, is a composed workload's spec JSON: the job
	// measures the synthesized program instead of a registry benchmark.
	// Submit resolves Benchmark to the workload's derived content name
	// ("wl:<hash>"), so every content address the job's cells land on is
	// a pure function of the persisted spec — a restarted manager
	// re-derives the same addresses and resumes from the same partials.
	Workload json.RawMessage `json:"workload,omitempty"`
	Size     int             `json:"size"`
	Iters    int             `json:"iters"`
	// Machine names a single target environment. Exactly one of Machine
	// / Machines must be set.
	Machine string `json:"machine,omitempty"`
	// Machines names several target environments swept against the same
	// measurements — one curve per machine. Cells are addressed
	// machine-major: the grid is Machines × Procs and every machine's
	// cells at one ladder point share a measurement, which is what lets
	// the engine's batched simulation kernel engage.
	Machines []string `json:"machines,omitempty"`
	Procs    []int    `json:"procs"`
	// Mode is "" / ModeExact (every cell simulated) or ModeFitted
	// (sparse anchors simulated, dense curve fitted at render time).
	// Persisted as "" for exact, so pre-mode job files load unchanged.
	Mode string `json:"mode,omitempty"`
}

// machineNames returns the job's machine list: Machines when set, else
// the single Machine.
func (sp Spec) machineNames() []string {
	if len(sp.Machines) > 0 {
		return sp.Machines
	}
	return []string{sp.Machine}
}

// cellRecord is the persisted result of one grid cell, stored in the
// artifact store under the cell's prediction content address. The
// fields are exact integers (virtual nanoseconds), so the record
// round-trips bit-for-bit and a restored sweep renders byte-identically
// to a freshly computed one.
type cellRecord struct {
	Procs   int   `json:"procs"`
	TotalNs int64 `json:"total_ns"`
}

// jobFile is the persisted form of one job. Points is flat and
// machine-major (machine 0's ladder, then machine 1's, …), so a
// single-machine job file is byte-compatible with the pre-multi-machine
// format.
type jobFile struct {
	ID     string       `json:"id"`
	Spec   Spec         `json:"spec"`
	Status Status       `json:"status"`
	Error  string       `json:"error,omitempty"`
	Done   int          `json:"done_cells"`
	Points []cellRecord `json:"points,omitempty"`
}

// Job is the in-memory state of one job. Fields are guarded by the
// Manager's mutex.
type Job struct {
	id       string
	spec     Spec
	status   Status
	errMsg   string
	done     int
	points   [][]metrics.Point // one curve per machine, ladder-indexed
	havePt   [][]bool
	cancel   context.CancelFunc
	userStop bool // Cancel was called (vs. manager shutdown)
}

// Snapshot is a point-in-time copy of a job's state for serving layers.
type Snapshot struct {
	ID         string
	Spec       Spec
	Status     Status
	Error      string
	TotalCells int
	DoneCells  int
	// Points is the first machine's completed sweep series in ladder
	// order — the whole result for a single-machine job; nil until the
	// job is done.
	Points []metrics.Point
	// Curves is one completed series per machine, in Spec order; nil
	// until the job is done. Curves[0] aliases Points.
	Curves [][]metrics.Point
}

// Stats is a snapshot of queue traffic for /debug/vars: current state
// gauges plus cumulative cell counters. CellsLoaded counts cells
// restored from the artifact store (work NOT redone after a restart);
// CellsComputed counts cells that ran the pipeline.
type Stats struct {
	Queued        int64
	Running       int64
	Done          int64
	Failed        int64
	Cancelled     int64
	CellsLoaded   int64
	CellsComputed int64
}

// Config shapes a Manager.
type Config struct {
	// Dir is where job files persist. Required.
	Dir string
	// Service executes the cells; its memo cache should share the same
	// Store via SetBackend so measurements are durable too. Required.
	Service *experiments.Service
	// Store persists per-cell predictions. Required — durability is the
	// point of the queue.
	Store *store.Store
	// Workers bounds concurrently executing jobs; ≤ 0 selects 1.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; ≤ 0 selects 64.
	QueueDepth int
	// Dispatch, when non-nil, executes ladder points remotely (a
	// coordinator sharding cells across worker replicas) instead of
	// through Service. Cells still persist per content address in the
	// LOCAL Store as results land, so crash resume works identically:
	// completed cells load from disk, only missing cells re-dispatch.
	Dispatch PointRunner
}

// PointRunner executes one measurement group — benchmark/size at one
// ladder point, under every named machine — returning one exact total
// time per machine in machines order. workload carries a composed
// workload's spec JSON (nil for registry benchmarks), letting the
// runner synthesize the program on whatever node executes the point.
// *cluster.Coordinator implements it; jobs declares the interface so
// the dependency points outward.
type PointRunner interface {
	RunPoint(ctx context.Context, bench string, workload []byte, sz benchmarks.Size, threads int, machines []string) ([]vtime.Time, error)
}

// Manager owns the queue, the worker pool, and the persisted job set.
type Manager struct {
	cfg   Config
	base  context.Context
	stop  context.CancelFunc
	queue chan string
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	doneJobs      atomic.Int64
	failedJobs    atomic.Int64
	cancelledJobs atomic.Int64
	cellsLoaded   atomic.Int64
	cellsComputed atomic.Int64

	// cellHook, when set (tests only), runs before each cell executes;
	// it lets the crash/resume test freeze a job mid-grid.
	cellHook func(jobID string, cell int)
}

// SetCellHook installs a hook that runs before each grid cell executes.
// Test instrumentation only: it lets cancellation and crash/restart
// tests freeze a job deterministically mid-grid. Call it before any
// job is submitted; the hook must not call back into the Manager.
func (m *Manager) SetCellHook(hook func(jobID string, cell int)) {
	m.cellHook = hook
}

// maxJobFileBytes caps how large a persisted job file Open will read:
// the directory is semi-trusted input after a restart, and a job file
// is a few hundred bytes of JSON — anything near the cap is garbage.
const maxJobFileBytes = 1 << 20

// Open loads the persisted job set from cfg.Dir, re-enqueues every
// incomplete job (queued or running at the time of the crash/shutdown),
// and starts the worker pool.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" || cfg.Service == nil || cfg.Store == nil {
		return nil, errors.New("jobs: Dir, Service, and Store are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create dir: %w", err)
	}
	base, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		base:  base,
		stop:  stop,
		queue: make(chan string, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	if err := m.loadAll(); err != nil {
		stop()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// loadAll restores the persisted job set and re-enqueues incomplete
// jobs in ID order (deterministic resume).
func (m *Manager) loadAll() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("jobs: scan dir: %w", err)
	}
	var resume []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		jf, err := readJobFile(filepath.Join(m.cfg.Dir, name))
		if err != nil {
			// A torn or hostile job file costs that job, not the
			// manager; leave it on disk for postmortems.
			continue
		}
		j := &Job{
			id:     jf.ID,
			spec:   jf.Spec,
			status: jf.Status,
			errMsg: jf.Error,
			done:   jf.Done,
		}
		if jf.Status == StatusDone {
			// One curve per machine: the full ladder for exact jobs, the
			// persisted anchors for fitted ones (readJobFile verified the
			// count divides evenly).
			perCurve := len(jf.Points) / len(jf.Spec.machineNames())
			j.points = splitCurves(recordsToPoints(jf.Points), perCurve)
		}
		m.jobs[jf.ID] = j
		if !jf.Status.Terminal() {
			j.status = StatusQueued
			j.done = 0
			resume = append(resume, jf.ID)
		}
	}
	sort.Strings(resume)
	for _, id := range resume {
		select {
		case m.queue <- id:
		default:
			// Queue full on resume: the job stays persisted as queued
			// and will re-enter on the next restart. With the default
			// depth this needs >64 simultaneously incomplete jobs.
		}
	}
	return nil
}

// Submit validates, resolves, persists, and enqueues one sweep job,
// returning its ID. The spec is resolved before anything is written:
// defaults are substituted so the persisted spec — and therefore every
// content address derived from it — is stable across restarts.
func (m *Manager) Submit(spec Spec) (string, error) {
	b, sz, _, err := resolveSpec(spec)
	if err != nil {
		return "", err
	}
	spec.Benchmark = b.Name()
	spec.Size = sz.N
	spec.Iters = sz.Iters
	if spec.Mode == ModeExact {
		spec.Mode = "" // normalize: "" and "exact" are one mode
	}
	if len(spec.Procs) == 0 {
		spec.Procs = core.DefaultProcCounts()
	}

	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("jobs: id: %w", err)
	}
	id := "j-" + hex.EncodeToString(raw[:])

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", errors.New("jobs: manager closed")
	}
	j := &Job{id: id, spec: spec, status: StatusQueued}
	m.jobs[id] = j
	m.mu.Unlock()

	if err := m.persist(j); err != nil {
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		return "", err
	}
	select {
	case m.queue <- id:
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		os.Remove(m.jobPath(id))
		return "", errors.New("jobs: queue full")
	}
	return id, nil
}

// Get returns a snapshot of the job, if it exists.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// List returns snapshots of every known job, sorted by ID.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (m *Manager) snapshotLocked(j *Job) Snapshot {
	s := Snapshot{
		ID:         j.id,
		Spec:       j.spec,
		Status:     j.status,
		Error:      j.errMsg,
		TotalCells: len(j.spec.machineNames()) * len(j.spec.Procs),
		DoneCells:  j.done,
	}
	if j.status == StatusDone {
		s.Curves = make([][]metrics.Point, len(j.points))
		for i, curve := range j.points {
			s.Curves[i] = append([]metrics.Point(nil), curve...)
		}
		s.Points = s.Curves[0]
	}
	return s
}

// Cancel stops a job: a queued job is marked cancelled before it runs,
// a running job's context is cancelled (the pipeline unwinds at its
// next safe point). Cancelling a terminal job is a no-op reporting the
// final state.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	if j.status.Terminal() {
		s := m.snapshotLocked(j)
		m.mu.Unlock()
		return s, true
	}
	j.userStop = true
	if j.status == StatusQueued {
		j.status = StatusCancelled
		m.cancelledJobs.Add(1)
	}
	if j.cancel != nil {
		j.cancel()
	}
	s := m.snapshotLocked(j)
	m.mu.Unlock()
	if s.Status == StatusCancelled {
		m.persist(j)
	}
	return s, true
}

// Stats reports queue gauges and cumulative cell counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	var queued, running int64
	for _, j := range m.jobs {
		switch j.status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		}
	}
	m.mu.Unlock()
	return Stats{
		Queued:        queued,
		Running:       running,
		Done:          m.doneJobs.Load(),
		Failed:        m.failedJobs.Load(),
		Cancelled:     m.cancelledJobs.Load(),
		CellsLoaded:   m.cellsLoaded.Load(),
		CellsComputed: m.cellsComputed.Load(),
	}
}

// Close stops the workers and returns once they exit. Running jobs are
// interrupted mid-cell and deliberately left persisted as "running" —
// Close is crash-shaped, so the restart path (resume from persisted
// partials) is the only completion path and gets exercised constantly,
// not just after real crashes.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}

func (m *Manager) jobPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".json")
}

// persist writes the job's current state atomically.
func (m *Manager) persist(j *Job) error {
	m.mu.Lock()
	jf := jobFile{
		ID:     j.id,
		Spec:   j.spec,
		Status: j.status,
		Error:  j.errMsg,
		Done:   j.done,
	}
	if j.status == StatusDone {
		for _, curve := range j.points {
			jf.Points = append(jf.Points, pointsToRecords(curve)...)
		}
	}
	m.mu.Unlock()
	body, err := json.Marshal(jf)
	if err != nil {
		return fmt.Errorf("jobs: encode: %w", err)
	}
	f, err := os.CreateTemp(m.cfg.Dir, "job-*.tmp")
	if err != nil {
		return fmt.Errorf("jobs: persist: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, m.jobPath(j.id))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: persist: %w", err)
	}
	return nil
}

func readJobFile(path string) (jobFile, error) {
	info, err := os.Stat(path)
	if err != nil {
		return jobFile{}, err
	}
	if info.Size() > maxJobFileBytes {
		return jobFile{}, fmt.Errorf("jobs: job file %s is %d bytes, cap %d", path, info.Size(), maxJobFileBytes)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return jobFile{}, err
	}
	var jf jobFile
	if err := json.Unmarshal(raw, &jf); err != nil {
		return jobFile{}, err
	}
	if jf.ID == "" || filepath.Base(path) != jf.ID+".json" {
		return jobFile{}, errors.New("jobs: job file ID does not match its name")
	}
	switch jf.Status {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
	default:
		return jobFile{}, fmt.Errorf("jobs: unknown status %q", jf.Status)
	}
	if len(jf.Spec.Procs) == 0 || len(jf.Spec.Procs) > 1<<10 {
		return jobFile{}, fmt.Errorf("jobs: job has %d ladder entries", len(jf.Spec.Procs))
	}
	if len(jf.Spec.Machines) > 1<<10 {
		return jobFile{}, fmt.Errorf("jobs: job has %d machines", len(jf.Spec.Machines))
	}
	if jf.Status == StatusDone {
		nm := len(jf.Spec.machineNames())
		if jf.Spec.Mode == ModeFitted {
			// A fitted job persists only its anchors: at least one per
			// curve, machine-major, never more than the full grid.
			if len(jf.Points) == 0 || len(jf.Points)%nm != 0 || len(jf.Points) > nm*len(jf.Spec.Procs) {
				return jobFile{}, fmt.Errorf("jobs: done fitted job has %d points for %d machines × %d ladder entries",
					len(jf.Points), nm, len(jf.Spec.Procs))
			}
		} else if want := nm * len(jf.Spec.Procs); len(jf.Points) != want {
			return jobFile{}, fmt.Errorf("jobs: done job has %d points, want %d", len(jf.Points), want)
		}
	}
	return jf, nil
}

// worker drains the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one job's grid, persisting progress per cell.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.status != StatusQueued {
		// Cancelled while queued (or file vanished); nothing to run.
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.base)
	defer cancel()
	j.status = StatusRunning
	j.cancel = cancel
	j.done = 0
	nm := len(j.spec.machineNames())
	j.points = make([][]metrics.Point, nm)
	j.havePt = make([][]bool, nm)
	for mi := range j.points {
		j.points[mi] = make([]metrics.Point, len(j.spec.Procs))
		j.havePt[mi] = make([]bool, len(j.spec.Procs))
	}
	spec := j.spec
	m.mu.Unlock()
	m.persist(j)

	b, sz, envs, err := resolveSpec(spec)
	if err == nil {
		if spec.Mode == ModeFitted {
			err = m.runFitted(ctx, j, b, sz, envs)
		} else {
			err = m.runCells(ctx, j, b, sz, envs)
		}
	}

	m.mu.Lock()
	j.cancel = nil
	switch {
	case err == nil:
		j.status = StatusDone
		if j.spec.Mode != ModeFitted {
			j.done = nm * len(j.spec.Procs)
		}
		// A fitted job's done count stays at anchors × machines — the
		// cells actually simulated; the gap to TotalCells is the work
		// the fit saved.
		m.doneJobs.Add(1)
	case j.userStop:
		j.status = StatusCancelled
		j.errMsg = "cancelled"
		m.cancelledJobs.Add(1)
	case errors.Is(err, context.Canceled) && m.base.Err() != nil:
		// Manager shutdown: leave the job persisted as running so the
		// next Open resumes it — do not write a terminal state.
		j.status = StatusRunning
		m.mu.Unlock()
		return
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		m.failedJobs.Add(1)
	}
	m.mu.Unlock()
	m.persist(j)
}

// runCells fans the job's grid (machines × ladder) across the cell
// pool. Each cell first consults the artifact store for its
// content-addressed prediction — a hit restores the result without
// touching the pipeline (that is the resume path after a crash) — and
// otherwise computes it through the experiment engine and persists it
// before reporting done.
//
// With the Service's batch size > 1 and several machines, cells are
// scheduled one ladder point at a time: every machine's cell at that
// point shares one measurement, so the misses (after per-cell store
// lookup) run through PredictBatch in batch-size chunks — one pass over
// the shared trace per chunk. Each cell still persists individually
// under its own content address the moment its lane lands, so crash
// resume is exactly as fine-grained as the per-cell path, and the batch
// kernel's byte-identity means the stored records match it exactly.
func (m *Manager) runCells(ctx context.Context, j *Job, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env) error {
	procs := j.spec.Procs
	if m.cfg.Dispatch != nil {
		return pool.Run(m.cfg.Service.Workers(), len(procs), func(pi int) error {
			return m.runDispatchedPoint(ctx, j, b, sz, envs, pi)
		})
	}
	batch := m.cfg.Service.BatchSize()
	if batch > 1 && len(envs) > 1 {
		return pool.Run(m.cfg.Service.Workers(), len(procs), func(pi int) error {
			return m.runLadderPoint(ctx, j, b, sz, envs, pi, batch)
		})
	}
	return pool.Run(m.cfg.Service.Workers(), len(envs)*len(procs), func(c int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		mi, pi := c/len(procs), c%len(procs)
		if m.cellHook != nil {
			m.cellHook(j.id, c)
		}
		n := procs[pi]
		key := experiments.MeasurementKey(b.Name(), sz, n, core.MeasureOptions{SizeMode: pcxx.ActualSize})
		if pt, ok := m.loadCell(key, envs[mi], n); ok {
			return m.finishCell(j, mi, pi, pt)
		}
		pred, err := m.cfg.Service.Predict(ctx, b, sz, n, pcxx.ActualSize, envs[mi].Config)
		if err != nil {
			return err
		}
		return m.storeCell(j, key, envs[mi], mi, pi, n, pred)
	})
}

// runLadderPoint executes every machine's cell at one ladder point:
// store lookups first, then the missing cells batched over the shared
// measurement.
func (m *Manager) runLadderPoint(ctx context.Context, j *Job, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env, pi, batch int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	procs := j.spec.Procs
	n := procs[pi]
	key := experiments.MeasurementKey(b.Name(), sz, n, core.MeasureOptions{SizeMode: pcxx.ActualSize})
	var missing []int // machine indices whose cell is not in the store
	for mi := range envs {
		if m.cellHook != nil {
			m.cellHook(j.id, mi*len(procs)+pi)
		}
		if pt, ok := m.loadCell(key, envs[mi], n); ok {
			if err := m.finishCell(j, mi, pi, pt); err != nil {
				return err
			}
			continue
		}
		missing = append(missing, mi)
	}
	for lo := 0; lo < len(missing); lo += batch {
		hi := lo + batch
		if hi > len(missing) {
			hi = len(missing)
		}
		chunk := missing[lo:hi]
		cfgs := make([]sim.Config, len(chunk))
		for i, mi := range chunk {
			cfgs[i] = envs[mi].Config
		}
		preds, err := m.cfg.Service.PredictBatch(ctx, b, sz, n, pcxx.ActualSize, cfgs)
		if err != nil {
			return err
		}
		for i, mi := range chunk {
			if err := m.storeCell(j, key, envs[mi], mi, pi, n, preds[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// runDispatchedPoint executes one ladder point through the Dispatch
// runner: store lookups first (the resume path — a cell persisted
// before a coordinator crash is never re-dispatched), then ONE shard
// covering exactly the missing machines. The runner returns exact
// integers, so the persisted records are byte-identical to the ones the
// local paths write.
func (m *Manager) runDispatchedPoint(ctx context.Context, j *Job, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env, pi int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	procs := j.spec.Procs
	n := procs[pi]
	key := experiments.MeasurementKey(b.Name(), sz, n, core.MeasureOptions{SizeMode: pcxx.ActualSize})
	var missing []int // machine indices whose cell is not in the store
	for mi := range envs {
		if m.cellHook != nil {
			m.cellHook(j.id, mi*len(procs)+pi)
		}
		if pt, ok := m.loadCell(key, envs[mi], n); ok {
			if err := m.finishCell(j, mi, pi, pt); err != nil {
				return err
			}
			continue
		}
		missing = append(missing, mi)
	}
	if len(missing) == 0 {
		return nil
	}
	names := make([]string, len(missing))
	for i, mi := range missing {
		names[i] = envs[mi].Name
	}
	times, err := m.cfg.Dispatch.RunPoint(ctx, b.Name(), j.spec.Workload, sz, n, names)
	if err != nil {
		return err
	}
	if len(times) != len(missing) {
		return fmt.Errorf("jobs: dispatch returned %d cells for %d machines", len(times), len(missing))
	}
	for i, mi := range missing {
		if err := m.storeCellTime(j, key, envs[mi], mi, pi, n, times[i]); err != nil {
			return err
		}
	}
	return nil
}

// runFitted executes a fitted job: the model package's residual-driven
// refinement picks which ladder points to truly simulate, and each
// selected anchor runs through the SAME per-point executors the exact
// grid uses — store lookup first (the resume path), then dispatch,
// batch, or per-cell simulation — so anchors persist under the same
// content addresses as exact cells. After a SIGKILL the deterministic
// refinement re-requests exactly the anchors the interrupted run
// persisted; those load from the store and only the remainder computes.
// On success the job's curves collapse to the anchor series — all that
// needs persisting, since model.Replay re-derives the fitted ladder
// bit-for-bit at render time.
func (m *Manager) runFitted(ctx context.Context, j *Job, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env) error {
	procs := j.spec.Procs
	sim := func(ctx context.Context, n int) ([]vtime.Time, error) {
		pi := -1
		for i, p := range procs {
			if p == n {
				pi = i
				break
			}
		}
		if pi < 0 {
			return nil, fmt.Errorf("jobs: fitted anchor p=%d is not on the ladder", n)
		}
		if err := m.simLadderPoint(ctx, j, b, sz, envs, pi); err != nil {
			return nil, err
		}
		m.mu.Lock()
		times := make([]vtime.Time, len(envs))
		for mi := range envs {
			times[mi] = j.points[mi][pi].Time
		}
		m.mu.Unlock()
		return times, nil
	}
	res, err := model.Run(ctx, procs, len(envs), sim, model.Options{})
	if err != nil {
		return err
	}
	m.mu.Lock()
	j.points = make([][]metrics.Point, len(envs))
	for mi := range envs {
		curve := make([]metrics.Point, len(res.Anchors))
		for ai, a := range res.Anchors {
			curve[ai] = metrics.Point{Procs: a.Procs, Time: a.Times[mi]}
		}
		j.points[mi] = curve
	}
	m.mu.Unlock()
	return nil
}

// simLadderPoint executes every machine's cell at ladder index pi
// through whichever executor the manager is configured with — the same
// three-way split runCells makes for the whole grid, applied to one
// point.
func (m *Manager) simLadderPoint(ctx context.Context, j *Job, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env, pi int) error {
	if m.cfg.Dispatch != nil {
		return m.runDispatchedPoint(ctx, j, b, sz, envs, pi)
	}
	if batch := m.cfg.Service.BatchSize(); batch > 1 && len(envs) > 1 {
		return m.runLadderPoint(ctx, j, b, sz, envs, pi, batch)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	procs := j.spec.Procs
	n := procs[pi]
	key := experiments.MeasurementKey(b.Name(), sz, n, core.MeasureOptions{SizeMode: pcxx.ActualSize})
	for mi := range envs {
		if m.cellHook != nil {
			m.cellHook(j.id, mi*len(procs)+pi)
		}
		if pt, ok := m.loadCell(key, envs[mi], n); ok {
			if err := m.finishCell(j, mi, pi, pt); err != nil {
				return err
			}
			continue
		}
		pred, err := m.cfg.Service.Predict(ctx, b, sz, n, pcxx.ActualSize, envs[mi].Config)
		if err != nil {
			return err
		}
		if err := m.storeCell(j, key, envs[mi], mi, pi, n, pred); err != nil {
			return err
		}
	}
	return nil
}

// loadCell restores one cell's prediction from the artifact store, if
// present and decodable. An undecodable record under a verified
// checksum is format skew; the caller recomputes and overwrites.
func (m *Manager) loadCell(key core.CacheKey, env machine.Env, n int) (metrics.Point, bool) {
	raw, ok := m.cfg.Store.Get(core.CanonicalPrediction(key, env.Config))
	if !ok {
		return metrics.Point{}, false
	}
	var rec cellRecord
	if err := json.Unmarshal(raw, &rec); err != nil || rec.Procs != n {
		return metrics.Point{}, false
	}
	m.cellsLoaded.Add(1)
	return metrics.Point{Procs: rec.Procs, Time: vtime.Time(rec.TotalNs)}, true
}

// storeCell persists one computed cell under its content address and
// records it done.
func (m *Manager) storeCell(j *Job, key core.CacheKey, env machine.Env, mi, pi, n int, pred *core.Prediction) error {
	return m.storeCellTime(j, key, env, mi, pi, n, pred.Result.TotalTime)
}

// storeCellTime is storeCell for a result already reduced to its exact
// total — the form shard results arrive in from a dispatch runner.
func (m *Manager) storeCellTime(j *Job, key core.CacheKey, env machine.Env, mi, pi, n int, total vtime.Time) error {
	rec, err := json.Marshal(cellRecord{Procs: n, TotalNs: int64(total)})
	if err != nil {
		return err
	}
	m.cfg.Store.Put(core.CanonicalPrediction(key, env.Config), rec)
	m.cellsComputed.Add(1)
	return m.finishCell(j, mi, pi, metrics.Point{Procs: n, Time: total})
}

// finishCell records one completed cell and persists progress.
func (m *Manager) finishCell(j *Job, mi, pi int, pt metrics.Point) error {
	m.mu.Lock()
	if !j.havePt[mi][pi] {
		j.havePt[mi][pi] = true
		j.points[mi][pi] = pt
		j.done++
	}
	m.mu.Unlock()
	return m.persist(j)
}

// resolveSpec maps a persisted spec back onto live registry objects,
// substituting benchmark defaults for zero size fields exactly as the
// synchronous API does — so a job's cells land on the same content
// addresses as the equivalent synchronous sweep.
func resolveSpec(sp Spec) (benchmarks.Benchmark, benchmarks.Size, []machine.Env, error) {
	var b benchmarks.Benchmark
	if len(sp.Workload) > 0 {
		wl, err := compose.FromJSON(sp.Workload)
		if err != nil {
			return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: invalid workload: %w", err)
		}
		// A persisted spec carries both fields; the cells' content
		// addresses key by Benchmark, so the bytes must still derive it.
		if sp.Benchmark != "" && sp.Benchmark != wl.Name() {
			return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: workload derives %s but the spec names %s", wl.Name(), sp.Benchmark)
		}
		b = wl
	} else {
		if sp.Benchmark == "" {
			return nil, benchmarks.Size{}, nil, errors.New("jobs: benchmark is required")
		}
		var err error
		b, err = benchmarks.ByName(sp.Benchmark)
		if err != nil {
			return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: %w", err)
		}
	}
	if sp.Machine != "" && len(sp.Machines) > 0 {
		return nil, benchmarks.Size{}, nil, errors.New("jobs: machine and machines are mutually exclusive")
	}
	names := sp.machineNames()
	envs := make([]machine.Env, len(names))
	for i, name := range names {
		env, err := machine.ByName(name)
		if err != nil {
			return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: %w", err)
		}
		envs[i] = env
	}
	if sp.Size < 0 || sp.Iters < 0 {
		return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: negative size parameters (%d, %d)", sp.Size, sp.Iters)
	}
	sz := b.DefaultSize()
	if sp.Size > 0 {
		sz.N = sp.Size
	}
	if sp.Iters > 0 {
		sz.Iters = sp.Iters
	}
	sz.Verify = false
	for _, n := range sp.Procs {
		if n < 1 {
			return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: invalid ladder entry %d", n)
		}
	}
	switch sp.Mode {
	case "", ModeExact, ModeFitted:
	default:
		return nil, benchmarks.Size{}, nil, fmt.Errorf("jobs: unknown mode %q", sp.Mode)
	}
	return b, sz, envs, nil
}

func pointsToRecords(pts []metrics.Point) []cellRecord {
	out := make([]cellRecord, len(pts))
	for i, p := range pts {
		out[i] = cellRecord{Procs: p.Procs, TotalNs: int64(p.Time)}
	}
	return out
}

func recordsToPoints(recs []cellRecord) []metrics.Point {
	out := make([]metrics.Point, len(recs))
	for i, r := range recs {
		out[i] = metrics.Point{Procs: r.Procs, Time: vtime.Time(r.TotalNs)}
	}
	return out
}

// splitCurves slices a flat machine-major point list back into one
// curve per machine. readJobFile has already verified the length is a
// multiple of the ladder length.
func splitCurves(flat []metrics.Point, ladder int) [][]metrics.Point {
	out := make([][]metrics.Point, 0, len(flat)/ladder)
	for lo := 0; lo < len(flat); lo += ladder {
		out = append(out, flat[lo:lo+ladder])
	}
	return out
}
