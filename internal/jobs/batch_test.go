package jobs

import (
	"path/filepath"
	"reflect"
	"testing"

	"extrap/internal/experiments"
	"extrap/internal/store"
)

// multiSpec is a multi-machine sweep: every machine's cell at one
// ladder point shares a measurement, so the batched path engages.
func multiSpec() Spec {
	return Spec{
		Benchmark: "grid", Size: 16, Iters: 4,
		Machines: []string{"cm5", "shared-mem", "generic-dm"},
		Procs:    []int{1, 2, 4},
	}
}

// syncCurves computes each machine's curve through the synchronous
// per-cell path — the byte-identity reference for multi-machine jobs.
func syncCurves(t *testing.T, spec Spec) [][]string {
	t.Helper()
	curves := make([][]string, len(spec.Machines))
	for i, name := range spec.Machines {
		single := spec
		single.Machine, single.Machines = name, nil
		pts := syncPoints(t, single)
		curves[i] = make([]string, len(pts))
		for k, p := range pts {
			curves[i][k] = p.Time.String()
		}
	}
	return curves
}

func snapshotCurves(s Snapshot) [][]string {
	out := make([][]string, len(s.Curves))
	for i, curve := range s.Curves {
		out[i] = make([]string, len(curve))
		for k, p := range curve {
			out[i][k] = p.Time.String()
		}
	}
	return out
}

// TestMultiMachineJobBatchedMatchesPerMachine: a multi-machine job run
// through the batched kernel must produce, per machine, exactly the
// curve a synchronous single-machine sweep produces.
func TestMultiMachineJobBatchedMatchesPerMachine(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := experiments.NewStreamingService(2, 64, 0)
	svc.SetBackend(st)
	svc.SetBatchSize(8)
	m, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc, Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	spec := multiSpec()
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, m, id, StatusDone)
	cells := len(spec.Machines) * len(spec.Procs)
	if s.TotalCells != cells || s.DoneCells != cells {
		t.Errorf("cells = %d/%d, want %d/%d", s.DoneCells, s.TotalCells, cells, cells)
	}
	if len(s.Curves) != len(spec.Machines) {
		t.Fatalf("%d curves for %d machines", len(s.Curves), len(spec.Machines))
	}
	if got, want := snapshotCurves(s), syncCurves(t, spec); !reflect.DeepEqual(got, want) {
		t.Errorf("batched job curves differ from per-machine sweeps:\n got %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(s.Points, s.Curves[0]) {
		t.Errorf("Points %v does not alias first curve %v", s.Points, s.Curves[0])
	}
	if bs := svc.BatchStats(); bs.CellsBatched == 0 {
		t.Errorf("batch counters = %+v, want batched cells", bs)
	}
}

// TestMultiMachineCrashResumeBatched: the durability contract under the
// batched path — a multi-machine job frozen mid-grid by a crash-shaped
// Close resumes on the next Open, restores every already-persisted cell
// from the artifact store, and completes with per-machine curves
// identical to the synchronous per-cell path.
func TestMultiMachineCrashResumeBatched(t *testing.T) {
	dir := t.TempDir()
	spec := multiSpec()

	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	svc := experiments.NewStreamingService(1, 64, 0)
	svc.SetBackend(st)
	svc.SetBatchSize(4)
	m1, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc, Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ladder points run sequentially (one service worker); within a
	// point the hook fires machine by machine at flat index
	// machine*len(procs)+point. Freezing at machine 1 of the last
	// ladder point (flat 5) leaves the first two points' cells — six of
	// nine — computed and persisted.
	blocked := make(chan struct{})
	release := make(chan struct{})
	m1.cellHook = func(_ string, cell int) {
		if cell == 1*len(spec.Procs)+2 {
			close(blocked)
			<-release
		}
	}
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	m1.stop()
	close(release)
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	jf, err := readJobFile(filepath.Join(dir, "jobs", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if jf.Status != StatusRunning {
		t.Fatalf("interrupted job persisted as %q, want running", jf.Status)
	}
	if jf.Done < 6 {
		t.Fatalf("only %d cells persisted before the crash, want ≥ 6", jf.Done)
	}

	st2, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := experiments.NewStreamingService(1, 64, 0)
	svc2.SetBackend(st2)
	svc2.SetBatchSize(4)
	m2, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc2, Store: st2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	s := waitStatus(t, m2, id, StatusDone)
	if got, want := snapshotCurves(s), syncCurves(t, spec); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed batched job curves differ from per-machine sweeps:\n got %v\nwant %v", got, want)
	}
	stats := m2.Stats()
	if stats.CellsLoaded < 6 {
		t.Errorf("CellsLoaded = %d after resume, want ≥ 6 (persisted cells must not be re-simulated)", stats.CellsLoaded)
	}
	cells := int64(len(spec.Machines) * len(spec.Procs))
	if stats.CellsLoaded+stats.CellsComputed != cells {
		t.Errorf("loaded %d + computed %d ≠ %d cells", stats.CellsLoaded, stats.CellsComputed, cells)
	}
}

// TestSubmitRejectsMachineAndMachines: the two machine fields are
// mutually exclusive, and every listed machine must resolve.
func TestSubmitRejectsMachineAndMachines(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir())
	bad := []Spec{
		{Benchmark: "grid", Machine: "cm5", Machines: []string{"ideal"}, Procs: []int{1}},
		{Benchmark: "grid", Machines: []string{"cm5", "nosuch"}, Procs: []int{1}},
		{Benchmark: "grid", Machines: []string{""}, Procs: []int{1}},
	}
	for _, sp := range bad {
		if _, err := m.Submit(sp); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", sp)
		}
	}
}
