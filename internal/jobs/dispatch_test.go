package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/store"
	"extrap/internal/vtime"
)

// localRunner is a PointRunner backed by the local engine — the shape
// of a coordinator with the cluster stripped away, plus call
// accounting so tests can see exactly which cells were dispatched.
type localRunner struct {
	svc      *experiments.Service
	calls    atomic.Int64
	machines atomic.Int64 // cells requested across all calls
}

func (r *localRunner) RunPoint(ctx context.Context, bench string, workload []byte, sz benchmarks.Size, threads int, machines []string) ([]vtime.Time, error) {
	r.calls.Add(1)
	r.machines.Add(int64(len(machines)))
	b := benchmarks.Benchmark(nil)
	if len(workload) > 0 {
		w, err := compose.FromJSON(workload)
		if err != nil {
			return nil, err
		}
		b = w
	} else {
		b = mustBench(bench)
	}
	out := make([]vtime.Time, len(machines))
	for i, name := range machines {
		env, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		pred, err := r.svc.Predict(ctx, b, sz, threads, pcxx.ActualSize, env.Config)
		if err != nil {
			return nil, err
		}
		out[i] = pred.Result.TotalTime
	}
	return out, nil
}

func mustBench(name string) benchmarks.Benchmark {
	b, err := benchmarks.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// newDispatchManager builds a manager whose grid runs through a
// PointRunner, as a coordinator's does.
func newDispatchManager(t *testing.T, dir string, run PointRunner) (*Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := experiments.NewStreamingService(2, 64, 0)
	svc.SetBackend(st)
	m, err := Open(Config{
		Dir:      filepath.Join(dir, "jobs"),
		Service:  svc,
		Store:    st,
		Workers:  1,
		Dispatch: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, st
}

// rewriteRunning rewrites a persisted job file to the state a SIGKILL
// mid-run leaves: status running, no recorded points. Cell records
// survive in the artifact store, not the job file.
func rewriteRunning(t *testing.T, jobsDir, id string) {
	t.Helper()
	path := filepath.Join(jobsDir, id+".json")
	jf, err := readJobFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jf.Status = StatusRunning
	jf.Done = 0
	jf.Points = nil
	body, err := json.Marshal(jf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchedJobMatchesLocal: a job run through a PointRunner lands
// on the same persisted points as the same job run through the local
// engine — the dispatch path changes where cells execute, not what
// they produce.
func TestDispatchedJobMatchesLocal(t *testing.T) {
	spec := Spec{Benchmark: "grid", Size: 16, Iters: 4, Machines: []string{"cm5", "generic-dm"}, Procs: []int{1, 2, 4}}

	mLocal, _ := newTestManager(t, t.TempDir())
	idLocal, err := mLocal.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, mLocal, idLocal, StatusDone)

	svcForRunner := experiments.NewStreamingService(2, 64, 0)
	run := &localRunner{svc: svcForRunner}
	mDisp, _ := newDispatchManager(t, t.TempDir(), run)
	idDisp, err := mDisp.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, mDisp, idDisp, StatusDone)

	if !reflect.DeepEqual(got.Curves, want.Curves) {
		t.Errorf("dispatched job curves differ from local:\n%+v\nvs\n%+v", got.Curves, want.Curves)
	}
	if run.calls.Load() != int64(len(spec.Procs)) {
		t.Errorf("RunPoint called %d times, want one per ladder point (%d)", run.calls.Load(), len(spec.Procs))
	}
}

// TestDispatchedJobResumesFromStore: after a crash-shaped restart, a
// dispatched job restores persisted cells from the store and dispatches
// ONLY the missing ones — shard-aware persistence is what makes a
// coordinator SIGKILL cheap.
func TestDispatchedJobResumesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Benchmark: "grid", Size: 16, Iters: 4, Machines: []string{"cm5", "generic-dm"}, Procs: []int{1, 2, 4}}

	svc1 := experiments.NewStreamingService(2, 64, 0)
	run1 := &localRunner{svc: svc1}
	m1, _ := newDispatchManager(t, dir, run1)
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, m1, id, StatusDone)
	m1.Close()

	// Crash-shape the job file: running, no recorded points. Cell
	// records survive in the store.
	rewriteRunning(t, filepath.Join(dir, "jobs"), id)

	svc2 := experiments.NewStreamingService(2, 64, 0)
	run2 := &localRunner{svc: svc2}
	m2, _ := newDispatchManager(t, dir, run2)
	got := waitStatus(t, m2, id, StatusDone)

	if !reflect.DeepEqual(got.Curves, want.Curves) {
		t.Errorf("resumed curves differ:\n%+v\nvs\n%+v", got.Curves, want.Curves)
	}
	if run2.calls.Load() != 0 {
		t.Errorf("resume dispatched %d points despite every cell being persisted", run2.calls.Load())
	}
	if st := m2.Stats(); st.CellsLoaded != int64(len(spec.Machines)*len(spec.Procs)) {
		t.Errorf("cells loaded = %d, want %d", st.CellsLoaded, len(spec.Machines)*len(spec.Procs))
	}
}

// TestDispatchedWorkloadJob: a composed-workload job dispatches its
// spec bytes with every point, the runner synthesizes the program from
// them, and the curves match the same job run through the local engine.
func TestDispatchedWorkloadJob(t *testing.T) {
	wlSpec := json.RawMessage(`{"size":8,"iters":2,"root":{"kind":"pipeline","stages":[
		{"kind":"task_farm","tasks":8,"grain":2},
		{"kind":"reduction","op":"tree"}]}}`)
	spec := Spec{Workload: wlSpec, Size: 8, Iters: 2, Machines: []string{"cm5", "generic-dm"}, Procs: []int{1, 2, 4}}

	mLocal, _ := newTestManager(t, t.TempDir())
	idLocal, err := mLocal.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitStatus(t, mLocal, idLocal, StatusDone)
	wl, err := compose.FromJSON(wlSpec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Spec.Benchmark != wl.Name() {
		t.Errorf("submitted workload job names %q, want derived %q", want.Spec.Benchmark, wl.Name())
	}

	run := &localRunner{svc: experiments.NewStreamingService(2, 64, 0)}
	mDisp, _ := newDispatchManager(t, t.TempDir(), run)
	idDisp, err := mDisp.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, mDisp, idDisp, StatusDone)

	if !reflect.DeepEqual(got.Curves, want.Curves) {
		t.Errorf("dispatched workload job curves differ from local:\n%+v\nvs\n%+v", got.Curves, want.Curves)
	}
	if run.calls.Load() != int64(len(spec.Procs)) {
		t.Errorf("RunPoint called %d times, want %d", run.calls.Load(), len(spec.Procs))
	}
}
