package jobs

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/store"
)

// testSpec is a sweep small enough to run in milliseconds but with
// enough cells to interrupt mid-grid.
func testSpec() Spec {
	return Spec{Benchmark: "grid", Size: 16, Iters: 4, Machine: "cm5", Procs: []int{1, 2, 4, 8}}
}

// newTestManager builds a manager (and its store) rooted at dir.
func newTestManager(t *testing.T, dir string) (*Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := experiments.NewStreamingService(2, 64, 0)
	svc.SetBackend(st)
	m, err := Open(Config{
		Dir:     filepath.Join(dir, "jobs"),
		Service: svc,
		Store:   st,
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, st
}

// waitStatus polls until the job reaches a terminal state or a status
// in want, failing on timeout.
func waitStatus(t *testing.T, m *Manager, id string, want Status) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if s.Status == want {
			return s
		}
		if s.Status.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, s.Status, s.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s, want %s", id, s.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// syncPoints computes the same sweep through the synchronous in-memory
// path — the byte-identity reference.
func syncPoints(t *testing.T, spec Spec) []metrics.Point {
	t.Helper()
	b, err := benchmarks.ByName(spec.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	env, err := machine.ByName(spec.Machine)
	if err != nil {
		t.Fatal(err)
	}
	sz := b.DefaultSize()
	sz.N, sz.Iters, sz.Verify = spec.Size, spec.Iters, false
	svc := experiments.NewService(2, 64)
	points, err := svc.Sweep(context.Background(), experiments.SweepJob{
		Name:    b.Name(),
		Size:    sz,
		Factory: b.Factory(sz),
		Mode:    pcxx.ActualSize,
		Cfg:     env.Config,
		Procs:   spec.Procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir())
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, m, id, StatusDone)
	if s.DoneCells != len(testSpec().Procs) {
		t.Errorf("DoneCells = %d, want %d", s.DoneCells, len(testSpec().Procs))
	}
	if want := syncPoints(t, testSpec()); !reflect.DeepEqual(s.Points, want) {
		t.Errorf("async job points differ from the synchronous sweep:\n got %+v\nwant %+v", s.Points, want)
	}
	st := m.Stats()
	if st.Done != 1 || st.CellsComputed != int64(len(testSpec().Procs)) {
		t.Errorf("stats = %+v, want 1 done job, %d computed cells", st, len(testSpec().Procs))
	}
}

func TestSubmitValidates(t *testing.T) {
	m, _ := newTestManager(t, t.TempDir())
	bad := []Spec{
		{},
		{Benchmark: "nosuch", Machine: "cm5"},
		{Benchmark: "grid", Machine: "nosuch"},
		{Benchmark: "grid", Machine: "cm5", Procs: []int{0}},
		{Benchmark: "grid", Machine: "cm5", Size: -1},
	}
	for _, sp := range bad {
		if _, err := m.Submit(sp); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", sp)
		}
	}
	// Defaults are resolved into the persisted spec.
	id, err := m.Submit(Spec{Benchmark: "grid", Machine: "cm5", Size: 16, Iters: 2, Procs: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.Get(id)
	if s.Spec.Size != 16 || s.Spec.Iters != 2 || len(s.Spec.Procs) != 2 {
		t.Errorf("persisted spec not resolved: %+v", s.Spec)
	}
}

// TestCrashResume is the durability contract end to end, in-process: a
// job frozen mid-grid by a crash-shaped Close resumes on the next Open
// against the same directories, restores already-computed cells from
// the artifact store instead of re-simulating them, and completes with
// points identical to the synchronous path.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	svc := experiments.NewStreamingService(1, 64, 0)
	svc.SetBackend(st)

	// Freeze the job after its second cell completes: cells run
	// sequentially (one service worker), so when the hook blocks on
	// cell index 2, cells 0 and 1 have finished and persisted.
	blocked := make(chan struct{})
	release := make(chan struct{})
	m1, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc, Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1.cellHook = func(_ string, cell int) {
		if cell == 2 {
			close(blocked)
			<-release
		}
	}
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	// Crash: cancel the base context first (so the frozen cell fails
	// instead of completing), then release the hook and drain.
	m1.stop()
	close(release)
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The interrupted job must be persisted as running, not terminal.
	jf, err := readJobFile(filepath.Join(dir, "jobs", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if jf.Status != StatusRunning {
		t.Fatalf("interrupted job persisted as %q, want running", jf.Status)
	}
	if jf.Done < 2 {
		t.Fatalf("only %d cells persisted before the crash, want ≥ 2", jf.Done)
	}

	// Restart: fresh store handle, fresh service (cold memory cache),
	// fresh manager over the same directories.
	st2, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := experiments.NewStreamingService(1, 64, 0)
	svc2.SetBackend(st2)
	m2, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc2, Store: st2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	s := waitStatus(t, m2, id, StatusDone)
	if want := syncPoints(t, spec); !reflect.DeepEqual(s.Points, want) {
		t.Errorf("resumed job points differ from the synchronous sweep:\n got %+v\nwant %+v", s.Points, want)
	}
	st2Stats := m2.Stats()
	if st2Stats.CellsLoaded < 2 {
		t.Errorf("CellsLoaded = %d after resume, want ≥ 2 (completed cells must not be re-simulated)", st2Stats.CellsLoaded)
	}
	if st2Stats.CellsLoaded+st2Stats.CellsComputed != int64(len(spec.Procs)) {
		t.Errorf("loaded %d + computed %d ≠ %d cells", st2Stats.CellsLoaded, st2Stats.CellsComputed, len(spec.Procs))
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	dir := t.TempDir()
	m, _ := newTestManager(t, dir)

	// Freeze the first job so a second stays queued behind it.
	blocked := make(chan struct{})
	release := make(chan struct{})
	var hookOnce bool
	m.cellHook = func(_ string, cell int) {
		if cell == 0 && !hookOnce {
			hookOnce = true
			close(blocked)
			<-release
		}
	}
	running, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	queued, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	if s, ok := m.Cancel(queued); !ok || s.Status != StatusCancelled {
		t.Fatalf("cancelling a queued job: ok=%v status=%v", ok, s.Status)
	}
	if s, ok := m.Cancel(running); !ok || s.Status != StatusRunning {
		t.Fatalf("cancelling a running job: ok=%v status=%v", ok, s.Status)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, _ := m.Get(running)
		if s.Status == StatusCancelled {
			break
		}
		if s.Status.Terminal() {
			t.Fatalf("cancelled job ended as %s", s.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job stuck at %s", s.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Cancellation is persisted — a restart must not resurrect it.
	jf, err := readJobFile(filepath.Join(dir, "jobs", running+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if jf.Status != StatusCancelled {
		t.Errorf("cancelled job persisted as %q", jf.Status)
	}
	if _, ok := m.Cancel("j-nope"); ok {
		t.Error("cancelling an unknown job reported ok")
	}
}

// TestOpenIgnoresHostileJobFiles: torn, oversized, or mismatched job
// files cost that file, never the manager.
func TestOpenIgnoresHostileJobFiles(t *testing.T) {
	dir := t.TempDir()
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	hostiles := map[string]string{
		"j-garbage.json":  "{not json",
		"j-mismatch.json": `{"id":"j-other","spec":{"benchmark":"grid","machine":"cm5","procs":[1]},"status":"queued"}`,
		"j-badstatus.json": `{"id":"j-badstatus","spec":{"benchmark":"grid","machine":"cm5","procs":[1]},` +
			`"status":"exploded"}`,
		"j-nocells.json": `{"id":"j-nocells","spec":{"benchmark":"grid","machine":"cm5","procs":[]},"status":"queued"}`,
	}
	for name, body := range hostiles {
		if err := os.WriteFile(filepath.Join(jobsDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := newTestManager(t, dir)
	if got := m.List(); len(got) != 0 {
		t.Errorf("hostile job files loaded: %+v", got)
	}
}

// TestDoneJobSurvivesRestart: a completed job's results reload from its
// job file and are not re-enqueued.
func TestDoneJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	svc := experiments.NewStreamingService(2, 64, 0)
	svc.SetBackend(st)
	m1, err := Open(Config{Dir: filepath.Join(dir, "jobs"), Service: svc, Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, m1, id, StatusDone)
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m2, _ := newTestManager(t, dir)
	s, ok := m2.Get(id)
	if !ok {
		t.Fatal("done job lost across restart")
	}
	if s.Status != StatusDone || !reflect.DeepEqual(s.Points, done.Points) {
		t.Errorf("restarted done job = %+v, want %+v", s, done)
	}
	if st := m2.Stats(); st.Queued != 0 && st.Running != 0 {
		t.Errorf("done job re-entered the queue: %+v", st)
	}
}
