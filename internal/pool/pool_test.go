package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunAllIndexesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			counts := make([]int32, n)
			err := Run(workers, n, func(i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

// TestRunLowestError: whatever the worker count, the reported error is the
// one a sequential loop would hit first.
func TestRunLowestError(t *testing.T) {
	want := errors.New("boom-17")
	for _, workers := range []int{1, 2, 8} {
		err := Run(workers, 50, func(i int) error {
			switch i {
			case 17:
				return want
			case 23, 41:
				return errors.New("later failure")
			}
			return nil
		})
		if err != want {
			t.Errorf("workers=%d: got %v, want %v", workers, err, want)
		}
	}
}

// TestRunSequentialEarlyStop: one worker reproduces a plain loop, stopping
// at the first error.
func TestRunSequentialEarlyStop(t *testing.T) {
	ran := 0
	err := Run(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("ran %d jobs (err %v), want exactly 4", ran, err)
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 3); got != 3 {
		t.Errorf("Clamp(5,3) = %d, want 3", got)
	}
	if got := Clamp(2, 100); got != 2 {
		t.Errorf("Clamp(2,100) = %d, want 2", got)
	}
	if got := Clamp(0, 100); got < 1 {
		t.Errorf("Clamp(0,100) = %d, want ≥ 1", got)
	}
}
