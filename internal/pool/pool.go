// Package pool is the bounded worker-pool primitive behind the
// concurrent experiment engine: it fans an indexed job set out across a
// fixed number of goroutines while keeping every observable outcome
// deterministic. Callers write results into slots indexed by job number,
// so result ordering never depends on goroutine interleaving, and on
// failure Run reports the error of the lowest-indexed failing job — the
// same error a sequential loop would have returned first.
package pool

import (
	"runtime"
	"sync"
)

// Clamp normalizes a requested worker count: values ≤ 0 select
// GOMAXPROCS (the most parallelism the runtime will schedule), and the
// count is capped at n jobs since extra workers would idle.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(i) for every i in [0, n) on at most workers
// goroutines. workers ≤ 0 selects GOMAXPROCS. With workers == 1 the jobs
// run strictly in index order on the calling goroutine, reproducing a
// plain sequential loop (including its early stop at the first error).
//
// With more workers, jobs are handed out in index order; if any fail,
// the error of the lowest-indexed failing job is returned and jobs with
// higher indexes may be skipped. fn must write its result into a
// caller-provided slot for index i rather than shared state, unless it
// synchronizes access itself.
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
		errIdx   = n
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				// Jobs past the lowest failing index cannot change the
				// outcome; stop handing them out.
				if next >= n || next > errIdx {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
