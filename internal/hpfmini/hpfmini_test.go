package hpfmini

import (
	"testing"

	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// run executes an hpfmini program and returns its measurement trace.
func run(t *testing.T, threads int, setup func(m *Machine) func(*pcxx.Thread)) *trace.Trace {
	t.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(threads))
	m := NewMachine(rt)
	body := setup(m)
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestForallSemantics(t *testing.T) {
	// dst[i] = src[i-1] + src[i+1] must read pre-statement values even
	// when dst aliases src — the FORALL guarantee.
	const n = 16
	for _, d := range []Dist{Block, Cyclic} {
		for _, threads := range []int{1, 2, 4} {
			var got [n]float64
			run(t, threads, func(m *Machine) func(*pcxx.Thread) {
				a := m.Array("a", n, d)
				return func(th *pcxx.Thread) {
					Fill(th, a, func(i int) float64 { return float64(i) })
					Forall(th, a, 1, func(r Reader, i int) float64 {
						left, right := 0.0, 0.0
						if i > 0 {
							left = r.At(a, i-1)
						}
						if i < n-1 {
							right = r.At(a, i+1)
						}
						return left + right
					})
					// Collect results (thread 0 view via local reads only
					// for owned; use Get for all).
					for i := 0; i < n; i++ {
						got[i] = Get(th, a, i)
					}
				}
			})
			for i := 0; i < n; i++ {
				want := 0.0
				if i > 0 {
					want += float64(i - 1)
				}
				if i < n-1 {
					want += float64(i + 1)
				}
				if got[i] != want {
					t.Fatalf("%v/%d threads: a[%d] = %v, want %v", d, threads, i, got[i], want)
				}
			}
		}
	}
}

func TestSumAndMaxVal(t *testing.T) {
	const n = 37
	for _, threads := range []int{1, 3, 8} {
		run(t, threads, func(m *Machine) func(*pcxx.Thread) {
			a := m.Array("a", n, Block)
			return func(th *pcxx.Thread) {
				Fill(th, a, func(i int) float64 { return float64(i + 1) })
				sum := Sum(th, a)
				if sum != float64(n*(n+1)/2) {
					t.Errorf("threads=%d: Sum = %v, want %v", threads, sum, n*(n+1)/2)
				}
				max := MaxVal(th, a)
				if max != float64(n) {
					t.Errorf("threads=%d: MaxVal = %v, want %d", threads, max, n)
				}
			}
		})
	}
}

func TestCShift(t *testing.T) {
	const n = 12
	run(t, 4, func(m *Machine) func(*pcxx.Thread) {
		src := m.Array("src", n, Block)
		dst := m.Array("dst", n, Block)
		return func(th *pcxx.Thread) {
			Fill(th, src, func(i int) float64 { return float64(i) })
			CShift(th, dst, src, 3)
			for i := 0; i < n; i++ {
				want := float64((i + 3) % n)
				if got := Get(th, dst, i); got != want {
					t.Errorf("dst[%d] = %v, want %v", i, got, want)
				}
			}
			CShift(th, dst, src, -5)
			for i := 0; i < n; i++ {
				want := float64(((i-5)%n + n) % n)
				if got := Get(th, dst, i); got != want {
					t.Errorf("shift -5: dst[%d] = %v, want %v", i, got, want)
				}
			}
		}
	})
}

func TestNearestNeighborCommunicationShape(t *testing.T) {
	// Under BLOCK distribution, a nearest-neighbor FORALL touches remote
	// elements only at block boundaries: 2·(threads−1) remote reads.
	const n, threads = 64, 4
	tr := run(t, threads, func(m *Machine) func(*pcxx.Thread) {
		a := m.Array("a", n, Block)
		b := m.Array("b", n, Block)
		return func(th *pcxx.Thread) {
			Fill(th, a, func(i int) float64 { return float64(i) })
			Forall(th, b, 2, func(r Reader, i int) float64 {
				if i == 0 || i == n-1 {
					return 0
				}
				return 0.5 * (r.At(a, i-1) + r.At(a, i+1))
			})
		}
	})
	s := trace.ComputeStats(tr)
	if want := int64(2 * (threads - 1)); s.RemoteReads != want {
		t.Errorf("BLOCK nearest-neighbor remote reads = %d, want %d", s.RemoteReads, want)
	}

	// Under CYCLIC the same stencil makes nearly every read remote.
	trC := run(t, threads, func(m *Machine) func(*pcxx.Thread) {
		a := m.Array("a", n, Cyclic)
		b := m.Array("b", n, Cyclic)
		return func(th *pcxx.Thread) {
			Fill(th, a, func(i int) float64 { return float64(i) })
			Forall(th, b, 2, func(r Reader, i int) float64 {
				if i == 0 || i == n-1 {
					return 0
				}
				return 0.5 * (r.At(a, i-1) + r.At(a, i+1))
			})
		}
	})
	sc := trace.ComputeStats(trC)
	if sc.RemoteReads <= s.RemoteReads*10 {
		t.Errorf("CYCLIC stencil remote reads = %d, want far more than BLOCK's %d",
			sc.RemoteReads, s.RemoteReads)
	}
}

func TestHPFProgramExtrapolates(t *testing.T) {
	// The front end's whole point: its traces drive the same pipeline.
	// 1-D heat equation, BLOCK vs CYCLIC, extrapolated to the generic DM
	// machine — BLOCK must be predicted faster (boundary-only traffic).
	const n, threads, steps = 128, 8, 10
	mk := func(d Dist) *trace.Trace {
		return run(t, threads, func(m *Machine) func(*pcxx.Thread) {
			u := m.Array("u", n, d)
			return func(th *pcxx.Thread) {
				Fill(th, u, func(i int) float64 { return float64(i % 7) })
				for s := 0; s < steps; s++ {
					Forall(th, u, 3, func(r Reader, i int) float64 {
						if i == 0 || i == n-1 {
							return 0
						}
						return 0.25*r.At(u, i-1) + 0.5*r.At(u, i) + 0.25*r.At(u, i+1)
					})
				}
				_ = Sum(th, u)
			}
		})
	}
	cfg := machine.GenericDM().Config
	block, err := core.Extrapolate(mk(Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := core.Extrapolate(mk(Cyclic), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if block.Result.TotalTime >= cyclic.Result.TotalTime {
		t.Errorf("BLOCK predicted %v, CYCLIC %v — BLOCK should win a stencil",
			block.Result.TotalTime, cyclic.Result.TotalTime)
	}
	// And the translation invariants hold for this front end too.
	pt, err := translate.Translate(mk(Block))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Barriers == 0 || pt.Duration() <= 0 {
		t.Error("translated HPF trace is degenerate")
	}
}

func TestReaderBoundsPanic(t *testing.T) {
	run(t, 2, func(m *Machine) func(*pcxx.Thread) {
		a := m.Array("a", 8, Block)
		return func(th *pcxx.Thread) {
			Fill(th, a, func(int) float64 { return 1 })
			if th.ID() == 0 {
				defer func() {
					if recover() == nil {
						t.Error("out-of-range At did not panic")
					}
				}()
				Forall(th, a, 0, func(r Reader, i int) float64 {
					return r.At(a, 99)
				})
			} else {
				// Keep barrier structure consistent for thread 1: the
				// panicking thread unwinds, so thread 1 would deadlock at
				// the Forall barriers; end immediately instead.
			}
		}
	})
}

func TestDistString(t *testing.T) {
	if Block.String() != "BLOCK" || Cyclic.String() != "CYCLIC" {
		t.Error("dist names wrong")
	}
}

func TestArray2DForall(t *testing.T) {
	const rows, cols = 8, 8
	for _, combo := range [][2]Dist{{Block, Block}, {Block, Star}, {Star, Cyclic}} {
		var got [rows][cols]float64
		run(t, 4, func(m *Machine) func(*pcxx.Thread) {
			a := m.Array2D("a", rows, cols, combo[0], combo[1])
			return func(th *pcxx.Thread) {
				Fill2D(th, a, func(i, j int) float64 { return float64(i*cols + j) })
				// a(i,j) = a(j,i): a transpose, reading pre-statement values.
				Forall2D(th, a, 1, func(r Reader, i, j int) float64 {
					return r.At2(a, j, i)
				})
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						got[i][j] = Get2(th, a, i, j)
					}
				}
			}
		})
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want := float64(j*cols + i)
				if got[i][j] != want {
					t.Fatalf("(%v,%v): a(%d,%d) = %v, want %v", combo[0], combo[1], i, j, got[i][j], want)
				}
			}
		}
	}
}

func TestSum2D(t *testing.T) {
	const rows, cols = 6, 9
	run(t, 4, func(m *Machine) func(*pcxx.Thread) {
		a := m.Array2D("a", rows, cols, Block, Block)
		return func(th *pcxx.Thread) {
			Fill2D(th, a, func(i, j int) float64 { return 1 })
			if got := Sum2D(th, a); got != rows*cols {
				t.Errorf("Sum2D = %v, want %d", got, rows*cols)
			}
		}
	})
}

func TestArray2DDistributionShapesCommunication(t *testing.T) {
	// A row-wise stencil: (BLOCK,*) keeps rows whole per thread so only
	// block-boundary rows are remote; (*,BLOCK) splits every row so the
	// column-neighbor reads stay local but row-neighbor reads all cross.
	const rows, cols = 16, 16
	countReads := func(rd, cd Dist) int64 {
		tr := run(t, 4, func(m *Machine) func(*pcxx.Thread) {
			a := m.Array2D("a", rows, cols, rd, cd)
			b := m.Array2D("b", rows, cols, rd, cd)
			return func(th *pcxx.Thread) {
				Fill2D(th, a, func(i, j int) float64 { return float64(i + j) })
				Forall2D(th, b, 2, func(r Reader, i, j int) float64 {
					if i == 0 || i == rows-1 {
						return 0
					}
					return 0.5 * (r.At2(a, i-1, j) + r.At2(a, i+1, j))
				})
			}
		})
		return trace.ComputeStats(tr).RemoteReads
	}
	rowBlock := countReads(Block, Star) // rows in blocks: boundary rows remote
	colBlock := countReads(Star, Block) // columns in blocks: row neighbors local
	if colBlock != 0 {
		t.Errorf("(*,BLOCK) vertical stencil should be fully local, got %d remote reads", colBlock)
	}
	if rowBlock == 0 {
		t.Errorf("(BLOCK,*) vertical stencil should cross block boundaries")
	}
}
