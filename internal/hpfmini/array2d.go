package hpfmini

import (
	"fmt"

	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
)

// Star is the HPF "*" directive: the dimension is not distributed.
// (Declared here with the 2-D support; 1-D arrays take Block or Cyclic.)
const Star Dist = 0xff

// attrOf maps an HPF directive to the runtime's distribution attribute.
func attrOf(d Dist) dist.Attr {
	switch d {
	case Cyclic:
		return dist.Cyclic
	case Star:
		return dist.Whole
	default:
		return dist.Block
	}
}

// Array2D is a distributed two-dimensional array of float64, declared
// with per-dimension directives as in
//
//	!HPF$ DISTRIBUTE a(BLOCK, *)
type Array2D struct {
	name       string
	rows, cols int
	c          *pcxx.Collection2D[float64]
	sh         *pcxx.Collection2D[float64]
	m          *Machine
}

// Array2D declares a rows×cols distributed array.
func (m *Machine) Array2D(name string, rows, cols int, rd, cd Dist) *Array2D {
	d2 := dist.NewDist2D(rows, cols, m.rt.Threads(), attrOf(rd), attrOf(cd))
	return &Array2D{
		name: name, rows: rows, cols: cols,
		c:  pcxx.NewCollection2D[float64](m.rt, name, d2, 8),
		sh: pcxx.NewCollection2D[float64](m.rt, name+".shadow", d2, 8),
		m:  m,
	}
}

// Rows returns the row count.
func (a *Array2D) Rows() int { return a.rows }

// Cols returns the column count.
func (a *Array2D) Cols() int { return a.cols }

// At2 reads arr(i, j) inside a FORALL body or reduction.
func (r Reader) At2(arr *Array2D, i, j int) float64 {
	if i < 0 || i >= arr.rows || j < 0 || j >= arr.cols {
		panic(fmt.Sprintf("hpfmini: %s(%d,%d) out of range %d×%d", arr.name, i, j, arr.rows, arr.cols))
	}
	return arr.c.Read(r.t, i, j)
}

// Forall2D assigns dst(i,j) = f(reader, i, j) with FORALL semantics (all
// right-hand sides see pre-statement values; two-phase with a barrier).
func Forall2D(t *pcxx.Thread, dst *Array2D, flopsPerElem int, f func(r Reader, i, j int) float64) {
	r := Reader{t: t}
	dst.c.ForOwned(t, func(i, j int) {
		*dst.sh.Local(t, i, j) = f(r, i, j)
		t.Flops(flopsPerElem)
	})
	t.Barrier()
	dst.c.ForOwned(t, func(i, j int) {
		*dst.c.Local(t, i, j) = *dst.sh.Local(t, i, j)
	})
	t.Mem(dst.c.Dist().LocalCount(t.ID()) * 8)
	t.Barrier()
}

// Fill2D initializes dst(i,j) = f(i,j) locally and synchronizes.
func Fill2D(t *pcxx.Thread, dst *Array2D, f func(i, j int) float64) {
	dst.c.ForOwned(t, func(i, j int) {
		*dst.c.Local(t, i, j) = f(i, j)
	})
	t.Mem(dst.c.Dist().LocalCount(t.ID()) * 8)
	t.Barrier()
}

// Sum2D reduces the array to its total on every thread.
func Sum2D(t *pcxx.Thread, a *Array2D) float64 {
	local := 0.0
	a.c.ForOwned(t, func(i, j int) {
		local += *a.c.Local(t, i, j)
	})
	t.Flops(a.c.Dist().LocalCount(t.ID()))
	*a.m.partials.Local(t, t.ID()) = local
	return pcxx.AllReduceSum(t, a.m.partials)
}

// Get2 reads a single element on every thread.
func Get2(t *pcxx.Thread, a *Array2D, i, j int) float64 {
	t.Barrier()
	v := a.c.Read(t, i, j)
	t.Barrier()
	return v
}
