// Package hpfmini is a second, HPF-flavored language front end for the
// extrapolation pipeline — the direction the paper's conclusion proposes
// ("Another direction is to apply this work to other language systems,
// like HPF"). It offers distributed arrays with HPF-style distribution
// directives and FORALL-semantics elementwise assignment, compiled onto
// the same instrumented pcxx runtime, so any hpfmini program produces the
// event vocabulary (barriers, remote element accesses) that translation
// and simulation consume.
//
// The execution model is exactly the deterministic one Section 5 requires:
// FORALL evaluates every right-hand side against the pre-statement array
// values (two-phase with an intervening barrier), owner-computes writes,
// and reductions are tree-structured reads — no remote writes, no
// timing-dependent behavior.
package hpfmini

import (
	"fmt"
	"math"

	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
)

// Dist is an HPF distribution directive for a one-dimensional array.
type Dist uint8

const (
	// Block corresponds to !HPF$ DISTRIBUTE (BLOCK).
	Block Dist = iota
	// Cyclic corresponds to !HPF$ DISTRIBUTE (CYCLIC).
	Cyclic
)

func (d Dist) String() string {
	if d == Cyclic {
		return "CYCLIC"
	}
	return "BLOCK"
}

// Machine wraps a pcxx runtime for array creation (the "compiler" half:
// arrays must be declared before the SPMD body runs).
type Machine struct {
	rt       *pcxx.Runtime
	partials *pcxx.Collection[float64]
	scratch  map[*Array]*pcxx.Collection[float64]
}

// NewMachine prepares a front end over the runtime.
func NewMachine(rt *pcxx.Runtime) *Machine {
	return &Machine{
		rt:       rt,
		partials: pcxx.PerThread[float64](rt, "hpf-partials", 8),
		scratch:  make(map[*Array]*pcxx.Collection[float64]),
	}
}

// Array is a distributed one-dimensional array of float64.
type Array struct {
	name string
	n    int
	c    *pcxx.Collection[float64]
	m    *Machine
}

// Array declares a distributed array (8-byte scalar elements, so the
// compiler estimate and actual transfer sizes coincide).
func (m *Machine) Array(name string, n int, d Dist) *Array {
	var dd dist.Distribution
	switch d {
	case Cyclic:
		dd = dist.NewCyclic(n, m.rt.Threads())
	default:
		dd = dist.NewBlock(n, m.rt.Threads())
	}
	a := &Array{name: name, n: n, c: pcxx.NewCollection[float64](m.rt, name, dd, 8), m: m}
	// FORALL needs a shadow buffer with identical distribution.
	m.scratch[a] = pcxx.NewCollection[float64](m.rt, name+".shadow", dd, 8)
	return a
}

// Len returns the array length.
func (a *Array) Len() int { return a.n }

// Name returns the declared name.
func (a *Array) Name() string { return a.name }

// Reader provides right-hand-side element access inside FORALL bodies and
// reductions; reads of non-owned elements become remote access events.
type Reader struct {
	t *pcxx.Thread
}

// At reads arr[i] (pre-statement value inside a Forall).
func (r Reader) At(arr *Array, i int) float64 {
	if i < 0 || i >= arr.n {
		panic(fmt.Sprintf("hpfmini: %s[%d] out of range [0,%d)", arr.name, i, arr.n))
	}
	return arr.c.Read(r.t, i)
}

// Forall assigns dst[i] = f(reader, i) for every i, with HPF FORALL
// semantics: all right-hand sides see the arrays' pre-statement values.
// Implementation: owner-computes evaluation into a shadow buffer, a global
// barrier, then a local copy-back and a closing barrier. Each thread
// charges flopsPerElem for every element it owns.
func Forall(t *pcxx.Thread, dst *Array, flopsPerElem int, f func(r Reader, i int) float64) {
	sh := dst.m.scratch[dst]
	r := Reader{t: t}
	dst.c.ForOwned(t, func(i int) {
		*sh.Local(t, i) = f(r, i)
		t.Flops(flopsPerElem)
	})
	t.Barrier()
	dst.c.ForOwned(t, func(i int) {
		*dst.c.Local(t, i) = *sh.Local(t, i)
	})
	t.Mem(dst.c.LocalCount(t) * 8)
	t.Barrier()
}

// Fill initializes dst[i] = f(i) locally (no communication) and
// synchronizes.
func Fill(t *pcxx.Thread, dst *Array, f func(i int) float64) {
	dst.c.ForOwned(t, func(i int) {
		*dst.c.Local(t, i) = f(i)
	})
	t.Mem(dst.c.LocalCount(t) * 8)
	t.Barrier()
}

// Sum reduces the array to its total on every thread (HPF's SUM
// intrinsic): local partial sums, then the runtime's tree reduction.
func Sum(t *pcxx.Thread, a *Array) float64 {
	local := 0.0
	a.c.ForOwned(t, func(i int) {
		local += *a.c.Local(t, i)
	})
	t.Flops(a.c.LocalCount(t))
	*a.m.partials.Local(t, t.ID()) = local
	return pcxx.AllReduceSum(t, a.m.partials)
}

// MaxVal reduces to the array maximum on every thread (HPF's MAXVAL),
// using the runtime's generic tree reduction with a max fold.
func MaxVal(t *pcxx.Thread, a *Array) float64 {
	local := math.Inf(-1) // threads owning nothing must not win the fold
	a.c.ForOwned(t, func(i int) {
		if v := *a.c.Local(t, i); v > local {
			local = v
		}
	})
	t.Flops(a.c.LocalCount(t))
	*a.m.partials.Local(t, t.ID()) = local
	return pcxx.AllReduceWith(t, a.m.partials, func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	})
}

// CShift assigns dst[i] = src[(i+shift) mod n] — HPF's circular shift,
// a pure communication pattern.
func CShift(t *pcxx.Thread, dst, src *Array, shift int) {
	n := src.n
	Forall(t, dst, 0, func(r Reader, i int) float64 {
		j := ((i+shift)%n + n) % n
		return r.At(src, j)
	})
}

// Get reads a single element on every thread (a broadcast-style access).
func Get(t *pcxx.Thread, a *Array, i int) float64 {
	t.Barrier()
	v := a.c.Read(t, i)
	t.Barrier()
	return v
}
