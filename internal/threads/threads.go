// Package threads implements the non-preemptive user-level threads package
// that the 1-processor measurement run of the extrapolation technique
// requires (the role AWESIME played for the original ExtraP).
//
// All program threads execute on a single logical processor under a
// deterministic, strictly cooperative scheduler: a thread runs until it
// explicitly yields (at a barrier, a park, or an explicit Yield), and the
// scheduler then hands the processor to the next runnable thread in
// round-robin order. This discipline is what makes trace translation
// sound: the time between two consecutive events of a thread is pure,
// uninterrupted computation of that thread.
//
// The implementation maps each user thread onto a goroutine but enforces
// mutual exclusion with a baton: exactly one goroutine (a thread or the
// scheduler) runs at any instant, and hand-offs are explicit channel
// sends. The result is deterministic regardless of GOMAXPROCS.
package threads

import (
	"fmt"
)

// State describes where a thread is in its lifecycle.
type State uint8

// Thread states.
const (
	// StateReady means the thread is runnable and waiting for the baton.
	StateReady State = iota
	// StateRunning means the thread currently holds the baton.
	StateRunning
	// StateParked means the thread is blocked until Unpark.
	StateParked
	// StateDone means the thread's body has returned.
	StateDone
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Thread is one cooperative thread managed by a Scheduler.
type Thread struct {
	id    int
	sched *Scheduler
	state State
	// resume delivers the baton to this thread. Buffered so the scheduler
	// never blocks handing it over before the thread is receiving.
	resume chan struct{}
}

// ID returns the thread's index in [0, N).
func (t *Thread) ID() int { return t.id }

// State returns the thread's current lifecycle state. Only meaningful when
// called from scheduler context or from the thread itself.
func (t *Thread) State() State { return t.state }

// Yield gives up the processor; the thread remains runnable and will run
// again after every other ready thread has had a turn.
func (t *Thread) Yield() {
	t.state = StateReady
	t.sched.ready = append(t.sched.ready, t)
	t.switchToScheduler()
}

// Park blocks the thread until some other thread (or scheduler hook)
// calls Unpark. Parking with no possible waker deadlocks the program and
// is reported by the scheduler.
func (t *Thread) Park() {
	t.state = StateParked
	t.switchToScheduler()
}

// Unpark makes a parked thread runnable again (appended to the ready
// queue). It must be called from a running thread or scheduler hook; it
// panics if the target is not parked, because a double wake-up indicates
// corrupted synchronization logic.
func (t *Thread) Unpark() {
	if t.state != StateParked {
		panic(fmt.Sprintf("threads: Unpark of thread %d in state %v", t.id, t.state))
	}
	t.state = StateReady
	t.sched.ready = append(t.sched.ready, t)
}

// switchToScheduler hands the baton back and blocks until the scheduler
// resumes this thread. A resume during scheduler abort unwinds the
// thread's stack instead of returning to the body.
func (t *Thread) switchToScheduler() {
	t.sched.baton <- schedToken{}
	<-t.resume
	if t.sched.aborting {
		panic(abortPanic{})
	}
	t.state = StateRunning
}

// exit marks the thread done and hands the baton back permanently.
func (t *Thread) exit() {
	t.state = StateDone
	t.sched.live--
	t.sched.baton <- schedToken{}
}

type schedToken struct{}

// abortPanic unwinds a thread's stack when the scheduler aborts a failed
// run; it is swallowed by the thread's recover rather than reported as a
// program panic.
type abortPanic struct{}

// Scheduler runs N cooperative threads to completion.
type Scheduler struct {
	threads []*Thread
	ready   []*Thread
	live    int
	// baton receives control whenever a thread yields, parks, or exits.
	baton chan schedToken
	// panicked carries a panic value out of a thread body.
	panicked any
	// aborting makes every resumed thread unwind instead of run; set by
	// unwind once Run has decided to fail.
	aborting bool
}

// New creates a scheduler with n threads executing body(thread). The
// threads do not start until Run is called.
func New(n int, body func(*Thread)) *Scheduler {
	if n <= 0 {
		panic("threads: scheduler needs at least one thread")
	}
	s := &Scheduler{
		baton: make(chan schedToken),
		live:  n,
	}
	for i := 0; i < n; i++ {
		t := &Thread{
			id:     i,
			sched:  s,
			state:  StateReady,
			resume: make(chan struct{}, 1),
		}
		s.threads = append(s.threads, t)
		s.ready = append(s.ready, t)
		go func(t *Thread) {
			<-t.resume // wait for first dispatch
			defer func() {
				if r := recover(); r != nil {
					if _, abort := r.(abortPanic); !abort && s.panicked == nil {
						s.panicked = r
					}
				}
				t.exit()
			}()
			if s.aborting {
				return // resumed only to be released; never run the body
			}
			t.state = StateRunning
			body(t)
		}(t)
	}
	return s
}

// Threads returns the scheduler's threads, indexed by id.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Run dispatches threads round-robin until all have finished. It returns
// an error if the program deadlocks (live threads remain but none are
// runnable) or if any thread body panicked. A panic value that is an
// error is wrapped, so errors.Is sees through to the cause — the path a
// cancelled measurement takes out of the runtime. On any failure every
// unfinished thread is unwound before Run returns, so a failed run
// leaks no goroutines.
func (s *Scheduler) Run() error {
	for s.live > 0 {
		if len(s.ready) == 0 {
			parked := []int{}
			for _, t := range s.threads {
				if t.state == StateParked {
					parked = append(parked, t.id)
				}
			}
			s.unwind()
			return fmt.Errorf("threads: deadlock — %d live threads, none runnable (parked: %v)", s.live, parked)
		}
		next := s.ready[0]
		s.ready = s.ready[1:]
		next.resume <- struct{}{}
		<-s.baton
		if s.panicked != nil {
			s.unwind()
			if err, ok := s.panicked.(error); ok {
				return fmt.Errorf("threads: thread failed: %w", err)
			}
			return fmt.Errorf("threads: thread panicked: %v", s.panicked)
		}
	}
	return nil
}

// unwind releases every unfinished thread after Run has decided to fail:
// each one is resumed into an immediate abort panic (or, if it never
// started, straight to exit), freeing its goroutine and stack. The baton
// discipline holds throughout — one hand-off per thread.
func (s *Scheduler) unwind() {
	s.aborting = true
	for _, t := range s.threads {
		if t.state == StateDone {
			continue
		}
		t.resume <- struct{}{}
		<-s.baton
	}
}
