package threads

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRunToCompletionOrder(t *testing.T) {
	var order []int
	s := New(4, func(th *Thread) {
		order = append(order, th.ID())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (deterministic round-robin)", order, want)
		}
	}
}

func TestYieldInterleaving(t *testing.T) {
	var order []int
	s := New(3, func(th *Thread) {
		for i := 0; i < 2; i++ {
			order = append(order, th.ID())
			th.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNonPreemption(t *testing.T) {
	// A thread that never yields must run to completion before any other
	// thread observes shared state mid-flight.
	var counter int
	var snapshots []int
	s := New(2, func(th *Thread) {
		if th.ID() == 0 {
			for i := 0; i < 1000; i++ {
				counter++
			}
		} else {
			snapshots = append(snapshots, counter)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snapshots) != 1 || snapshots[0] != 1000 {
		t.Fatalf("thread 1 observed counter=%v; thread 0 was preempted", snapshots)
	}
}

func TestParkUnpark(t *testing.T) {
	var log []string
	var threads []*Thread
	s := New(2, func(th *Thread) {
		if th.ID() == 0 {
			log = append(log, "0:parking")
			th.Park()
			log = append(log, "0:resumed")
		} else {
			log = append(log, "1:waking-0")
			threads[0].Unpark()
		}
	})
	threads = s.Threads()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(log, ",")
	want := "0:parking,1:waking-0,0:resumed"
	if got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(2, func(th *Thread) {
		th.Park() // nobody will ever wake us
	})
	err := s.Run()
	if err == nil {
		t.Fatal("Run() succeeded on a deadlocked program")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error %q does not mention deadlock", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	s := New(2, func(th *Thread) {
		if th.ID() == 1 {
			panic("boom")
		}
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run() = %v, want panic propagation", err)
	}
}

func TestUnparkNotParkedPanics(t *testing.T) {
	var threads []*Thread
	s := New(2, func(th *Thread) {
		if th.ID() == 0 {
			th.Yield()
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Unpark of ready thread did not panic")
			}
		}()
		threads[0].Unpark() // thread 0 is ready, not parked
	})
	threads = s.Threads()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStateTransitions(t *testing.T) {
	var sawRunning bool
	s := New(1, func(th *Thread) {
		sawRunning = th.State() == StateRunning
	})
	th := s.Threads()[0]
	if th.State() != StateReady {
		t.Fatalf("initial state = %v, want ready", th.State())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawRunning {
		t.Error("thread did not observe itself running")
	}
	if th.State() != StateDone {
		t.Fatalf("final state = %v, want done", th.State())
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateReady: "ready", StateRunning: "running",
		StateParked: "parked", StateDone: "done", State(9): "state(9)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestZeroThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, func(*Thread) {})
}

func TestManyThreadsManyYields(t *testing.T) {
	const n, rounds = 64, 50
	counts := make([]int, n)
	s := New(n, func(th *Thread) {
		for i := 0; i < rounds; i++ {
			counts[th.ID()]++
			th.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Fatalf("thread %d ran %d rounds, want %d", i, c, rounds)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		var order []int
		s := New(8, func(th *Thread) {
			for i := 0; i < 5; i++ {
				order = append(order, th.ID())
				if th.ID()%2 == 0 {
					th.Yield()
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFailedRunLeaksNoGoroutines: deadlocked and panicked runs must
// unwind every unfinished thread before Run returns — a long-lived
// server aborts many measurement runs, so each leak would accumulate.
func TestFailedRunLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := New(8, func(th *Thread) {
			th.Park() // nobody will ever wake us
		})
		if err := s.Run(); err == nil {
			t.Fatal("deadlocked run succeeded")
		}
		s = New(8, func(th *Thread) {
			if th.ID() == 3 {
				panic("boom")
			}
			th.Yield()
		})
		if err := s.Run(); err == nil {
			t.Fatal("panicked run succeeded")
		}
	}
	// Unwound goroutines finish asynchronously after exit(); give the
	// runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		after := runtime.NumGoroutine()
		if after <= before+8 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 100 failed runs", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicErrorIsWrapped: a thread body that panics with an error must
// surface it unwrapped to errors.Is, so cancellation sentinels survive
// the trip through the scheduler.
func TestPanicErrorIsWrapped(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	s := New(2, func(th *Thread) {
		if th.ID() == 0 {
			panic(fmt.Errorf("wrapped: %w", sentinel))
		}
	})
	err := s.Run()
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("Run() = %v, want errors.Is(err, sentinel)", err)
	}
}

// TestAbortedThreadsNeverRunBodies: threads that were never dispatched
// before the run failed must not execute their bodies during unwind.
func TestAbortedThreadsNeverRunBodies(t *testing.T) {
	var ran [4]bool
	s := New(4, func(th *Thread) {
		ran[th.ID()] = true
		if th.ID() == 0 {
			panic("early failure")
		}
	})
	if err := s.Run(); err == nil {
		t.Fatal("panicked run succeeded")
	}
	if !ran[0] {
		t.Fatal("thread 0 never ran")
	}
	for id := 1; id < 4; id++ {
		if ran[id] {
			t.Errorf("thread %d body ran after the scheduler aborted", id)
		}
	}
}
