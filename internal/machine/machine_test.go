package machine

import (
	"math"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

func TestPresetsValidate(t *testing.T) {
	for _, e := range Presets() {
		if err := e.Config.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", e.Name, err)
		}
		if e.Description == "" {
			t.Errorf("%s: missing description", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cm5", "generic-dm", "shared-mem", "ideal"} {
		e, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if e.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, e.Name)
		}
	}
	if _, err := ByName("cray-t3d"); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestCM5Table3Parameters(t *testing.T) {
	e := CM5()
	if e.Config.MipsRatio != 0.41 {
		t.Errorf("MipsRatio = %g, want 0.41", e.Config.MipsRatio)
	}
	if e.Config.Comm.StartupTime != 10*vtime.Microsecond {
		t.Errorf("CommStartupTime = %v, want 10µs", e.Config.Comm.StartupTime)
	}
	if e.Config.Comm.ByteTransferTime != vtime.FromMicros(0.118) {
		t.Errorf("ByteTransferTime = %v, want 0.118µs", e.Config.Comm.ByteTransferTime)
	}
	if e.Config.Barrier.ModelTime != 5*vtime.Microsecond {
		t.Errorf("BarrierModelTime = %v, want 5µs", e.Config.Barrier.ModelTime)
	}
	// 0.118 µs/byte ≈ 8.5 MB/s.
	cm5Comm := e.Config.Comm
	if bw := cm5Comm.BandwidthMBps(); math.Abs(bw-8.47) > 0.1 {
		t.Errorf("bandwidth = %.2f MB/s, want ≈8.5", bw)
	}
}

func TestGenericDMBandwidth(t *testing.T) {
	dm := GenericDM().Config.Comm
	if bw := dm.BandwidthMBps(); bw != 20 {
		t.Errorf("generic-dm bandwidth = %g MB/s, want 20", bw)
	}
	sm := SharedMem().Config.Comm
	if bw := sm.BandwidthMBps(); bw != 200 {
		t.Errorf("shared-mem bandwidth = %g MB/s, want 200", bw)
	}
}

func TestIdealIsFree(t *testing.T) {
	cfg := Ideal().Config
	if cfg.Comm.StartupTime != 0 || cfg.Comm.ByteTransferTime != 0 ||
		cfg.Barrier.EntryTime != 0 || cfg.Barrier.ModelTime != 0 {
		t.Error("ideal environment has nonzero costs")
	}
}

func TestMeasureMFLOPSMatchesPaper(t *testing.T) {
	sun := MeasureMFLOPS(pcxx.Sun4())
	if math.Abs(sun-1.1360) > 0.01 {
		t.Errorf("Sun 4 MFLOPS = %.4f, want ≈1.1360", sun)
	}
	cm5 := MeasureMFLOPS(pcxx.CM5Node())
	if math.Abs(cm5-2.7645) > 0.03 {
		t.Errorf("CM-5 MFLOPS = %.4f, want ≈2.7645", cm5)
	}
}

func TestDeriveMipsRatio(t *testing.T) {
	ratio := DeriveMipsRatio(pcxx.Sun4(), pcxx.CM5Node())
	if math.Abs(ratio-0.41) > 0.01 {
		t.Errorf("MipsRatio = %.3f, want ≈0.41", ratio)
	}
	// Degenerate target.
	if DeriveMipsRatio(pcxx.Sun4(), pcxx.CostModel{}) != 0 {
		t.Error("zero-cost target should derive ratio 0")
	}
}
