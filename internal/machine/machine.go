// Package machine provides target execution-environment presets — named
// bundles of simulation parameters that describe the machines used in the
// paper's experiments — and the processor microbenchmark that derives the
// MipsRatio scaling factor (Table 3).
package machine

import (
	"fmt"
	"sort"

	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/vtime"
)

// Env names a target execution environment and its simulation
// configuration. Env values are templates: experiments copy and adjust
// them (processor counts, single parameters under study).
type Env struct {
	// Name identifies the environment ("cm5", "generic-dm", ...).
	Name string
	// Description is a one-line summary for reports.
	Description string
	// Config is the simulation parameter set.
	Config sim.Config
}

// GenericDM is the Figure 4 parameter set: a distributed-memory platform
// with modest 20 MB/s links but relatively high communication overheads
// and synchronization costs.
func GenericDM() Env {
	return Env{
		Name:        "generic-dm",
		Description: "distributed memory, 20 MB/s links, high startup and sync costs",
		Config: sim.Config{
			MipsRatio: 1.0,
			Policy: sim.Policy{
				Kind:              sim.Interrupt,
				InterruptOverhead: 10 * vtime.Microsecond,
				ServiceTime:       15 * vtime.Microsecond,
			},
			Comm: network.Config{
				StartupTime:      100 * vtime.Microsecond,
				ByteTransferTime: 50 * vtime.Nanosecond, // 20 MB/s
				MsgConstructTime: 10 * vtime.Microsecond,
				HopTime:          500 * vtime.Nanosecond,
				RecvOverhead:     10 * vtime.Microsecond,
				RecvOccupancy:    2 * vtime.Microsecond,
				Topology:         network.Mesh2D{},
				ContentionFactor: 0.05,
				RequestBytes:     16,
			},
			Barrier: sim.DefaultBarrier(),
		},
	}
}

// SharedMem approximates a shared-memory platform: 200 MB/s remote data
// access, tiny startup, flag-based barriers.
func SharedMem() Env {
	return Env{
		Name:        "shared-mem",
		Description: "shared memory, 200 MB/s remote access, flag barriers",
		Config: sim.Config{
			MipsRatio: 1.0,
			Policy: sim.Policy{
				Kind:        sim.Interrupt,
				ServiceTime: 2 * vtime.Microsecond,
			},
			Comm: network.Config{
				StartupTime:      2 * vtime.Microsecond,
				ByteTransferTime: 5 * vtime.Nanosecond, // 200 MB/s
				MsgConstructTime: 500 * vtime.Nanosecond,
				RecvOverhead:     1 * vtime.Microsecond,
				RecvOccupancy:    200 * vtime.Nanosecond,
				Topology:         network.Bus{},
				ContentionFactor: 0.02,
				RequestBytes:     16,
			},
			Barrier: sim.BarrierConfig{
				Algorithm:     sim.LinearBarrier,
				EntryTime:     2 * vtime.Microsecond,
				ExitTime:      2 * vtime.Microsecond,
				CheckTime:     1 * vtime.Microsecond,
				ExitCheckTime: 1 * vtime.Microsecond,
				ModelTime:     4 * vtime.Microsecond,
				ByMsgs:        false,
			},
		},
	}
}

// CM5 is the Table 3 parameter set used for the Matmul validation:
// MipsRatio 0.41 (Sun-4 1.1360 MFLOPS → CM-5 2.7645 MFLOPS),
// CommStartupTime 10 µs, ByteTransferTime 0.118 µs (8.5 MB/s),
// BarrierModelTime 5 µs, fat-tree data network, active-message
// (interrupt) request service.
func CM5() Env {
	return Env{
		Name:        "cm5",
		Description: "Thinking Machines CM-5 (Table 3 parameters, fat tree, active messages)",
		Config: sim.Config{
			MipsRatio: 0.41,
			Policy: sim.Policy{
				Kind:              sim.Interrupt,
				InterruptOverhead: 3 * vtime.Microsecond,
				ServiceTime:       5 * vtime.Microsecond,
			},
			Comm: network.Config{
				StartupTime:      10 * vtime.Microsecond,
				ByteTransferTime: vtime.FromMicros(0.118), // 8.5 MB/s
				MsgConstructTime: 2 * vtime.Microsecond,
				HopTime:          200 * vtime.Nanosecond,
				RecvOverhead:     3 * vtime.Microsecond,
				RecvOccupancy:    1 * vtime.Microsecond,
				Topology:         network.FatTree{},
				ContentionFactor: 0.03,
				RequestBytes:     16,
			},
			// The CM-5's dedicated control network synchronizes without
			// data-network messages, so the barrier model runs with
			// BarrierByMsgs = 0 and the Table 3 BarrierModelTime.
			Barrier: sim.BarrierConfig{
				Algorithm:     sim.LinearBarrier,
				EntryTime:     1 * vtime.Microsecond,
				ExitTime:      1 * vtime.Microsecond,
				CheckTime:     1 * vtime.Microsecond,
				ExitCheckTime: 1 * vtime.Microsecond,
				ModelTime:     5 * vtime.Microsecond, // BarrierModelTime, Table 3
				ByMsgs:        false,
			},
		},
	}
}

// Ideal is the zero-cost environment of the Figure 5 study: all
// synchronization and communication costs are null, leaving only the
// translated computation.
func Ideal() Env {
	return Env{
		Name:        "ideal",
		Description: "free communication and synchronization (upper bound)",
		Config: sim.Config{
			MipsRatio: 1.0,
			Policy:    sim.Policy{Kind: sim.Interrupt},
			Comm: network.Config{
				Topology: network.Bus{},
			},
			Barrier: sim.BarrierConfig{Algorithm: sim.LinearBarrier},
		},
	}
}

// Presets returns the built-in environments, sorted by name.
func Presets() []Env {
	envs := []Env{GenericDM(), SharedMem(), CM5(), Ideal()}
	sort.Slice(envs, func(i, j int) bool { return envs[i].Name < envs[j].Name })
	return envs
}

// ByName returns the preset with the given name.
func ByName(name string) (Env, error) {
	for _, e := range Presets() {
		if e.Name == name {
			return e, nil
		}
	}
	return Env{}, fmt.Errorf("machine: unknown environment %q", name)
}

// MeasureMFLOPS runs the paper's floating-point microbenchmark against a
// cost model: a synthetic loop of flops timed on the virtual clock. It is
// how the MipsRatio entries of Table 3 are derived here, mirroring how the
// authors measured the Sun 4 and the CM-5 node.
func MeasureMFLOPS(cost pcxx.CostModel) float64 {
	const flops = 100000
	clock := vtime.NewVirtualClock(0)
	acc := 1.0
	for i := 0; i < flops/2; i++ {
		// The arithmetic itself is real (kept live through acc); the
		// duration comes from the cost model, exactly like the original
		// benchmark's measured wall time.
		acc = acc*1.0000001 + 0.0000001
		clock.Advance(2 * cost.FlopTime)
	}
	_ = acc
	secs := clock.Now().Seconds()
	if secs <= 0 {
		return 0
	}
	return flops / secs / 1e6
}

// DeriveMipsRatio returns the computation scaling factor between a
// measurement host and a target: host MFLOPS / target MFLOPS.
func DeriveMipsRatio(host, target pcxx.CostModel) float64 {
	th := MeasureMFLOPS(host)
	tt := MeasureMFLOPS(target)
	if tt == 0 {
		return 0
	}
	return th / tt
}
