package core

import (
	"context"
	"errors"
	"testing"
)

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestContextVariantsMatchPlainPipeline(t *testing.T) {
	ctx := context.Background()
	want, err := Run(testProgram(4), MeasureOptions{}, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(ctx, testProgram(4), MeasureOptions{}, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.TotalTime != want.Result.TotalTime {
		t.Errorf("RunContext TotalTime = %v, Run = %v", got.Result.TotalTime, want.Result.TotalTime)
	}
}

func TestCancelledContextStopsEachStage(t *testing.T) {
	ctx := cancelledCtx()
	if _, err := MeasureContext(ctx, testProgram(2), MeasureOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureContext error = %v, want context.Canceled", err)
	}
	tr, err := Measure(testProgram(2), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtrapolateContext(ctx, tr, freeConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExtrapolateContext error = %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, testProgram(2), MeasureOptions{}, freeConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext error = %v, want context.Canceled", err)
	}
}

func TestParallelSweepContextCancellation(t *testing.T) {
	f := func(n int) Program { return testProgram(n) }
	if _, err := ParallelSweepContext(cancelledCtx(), f, MeasureOptions{}, freeConfig(), []int{1, 2, 4}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("ParallelSweepContext error = %v, want context.Canceled", err)
	}
	pts, err := ParallelSweepContext(context.Background(), f, MeasureOptions{}, freeConfig(), []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Procs != 1 || pts[1].Procs != 2 {
		t.Errorf("sweep points = %+v", pts)
	}
}
