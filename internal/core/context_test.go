package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"extrap/internal/pcxx"
)

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestContextVariantsMatchPlainPipeline(t *testing.T) {
	ctx := context.Background()
	want, err := Run(testProgram(4), MeasureOptions{}, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(ctx, testProgram(4), MeasureOptions{}, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.TotalTime != want.Result.TotalTime {
		t.Errorf("RunContext TotalTime = %v, Run = %v", got.Result.TotalTime, want.Result.TotalTime)
	}
}

func TestCancelledContextStopsEachStage(t *testing.T) {
	ctx := cancelledCtx()
	if _, err := MeasureContext(ctx, testProgram(2), MeasureOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureContext error = %v, want context.Canceled", err)
	}
	tr, err := Measure(testProgram(2), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtrapolateContext(ctx, tr, freeConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExtrapolateContext error = %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, testProgram(2), MeasureOptions{}, freeConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext error = %v, want context.Canceled", err)
	}
}

func TestParallelSweepContextCancellation(t *testing.T) {
	f := func(n int) Program { return testProgram(n) }
	if _, err := ParallelSweepContext(cancelledCtx(), f, MeasureOptions{}, freeConfig(), []int{1, 2, 4}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("ParallelSweepContext error = %v, want context.Canceled", err)
	}
	pts, err := ParallelSweepContext(context.Background(), f, MeasureOptions{}, freeConfig(), []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Procs != 1 || pts[1].Procs != 2 {
		t.Errorf("sweep points = %+v", pts)
	}
}

// flakyCtx is a context whose Err starts returning DeadlineExceeded
// after a fixed number of polls — a deterministic stand-in for a
// deadline that fires mid-measurement.
type flakyCtx struct {
	pollsLeft int
	done      chan struct{}
}

func newFlakyCtx(polls int) *flakyCtx {
	return &flakyCtx{pollsLeft: polls, done: make(chan struct{})}
}

func (c *flakyCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *flakyCtx) Done() <-chan struct{}       { return c.done }
func (c *flakyCtx) Value(any) any               { return nil }
func (c *flakyCtx) Err() error {
	if c.pollsLeft--; c.pollsLeft < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestMeasureContextInterruptsMidRun: a deadline firing after the
// measurement has started must still abort it — the runtime polls the
// context at safe points rather than running to completion.
func TestMeasureContextInterruptsMidRun(t *testing.T) {
	// Enough compute charges to cross the runtime's poll interval many
	// times over, so an in-run poll (not the up-front check) fires.
	heavy := Program{
		Name:    "heavy",
		Threads: 2,
		Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			return func(th *pcxx.Thread) {
				for i := 0; i < 1_000_000; i++ {
					th.Compute(1)
				}
			}
		},
	}
	// The first poll (the up-front check) passes; a later one, reached
	// from inside the runtime, fails.
	_, err := MeasureContext(newFlakyCtx(1), heavy, MeasureOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MeasureContext error = %v, want DeadlineExceeded", err)
	}
	// The same program measures fine without a deadline.
	if _, err := Measure(heavy, MeasureOptions{}); err != nil {
		t.Fatalf("Measure of heavy program failed: %v", err)
	}
}
