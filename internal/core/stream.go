package core

import (
	"bytes"
	"context"
	"fmt"

	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// Prediction is the streaming counterpart of Outcome: the scalar
// artifacts of an extrapolation whose traces flowed through bounded
// cursors and were never materialized. The predicted metrics are
// byte-identical to what the in-memory pipeline computes from the same
// measurement.
type Prediction struct {
	// Measured1P is the 1-processor virtual execution time of the source
	// measurement (the timestamp of its last event).
	Measured1P vtime.Time
	// Ideal is the idealized translated parallel time (free communication
	// and synchronization).
	Ideal vtime.Time
	// Result is the predicted performance in the target environment.
	Result *sim.Result
}

// ExtrapolateReader runs the streaming pipeline — translate the merged
// measurement arriving from src, simulate the target environment over
// per-thread cursors — with peak memory bounded by the translation
// buffer, not the trace length. hdr carries the measurement's metadata
// (as produced by trace.Decoder or Trace.Header).
func ExtrapolateReader(ctx context.Context, hdr trace.Header, src trace.Reader, cfg sim.Config) (*Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: extrapolation not started: %w", err)
	}
	s, err := translate.NewStream(hdr, src, translate.StreamOptions{})
	if err != nil {
		return nil, err
	}
	res, err := sim.SimulateStreamContext(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	// The simulation drains every cursor, but a defensive Drain completes
	// validation (and the duration totals) even if a future engine stops
	// consuming early.
	if err := s.Drain(); err != nil {
		return nil, err
	}
	return &Prediction{
		Measured1P: s.SourceDuration(),
		Ideal:      s.Duration(),
		Result:     res,
	}, nil
}

// ExtrapolateEncoded is ExtrapolateReader over a binary-encoded
// measurement in either XTRP format (detected by magic): the trace is
// decoded incrementally as the pipeline pulls events, so even the
// decode step stays at chunk-sized memory. For XTRP2 bytes under the
// default pattern replay mode, the compiled pattern table and repeat
// program become a live cursor the whole pipeline can see, letting the
// simulator fast-forward steady loop iterations; event replay mode (or
// a non-XTRP2 input) falls back to the plain record decoder. Both paths
// produce byte-identical predictions.
func ExtrapolateEncoded(ctx context.Context, enc []byte, cfg sim.Config) (*Prediction, error) {
	if cfg.Replay == sim.ReplayPattern && trace.IsXTRP2(enc) {
		ps, err := trace.NewPatternSource(enc)
		if err != nil {
			return nil, err
		}
		return ExtrapolateReader(ctx, ps.Header(), ps, cfg)
	}
	d, err := trace.NewAnyDecoder(bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	return ExtrapolateReader(ctx, d.Header(), d, cfg)
}
