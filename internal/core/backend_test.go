package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"extrap/internal/trace"
)

// fakeBackend is an in-memory TraceBackend recording its traffic, so
// tests can assert exactly when the durable tier is consulted and what
// is written through. Like the real store, it keys each trace format
// separately via CanonicalFormat.
type fakeBackend struct {
	mu   sync.Mutex
	data map[string][]byte
	gets int
	puts int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{data: make(map[string][]byte)}
}

func (b *fakeBackend) GetTrace(key CacheKey, format trace.Format) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	enc, ok := b.data[key.CanonicalFormat(format)]
	return enc, ok
}

func (b *fakeBackend) PutTrace(key CacheKey, format trace.Format, enc []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	b.data[key.CanonicalFormat(format)] = enc
}

func (b *fakeBackend) stored(key CacheKey) ([]byte, bool) {
	return b.storedFormat(key, trace.FormatXTRP1)
}

func (b *fakeBackend) storedFormat(key CacheKey, format trace.Format) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	enc, ok := b.data[key.CanonicalFormat(format)]
	return enc, ok
}

func (b *fakeBackend) counts() (gets, puts int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gets, b.puts
}

func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEntrySurvivesEvictionViaFlights (white box): evicting an entry
// from the LRU while its first measurement is conceptually in flight
// must not detach a later lookup from it — the flights registry hands
// back the same entry until it settles.
func TestEntrySurvivesEvictionViaFlights(t *testing.T) {
	c := NewBoundedTraceCache(1)
	key := CacheKey{Bench: "flight", Threads: 2}
	e1 := c.entry(key)
	// Churn on other keys pushes key out of the single-entry LRU.
	c.entry(CacheKey{Bench: "other-a", Threads: 2})
	c.entry(CacheKey{Bench: "other-b", Threads: 2})
	if _, ok := c.entries[key]; ok {
		t.Fatal("key unexpectedly still resident in the LRU")
	}
	if e2 := c.entry(key); e2 != e1 {
		t.Error("post-eviction lookup created a second entry; flights registry did not join the in-flight one")
	}
	c.settle(key, e1)
	if e3 := c.entry(key); e3 == e1 {
		t.Error("settled entry still handed out via flights after eviction")
	}
}

// TestSingleflightUnderEviction (end to end, -race): with a one-entry
// cache, a measurement in progress survives being evicted by churn on
// other keys — a concurrent request for the same key joins it instead
// of starting a second measurement.
func TestSingleflightUnderEviction(t *testing.T) {
	c := NewBoundedTraceCache(1)
	key := CacheKey{Bench: "flight", Threads: 4}

	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	measure := func() (*trace.Trace, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(started)
			<-release
		}
		return Measure(testProgram(4), MeasureOptions{})
	}

	var wg sync.WaitGroup
	results := make([]*trace.Trace, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := c.Measure(key, measure)
		if err != nil {
			t.Error(err)
		}
		results[0] = tr
	}()
	<-started

	// Evict the in-flight entry, then issue a second request for it.
	if _, err := c.Measure(CacheKey{Bench: "churn", Threads: 2}, func() (*trace.Trace, error) {
		return Measure(testProgram(2), MeasureOptions{})
	}); err != nil {
		t.Fatal(err)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := c.Measure(key, measure)
		if err != nil {
			t.Error(err)
		}
		results[1] = tr
	}()
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Errorf("measurement ran %d times, want 1 (second request should join the evicted flight)", calls)
	}
	if results[0] != results[1] {
		t.Error("concurrent requests did not share the single measurement's trace")
	}
	c.mu.Lock()
	leaked := len(c.flights)
	c.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d flights left registered after all measurements settled", leaked)
	}
}

// TestFlightsSettledAfterContextAbort: a cancelled measurement is not
// memoized, and its flight must still be unregistered — otherwise every
// never-retried key leaks a map entry.
func TestFlightsSettledAfterContextAbort(t *testing.T) {
	c := NewBoundedTraceCache(2)
	key := CacheKey{Bench: "abort", Threads: 2}
	var calls int
	if _, err := c.Measure(key, func() (*trace.Trace, error) {
		calls++
		return nil, context.Canceled
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	c.mu.Lock()
	leaked := len(c.flights)
	c.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d flights left registered after a context-aborted measurement", leaked)
	}
	// The abort was not memoized: the next caller re-measures.
	if _, err := c.Measure(key, func() (*trace.Trace, error) {
		calls++
		return Measure(testProgram(2), MeasureOptions{})
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("measurement ran %d times, want 2 (abort must not be memoized)", calls)
	}
}

// TestBackendWriteThrough: a fresh measurement is written through to the
// backend as decodable XTRP1 bytes matching the trace's own encoding.
func TestBackendWriteThrough(t *testing.T) {
	b := newFakeBackend()
	c := NewTraceCache()
	c.SetBackend(b)
	key := CacheKey{Bench: "wt", Threads: 4}
	tr, err := c.Measure(key, func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, ok := b.stored(key)
	if !ok {
		t.Fatal("fresh measurement was not written through to the backend")
	}
	if want := encodeTrace(t, tr); !bytes.Equal(enc, want) {
		t.Error("backend bytes differ from the trace's own XTRP1 encoding")
	}
	if _, err := trace.ReadBinary(bytes.NewReader(enc)); err != nil {
		t.Fatalf("backend bytes do not decode: %v", err)
	}
}

// TestBackendServesColdCache: a cold cache sharing the backend serves
// the durable artifact instead of re-measuring, in both plain and
// encoded modes, with byte-identical results.
func TestBackendServesColdCache(t *testing.T) {
	b := newFakeBackend()
	warm := NewTraceCache()
	warm.SetBackend(b)
	key := CacheKey{Bench: "cold", Threads: 4}
	measure := func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	}
	warmTr, err := warm.Measure(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeTrace(t, warmTr)

	cold := NewTraceCache()
	cold.SetBackend(b)
	coldTr, err := cold.Measure(key, func() (*trace.Trace, error) {
		t.Error("cold cache re-measured despite a backend hit")
		return measure()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeTrace(t, coldTr); !bytes.Equal(got, want) {
		t.Error("plain-mode backend hit decoded to a different trace")
	}
	if _, misses := cold.Stats(); misses != 0 {
		t.Errorf("cold cache recorded %d measurement misses, want 0", misses)
	}

	coldEnc := NewEncodedTraceCache(4, 0)
	coldEnc.SetBackend(b)
	enc, err := coldEnc.Encoded(key, func() (*trace.Trace, error) {
		t.Error("encoded cold cache re-measured despite a backend hit")
		return measure()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Error("encoded-mode backend hit returned different bytes")
	}
}

// TestEncodedWriteThroughAndBudget: encoded mode writes fresh encodings
// through, and a backend artifact exceeding the per-trace budget is
// memoized as ErrTraceTooLarge — deterministically too large, never
// half-served.
func TestEncodedWriteThroughAndBudget(t *testing.T) {
	b := newFakeBackend()
	warm := NewEncodedTraceCache(4, 0)
	warm.SetBackend(b)
	key := CacheKey{Bench: "budget", Threads: 4}
	enc, err := warm.Encoded(key, func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	})
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := b.stored(key)
	if !ok {
		t.Fatal("encoded measurement was not written through")
	}
	if !bytes.Equal(stored, enc) {
		t.Error("written-through bytes differ from the served encoding")
	}

	tight := NewEncodedTraceCache(4, int64(len(enc))-1)
	tight.SetBackend(b)
	for i := 0; i < 2; i++ {
		if _, err := tight.Encoded(key, func() (*trace.Trace, error) {
			t.Error("oversized backend artifact triggered a re-measurement")
			return Measure(testProgram(4), MeasureOptions{})
		}); !errors.Is(err, ErrTraceTooLarge) {
			t.Fatalf("call %d: got %v, want ErrTraceTooLarge", i, err)
		}
	}
	gets, _ := b.counts()
	if gets != 2 {
		t.Errorf("backend consulted %d times, want 2 (one per cache, budget failure memoized)", gets)
	}
}

// TestXTRP2CacheFormat: an XTRP2-format cache writes XTRP2 artifacts
// under the v2 key, serves them back to a cold cache, and falls back to
// a store's pre-migration XTRP1 artifact when no v2 artifact exists —
// with byte-identical decoded traces throughout.
func TestXTRP2CacheFormat(t *testing.T) {
	b := newFakeBackend()
	warm := NewEncodedTraceCache(4, 0)
	warm.SetFormat(trace.FormatXTRP2)
	warm.SetBackend(b)
	key := CacheKey{Bench: "fmt2", Threads: 4}
	measure := func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	}
	enc, err := warm.Encoded(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.NewDecoder2(bytes.NewReader(enc)); err != nil {
		t.Fatalf("XTRP2-format cache served non-XTRP2 bytes: %v", err)
	}
	if _, ok := b.storedFormat(key, trace.FormatXTRP2); !ok {
		t.Fatal("fresh XTRP2 encoding was not written through under the v2 key")
	}
	if _, ok := b.storedFormat(key, trace.FormatXTRP1); ok {
		t.Fatal("XTRP2-format cache wrote an artifact under the v1 key")
	}
	cs := warm.Compression()
	if cs.RawBytes <= 0 || cs.EncodedBytes <= 0 {
		t.Fatalf("compression stats did not advance: %+v", cs)
	}

	cold := NewEncodedTraceCache(4, 0)
	cold.SetFormat(trace.FormatXTRP2)
	cold.SetBackend(b)
	got, err := cold.Encoded(key, func() (*trace.Trace, error) {
		t.Error("cold cache re-measured despite a v2 backend hit")
		return measure()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatal("cold v2 hit returned different bytes")
	}

	// A store holding only the XTRP1 artifact (written before a format
	// migration) still serves an XTRP2-format cache via fallback.
	old := newFakeBackend()
	warm1 := NewEncodedTraceCache(4, 0)
	warm1.SetBackend(old)
	want1, err := warm1.Encoded(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	mixed := NewEncodedTraceCache(4, 0)
	mixed.SetFormat(trace.FormatXTRP2)
	mixed.SetBackend(old)
	got1, err := mixed.Encoded(key, func() (*trace.Trace, error) {
		t.Error("XTRP2 cache re-measured despite an XTRP1 fallback artifact")
		return measure()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want1) {
		t.Fatal("fallback hit did not serve the stored XTRP1 bytes as-is")
	}
	tr1, err := trace.ReadBinaryAny(bytes.NewReader(want1))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadBinaryAny(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatalf("formats decode to different traces: %d vs %d events", len(tr1.Events), len(tr2.Events))
	}
	for i := range tr1.Events {
		if tr1.Events[i] != tr2.Events[i] {
			t.Fatalf("event %d differs between formats", i)
		}
	}
}
