package core

import (
	"reflect"
	"sync"
	"testing"

	"extrap/internal/sim"
	"extrap/internal/translate"
)

// TestPipelineInputsReadOnly guards the contract the memo cache depends
// on: Translate must not mutate the measurement trace, and Simulate must
// not mutate the translated trace, so both can be shared across many
// configurations and goroutines.
func TestPipelineInputsReadOnly(t *testing.T) {
	tr, err := Measure(testProgram(4), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Clone()

	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, orig) {
		t.Fatal("Translate mutated its input trace")
	}

	// A reference translation of the untouched clone, to detect any
	// mutation of pt by Simulate.
	ptRef, err := translate.Translate(orig)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := []sim.Config{freeConfig(), freeConfig()}
	cfgs[1].MipsRatio = 0.5
	for _, cfg := range cfgs {
		if _, err := sim.Simulate(pt, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(tr, orig) {
		t.Fatal("Simulate mutated the measurement trace")
	}
	if !reflect.DeepEqual(pt, ptRef) {
		t.Fatal("Simulate mutated the translated trace")
	}
}

// TestSimulateSharedTraceConcurrently: one translated trace simulated
// from many goroutines (the cache's sharing pattern) must race-cleanly
// produce the same result everywhere.
func TestSimulateSharedTraceConcurrently(t *testing.T) {
	tr, err := Measure(testProgram(4), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Simulate(pt, freeConfig())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sim.Simulate(pt, freeConfig())
			if err != nil {
				t.Error(err)
				return
			}
			if res.TotalTime != want.TotalTime {
				t.Errorf("concurrent Simulate: TotalTime %v, want %v", res.TotalTime, want.TotalTime)
			}
		}()
	}
	wg.Wait()
}
