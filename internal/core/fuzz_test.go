package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// fuzzProgram deterministically shapes a pcxx program from fuzz bytes:
// thread count, loop nest, compute grains, communication partners, and
// transfer sizes are all data-driven, so the fuzzer explores the space
// of loop-structured (and loop-broken) traces the XTRP2 miner and the
// pattern-replay kernel see in the wild.
func fuzzProgram(data []byte) (*trace.Trace, error) {
	at := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	threads := 2 + at(0)%6
	outer := 1 + at(1)%24
	inner := 1 + at(2)%5
	burst := at(3) % 4

	cfg := pcxx.DefaultConfig(threads)
	if at(4)%2 == 1 {
		cfg.SizeMode = pcxx.ActualSize
	}
	rt := pcxx.NewRuntime(cfg)
	c := pcxx.PerThread[[256]byte](rt, "x", 256)
	return rt.Run(func(th *pcxx.Thread) {
		var v [256]byte
		for j := 0; j < burst; j++ {
			c.Write(th, (th.ID()+1+j)%threads, v)
		}
		for i := 0; i < outer; i++ {
			for j := 0; j < inner; j++ {
				g := at(5 + i*inner + j)
				th.Compute(vtime.Time(1+g%40) * vtime.Microsecond)
				sz := int64(1 + at(6+i+j)%256)
				_ = c.ReadPart(th, (th.ID()+1+at(7+j)%(threads-1))%threads, sz)
			}
			if at(8+i)%3 != 0 {
				th.Barrier()
			}
		}
	})
}

// FuzzPatternReplayEquivalence is the tentpole invariant under fuzzing:
// for any measurable program, the XTRP2 encoding replayed through the
// pattern-native path (compiled pattern programs + steady-state
// fast-forward) must produce a prediction byte-identical to flat
// event-by-event replay — same totals, same per-thread breakdowns, same
// network statistics.
func FuzzPatternReplayEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 12, 2, 0, 0, 9, 17, 4, 1})
	f.Add([]byte{7, 23, 4, 3, 1, 200, 100, 50, 25, 12, 6, 3})
	f.Add(bytes.Repeat([]byte{5, 16, 1, 0, 0, 30}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := fuzzProgram(data)
		if err != nil {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := trace.WriteBinary2(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		cfg := sim.DefaultConfig()
		cfg.Replay = sim.ReplayEvent
		want, err := ExtrapolateEncoded(context.Background(), buf.Bytes(), cfg)
		if err != nil {
			t.Fatalf("event replay: %v", err)
		}
		cfg.Replay = sim.ReplayPattern
		got, err := ExtrapolateEncoded(context.Background(), buf.Bytes(), cfg)
		if err != nil {
			t.Fatalf("pattern replay: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern replay diverged from event replay:\n  pattern: %+v\n  event:   %+v",
				got.Result, want.Result)
		}
	})
}
