package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"extrap/internal/sim"
	"extrap/internal/trace"
)

// TestExtrapolateReaderMatchesExtrapolate: the streaming pipeline's
// prediction must equal the in-memory pipeline's, field for field,
// including the emitted trace byte for byte.
func TestExtrapolateReaderMatchesExtrapolate(t *testing.T) {
	tr, err := Measure(testProgram(4), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := freeConfig()
	cfg.EmitTrace = true
	want, err := Extrapolate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtrapolateReader(context.Background(), tr.Header(), tr.Reader(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Measured1P != want.Measurement.Duration() {
		t.Errorf("Measured1P = %v, want %v", got.Measured1P, want.Measurement.Duration())
	}
	if got.Ideal != want.Parallel.Duration() {
		t.Errorf("Ideal = %v, want %v", got.Ideal, want.Parallel.Duration())
	}
	var wantTrace, gotTrace bytes.Buffer
	if err := trace.WriteBinary(&wantTrace, want.Result.Trace); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&gotTrace, got.Result.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantTrace.Bytes(), gotTrace.Bytes()) {
		t.Error("emitted traces differ between streaming and in-memory pipelines")
	}
	wantRes, gotRes := *want.Result, *got.Result
	wantRes.Trace, gotRes.Trace = nil, nil
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("results differ:\nin-memory: %+v\nstreaming: %+v", wantRes, gotRes)
	}
}

// TestExtrapolateEncodedMatches: decode → translate → simulate from the
// compact bytes gives the same prediction.
func TestExtrapolateEncodedMatches(t *testing.T) {
	tr, err := Measure(testProgram(4), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := trace.WriteBinary(&enc, tr); err != nil {
		t.Fatal(err)
	}
	want, err := Extrapolate(tr, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtrapolateEncoded(context.Background(), enc.Bytes(), freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("results differ:\nin-memory: %+v\nstreaming: %+v", want.Result, got.Result)
	}
	if got.Measured1P != tr.Duration() {
		t.Errorf("Measured1P = %v, want %v", got.Measured1P, tr.Duration())
	}
}

// TestEncodedCachePurity: concurrent sweep cells extrapolating from one
// cached entry must agree, and the cached bytes must be bit-identical
// before and after — the aliasing guarantee of the encoded cache. Under
// -race this also proves the hit path is data-race free.
func TestEncodedCachePurity(t *testing.T) {
	c := NewEncodedTraceCache(4, 0)
	key := CacheKey{Bench: "test", Threads: 4}
	measure := func() (*trace.Trace, error) { return Measure(testProgram(4), MeasureOptions{}) }

	enc, err := c.Encoded(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), enc...)

	want, err := ExtrapolateEncoded(context.Background(), enc, freeConfig())
	if err != nil {
		t.Fatal(err)
	}

	const cells = 8
	var wg sync.WaitGroup
	for g := 0; g < cells; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := freeConfig()
			if i%2 == 1 {
				cfg.MipsRatio = 0.5
			}
			enc, err := c.Encoded(key, measure)
			if err != nil {
				t.Error(err)
				return
			}
			p, err := ExtrapolateEncoded(context.Background(), enc, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 && p.Result.TotalTime != want.Result.TotalTime {
				t.Errorf("cell %d: TotalTime %v, want %v", i, p.Result.TotalTime, want.Result.TotalTime)
			}
		}(g)
	}
	wg.Wait()

	after, err := c.Encoded(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("cached encoded trace changed while cells consumed it")
	}
	if hits, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d (hits %d), want exactly one measurement", misses, hits)
	}
}

// TestSharedCacheHitPurity is the same guarantee for the shared
// (in-memory) cache: two cells simulating one cached translation must
// leave the cached measurement bit-identical.
func TestSharedCacheHitPurity(t *testing.T) {
	c := NewTraceCache()
	key := CacheKey{Bench: "test", Threads: 4}
	measure := func() (*trace.Trace, error) { return Measure(testProgram(4), MeasureOptions{}) }

	tr, err := c.Measure(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := trace.WriteBinary(&before, tr); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pt, err := c.Translated(key, measure)
			if err != nil {
				t.Error(err)
				return
			}
			cfg := freeConfig()
			if i%2 == 1 {
				cfg.MipsRatio = 2
			}
			if _, err := sim.Simulate(pt, cfg); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	after, err := c.Measure(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	var afterBuf bytes.Buffer
	if err := trace.WriteBinary(&afterBuf, after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), afterBuf.Bytes()) {
		t.Fatal("cached measurement mutated by concurrent cells")
	}
}

// TestEncodedCacheMeasureCopies: decoded copies handed out by an encoded
// cache are private — mutating one never corrupts later hits.
func TestEncodedCacheMeasureCopies(t *testing.T) {
	c := NewEncodedTraceCache(4, 0)
	key := CacheKey{Bench: "test", Threads: 4}
	measure := func() (*trace.Trace, error) { return Measure(testProgram(4), MeasureOptions{}) }
	first, err := c.Measure(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Events[0]
	first.Events[0].Time += 999 // vandalize the copy

	second, err := c.Measure(key, measure)
	if err != nil {
		t.Fatal(err)
	}
	if second.Events[0] != want {
		t.Fatal("mutating one decoded copy leaked into the cache")
	}
}

// TestEncodedCacheTraceTooLarge: a measurement whose encoding exceeds
// the budget is rejected with ErrTraceTooLarge, and the failure is
// memoized like any deterministic outcome.
func TestEncodedCacheTraceTooLarge(t *testing.T) {
	c := NewEncodedTraceCache(4, 64) // smaller than any real header+events
	key := CacheKey{Bench: "test", Threads: 4}
	measure := func() (*trace.Trace, error) { return Measure(testProgram(4), MeasureOptions{}) }
	for i := 0; i < 2; i++ {
		if _, err := c.Encoded(key, measure); !errors.Is(err, ErrTraceTooLarge) {
			t.Fatalf("call %d: err = %v, want ErrTraceTooLarge", i, err)
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (failure memoized)", misses)
	}
}

// TestEncodedOnNonEncodedCache: misuse is an error, not silent decay.
func TestEncodedOnNonEncodedCache(t *testing.T) {
	c := NewTraceCache()
	if _, err := c.Encoded(CacheKey{Bench: "x"}, nil); err == nil {
		t.Fatal("Encoded on shared cache succeeded")
	}
	if c.Streams() {
		t.Fatal("shared cache claims to stream")
	}
	if !NewEncodedTraceCache(1, 0).Streams() {
		t.Fatal("encoded cache does not claim to stream")
	}
}
