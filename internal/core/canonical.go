package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/trace"
)

// Canonical key encoding, version 1.
//
// The durable artifact store addresses measurement traces and prediction
// results by content: the SHA-256 of a canonical string spelling out
// every input that determines the artifact's bytes. The encoding below IS
// the on-disk compatibility contract — changing it (reordering fields,
// renaming, reformatting a number) orphans every artifact ever written,
// silently turning a warm store into a cold one. A golden test in
// internal/store locks the format against committed fixtures; bump the
// "/v1" version component and migrate deliberately if the key inputs
// ever have to change.
//
// Only inputs that change the produced bytes belong in the key:
//   - trace/v1 covers one deterministic measurement run — the program
//     identity (benchmark name plus variant tag), its size parameters,
//     the measured thread count, and the full MeasureOptions (cost
//     model, event overhead, size mode, seed).
//   - cfg/v1 covers one simulation configuration — every sim.Config
//     field, with nested network configs spelled out and the topology
//     identified by its registered name.
//   - pred/v1 is the concatenation of the two: a prediction is a pure
//     function of (measurement, configuration).
//   - wl/v1 covers one composed-workload spec (internal/compose builds
//     the string from the validated pattern tree); the workload's
//     registry-facing name is WorkloadName(canonical), so the derived
//     name participates in trace/pred keys as the Bench field exactly
//     like a built-in kernel's name.

// Canonical returns the version-1 canonical encoding of the measurement
// key — the string whose SHA-256 content-addresses the measured trace in
// the artifact store. Two keys with equal canonical strings produce
// byte-identical traces (measurement is deterministic).
func (k CacheKey) Canonical() string {
	return k.canonicalTrace("trace/v1")
}

// CanonicalFormat returns the canonical encoding of the measurement key
// for a given trace encoding. The fields are identical to Canonical's;
// only the version prefix differs ("trace/v1" addresses XTRP1 bytes,
// "trace/v2" XTRP2 bytes), so the two encodings of one measurement
// coexist in a store without colliding. Prediction keys ("pred/v1") are
// built from the XTRP1-era Canonical regardless of trace format: a
// prediction is a function of the measurement, not of how its trace was
// serialized.
func (k CacheKey) CanonicalFormat(f trace.Format) string {
	if f == trace.FormatXTRP2 {
		return k.canonicalTrace("trace/v2")
	}
	return k.canonicalTrace("trace/v1")
}

func (k CacheKey) canonicalTrace(prefix string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|bench=%q|n=%d|iters=%d|verify=%d|threads=%d",
		prefix, k.Bench, k.N, k.Iters, b2i(k.Verify), k.Threads)
	fmt.Fprintf(&b, "|flop=%d|intop=%d|membyte=%d|call=%d",
		int64(k.Opts.Cost.FlopTime), int64(k.Opts.Cost.IntOpTime),
		int64(k.Opts.Cost.MemByteTime), int64(k.Opts.Cost.CallTime))
	fmt.Fprintf(&b, "|ovh=%d|mode=%d|seed=%d",
		int64(k.Opts.EventOverhead), uint8(k.Opts.SizeMode), k.Opts.Seed)
	return b.String()
}

// CanonicalConfig returns the version-1 canonical encoding of a
// simulation configuration — the half of a prediction's content address
// that the target environment contributes.
func CanonicalConfig(cfg sim.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg/v1|procs=%d|mips=%s", cfg.Procs, canonFloat(cfg.MipsRatio))
	fmt.Fprintf(&b, "|policy=%d,%d,%d,%d,%d",
		uint8(cfg.Policy.Kind), int64(cfg.Policy.PollInterval),
		int64(cfg.Policy.PollOverhead), int64(cfg.Policy.InterruptOverhead),
		int64(cfg.Policy.ServiceTime))
	b.WriteString("|comm=")
	canonComm(&b, cfg.Comm)
	fmt.Fprintf(&b, "|barrier=%d,%d,%d,%d,%d,%d,%d,%d,%d",
		uint8(cfg.Barrier.Algorithm), int64(cfg.Barrier.EntryTime),
		int64(cfg.Barrier.ExitTime), int64(cfg.Barrier.CheckTime),
		int64(cfg.Barrier.ExitCheckTime), int64(cfg.Barrier.ModelTime),
		b2i(cfg.Barrier.ByMsgs), cfg.Barrier.MsgSize, int64(cfg.Barrier.HardwareTime))
	fmt.Fprintf(&b, "|placement=%d|ctxswitch=%d|cluster=%d",
		uint8(cfg.Placement), int64(cfg.ContextSwitchTime), cfg.ClusterSize)
	b.WriteString("|intra=")
	canonComm(&b, cfg.IntraComm)
	fmt.Fprintf(&b, "|emit=%d", b2i(cfg.EmitTrace))
	return b.String()
}

// CanonicalPrediction returns the version-1 canonical encoding of a
// prediction: the measurement key joined with the simulation
// configuration it was extrapolated under.
func CanonicalPrediction(k CacheKey, cfg sim.Config) string {
	return "pred/v1|" + k.Canonical() + "|" + CanonicalConfig(cfg)
}

// WorkloadName derives the registry-facing name of a composed workload
// from its wl/v1 canonical encoding: "wl:" plus the first 32 hex digits
// of the canonical string's SHA-256. Like the canonical encodings above,
// this derivation is a compatibility contract (locked by the store
// golden test): the name is the Bench field of every trace and
// prediction key the workload produces, and it is what coordinators
// hash for shard affinity — so equal specs must derive equal names on
// every node, forever.
func WorkloadName(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return "wl:" + hex.EncodeToString(sum[:16])
}

// canonComm spells out one network configuration. The topology is
// identified by its Name() (nil means the bus, matching the simulator's
// default), so distinct shapes with identical cost parameters key
// differently.
func canonComm(b *strings.Builder, c network.Config) {
	topo := "bus"
	if c.Topology != nil {
		topo = c.Topology.Name()
	}
	fmt.Fprintf(b, "%d,%d,%d,%d,%d,%d,%s,%s,%d",
		int64(c.StartupTime), int64(c.ByteTransferTime), int64(c.MsgConstructTime),
		int64(c.HopTime), int64(c.RecvOverhead), int64(c.RecvOccupancy),
		topo, canonFloat(c.ContentionFactor), c.RequestBytes)
}

// canonFloat formats a float with the shortest round-trippable decimal
// representation — stable across platforms and Go releases for the same
// bit pattern.
func canonFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
