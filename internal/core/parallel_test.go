package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"extrap/internal/trace"
)

// TestParallelSweepMatchesSequential: the concurrent sweep must be
// observably identical to the sequential one at any worker count.
func TestParallelSweepMatchesSequential(t *testing.T) {
	procs := []int{1, 2, 4, 8}
	want, err := ParallelSweep(testProgram, MeasureOptions{}, freeConfig(), procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := ParallelSweep(testProgram, MeasureOptions{}, freeConfig(), procs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: points %v, want %v", workers, got, want)
		}
	}
}

func TestSweepProcsStillSequential(t *testing.T) {
	pts, err := SweepProcs(testProgram, MeasureOptions{}, freeConfig(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Procs != 1 || pts[1].Procs != 2 {
		t.Fatalf("unexpected points %v", pts)
	}
}

// TestTraceCacheSingleflight: concurrent lookups of one key run the
// measurement exactly once and share the resulting trace pointer.
func TestTraceCacheSingleflight(t *testing.T) {
	c := NewTraceCache()
	key := CacheKey{Bench: "test", N: 8, Iters: 3, Threads: 4}
	var calls int
	var mu sync.Mutex
	measure := func() (*trace.Trace, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return Measure(testProgram(4), MeasureOptions{})
	}

	const goroutines = 8
	got := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := c.Measure(key, measure)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = tr
		}(g)
	}
	wg.Wait()

	if calls != 1 {
		t.Errorf("measurement ran %d times, want 1", calls)
	}
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Errorf("goroutine %d got a different trace pointer", g)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("Stats() = %d hits, %d misses; want %d, 1", hits, misses, goroutines-1)
	}
}

// TestTraceCacheKeysDistinct: distinct keys are measured independently.
func TestTraceCacheKeysDistinct(t *testing.T) {
	c := NewTraceCache()
	for _, threads := range []int{2, 4, 2, 4, 2} {
		_, err := c.Measure(CacheKey{Bench: "test", Threads: threads}, func() (*trace.Trace, error) {
			return Measure(testProgram(threads), MeasureOptions{})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if misses != 2 || hits != 3 {
		t.Errorf("Stats() = %d hits, %d misses; want 3, 2", hits, misses)
	}
}

// TestTraceCacheTranslated: translation is memoized on top of the
// measurement and the measure error is surfaced without caching a trace.
func TestTraceCacheTranslated(t *testing.T) {
	c := NewTraceCache()
	key := CacheKey{Bench: "test", Threads: 4}
	pt1, err := c.Translated(key, func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	})
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := c.Translated(key, func() (*trace.Trace, error) {
		t.Error("measure ran again on a cached key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt1 != pt2 {
		t.Error("translation not shared between lookups")
	}

	boom := errors.New("measure failed")
	if _, err := c.Translated(CacheKey{Bench: "bad"}, func() (*trace.Trace, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Errorf("got %v, want %v", err, boom)
	}
}

// TestBoundedTraceCacheEvictsLRU: past the bound, the least recently
// used entry is evicted and a later lookup for it re-measures.
func TestBoundedTraceCacheEvictsLRU(t *testing.T) {
	c := NewBoundedTraceCache(2)
	var calls int
	measureFor := func(threads int) func() (*trace.Trace, error) {
		return func() (*trace.Trace, error) {
			calls++
			return Measure(testProgram(threads), MeasureOptions{})
		}
	}
	keyA := CacheKey{Bench: "test", Threads: 2}
	keyB := CacheKey{Bench: "test", Threads: 3}
	keyC := CacheKey{Bench: "test", Threads: 4}

	mustMeasure := func(key CacheKey, threads int) {
		t.Helper()
		if _, err := c.Measure(key, measureFor(threads)); err != nil {
			t.Fatal(err)
		}
	}
	mustMeasure(keyA, 2) // cache: A
	mustMeasure(keyB, 3) // cache: B, A
	mustMeasure(keyA, 2) // hit; cache: A, B
	if calls != 2 {
		t.Fatalf("calls = %d before eviction, want 2", calls)
	}
	mustMeasure(keyC, 4) // evicts B (LRU); cache: C, A
	if got := c.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	mustMeasure(keyA, 2) // still cached
	if calls != 3 {
		t.Fatalf("calls = %d after A re-lookup, want 3 (A retained)", calls)
	}
	mustMeasure(keyB, 3) // evicted, must re-measure
	if calls != 4 {
		t.Fatalf("calls = %d after B re-lookup, want 4 (B was evicted)", calls)
	}
}

// TestTraceCacheDoesNotMemoizeContextErrors: a measurement aborted by a
// caller's deadline must not poison the cache — the next caller re-runs
// it and gets the real trace.
func TestTraceCacheDoesNotMemoizeContextErrors(t *testing.T) {
	c := NewTraceCache()
	key := CacheKey{Bench: "test", Threads: 4}
	aborted := fmt.Errorf("measuring: %w", context.DeadlineExceeded)
	if _, err := c.Measure(key, func() (*trace.Trace, error) {
		return nil, aborted
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first lookup error = %v, want DeadlineExceeded", err)
	}
	tr, err := c.Measure(key, func() (*trace.Trace, error) {
		return Measure(testProgram(4), MeasureOptions{})
	})
	if err != nil || tr == nil {
		t.Fatalf("second lookup = (%v, %v), want a real trace", tr, err)
	}
	// Same contract through Translated with a Canceled abort.
	key2 := CacheKey{Bench: "test2", Threads: 2}
	if _, err := c.Translated(key2, func() (*trace.Trace, error) {
		return nil, context.Canceled
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Translated abort = %v, want Canceled", err)
	}
	if _, err := c.Translated(key2, func() (*trace.Trace, error) {
		return Measure(testProgram(2), MeasureOptions{})
	}); err != nil {
		t.Fatalf("Translated retry = %v, want success", err)
	}
}
