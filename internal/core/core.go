// Package core is the extrapolation pipeline — the paper's primary
// contribution assembled from the substrates: measure an n-thread program
// on one (virtual) processor, translate the trace to an idealized
// n-processor timescale, and simulate the target environment to predict
// performance.
//
//	Program ──Measure──▶ Trace ──Translate──▶ ParallelTrace ──Extrapolate──▶ Result
//
// The package also provides the processor-scaling sweep driver used by
// every experiment.
package core

import (
	"context"
	"fmt"

	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// Program is an instrumentable data-parallel program: Setup registers
// collections against the runtime and returns the SPMD body.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Threads is the thread count n the program is built for.
	Threads int
	// Setup registers collections and returns the per-thread body.
	Setup func(rt *pcxx.Runtime) func(*pcxx.Thread)
}

// MeasureOptions configures the 1-processor measurement run.
type MeasureOptions struct {
	// Cost is the measurement host's computation cost model; the zero
	// value means the Sun-4 model.
	Cost pcxx.CostModel
	// EventOverhead is the per-event instrumentation cost to charge (and
	// compensate during translation).
	EventOverhead vtime.Time
	// SizeMode selects remote transfer-size attribution.
	SizeMode pcxx.SizeMode
	// Seed feeds deterministic program randomness.
	Seed uint64
}

// MeasureContext is Measure under a caller deadline: the context is
// checked up front and then polled at safe points inside the measurement
// runtime (event records and compute charges), so a cancelled context
// abandons even a long-running measurement promptly with an error
// satisfying errors.Is against ctx.Err(). Cancellation never perturbs
// the virtual clock or the trace — a run that completes is byte-identical
// to one measured without a context.
func MeasureContext(ctx context.Context, p Program, opts MeasureOptions) (*trace.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: measuring %q: %w", p.Name, err)
	}
	return measure(ctx, p, opts)
}

// Measure runs the program under the instrumented 1-processor runtime and
// returns the merged measurement trace (performance information PI₁).
func Measure(p Program, opts MeasureOptions) (*trace.Trace, error) {
	return measure(context.Background(), p, opts)
}

// measure builds the instrumented runtime and executes the program; a
// cancellable ctx is wired in as the runtime's interrupt poll.
func measure(ctx context.Context, p Program, opts MeasureOptions) (*trace.Trace, error) {
	if p.Setup == nil {
		return nil, fmt.Errorf("core: program %q has no Setup", p.Name)
	}
	if p.Threads <= 0 {
		return nil, fmt.Errorf("core: program %q has invalid thread count %d", p.Name, p.Threads)
	}
	cfg := pcxx.Config{
		Threads:       p.Threads,
		Cost:          opts.Cost,
		EventOverhead: opts.EventOverhead,
		SizeMode:      opts.SizeMode,
		Seed:          opts.Seed,
	}
	if cfg.Cost == (pcxx.CostModel{}) {
		cfg.Cost = pcxx.Sun4()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	if ctx.Done() != nil {
		cfg.Interrupt = ctx.Err
	}
	rt := pcxx.NewRuntime(cfg)
	body := p.Setup(rt)
	tr, err := rt.Run(body)
	if err != nil {
		return nil, fmt.Errorf("core: measuring %q: %w", p.Name, err)
	}
	return tr, nil
}

// Outcome bundles every artifact of one full extrapolation.
type Outcome struct {
	// Measurement is the merged 1-processor trace (PI₁).
	Measurement *trace.Trace
	// Parallel is the translated idealized trace.
	Parallel *translate.ParallelTrace
	// Result is the predicted performance in the target environment
	// (PI₂ᵖ and PM₂ᵖ).
	Result *sim.Result
}

// Extrapolate translates a measurement trace and simulates it against the
// target environment.
func Extrapolate(tr *trace.Trace, cfg sim.Config) (*Outcome, error) {
	return ExtrapolateContext(context.Background(), tr, cfg)
}

// ExtrapolateContext is Extrapolate under a caller deadline: the context
// is checked between the translation and simulation stages and polled
// inside the simulation event loop, so a cancelled request abandons the
// pipeline promptly with an error satisfying errors.Is against ctx.Err().
func ExtrapolateContext(ctx context.Context, tr *trace.Trace, cfg sim.Config) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: extrapolation not started: %w", err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		return nil, err
	}
	res, err := sim.SimulateContext(ctx, pt, cfg)
	if err != nil {
		return nil, err
	}
	return &Outcome{Measurement: tr, Parallel: pt, Result: res}, nil
}

// Run measures the program and extrapolates it to the target environment
// in one call.
func Run(p Program, opts MeasureOptions, cfg sim.Config) (*Outcome, error) {
	return RunContext(context.Background(), p, opts, cfg)
}

// RunContext is Run with the caller's context threaded through every
// pipeline stage.
func RunContext(ctx context.Context, p Program, opts MeasureOptions, cfg sim.Config) (*Outcome, error) {
	tr, err := MeasureContext(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return ExtrapolateContext(ctx, tr, cfg)
}

// ProgramFactory builds a program for a given thread count — how
// benchmarks parameterize processor-scaling sweeps.
type ProgramFactory func(threads int) Program

// SweepProcs measures the program at each thread count and extrapolates
// each to the same number of processors under cfg, returning the scaling
// series. The per-count measurement matches the paper's method: each
// processor count gets its own n-thread, 1-processor measurement run.
// SweepProcs runs sequentially; ParallelSweep is the concurrent form.
func SweepProcs(f ProgramFactory, opts MeasureOptions, cfg sim.Config, procCounts []int) ([]metrics.Point, error) {
	return ParallelSweep(f, opts, cfg, procCounts, 1)
}

// DefaultProcCounts is the paper's processor scaling ladder.
func DefaultProcCounts() []int { return []int{1, 2, 4, 8, 16, 32} }
