package core

import (
	"bytes"
	"context"
	"fmt"

	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// ExtrapolateBatch answers K what-if questions against one measurement:
// the trace is translated once and the simulator advances one machine
// model per config over the shared read-only parallel trace, reusing
// the dense per-lane state between lanes. Each prediction is
// byte-identical to what Extrapolate/ExtrapolateEncoded produces for
// the same (trace, config) pair — batching is purely an amortization of
// the decode and translation passes.
func ExtrapolateBatch(ctx context.Context, tr *trace.Trace, cfgs []sim.Config) ([]*Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: extrapolation not started: %w", err)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		return nil, err
	}
	results, err := sim.SimulateBatchContext(ctx, pt, cfgs)
	if err != nil {
		return nil, err
	}
	measured, ideal := tr.Duration(), pt.Duration()
	out := make([]*Prediction, len(results))
	for i, res := range results {
		out[i] = &Prediction{Measured1P: measured, Ideal: ideal, Result: res}
	}
	return out, nil
}

// ExtrapolateEncodedBatch is ExtrapolateBatch over a binary-encoded
// measurement (either XTRP format, detected by magic): one decode, one
// translation, K simulations. This is the sweep fast path — the
// per-cell streaming pipeline decodes and translates the same bytes
// once per config. For XTRP2 bytes the pattern table is decoded once
// here and every lane shares the materialized result.
func ExtrapolateEncodedBatch(ctx context.Context, enc []byte, cfgs []sim.Config) ([]*Prediction, error) {
	tr, err := trace.ReadBinaryAny(bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	return ExtrapolateBatch(ctx, tr, cfgs)
}
