package core

import (
	"strings"
	"testing"

	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/vtime"
)

// testProgram returns a balanced program with one remote read per thread
// per phase.
func testProgram(threads int) Program {
	return Program{
		Name:    "test",
		Threads: threads,
		Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			c := pcxx.PerThread[float64](rt, "c", 64)
			return func(t *pcxx.Thread) {
				*c.Local(t, t.ID()) = 1
				t.Barrier()
				for i := 0; i < 3; i++ {
					t.Compute(200 * vtime.Microsecond)
					_ = c.Read(t, (t.ID()+1)%threads)
					t.Barrier()
				}
			}
		},
	}
}

func freeConfig() sim.Config {
	return sim.Config{
		MipsRatio: 1,
		Policy:    sim.Policy{Kind: sim.Interrupt},
		Comm:      network.Config{Topology: network.Bus{}},
		Barrier:   sim.BarrierConfig{Algorithm: sim.LinearBarrier},
	}
}

func TestMeasureDefaults(t *testing.T) {
	tr, err := Measure(testProgram(4), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumThreads != 4 {
		t.Fatalf("NumThreads = %d", tr.NumThreads)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureRejectsBadPrograms(t *testing.T) {
	if _, err := Measure(Program{Name: "x", Threads: 2}, MeasureOptions{}); err == nil {
		t.Error("nil Setup accepted")
	}
	p := testProgram(2)
	p.Threads = 0
	if _, err := Measure(p, MeasureOptions{}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestRunPipeline(t *testing.T) {
	out, err := Run(testProgram(4), MeasureOptions{}, freeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Measurement == nil || out.Parallel == nil || out.Result == nil {
		t.Fatal("incomplete outcome")
	}
	// Free environment: predicted time equals the translated ideal.
	if out.Result.TotalTime != out.Parallel.Duration() {
		t.Fatalf("free-env time %v != ideal %v", out.Result.TotalTime, out.Parallel.Duration())
	}
	// Balanced program: ideal parallel time is 1/4 of serial.
	if got, want := out.Result.TotalTime, out.Measurement.Duration()/4; got != want {
		t.Fatalf("parallel %v, want %v", got, want)
	}
}

func TestSweepProcs(t *testing.T) {
	points, err := SweepProcs(func(n int) Program { return testProgram(n) },
		MeasureOptions{}, freeConfig(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// testProgram is weak-scaled (constant per-thread work), so parallel
	// time stays constant and the strong-scaling speedup metric reads 1.
	for i := 1; i < len(points); i++ {
		if points[i].Time != points[0].Time {
			t.Errorf("point %d: time %v, want %v", i, points[i].Time, points[0].Time)
		}
	}
	sp := metrics.Speedup(points)
	if sp[2] < 0.99 || sp[2] > 1.01 {
		t.Errorf("weak-scaling speedup at 4 procs = %.3f, want 1", sp[2])
	}
}

func TestSweepStrongScaling(t *testing.T) {
	// A fixed-size program (total work constant, split over threads)
	// shows real speedup in a free environment.
	total := 1200 * vtime.Microsecond
	strong := func(n int) Program {
		return Program{
			Name:    "strong",
			Threads: n,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				return func(t *pcxx.Thread) {
					t.Compute(total / vtime.Time(n))
					t.Barrier()
				}
			},
		}
	}
	points, err := SweepProcs(strong, MeasureOptions{}, freeConfig(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	sp := metrics.Speedup(points)
	if sp[2] < 3.99 || sp[2] > 4.01 {
		t.Errorf("strong-scaling speedup at 4 procs = %.3f, want 4", sp[2])
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	_, err := SweepProcs(func(n int) Program { return Program{Name: "bad", Threads: n} },
		MeasureOptions{}, freeConfig(), []int{1})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %v does not identify the failing program", err)
	}
}

func TestExtrapolateRejectsBadConfig(t *testing.T) {
	tr, err := Measure(testProgram(2), MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := freeConfig()
	cfg.MipsRatio = -1
	if _, err := Extrapolate(tr, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDefaultProcCounts(t *testing.T) {
	want := []int{1, 2, 4, 8, 16, 32}
	got := DefaultProcCounts()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMeasureSeedAffectsOnlyRandomness(t *testing.T) {
	// Same seed ⇒ identical traces; the structure (event kinds per
	// thread) is seed-independent for deterministic programs.
	a, err := Measure(testProgram(3), MeasureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(testProgram(3), MeasureOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same-seed traces differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same-seed traces diverge at %d", i)
		}
	}
}
