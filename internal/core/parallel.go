package core

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"extrap/internal/metrics"
	"extrap/internal/pool"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// ParallelSweep is the concurrent form of SweepProcs: it measures and
// extrapolates every processor count of the ladder across at most
// workers goroutines (≤ 0 selects GOMAXPROCS). Results land in ladder
// order and errors surface exactly as the sequential sweep would report
// them, so any worker count produces identical output — measurement is
// deterministic (fixed seed) and each point's pipeline is independent.
func ParallelSweep(f ProgramFactory, opts MeasureOptions, cfg sim.Config, procCounts []int, workers int) ([]metrics.Point, error) {
	return ParallelSweepContext(context.Background(), f, opts, cfg, procCounts, workers)
}

// ParallelSweepContext is ParallelSweep under a caller deadline: each
// ladder point checks the context before starting and threads it through
// its measure/translate/simulate pipeline, so one cancellation abandons
// the whole sweep.
func ParallelSweepContext(ctx context.Context, f ProgramFactory, opts MeasureOptions, cfg sim.Config, procCounts []int, workers int) ([]metrics.Point, error) {
	points := make([]metrics.Point, len(procCounts))
	err := pool.Run(workers, len(procCounts), func(i int) error {
		n := procCounts[i]
		out, err := RunContext(ctx, f(n), opts, cfg)
		if err != nil {
			return fmt.Errorf("core: sweep at %d procs: %w", n, err)
		}
		points[i] = metrics.Point{Procs: n, Time: out.Result.TotalTime}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// CacheKey identifies one deterministic measurement run for memoization:
// the program (benchmark name plus any variant tag), its size
// parameters, the thread count, and the full measurement options. Two
// runs with equal keys produce byte-identical traces because the
// measurement runtime is seeded deterministically and programs take no
// other input.
type CacheKey struct {
	// Bench names the program; include any variant parameters that
	// change the program's behavior (e.g. a matmul distribution pair).
	Bench string
	// N and Iters are the problem-size parameters.
	N, Iters int
	// Verify records whether result verification ran (it changes the
	// instruction stream, hence the trace).
	Verify bool
	// Threads is the measured thread count.
	Threads int
	// Opts is the full measurement configuration.
	Opts MeasureOptions
}

// cacheEntry holds one memoized measurement and its lazily computed
// translation, guarded by its own mutex so concurrent requests for the
// same key share one measurement run (singleflight) while requests for
// other keys proceed independently. In an encoded cache, enc holds the
// compact binary trace instead of tr: bytes are immutable, so aliasing
// between concurrent consumers is impossible by construction.
type cacheEntry struct {
	mu         sync.Mutex
	measured   bool
	tr         *trace.Trace
	enc        []byte
	err        error
	translated bool
	pt         *translate.ParallelTrace
	terr       error
}

// lruNode is what the recency list holds: the key (for map removal on
// eviction) and its entry.
type lruNode struct {
	key CacheKey
	e   *cacheEntry
}

// TraceBackend is a durable tier behind a TraceCache: measurements the
// memory cache does not hold are looked up here (as encoded trace bytes
// in the named format) before being re-measured, and fresh measurements
// are written through. internal/store implements it with a
// content-addressed on-disk store, keying each format separately
// (CacheKey.CanonicalFormat) so XTRP1 and XTRP2 artifacts of one
// measurement coexist.
//
// Both methods must be safe for concurrent use. GetTrace returns
// (payload, true) only for bytes it can vouch for (the store verifies
// checksums and treats corruption as a miss); PutTrace is best-effort —
// a write failure loses durability, never correctness, so it reports
// nothing here and is counted by the implementation instead.
type TraceBackend interface {
	GetTrace(key CacheKey, format trace.Format) ([]byte, bool)
	PutTrace(key CacheKey, format trace.Format, enc []byte)
}

// TraceCache memoizes measurement traces (and their translations) across
// the cells of a parameter-grid experiment. Grids vary only the
// simulation Config between cells, so each distinct measurement runs
// once and is then simulated under every configuration — which is safe
// because Translate and Simulate treat their inputs as read-only (a
// guard test enforces this).
//
// A TraceCache is safe for concurrent use. Cached traces are shared, not
// copied: callers must not mutate them.
type TraceCache struct {
	mu      sync.Mutex
	max     int
	encoded bool  // cache compact encoded bytes instead of shared traces
	maxB    int64 // per-trace encoded-size budget (0 = unlimited)
	format  trace.Format
	entries map[CacheKey]*list.Element
	order   *list.List // front = most recently used; values are *lruNode
	// flights tracks entries whose first measurement is still running,
	// keyed independently of the LRU so eviction pressure cannot detach
	// concurrent requests from an in-progress measurement (see entry).
	flights map[CacheKey]*cacheEntry
	backend TraceBackend
	lookups atomic.Int64
	misses  atomic.Int64
	// Compression accounting across fresh encodes: rawBytes is what the
	// flat XTRP1 encoding would have cost, encBytes what the configured
	// format actually cost.
	rawBytes atomic.Int64
	encBytes atomic.Int64
}

// ErrTraceTooLarge reports a measurement whose encoded size exceeds an
// encoded cache's per-trace budget. Serving layers map it to a
// payload-too-large response.
var ErrTraceTooLarge = errors.New("core: measured trace exceeds the trace size budget")

// NewTraceCache returns an empty unbounded cache — the right shape for a
// one-shot experiment run, whose key population is fixed by the grid.
func NewTraceCache() *TraceCache {
	return NewBoundedTraceCache(0)
}

// NewBoundedTraceCache returns a cache holding at most maxEntries
// distinct measurements, evicting the least recently used beyond that
// (maxEntries ≤ 0 means unbounded). Long-lived serving paths must use a
// bound: cache keys derive from client-controlled request parameters, so
// an unbounded cache lets a client iterating sizes grow server memory
// without limit.
func NewBoundedTraceCache(maxEntries int) *TraceCache {
	return &TraceCache{
		max:     maxEntries,
		entries: make(map[CacheKey]*list.Element),
		order:   list.New(),
		flights: make(map[CacheKey]*cacheEntry),
	}
}

// SetBackend attaches a durable tier behind the memory cache: misses
// consult the backend before re-measuring, and fresh measurements are
// written through as encoded XTRP1 bytes. Attach the backend before the
// cache is shared across goroutines (typically right after
// construction); it must not change while lookups are running.
func (c *TraceCache) SetBackend(b TraceBackend) { c.backend = b }

// SetFormat selects the binary format the cache encodes fresh
// measurements into (and the key scheme it consults the backend under).
// The zero value means XTRP1. Like SetBackend, set it before the cache
// is shared across goroutines.
func (c *TraceCache) SetFormat(f trace.Format) { c.format = f }

// Format returns the configured encoding format (XTRP1 if unset).
func (c *TraceCache) Format() trace.Format {
	if c.format == 0 {
		return trace.FormatXTRP1
	}
	return c.format
}

// CompressionStats reports the cache's encoding economics across fresh
// measurements: RawBytes is what the flat 37-byte-per-event XTRP1
// encoding would occupy, EncodedBytes what the configured format
// actually produced. Backend hits are excluded (their raw size is
// unknown without a decode).
type CompressionStats struct {
	RawBytes     int64
	EncodedBytes int64
}

// Compression returns the cache's compression accounting.
func (c *TraceCache) Compression() CompressionStats {
	return CompressionStats{RawBytes: c.rawBytes.Load(), EncodedBytes: c.encBytes.Load()}
}

// backendGet looks the key up in the durable tier under the cache's
// format, falling back to the XTRP1 key so stores written before a
// format migration keep their value: decode auto-detects by magic, so
// fallback bytes are served as-is.
func (c *TraceCache) backendGet(key CacheKey) ([]byte, bool) {
	f := c.Format()
	if enc, ok := c.backend.GetTrace(key, f); ok {
		return enc, true
	}
	if f != trace.FormatXTRP1 {
		if enc, ok := c.backend.GetTrace(key, trace.FormatXTRP1); ok {
			return enc, true
		}
	}
	return nil, false
}

// NewEncodedTraceCache returns a bounded cache that stores measurements
// as compact XTRP1 bytes rather than live *trace.Trace values. Consumers
// decode their own streaming cursor from the immutable bytes, so a hit
// can never be mutated by another cell, and resident size per entry is
// the 37-byte-per-event encoding instead of the in-memory event slice
// plus translation. maxTraceBytes (> 0) rejects any measurement whose
// encoding exceeds the budget with ErrTraceTooLarge.
func NewEncodedTraceCache(maxEntries int, maxTraceBytes int64) *TraceCache {
	c := NewBoundedTraceCache(maxEntries)
	c.encoded = true
	c.maxB = maxTraceBytes
	return c
}

// Streams reports whether the cache stores encoded bytes (the streaming
// serving mode) rather than shared in-memory traces.
func (c *TraceCache) Streams() bool { return c.encoded }

// entry returns (creating if needed) the entry for key, refreshing its
// recency and evicting the least recently used entry past the bound.
// An evicted entry stays valid for callers already holding it; its next
// lookup simply re-measures.
//
// Measurement is single-flight per key even under eviction pressure: a
// newly created entry is registered in c.flights until its first
// measurement attempt finishes (settle), so a concurrent request for the
// same key joins the in-progress run even if the LRU has already evicted
// the entry — without the flights map, N concurrent misses could run up
// to N identical measurements whenever churn on other keys pushes the
// shared entry out between their lookups.
func (c *TraceCache) entry(key CacheKey) *cacheEntry {
	c.lookups.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruNode).e
	}
	if e, ok := c.flights[key]; ok {
		return e
	}
	e := &cacheEntry{}
	c.flights[key] = e
	c.entries[key] = c.order.PushFront(&lruNode{key: key, e: e})
	if c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruNode).key)
	}
	return e
}

// settle unregisters an entry's flight after its first measurement
// attempt completes — successfully, with a memoized failure, or with a
// non-memoized context abort (leaving an aborted flight registered would
// leak one map entry per never-retried key).
func (c *TraceCache) settle(key CacheKey, e *cacheEntry) {
	c.mu.Lock()
	if c.flights[key] == e {
		delete(c.flights, key)
	}
	c.mu.Unlock()
}

// Len reports the number of entries currently cached.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// measure runs or reuses the memoized measurement; the caller holds
// e.mu. A configured backend is consulted before measuring — a durable
// hit decodes the stored bytes instead of re-running the program — and
// fresh measurements are written through. Context cancellations are NOT
// memoized: an aborted measurement returns its error to that caller
// only, and the next caller re-runs the measurement under its own
// deadline — one impatient request never poisons the cache for everyone
// else. Deterministic failures (bad program, malformed trace) are
// memoized like successes.
func (c *TraceCache) measureLocked(key CacheKey, e *cacheEntry, measure func() (*trace.Trace, error)) (*trace.Trace, error) {
	if e.measured {
		return e.tr, e.err
	}
	if c.backend != nil {
		if enc, ok := c.backendGet(key); ok {
			if tr, err := trace.ReadBinaryAny(bytes.NewReader(enc)); err == nil {
				e.tr, e.err, e.measured = tr, nil, true
				c.settle(key, e)
				return e.tr, nil
			}
			// An artifact that passed the store's checksum but fails to
			// decode means a format skew, not corruption; fall through to
			// a fresh measurement (and overwrite it below).
		}
	}
	c.misses.Add(1)
	tr, err := measure()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.settle(key, e)
		return nil, err
	}
	e.tr, e.err, e.measured = tr, err, true
	if err == nil && c.backend != nil {
		raw := trace.EncodedSize(tr.Header(), len(tr.Events))
		var buf bytes.Buffer
		buf.Grow(int(raw))
		if werr := trace.WriteBinaryFormat(&buf, tr, c.Format()); werr == nil {
			c.rawBytes.Add(raw)
			c.encBytes.Add(int64(buf.Len()))
			c.backend.PutTrace(key, c.Format(), buf.Bytes())
		}
	}
	c.settle(key, e)
	return e.tr, e.err
}

// encodedLocked runs or reuses the memoized measurement in encoded form;
// the caller holds e.mu. A configured backend is consulted before
// measuring (the stored artifact IS the encoded form, so a durable hit
// costs no decode at all), and fresh encodings are written through. The
// measured trace is immediately encoded and released — only the compact
// immutable bytes stay resident. A trace past the size budget is
// memoized as an ErrTraceTooLarge failure (the measurement is
// deterministic, so it would exceed the budget every time) — including
// one arriving from the backend, whose encoded size is just as
// deterministic.
func (c *TraceCache) encodedLocked(key CacheKey, e *cacheEntry, measure func() (*trace.Trace, error)) ([]byte, error) {
	if e.measured {
		return e.enc, e.err
	}
	if c.backend != nil {
		if enc, ok := c.backendGet(key); ok {
			if c.maxB > 0 && int64(len(enc)) > c.maxB {
				e.err = fmt.Errorf("%w: %d encoded bytes, budget %d", ErrTraceTooLarge, len(enc), c.maxB)
			} else {
				e.enc = enc
			}
			e.measured = true
			c.settle(key, e)
			return e.enc, e.err
		}
	}
	c.misses.Add(1)
	tr, err := measure()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.settle(key, e)
		return nil, err
	}
	if err == nil {
		f := c.Format()
		raw := trace.EncodedSize(tr.Header(), len(tr.Events))
		// XTRP1's size is exact arithmetic, so its budget check runs
		// before encoding a single byte; XTRP2's size depends on what the
		// miner finds, so its check runs on the actual encoding.
		if f == trace.FormatXTRP1 && c.maxB > 0 && raw > c.maxB {
			err = fmt.Errorf("%w: %d encoded bytes, budget %d", ErrTraceTooLarge, raw, c.maxB)
		} else {
			var buf bytes.Buffer
			if f == trace.FormatXTRP1 {
				buf.Grow(int(raw))
			}
			if werr := trace.WriteBinaryFormat(&buf, tr, f); werr != nil {
				err = werr
			} else if c.maxB > 0 && int64(buf.Len()) > c.maxB {
				err = fmt.Errorf("%w: %d encoded bytes, budget %d", ErrTraceTooLarge, buf.Len(), c.maxB)
			} else {
				e.enc = buf.Bytes()
				c.rawBytes.Add(raw)
				c.encBytes.Add(int64(buf.Len()))
			}
		}
	}
	e.err, e.measured = err, true
	if e.err == nil && c.backend != nil {
		c.backend.PutTrace(key, c.Format(), e.enc)
	}
	c.settle(key, e)
	return e.enc, e.err
}

// Encoded returns the memoized measurement for key as immutable XTRP1
// bytes, running measure on first use. Valid only on an encoded cache.
func (c *TraceCache) Encoded(key CacheKey, measure func() (*trace.Trace, error)) ([]byte, error) {
	if !c.encoded {
		return nil, errors.New("core: Encoded called on a non-encoded TraceCache")
	}
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	return c.encodedLocked(key, e, measure)
}

// Measure returns the memoized measurement trace for key, running
// measure on first use. Concurrent callers with the same key block until
// the single measurement completes and then share its trace. On an
// encoded cache each caller receives its own freshly decoded copy, so
// mutating it cannot leak into other cells.
func (c *TraceCache) Measure(key CacheKey, measure func() (*trace.Trace, error)) (*trace.Trace, error) {
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.encoded {
		enc, err := c.encodedLocked(key, e, measure)
		if err != nil {
			return nil, err
		}
		return trace.ReadBinaryAny(bytes.NewReader(enc))
	}
	return c.measureLocked(key, e, measure)
}

// Translated returns the memoized translation of the measurement for
// key, measuring and translating on first use. On an encoded cache the
// translation is rebuilt per call from a private decode (nothing shared
// escapes); streaming consumers should prefer Encoded with
// ExtrapolateEncoded instead.
func (c *TraceCache) Translated(key CacheKey, measure func() (*trace.Trace, error)) (*translate.ParallelTrace, error) {
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.encoded {
		enc, err := c.encodedLocked(key, e, measure)
		if err != nil {
			return nil, err
		}
		tr, err := trace.ReadBinaryAny(bytes.NewReader(enc))
		if err != nil {
			return nil, err
		}
		return translate.Translate(tr)
	}
	tr, err := c.measureLocked(key, e, measure)
	if err != nil {
		return nil, err
	}
	if !e.translated {
		e.pt, e.terr = translate.Translate(tr)
		e.translated = true
	}
	return e.pt, e.terr
}

// Stats reports cache effectiveness: hits is the number of lookups
// served from memory, misses the number of measurement runs performed.
func (c *TraceCache) Stats() (hits, misses int64) {
	m := c.misses.Load()
	return c.lookups.Load() - m, m
}
