package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"extrap/internal/metrics"
	"extrap/internal/pool"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// ParallelSweep is the concurrent form of SweepProcs: it measures and
// extrapolates every processor count of the ladder across at most
// workers goroutines (≤ 0 selects GOMAXPROCS). Results land in ladder
// order and errors surface exactly as the sequential sweep would report
// them, so any worker count produces identical output — measurement is
// deterministic (fixed seed) and each point's pipeline is independent.
func ParallelSweep(f ProgramFactory, opts MeasureOptions, cfg sim.Config, procCounts []int, workers int) ([]metrics.Point, error) {
	return ParallelSweepContext(context.Background(), f, opts, cfg, procCounts, workers)
}

// ParallelSweepContext is ParallelSweep under a caller deadline: each
// ladder point checks the context before starting and threads it through
// its measure/translate/simulate pipeline, so one cancellation abandons
// the whole sweep.
func ParallelSweepContext(ctx context.Context, f ProgramFactory, opts MeasureOptions, cfg sim.Config, procCounts []int, workers int) ([]metrics.Point, error) {
	points := make([]metrics.Point, len(procCounts))
	err := pool.Run(workers, len(procCounts), func(i int) error {
		n := procCounts[i]
		out, err := RunContext(ctx, f(n), opts, cfg)
		if err != nil {
			return fmt.Errorf("core: sweep at %d procs: %w", n, err)
		}
		points[i] = metrics.Point{Procs: n, Time: out.Result.TotalTime}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// CacheKey identifies one deterministic measurement run for memoization:
// the program (benchmark name plus any variant tag), its size
// parameters, the thread count, and the full measurement options. Two
// runs with equal keys produce byte-identical traces because the
// measurement runtime is seeded deterministically and programs take no
// other input.
type CacheKey struct {
	// Bench names the program; include any variant parameters that
	// change the program's behavior (e.g. a matmul distribution pair).
	Bench string
	// N and Iters are the problem-size parameters.
	N, Iters int
	// Verify records whether result verification ran (it changes the
	// instruction stream, hence the trace).
	Verify bool
	// Threads is the measured thread count.
	Threads int
	// Opts is the full measurement configuration.
	Opts MeasureOptions
}

// cacheEntry holds one memoized measurement and its lazily computed
// translation. The sync.Onces give singleflight semantics: concurrent
// requests for the same key share one measurement run instead of
// duplicating it.
type cacheEntry struct {
	measureOnce   sync.Once
	tr            *trace.Trace
	err           error
	translateOnce sync.Once
	pt            *translate.ParallelTrace
	terr          error
}

// TraceCache memoizes measurement traces (and their translations) across
// the cells of a parameter-grid experiment. Grids vary only the
// simulation Config between cells, so each distinct measurement runs
// once and is then simulated under every configuration — which is safe
// because Translate and Simulate treat their inputs as read-only (a
// guard test enforces this).
//
// A TraceCache is safe for concurrent use. Cached traces are shared, not
// copied: callers must not mutate them.
type TraceCache struct {
	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry
	lookups atomic.Int64
	misses  atomic.Int64
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[CacheKey]*cacheEntry)}
}

// entry returns (creating if needed) the entry for key.
func (c *TraceCache) entry(key CacheKey) *cacheEntry {
	c.lookups.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	return e
}

// Measure returns the memoized measurement trace for key, running
// measure on first use. Concurrent callers with the same key block until
// the single measurement completes and then share its trace.
func (c *TraceCache) Measure(key CacheKey, measure func() (*trace.Trace, error)) (*trace.Trace, error) {
	e := c.entry(key)
	e.measureOnce.Do(func() {
		c.misses.Add(1)
		e.tr, e.err = measure()
	})
	return e.tr, e.err
}

// Translated returns the memoized translation of the measurement for
// key, measuring and translating on first use.
func (c *TraceCache) Translated(key CacheKey, measure func() (*trace.Trace, error)) (*translate.ParallelTrace, error) {
	e := c.entry(key)
	e.measureOnce.Do(func() {
		c.misses.Add(1)
		e.tr, e.err = measure()
	})
	if e.err != nil {
		return nil, e.err
	}
	e.translateOnce.Do(func() {
		e.pt, e.terr = translate.Translate(e.tr)
	})
	return e.pt, e.terr
}

// Stats reports cache effectiveness: hits is the number of lookups
// served from memory, misses the number of measurement runs performed.
func (c *TraceCache) Stats() (hits, misses int64) {
	m := c.misses.Load()
	return c.lookups.Load() - m, m
}
