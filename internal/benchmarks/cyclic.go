package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
	"extrap/internal/vtime"
)

// Cyclic is the cyclic reduction benchmark: it solves a batch of
// tridiagonal systems by recursively eliminating odd-indexed unknowns
// (log₂ m forward levels) and back-substituting (log₂ m backward levels).
// Each level touches rows at stride 2^k, so communication reaches farther
// neighbors as the computation proceeds — a classic latency-sensitive
// pattern. The batch (Iters independent systems sharing the reduction
// structure) gives each synchronization phase a realistic amount of
// computation, as the original benchmark's problem sizes did.
type Cyclic struct{}

func init() { register(Cyclic{}) }

// Name returns "cyclic".
func (Cyclic) Name() string { return "cyclic" }

// Description matches Table 2.
func (Cyclic) Description() string { return "Cyclic reduction computation" }

// DefaultSize solves a batch of 32 systems of 1024 rows.
func (Cyclic) DefaultSize() Size { return Size{N: 1024, Iters: 32} }

// triRow is one row of a tridiagonal system: coefficients, right-hand
// side, and the solution slot.
type triRow struct {
	a, b, c, d, x float64
}

const triRowBytes = 40

// batchRow holds row i of every system in the batch.
type batchRow struct {
	sys []triRow
}

// cyclicSystems builds the deterministic batch: diagonally dominant
// systems, so the reduction is stable.
func cyclicSystems(m, batch int) [][]triRow {
	rng := vtime.NewRand(0xcc11c)
	out := make([][]triRow, batch)
	for b := range out {
		rows := make([]triRow, m)
		for i := range rows {
			rows[i] = triRow{
				a: -1 + 0.1*rng.Float64(),
				b: 4 + rng.Float64(),
				c: -1 + 0.1*rng.Float64(),
				d: rng.Float64() * 10,
			}
		}
		rows[0].a = 0
		rows[m-1].c = 0
		out[b] = rows
	}
	return out
}

// cyclicReduceSeq runs the whole algorithm sequentially on one system —
// the reference for verification and the source of the update rules.
func cyclicReduceSeq(rows []triRow) {
	m := len(rows)
	for s := 1; s < m; s *= 2 {
		// Snapshot: updates at one level read pre-level neighbor values.
		old := make([]triRow, m)
		copy(old, rows)
		for i := 2*s - 1; i < m; i += 2 * s {
			rows[i] = cyclicForwardUpdate(old[i], neighborRow(old, i-s), neighborRow(old, i+s))
		}
	}
	for s := m; s >= 1; s /= 2 {
		for i := s - 1; i < m; i += 2 * s {
			rows[i].x = cyclicBackUpdate(rows[i], neighborX(rows, i-s), neighborX(rows, i+s))
		}
	}
}

// neighborRow returns rows[i] or a zero row when i is out of range.
func neighborRow(rows []triRow, i int) triRow {
	if i < 0 || i >= len(rows) {
		return triRow{}
	}
	return rows[i]
}

// neighborX returns rows[i].x or 0 when i is out of range.
func neighborX(rows []triRow, i int) float64 {
	if i < 0 || i >= len(rows) {
		return 0
	}
	return rows[i].x
}

// cyclicForwardUpdate eliminates row r's dependence on its stride
// neighbors. Shared verbatim by the parallel program and the reference.
func cyclicForwardUpdate(r, left, right triRow) triRow {
	var alpha, beta float64
	if left.b != 0 {
		alpha = r.a / left.b
	}
	if right.b != 0 {
		beta = r.c / right.b
	}
	return triRow{
		a: -alpha * left.a,
		b: r.b - alpha*left.c - beta*right.a,
		c: -beta * right.c,
		d: r.d - alpha*left.d - beta*right.d,
		x: r.x,
	}
}

// cyclicBackUpdate solves for x given the already-known stride-neighbor
// solutions.
func cyclicBackUpdate(r triRow, xLeft, xRight float64) float64 {
	return (r.d - r.a*xLeft - r.c*xRight) / r.b
}

// Factory builds the Cyclic program: rows block-distributed, one barrier
// per reduction level. Forward levels read the coefficient part of each
// neighbor batch row; back substitution reads only the solutions.
func (Cyclic) Factory(size Size) core.ProgramFactory {
	m := ceilPow2(size.N)
	batch := size.Iters
	if batch <= 0 {
		batch = 32
	}
	initial := cyclicSystems(m, batch)
	return func(threads int) core.Program {
		return core.Program{
			Name:    "cyclic",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				rowBytes := int64(batch * triRowBytes)
				rows := pcxx.NewCollection[batchRow](rt, "rows", dist.NewBlock(m, threads), rowBytes)
				snap := pcxx.NewCollection[batchRow](rt, "snap", dist.NewBlock(m, threads), rowBytes)
				return func(t *pcxx.Thread) {
					rows.ForOwned(t, func(i int) {
						br := rows.Local(t, i)
						br.sys = make([]triRow, batch)
						sn := snap.Local(t, i)
						sn.sys = make([]triRow, batch)
						for b := 0; b < batch; b++ {
							br.sys[b] = initial[b][i]
						}
					})
					t.Mem(rows.LocalCount(t) * batch * triRowBytes * 2)
					t.Barrier()

					// Forward elimination.
					for s := 1; s < m; s *= 2 {
						rows.ForOwned(t, func(i int) {
							copy(snap.Local(t, i).sys, rows.Local(t, i).sys)
						})
						t.Mem(rows.LocalCount(t) * batch * triRowBytes)
						t.Barrier()
						for i := 2*s - 1; i < m; i += 2 * s {
							if rows.Owner(i) != t.ID() {
								continue
							}
							mine := snap.Local(t, i)
							var left, right *batchRow
							if i-s >= 0 {
								left = snap.ReadPart(t, i-s, int64(batch*32))
							}
							if i+s < m {
								right = snap.ReadPart(t, i+s, int64(batch*32))
							}
							out := rows.Local(t, i)
							for b := 0; b < batch; b++ {
								var l, rr triRow
								if left != nil {
									l = left.sys[b]
								}
								if right != nil {
									rr = right.sys[b]
								}
								out.sys[b] = cyclicForwardUpdate(mine.sys[b], l, rr)
							}
							t.Flops(14 * batch)
						}
						t.Barrier()
					}

					// Back substitution: the deepest level solves the one
					// fully reduced row (m−1); each shallower level solves
					// rows using already-known neighbors at ±s.
					for s := m; s >= 1; s /= 2 {
						for i := s - 1; i < m; i += 2 * s {
							if rows.Owner(i) != t.ID() {
								continue
							}
							var left, right *batchRow
							if i-s >= 0 {
								left = rows.ReadPart(t, i-s, int64(batch*8))
							}
							if i+s < m {
								right = rows.ReadPart(t, i+s, int64(batch*8))
							}
							mine := rows.Local(t, i)
							for b := 0; b < batch; b++ {
								xl, xr := 0.0, 0.0
								if left != nil {
									xl = left.sys[b].x
								}
								if right != nil {
									xr = right.sys[b].x
								}
								mine.sys[b].x = cyclicBackUpdate(mine.sys[b], xl, xr)
							}
							t.Flops(6 * batch)
						}
						t.Barrier()
					}

					if size.Verify {
						fresh := cyclicSystems(m, batch)
						for b := 0; b < batch; b++ {
							ref := make([]triRow, m)
							copy(ref, fresh[b])
							cyclicReduceSeq(ref)
							rows.ForOwned(t, func(i int) {
								got := rows.Local(t, i).sys[b].x
								verifyf(math.Abs(got-ref[i].x) < 1e-9*(1+math.Abs(ref[i].x)),
									"cyclic: system %d x[%d] = %v, want %v", b, i, got, ref[i].x)
							})
						}
					}
				}
			},
		}
	}
}
