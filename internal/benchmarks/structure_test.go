package benchmarks

// Structure tests pin each benchmark's communication/synchronization
// shape: barrier counts and remote-access counts as functions of the
// problem size and thread count. They catch accidental changes to the
// programs' parallel structure that correctness checks alone would miss
// (a benchmark can compute the right answer with the wrong trace).

import (
	"testing"

	"extrap/internal/core"
	"extrap/internal/trace"
)

// statsOf measures a benchmark and returns its trace statistics.
func statsOf(t *testing.T, name string, size Size, threads int) trace.Stats {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	size.Verify = false
	tr, err := core.Measure(b.Factory(size)(threads), core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return trace.ComputeStats(tr)
}

func TestGridBarrierFormula(t *testing.T) {
	// Grid: 1 setup barrier + 2 per Jacobi sweep.
	for _, iters := range []int{10, 50} {
		s := statsOf(t, "grid", Size{N: 16, Iters: iters}, 4)
		want := int64(1 + 2*iters)
		if s.Barriers != want {
			t.Errorf("iters=%d: barriers = %d, want %d", iters, s.Barriers, want)
		}
	}
}

func TestGridRemoteReadFormula(t *testing.T) {
	// On a 2×2 tile grid each used thread has exactly 2 neighbors: 8
	// strip reads per sweep in total.
	const iters = 10
	s := statsOf(t, "grid", Size{N: 16, Iters: iters}, 4)
	if want := int64(8 * iters); s.RemoteReads != want {
		t.Errorf("remote reads = %d, want %d", s.RemoteReads, want)
	}
	// One thread: no neighbors, no remote reads.
	s1 := statsOf(t, "grid", Size{N: 16, Iters: iters}, 1)
	if s1.RemoteReads != 0 {
		t.Errorf("1-thread grid has %d remote reads", s1.RemoteReads)
	}
}

func TestCyclicBarrierFormula(t *testing.T) {
	// Cyclic on m=2^q rows: 1 init barrier + per forward level (snapshot
	// barrier + level barrier) × q + back-substitution barriers (q+1).
	m := 64 // q = 6
	s := statsOf(t, "cyclic", Size{N: m, Iters: 2}, 4)
	q := int64(6)
	want := 1 + 2*q + (q + 1)
	if s.Barriers != want {
		t.Errorf("barriers = %d, want %d", s.Barriers, want)
	}
}

func TestSortStageFormula(t *testing.T) {
	// Bitonic over p=2^k thread blocks: k(k+1)/2 merge stages, each with
	// a snapshot barrier and an update barrier, plus 1 after local sort.
	for _, threads := range []int{2, 4, 8} {
		s := statsOf(t, "sort", Size{N: 512}, threads)
		k := int64(0)
		for 1<<k < threads {
			k++
		}
		stages := k * (k + 1) / 2
		want := 1 + 2*stages
		if s.Barriers != want {
			t.Errorf("threads=%d: barriers = %d, want %d", threads, s.Barriers, want)
		}
		// Every thread reads its partner's whole block each stage.
		if wantReads := stages * int64(threads); s.RemoteReads != wantReads {
			t.Errorf("threads=%d: remote reads = %d, want %d", threads, s.RemoteReads, wantReads)
		}
	}
}

func TestEmbarMinimalCommunication(t *testing.T) {
	// Embar's only communication is the log-tree tally reduction:
	// (n−1) rounds of 2 reads each (bins + sums).
	for _, threads := range []int{2, 4, 8} {
		s := statsOf(t, "embar", Size{N: 8}, threads)
		if want := int64(2 * (threads - 1)); s.RemoteReads != want {
			t.Errorf("threads=%d: remote reads = %d, want %d", threads, s.RemoteReads, want)
		}
	}
}

func TestPoissonAllToAllFormula(t *testing.T) {
	// Two transposes, each reading every other thread's block once.
	for _, threads := range []int{2, 4, 8} {
		s := statsOf(t, "poisson", Size{N: 16}, threads)
		if want := int64(2 * threads * (threads - 1)); s.RemoteReads != want {
			t.Errorf("threads=%d: remote reads = %d, want %d", threads, s.RemoteReads, want)
		}
		if s.Barriers != 5 {
			t.Errorf("threads=%d: barriers = %d, want 5", threads, s.Barriers)
		}
	}
}

func TestSparseGatherBounded(t *testing.T) {
	// The gather phase reads each remote owner at most once per CG
	// iteration: remote reads ≤ iters · threads · (threads−1), and far
	// fewer than the per-entry count (≈ nnz · iters).
	const iters, n = 6, 4
	s := statsOf(t, "sparse", Size{N: 256, Iters: iters}, n)
	// Gathers: ≤ n(n−1) per iteration. Reductions: 3 per iteration plus
	// the initial one, each costing ≤ 2(n−1) reads (tree + broadcast).
	maxBulk := int64(iters*n*(n-1) + (3*iters+1)*2*(n-1))
	if s.RemoteReads > maxBulk {
		t.Errorf("remote reads = %d exceed bulk bound %d", s.RemoteReads, maxBulk)
	}
	// And the whole point of the gather: far below per-entry reads
	// (~nnz × iters ≈ 9000 for this size).
	if s.RemoteReads > 1000 {
		t.Errorf("remote reads = %d suggest per-entry communication returned", s.RemoteReads)
	}
	if s.RemoteReads == 0 {
		t.Error("sparse gathered nothing")
	}
}

func TestMgridLevelsPresent(t *testing.T) {
	// 32→4 gives 4 levels; every level contributes smoothing barriers,
	// so a V-cycle has far more barriers than a flat Jacobi of the same
	// sweep count.
	s := statsOf(t, "mgrid", Size{N: 32, Iters: 1}, 4)
	// Per V-cycle: levels 32,16,8 do pre(2)+post(1) smooth sweeps × 2
	// barriers + residual(1) + restrict(1) + prolong(1); coarsest does 10
	// sweeps × 2. Plus 1 init barrier.
	want := int64(1 + 3*(3*2+3) + 10*2)
	if s.Barriers != want {
		t.Errorf("barriers = %d, want %d", s.Barriers, want)
	}
}

func TestMatmulEventScaling(t *testing.T) {
	// Matmul's barrier count per r-iteration: broadcast + multiply +
	// segment + (pc−1) folds + result = 4 + pc − 1... pinned here via
	// total: n iterations × (4 + pc) barriers + 2 setup.
	s := statsOf(t, "matmul", Size{N: 8}, 4) // pc = 2
	perIter := int64(4 + 2 - 1)
	want := 2 + 8*perIter
	if s.Barriers != want {
		t.Errorf("barriers = %d, want %d", s.Barriers, want)
	}
}
