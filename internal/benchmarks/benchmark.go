// Package benchmarks implements the pC++ benchmark suite the paper's
// experiments run (Table 2) — Embar, Cyclic, Sparse, Grid, Mgrid,
// Poisson, and Sort — plus the Matmul validation program of Section 4.2,
// all written against the pcxx runtime.
//
// Every benchmark performs its real computation (so results can be
// verified against sequential references) while charging the measurement
// host's cost model, and communicates only through collection reads and
// barriers, so its traces drive the extrapolation exactly as user programs
// drove ExtraP.
package benchmarks

import (
	"errors"
	"fmt"
	"sort"

	"extrap/internal/core"
)

// Size parameterizes a benchmark instance.
type Size struct {
	// N is the problem dimension; its meaning is benchmark-specific
	// (sample count exponent, system size, grid edge, key count, matrix
	// edge).
	N int
	// Iters is the iteration count where applicable (solver sweeps, CG
	// iterations).
	Iters int
	// Verify enables the built-in correctness check: the program panics
	// (surfacing as a runtime error) if the parallel result diverges
	// from the sequential reference.
	Verify bool
}

// Benchmark describes one suite member.
type Benchmark interface {
	// Name is the suite name (lower case, as used by the CLI).
	Name() string
	// Description matches the Table 2 entry.
	Description() string
	// DefaultSize returns the size used by the paper-scale experiments.
	DefaultSize() Size
	// Factory returns a program factory for the given size: experiments
	// instantiate it per thread count.
	Factory(size Size) core.ProgramFactory
}

// WorkEstimator is implemented by benchmarks whose measurement cost is
// not captured by the registry-wide N×iters×threads proxy — composed
// workloads, whose cost depends on the pattern tree. Serving-layer work
// budgets type-assert for it and fall back to the proxy otherwise.
type WorkEstimator interface {
	// WorkUnits estimates the measurement cost of one (size, threads)
	// instantiation in the same abstract units as the serve budget's
	// N×iters×threads product.
	WorkUnits(sz Size, threads int) int64
}

// ErrDuplicate reports a registration whose name is already taken.
// Callers registering at runtime (compose presets) match it with
// errors.Is; init-time registration still panics via register.
var ErrDuplicate = errors.New("benchmarks: duplicate registration")

var registry = map[string]Benchmark{}

// Register adds b to the registry, failing with an error wrapping
// ErrDuplicate if the name is taken. Registration is not synchronized:
// call it from package init paths only, like the built-in kernels do.
func Register(b Benchmark) error {
	if _, dup := registry[b.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, b.Name())
	}
	registry[b.Name()] = b
	return nil
}

func register(b Benchmark) {
	if err := Register(b); err != nil {
		panic(err.Error())
	}
}

// All returns every registered benchmark sorted by name.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Suite returns the seven Table 2 benchmarks in the paper's order.
func Suite() []Benchmark {
	names := []string{"embar", "cyclic", "sparse", "grid", "mgrid", "poisson", "sort"}
	out := make([]Benchmark, 0, len(names))
	for _, n := range names {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// ByName returns a registered benchmark.
func ByName(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("benchmarks: unknown benchmark %q", name)
	}
	return b, nil
}

// verifyf panics with a formatted verification failure; the pcxx scheduler
// converts the panic into a runtime error.
func verifyf(cond bool, format string, args ...any) {
	if !cond {
		panic("verification failed: " + fmt.Sprintf(format, args...))
	}
}

// ceilPow2 returns the smallest power of two ≥ n.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
