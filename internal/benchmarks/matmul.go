package benchmarks

import (
	"fmt"
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
	"extrap/internal/vtime"
)

// Matmul is the validation program of Section 4.2: C = A·B with B given in
// transposed form, computed exactly as the paper describes — for every row
// r of Bᵀ, broadcast that row across a temporary matrix T, multiply
// pointwise with A into S, then reduce each row of S right-to-left to
// produce column r of the result. A, Bᵀ, T, and S all share one
// two-dimensional distribution chosen from the per-dimension attributes
// {Block, Cyclic, Whole}², giving the nine combinations of Figure 9 whose
// relative performance the extrapolation must rank correctly.
type Matmul struct{}

func init() { register(Matmul{}) }

// Name returns "matmul".
func (Matmul) Name() string { return "matmul" }

// Description matches Section 4.2.
func (Matmul) Description() string { return "Matrix multiplication validation program (Section 4.2)" }

// DefaultSize multiplies 32×32 matrices with the (Block,Block)
// distribution.
func (Matmul) DefaultSize() Size { return Size{N: 32, Verify: true} }

// Factory builds the default (Block,Block) variant.
func (Matmul) Factory(size Size) core.ProgramFactory {
	return MatmulFactory(size, dist.Block, dist.Block)
}

// matmulInput deterministically fills A and Bᵀ.
func matmulInput(n int) (a, bt []float64) {
	rng := vtime.NewRand(0x3a73)
	a = make([]float64, n*n)
	bt = make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64() - 0.5
		bt[i] = rng.Float64() - 0.5
	}
	return a, bt
}

// blockColSegs derives the column segments of a distribution: the sets of
// columns owned by each processor column, as contiguous runs for Block
// and Whole. For Cyclic columns the "segment" per processor column is its
// strided set; the parallel program and the reference both iterate it in
// ascending column order.
func colSegsFor(d2 *dist.Dist2D, n int) [][]int {
	_, pc := d2.ProcGrid()
	segs := make([][]int, pc)
	for j := 0; j < n; j++ {
		q := d2.OwnerRC(0, j) % pc
		segs[q] = append(segs[q], j)
	}
	return segs
}

// MatmulFactory builds the Matmul program for one distribution
// combination — the entry point the Figure 9 experiment sweeps.
func MatmulFactory(size Size, rowAttr, colAttr dist.Attr) core.ProgramFactory {
	n := size.N
	a, bt := matmulInput(n)
	return func(threads int) core.Program {
		return core.Program{
			Name:    fmt.Sprintf("matmul(%s,%s)", rowAttr, colAttr),
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				d2 := dist.NewDist2D(n, n, threads, rowAttr, colAttr)
				_, pc := d2.ProcGrid()
				A := pcxx.NewCollection2D[float64](rt, "A", d2, 8)
				BT := pcxx.NewCollection2D[float64](rt, "BT", d2, 8)
				T := pcxx.NewCollection2D[float64](rt, "T", d2, 8)
				S := pcxx.NewCollection2D[float64](rt, "S", d2, 8)
				C := pcxx.NewCollection2D[float64](rt, "C", d2, 8)
				// partials: per-thread vectors of right-to-left running
				// sums, one slot per row of the thread's processor row.
				// The fold moves whole vectors (one element transfer per
				// step), as a pC++ collection of vector elements would.
				partials := pcxx.PerThread[pvec](rt, "partials", int64(n*8))

				segs := colSegsFor(d2, n)

				return func(t *pcxx.Thread) {
					A.ForOwned(t, func(r, c int) { *A.Local(t, r, c) = a[r*n+c] })
					BT.ForOwned(t, func(r, c int) { *BT.Local(t, r, c) = bt[r*n+c] })
					t.Mem(d2.LocalCount(t.ID()) * 16)
					t.Barrier()

					// The thread's tile is the cartesian product of its
					// row set and column set (all four matrices aligned).
					var myRows, myCols []int
					if t.ID() < d2.UsedThreads() {
						for i := 0; i < n; i++ {
							if d2.OwnerRC(i, 0)/pc == t.ID()/pc {
								myRows = append(myRows, i)
							}
						}
						for j := 0; j < n; j++ {
							if d2.OwnerRC(0, j)%pc == t.ID()%pc {
								myCols = append(myCols, j)
							}
						}
					}
					myQ := t.ID() % pc
					if len(myRows) > 0 {
						partials.Local(t, t.ID()).vals = make([]float64, len(myRows))
					}
					t.Barrier()

					for r := 0; r < n; r++ {
						// Broadcast row r of Bᵀ into T: each owner fetches
						// Bᵀ(r,j) once per owned column (the runtime's
						// per-invocation remote element cache) and fills
						// its column of T.
						for _, j := range myCols {
							v := BT.Read(t, r, j)
							for _, i := range myRows {
								*T.Local(t, i, j) = v
							}
						}
						t.Ops(d2.LocalCount(t.ID()))
						t.Barrier()

						// Pointwise multiply into S (all aligned, local).
						S.ForOwned(t, func(i, j int) {
							*S.Local(t, i, j) = A.Read(t, i, j) * T.Read(t, i, j)
						})
						t.Flops(d2.LocalCount(t.ID()))
						t.Barrier()

						// Local segment sums into the partial vector.
						if len(myRows) > 0 {
							mv := partials.Local(t, t.ID())
							for k, i := range myRows {
								s := 0.0
								for _, j := range segs[myQ] {
									s += S.Read(t, i, j)
								}
								mv.vals[k] = s
								t.Flops(len(segs[myQ]))
							}
						}
						t.Barrier()

						// Right-to-left fold across processor columns: at
						// each step, column q absorbs column q+1's whole
						// partial vector in one transfer. Columns that own
						// no matrix columns still pass the chain through.
						for q := pc - 2; q >= 0; q-- {
							if myQ == q && len(myRows) > 0 {
								nb := partials.ReadPart(t, t.ID()+1, int64(len(myRows)*8))
								mv := partials.Local(t, t.ID())
								for k := range myRows {
									mv.vals[k] += nb.vals[k]
								}
								t.Flops(len(myRows))
							}
							t.Barrier()
						}

						// Column r of the result: its owners fetch the
						// folded vector from processor column 0.
						if containsInt(myCols, r) {
							col0 := t.ID() - myQ
							var nb *pvec
							if col0 == t.ID() {
								nb = partials.Local(t, t.ID())
							} else {
								nb = partials.ReadPart(t, col0, int64(len(myRows)*8))
							}
							for k, i := range myRows {
								*C.Local(t, i, r) = nb.vals[k]
							}
						}
						t.Barrier()
					}

					if size.Verify {
						ref := matmulRefStrided(n, a, bt, segs)
						C.ForOwned(t, func(i, j int) {
							got := *C.Local(t, i, j)
							want := ref[i*n+j]
							verifyf(math.Abs(got-want) < 1e-9*(1+math.Abs(want)),
								"matmul: C(%d,%d) = %v, want %v", i, j, got, want)
						})
					}
				}
			},
		}
	}
}

// matmulRefStrided computes the reference result with the exact summation
// order of the parallel fold: per-segment sums in ascending column order,
// folded right-to-left across processor columns.
func matmulRefStrided(n int, a, bt []float64, segs [][]int) []float64 {
	c := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for i := 0; i < n; i++ {
			partial := make([]float64, len(segs))
			for q := range segs {
				s := 0.0
				for _, j := range segs[q] {
					s += a[i*n+j] * bt[r*n+j]
				}
				partial[q] = s
			}
			for q := len(segs) - 2; q >= 0; q-- {
				partial[q] += partial[q+1]
			}
			c[i*n+r] = partial[0]
		}
	}
	return c
}

// pvec is a per-thread vector of row partial sums.
type pvec struct {
	vals []float64
}

// containsInt reports whether xs contains v.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
