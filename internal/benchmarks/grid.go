package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
)

// Grid solves the Poisson equation on a two-dimensional G×G grid with
// Jacobi sweeps. The grid is distributed (BLOCK,BLOCK): each used thread
// owns one rectangular tile (a collection element, as in the pC++ code
// whose 231456-byte grid elements the paper discusses), and each sweep
// reads one boundary strip from each of the four tile neighbors.
//
// Grid is the paper's Figure 5 case study: under CompilerEstimate size
// attribution each ghost-strip read is charged as a whole-element
// transfer, grossly overstating communication volume; ActualSize
// attribution records the true strip sizes (hundreds of bytes).
// The (BLOCK,BLOCK) square processor grid also idles threads when the
// thread count is not a perfect square — the 4→8 plateau of Figure 4.
type Grid struct{}

func init() { register(Grid{}) }

// Name returns "grid".
func (Grid) Name() string { return "grid" }

// Description matches Table 2.
func (Grid) Description() string { return "Poisson equation on a two dimensional grid" }

// DefaultSize runs 324 Jacobi sweeps on a 64×64 grid — two barriers per
// sweep plus the setup barriers ≈ the 650 barriers the paper's trace
// statistics report for Grid.
func (Grid) DefaultSize() Size { return Size{N: 64, Iters: 324} }

// gridBlock is one thread's tile of the solution grid: current and next
// Jacobi buffers plus its geometry.
type gridBlock struct {
	cur, next  []float64
	r0, c0     int // global position of the tile's top-left cell
	rows, cols int
}

// gridF is the Poisson right-hand side: a unit point source at the grid
// center.
func gridF(g, r, c int) float64 {
	if r == g/2 && c == g/2 {
		return 1
	}
	return 0
}

// gridReference runs the same Jacobi iteration sequentially.
func gridReference(g, iters int) []float64 {
	cur := make([]float64, g*g)
	next := make([]float64, g*g)
	at := func(u []float64, r, c int) float64 {
		if r < 0 || r >= g || c < 0 || c >= g {
			return 0
		}
		return u[r*g+c]
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < g; r++ {
			for c := 0; c < g; c++ {
				next[r*g+c] = 0.25 * (at(cur, r-1, c) + at(cur, r+1, c) +
					at(cur, r, c-1) + at(cur, r, c+1) + gridF(g, r, c))
			}
		}
		cur, next = next, cur
	}
	return cur
}

// Factory builds the Grid program.
func (Grid) Factory(size Size) core.ProgramFactory {
	g := size.N
	iters := size.Iters
	if iters <= 0 {
		iters = 100
	}
	return func(threads int) core.Program {
		return core.Program{
			Name:    "grid",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				cells := dist.NewDist2D(g, g, threads, dist.Block, dist.Block)
				pr, pc := cells.ProcGrid()
				maxTile := ((g + pr - 1) / pr) * ((g + pc - 1) / pc)
				// One block element per thread; the compiler-estimated
				// element transfer size is the whole tile.
				blocks := pcxx.NewCollection[gridBlock](rt, "blocks",
					dist.NewBlock(threads, threads), int64(maxTile*8))

				return func(t *pcxx.Thread) {
					used := t.ID() < pr*pc
					var me *gridBlock
					if used {
						me = blocks.Local(t, t.ID())
						me.rows, me.cols = cells.TileShape(t.ID())
						me.r0 = (t.ID() / pc) * ((g + pr - 1) / pr)
						me.c0 = (t.ID() % pc) * ((g + pc - 1) / pc)
						me.cur = make([]float64, me.rows*me.cols)
						me.next = make([]float64, me.rows*me.cols)
						t.Mem(me.rows * me.cols * 16)
					}
					t.Barrier()

					myRow, myCol := t.ID()/pc, t.ID()%pc
					for it := 0; it < iters; it++ {
						if used {
							// Gather ghost strips from the four tile
							// neighbors; the actual transfer is one strip.
							var gUp, gDown, gLeft, gRight []float64
							t.Phase("exchange", func() {
								up := t.ID() - pc
								down := t.ID() + pc
								left := t.ID() - 1
								right := t.ID() + 1
								if myRow > 0 {
									nb := blocks.ReadPart(t, up, int64(me.cols*8))
									gUp = lastRow(nb)
								}
								if myRow < pr-1 {
									nb := blocks.ReadPart(t, down, int64(me.cols*8))
									gDown = firstRow(nb)
								}
								if myCol > 0 {
									nb := blocks.ReadPart(t, left, int64(me.rows*8))
									gLeft = lastCol(nb)
								}
								if myCol < pc-1 {
									nb := blocks.ReadPart(t, right, int64(me.rows*8))
									gRight = firstCol(nb)
								}
							})
							t.Phase("update", func() {
								jacobiSweep(t, me, g, gUp, gDown, gLeft, gRight)
							})
						}
						t.Barrier()
						if used {
							me.cur, me.next = me.next, me.cur
						}
						t.Barrier()
					}

					if size.Verify && used {
						ref := gridReference(g, iters)
						for r := 0; r < me.rows; r++ {
							for c := 0; c < me.cols; c++ {
								got := me.cur[r*me.cols+c]
								want := ref[(me.r0+r)*g+me.c0+c]
								verifyf(math.Abs(got-want) < 1e-12,
									"grid: cell (%d,%d) = %v, want %v", me.r0+r, me.c0+c, got, want)
							}
						}
					}
				}
			},
		}
	}
}

// jacobiSweep computes one Jacobi update of the tile using the supplied
// ghost strips (nil means a physical boundary, value 0).
func jacobiSweep(t *pcxx.Thread, me *gridBlock, g int, gUp, gDown, gLeft, gRight []float64) {
	at := func(r, c int) float64 {
		switch {
		case r < 0:
			if gUp != nil {
				return gUp[c]
			}
			return 0
		case r >= me.rows:
			if gDown != nil {
				return gDown[c]
			}
			return 0
		case c < 0:
			if gLeft != nil {
				return gLeft[r]
			}
			return 0
		case c >= me.cols:
			if gRight != nil {
				return gRight[r]
			}
			return 0
		default:
			return me.cur[r*me.cols+c]
		}
	}
	for r := 0; r < me.rows; r++ {
		for c := 0; c < me.cols; c++ {
			me.next[r*me.cols+c] = 0.25 * (at(r-1, c) + at(r+1, c) +
				at(r, c-1) + at(r, c+1) + gridF(g, me.r0+r, me.c0+c))
		}
	}
	t.Flops(me.rows * me.cols * 6)
}

// lastRow copies a block's bottom boundary row.
func lastRow(b *gridBlock) []float64 {
	out := make([]float64, b.cols)
	copy(out, b.cur[(b.rows-1)*b.cols:])
	return out
}

// firstRow copies a block's top boundary row.
func firstRow(b *gridBlock) []float64 {
	out := make([]float64, b.cols)
	copy(out, b.cur[:b.cols])
	return out
}

// lastCol copies a block's right boundary column.
func lastCol(b *gridBlock) []float64 {
	out := make([]float64, b.rows)
	for r := 0; r < b.rows; r++ {
		out[r] = b.cur[r*b.cols+b.cols-1]
	}
	return out
}

// firstCol copies a block's left boundary column.
func firstCol(b *gridBlock) []float64 {
	out := make([]float64, b.rows)
	for r := 0; r < b.rows; r++ {
		out[r] = b.cur[r*b.cols]
	}
	return out
}
