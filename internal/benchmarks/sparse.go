package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

// Sparse is the NAS random sparse conjugate gradient benchmark: CG
// iterations on a randomly structured symmetric positive-definite matrix.
// The matrix-vector product reads individual remote vector entries at
// random columns, producing many small latency-bound messages; the dot
// products add log-tree reductions — together the most communication-
// diverse benchmark of the suite.
type Sparse struct{}

func init() { register(Sparse{}) }

// Name returns "sparse".
func (Sparse) Name() string { return "sparse" }

// Description matches Table 2.
func (Sparse) Description() string { return "NAS random sparse conjugate gradient benchmark" }

// DefaultSize runs 20 CG iterations on a 2048-row system.
func (Sparse) DefaultSize() Size { return Size{N: 2048, Iters: 20} }

// vecSeg is one thread's contiguous segment of a distributed vector.
type vecSeg struct {
	v []float64
}

// spEntry is one off-diagonal matrix entry.
type spEntry struct {
	col int
	val float64
}

// spMatrix is the shared sparse matrix: per-row off-diagonal entries plus
// the diagonal. It is generated deterministically and is identical for
// every thread count.
type spMatrix struct {
	n    int
	diag []float64
	rows [][]spEntry
}

// sparseMatrix builds a symmetric diagonally dominant matrix with
// ~edges random off-diagonal pairs.
func sparseMatrix(n int) *spMatrix {
	m := &spMatrix{n: n, diag: make([]float64, n), rows: make([][]spEntry, n)}
	rng := vtime.NewRand(0x5fa25e)
	edges := 3 * n
	for k := 0; k < edges; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		v := -rng.Float64()
		m.rows[a] = append(m.rows[a], spEntry{col: b, val: v})
		m.rows[b] = append(m.rows[b], spEntry{col: a, val: v})
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, e := range m.rows[i] {
			sum += math.Abs(e.val)
		}
		m.diag[i] = sum + 1 // strict diagonal dominance ⇒ SPD
	}
	return m
}

// sparseRHS is the deterministic right-hand side.
func sparseRHS(n int) []float64 {
	rng := vtime.NewRand(0xb5)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()
	}
	return b
}

// segBounds returns thread t's [lo, hi) row range for n rows over the
// given thread count (contiguous blocks, ceil-sized like dist.NewBlock).
func segBounds(n, threads, t int) (lo, hi int) {
	blk := (n + threads - 1) / threads
	lo = t * blk
	hi = lo + blk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// treeDot mirrors the parallel tree reduction's floating-point order so
// the sequential reference matches the parallel run bit for bit: local
// partials in index order, then partner folding by doubling strides.
func treeDot(a, b []float64, threads int) float64 {
	partial := make([]float64, threads)
	for t := 0; t < threads; t++ {
		lo, hi := segBounds(len(a), threads, t)
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		partial[t] = s
	}
	for stride := 1; stride < threads; stride *= 2 {
		for t := 0; t+stride < threads; t += 2 * stride {
			partial[t] += partial[t+stride]
		}
	}
	return partial[0]
}

// sparseCGRef runs CG sequentially with the same reduction order the
// parallel program uses; the result matches the parallel solution exactly.
func sparseCGRef(m *spMatrix, b []float64, iters, threads int) []float64 {
	n := m.n
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	q := make([]float64, n)
	rr := treeDot(r, r, threads)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			s := m.diag[i] * p[i]
			for _, e := range m.rows[i] {
				s += e.val * p[e.col]
			}
			q[i] = s
		}
		pq := treeDot(p, q, threads)
		alpha := rr / pq
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rr2 := treeDot(r, r, threads)
		beta := rr2 / rr
		rr = rr2
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x
}

// Factory builds the Sparse program: rows and vectors block-distributed,
// remote entry reads during the matvec, tree reductions for the dots.
func (Sparse) Factory(size Size) core.ProgramFactory {
	n := size.N
	iters := size.Iters
	if iters <= 0 {
		iters = 15
	}
	mat := sparseMatrix(n)
	rhs := sparseRHS(n)
	return func(threads int) core.Program {
		return core.Program{
			Name:    "sparse",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				blk := (n + threads - 1) / threads
				// p is a collection of per-thread segment elements; the
				// matvec gathers the remote entries it needs from each
				// owner in one bulk element read per iteration (the
				// standard sparse-CG gather phase).
				pv := pcxx.PerThread[vecSeg](rt, "p", int64(blk*8))
				partials := pcxx.PerThread[float64](rt, "dot", 8)
				return func(t *pcxx.Thread) {
					lo, hi := segBounds(n, threads, t.ID())
					cnt := hi - lo
					x := make([]float64, cnt)
					r := make([]float64, cnt)
					q := make([]float64, cnt)
					myP := pv.Local(t, t.ID())
					myP.v = make([]float64, cnt)
					for i := 0; i < cnt; i++ {
						r[i] = rhs[lo+i]
						myP.v[i] = rhs[lo+i]
					}
					t.Mem(cnt * 24)

					// needs[o] lists the remote columns owned by thread o
					// that this thread's rows reference.
					needs := make([][]int, threads)
					seen := make(map[int]bool)
					for i := lo; i < hi; i++ {
						for _, e := range mat.rows[i] {
							if (e.col < lo || e.col >= hi) && !seen[e.col] {
								seen[e.col] = true
								o := e.col / blk
								needs[o] = append(needs[o], e.col)
							}
						}
					}
					ghost := make([]float64, n)

					// gather refreshes the ghost entries, one bulk read
					// per remote owner.
					gather := func() {
						for o := 0; o < threads; o++ {
							if len(needs[o]) == 0 {
								continue
							}
							sb := pv.ReadPart(t, o, int64(len(needs[o])*8))
							for _, j := range needs[o] {
								ghost[j] = sb.v[j-o*blk]
							}
							t.Mem(len(needs[o]) * 8)
						}
					}
					readP := func(j int) float64 {
						if j >= lo && j < hi {
							return myP.v[j-lo]
						}
						return ghost[j]
					}
					dot := func(local float64) float64 {
						*partials.Local(t, t.ID()) = local
						return pcxx.AllReduceSum(t, partials)
					}

					localDot := func(a, b []float64) float64 {
						s := 0.0
						for i := range a {
							s += a[i] * b[i]
						}
						t.Flops(2 * len(a))
						return s
					}

					t.Barrier()
					rr := dot(localDot(r, r))
					for it := 0; it < iters; it++ {
						// q = A·p over owned rows; p is stable during the
						// gather and matvec (updated only after the next
						// reduction's barriers).
						t.Phase("gather", gather)
						t.Phase("matvec", func() {
							for i := lo; i < hi; i++ {
								s := mat.diag[i] * myP.v[i-lo]
								for _, e := range mat.rows[i] {
									s += e.val * readP(e.col)
								}
								q[i-lo] = s
								t.Flops(2 * (len(mat.rows[i]) + 1))
							}
						})
						pq := dot(localDot(myP.v, q))
						alpha := rr / pq
						for i := 0; i < cnt; i++ {
							x[i] += alpha * myP.v[i]
							r[i] -= alpha * q[i]
						}
						t.Flops(4 * cnt)
						rr2 := dot(localDot(r, r))
						beta := rr2 / rr
						rr = rr2
						// p update happens after the reduction barrier, so
						// no thread is still reading the old p.
						for i := 0; i < cnt; i++ {
							myP.v[i] = r[i] + beta*myP.v[i]
						}
						t.Flops(2 * cnt)
						t.Barrier()
					}

					if size.Verify {
						ref := sparseCGRef(mat, rhs, iters, threads)
						for i := 0; i < cnt; i++ {
							verifyf(math.Abs(x[i]-ref[lo+i]) < 1e-9*(1+math.Abs(ref[lo+i])),
								"sparse: x[%d] = %v, want %v", lo+i, x[i], ref[lo+i])
						}
						// And the solve genuinely solved the system.
						if t.ID() == 0 {
							res := 0.0
							norm := 0.0
							for i := 0; i < n; i++ {
								s := mat.diag[i] * ref[i]
								for _, e := range mat.rows[i] {
									s += e.val * ref[e.col]
								}
								res += (s - rhs[i]) * (s - rhs[i])
								norm += rhs[i] * rhs[i]
							}
							// CG is run for a fixed iteration budget (it is
							// a benchmark, not a solver), so require solid
							// progress rather than full convergence.
							verifyf(math.Sqrt(res/norm) < 5e-2,
								"sparse: CG made no progress: relative residual %g", math.Sqrt(res/norm))
						}
					}
				}
			},
		}
	}
}
