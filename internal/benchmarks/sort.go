package benchmarks

import (
	"sort"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

// Sort is the bitonic sort module: each thread holds a locally sorted
// block of keys, and log²(n) compare-exchange stages between partner
// threads (at hypercube distances) produce a globally sorted sequence.
// Every stage reads the partner's entire block, so communication volume
// per stage is high and fixed — the benchmark stresses bandwidth rather
// than latency.
type Sort struct{}

func init() { register(Sort{}) }

// Name returns "sort".
func (Sort) Name() string { return "sort" }

// Description matches Table 2.
func (Sort) Description() string { return "Bitonic sort module" }

// DefaultSize sorts 65536 keys.
func (Sort) DefaultSize() Size { return Size{N: 65536} }

// keyBlock is one thread's slice of the key space.
type keyBlock struct {
	keys []float64
}

// sortKeys deterministically generates the unsorted input.
func sortKeys(total int) []float64 {
	rng := vtime.NewRand(0x50f7)
	out := make([]float64, total)
	for i := range out {
		out[i] = rng.Float64() * 1e6
	}
	return out
}

// Factory builds the bitonic sort program. The thread count must be a
// power of two (the bitonic network's requirement; all experiment ladders
// use powers of two).
func (Sort) Factory(size Size) core.ProgramFactory {
	total := ceilPow2(size.N)
	input := sortKeys(total)
	return func(threads int) core.Program {
		return core.Program{
			Name:    "sort",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				m := total / threads
				blocks := pcxx.PerThread[keyBlock](rt, "blocks", int64(m*8))
				return func(t *pcxx.Thread) {
					verifyf(isPow2(threads), "sort: thread count %d is not a power of two", threads)
					id := t.ID()
					mine := blocks.Local(t, id)
					mine.keys = make([]float64, m)
					copy(mine.keys, input[id*m:(id+1)*m])
					// Local sort: ~m·log₂(m) comparison work.
					sort.Float64s(mine.keys)
					t.Ops(m * log2int(m) * 3)
					t.Barrier()

					// Bitonic merge network over blocks. Each stage first
					// snapshots the partner's block (a barrier separates
					// the reads from the updates so every thread sees
					// pre-stage values), then merge-splits in place.
					for k := 2; k <= threads; k <<= 1 {
						for j := k >> 1; j >= 1; j >>= 1 {
							partner := id ^ j
							theirs := blocks.Read(t, partner) // whole block
							t.Barrier()
							ascending := id&k == 0
							keepLow := (id < partner) == ascending
							mine.keys = mergeKeep(mine.keys, theirs.keys, keepLow)
							t.Ops(2 * m)
							t.Mem(2 * m * 8)
							t.Barrier()
						}
					}

					if size.Verify {
						ref := make([]float64, total)
						copy(ref, input)
						sort.Float64s(ref)
						for i, k := range mine.keys {
							verifyf(k == ref[id*m+i],
								"sort: thread %d key %d = %v, want %v", id, i, k, ref[id*m+i])
						}
					}
				}
			},
		}
	}
}

// mergeKeep merges two sorted blocks and keeps the lower or upper half,
// still sorted ascending.
func mergeKeep(a, b []float64, low bool) []float64 {
	m := len(a)
	merged := make([]float64, 0, 2*m)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	if low {
		return merged[:m]
	}
	out := make([]float64, m)
	copy(out, merged[m:])
	return out
}

// log2int returns floor(log2(n)) for n ≥ 1.
func log2int(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
