package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
)

// Mgrid is the NAS multigrid solver benchmark: V-cycles over a hierarchy
// of grids, with weighted-Jacobi smoothing, full-weighting restriction,
// and bilinear prolongation. Coarse levels carry very little computation
// per thread but the same synchronization and boundary-exchange structure,
// so the benchmark's computation/communication ratio collapses as levels
// coarsen — which is why Figure 6 shows Mgrid's speedup reacting strongly
// to MipsRatio and Figure 7 shows its optimal processor count moving with
// communication cost.
type Mgrid struct{}

func init() { register(Mgrid{}) }

// Name returns "mgrid".
func (Mgrid) Name() string { return "mgrid" }

// Description matches Table 2.
func (Mgrid) Description() string { return "NAS multigrid solver benchmark" }

// DefaultSize runs 4 V-cycles on a 64×64 fine grid.
func (Mgrid) DefaultSize() Size { return Size{N: 64, Iters: 4} }

const (
	mgOmega        = 0.8 // weighted-Jacobi damping
	mgPreSweeps    = 2
	mgPostSweeps   = 1
	mgCoarseSweeps = 10
	mgCoarsest     = 4 // stop coarsening at this grid edge
)

// mgBlock is one thread's tile at one level of the hierarchy.
type mgBlock struct {
	u, f, next, r []float64
	r0, c0        int
	rows, cols    int
}

// mgGeometry describes the level sizes for a fine grid edge g.
func mgLevels(g int) []int {
	var out []int
	for e := g; e >= mgCoarsest; e /= 2 {
		out = append(out, e)
	}
	return out
}

// mgSmoothCell is the weighted-Jacobi update shared (verbatim) by the
// parallel program and the sequential reference so results match exactly.
func mgSmoothCell(cur, up, down, left, right, f float64) float64 {
	return (1-mgOmega)*cur + mgOmega*0.25*(up+down+left+right+f)
}

// mgResidualCell is the shared residual computation r = f − (4u − Σnbr).
func mgResidualCell(u, up, down, left, right, f float64) float64 {
	return f - (4*u - up - down - left - right)
}

// --- sequential reference ---------------------------------------------------

type mgRefLevel struct {
	g          int
	u, f, next []float64
	r          []float64
}

func mgRefAt(v []float64, g, r, c int) float64 {
	if r < 0 || r >= g || c < 0 || c >= g {
		return 0
	}
	return v[r*g+c]
}

func mgRefSmooth(l *mgRefLevel, sweeps int) {
	for s := 0; s < sweeps; s++ {
		for r := 0; r < l.g; r++ {
			for c := 0; c < l.g; c++ {
				l.next[r*l.g+c] = mgSmoothCell(
					l.u[r*l.g+c],
					mgRefAt(l.u, l.g, r-1, c), mgRefAt(l.u, l.g, r+1, c),
					mgRefAt(l.u, l.g, r, c-1), mgRefAt(l.u, l.g, r, c+1),
					l.f[r*l.g+c])
			}
		}
		l.u, l.next = l.next, l.u
	}
}

func mgRefResidual(l *mgRefLevel) {
	for r := 0; r < l.g; r++ {
		for c := 0; c < l.g; c++ {
			l.r[r*l.g+c] = mgResidualCell(
				l.u[r*l.g+c],
				mgRefAt(l.u, l.g, r-1, c), mgRefAt(l.u, l.g, r+1, c),
				mgRefAt(l.u, l.g, r, c-1), mgRefAt(l.u, l.g, r, c+1),
				l.f[r*l.g+c])
		}
	}
}

// mgRestrictCell is the shared full-weighting stencil.
func mgRestrictCell(at func(r, c int) float64, R, C int) float64 {
	fr, fc := 2*R, 2*C
	return (4*at(fr, fc) +
		2*(at(fr-1, fc)+at(fr+1, fc)+at(fr, fc-1)+at(fr, fc+1)) +
		at(fr-1, fc-1) + at(fr-1, fc+1) + at(fr+1, fc-1) + at(fr+1, fc+1)) / 16
}

// mgProlongCell is the shared bilinear interpolation of the coarse
// correction at fine cell (r, c).
func mgProlongCell(at func(r, c int) float64, r, c int) float64 {
	R, C := r/2, c/2
	switch {
	case r%2 == 0 && c%2 == 0:
		return at(R, C)
	case r%2 == 1 && c%2 == 0:
		return 0.5 * (at(R, C) + at(R+1, C))
	case r%2 == 0 && c%2 == 1:
		return 0.5 * (at(R, C) + at(R, C+1))
	default:
		return 0.25 * (at(R, C) + at(R+1, C) + at(R, C+1) + at(R+1, C+1))
	}
}

func mgRefVCycle(levels []*mgRefLevel, l int) {
	cur := levels[l]
	if l == len(levels)-1 {
		mgRefSmooth(cur, mgCoarseSweeps)
		return
	}
	mgRefSmooth(cur, mgPreSweeps)
	mgRefResidual(cur)
	coarse := levels[l+1]
	at := func(r, c int) float64 { return mgRefAt(cur.r, cur.g, r, c) }
	for R := 0; R < coarse.g; R++ {
		for C := 0; C < coarse.g; C++ {
			coarse.f[R*coarse.g+C] = mgRestrictCell(at, R, C)
			coarse.u[R*coarse.g+C] = 0
		}
	}
	mgRefVCycle(levels, l+1)
	atU := func(r, c int) float64 { return mgRefAt(coarse.u, coarse.g, r, c) }
	for r := 0; r < cur.g; r++ {
		for c := 0; c < cur.g; c++ {
			cur.u[r*cur.g+c] += mgProlongCell(atU, r, c)
		}
	}
	mgRefSmooth(cur, mgPostSweeps)
}

// mgridReference runs the cycles sequentially and returns the fine u.
func mgridReference(g, cycles int) []float64 {
	sizes := mgLevels(g)
	levels := make([]*mgRefLevel, len(sizes))
	for i, e := range sizes {
		levels[i] = &mgRefLevel{
			g: e,
			u: make([]float64, e*e), f: make([]float64, e*e),
			next: make([]float64, e*e), r: make([]float64, e*e),
		}
	}
	fine := levels[0]
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			fine.f[r*g+c] = gridF(g, r, c)
		}
	}
	for cy := 0; cy < cycles; cy++ {
		mgRefVCycle(levels, 0)
	}
	return fine.u
}

// mgridResidualNorm computes ‖f − A u‖₂ on the fine grid.
func mgridResidualNorm(g int, u []float64) float64 {
	s := 0.0
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			res := mgResidualCell(
				mgRefAt(u, g, r, c),
				mgRefAt(u, g, r-1, c), mgRefAt(u, g, r+1, c),
				mgRefAt(u, g, r, c-1), mgRefAt(u, g, r, c+1),
				gridF(g, r, c))
			s += res * res
		}
	}
	return math.Sqrt(s)
}

// --- parallel program --------------------------------------------------------

// mgState bundles the per-level collections and geometry.
type mgState struct {
	sizes  []int
	dists  []*dist.Dist2D
	blocks []*pcxx.Collection[mgBlock]
	pr, pc int
}

// Factory builds the Mgrid program.
func (Mgrid) Factory(size Size) core.ProgramFactory {
	g := size.N
	cycles := size.Iters
	if cycles <= 0 {
		cycles = 4
	}
	return func(threads int) core.Program {
		return core.Program{
			Name:    "mgrid",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				st := &mgState{sizes: mgLevels(g)}
				for _, e := range st.sizes {
					d2 := dist.NewDist2D(e, e, threads, dist.Block, dist.Block)
					st.dists = append(st.dists, d2)
					pr, pc := d2.ProcGrid()
					maxTile := ((e + pr - 1) / pr) * ((e + pc - 1) / pc)
					if maxTile < 1 {
						maxTile = 1
					}
					st.blocks = append(st.blocks, pcxx.NewCollection[mgBlock](
						rt, "mg-level", dist.NewBlock(threads, threads), int64(maxTile*8)))
				}
				st.pr, st.pc = st.dists[0].ProcGrid()

				return func(t *pcxx.Thread) {
					// Initialize every level's tile.
					for l, e := range st.sizes {
						b := st.blocks[l].Local(t, t.ID())
						b.rows, b.cols = st.dists[l].TileShape(t.ID())
						pr, pc := st.dists[l].ProcGrid()
						b.r0 = (t.ID() / pc) * ((e + pr - 1) / pr)
						b.c0 = (t.ID() % pc) * ((e + pc - 1) / pc)
						n := b.rows * b.cols
						b.u = make([]float64, n)
						b.f = make([]float64, n)
						b.next = make([]float64, n)
						b.r = make([]float64, n)
						if l == 0 {
							for r := 0; r < b.rows; r++ {
								for c := 0; c < b.cols; c++ {
									b.f[r*b.cols+c] = gridF(e, b.r0+r, b.c0+c)
								}
							}
						}
						t.Mem(n * 32)
					}
					t.Barrier()

					for cy := 0; cy < cycles; cy++ {
						mgVCycle(t, st, 0)
					}

					if size.Verify {
						ref := mgridReference(g, cycles)
						b := st.blocks[0].Local(t, t.ID())
						for r := 0; r < b.rows; r++ {
							for c := 0; c < b.cols; c++ {
								got := b.u[r*b.cols+c]
								want := ref[(b.r0+r)*g+b.c0+c]
								verifyf(math.Abs(got-want) < 1e-12,
									"mgrid: u(%d,%d) = %v, want %v", b.r0+r, b.c0+c, got, want)
							}
						}
						if t.ID() == 0 {
							// The cycles must actually reduce the residual.
							r0 := mgridResidualNorm(g, make([]float64, g*g))
							r1 := mgridResidualNorm(g, ref)
							verifyf(r1 < 0.5*r0,
								"mgrid: V-cycles did not converge: %g → %g", r0, r1)
						}
					}
				}
			},
		}
	}
}

// gatherStrips fetches the four boundary strips adjacent to thread t's
// tile at level l from its processor-grid neighbors: one bulk element
// read per neighbor per sweep (the same access pattern as the Grid
// benchmark). nil strips are physical boundaries (value 0).
func gatherStrips(t *pcxx.Thread, st *mgState, l int, sel func(*mgBlock) []float64) (gUp, gDown, gLeft, gRight []float64) {
	b := st.blocks[l].Local(t, t.ID())
	if b.rows == 0 || b.cols == 0 {
		return nil, nil, nil, nil
	}
	pr, pc := st.dists[l].ProcGrid()
	myRow, myCol := t.ID()/pc, t.ID()%pc
	e := st.sizes[l]
	fetch := func(owner, stripLen int) *mgBlock {
		if owner == t.ID() {
			return st.blocks[l].Local(t, t.ID())
		}
		return st.blocks[l].ReadPart(t, owner, int64(stripLen*8))
	}
	if myRow > 0 && b.r0 > 0 {
		nb := fetch(t.ID()-pc, b.cols)
		gUp = stripRow(sel(nb), nb, nb.rows-1, b.c0, b.cols)
	}
	if myRow < pr-1 && b.r0+b.rows < e {
		nb := fetch(t.ID()+pc, b.cols)
		gDown = stripRow(sel(nb), nb, 0, b.c0, b.cols)
	}
	if myCol > 0 && b.c0 > 0 {
		nb := fetch(t.ID()-1, b.rows)
		gLeft = stripCol(sel(nb), nb, nb.cols-1, b.r0, b.rows)
	}
	if myCol < pc-1 && b.c0+b.cols < e {
		nb := fetch(t.ID()+1, b.rows)
		gRight = stripCol(sel(nb), nb, 0, b.r0, b.rows)
	}
	return gUp, gDown, gLeft, gRight
}

// stripRow copies row lr of the neighbor's field, aligned to the caller's
// column range [c0, c0+cols).
func stripRow(field []float64, nb *mgBlock, lr, c0, cols int) []float64 {
	out := make([]float64, cols)
	for c := 0; c < cols; c++ {
		out[c] = field[lr*nb.cols+(c0+c-nb.c0)]
	}
	return out
}

// stripCol copies column lc of the neighbor's field, aligned to the
// caller's row range [r0, r0+rows).
func stripCol(field []float64, nb *mgBlock, lc, r0, rows int) []float64 {
	out := make([]float64, rows)
	for r := 0; r < rows; r++ {
		out[r] = field[(r0+r-nb.r0)*nb.cols+lc]
	}
	return out
}

// ghostAt indexes the tile-plus-strips view at tile-local coordinates.
func ghostAt(b *mgBlock, field, gUp, gDown, gLeft, gRight []float64, r, c int) float64 {
	switch {
	case r < 0:
		if gUp != nil {
			return gUp[c]
		}
		return 0
	case r >= b.rows:
		if gDown != nil {
			return gDown[c]
		}
		return 0
	case c < 0:
		if gLeft != nil {
			return gLeft[r]
		}
		return 0
	case c >= b.cols:
		if gRight != nil {
			return gRight[r]
		}
		return 0
	default:
		return field[r*b.cols+c]
	}
}

// mgVCycle runs one V-cycle recursion level for thread t.
func mgVCycle(t *pcxx.Thread, st *mgState, l int) {
	if l == len(st.sizes)-1 {
		mgSmooth(t, st, l, mgCoarseSweeps)
		return
	}
	mgSmooth(t, st, l, mgPreSweeps)
	mgResidual(t, st, l)
	mgRestrict(t, st, l)
	mgVCycle(t, st, l+1)
	mgProlong(t, st, l)
	mgSmooth(t, st, l, mgPostSweeps)
}

// mgSmooth runs weighted-Jacobi sweeps at level l, gathering ghost strips
// once per sweep.
func mgSmooth(t *pcxx.Thread, st *mgState, l, sweeps int) {
	b := st.blocks[l].Local(t, t.ID())
	uOf := func(m *mgBlock) []float64 { return m.u }
	for s := 0; s < sweeps; s++ {
		gUp, gDown, gLeft, gRight := gatherStrips(t, st, l, uOf)
		for r := 0; r < b.rows; r++ {
			for c := 0; c < b.cols; c++ {
				at := func(rr, cc int) float64 {
					return ghostAt(b, b.u, gUp, gDown, gLeft, gRight, rr, cc)
				}
				b.next[r*b.cols+c] = mgSmoothCell(
					b.u[r*b.cols+c],
					at(r-1, c), at(r+1, c), at(r, c-1), at(r, c+1),
					b.f[r*b.cols+c])
			}
		}
		t.Flops(b.rows * b.cols * 8)
		t.Barrier()
		b.u, b.next = b.next, b.u
		t.Barrier()
	}
}

// mgResidual fills the level's r field.
func mgResidual(t *pcxx.Thread, st *mgState, l int) {
	b := st.blocks[l].Local(t, t.ID())
	uOf := func(m *mgBlock) []float64 { return m.u }
	gUp, gDown, gLeft, gRight := gatherStrips(t, st, l, uOf)
	for r := 0; r < b.rows; r++ {
		for c := 0; c < b.cols; c++ {
			at := func(rr, cc int) float64 {
				return ghostAt(b, b.u, gUp, gDown, gLeft, gRight, rr, cc)
			}
			b.r[r*b.cols+c] = mgResidualCell(
				b.u[r*b.cols+c],
				at(r-1, c), at(r+1, c), at(r, c-1), at(r, c+1),
				b.f[r*b.cols+c])
		}
	}
	t.Flops(b.rows * b.cols * 7)
	t.Barrier()
}

// tileCache fetches whole remote tiles at a level once per phase; cross-
// level transfers (restriction, prolongation) touch misaligned regions
// that strips cannot cover, so they move tiles in bulk instead.
type tileCache struct {
	t     *pcxx.Thread
	st    *mgState
	l     int
	tiles map[int]*mgBlock
}

func newTileCache(t *pcxx.Thread, st *mgState, l int) *tileCache {
	return &tileCache{t: t, st: st, l: l, tiles: make(map[int]*mgBlock)}
}

// cell returns field sel of cell (r, c) at the cache's level, fetching the
// owning tile at most once.
func (tc *tileCache) cell(sel func(*mgBlock) []float64, r, c int) float64 {
	e := tc.st.sizes[tc.l]
	if r < 0 || r >= e || c < 0 || c >= e {
		return 0
	}
	owner := tc.st.dists[tc.l].OwnerRC(r, c)
	b, ok := tc.tiles[owner]
	if !ok {
		if owner == tc.t.ID() {
			b = tc.st.blocks[tc.l].Local(tc.t, tc.t.ID())
		} else {
			b = tc.st.blocks[tc.l].ReadPart(tc.t, owner, tileBytes(tc.st, tc.l, owner))
		}
		tc.tiles[owner] = b
	}
	return sel(b)[(r-b.r0)*b.cols+(c-b.c0)]
}

// tileBytes returns the byte size of a thread's tile at a level.
func tileBytes(st *mgState, l, owner int) int64 {
	r, c := st.dists[l].TileShape(owner)
	n := int64(r * c * 8)
	if n <= 0 {
		n = 8
	}
	return n
}

// mgRestrict full-weights the fine residual into the coarse f and zeroes
// the coarse u.
func mgRestrict(t *pcxx.Thread, st *mgState, l int) {
	cb := st.blocks[l+1].Local(t, t.ID())
	rOf := func(m *mgBlock) []float64 { return m.r }
	tc := newTileCache(t, st, l)
	fineAt := func(r, c int) float64 { return tc.cell(rOf, r, c) }
	for R := 0; R < cb.rows; R++ {
		for C := 0; C < cb.cols; C++ {
			cb.f[R*cb.cols+C] = mgRestrictCell(fineAt, cb.r0+R, cb.c0+C)
			cb.u[R*cb.cols+C] = 0
		}
	}
	t.Flops(cb.rows * cb.cols * 12)
	t.Barrier()
}

// mgProlong interpolates the coarse correction into the fine u.
func mgProlong(t *pcxx.Thread, st *mgState, l int) {
	fb := st.blocks[l].Local(t, t.ID())
	uOf := func(m *mgBlock) []float64 { return m.u }
	tc := newTileCache(t, st, l+1)
	coarseAt := func(r, c int) float64 { return tc.cell(uOf, r, c) }
	for r := 0; r < fb.rows; r++ {
		for c := 0; c < fb.cols; c++ {
			fb.u[r*fb.cols+c] += mgProlongCell(coarseAt, fb.r0+r, fb.c0+c)
		}
	}
	t.Flops(fb.rows * fb.cols * 5)
	t.Barrier()
}
