package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

// Poisson is the fast Poisson solver benchmark: a discrete sine transform
// along one dimension diagonalizes the 2-D Laplacian, leaving independent
// tridiagonal systems along the other dimension. The structure is
// transform (local, compute-heavy) → transpose (all-to-all) → tridiagonal
// solves (local) → transpose → inverse transform (local): large local
// compute phases separated by two bulk communication steps, giving the
// benchmark good speedup until the transposes dominate (Figure 4 and the
// 32-processor knee in Figure 6).
type Poisson struct{}

func init() { register(Poisson{}) }

// Name returns "poisson".
func (Poisson) Name() string { return "poisson" }

// Description matches Table 2.
func (Poisson) Description() string { return "Fast Poisson solver" }

// DefaultSize solves on a 48×48 grid.
func (Poisson) DefaultSize() Size { return Size{N: 48} }

// rowBlock is one thread's block of matrix rows.
type rowBlock struct {
	rows [][]float64
	lo   int // first global row index
}

// poissonRHS builds the right-hand side grid.
func poissonRHS(g int) []float64 {
	rng := vtime.NewRand(0x9015)
	f := make([]float64, g*g)
	for i := range f {
		f[i] = rng.Float64() - 0.5
	}
	return f
}

// dstRow computes the (unnormalized) DST-I of a row: out[k] =
// Σ_j in[j]·sin(π(j+1)(k+1)/(g+1)). Shared by the parallel program and
// the reference.
func dstRow(in []float64) []float64 {
	g := len(in)
	out := make([]float64, g)
	for k := 0; k < g; k++ {
		s := 0.0
		for j := 0; j < g; j++ {
			s += in[j] * math.Sin(math.Pi*float64((j+1)*(k+1))/float64(g+1))
		}
		out[k] = s
	}
	return out
}

// poissonTridiag solves (2+λ)u_r − u_{r−1} − u_{r+1} = d_r by the Thomas
// algorithm. Shared code path for parallel and reference.
func poissonTridiag(lambda float64, d []float64) []float64 {
	g := len(d)
	b := 2 + lambda
	cp := make([]float64, g)
	dp := make([]float64, g)
	cp[0] = -1 / b
	dp[0] = d[0] / b
	for i := 1; i < g; i++ {
		m := b + cp[i-1]
		cp[i] = -1 / m
		dp[i] = (d[i] + dp[i-1]) / m
	}
	u := make([]float64, g)
	u[g-1] = dp[g-1]
	for i := g - 2; i >= 0; i-- {
		u[i] = dp[i] - cp[i]*u[i+1]
	}
	return u
}

// poissonReference solves the whole problem sequentially with the same
// transform and solve kernels.
func poissonReference(g int, f []float64) [][]float64 {
	// Transform rows.
	ft := make([][]float64, g)
	for r := 0; r < g; r++ {
		ft[r] = dstRow(f[r*g : (r+1)*g])
	}
	// Solve per transformed column k.
	ut := make([][]float64, g)
	for r := range ut {
		ut[r] = make([]float64, g)
	}
	for k := 0; k < g; k++ {
		lambda := 2 - 2*math.Cos(math.Pi*float64(k+1)/float64(g+1))
		d := make([]float64, g)
		for r := 0; r < g; r++ {
			d[r] = ft[r][k]
		}
		u := poissonTridiag(lambda, d)
		for r := 0; r < g; r++ {
			ut[r][k] = u[r]
		}
	}
	// Inverse transform rows (DST-I scaled by 2/(g+1)).
	out := make([][]float64, g)
	scale := 2 / float64(g+1)
	for r := 0; r < g; r++ {
		row := dstRow(ut[r])
		for c := range row {
			row[c] *= scale
		}
		out[r] = row
	}
	return out
}

// Factory builds the Poisson program: rows block-distributed; the
// transpose reads every other thread's row block once (bulk all-to-all).
func (Poisson) Factory(size Size) core.ProgramFactory {
	g := size.N
	f := poissonRHS(g)
	return func(threads int) core.Program {
		return core.Program{
			Name:    "poisson",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				blk := (g + threads - 1) / threads
				blockBytes := int64(blk * g * 8)
				fwd := pcxx.PerThread[rowBlock](rt, "fwd", blockBytes)  // transformed rows
				colb := pcxx.PerThread[rowBlock](rt, "col", blockBytes) // transposed (column-major)
				sol := pcxx.PerThread[rowBlock](rt, "sol", blockBytes)  // solved, still transposed
				return func(t *pcxx.Thread) {
					lo, hi := segBounds(g, threads, t.ID())
					cnt := hi - lo

					// Phase 1: DST of owned rows (local, O(g²) per row).
					mine := fwd.Local(t, t.ID())
					t.Phase("dst", func() {
						mine.lo = lo
						mine.rows = make([][]float64, cnt)
						for r := 0; r < cnt; r++ {
							mine.rows[r] = dstRow(f[(lo+r)*g : (lo+r+1)*g])
							t.Flops(3 * g * g) // g output entries × g terms
						}
					})
					t.Barrier()

					// Phase 2: transpose — read each source thread's block
					// once and scatter locally. k-rows [lo,hi) of the
					// transposed matrix are owned here.
					me2 := colb.Local(t, t.ID())
					me2.lo = lo
					me2.rows = make([][]float64, cnt)
					for k := 0; k < cnt; k++ {
						me2.rows[k] = make([]float64, g)
					}
					for src := 0; src < threads; src++ {
						var sb *rowBlock
						if src == t.ID() {
							sb = mine
						} else {
							slo, shi := segBounds(g, threads, src)
							sb = fwd.ReadPart(t, src, int64((shi-slo)*cnt*8))
						}
						for r := range sb.rows {
							for k := 0; k < cnt; k++ {
								me2.rows[k][sb.lo+r] = sb.rows[r][lo+k]
							}
						}
						t.Mem(len(sb.rows) * cnt * 8)
					}
					t.Barrier()

					// Phase 3: tridiagonal solves for owned k.
					ms := sol.Local(t, t.ID())
					ms.lo = lo
					ms.rows = make([][]float64, cnt)
					for k := 0; k < cnt; k++ {
						lambda := 2 - 2*math.Cos(math.Pi*float64(lo+k+1)/float64(g+1))
						ms.rows[k] = poissonTridiag(lambda, me2.rows[k])
						t.Flops(8 * g)
					}
					t.Barrier()

					// Phase 4: transpose back.
					back := make([][]float64, cnt)
					for r := 0; r < cnt; r++ {
						back[r] = make([]float64, g)
					}
					for src := 0; src < threads; src++ {
						var sb *rowBlock
						if src == t.ID() {
							sb = ms
						} else {
							slo, shi := segBounds(g, threads, src)
							sb = sol.ReadPart(t, src, int64((shi-slo)*cnt*8))
						}
						for k := range sb.rows {
							for r := 0; r < cnt; r++ {
								back[r][sb.lo+k] = sb.rows[k][lo+r]
							}
						}
						t.Mem(len(sb.rows) * cnt * 8)
					}
					t.Barrier()

					// Phase 5: inverse DST of owned rows.
					scale := 2 / float64(g+1)
					result := make([][]float64, cnt)
					for r := 0; r < cnt; r++ {
						row := dstRow(back[r])
						for c := range row {
							row[c] *= scale
						}
						result[r] = row
						t.Flops(3*g*g + g)
					}
					t.Barrier()

					if size.Verify {
						ref := poissonReference(g, f)
						for r := 0; r < cnt; r++ {
							for c := 0; c < g; c++ {
								got := result[r][c]
								want := ref[lo+r][c]
								verifyf(math.Abs(got-want) < 1e-9*(1+math.Abs(want)),
									"poisson: u(%d,%d) = %v, want %v", lo+r, c, got, want)
							}
						}
						if t.ID() == 0 {
							// The solution must satisfy the discrete
							// Poisson equation 4u − Σnbr = f.
							maxErr := 0.0
							for r := 0; r < g; r++ {
								for c := 0; c < g; c++ {
									at := func(rr, cc int) float64 {
										if rr < 0 || rr >= g || cc < 0 || cc >= g {
											return 0
										}
										return ref[rr][cc]
									}
									lap := 4*at(r, c) - at(r-1, c) - at(r+1, c) - at(r, c-1) - at(r, c+1)
									if e := math.Abs(lap - f[r*g+c]); e > maxErr {
										maxErr = e
									}
								}
							}
							verifyf(maxErr < 1e-8, "poisson: PDE residual %g", maxErr)
						}
					}
				}
			},
		}
	}
}
