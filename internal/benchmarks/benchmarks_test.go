package benchmarks

import (
	"errors"
	"sort"
	"testing"

	"extrap/internal/core"
	"extrap/internal/trace"
)

// smallSizes gives each benchmark a fast, verification-friendly size.
func smallSize(name string) Size {
	switch name {
	case "embar":
		return Size{N: 10, Verify: true} // 1024 samples
	case "cyclic":
		return Size{N: 128, Verify: true}
	case "sparse":
		return Size{N: 96, Iters: 8, Verify: true}
	case "grid":
		return Size{N: 16, Iters: 12, Verify: true}
	case "mgrid":
		return Size{N: 16, Iters: 2, Verify: true}
	case "poisson":
		return Size{N: 16, Verify: true}
	case "sort":
		return Size{N: 256, Verify: true}
	case "matmul":
		return Size{N: 12, Verify: true}
	}
	return Size{N: 16, Verify: true}
}

// TestAllBenchmarksVerify runs every registered benchmark at several
// thread counts with the built-in verification enabled: the parallel
// result must match the sequential reference.
func TestAllBenchmarksVerify(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			f := b.Factory(smallSize(b.Name()))
			for _, n := range []int{1, 2, 4, 8} {
				if _, err := core.Measure(f(n), core.MeasureOptions{}); err != nil {
					t.Fatalf("%s with %d threads: %v", b.Name(), n, err)
				}
			}
		})
	}
}

// TestBenchmarkTraceShape checks structural properties of the measurement
// traces: valid, with barriers, and (for the communicating benchmarks)
// remote reads.
func TestBenchmarkTraceShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sz := smallSize(b.Name())
			sz.Verify = false
			tr, err := core.Measure(b.Factory(sz)(4), core.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			s := trace.ComputeStats(tr)
			if s.Barriers == 0 {
				t.Error("no barriers recorded")
			}
			if b.Name() != "embar" && s.RemoteReads == 0 {
				t.Errorf("%s: no remote reads at 4 threads", b.Name())
			}
			if s.RemoteWrites != 0 {
				t.Errorf("%s: suite benchmarks must not use remote writes (found %d)",
					b.Name(), s.RemoteWrites)
			}
		})
	}
}

// TestSuiteOrder checks the Table 2 ordering and registry consistency.
func TestSuiteOrder(t *testing.T) {
	suite := Suite()
	want := []string{"embar", "cyclic", "sparse", "grid", "mgrid", "poisson", "sort"}
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d entries", len(suite))
	}
	for i, b := range suite {
		if b.Name() != want[i] {
			t.Errorf("Suite()[%d] = %q, want %q", i, b.Name(), want[i])
		}
		if b.Description() == "" {
			t.Errorf("%s has no description", b.Name())
		}
		if b.DefaultSize().N == 0 {
			t.Errorf("%s has no default size", b.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

// TestTraceDeterminism runs each benchmark twice and requires identical
// traces.
func TestTraceDeterminism(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sz := smallSize(b.Name())
			sz.Verify = false
			run := func() *trace.Trace {
				tr, err := core.Measure(b.Factory(sz)(4), core.MeasureOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			a, bb := run(), run()
			if len(a.Events) != len(bb.Events) {
				t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(bb.Events))
			}
			for i := range a.Events {
				if a.Events[i] != bb.Events[i] {
					t.Fatalf("traces diverge at event %d", i)
				}
			}
		})
	}
}

// fakeBench is a registry probe for duplicate-registration tests.
type fakeBench struct{ name string }

func (f fakeBench) Name() string                     { return f.name }
func (f fakeBench) Description() string              { return "test probe" }
func (f fakeBench) DefaultSize() Size                { return Size{N: 1} }
func (f fakeBench) Factory(Size) core.ProgramFactory { return nil }

// TestRegisterDuplicateTypedError checks the runtime registration path:
// a name collision returns an error matching ErrDuplicate rather than
// panicking, so compose presets can register idempotently.
func TestRegisterDuplicateTypedError(t *testing.T) {
	probe := fakeBench{name: "test-register-probe"}
	if err := Register(probe); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	defer delete(registry, probe.name)
	err := Register(probe)
	if err == nil {
		t.Fatal("duplicate Register returned nil")
	}
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Register error %v does not match ErrDuplicate", err)
	}
	if err := Register(fakeBench{name: "embar"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-registering built-in: got %v, want ErrDuplicate", err)
	}
}

// TestAllSortedByName locks the registry listing order: All() must be
// sorted by name so /v1/benchmarks and /v1/patterns render byte-stable
// output regardless of map iteration order.
func TestAllSortedByName(t *testing.T) {
	for rep := 0; rep < 3; rep++ {
		all := All()
		if len(all) == 0 {
			t.Fatal("empty registry")
		}
		if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name() < all[j].Name() }) {
			names := make([]string, len(all))
			for i, b := range all {
				names[i] = b.Name()
			}
			t.Fatalf("All() not sorted by name: %v", names)
		}
	}
}
