package benchmarks

import (
	"testing"

	"extrap/internal/core"
	"extrap/internal/trace"
)

// smallSizes gives each benchmark a fast, verification-friendly size.
func smallSize(name string) Size {
	switch name {
	case "embar":
		return Size{N: 10, Verify: true} // 1024 samples
	case "cyclic":
		return Size{N: 128, Verify: true}
	case "sparse":
		return Size{N: 96, Iters: 8, Verify: true}
	case "grid":
		return Size{N: 16, Iters: 12, Verify: true}
	case "mgrid":
		return Size{N: 16, Iters: 2, Verify: true}
	case "poisson":
		return Size{N: 16, Verify: true}
	case "sort":
		return Size{N: 256, Verify: true}
	case "matmul":
		return Size{N: 12, Verify: true}
	}
	return Size{N: 16, Verify: true}
}

// TestAllBenchmarksVerify runs every registered benchmark at several
// thread counts with the built-in verification enabled: the parallel
// result must match the sequential reference.
func TestAllBenchmarksVerify(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			f := b.Factory(smallSize(b.Name()))
			for _, n := range []int{1, 2, 4, 8} {
				if _, err := core.Measure(f(n), core.MeasureOptions{}); err != nil {
					t.Fatalf("%s with %d threads: %v", b.Name(), n, err)
				}
			}
		})
	}
}

// TestBenchmarkTraceShape checks structural properties of the measurement
// traces: valid, with barriers, and (for the communicating benchmarks)
// remote reads.
func TestBenchmarkTraceShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sz := smallSize(b.Name())
			sz.Verify = false
			tr, err := core.Measure(b.Factory(sz)(4), core.MeasureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			s := trace.ComputeStats(tr)
			if s.Barriers == 0 {
				t.Error("no barriers recorded")
			}
			if b.Name() != "embar" && s.RemoteReads == 0 {
				t.Errorf("%s: no remote reads at 4 threads", b.Name())
			}
			if s.RemoteWrites != 0 {
				t.Errorf("%s: suite benchmarks must not use remote writes (found %d)",
					b.Name(), s.RemoteWrites)
			}
		})
	}
}

// TestSuiteOrder checks the Table 2 ordering and registry consistency.
func TestSuiteOrder(t *testing.T) {
	suite := Suite()
	want := []string{"embar", "cyclic", "sparse", "grid", "mgrid", "poisson", "sort"}
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d entries", len(suite))
	}
	for i, b := range suite {
		if b.Name() != want[i] {
			t.Errorf("Suite()[%d] = %q, want %q", i, b.Name(), want[i])
		}
		if b.Description() == "" {
			t.Errorf("%s has no description", b.Name())
		}
		if b.DefaultSize().N == 0 {
			t.Errorf("%s has no default size", b.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

// TestTraceDeterminism runs each benchmark twice and requires identical
// traces.
func TestTraceDeterminism(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			sz := smallSize(b.Name())
			sz.Verify = false
			run := func() *trace.Trace {
				tr, err := core.Measure(b.Factory(sz)(4), core.MeasureOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			a, bb := run(), run()
			if len(a.Events) != len(bb.Events) {
				t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(bb.Events))
			}
			for i := range a.Events {
				if a.Events[i] != bb.Events[i] {
					t.Fatalf("traces diverge at event %d", i)
				}
			}
		})
	}
}
