package benchmarks

import (
	"math"

	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/vtime"
)

// Embar is the NAS "embarrassingly parallel" benchmark: generate pairs of
// uniform deviates, keep those inside the unit circle, turn them into
// Gaussian deviates by the polar method, and tally the deviates into
// annular bins. Communication is limited to the final tally reduction, so
// the benchmark is expected to deliver linear speedup on almost any
// platform — which Figure 4 confirms.
type Embar struct{}

func init() { register(Embar{}) }

// Name returns "embar".
func (Embar) Name() string { return "embar" }

// Description matches Table 2.
func (Embar) Description() string { return `NAS "embarrassingly parallel" benchmark` }

// DefaultSize generates 2^17 pairs.
func (Embar) DefaultSize() Size { return Size{N: 17} }

const embarBins = 10

// embarSample deterministically derives the i-th candidate pair from the
// global sample index, so results are independent of the thread count —
// the property the verification relies on.
func embarSample(seed uint64, i int) (x, y float64) {
	r := vtime.NewRand(seed + uint64(i)*0x9e37)
	x = 2*r.Float64() - 1
	y = 2*r.Float64() - 1
	return x, y
}

// embarReference tallies all samples sequentially.
func embarReference(seed uint64, samples int) (counts [embarBins]int64, sx, sy float64) {
	for i := 0; i < samples; i++ {
		x, y := embarSample(seed, i)
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		sx += gx
		sy += gy
		m := math.Max(math.Abs(gx), math.Abs(gy))
		b := int(m)
		if b >= embarBins {
			b = embarBins - 1
		}
		counts[b]++
	}
	return counts, sx, sy
}

// Factory builds the Embar program: samples = 2^N split contiguously over
// threads.
func (Embar) Factory(size Size) core.ProgramFactory {
	samples := 1 << size.N
	const seed = 0xe4ba2
	return func(threads int) core.Program {
		return core.Program{
			Name:    "embar",
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				partials := pcxx.PerThread[[embarBins]float64](rt, "tallies", embarBins*8)
				sums := pcxx.PerThread[float64](rt, "sums", 8)
				return func(t *pcxx.Thread) {
					lo := t.ID() * samples / threads
					hi := (t.ID() + 1) * samples / threads
					var counts [embarBins]int64
					var sx, sy float64
					for i := lo; i < hi; i++ {
						x, y := embarSample(seed, i)
						q := x*x + y*y
						t.Flops(10) // pair generation + acceptance test
						if q > 1 || q == 0 {
							continue
						}
						f := math.Sqrt(-2 * math.Log(q) / q)
						gx, gy := x*f, y*f
						sx += gx
						sy += gy
						m := math.Max(math.Abs(gx), math.Abs(gy))
						b := int(m)
						if b >= embarBins {
							b = embarBins - 1
						}
						counts[b]++
						t.Flops(15) // polar transform + binning
					}
					local := partials.Local(t, t.ID())
					for b := 0; b < embarBins; b++ {
						local[b] = float64(counts[b])
					}
					*sums.Local(t, t.ID()) = sx + sy

					// Tally reduction: a binary tree of remote reads, one
					// bin vector per round.
					n := t.N()
					for stride := 1; stride < n; stride *= 2 {
						t.Barrier()
						partner := t.ID() + stride
						if t.ID()%(2*stride) == 0 && partner < n {
							theirs := partials.Read(t, partner)
							mine := partials.Local(t, t.ID())
							for b := 0; b < embarBins; b++ {
								mine[b] += theirs[b]
							}
							*sums.Local(t, t.ID()) += sums.Read(t, partner)
							t.Flops(embarBins + 1)
						}
					}
					t.Barrier()

					if size.Verify && t.ID() == 0 {
						want, wsx, wsy := embarReference(seed, samples)
						got := partials.Local(t, 0)
						for b := 0; b < embarBins; b++ {
							verifyf(got[b] == float64(want[b]),
								"embar: bin %d = %v, want %d", b, got[b], want[b])
						}
						gotSum := *sums.Local(t, 0)
						verifyf(math.Abs(gotSum-(wsx+wsy)) < 1e-6,
							"embar: deviate sum %v, want %v", gotSum, wsx+wsy)
					}
				}
			},
		}
	}
}
