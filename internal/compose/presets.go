package compose

import (
	"errors"
	"fmt"
	"sort"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
)

// Preset is a named composed workload registered in the benchmarks
// registry, so the name works anywhere a benchmark name is accepted —
// the CLI, every /v1 endpoint, job files, and cluster shard specs
// (workers resolve the name from their own registry; no spec bytes
// travel).
type Preset struct {
	name string
	desc string
	w    *Workload
}

// Name returns the preset name (e.g. "pipeline8").
func (p Preset) Name() string { return p.name }

// Description summarizes the preset and its underlying tree.
func (p Preset) Description() string { return p.desc }

// DefaultSize returns the underlying workload's spec-level size.
func (p Preset) DefaultSize() benchmarks.Size { return p.w.DefaultSize() }

// Factory instantiates the underlying workload's lowered program, under
// the preset's registry name so traces and predictions key by it.
func (p Preset) Factory(size benchmarks.Size) core.ProgramFactory {
	presetHits.Add(1)
	inner := p.w.Factory(size)
	return func(threads int) core.Program {
		prog := inner(threads)
		prog.Name = p.name
		return prog
	}
}

// WorkUnits delegates to the underlying workload's estimator.
func (p Preset) WorkUnits(sz benchmarks.Size, threads int) int64 {
	return p.w.WorkUnits(sz, threads)
}

// Workload returns the preset's underlying composed workload (for
// discovery endpoints that report the canonical encoding).
func (p Preset) Workload() *Workload { return p.w }

// presetSpecs are the built-in named workloads. The JSON here is the
// source of truth: it parses through exactly the FromJSON path user
// specs use, so a preset is always expressible as an ad-hoc workload.
var presetSpecs = []struct {
	name string
	desc string
	spec string
}{
	{
		name: "pipeline8",
		desc: "preset composed workload: 8-stage software pipeline of bsp compute stages",
		spec: `{"size":32,"iters":2,"root":{"kind":"pipeline","message_bytes":64,"stages":[
			{"kind":"bsp","grain":4},{"kind":"bsp","grain":4},{"kind":"bsp","grain":4},{"kind":"bsp","grain":4},
			{"kind":"bsp","grain":4},{"kind":"bsp","grain":4},{"kind":"bsp","grain":4},{"kind":"bsp","grain":4}]}}`,
	},
	{
		name: "farm-stencil",
		desc: "preset composed workload: imbalanced task farm feeding a 2-D halo-exchange stencil",
		spec: `{"size":16,"iters":1,"root":{"kind":"seq","children":[
			{"kind":"task_farm","tasks":64,"grain":8,"imbalance":0.5},
			{"kind":"stencil","width":32,"height":8,"sweeps":4,"grain":2,"message_bytes":128}]}}`,
	},
	{
		name: "bsp-reduce",
		desc: "preset composed workload: bsp supersteps finished by a flat all-gather reduction",
		spec: `{"size":32,"iters":1,"root":{"kind":"seq","children":[
			{"kind":"bsp","supersteps":6,"grain":8,"message_bytes":256},
			{"kind":"reduction","op":"flat","grain":4}]}}`,
	},
}

var presets []Preset

// Presets returns the built-in named workloads sorted by name.
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

func init() {
	for _, ps := range presetSpecs {
		w, err := FromJSON([]byte(ps.spec))
		if err != nil {
			panic(fmt.Sprintf("compose: preset %q spec invalid: %v", ps.name, err))
		}
		p := Preset{name: ps.name, desc: ps.desc, w: w}
		// Registration is idempotent through the typed error: a second
		// init path (e.g. test binaries linking the package twice via
		// different import graphs) is not a crash.
		if err := benchmarks.Register(p); err != nil && !errors.Is(err, benchmarks.ErrDuplicate) {
			panic(fmt.Sprintf("compose: registering preset %q: %v", ps.name, err))
		}
		presets = append(presets, p)
	}
	sort.Slice(presets, func(i, j int) bool { return presets[i].name < presets[j].name })
}

// PatternInfo describes one pattern kind for the discovery endpoint.
type PatternInfo struct {
	Kind        string   `json:"kind"`
	Description string   `json:"description"`
	Fields      []string `json:"fields"`
}

// Patterns returns the DSL's pattern kinds sorted by kind, for
// GET /v1/patterns. The listing is static, so the endpoint's bytes are
// stable across processes and releases of the same version.
func Patterns() []PatternInfo {
	return []PatternInfo{
		{Kind: KindBSP, Description: "superstep phases: compute, partner exchange of message_bytes, barrier",
			Fields: []string{"grain", "message_bytes", "imbalance", "supersteps"}},
		{Kind: KindPar, Description: "children in order without separating barriers (communication overlaps)",
			Fields: []string{"children"}},
		{Kind: KindPipeline, Description: "stages in sequence with a neighbor-shift handoff of message_bytes between stages",
			Fields: []string{"grain", "message_bytes", "imbalance", "stages"}},
		{Kind: KindReduction, Description: "per-thread grains combined by a tree (log2 n rounds) or flat (n*(n-1) messages) reduction",
			Fields: []string{"grain", "message_bytes", "imbalance", "op"}},
		{Kind: KindSeq, Description: "children in order with separating barriers",
			Fields: []string{"children"}},
		{Kind: KindStencil, Description: "block-distributed 1-D/2-D grid; each sweep reads clamped neighbors (halo exchange) and barriers",
			Fields: []string{"grain", "message_bytes", "imbalance", "width", "height", "sweeps"}},
		{Kind: KindTaskFarm, Description: "tasks dealt cyclically with deterministic imbalance, then a tree reduction",
			Fields: []string{"grain", "message_bytes", "imbalance", "tasks"}},
	}
}
