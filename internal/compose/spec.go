// Package compose is the compositional workload subsystem: it parses a
// small declarative JSON spec of nested parallel design patterns —
// pipeline, task_farm, stencil, reduction, bsp, and the seq/par
// combinators — validates it against hard ceilings, canonicalizes it
// into the deterministic wl/v1 key scheme, and lowers it to a
// deterministic pcxx program that runs through the measure → translate →
// simulate pipeline exactly like a registered benchmark.
//
// A composed workload is indistinguishable from a built-in kernel to
// every downstream subsystem: its Name() is derived from the canonical
// encoding ("wl:" + 32 hex digits of the SHA-256), so cache keys, store
// addresses, coordinator shard affinity, and job resume all work
// unchanged, and byte-identity across workers/batch/format/restart holds
// because the lowered program is a pure function of the normalized spec.
package compose

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Ceilings bound hostile or runaway specs. They compose with the serve
// work budget: validation caps the structural size here, and the
// request-time budget caps the instantiated event volume via WorkUnits.
const (
	// MaxSpecBytes bounds the raw JSON accepted by FromJSON. It is well
	// under the cluster shard body cap, so a workload that validates
	// locally always fits on the coordinator→worker wire.
	MaxSpecBytes = 16 << 10
	// MaxDepth bounds pattern nesting (the root is depth 1).
	MaxDepth = 8
	// MaxNodes bounds the total pattern-node count of one spec.
	MaxNodes = 64
	// MaxFanout bounds the stage/child count of one composite node.
	MaxFanout = 16
	// MaxTasks bounds a task_farm's task count.
	MaxTasks = 4096
	// MaxGridDim bounds each stencil dimension; MaxGridCells bounds the
	// width×height product.
	MaxGridDim   = 1024
	MaxGridCells = 4096
	// MaxSteps bounds stencil sweeps and bsp supersteps.
	MaxSteps = 32
	// MaxGrain bounds the per-element compute grain (flops per unit of
	// the size scale).
	MaxGrain = 1 << 16
	// MaxMessageBytes bounds the per-message transfer size.
	MaxMessageBytes = 1 << 16
	// MaxImbalance bounds the deterministic load-imbalance amplitude.
	MaxImbalance = 4.0
	// MaxScale and MaxSpecIters bound the spec-level default size and
	// iteration count (requests may override within the serve ceilings).
	MaxScale     = 1 << 16
	MaxSpecIters = 1 << 16
	// MaxSpecEvents bounds the estimated single-thread event volume of
	// one spec iteration, so even a structurally legal spec cannot
	// demand an absurd measurement.
	MaxSpecEvents = 1 << 20
)

// Pattern kinds.
const (
	KindPipeline  = "pipeline"
	KindTaskFarm  = "task_farm"
	KindStencil   = "stencil"
	KindReduction = "reduction"
	KindBSP       = "bsp"
	KindSeq       = "seq"
	KindPar       = "par"
)

// Reduction shapes.
const (
	OpTree = "tree"
	OpFlat = "flat"
)

// Node is one pattern node of a workload spec. Kind selects the
// pattern; the remaining fields parameterize it (unused fields must be
// absent or zero — validation rejects cross-kind leakage so a typo'd
// spec fails loudly instead of silently meaning something else).
type Node struct {
	Kind string `json:"kind"`

	// Grain is the compute grain per element/task/superstep, in flops
	// per unit of the workload's size scale. Zero means 1.
	Grain int `json:"grain,omitempty"`
	// MessageBytes is the transfer size of the pattern's communication.
	// Zero means 8.
	MessageBytes int `json:"message_bytes,omitempty"`
	// Imbalance is the deterministic load-imbalance amplitude in
	// [0, MaxImbalance]: element k's grain is scaled by a pseudo-random
	// factor in [1, 1+Imbalance] seeded by k.
	Imbalance float64 `json:"imbalance,omitempty"`

	// Stages are a pipeline's stage nodes (in order).
	Stages []Node `json:"stages,omitempty"`
	// Children are a seq/par combinator's child nodes.
	Children []Node `json:"children,omitempty"`

	// Tasks is a task_farm's task count. Zero means 16.
	Tasks int `json:"tasks,omitempty"`
	// Width and Height shape a stencil grid. Height 0 selects the 1-D
	// halo exchange; Width zero means 16.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Sweeps is the stencil's sweep count. Zero means 1.
	Sweeps int `json:"sweeps,omitempty"`
	// Op selects the reduction shape: "tree" (default) or "flat".
	Op string `json:"op,omitempty"`
	// Supersteps is a bsp node's superstep count. Zero means 1.
	Supersteps int `json:"supersteps,omitempty"`
}

// Spec is a full workload spec: a default problem scale plus the
// pattern tree.
type Spec struct {
	// Size is the default size scale (benchmarks.Size.N): a multiplier
	// on every node's compute grain. Zero means 16.
	Size int `json:"size,omitempty"`
	// Iters is the default outer repetition count
	// (benchmarks.Size.Iters). Zero means 1.
	Iters int `json:"iters,omitempty"`
	// Root is the pattern tree.
	Root Node `json:"root"`
}

// isComposite reports whether kind nests other nodes.
func isComposite(kind string) bool {
	return kind == KindPipeline || kind == KindSeq || kind == KindPar
}

// normalize fills documented defaults in place so canonicalization and
// lowering see one spelling of each spec. Called only after validate.
func (n *Node) normalize() {
	if n.Grain == 0 {
		n.Grain = 1
	}
	if n.MessageBytes == 0 {
		n.MessageBytes = 8
	}
	switch n.Kind {
	case KindTaskFarm:
		if n.Tasks == 0 {
			n.Tasks = 16
		}
	case KindStencil:
		if n.Width == 0 {
			n.Width = 16
		}
		if n.Sweeps == 0 {
			n.Sweeps = 1
		}
	case KindReduction:
		if n.Op == "" {
			n.Op = OpTree
		}
	case KindBSP:
		if n.Supersteps == 0 {
			n.Supersteps = 1
		}
	}
	for i := range n.Stages {
		n.Stages[i].normalize()
	}
	for i := range n.Children {
		n.Children[i].normalize()
	}
}

// validate walks the node at the given depth, accumulating the node
// count, and rejects anything outside the ceilings.
func (n *Node) validate(depth int, nodes *int) error {
	if depth > MaxDepth {
		return fmt.Errorf("compose: nesting depth %d exceeds the ceiling %d", depth, MaxDepth)
	}
	*nodes++
	if *nodes > MaxNodes {
		return fmt.Errorf("compose: spec exceeds the %d-node ceiling", MaxNodes)
	}
	if n.Grain < 0 || n.Grain > MaxGrain {
		return fmt.Errorf("compose: %s grain %d out of range [0, %d]", n.Kind, n.Grain, MaxGrain)
	}
	if n.MessageBytes < 0 || n.MessageBytes > MaxMessageBytes {
		return fmt.Errorf("compose: %s message_bytes %d out of range [0, %d]", n.Kind, n.MessageBytes, MaxMessageBytes)
	}
	if n.Imbalance < 0 || n.Imbalance > MaxImbalance || n.Imbalance != n.Imbalance {
		return fmt.Errorf("compose: %s imbalance %v out of range [0, %v]", n.Kind, n.Imbalance, MaxImbalance)
	}
	if !isComposite(n.Kind) && (len(n.Stages) > 0 || len(n.Children) > 0) {
		return fmt.Errorf("compose: leaf pattern %q cannot nest stages or children", n.Kind)
	}
	if n.Kind != KindTaskFarm && n.Tasks != 0 {
		return fmt.Errorf("compose: %q does not take tasks", n.Kind)
	}
	if n.Kind != KindStencil && (n.Width != 0 || n.Height != 0 || n.Sweeps != 0) {
		return fmt.Errorf("compose: %q does not take width/height/sweeps", n.Kind)
	}
	if n.Kind != KindReduction && n.Op != "" {
		return fmt.Errorf("compose: %q does not take op", n.Kind)
	}
	if n.Kind != KindBSP && n.Supersteps != 0 {
		return fmt.Errorf("compose: %q does not take supersteps", n.Kind)
	}

	switch n.Kind {
	case KindPipeline:
		if len(n.Children) > 0 {
			return fmt.Errorf("compose: pipeline nests via stages, not children")
		}
		if len(n.Stages) < 1 || len(n.Stages) > MaxFanout {
			return fmt.Errorf("compose: pipeline needs 1..%d stages, got %d", MaxFanout, len(n.Stages))
		}
		for i := range n.Stages {
			if err := n.Stages[i].validate(depth+1, nodes); err != nil {
				return err
			}
		}
	case KindSeq, KindPar:
		if len(n.Stages) > 0 {
			return fmt.Errorf("compose: %s nests via children, not stages", n.Kind)
		}
		if len(n.Children) < 1 || len(n.Children) > MaxFanout {
			return fmt.Errorf("compose: %s needs 1..%d children, got %d", n.Kind, MaxFanout, len(n.Children))
		}
		for i := range n.Children {
			if err := n.Children[i].validate(depth+1, nodes); err != nil {
				return err
			}
		}
	case KindTaskFarm:
		if n.Tasks < 0 || n.Tasks > MaxTasks {
			return fmt.Errorf("compose: task_farm tasks %d out of range [0, %d]", n.Tasks, MaxTasks)
		}
	case KindStencil:
		if n.Width < 0 || n.Width > MaxGridDim {
			return fmt.Errorf("compose: stencil width %d out of range [0, %d]", n.Width, MaxGridDim)
		}
		if n.Height < 0 || n.Height > MaxGridDim {
			return fmt.Errorf("compose: stencil height %d out of range [0, %d]", n.Height, MaxGridDim)
		}
		w, h := n.Width, n.Height
		if w == 0 {
			w = 16
		}
		if h == 0 {
			h = 1
		}
		if w*h > MaxGridCells {
			return fmt.Errorf("compose: stencil grid %d×%d exceeds the %d-cell ceiling", w, h, MaxGridCells)
		}
		if n.Sweeps < 0 || n.Sweeps > MaxSteps {
			return fmt.Errorf("compose: stencil sweeps %d out of range [0, %d]", n.Sweeps, MaxSteps)
		}
	case KindReduction:
		if n.Op != "" && n.Op != OpTree && n.Op != OpFlat {
			return fmt.Errorf("compose: reduction op %q is not %q or %q", n.Op, OpTree, OpFlat)
		}
	case KindBSP:
		if n.Supersteps < 0 || n.Supersteps > MaxSteps {
			return fmt.Errorf("compose: bsp supersteps %d out of range [0, %d]", n.Supersteps, MaxSteps)
		}
	default:
		return fmt.Errorf("compose: unknown pattern kind %q", n.Kind)
	}
	return nil
}

// shape walks a normalized node accumulating the node count and the
// maximum nesting depth.
func (n *Node) shape(depth int, nodes, maxDepth *int) {
	*nodes++
	if depth > *maxDepth {
		*maxDepth = depth
	}
	for i := range n.Stages {
		n.Stages[i].shape(depth+1, nodes, maxDepth)
	}
	for i := range n.Children {
		n.Children[i].shape(depth+1, nodes, maxDepth)
	}
}

// eventsTotal estimates the total trace event volume one iteration of a
// normalized node produces across th threads — the basis of the
// WorkEstimator budget and of the MaxSpecEvents validation guard. The
// coefficients mirror the lowering in lower.go: each task or cell costs
// a compute event plus its communication, each collective costs
// per-thread rounds, and the flat reduction is deliberately quadratic.
func (n *Node) eventsTotal(th int64) int64 {
	if th < 1 {
		th = 1
	}
	var ev int64
	switch n.Kind {
	case KindPipeline:
		for i := range n.Stages {
			ev += n.Stages[i].eventsTotal(th)
			ev += 4 * th // per-stage handoff: write, read, two barriers
		}
	case KindSeq:
		for i := range n.Children {
			ev += n.Children[i].eventsTotal(th) + th
		}
	case KindPar:
		for i := range n.Children {
			ev += n.Children[i].eventsTotal(th)
		}
	case KindTaskFarm:
		ev += 2*int64(n.Tasks) + 6*th // task grains + tree reduction
	case KindStencil:
		h := int64(n.Height)
		if h == 0 {
			h = 1
		}
		ev += int64(n.Width)*h*int64(n.Sweeps)*5 + int64(n.Sweeps)*th
	case KindReduction:
		if n.Op == OpFlat {
			ev += th*th + 2*th
		} else {
			ev += 6 * th
		}
	case KindBSP:
		ev += int64(n.Supersteps) * 4 * th
	}
	return ev
}

// parseSpec strictly decodes raw into a validated, normalized Spec.
func parseSpec(raw []byte) (*Spec, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("compose: empty workload spec")
	}
	if len(raw) > MaxSpecBytes {
		return nil, fmt.Errorf("compose: spec is %d bytes, ceiling is %d", len(raw), MaxSpecBytes)
	}
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("compose: decoding spec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("compose: trailing data after spec object")
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	sp.normalize()
	return &sp, nil
}

// validate checks the top-level fields and the pattern tree.
func (sp *Spec) validate() error {
	if sp.Size < 0 || sp.Size > MaxScale {
		return fmt.Errorf("compose: size %d out of range [0, %d]", sp.Size, MaxScale)
	}
	if sp.Iters < 0 || sp.Iters > MaxSpecIters {
		return fmt.Errorf("compose: iters %d out of range [0, %d]", sp.Iters, MaxSpecIters)
	}
	if sp.Root.Kind == "" {
		return fmt.Errorf("compose: spec has no root pattern")
	}
	nodes := 0
	return sp.Root.validate(1, &nodes)
}

// normalize fills the documented defaults.
func (sp *Spec) normalize() {
	if sp.Size == 0 {
		sp.Size = 16
	}
	if sp.Iters == 0 {
		sp.Iters = 1
	}
	sp.Root.normalize()
}
