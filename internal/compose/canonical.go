package compose

import (
	"fmt"
	"strconv"
	"strings"
)

// wl/v1 canonical encoding.
//
// Like the trace/cfg/pred encodings in internal/core, the string built
// here is a compatibility contract: its SHA-256 derives the workload's
// registry-facing name (core.WorkloadName), which in turn is the Bench
// field of every trace and prediction key the workload produces and the
// affinity hash input of the distributed tier. Two specs that differ
// only in spelling (field order, defaulted fields, float formatting)
// canonicalize identically because encoding happens after
// normalization; changing the encoding orphans every composed artifact
// ever stored, so bump to wl/v2 and migrate deliberately if it must
// change. The store golden test locks the format against fixtures.

// Canonical returns the wl/v1 canonical encoding of a normalized spec.
func (sp *Spec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wl/v1|size=%d|iters=%d|", sp.Size, sp.Iters)
	canonNode(&b, &sp.Root)
	return b.String()
}

// canonNode spells out one node: kind, the common knobs in fixed order,
// the kind-specific parameters, then the nested nodes in brackets.
func canonNode(b *strings.Builder, n *Node) {
	fmt.Fprintf(b, "%s(g=%d,m=%d,i=%s", n.Kind, n.Grain, n.MessageBytes, canonFloat(n.Imbalance))
	switch n.Kind {
	case KindTaskFarm:
		fmt.Fprintf(b, ",t=%d", n.Tasks)
	case KindStencil:
		fmt.Fprintf(b, ",w=%d,h=%d,s=%d", n.Width, n.Height, n.Sweeps)
	case KindReduction:
		fmt.Fprintf(b, ",op=%s", n.Op)
	case KindBSP:
		fmt.Fprintf(b, ",ss=%d", n.Supersteps)
	}
	b.WriteByte(')')
	kids := n.Stages
	if len(kids) == 0 {
		kids = n.Children
	}
	if len(kids) > 0 {
		b.WriteByte('[')
		for i := range kids {
			if i > 0 {
				b.WriteByte(';')
			}
			canonNode(b, &kids[i])
		}
		b.WriteByte(']')
	}
}

// canonFloat formats a float with the shortest round-trippable decimal
// representation, matching internal/core's convention.
func canonFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
