package compose

import (
	"strings"
	"testing"

	"extrap/internal/benchmarks"
)

// FuzzComposeSpec feeds hostile, deep, and oversized specs to the full
// FromJSON path: any input must either parse into a workload whose
// canonical identity is self-consistent or return an error — never
// panic. Accepted workloads must stay within the published ceilings and
// survive a lowering at a small thread count, since lowering runs on
// worker nodes fed coordinator-relayed client bytes.
func FuzzComposeSpec(f *testing.F) {
	f.Add([]byte(nestedSpec))
	f.Add([]byte(`{"root":{"kind":"bsp"}}`))
	f.Add([]byte(`{"size":8,"root":{"kind":"stencil","width":32,"height":4,"sweeps":2}}`))
	f.Add([]byte(`{"root":{"kind":"pipeline","stages":[{"kind":"task_farm","tasks":9}]}}`))
	f.Add([]byte(`{"root":{"kind":"reduction","op":"flat","imbalance":1.5}}`))
	f.Add([]byte(`{"root":{"kind":"seq","children":[{"kind":"par","children":[{"kind":"bsp"}]}]}}`))
	f.Add([]byte(`{"root":{"kind":"seq","children":[]}}`))
	f.Add([]byte(strings.Repeat(`{"root":{"kind":"seq","children":[`, 40)))
	f.Add([]byte(`{"root":{"kind":"bsp","imbalance":1e308}}`))
	f.Add([]byte(`{"root":{"kind":"task_farm","tasks":-1}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		w, err := FromJSON(raw)
		if err != nil {
			return
		}
		if w.Name() != w.Name() || len(w.Name()) != 35 {
			t.Fatalf("inconsistent name %q", w.Name())
		}
		if w.Nodes() > MaxNodes || w.Depth() > MaxDepth {
			t.Fatalf("accepted spec outside ceilings: %d nodes, depth %d", w.Nodes(), w.Depth())
		}
		if w.WorkUnits(benchmarks.Size{N: 1, Iters: 1}, 1) > MaxSpecEvents {
			t.Fatal("accepted spec beyond the event ceiling")
		}
		// Round trip: the canonical re-marshal must re-derive the same
		// identity.
		again, err := FromJSON(w.SpecJSON())
		if err != nil {
			t.Fatalf("SpecJSON of accepted spec rejected: %v", err)
		}
		if again.Canonical() != w.Canonical() {
			t.Fatalf("round trip changed canonical:\n%s\n%s", w.Canonical(), again.Canonical())
		}
		// Lowering must not panic; instantiate without running.
		prog := w.Factory(benchmarks.Size{N: 1, Iters: 1})(2)
		if prog.Threads != 2 || prog.Setup == nil {
			t.Fatal("bad lowered program")
		}
	})
}
