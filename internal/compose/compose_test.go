package compose

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/trace"
)

// nestedSpec is the acceptance-criteria shape: a pipeline of task_farm
// and stencil stages.
const nestedSpec = `{"size":8,"iters":2,"root":{"kind":"pipeline","message_bytes":32,"stages":[
	{"kind":"task_farm","tasks":24,"grain":4,"imbalance":0.5},
	{"kind":"stencil","width":24,"sweeps":2,"grain":2},
	{"kind":"seq","children":[{"kind":"bsp","supersteps":2},{"kind":"reduction","op":"flat"}]}]}}`

func TestFromJSONCanonicalAndName(t *testing.T) {
	w, err := FromJSON([]byte(nestedSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Canonical(), "wl/v1|size=8|iters=2|pipeline(") {
		t.Errorf("canonical = %q", w.Canonical())
	}
	if !strings.HasPrefix(w.Name(), "wl:") || len(w.Name()) != 3+32 {
		t.Errorf("name = %q, want wl: + 32 hex digits", w.Name())
	}
	if w.Name() != core.WorkloadName(w.Canonical()) {
		t.Error("name does not derive from the canonical encoding")
	}
	if w.Nodes() != 6 || w.Depth() != 3 {
		t.Errorf("nodes=%d depth=%d, want 6/3", w.Nodes(), w.Depth())
	}
}

func TestSpellingVariantsCanonicalizeIdentically(t *testing.T) {
	// Same spec with fields reordered, defaults spelled out, and
	// whitespace shuffled must derive the same workload.
	variant := `{
		"iters": 2, "size": 8,
		"root": {"stages": [
			{"imbalance": 0.5, "grain": 4, "tasks": 24, "kind": "task_farm"},
			{"sweeps": 2, "kind": "stencil", "grain": 2, "width": 24},
			{"children": [{"supersteps": 2, "kind": "bsp"}, {"op": "flat", "kind": "reduction"}], "kind": "seq"}
		], "message_bytes": 32, "kind": "pipeline"}}`
	a, err := FromJSON([]byte(nestedSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromJSON([]byte(variant))
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical mismatch:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if a.Name() != b.Name() {
		t.Errorf("name mismatch: %s vs %s", a.Name(), b.Name())
	}
	if a != b {
		t.Error("equal canonical keys did not memoize to one Workload")
	}
}

func TestSpecJSONRoundTrips(t *testing.T) {
	w, err := FromJSON([]byte(nestedSpec))
	if err != nil {
		t.Fatal(err)
	}
	again, err := FromJSON(w.SpecJSON())
	if err != nil {
		t.Fatalf("re-parsing SpecJSON: %v", err)
	}
	if again.Canonical() != w.Canonical() || again.Name() != w.Name() {
		t.Error("SpecJSON round trip changed the canonical identity")
	}
}

func TestValidationRejections(t *testing.T) {
	nested := `{"kind":"reduction"}`
	for i := 0; i < 10; i++ {
		nested = `{"kind":"seq","children":[` + nested + `]}`
	}
	cases := []struct{ name, spec string }{
		{"empty", ``},
		{"not json", `{{{`},
		{"unknown field", `{"root":{"kind":"bsp"},"bogus":1}`},
		{"no root", `{"size":4}`},
		{"unknown kind", `{"root":{"kind":"fractal"}}`},
		{"too deep", `{"root":` + nested + `}`},
		{"leaf with children", `{"root":{"kind":"bsp","children":[{"kind":"bsp"}]}}`},
		{"pipeline no stages", `{"root":{"kind":"pipeline"}}`},
		{"pipeline via children", `{"root":{"kind":"pipeline","children":[{"kind":"bsp"}]}}`},
		{"cross-kind tasks", `{"root":{"kind":"stencil","tasks":4}}`},
		{"cross-kind op", `{"root":{"kind":"bsp","op":"tree"}}`},
		{"bad op", `{"root":{"kind":"reduction","op":"sideways"}}`},
		{"grain too big", `{"root":{"kind":"bsp","grain":100000}}`},
		{"negative grain", `{"root":{"kind":"bsp","grain":-1}}`},
		{"imbalance too big", `{"root":{"kind":"bsp","imbalance":9}}`},
		{"grid too big", `{"root":{"kind":"stencil","width":1024,"height":1024}}`},
		{"tasks too many", `{"root":{"kind":"task_farm","tasks":99999}}`},
		{"size too big", `{"size":1000000,"root":{"kind":"bsp"}}`},
		{"trailing data", `{"root":{"kind":"bsp"}} {"root":{"kind":"bsp"}}`},
	}
	for _, c := range cases {
		if _, err := FromJSON([]byte(c.spec)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := FromJSON(make([]byte, MaxSpecBytes+1)); err == nil {
		t.Error("oversized spec accepted")
	}
}

func TestNodeBudgetRejected(t *testing.T) {
	// 1 root + 16 children + 16×4 grandchildren = 81 nodes > 64.
	leaf := `{"kind":"bsp"}`
	quad := `{"kind":"par","children":[` + strings.Repeat(leaf+",", 3) + leaf + `]}`
	spec := `{"root":{"kind":"seq","children":[` + strings.Repeat(quad+",", 15) + quad + `]}}`
	if _, err := FromJSON([]byte(spec)); err == nil {
		t.Fatal("81-node spec accepted")
	} else if !strings.Contains(err.Error(), "node ceiling") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// measure runs one measurement of a workload and returns the trace.
func measure(t *testing.T, b benchmarks.Benchmark, sz benchmarks.Size, threads int) *trace.Trace {
	t.Helper()
	tr, err := core.Measure(b.Factory(sz)(threads), core.MeasureOptions{})
	if err != nil {
		t.Fatalf("measuring %s: %v", b.Name(), err)
	}
	return tr
}

func TestLoweredProgramsMeasureDeterministically(t *testing.T) {
	w, err := FromJSON([]byte(nestedSpec))
	if err != nil {
		t.Fatal(err)
	}
	sz := w.DefaultSize()
	for _, threads := range []int{1, 2, 4, 8} {
		a := measure(t, w, sz, threads)
		b := measure(t, w, sz, threads)
		var ab, bb bytes.Buffer
		if err := trace.WriteBinary(&ab, a); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(&bb, b); err != nil {
			t.Fatal(err)
		}
		if ab.String() != bb.String() {
			t.Fatalf("%d threads: repeated measurement differs", threads)
		}
		if len(a.Events) == 0 {
			t.Fatalf("%d threads: empty trace", threads)
		}
	}
}

func TestPatternFamiliesProduceCommunication(t *testing.T) {
	families := map[string]string{
		"pipeline":  `{"root":{"kind":"pipeline","stages":[{"kind":"bsp"},{"kind":"bsp"}]}}`,
		"task_farm": `{"root":{"kind":"task_farm","tasks":16}}`,
		"stencil1d": `{"root":{"kind":"stencil","width":32,"sweeps":2}}`,
		"stencil2d": `{"root":{"kind":"stencil","width":8,"height":8,"sweeps":2}}`,
		"tree":      `{"root":{"kind":"reduction"}}`,
		"flat":      `{"root":{"kind":"reduction","op":"flat"}}`,
		"bsp":       `{"root":{"kind":"bsp","supersteps":3}}`,
	}
	for fam, spec := range families {
		w, err := FromJSON([]byte(spec))
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		tr := measure(t, w, w.DefaultSize(), 4)
		var remote int
		for _, e := range tr.Events {
			if e.IsRemote() {
				remote++
			}
		}
		if remote == 0 {
			t.Errorf("%s: lowered program has no remote communication", fam)
		}
	}
}

func TestWorkUnitsScaling(t *testing.T) {
	w, err := FromJSON([]byte(`{"root":{"kind":"reduction","op":"flat"}}`))
	if err != nil {
		t.Fatal(err)
	}
	sz := benchmarks.Size{N: 16, Iters: 1}
	if a, b := w.WorkUnits(sz, 4), w.WorkUnits(sz, 64); b <= a {
		t.Errorf("flat reduction work not increasing in threads: %d vs %d", a, b)
	}
	if a, b := w.WorkUnits(benchmarks.Size{Iters: 1}, 8), w.WorkUnits(benchmarks.Size{Iters: 10}, 8); b != 10*a {
		t.Errorf("work not linear in iters: %d vs %d", a, b)
	}
	var we benchmarks.WorkEstimator = w
	if we.WorkUnits(sz, 1) <= 0 {
		t.Error("non-positive work estimate")
	}
}

func TestPresetsRegisteredAndRunnable(t *testing.T) {
	for _, name := range []string{"bsp-reduce", "farm-stencil", "pipeline8"} {
		b, err := benchmarks.ByName(name)
		if err != nil {
			t.Fatalf("preset %s not registered: %v", name, err)
		}
		if _, ok := b.(benchmarks.WorkEstimator); !ok {
			t.Errorf("preset %s does not implement WorkEstimator", name)
		}
		tr := measure(t, b, b.DefaultSize(), 4)
		if len(tr.Events) == 0 {
			t.Errorf("preset %s: empty trace", name)
		}
	}
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("Presets() = %d entries", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name() >= ps[i].Name() {
			t.Error("Presets() not sorted by name")
		}
	}
}

func TestPatternsSortedAndComplete(t *testing.T) {
	pats := Patterns()
	if len(pats) != 7 {
		t.Fatalf("Patterns() = %d kinds, want 7", len(pats))
	}
	for i := 1; i < len(pats); i++ {
		if pats[i-1].Kind >= pats[i].Kind {
			t.Errorf("Patterns() not sorted: %s before %s", pats[i-1].Kind, pats[i].Kind)
		}
	}
	a, _ := json.Marshal(pats)
	b, _ := json.Marshal(Patterns())
	if string(a) != string(b) {
		t.Error("Patterns() not byte-stable")
	}
}

func TestCountersAdvance(t *testing.T) {
	before := ReadCounters()
	if _, err := FromJSON([]byte(`{"root":{"kind":"bsp","supersteps":4,"grain":3}}`)); err != nil {
		t.Fatal(err)
	}
	after := ReadCounters()
	if after.SpecsParsed <= before.SpecsParsed {
		t.Error("SpecsParsed did not advance")
	}
	if after.CacheHits+after.CacheMisses <= before.CacheHits+before.CacheMisses {
		t.Error("cache counters did not advance")
	}
}
