package compose

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
	"extrap/internal/vtime"
)

// Lowering: a normalized pattern tree becomes a deterministic pcxx SPMD
// program. Collections are created in Setup, named by the node's DFS
// pre-order index, so two instantiations of one spec produce identical
// traces. Every lowered body is barrier-safe by construction: the
// barrier sequence is a function of the (shared) tree alone, never of a
// thread's id, so all threads execute identical barrier sequences as
// the runtime's global barrier requires.
//
// Pattern semantics:
//   - pipeline: stages run in sequence; between stages every thread
//     hands a buffer element to its downstream neighbor (a remote read
//     of message_bytes), fenced by barriers — the classic software
//     pipeline shift.
//   - task_farm: tasks are dealt cyclically over threads; each owned
//     task computes an imbalance-scaled grain, then a tree reduction
//     combines per-thread partials.
//   - stencil: a width(×height) grid is block-distributed; each sweep
//     reads the clamped neighbors (remote only at block boundaries —
//     the halo), computes the grain per owned cell, and barriers.
//   - reduction: per-thread grains followed by a tree (log₂ n rounds)
//     or flat (n·(n−1) messages) combine.
//   - bsp: supersteps of compute, a partner exchange of message_bytes,
//     and a barrier.
//   - seq: children in order with separating barriers; par: children in
//     order without them, so their communication overlaps in the trace.

// Factory implements benchmarks.Benchmark: it instantiates the lowered
// program at a thread count, with the size's N scaling every node's
// compute magnitude and Iters repeating the whole tree.
func (w *Workload) Factory(size benchmarks.Size) core.ProgramFactory {
	scale := size.N
	if scale < 1 {
		scale = 1
	}
	iters := size.Iters
	if iters < 1 {
		iters = 1
	}
	return func(threads int) core.Program {
		return core.Program{
			Name:    w.name,
			Threads: threads,
			Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
				nodesLowered.Add(int64(w.nodes))
				idx := 0
				body := lowerNode(rt, &w.spec.Root, &idx, scale)
				return func(t *pcxx.Thread) {
					for it := 0; it < iters; it++ {
						if it > 0 {
							t.Barrier()
						}
						body(t)
					}
				}
			},
		}
	}
}

// lowerNode lowers one node, assigning it the next DFS pre-order index
// and recursing into nested nodes. Collections are created here (Setup
// time); the returned closure is the per-thread body.
func lowerNode(rt *pcxx.Runtime, n *Node, idx *int, scale int) func(*pcxx.Thread) {
	id := *idx
	*idx++
	name := fmt.Sprintf("wl%d.%s", id, n.Kind)
	seed := uint64(id+1) * 0x9e3779b97f4a7c15
	msg := int64(n.MessageBytes)
	grain := n.Grain * scale
	imb := n.Imbalance

	switch n.Kind {
	case KindSeq:
		subs := lowerAll(rt, n.Children, idx, scale)
		return func(t *pcxx.Thread) {
			for i, s := range subs {
				if i > 0 {
					t.Barrier()
				}
				s(t)
			}
		}

	case KindPar:
		subs := lowerAll(rt, n.Children, idx, scale)
		return func(t *pcxx.Thread) {
			for _, s := range subs {
				s(t)
			}
		}

	case KindPipeline:
		subs := lowerAll(rt, n.Stages, idx, scale)
		buf := pcxx.PerThread[float64](rt, name, msg)
		return func(t *pcxx.Thread) {
			for si, s := range subs {
				s(t)
				// Stage handoff: publish, fence, read the upstream
				// neighbor's element (remote unless n = 1), fence again
				// so the next stage's writes cannot race ahead.
				*buf.Local(t, t.ID()) = float64(si + t.ID())
				t.Barrier()
				up := (t.ID() + t.N() - 1) % t.N()
				v := buf.Read(t, up)
				t.Flops(1)
				t.Barrier()
				_ = v
			}
		}

	case KindTaskFarm:
		data := pcxx.NewCollection[float64](rt, name, dist.NewCyclic(n.Tasks, rt.Threads()), msg)
		part := pcxx.PerThread[float64](rt, name+".sum", msg)
		return func(t *pcxx.Thread) {
			sum := 0.0
			data.ForOwned(t, func(k int) {
				f := imbFactor(seed, k, imb)
				t.Flops(grainFlops(grain, f))
				*data.Local(t, k) = float64(k) * f
				sum += float64(k) * f
			})
			*part.Local(t, t.ID()) = sum
			pcxx.ReduceSum(t, part)
		}

	case KindStencil:
		if n.Height == 0 {
			grid := pcxx.NewCollection[float64](rt, name, dist.NewBlock(n.Width, rt.Threads()), msg)
			sweeps, width := n.Sweeps, n.Width
			return func(t *pcxx.Thread) {
				for s := 0; s < sweeps; s++ {
					grid.ForOwned(t, func(i int) {
						l, r := i-1, i+1
						if l < 0 {
							l = 0
						}
						if r >= width {
							r = width - 1
						}
						a := grid.Read(t, l)
						b := grid.Read(t, r)
						t.Flops(grainFlops(grain, imbFactor(seed, i, imb)))
						*grid.Local(t, i) = (a+b)/2 + 1
					})
					t.Barrier()
				}
			}
		}
		d2 := dist.NewDist2D(n.Height, n.Width, rt.Threads(), dist.Block, dist.Block)
		grid := pcxx.NewCollection2D[float64](rt, name, d2, msg)
		sweeps, width, height := n.Sweeps, n.Width, n.Height
		return func(t *pcxx.Thread) {
			for s := 0; s < sweeps; s++ {
				grid.ForOwned(t, func(r, c int) {
					up, down, left, right := r-1, r+1, c-1, c+1
					if up < 0 {
						up = 0
					}
					if down >= height {
						down = height - 1
					}
					if left < 0 {
						left = 0
					}
					if right >= width {
						right = width - 1
					}
					v := grid.Read(t, up, c) + grid.Read(t, down, c) +
						grid.Read(t, r, left) + grid.Read(t, r, right)
					t.Flops(grainFlops(grain, imbFactor(seed, r*width+c, imb)))
					*grid.Local(t, r, c) = v/4 + 1
				})
				t.Barrier()
			}
		}

	case KindReduction:
		part := pcxx.PerThread[float64](rt, name, msg)
		flat := n.Op == OpFlat
		return func(t *pcxx.Thread) {
			t.Flops(grainFlops(grain, imbFactor(seed, t.ID(), imb)))
			*part.Local(t, t.ID()) = float64(t.ID() + 1)
			if flat {
				_ = pcxx.AllGatherSum(t, part)
			} else {
				pcxx.ReduceSum(t, part)
			}
		}

	case KindBSP:
		buf := pcxx.PerThread[float64](rt, name, msg)
		steps := n.Supersteps
		return func(t *pcxx.Thread) {
			for s := 0; s < steps; s++ {
				t.Flops(grainFlops(grain, imbFactor(seed+uint64(s), t.ID(), imb)))
				*buf.Local(t, t.ID()) = float64(s + t.ID())
				t.Barrier()
				partner := (t.ID() + s + 1) % t.N()
				v := buf.Read(t, partner)
				t.Barrier()
				_ = v
			}
		}
	}
	// Unreachable: validate rejects unknown kinds before lowering.
	panic(fmt.Sprintf("compose: lowering unknown kind %q", n.Kind))
}

// lowerAll lowers a node list in order.
func lowerAll(rt *pcxx.Runtime, nodes []Node, idx *int, scale int) []func(*pcxx.Thread) {
	subs := make([]func(*pcxx.Thread), len(nodes))
	for i := range nodes {
		subs[i] = lowerNode(rt, &nodes[i], idx, scale)
	}
	return subs
}

// imbFactor returns the deterministic load-imbalance factor for element
// k: 1 + imb·u where u is a pure function of (seed, k). It depends on
// no runtime state, so a spec lowers to the same compute magnitudes at
// every thread count, on every node, in every process.
func imbFactor(seed uint64, k int, imb float64) float64 {
	if imb == 0 {
		return 1
	}
	r := vtime.NewRand(seed + uint64(k)*0x100000001b3 + 1)
	return 1 + imb*r.Float64()
}

// grainFlops scales the node grain by the imbalance factor, flooring at
// one flop so every element costs at least one compute event.
func grainFlops(grain int, f float64) int {
	fl := int(float64(grain) * f)
	if fl < 1 {
		fl = 1
	}
	return fl
}
