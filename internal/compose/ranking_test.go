package compose

import (
	"fmt"
	"sort"
	"testing"

	"extrap/internal/core"
	"extrap/internal/direct"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/vtime"
)

// rankedMachine pairs one target machine's parameters for both
// predictors: the trace-driven simulator (sim.Config) and the
// analytical direct comparator (direct.Config). The three machines
// differ decisively on one axis each, so both models must order them
// the same way for any workload — that agreement, not absolute
// accuracy, is what the paper's Section 4.2 validation establishes for
// the kernels and what this test extends to composed patterns.
type rankedMachine struct {
	name string
	sim  sim.Config
	dir  direct.Config
}

// rankingMachines builds the 3-machine set from the CM-5 baselines:
// the baseline, a machine with 8× slower communication, and a machine
// with 6× slower processors.
func rankingMachines() []rankedMachine {
	base := machine.CM5().Config
	dbase := direct.CM5()

	slowNet := base
	slowNet.Comm.StartupTime *= 8
	slowNet.Comm.ByteTransferTime *= 8
	dSlowNet := dbase
	dSlowNet.MsgBase *= 8
	dSlowNet.PerByte *= 8

	slowCPU := base
	slowCPU.MipsRatio *= 6
	dSlowCPU := dbase
	dSlowCPU.FlopScale *= 6

	return []rankedMachine{
		{name: "cm5", sim: base, dir: dbase},
		{name: "slow-net", sim: slowNet, dir: dSlowNet},
		{name: "slow-cpu", sim: slowCPU, dir: dSlowCPU},
	}
}

// ranking orders machine indices by a time vector, ascending; exact
// integer times make the order deterministic.
func ranking(times []vtime.Time) []int {
	order := make([]int, len(times))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })
	return order
}

// TestExtrapolateDirectRankingAgreement measures one representative of
// each pattern family and asserts that the extrapolation pipeline and
// the independent direct model rank the 3-machine set identically.
func TestExtrapolateDirectRankingAgreement(t *testing.T) {
	families := []struct{ name, spec string }{
		{"pipeline", `{"size":64,"iters":2,"root":{"kind":"pipeline","message_bytes":512,"stages":[{"kind":"bsp","grain":16},{"kind":"bsp","grain":16},{"kind":"bsp","grain":16}]}}`},
		{"task_farm", `{"size":64,"root":{"kind":"task_farm","tasks":48,"grain":24,"imbalance":1}}`},
		{"stencil", `{"size":48,"root":{"kind":"stencil","width":48,"height":4,"sweeps":3,"grain":8,"message_bytes":256}}`},
		{"reduction", `{"size":64,"root":{"kind":"reduction","op":"flat","grain":32,"message_bytes":512}}`},
		{"bsp", `{"size":64,"root":{"kind":"bsp","supersteps":4,"grain":20,"message_bytes":1024}}`},
	}
	machines := rankingMachines()
	const threads = 8
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			w, err := FromJSON([]byte(fam.spec))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := core.Measure(w.Factory(w.DefaultSize())(threads), core.MeasureOptions{SizeMode: pcxx.ActualSize})
			if err != nil {
				t.Fatal(err)
			}
			pred := make([]vtime.Time, len(machines))
			act := make([]vtime.Time, len(machines))
			for mi, m := range machines {
				outc, err := core.Extrapolate(tr, m.sim)
				if err != nil {
					t.Fatalf("%s: extrapolate: %v", m.name, err)
				}
				pred[mi] = outc.Result.TotalTime
				res, err := direct.Run(tr, m.dir)
				if err != nil {
					t.Fatalf("%s: direct: %v", m.name, err)
				}
				act[mi] = res.TotalTime
			}
			pr, ar := ranking(pred), ranking(act)
			if fmt.Sprint(pr) != fmt.Sprint(ar) {
				names := func(order []int) []string {
					out := make([]string, len(order))
					for i, mi := range order {
						out[i] = machines[mi].name
					}
					return out
				}
				t.Errorf("ranking disagreement:\n  extrapolated: %v (%v)\n  direct:       %v (%v)",
					names(pr), pred, names(ar), act)
			}
		})
	}
}
