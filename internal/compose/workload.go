package compose

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
)

// Workload is a validated, normalized composed workload. It implements
// benchmarks.Benchmark — downstream subsystems sweep, fit, shard, and
// persist it exactly like a built-in kernel — plus
// benchmarks.WorkEstimator, so serving-layer work budgets account for
// the pattern tree instead of the registry-wide N×iters×threads proxy.
type Workload struct {
	spec      *Spec
	canonical string
	name      string
	specJSON  []byte
	nodes     int
	depth     int
}

// Name returns the derived registry-facing name, "wl:" plus 32 hex
// digits of the canonical encoding's SHA-256. Equal specs derive equal
// names on every node, which is what keeps cache keys, store addresses,
// coordinator shard affinity, and job resume coherent for ad-hoc
// workloads that no registry knows by name.
func (w *Workload) Name() string { return w.name }

// Description summarizes the pattern tree.
func (w *Workload) Description() string {
	return fmt.Sprintf("composed workload: %s root, %d nodes, depth %d", w.spec.Root.Kind, w.nodes, w.depth)
}

// DefaultSize returns the spec-level size scale and iteration count.
func (w *Workload) DefaultSize() benchmarks.Size {
	return benchmarks.Size{N: w.spec.Size, Iters: w.spec.Iters}
}

// Canonical returns the wl/v1 canonical encoding.
func (w *Workload) Canonical() string { return w.canonical }

// SpecJSON returns the canonical re-marshal of the normalized spec —
// the bytes that travel on the wire (job files, shard dispatches).
// Reparsing them yields a workload with the same canonical encoding and
// name.
func (w *Workload) SpecJSON() []byte { return w.specJSON }

// Nodes returns the pattern-node count.
func (w *Workload) Nodes() int { return w.nodes }

// Depth returns the maximum nesting depth (root = 1).
func (w *Workload) Depth() int { return w.depth }

// WorkUnits implements benchmarks.WorkEstimator: the estimated trace
// event volume of one measurement at the given size and thread count.
// The size scale N multiplies compute magnitudes, not event counts, so
// it does not appear here — iterations and the pattern tree do.
func (w *Workload) WorkUnits(sz benchmarks.Size, threads int) int64 {
	iters := int64(sz.Iters)
	if iters < 1 {
		iters = 1
	}
	return iters * w.spec.Root.eventsTotal(int64(threads))
}

// Counters is a snapshot of the subsystem's /debug/vars counters.
type Counters struct {
	// SpecsParsed counts FromJSON calls that reached parsing.
	SpecsParsed int64
	// Synthesized counts workloads built from scratch (cache misses).
	Synthesized int64
	// CacheHits and CacheMisses count synth-cache lookups by canonical
	// key.
	CacheHits   int64
	CacheMisses int64
	// NodesLowered counts pattern nodes lowered into pcxx programs
	// (accumulated per program instantiation).
	NodesLowered int64
	// PresetHits counts preset factory instantiations.
	PresetHits int64
}

var (
	specsParsed  atomic.Int64
	synthesized  atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	nodesLowered atomic.Int64
	presetHits   atomic.Int64
)

// ReadCounters snapshots the subsystem counters.
func ReadCounters() Counters {
	return Counters{
		SpecsParsed:  specsParsed.Load(),
		Synthesized:  synthesized.Load(),
		CacheHits:    cacheHits.Load(),
		CacheMisses:  cacheMisses.Load(),
		NodesLowered: nodesLowered.Load(),
		PresetHits:   presetHits.Load(),
	}
}

// synthCacheEntries bounds the canonical-key → Workload memo. Entries
// are small (the parsed tree plus its JSON), but the keys are
// client-controlled, so the cache is bounded and evicts FIFO.
const synthCacheEntries = 128

var synthCache = struct {
	sync.Mutex
	m     map[string]*Workload
	order []string
}{m: make(map[string]*Workload)}

func cacheGet(canon string) *Workload {
	synthCache.Lock()
	defer synthCache.Unlock()
	return synthCache.m[canon]
}

func cachePut(canon string, w *Workload) {
	synthCache.Lock()
	defer synthCache.Unlock()
	if _, dup := synthCache.m[canon]; dup {
		return
	}
	if len(synthCache.order) >= synthCacheEntries {
		oldest := synthCache.order[0]
		synthCache.order = synthCache.order[1:]
		delete(synthCache.m, oldest)
	}
	synthCache.m[canon] = w
	synthCache.order = append(synthCache.order, canon)
}

// FromJSON parses, validates, normalizes, and canonicalizes a workload
// spec, returning the memoized Workload for its canonical key. Hostile,
// over-deep, or oversized specs error; FromJSON never panics on any
// input.
func FromJSON(raw []byte) (*Workload, error) {
	specsParsed.Add(1)
	sp, err := parseSpec(raw)
	if err != nil {
		return nil, err
	}
	canon := sp.Canonical()
	if w := cacheGet(canon); w != nil {
		cacheHits.Add(1)
		return w, nil
	}
	cacheMisses.Add(1)
	w, err := build(sp, canon)
	if err != nil {
		return nil, err
	}
	cachePut(canon, w)
	return w, nil
}

// build assembles the Workload for a validated, normalized spec.
func build(sp *Spec, canon string) (*Workload, error) {
	if ev := sp.Root.eventsTotal(1); ev > MaxSpecEvents {
		return nil, fmt.Errorf("compose: spec's estimated event volume %d exceeds the %d ceiling", ev, MaxSpecEvents)
	}
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("compose: re-marshaling spec: %v", err)
	}
	var nodes, depth int
	sp.Root.shape(1, &nodes, &depth)
	synthesized.Add(1)
	return &Workload{
		spec:      sp,
		canonical: canon,
		name:      core.WorkloadName(canon),
		specJSON:  specJSON,
		nodes:     nodes,
		depth:     depth,
	}, nil
}
