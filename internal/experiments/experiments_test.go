package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode:
// they must complete, produce output, and render without error.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out.Tables)+len(out.Figures) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			var buf bytes.Buffer
			out.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	want := []string{"ablation-barrier", "ablation-cluster", "ablation-contention",
		"ablation-multithread", "ablation-overhead",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "table3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig4"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

// TestFig4ExpectedShapes checks the paper's qualitative claims on the
// quick-mode data: Embar's speedup is the best in the suite and
// near-linear; Grid shows no improvement from 4 to 8 processors under
// (BLOCK,BLOCK).
func TestFig4ExpectedShapes(t *testing.T) {
	out, err := runFig4(Options{Quick: true, Procs: []int{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	speed := out.Figures[0]
	get := func(name string) []float64 {
		for _, s := range speed.Series {
			if s.Name == name {
				return s.Values
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	embar := get("embar")
	if embar[3] < 6.0 {
		t.Errorf("embar speedup at 8 procs = %.2f, want near-linear (≥6)", embar[3])
	}
	grid := get("grid")
	// (BLOCK,BLOCK) idles 4 of 8 processors: speedup(8) ≈ speedup(4).
	if grid[3] > grid[2]*1.15 {
		t.Errorf("grid speedup improved 4→8 (%.2f → %.2f); expected the plateau", grid[2], grid[3])
	}
	for _, s := range speed.Series {
		if embar[3] < s.Values[3]*0.99 {
			t.Errorf("embar (%.2f) is not the best speedup at 8 procs (%s has %.2f)",
				embar[3], s.Name, s.Values[3])
		}
	}
}

// TestFig5ExpectedShapes checks the investigation's outcome: actual-size
// attribution recovers Grid speedup relative to the compiler estimate,
// and ideal is the upper bound.
func TestFig5ExpectedShapes(t *testing.T) {
	out, err := runFig5(Options{Quick: true, Procs: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var speed *map[string][]float64
	_ = speed
	series := map[string][]float64{}
	for _, s := range out.Figures[1].Series {
		series[s.Name] = s.Values
	}
	last := len(out.Figures[1].X) - 1
	estimate := series["dm-20MB/s (estimate)"][last]
	actual := series["dm-20MB/s (actual size)"][last]
	ideal := series["ideal"][last]
	if actual <= estimate {
		t.Errorf("actual-size speedup (%.2f) not above estimate (%.2f)", actual, estimate)
	}
	if ideal < actual*0.98 {
		t.Errorf("ideal speedup (%.2f) below actual-size (%.2f)", ideal, actual)
	}
}

// TestFig9RankingAgreement requires the headline validation property: the
// predicted best distribution matches the actual best for most processor
// counts, with high rank correlation.
func TestFig9RankingAgreement(t *testing.T) {
	out, err := runFig9(Options{Quick: true, Procs: []int{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	var rank *struct{}
	_ = rank
	for _, tab := range out.Tables {
		if !strings.Contains(tab.Title, "Ranking") {
			continue
		}
		matches := 0
		for _, row := range tab.Rows {
			if row[3] == "yes" || row[3] == "tie" {
				matches++
			}
		}
		if matches < len(tab.Rows)-1 {
			t.Errorf("predicted best matched actual best only %d/%d times:\n%v",
				matches, len(tab.Rows), tab.Rows)
		}
	}
}

// TestFig7OptimumMoves: with the faster target processor the minimum-time
// processor count must not increase for any startup value.
func TestFig7OptimumMoves(t *testing.T) {
	out, err := runFig7(Options{Quick: true, Procs: []int{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]map[string]int{}
	for _, row := range out.Tables[0].Rows {
		ratio, startup := row[0], row[1]
		if best[startup] == nil {
			best[startup] = map[string]int{}
		}
		var p int
		if _, err := fmt.Sscanf(row[2], "%d", &p); err != nil {
			t.Fatalf("bad best-procs cell %q", row[2])
		}
		best[startup][ratio] = p
	}
	for startup, byRatio := range best {
		if byRatio["0.25"] > byRatio["1.00"] {
			t.Errorf("startup %s: faster processor moved optimum UP (%d > %d)",
				startup, byRatio["0.25"], byRatio["1.00"])
		}
	}
}

// TestFig8PolicyOrdering: no-interrupt is never strictly fastest on grid.
func TestFig8PolicyOrdering(t *testing.T) {
	out, err := runFig8(Options{Quick: true, Procs: []int{2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	gridFig := out.Figures[1]
	var noInt, interrupt []float64
	for _, s := range gridFig.Series {
		switch s.Name {
		case "no-interrupt/poll":
			noInt = s.Values
		case "interrupt":
			interrupt = s.Values
		}
	}
	if noInt == nil || interrupt == nil {
		t.Fatal("missing policy series")
	}
	for i := range noInt {
		// Allow a small margin: at tiny quick-mode sizes the interrupt
		// overhead can exceed the (short) no-interrupt waits.
		if noInt[i] < interrupt[i]*0.97 {
			t.Errorf("x=%d: no-interrupt (%.3f) clearly beat interrupt (%.3f)", gridFig.X[i], noInt[i], interrupt[i])
		}
	}
}

// TestFig6MipsRatioShapes: Embar times scale ≈2× per ratio step at small
// processor counts (compute-bound region).
func TestFig6MipsRatioShapes(t *testing.T) {
	out, err := runFig6(Options{Quick: true, Procs: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	embar := out.Figures[0]
	v := map[string][]float64{}
	for _, s := range embar.Series {
		v[s.Name] = s.Values
	}
	slow, base, fast := v["MipsRatio=2.0"], v["MipsRatio=1.0"], v["MipsRatio=0.5"]
	for i := range base {
		if r := slow[i] / base[i]; r < 1.9 || r > 2.1 {
			t.Errorf("point %d: 2.0/1.0 time ratio %.3f, want ≈2", i, r)
		}
		if r := base[i] / fast[i]; r < 1.8 || r > 2.2 {
			t.Errorf("point %d: 1.0/0.5 time ratio %.3f, want ≈2", i, r)
		}
	}
}

// TestOverheadCompensationExperiment: the prediction column must not
// drift as overhead grows.
func TestOverheadCompensationExperiment(t *testing.T) {
	out, err := runAblationOverhead(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Tables[0].Rows {
		if row[4] != "+0.00%" {
			t.Errorf("overhead %s: prediction drifted %s", row[0], row[4])
		}
	}
}
