package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

func init() {
	register(Experiment{ID: "table1", Title: "Barrier model parameters and their effect", Run: runTable1})
	register(Experiment{ID: "table2", Title: "pC++ benchmark suite inventory", Run: runTable2})
	register(Experiment{ID: "table3", Title: "CM-5 parameter derivation", Run: runTable3})
}

// runTable1 reproduces Table 1 — the barrier model's parameters — and
// adds a sensitivity sweep: each parameter quadrupled in turn on a
// barrier-heavy workload to demonstrate its operation.
func runTable1(opts Options) (*Output, error) {
	out := &Output{ID: "table1", Title: "Barrier model parameters"}

	def := sim.DefaultBarrier()
	params := report.Table{
		Title:   "Table 1: parameters for the barrier model",
		Columns: []string{"parameter", "description", "example"},
	}
	params.AddRow("EntryTime", "time for each thread to enter a barrier", def.EntryTime.String())
	params.AddRow("ExitTime", "time to come out of the lowered barrier", def.ExitTime.String())
	params.AddRow("CheckTime", "master's cost per arrival check", def.CheckTime.String())
	params.AddRow("ExitCheckTime", "slave's cost per release check", def.ExitCheckTime.String())
	params.AddRow("ModelTime", "master's cost to start lowering the barrier", def.ModelTime.String())
	params.AddRow("BarrierByMsgs", "1: synchronize with real messages", fmt.Sprintf("%v", def.ByMsgs))
	params.AddRow("BarrierMsgSize", "barrier message size", fmt.Sprintf("%d", def.MsgSize))
	out.Tables = append(out.Tables, params)

	// Sensitivity: a barrier-dominated microworkload (cyclic at a small
	// size) with each parameter amplified.
	cy, err := benchmarks.ByName("cyclic")
	if err != nil {
		return nil, err
	}
	size := benchmarks.Size{N: 128, Iters: 2}
	n := opts.procs()[len(opts.procs())-1]
	baseCfg := machine.GenericDM().Config
	// One measurement and translation back every variant simulation.
	r := newRunner(opts)
	basePt, err := r.translated(cy.Name(), size, n,
		core.MeasureOptions{SizeMode: pcxx.ActualSize}, cy.Factory(size))
	if err != nil {
		return nil, err
	}
	baseRes, err := simulate(basePt, baseCfg)
	if err != nil {
		return nil, err
	}

	sens := report.Table{
		Title:   "Barrier parameter sensitivity (cyclic microworkload, ×4 each)",
		Columns: []string{"parameter", "baseline", "amplified", "time delta"},
	}
	variants := []struct {
		name   string
		mutate func(*sim.BarrierConfig)
	}{
		{"EntryTime", func(b *sim.BarrierConfig) { b.EntryTime *= 4 }},
		{"ExitTime", func(b *sim.BarrierConfig) { b.ExitTime *= 4 }},
		{"CheckTime", func(b *sim.BarrierConfig) { b.CheckTime *= 4 }},
		{"ExitCheckTime", func(b *sim.BarrierConfig) { b.ExitCheckTime *= 4 }},
		{"ModelTime", func(b *sim.BarrierConfig) { b.ModelTime *= 4 }},
		{"BarrierMsgSize", func(b *sim.BarrierConfig) { b.MsgSize *= 16 }},
		{"BarrierByMsgs→0", func(b *sim.BarrierConfig) { b.ByMsgs = false }},
	}
	results := make([]*sim.Result, len(variants))
	err = r.each(len(variants), func(i int) error {
		cfg := baseCfg
		variants[i].mutate(&cfg.Barrier)
		res, err := simulate(basePt, cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		delta := results[i].TotalTime - baseRes.TotalTime
		sens.AddRow(v.name, baseRes.TotalTime.String(), results[i].TotalTime.String(), delta.String())
	}
	out.Tables = append(out.Tables, sens)
	return out, nil
}

// runTable2 reproduces Table 2 — the benchmark suite — augmented with
// measured trace statistics and the verification status of each code.
func runTable2(opts Options) (*Output, error) {
	out := &Output{ID: "table2", Title: "pC++ benchmark codes used for extrapolation studies"}
	tab := report.Table{
		Title: "Table 2: benchmark suite",
		Columns: []string{"benchmark", "description", "events", "barriers",
			"remote reads", "remote KB", "1-proc time", "verified"},
	}
	n := 8
	if opts.Quick {
		n = 4
	}
	// Every benchmark measures independently; verification failures are
	// rows, not errors, so the fan-out collects per-benchmark outcomes.
	suite := benchmarks.Suite()
	r := newRunner(opts)
	type row struct {
		tr  *trace.Trace
		err error
	}
	rows := make([]row, len(suite))
	_ = r.each(len(suite), func(i int) error {
		size := opts.size(suite[i])
		size.Verify = true
		rows[i].tr, rows[i].err = r.measured(suite[i].Name(), size, n,
			core.MeasureOptions{SizeMode: pcxx.ActualSize}, suite[i].Factory(size))
		return nil
	})
	for i, b := range suite {
		if rows[i].err != nil {
			tab.AddRow(b.Name(), b.Description(), "-", "-", "-", "-", "-", "FAILED: "+rows[i].err.Error())
			continue
		}
		s := trace.ComputeStats(rows[i].tr)
		tab.AddRow(b.Name(), b.Description(), s.Events, s.Barriers,
			s.RemoteReads, s.RemoteBytes/1024, s.Duration.String(), "yes")
	}
	out.Tables = append(out.Tables, tab)
	return out, nil
}

// runTable3 reproduces Table 3: the CM-5 parameter set, with the
// MipsRatio derived by the MFLOPS microbenchmark exactly as the authors
// derived theirs (Sun-4 1.1360 / CM-5 2.7645 ≈ 0.41).
func runTable3(Options) (*Output, error) {
	out := &Output{ID: "table3", Title: "Parameters used for matching CM-5 characteristics"}

	sun := machine.MeasureMFLOPS(pcxx.Sun4())
	cm5 := machine.MeasureMFLOPS(pcxx.CM5Node())
	ratio := machine.DeriveMipsRatio(pcxx.Sun4(), pcxx.CM5Node())
	mflops := report.Table{
		Title:   "Processor microbenchmark",
		Columns: []string{"machine", "MFLOPS (measured)", "paper"},
	}
	mflops.AddRow("Sun 4 (measurement host)", fmt.Sprintf("%.4f", sun), "1.1360")
	mflops.AddRow("CM-5 node (scalar)", fmt.Sprintf("%.4f", cm5), "2.7645")
	mflops.AddRow("MipsRatio (host/target)", fmt.Sprintf("%.2f", ratio), "0.41")

	env := machine.CM5()
	params := report.Table{
		Title:   "Table 3: CM-5 extrapolation parameters",
		Columns: []string{"parameter", "value", "paper"},
	}
	params.AddRow("BarrierModelTime", env.Config.Barrier.ModelTime.String(), "5.0 µsec")
	params.AddRow("CommStartupTime", env.Config.Comm.StartupTime.String(), "10.0 µsec")
	params.AddRow("ByteTransferTime", env.Config.Comm.ByteTransferTime.String(),
		"0.118 µsec (8.5 Mbytes/second)")
	params.AddRow("MipsRatio", fmt.Sprintf("%.2f", env.Config.MipsRatio), "0.41")
	params.AddRow("bandwidth", fmt.Sprintf("%.1f MB/s", env.Config.Comm.BandwidthMBps()), "8.5 MB/s")
	params.AddRow("topology", "fat tree (4-ary)", "CM-5 data network")

	out.Tables = append(out.Tables, mflops, params)
	return out, nil
}
