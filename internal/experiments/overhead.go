package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "ablation-overhead",
		Title: "Instrumentation perturbation compensation (Section 3.2)",
		Run:   runAblationOverhead,
	})
}

// runAblationOverhead demonstrates the trace-translation property the
// paper states in Section 3.2 ("the trace translation algorithm is easily
// modified to handle the overhead for recording the events"): the same
// program is measured with increasing per-event instrumentation cost, and
// the extrapolated prediction stays constant because translation
// compensates — while the raw (uncompensated) 1-processor time inflates.
func runAblationOverhead(opts Options) (*Output, error) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		return nil, err
	}
	size := opts.size(g)
	threads := 8
	cfg := machine.GenericDM().Config

	out := &Output{ID: "ablation-overhead", Title: "Perturbation compensation"}
	tab := report.Table{
		Title: "Grid: per-event instrumentation overhead vs prediction",
		Columns: []string{"overhead/event", "measured 1-proc time",
			"inflation", "predicted time", "prediction drift"},
	}
	// Each overhead level is an independent measurement (the EventOverhead
	// is part of the cache key); the zero-overhead row anchors the ratios,
	// so assembly waits for the full fan-out.
	overheads := []vtime.Time{0, 1 * vtime.Microsecond, 5 * vtime.Microsecond,
		25 * vtime.Microsecond, 100 * vtime.Microsecond}
	type row struct {
		measured  vtime.Time
		predicted vtime.Time
	}
	rows := make([]row, len(overheads))
	r := newRunner(opts)
	err = r.each(len(overheads), func(i int) error {
		mopts := core.MeasureOptions{SizeMode: pcxx.ActualSize, EventOverhead: overheads[i]}
		tr, err := r.measured(g.Name(), size, threads, mopts, g.Factory(size))
		if err != nil {
			return err
		}
		o, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return err
		}
		rows[i] = row{measured: tr.Duration(), predicted: o.Result.TotalTime}
		return nil
	})
	if err != nil {
		return nil, err
	}
	baseMeasured, basePredicted := rows[0].measured, rows[0].predicted
	for i, ovh := range overheads {
		inflation := float64(rows[i].measured) / float64(baseMeasured)
		drift := float64(rows[i].predicted)/float64(basePredicted) - 1
		tab.AddRow(ovh.String(), rows[i].measured.String(),
			fmt.Sprintf("%.2f×", inflation),
			rows[i].predicted.String(),
			fmt.Sprintf("%+.2f%%", drift*100))
	}
	tab.Notes = []string{
		"translation subtracts the recorded per-event overhead from every inter-event delta,",
		"so heavily perturbed measurements still extrapolate to the unperturbed prediction",
	}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
