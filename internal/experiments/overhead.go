package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "ablation-overhead",
		Title: "Instrumentation perturbation compensation (Section 3.2)",
		Run:   runAblationOverhead,
	})
}

// runAblationOverhead demonstrates the trace-translation property the
// paper states in Section 3.2 ("the trace translation algorithm is easily
// modified to handle the overhead for recording the events"): the same
// program is measured with increasing per-event instrumentation cost, and
// the extrapolated prediction stays constant because translation
// compensates — while the raw (uncompensated) 1-processor time inflates.
func runAblationOverhead(opts Options) (*Output, error) {
	g, err := benchmarks.ByName("grid")
	if err != nil {
		return nil, err
	}
	size := opts.size(g)
	threads := 8
	cfg := machine.GenericDM().Config

	out := &Output{ID: "ablation-overhead", Title: "Perturbation compensation"}
	tab := report.Table{
		Title: "Grid: per-event instrumentation overhead vs prediction",
		Columns: []string{"overhead/event", "measured 1-proc time",
			"inflation", "predicted time", "prediction drift"},
	}
	var baseMeasured, basePredicted vtime.Time
	for _, ovh := range []vtime.Time{0, 1 * vtime.Microsecond, 5 * vtime.Microsecond,
		25 * vtime.Microsecond, 100 * vtime.Microsecond} {
		tr, err := core.Measure(g.Factory(size)(threads), core.MeasureOptions{
			SizeMode:      pcxx.ActualSize,
			EventOverhead: ovh,
		})
		if err != nil {
			return nil, err
		}
		o, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return nil, err
		}
		if ovh == 0 {
			baseMeasured = tr.Duration()
			basePredicted = o.Result.TotalTime
		}
		inflation := float64(tr.Duration()) / float64(baseMeasured)
		drift := float64(o.Result.TotalTime)/float64(basePredicted) - 1
		tab.AddRow(ovh.String(), tr.Duration().String(),
			fmt.Sprintf("%.2f×", inflation),
			o.Result.TotalTime.String(),
			fmt.Sprintf("%+.2f%%", drift*100))
	}
	tab.Notes = []string{
		"translation subtracts the recorded per-event overhead from every inter-event delta,",
		"so heavily perturbed measurements still extrapolate to the unperturbed prediction",
	}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
