package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/vtime"
)

// machineGrid builds K machine variants of the generic-dm preset —
// the "measure once, ask many what-if questions" shape where batching
// engages: every cell at one ladder point shares a measurement.
func machineGrid(k int) []sim.Config {
	cfgs := make([]sim.Config, k)
	for i := range cfgs {
		cfg := machine.GenericDM().Config
		cfg.Comm.StartupTime = vtime.FromMicros(float64(10 + 20*i))
		cfg.MipsRatio = []float64{0.5, 1.0, 2.0}[i%3]
		cfgs[i] = cfg
	}
	return cfgs
}

func gridJobs(t *testing.T, bench string, cfgs []sim.Config, procs []int) []SweepJob {
	t.Helper()
	b := mustBench(t, bench)
	sz := Options{Quick: true}.size(b)
	jobs := make([]SweepJob, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = SweepJob{
			Name:    b.Name(),
			Size:    sz,
			Factory: b.Factory(sz),
			Mode:    pcxx.ActualSize,
			Cfg:     cfg,
			Procs:   procs,
		}
	}
	return jobs
}

// TestBatchedGridByteIdentical: the batched grid must equal the
// per-cell grid exactly — every point, both cache modes, at several
// worker × batch combinations. Run under -race this also proves the
// shared-translated-trace batch path is data-race-free.
func TestBatchedGridByteIdentical(t *testing.T) {
	cfgs := machineGrid(5)
	procs := []int{1, 2, 4}
	for _, streaming := range []bool{false, true} {
		name := "in-memory"
		if streaming {
			name = "streaming"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runGridMode(t, streaming, cfgs, procs, 1, 1, nil)
			for _, tc := range []struct{ workers, batch int }{
				{1, 2}, {1, 8}, {4, 2}, {4, 8}, {4, 64},
			} {
				var stats BatchStats
				got := runGridMode(t, streaming, cfgs, procs, tc.workers, tc.batch, &stats)
				if !reflect.DeepEqual(baseline, got) {
					t.Errorf("workers=%d batch=%d: output differs from per-cell baseline\nwant %v\ngot  %v",
						tc.workers, tc.batch, baseline, got)
				}
				snap := stats.Snapshot()
				if snap.CellsBatched == 0 {
					t.Errorf("workers=%d batch=%d: no cells batched (batches=%d fallback=%d)",
						tc.workers, tc.batch, snap.Batches, snap.FallbackSequential)
				}
				if total := snap.CellsBatched + snap.FallbackSequential; total != int64(len(cfgs)*len(procs)) {
					t.Errorf("workers=%d batch=%d: counters cover %d cells, want %d",
						tc.workers, tc.batch, total, len(cfgs)*len(procs))
				}
			}
		})
	}
}

func runGridMode(t *testing.T, streaming bool, cfgs []sim.Config, procs []int, workers, batch int, stats *BatchStats) [][]metrics.Point {
	t.Helper()
	var svc *Service
	if streaming {
		svc = NewStreamingService(workers, 64, 0)
	} else {
		svc = NewService(workers, 64)
	}
	svc.SetBatchSize(batch)
	if stats != nil {
		points, err := runGrid(context.Background(), svc.cache, workers,
			batchOptions{size: batch, stats: stats}, gridJobs(t, "cyclic", cfgs, procs))
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	points, err := svc.SweepGrid(context.Background(), gridJobs(t, "cyclic", cfgs, procs))
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestBatchSingletonFallback: a grid whose cells share no measurement
// (one config, distinct ladder points) must run every cell on the
// per-cell path and count the fallbacks.
func TestBatchSingletonFallback(t *testing.T) {
	var stats BatchStats
	svc := NewStreamingService(1, 64, 0)
	jobs := gridJobs(t, "cyclic", machineGrid(1), []int{1, 2, 4})
	points, err := runGrid(context.Background(), svc.cache, 1,
		batchOptions{size: 8, stats: &stats}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points[0]) != 3 {
		t.Fatalf("got %d points", len(points[0]))
	}
	snap := stats.Snapshot()
	if snap.FallbackSequential != 3 || snap.Batches != 0 || snap.CellsBatched != 0 {
		t.Errorf("counters = %+v, want 3 fallbacks and no batches", snap)
	}
}

// TestPredictBatchMatchesPredict: PredictBatch must equal per-config
// Predict field-for-field in both cache modes.
func TestPredictBatchMatchesPredict(t *testing.T) {
	cfgs := machineGrid(4)
	b := mustBench(t, "cyclic")
	sz := Options{Quick: true}.size(b)
	for _, streaming := range []bool{false, true} {
		name := "in-memory"
		if streaming {
			name = "streaming"
		}
		t.Run(name, func(t *testing.T) {
			var svc *Service
			if streaming {
				svc = NewStreamingService(1, 64, 0)
			} else {
				svc = NewService(1, 64)
			}
			batch, err := svc.PredictBatch(context.Background(), b, sz, 4, pcxx.ActualSize, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(cfgs) {
				t.Fatalf("%d predictions for %d configs", len(batch), len(cfgs))
			}
			for i, cfg := range cfgs {
				want, err := svc.Predict(context.Background(), b, sz, 4, pcxx.ActualSize, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, batch[i]) {
					t.Errorf("lane %d differs:\npredict      %+v / %+v\npredictBatch %+v / %+v",
						i, want, want.Result, batch[i], batch[i].Result)
				}
			}
		})
	}
}

// TestExperimentOutputUnchangedByBatch: a full registered experiment
// must render byte-identically with batching on, at any worker count.
func TestExperimentOutputUnchangedByBatch(t *testing.T) {
	procs := []int{1, 2, 4, 8}
	baseline := renderExperiment(t, "fig7", Options{Quick: true, Procs: procs, Workers: 1})
	for _, tc := range []struct{ workers, batch int }{{1, 8}, {4, 8}} {
		var stats BatchStats
		got := renderExperiment(t, "fig7", Options{
			Quick: true, Procs: procs,
			Workers: tc.workers, BatchSize: tc.batch, BatchStats: &stats,
		})
		if !bytes.Equal(baseline, got) {
			t.Errorf("workers=%d batch=%d: fig7 output differs:\n--- per-cell ---\n%s\n--- batched ---\n%s",
				tc.workers, tc.batch, baseline, got)
		}
		if stats.Snapshot().CellsBatched == 0 {
			t.Errorf("workers=%d batch=%d: fig7 batched no cells", tc.workers, tc.batch)
		}
	}
}
