// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4), each regenerating the corresponding
// rows/series from scratch: measurement runs, trace translation, and
// trace-driven simulation with the experiment's parameter set. The
// drivers are used by the CLI (`extrap experiment <id>`), by the
// root-level benchmark harness, and by EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// Options controls an experiment run.
type Options struct {
	// Procs is the processor ladder; nil means the paper's
	// {1, 2, 4, 8, 16, 32}.
	Procs []int
	// Quick shrinks problem sizes and the ladder for fast smoke runs
	// (used by tests); results keep their shape but not their magnitude.
	Quick bool
}

func (o Options) procs() []int {
	if o.Procs != nil {
		return o.Procs
	}
	if o.Quick {
		return []int{1, 2, 4, 8}
	}
	return core.DefaultProcCounts()
}

// size returns the benchmark size for this run.
func (o Options) size(b benchmarks.Benchmark) benchmarks.Size {
	if !o.Quick {
		return b.DefaultSize()
	}
	switch b.Name() {
	case "embar":
		return benchmarks.Size{N: 13}
	case "cyclic":
		return benchmarks.Size{N: 256, Iters: 8}
	case "sparse":
		return benchmarks.Size{N: 128, Iters: 6}
	case "grid":
		return benchmarks.Size{N: 24, Iters: 40}
	case "mgrid":
		return benchmarks.Size{N: 32, Iters: 2}
	case "poisson":
		return benchmarks.Size{N: 24}
	case "sort":
		return benchmarks.Size{N: 1024}
	case "matmul":
		return benchmarks.Size{N: 12}
	}
	return b.DefaultSize()
}

// Output is an experiment's rendered result set.
type Output struct {
	ID      string
	Title   string
	Tables  []report.Table
	Figures []report.Figure
}

// Render writes every table and figure.
func (o *Output) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n\n", o.ID, o.Title)
	for i := range o.Tables {
		o.Tables[i].Render(w)
	}
	for i := range o.Figures {
		o.Figures[i].Render(w)
	}
}

// Experiment is one registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Output, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the driver for an experiment id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// sweep measures a benchmark at each processor count and extrapolates it
// under cfg (one measurement per count, as the paper did).
func sweep(f core.ProgramFactory, mode pcxx.SizeMode, cfg sim.Config, procs []int) ([]metrics.Point, error) {
	return core.SweepProcs(f, core.MeasureOptions{SizeMode: mode}, cfg, procs)
}

// measureOnce runs a single measurement of a benchmark.
func measureOnce(b benchmarks.Benchmark, size benchmarks.Size, threads int) (*trace.Trace, error) {
	return core.Measure(b.Factory(size)(threads), core.MeasureOptions{SizeMode: pcxx.ActualSize})
}

// extrapolateTrace simulates an existing trace under cfg.
func extrapolateTrace(tr *trace.Trace, cfg sim.Config) (*sim.Result, error) {
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// times extracts the execution times (ms) of a point series.
func times(points []metrics.Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Time.Millis()
	}
	return out
}
