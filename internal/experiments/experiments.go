// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4), each regenerating the corresponding
// rows/series from scratch: measurement runs, trace translation, and
// trace-driven simulation with the experiment's parameter set. The
// drivers are used by the CLI (`extrap experiment <id>`), by the
// root-level benchmark harness, and by EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/metrics"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// Options controls an experiment run.
type Options struct {
	// Procs is the processor ladder; nil means the paper's
	// {1, 2, 4, 8, 16, 32}.
	Procs []int
	// Quick shrinks problem sizes and the ladder for fast smoke runs
	// (used by tests); results keep their shape but not their magnitude.
	Quick bool
	// Workers bounds the goroutines used for an experiment's measurement
	// and simulation grid: ≤ 0 means GOMAXPROCS, 1 runs sequentially.
	// Any value produces identical Output — measurement is deterministic
	// and results are assembled in a fixed order.
	Workers int
	// Backend, when non-nil, is a durable tier behind the run's memo
	// cache (typically a *store.Store): measurements missing from memory
	// are looked up on disk before being re-run, and fresh measurements
	// are written through. Repeated runs against the same store replay
	// at disk speed; results are byte-identical either way.
	Backend core.TraceBackend
	// BatchSize > 1 groups grid cells that share a measurement and
	// advances up to this many machine models per pass over the shared
	// translated trace. Output is byte-identical at any batch size; the
	// knob trades per-cell decode/translate work (and, on an encoded
	// cache, the streaming path's bounded memory) for sweep throughput.
	// ≤ 1 keeps the per-cell path.
	BatchSize int
	// BatchStats, when non-nil, accumulates batch counters for this
	// run (batches issued, cells batched, sequential fallbacks).
	BatchStats *BatchStats
	// TraceFormat, when non-zero, runs the experiment over an encoded
	// trace cache holding measurements in that wire format, exercising
	// the streaming pipeline end to end. Output is byte-identical to
	// the default in-memory run — this knob exists so CI can diff an
	// experiment across trace formats.
	TraceFormat trace.Format
	// FitMode selects how grids produce their ladder cells: "" or
	// "exact" simulates every cell; "fitted" simulates only the sparse
	// anchor set the model package's refinement selects and evaluates
	// the analytic fit for the rest (rounded to whole virtual
	// nanoseconds). Fitted output trades exactness on non-anchor cells
	// for a fraction of the simulation work; anchor cells stay exact.
	FitMode string
	// Replay selects how XTRP2-encoded traces replay through the
	// simulator: sim.ReplayPattern (the zero value — compiled pattern
	// programs with steady-state fast-forward) or sim.ReplayEvent
	// (flat event-by-event replay). Output is byte-identical in both
	// modes; the knob exists for rollback and A/B comparison in CI.
	// Only meaningful with an encoded TraceFormat of XTRP2.
	Replay sim.ReplayMode
}

func (o Options) procs() []int {
	if o.Procs != nil {
		return o.Procs
	}
	if o.Quick {
		return []int{1, 2, 4, 8}
	}
	return core.DefaultProcCounts()
}

// size returns the benchmark size for this run.
func (o Options) size(b benchmarks.Benchmark) benchmarks.Size {
	if !o.Quick {
		return b.DefaultSize()
	}
	switch b.Name() {
	case "embar":
		return benchmarks.Size{N: 13}
	case "cyclic":
		return benchmarks.Size{N: 256, Iters: 8}
	case "sparse":
		return benchmarks.Size{N: 128, Iters: 6}
	case "grid":
		return benchmarks.Size{N: 24, Iters: 40}
	case "mgrid":
		return benchmarks.Size{N: 32, Iters: 2}
	case "poisson":
		return benchmarks.Size{N: 24}
	case "sort":
		return benchmarks.Size{N: 1024}
	case "matmul":
		return benchmarks.Size{N: 12}
	}
	return b.DefaultSize()
}

// Output is an experiment's rendered result set.
type Output struct {
	ID      string
	Title   string
	Tables  []report.Table
	Figures []report.Figure
}

// Render writes every table and figure.
func (o *Output) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n\n", o.ID, o.Title)
	for i := range o.Tables {
		o.Tables[i].Render(w)
	}
	for i := range o.Figures {
		o.Figures[i].Render(w)
	}
}

// Experiment is one registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Output, error)
}

var (
	registry []Experiment
	regOnce  sync.Once
	regIDs   []string
	regIndex map[string]int
)

func register(e Experiment) { registry = append(registry, e) }

// indexRegistry sorts the registry and builds the id list and lookup map
// exactly once (registration only happens from init functions, so by the
// first lookup the set is final).
func indexRegistry() {
	sort.Slice(registry, func(i, j int) bool { return registry[i].ID < registry[j].ID })
	regIDs = make([]string, len(registry))
	regIndex = make(map[string]int, len(registry))
	for i, e := range registry {
		regIDs[i] = e.ID
		regIndex[e.ID] = i
	}
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	regOnce.Do(indexRegistry)
	return append([]Experiment(nil), registry...)
}

// ByID returns the driver for an experiment id.
func ByID(id string) (Experiment, error) {
	regOnce.Do(indexRegistry)
	if i, ok := regIndex[id]; ok {
		return registry[i], nil
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
}

func ids() []string {
	regOnce.Do(indexRegistry)
	return regIDs
}

// times extracts the execution times (ms) of a point series.
func times(points []metrics.Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Time.Millis()
	}
	return out
}
