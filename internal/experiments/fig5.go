package experiments

import (
	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Grid under different extrapolations (the transfer-size investigation)",
		Run:   runFig5,
	})
}

// runFig5 reproduces the Figure 5 investigation of Grid's poor
// distributed-memory speedup:
//
//  1. the baseline DM environment with compiler-estimated transfer sizes
//     (each ghost-strip read charged as a whole grid element);
//  2. the same with 200 MB/s links (shared-memory-like bandwidth);
//  3. an ideal environment (zero communication/synchronization);
//  4. the baseline again but with actual transfer sizes — the compiler's
//     partial-transfer optimization reflected in the measurement;
//  5. actual sizes plus reduced communication start-up.
func runFig5(opts Options) (*Output, error) {
	grid, err := benchmarks.ByName("grid")
	if err != nil {
		return nil, err
	}
	size := opts.size(grid)
	procs := opts.procs()

	type variant struct {
		name string
		mode pcxx.SizeMode
		cfg  sim.Config
	}
	base := machine.GenericDM().Config
	highBW := base
	highBW.Comm.ByteTransferTime = 5 * vtime.Nanosecond // 200 MB/s
	lowStartup := base
	lowStartup.Comm.StartupTime = 5 * vtime.Microsecond
	lowStartup.Comm.MsgConstructTime = 2 * vtime.Microsecond
	variants := []variant{
		{"dm-20MB/s (estimate)", pcxx.CompilerEstimate, base},
		{"dm-200MB/s (estimate)", pcxx.CompilerEstimate, highBW},
		{"ideal", pcxx.CompilerEstimate, machine.Ideal().Config},
		{"dm-20MB/s (actual size)", pcxx.ActualSize, base},
		{"actual size + low startup", pcxx.ActualSize, lowStartup},
	}

	out := &Output{ID: "fig5", Title: "Comparison of different extrapolations (Grid)"}
	timeFig := report.Figure{
		Title: "Figure 5: Grid execution time", XLabel: "procs", YLabel: "ms", X: procs,
	}
	speedFig := report.Figure{
		Title: "Figure 5: Grid speedup", XLabel: "procs", YLabel: "speedup", X: procs,
	}
	r := newRunner(opts)
	jobs := make([]SweepJob, len(variants))
	for i, v := range variants {
		jobs[i] = SweepJob{
			Name: grid.Name(), Size: size, Factory: grid.Factory(size),
			Mode: v.mode, Cfg: v.cfg, Procs: procs,
		}
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		timeFig.Add(v.name, times(series[i]))
		speedFig.Add(v.name, metrics.Speedup(series[i]))
	}

	// Trace statistics table: the evidence trail of the investigation —
	// barrier counts and the estimate-vs-actual transfer volumes.
	stats := report.Table{
		Title:   "Grid trace statistics (largest processor count)",
		Columns: []string{"attribution", "barriers", "remote reads", "remote bytes", "bytes/read"},
	}
	// Both attributions were already measured at this processor count by
	// the sweep above, so these lookups are memo-cache hits.
	n := procs[len(procs)-1]
	for _, mode := range []pcxx.SizeMode{pcxx.CompilerEstimate, pcxx.ActualSize} {
		tr, err := r.measured(grid.Name(), size, n, core.MeasureOptions{SizeMode: mode}, grid.Factory(size))
		if err != nil {
			return nil, err
		}
		s := trace.ComputeStats(tr)
		per := int64(0)
		if s.RemoteReads > 0 {
			per = s.RemoteBytes / s.RemoteReads
		}
		stats.AddRow(mode.String(), s.Barriers, s.RemoteReads, s.RemoteBytes, per)
	}
	stats.Notes = []string{
		"the compiler-estimate attribution charges each ghost-strip read as a whole grid element,",
		"the measurement abstraction whose cost the paper's Grid study uncovered (2 and 128 real bytes)",
	}

	out.Figures = append(out.Figures, timeFig, speedFig)
	out.Tables = append(out.Tables, stats)
	return out, nil
}
