package experiments

import (
	"context"
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// Service is the experiment engine packaged as a long-lived component:
// a shared measurement/translation memo cache plus the grid runner,
// reusable across many independent requests instead of one experiment
// run. It backs the `extrap serve` HTTP API — every prediction the API
// returns goes through exactly the pipeline the paper's experiments use,
// and repeated requests for the same (benchmark, size, threads)
// share one measurement through the cache.
//
// A Service is safe for concurrent use.
type Service struct {
	cache   *core.TraceCache
	workers int
	batch   int
	replay  sim.ReplayMode
	bstats  BatchStats
}

// NewService returns a Service whose sweeps fan out over at most workers
// goroutines (≤ 0 selects GOMAXPROCS) and whose memo cache retains at
// most cacheEntries measurements, evicting least-recently-used beyond
// that (≤ 0 means unbounded — only appropriate for fixed key
// populations, never for a server fed client-controlled parameters).
func NewService(workers, cacheEntries int) *Service {
	return &Service{cache: core.NewBoundedTraceCache(cacheEntries), workers: workers}
}

// NewStreamingService returns a Service backed by an encoded trace
// cache: measurements stay resident as compact immutable XTRP1 bytes
// and every prediction runs the bounded-memory streaming pipeline
// (incremental decode → streaming translate → streaming simulate).
// Predictions are byte-identical to the in-memory Service's, but a
// request's transient footprint is the translation buffer rather than
// the materialized trace, and maxTraceBytes (> 0) rejects any
// measurement whose encoding exceeds the budget with
// core.ErrTraceTooLarge. This is the right shape for long-lived
// servers fed client-controlled parameters.
func NewStreamingService(workers, cacheEntries int, maxTraceBytes int64) *Service {
	return &Service{cache: core.NewEncodedTraceCache(cacheEntries, maxTraceBytes), workers: workers}
}

// CacheStats reports the memo cache's lookup effectiveness: lookups
// served from memory and measurement runs performed.
func (s *Service) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// SetBackend attaches a durable tier (typically a *store.Store) behind
// the Service's memo cache: memory misses consult the backend before
// re-measuring and fresh measurements are written through, so a
// restarted service replays prior work at disk speed. Attach before the
// Service starts handling requests; results are byte-identical with or
// without a backend.
func (s *Service) SetBackend(b core.TraceBackend) { s.cache.SetBackend(b) }

// SetTraceFormat selects the wire format a streaming Service encodes
// cached measurements in (zero keeps XTRP1). Predictions are
// byte-identical across formats — the format only changes resident and
// durable bytes. Set before the Service starts handling requests.
func (s *Service) SetTraceFormat(f trace.Format) { s.cache.SetFormat(f) }

// TraceFormat reports the cache's encoding format.
func (s *Service) TraceFormat() trace.Format { return s.cache.Format() }

// CompressionStats reports the raw (XTRP1-equivalent) and actual
// encoded bytes of measurements the cache has encoded so far.
func (s *Service) CompressionStats() core.CompressionStats { return s.cache.Compression() }

// Workers reports the sweep fan-out bound the Service was built with
// (≤ 0 means GOMAXPROCS), so composed components — notably the jobs
// queue — can match their cell parallelism to the engine's.
func (s *Service) Workers() int { return s.workers }

// SetBatchSize enables batched sweep simulation: grid cells sharing a
// measurement advance up to k machine models per pass over the shared
// translated trace. k ≤ 1 keeps the per-cell path. Responses are
// byte-identical at any batch size. Set before the Service starts
// handling requests.
func (s *Service) SetBatchSize(k int) { s.batch = k }

// BatchSize reports the configured batch width (≤ 1 means per-cell).
func (s *Service) BatchSize() int { return s.batch }

// SetReplay selects how XTRP2-encoded measurements replay through the
// simulator: sim.ReplayPattern (the default — compiled pattern programs
// with steady-state fast-forward) or sim.ReplayEvent (flat event-by-
// event replay, the rollback/A-B knob). Predictions are byte-identical
// in both modes; the mode is stamped on every request's simulation
// config, service-wide, and is not part of any cache key. Set before
// the Service starts handling requests.
func (s *Service) SetReplay(m sim.ReplayMode) { s.replay = m }

// Replay reports the service-wide replay mode.
func (s *Service) Replay() sim.ReplayMode { return s.replay }

// BatchStats reports cumulative batched-sweep counters.
func (s *Service) BatchStats() BatchSnapshot { return s.bstats.Snapshot() }

// Extrapolate predicts one benchmark configuration on one target
// environment: measure (or reuse) the threads-thread trace, translate
// it, and simulate it under cfg. The context bounds every stage,
// including the measurement (polled at safe points in the runtime). A
// measurement aborted by the caller's deadline is not memoized — the
// error goes to that caller alone and the next request re-measures
// under its own deadline — so a timeout never poisons the cache.
func (s *Service) Extrapolate(ctx context.Context, b benchmarks.Benchmark, size benchmarks.Size, threads int, mode pcxx.SizeMode, cfg sim.Config) (*core.Outcome, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("experiments: invalid thread count %d", threads)
	}
	cfg.Replay = s.replay
	mopts := core.MeasureOptions{SizeMode: mode}
	key := cacheKey(b.Name(), size, threads, mopts)
	measure := func() (*trace.Trace, error) {
		return core.MeasureContext(ctx, b.Factory(size)(threads), mopts)
	}
	tr, err := s.cache.Measure(key, measure)
	if err != nil {
		return nil, err
	}
	pt, err := s.cache.Translated(key, measure)
	if err != nil {
		return nil, err
	}
	res, err := sim.SimulateContext(ctx, pt, cfg)
	if err != nil {
		return nil, err
	}
	return &core.Outcome{Measurement: tr, Parallel: pt, Result: res}, nil
}

// Predict is Extrapolate returning only the scalar prediction — the
// shape serving layers need. On a streaming Service the traces flow
// through bounded cursors and are never materialized; on an in-memory
// Service it delegates to Extrapolate. Both produce byte-identical
// predictions for the same request.
func (s *Service) Predict(ctx context.Context, b benchmarks.Benchmark, size benchmarks.Size, threads int, mode pcxx.SizeMode, cfg sim.Config) (*core.Prediction, error) {
	if !s.cache.Streams() {
		out, err := s.Extrapolate(ctx, b, size, threads, mode, cfg)
		if err != nil {
			return nil, err
		}
		return &core.Prediction{
			Measured1P: out.Measurement.Duration(),
			Ideal:      out.Parallel.Duration(),
			Result:     out.Result,
		}, nil
	}
	if threads <= 0 {
		return nil, fmt.Errorf("experiments: invalid thread count %d", threads)
	}
	cfg.Replay = s.replay
	mopts := core.MeasureOptions{SizeMode: mode}
	enc, err := s.cache.Encoded(cacheKey(b.Name(), size, threads, mopts), func() (*trace.Trace, error) {
		return core.MeasureContext(ctx, b.Factory(size)(threads), mopts)
	})
	if err != nil {
		return nil, err
	}
	return core.ExtrapolateEncoded(ctx, enc, cfg)
}

// PredictBatch answers one prediction per config against a single
// shared measurement — the trace for (benchmark, size, threads) is
// decoded and translated once and every config's machine model advances
// over it through the batch kernel. Each returned prediction is
// byte-identical to what Predict returns for the same config.
func (s *Service) PredictBatch(ctx context.Context, b benchmarks.Benchmark, size benchmarks.Size, threads int, mode pcxx.SizeMode, cfgs []sim.Config) ([]*core.Prediction, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if threads <= 0 {
		return nil, fmt.Errorf("experiments: invalid thread count %d", threads)
	}
	stamped := make([]sim.Config, len(cfgs))
	copy(stamped, cfgs)
	for i := range stamped {
		stamped[i].Replay = s.replay
	}
	cfgs = stamped
	mopts := core.MeasureOptions{SizeMode: mode}
	key := cacheKey(b.Name(), size, threads, mopts)
	measure := func() (*trace.Trace, error) {
		return core.MeasureContext(ctx, b.Factory(size)(threads), mopts)
	}
	var out []*core.Prediction
	if s.cache.Streams() {
		enc, err := s.cache.Encoded(key, measure)
		if err != nil {
			return nil, err
		}
		out, err = core.ExtrapolateEncodedBatch(ctx, enc, cfgs)
		if err != nil {
			return nil, err
		}
	} else {
		tr, err := s.cache.Measure(key, measure)
		if err != nil {
			return nil, err
		}
		pt, err := s.cache.Translated(key, measure)
		if err != nil {
			return nil, err
		}
		results, err := sim.SimulateBatchContext(ctx, pt, cfgs)
		if err != nil {
			return nil, err
		}
		out = make([]*core.Prediction, len(results))
		for i, res := range results {
			out[i] = &core.Prediction{
				Measured1P: tr.Duration(),
				Ideal:      pt.Duration(),
				Result:     res,
			}
		}
	}
	if len(cfgs) > 1 {
		s.bstats.Batches.Add(1)
		s.bstats.CellsBatched.Add(int64(len(cfgs)))
	} else {
		s.bstats.FallbackSequential.Add(1)
	}
	return out, nil
}

// Sweep runs one processor-ladder sweep job through the shared cache and
// worker pool, returning the scaling series in ladder order. Output is
// byte-identical at any worker count (the grid runner's invariant).
func (s *Service) Sweep(ctx context.Context, job SweepJob) ([]metrics.Point, error) {
	series, err := s.SweepGrid(ctx, []SweepJob{job})
	if err != nil {
		return nil, err
	}
	return series[0], nil
}

// SweepGrid runs several sweep jobs as one grid, returning one series
// per job in job order. Running related jobs together is what lets the
// batch kernel engage: cells that name the same benchmark, size, and
// thread count — the same measurement under different machine models —
// are simulated together in one pass over the shared trace when the
// Service's batch size allows. Output is byte-identical to running the
// jobs one at a time, at any worker count and batch size.
func (s *Service) SweepGrid(ctx context.Context, jobs []SweepJob) ([][]metrics.Point, error) {
	bo := batchOptions{size: s.batch, stats: &s.bstats}
	return runGrid(ctx, s.cache, s.workers, bo, s.stampReplay(jobs))
}

// stampReplay applies the service-wide replay mode to a copy of the
// jobs (callers' slices are never mutated).
func (s *Service) stampReplay(jobs []SweepJob) []SweepJob {
	out := make([]SweepJob, len(jobs))
	copy(out, jobs)
	for i := range out {
		out[i].Cfg.Replay = s.replay
	}
	return out
}

// SweepGridFitted answers each job's ladder through the analytic fitted
// path: only the sparse anchor set the model package's refinement
// selects is simulated (through the same cache and memoization as
// SweepGrid), and the remaining cells evaluate the least-squares fit,
// rounded to whole virtual nanoseconds. Anchor cells carry the exact
// simulated time; fitted cells are approximations. Output is
// deterministic and byte-identical at any worker count.
func (s *Service) SweepGridFitted(ctx context.Context, jobs []SweepJob) ([][]metrics.Point, error) {
	return runGridFitted(ctx, s.cache, s.workers, s.stampReplay(jobs))
}
