package experiments

import (
	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/report"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Speedup curves for all benchmarks (distributed-memory parameter set)",
		Run:   runFig4,
	})
}

// runFig4 reproduces Figure 4: every suite benchmark swept over the
// processor ladder under the Figure 4 environment — 20 MB/s links,
// high communication and synchronization overheads — using the original
// compiler-estimate transfer-size attribution (whose Grid consequences
// Figure 5 investigates).
func runFig4(opts Options) (*Output, error) {
	env := machine.GenericDM()
	out := &Output{ID: "fig4", Title: "Speedup curves for all benchmarks"}
	speedFig := report.Figure{
		Title: "Figure 4: speedup vs processors", XLabel: "procs", YLabel: "speedup",
		X: opts.procs(),
	}
	timeFig := report.Figure{
		Title: "Figure 4 (companion): execution time vs processors", XLabel: "procs", YLabel: "ms",
		X: opts.procs(),
	}
	tab := report.Table{
		Title:   "Figure 4 data",
		Columns: []string{"benchmark", "procs", "time", "speedup", "efficiency"},
	}
	r := newRunner(opts)
	suite := benchmarks.Suite()
	jobs := make([]SweepJob, len(suite))
	for i, b := range suite {
		jobs[i] = r.job(b, pcxx.CompilerEstimate, env.Config, opts.procs())
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for i, b := range suite {
		points := series[i]
		sp := metrics.Speedup(points)
		eff := metrics.Efficiency(points)
		speedFig.Add(b.Name(), sp)
		timeFig.Add(b.Name(), times(points))
		for i, p := range points {
			tab.AddRow(b.Name(), p.Procs, p.Time.String(), sp[i], eff[i])
		}
	}
	speedFig.Notes = []string{
		"expect: embar ≈ linear; cyclic and poisson reasonable; grid/mgrid flatten after 4 procs",
		"(BLOCK,BLOCK) idles non-square processor counts: no improvement 4→8",
	}
	out.Figures = append(out.Figures, speedFig, timeFig)
	out.Tables = append(out.Tables, tab)
	return out, nil
}
